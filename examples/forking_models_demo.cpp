// Side-by-side demonstration of the three forking models (paper section
// II) on both program shapes:
//
//  * a chunked loop — where in-order shines and out-of-order is capped at
//    two threads, and
//  * a tree recursion — where only the mixed model unfolds the whole tree.
//
// Uses the discrete-event simulator at 16 and 64 virtual CPUs, so the
// demonstration is exact and instant on any host.
#include <cstdio>

#include "sim/models.h"
#include "sim/sim.h"

namespace {

void show(const char* label, mutls::sim::SimModel (*build)()) {
  using namespace mutls;
  std::printf("%s\n", label);
  std::printf("  %-13s %10s %10s\n", "model", "16 CPUs", "64 CPUs");
  for (ForkModel m : {ForkModel::kMixed, ForkModel::kInOrder,
                      ForkModel::kOutOfOrder}) {
    double s16, s64;
    {
      sim::Simulator::Options o;
      o.num_cpus = 15;
      o.model = m;
      sim::SimModel mod = build();
      s16 = sim::Simulator(o).run(mod).speedup();
    }
    {
      sim::Simulator::Options o;
      o.num_cpus = 63;
      o.model = m;
      sim::SimModel mod = build();
      s64 = sim::Simulator(o).run(mod).speedup();
    }
    std::printf("  %-13s %9.2fx %9.2fx\n", fork_model_name(m), s16, s64);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  show("chunked loop (3x+1):", [] { return mutls::sim::model_threex(); });
  show("tree recursion (nqueen):", [] { return mutls::sim::model_nqueen(); });
  std::printf(
      "loop: in-order == mixed, out-of-order capped near 2x.\n"
      "tree: mixed clearly ahead of both simple models (the paper's core "
      "claim).\n");
  return 0;
}
