// Figure 6 — speculative path efficiency eta_sp = sum(Twork_sp) /
// sum(Truntime_sp) versus CPU count, all benchmarks.
//
// Paper shape: 3x+1/mandelbrot/md highest; fft and matmult degrade sharply
// with core count (idle time from small deep-recursion threads dominates).
#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace mutls;
  using namespace mutls::bench;
  HarnessArgs args = parse_args(argc, argv);
  auto ws = make_workloads(args);

  if (args.measured) {
    std::printf("FIG 6 (measured) — speculative path efficiency\n");
    std::printf("%-11s", "benchmark");
    for (int n : args.measured_cpus) {
      if (n > 1) std::printf(" %6d", n);
    }
    std::printf("\n");
    for (BenchWorkload& w : ws) {
      std::printf("%-11s", w.name.c_str());
      for (int n : args.measured_cpus) {
        if (n == 1) continue;
        workloads::SpecRun r = w.spec(n, ForkModel::kMixed, 0.0);
        std::printf(" %6.3f", r.stats.speculative_efficiency());
      }
      std::printf("\n");
    }
  }

  if (args.sim) {
    std::printf(
        "\nFIG 6 (simulated, paper scale) — speculative path efficiency\n");
    std::printf("%-11s", "benchmark");
    for (int n : args.sim_cpus) std::printf(" %6d", n);
    std::printf("\n");
    for (BenchWorkload& w : ws) {
      std::printf("%-11s", w.name.c_str());
      for (int n : args.sim_cpus) {
        sim::SimModel m = w.sim_model();
        sim::SimResult r =
            sim::Simulator(sim_opts(n, ForkModel::kMixed)).run(m);
        std::printf(" %6.3f", r.speculative_efficiency());
      }
      std::printf("\n");
    }
  }
  return 0;
}
