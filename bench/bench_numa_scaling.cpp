// NUMA-aware scaling bench: the kNumaSharded slot store plus the
// per-node idle freelists, swept over faked topology shapes so the same
// cells run (and mean the same thing) on any box, including single-core CI.
//
// Each cell fills the whole virtual-CPU pool every round — four children
// forked back to back, each speculatively bumping its own contiguous
// block, held live until all four ranks are claimed — so same-node-first
// placement runs out of home ranks and the work-stealing fallback is
// exercised deterministically: with the root on node 0, every rank the
// claim loop pulls from another node's freelist counts one
// cross_node_claims. The sharded store's routing shows up as
// shard_probe_steps (one per find/insert) and local_commit_words (commit
// words streamed from the committing slot's home shard).
//
// Machine-readable output: one "NUMA key=value ..." line per cell;
// scripts/bench_json.py parses these into the numa_scaling section of
// BENCH_results.json and enforces the locality invariants (nonzero
// routing everywhere, nonzero steals on multi-node shapes, zero
// steady-state allocations).
//
// Flags:
//   --quick     CI smoke: fewer rounds per cell
#include <cstdio>
#include <cstring>
#include <vector>

#include "api/parallel.h"
#include "api/spec.h"
#include "support/timing.h"

namespace {

using namespace mutls;

constexpr int kCpus = 4;
constexpr size_t kWordsPerChild = 512;  // 4 KiB: one region at the default
                                        // numa_shard_region_log2 = 12
constexpr int kWarmupRounds = 8;

struct CellResult {
  double wall_s = 0.0;
  uint64_t forks = 0;
  uint64_t cross_node_claims = 0;
  uint64_t shard_probe_steps = 0;
  uint64_t local_commit_words = 0;
  uint64_t commits = 0;
  uint64_t rollbacks = 0;
  uint64_t alloc_events = 0;  // post-warm-up only
};

CellResult run_cell(int nodes, int rounds) {
  Runtime::Options o;
  o.num_cpus = kCpus;
  o.buffer_log2 = 12;
  o.overflow_cap = 4096;
  o.buffer_backend = BufferBackend::kNumaSharded;
  o.numa_nodes = nodes;
  Runtime rt(o);

  SharedArray<uint64_t> data(rt, kCpus * kWordsPerChild, 0);
  CellResult res;
  RunStats warm;
  RunStats rs = rt.run([&](Ctx& ctx) {
    Stopwatch sw;
    for (int round = 0; round < kWarmupRounds + rounds; ++round) {
      if (round == kWarmupRounds) {
        warm = rt.manager().collect_stats();
        sw = Stopwatch();
      }
      std::atomic<bool> release{false};
      std::vector<Spec> specs;
      specs.reserve(kCpus);
      for (int i = 0; i < kCpus; ++i) {
        specs.push_back(rt.fork(ctx, ForkModel::kMixed, [&, i](Ctx& c) {
          SharedSpan<uint64_t> d = data.span(c);
          size_t lo = static_cast<size_t>(i) * kWordsPerChild;
          for (size_t k = 0; k < kWordsPerChild; ++k) d[lo + k] += 1;
          // Hold the rank until the whole pool is claimed, so the round
          // provably drains the root's home freelist. (A denied fork's
          // body runs inline at join, after release is set: no deadlock.)
          while (!release.load(std::memory_order_acquire)) {
            std::this_thread::yield();
          }
        }));
      }
      release.store(true, std::memory_order_release);
      // Mixed model: later-speculated is logically earlier; join in
      // reverse fork order.
      for (int i = kCpus - 1; i >= 0; --i) rt.join(ctx, specs[i]);
    }
    res.wall_s = sw.elapsed_sec();
  });

  res.forks = rs.critical.forks + rs.speculative.forks;
  res.cross_node_claims =
      rs.critical.cross_node_claims + rs.speculative.cross_node_claims;
  res.shard_probe_steps = rs.critical.buffer.shard_probe_steps +
                          rs.speculative.buffer.shard_probe_steps;
  res.local_commit_words = rs.critical.buffer.local_commit_words +
                           rs.speculative.buffer.local_commit_words;
  res.commits = rs.speculative.commits;
  res.rollbacks = rs.speculative.rollbacks;
  uint64_t total_allocs = rs.speculative.buffer.alloc_events +
                          rs.critical.buffer.alloc_events;
  uint64_t warm_allocs = warm.speculative.buffer.alloc_events +
                         warm.critical.buffer.alloc_events;
  res.alloc_events = total_allocs - warm_allocs;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--quick")) quick = true;
  }
  const int rounds = quick ? 50 : 400;
  const int node_counts[] = {1, 2, 4};

  std::printf("NUMA scaling — numa-sharded store, %d cpus, %d rounds/cell\n",
              kCpus, rounds);
  std::printf("%-6s %9s %10s %12s %12s %12s %8s %6s\n", "nodes", "wall_s",
              "forks", "cross_node", "probe_steps", "local_words", "commits",
              "alloc");
  bool ok = true;
  for (int nodes : node_counts) {
    CellResult r = run_cell(nodes, rounds);
    std::printf("%-6d %9.3f %10llu %12llu %12llu %12llu %8llu %6llu\n",
                nodes, r.wall_s, static_cast<unsigned long long>(r.forks),
                static_cast<unsigned long long>(r.cross_node_claims),
                static_cast<unsigned long long>(r.shard_probe_steps),
                static_cast<unsigned long long>(r.local_commit_words),
                static_cast<unsigned long long>(r.commits),
                static_cast<unsigned long long>(r.alloc_events));
    std::printf(
        "NUMA nodes=%d cpus=%d backend=numa-sharded rounds=%d wall_s=%.3f "
        "forks=%llu cross_node_claims=%llu shard_probe_steps=%llu "
        "local_commit_words=%llu commits=%llu rollbacks=%llu "
        "alloc_events=%llu\n",
        nodes, kCpus, rounds, r.wall_s,
        static_cast<unsigned long long>(r.forks),
        static_cast<unsigned long long>(r.cross_node_claims),
        static_cast<unsigned long long>(r.shard_probe_steps),
        static_cast<unsigned long long>(r.local_commit_words),
        static_cast<unsigned long long>(r.commits),
        static_cast<unsigned long long>(r.rollbacks),
        static_cast<unsigned long long>(r.alloc_events));
    // The cell invariants bench_json re-checks; failing them here makes
    // the smoke run fail loudly even without the JSON step.
    if (r.shard_probe_steps == 0) {
      std::printf("NUMA-FAIL nodes=%d no shard routing recorded\n", nodes);
      ok = false;
    }
    if (nodes > 1 && r.cross_node_claims == 0) {
      std::printf("NUMA-FAIL nodes=%d expected work-stealing claims\n",
                  nodes);
      ok = false;
    }
    if (nodes == 1 && r.local_commit_words == 0) {
      std::printf("NUMA-FAIL nodes=1 single shard must commit locally\n");
      ok = false;
    }
    if (r.alloc_events != 0) {
      std::printf("NUMA-FAIL nodes=%d steady state allocated\n", nodes);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
