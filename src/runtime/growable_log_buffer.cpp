#include "runtime/growable_log_buffer.h"

namespace mutls {

void GrowableSet::init(int log2_entries, SpecBufferStats* stats) {
  MUTLS_CHECK(log2_entries >= 4 && log2_entries <= 28,
              "buffer log2 size out of range");
  log2_ = log2_entries;
  shift_ = 64 - log2_;
  index_.assign(size_t{1} << log2_, 0);
  log_.clear();
  log_.reserve(1024);
  resized_this_epoch_ = false;
  stats_ = stats;
}

GrowableSet::Entry& GrowableSet::find_or_insert(uintptr_t word_addr,
                                                bool& inserted) {
  MUTLS_DCHECK((word_addr & kWordMask) == 0, "unaligned word address");
  MUTLS_DCHECK(!at_hard_capacity(),
               "insert into a growable set at hard capacity (the owning "
               "buffer must doom first)");
  const size_t mask = capacity() - 1;
  size_t idx = home_slot(word_addr);
  ++stats_->probe_ops;
  while (true) {
    uint32_t pos = index_[idx];
    if (pos == 0) {
      // Insert path only: keep the load factor at or below 3/4 so probe
      // sequences stay short (a lookup hit must never pay a rehash); past
      // kMaxLog2 the factor rises instead (the caller dooms before the
      // table could actually fill).
      if (log_.size() + 1 > capacity() - capacity() / 4 &&
          log2_ < kMaxLog2) {
        grow();
        // Re-probe for the empty slot in the grown index.
        const size_t grown_mask = capacity() - 1;
        idx = home_slot(word_addr);
        while (index_[idx] != 0) idx = (idx + 1) & grown_mask;
      }
      log_.push_back(Entry{word_addr, 0, 0, static_cast<uint32_t>(idx)});
      index_[idx] = static_cast<uint32_t>(log_.size());
      inserted = true;
      return log_.back();
    }
    Entry& e = log_[pos - 1];
    if (e.word_addr == word_addr) {
      inserted = false;
      return e;
    }
    ++stats_->probe_steps;
    idx = (idx + 1) & mask;
  }
}

GrowableSet::Entry* GrowableSet::find(uintptr_t word_addr) {
  if (index_.empty()) return nullptr;
  const size_t mask = capacity() - 1;
  size_t idx = home_slot(word_addr);
  ++stats_->probe_ops;
  while (true) {
    uint32_t pos = index_[idx];
    if (pos == 0) return nullptr;
    Entry& e = log_[pos - 1];
    if (e.word_addr == word_addr) return &e;
    ++stats_->probe_steps;
    idx = (idx + 1) & mask;
  }
}

void GrowableSet::grow() {
  ++log2_;
  shift_ = 64 - log2_;
  resized_this_epoch_ = true;
  ++stats_->resize_events;
  index_.assign(size_t{1} << log2_, 0);
  const size_t mask = capacity() - 1;
  // Rehash from the dense log; re-probe costs are part of the resize, not
  // the per-access probe counters.
  for (uint32_t i = 0; i < log_.size(); ++i) {
    size_t idx = home_slot(log_[i].word_addr);
    while (index_[idx] != 0) idx = (idx + 1) & mask;
    index_[idx] = i + 1;
    log_[i].slot = static_cast<uint32_t>(idx);
  }
}

void GrowableSet::clear() {
  for (const Entry& e : log_) index_[e.slot] = 0;
  log_.clear();
  resized_this_epoch_ = false;
}

void GrowableLogBuffer::init(int log2_entries, size_t overflow_cap) {
  (void)overflow_cap;  // no bounded overflow in this backend
  read_set_.init(log2_entries, &stats_);
  write_set_.init(log2_entries, &stats_);
}

uint64_t GrowableLogBuffer::read_word_view(uintptr_t word_addr) {
  if (word_addr == mru_addr_) {
    // Serve entirely from the cached positions when the line knows
    // everything the probing path would re-derive.
    if (mru_w_ != 0 && mru_w_ != kWriteAbsent) {
      GrowableSet::Entry& w = write_set_.at_position(mru_w_);
      if (w.mark == kFullMark) {
        ++stats_.mru_hits;
        ++stats_.probe_skips;
        return w.data;
      }
      if (mru_r_ != 0) {
        ++stats_.mru_hits;
        stats_.probe_skips += 2;
        return overlay_bytes(read_set_.at_position(mru_r_).data, w.data,
                             w.mark);
      }
    } else if (mru_w_ == kWriteAbsent && mru_r_ != 0) {
      ++stats_.mru_hits;
      stats_.probe_skips += 2;
      return read_set_.at_position(mru_r_).data;
    }
  }
  ++stats_.mru_misses;
  // Keep whatever half of the line is still valid when re-resolving the
  // same word (e.g. a read after a store that only knew the write slot).
  uint32_t mr = word_addr == mru_addr_ ? mru_r_ : 0;

  GrowableSet::Entry* w = write_set_.find(word_addr);
  uint32_t mw = w ? write_set_.position_of(w) : kWriteAbsent;
  if (w && w->mark == kFullMark) {
    mru_addr_ = word_addr;
    mru_r_ = mr;
    mru_w_ = mw;
    return w->data;
  }

  if (read_set_.at_hard_capacity()) {
    // ~2^28 distinct words: past the point where resizing can help. Doom
    // like the static hash does on exhaustion instead of aborting.
    doom("read-set exhausted the maximum growable index");
    mru_invalidate();  // nothing stable to cache for a doomed access
    uint64_t base = atomic_word_load(word_addr);
    if (w) base = overlay_bytes(base, w->data, w->mark);
    return base;
  }
  bool inserted = false;
  GrowableSet::Entry& r = read_set_.find_or_insert(word_addr, inserted);
  if (inserted) {
    // First touch: load the whole word from main memory and remember it
    // for validation.
    r.data = atomic_word_load(word_addr);
  }
  mru_addr_ = word_addr;
  mru_r_ = read_set_.position_of(&r);
  mru_w_ = mw;
  uint64_t base = r.data;
  if (w) {
    // Overlay the bytes this thread already wrote. `w` points into the
    // write set's log, untouched by the read-set insertion above.
    base = overlay_bytes(base, w->data, w->mark);
  }
  return base;
}

uint64_t GrowableLogBuffer::peek_word_view(uintptr_t word_addr) {
  GrowableSet::Entry* w = write_set_.find(word_addr);
  if (w && w->mark == kFullMark) return w->data;
  GrowableSet::Entry* r = read_set_.find(word_addr);
  uint64_t base = r ? r->data : atomic_word_load(word_addr);
  if (w) {
    base = overlay_bytes(base, w->data, w->mark);
  }
  return base;
}

void GrowableLogBuffer::write_word(uintptr_t word_addr, uint64_t value,
                                   uint64_t mask) {
  if (word_addr == mru_addr_ && mru_w_ != 0 && mru_w_ != kWriteAbsent) {
    ++stats_.mru_hits;
    ++stats_.probe_skips;
    GrowableSet::Entry& e = write_set_.at_position(mru_w_);
    e.data = overlay_bytes(e.data, value, mask);
    e.mark |= mask;
    return;
  }
  ++stats_.mru_misses;
  if (write_set_.at_hard_capacity()) {
    doom("write-set exhausted the maximum growable index");
    return;
  }
  bool inserted = false;
  GrowableSet::Entry& e = write_set_.find_or_insert(word_addr, inserted);
  e.data = overlay_bytes(e.data, value, mask);
  e.mark |= mask;
  uint32_t mr = word_addr == mru_addr_ ? mru_r_ : 0;
  mru_addr_ = word_addr;
  mru_r_ = mr;
  mru_w_ = write_set_.position_of(&e);
}

void GrowableLogBuffer::adopt_write(uintptr_t word_addr, uint64_t data,
                                    uint64_t mark) {
  // Adoption mutates the sets behind the MRU's back (and runs at the flag
  // barrier, not on the access hot path): drop the cache wholesale.
  mru_invalidate();
  if (write_set_.at_hard_capacity()) {
    doom("write-set exhausted the maximum growable index while adopting a "
         "child commit");
    return;
  }
  bool inserted = false;
  GrowableSet::Entry& e = write_set_.find_or_insert(word_addr, inserted);
  e.data = overlay_bytes(e.data, data, mark);
  e.mark |= mark;
}

void GrowableLogBuffer::adopt_read(uintptr_t word_addr, uint64_t data) {
  mru_invalidate();
  // Reads fully satisfied by this buffer's own writes carry no main-memory
  // dependency; everything else must survive until this thread's own
  // validation, so it joins the read-set (first value wins).
  GrowableSet::Entry* w = write_set_.find(word_addr);
  if (w && w->mark == kFullMark) return;
  if (read_set_.at_hard_capacity()) {
    doom("read-set exhausted the maximum growable index while adopting a "
         "child commit");
    return;
  }
  bool inserted = false;
  GrowableSet::Entry& r = read_set_.find_or_insert(word_addr, inserted);
  if (inserted) r.data = data;
}

void GrowableLogBuffer::reset() {
  read_set_.clear();
  write_set_.clear();
  mru_invalidate();
  doomed_ = false;
  doom_reason_ = "";
  // stats_ intentionally survives reset: the settle paths read the counters
  // after resetting; clear_stats() re-arms them per speculation.
}

}  // namespace mutls
