// IR interpreter with integrated thread-level speculation.
//
// Executes the mini-IR of src/ir/ against host memory through the MUTLS
// runtime. The mutls.fork / mutls.join / mutls.barrier intrinsics behave as
// the paper's transformed code does:
//
//  * mutls.fork p, model — MUTLS_get_CPU + save live locals + speculate: a
//    child thread starts executing from the instruction after the matching
//    mutls.join p with a snapshot of the forker's registers (value
//    prediction, paper IV-G4). Register reads that precede any child-side
//    definition are recorded and validated against the joiner's registers
//    at the join (validate_local).
//  * Speculative loads/stores go through the thread's SpecBuffer (any
//    configured backend); wild addresses, capacity doom and abort signals
//    doom the speculation.
//  * A speculative thread stops at its barrier point (mutls.barrier p), at
//    a return point (before ret of its entry function), at a terminate
//    point (before an external call), or at a check point (loop back edge)
//    once SYNC has been signalled. Its stop position + registers + fork
//    bookkeeping are deposited for the joiner.
//  * mutls.join p — MUTLS_validate_local + MUTLS_synchronize. On commit the
//    joiner *resumes from the child's stop position* with the child's
//    registers (the paper's synchronization-table mechanism), adopting the
//    child's children. On rollback it simply continues after the join
//    point, re-executing the region, exactly like the transformed
//    non-speculative code.
//
// Execution runs on the engine of src/exec/: at construction the module is
// predecoded (flat handler-table code, per-fork-point join positions and
// live-in validation sets, the loop-region table) and hot execution uses
// the direct-threaded dispatcher — or registered native region bodies in
// DispatchMode::kCompiledRegion. The original per-op switch loop is
// retained as the semantic oracle (DispatchMode::kSwitch); all tiers share
// Frame/StopState and the speculative memory path (exec/mem_ops.h), so a
// child stopped under one tier is resumed correctly by a joiner running
// another.
//
// Restrictions relative to the paper (documented in DESIGN.md): stop
// positions are taken only in the speculative entry frame, so the
// stack-frame reconstruction walk of section IV-H is not needed at
// runtime; nested calls run speculatively but stop points inside them
// degrade to rollback.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/dispatch.h"
#include "exec/frame.h"
#include "exec/profile.h"
#include "ir/ir.h"
#include "runtime/thread_manager.h"

namespace mutls::interp {

class Interpreter final : private exec::ExecHost {
 public:
  struct Options {
    int num_cpus = 4;
    int buffer_log2 = 14;
    size_t overflow_cap = 4096;
    // Speculative-buffer backend of every virtual CPU (SpecBuffer API),
    // plus the kAdaptive flip knobs (ignored by the other backends).
    BufferBackend buffer_backend = BufferBackend::kStaticHash;
    uint64_t adaptive_overflow_threshold = 4;
    uint64_t adaptive_calm_hysteresis = 16;
    // Value-prediction knobs (ManagerConfig::predict_* /
    // SpecBuffer::PredictPolicy): off by default; see the README's
    // "Value prediction" section.
    bool predict_enabled = false;
    uint32_t predict_confidence_threshold = 2;
    uint64_t predict_stride_window = 1u << 16;
    int predict_table_log2 = 8;
    double rollback_probability = 0.0;
    uint64_t seed = 0x5eed;
    std::optional<ForkModel> model_override;
    // Worker handoff spin budget; 0 calibrates per NUMA node at first
    // manager construction (see ManagerConfig::handoff_spin_budget).
    int handoff_spin_budget = 0;
    // NUMA shape (ManagerConfig::numa_nodes / numa_shard_region_log2):
    // 0 probes the machine topology; a positive value fakes that many
    // nodes for the per-node freelists and the kNumaSharded backend.
    int numa_nodes = 0;
    int numa_shard_region_log2 = 12;
    // Execution-engine dispatch tier (exec/dispatch.h). kDirectThreaded is
    // the default; kSwitch is the original per-op loop kept as the
    // semantic oracle and fallback; kCompiledRegion additionally runs
    // native bodies registered via register_compiled_region.
    exec::DispatchMode dispatch_mode = exec::DispatchMode::kDirectThreaded;
  };

  Interpreter(ir::Module module, const Options& opt);
  ~Interpreter();

  Interpreter(const Interpreter&) = delete;
  Interpreter& operator=(const Interpreter&) = delete;

  // Calls @name on the non-speculative thread. Raw 64-bit argument/return
  // encoding (floats bit-cast).
  uint64_t call(const std::string& name, std::vector<uint64_t> args = {});

  // Host address of a global, for seeding inputs and reading results.
  void* global_addr(const std::string& name);

  RunStats collect_stats() { return mgr_.collect_stats(); }
  ThreadManager& manager() { return mgr_; }

  // --- execution-engine surface (src/exec/) ---

  // Installs a native body on (function, loop-header label) for
  // DispatchMode::kCompiledRegion. Returns false when the function or
  // header is unknown; CHECK-fails on an ineligible region (see
  // exec/compiled_region.h for the ABI and access contract).
  bool register_compiled_region(const std::string& function,
                                const std::string& header_label,
                                exec::CompiledFn body) {
    return decoded_->register_compiled(function, header_label, body);
  }

  // Region-profiler counters (back-edge executions per loop region),
  // hottest first. Reset clears them (benchmark phases).
  std::vector<exec::RegionHeat> region_heat() const {
    return exec::snapshot_heat(*decoded_);
  }
  void reset_region_heat() { decoded_->reset_heat(); }

  // Captured output of the print_* external functions (testing aid).
  std::vector<int64_t> printed;

 private:
  using Frame = exec::Frame;
  using StopState = exec::StopState;
  using ForkRec = exec::ForkRec;
  using Stop = exec::Stop;

  // Executes `f` from (block, instr) under the configured dispatch tier;
  // fills `stop` for speculative entry frames; returns the ret value
  // otherwise.
  uint64_t exec_any(ThreadData& td, Frame& fr, uint32_t block,
                    uint32_t instr, StopState* stop);
  // The original per-op switch loop (DispatchMode::kSwitch): the oracle
  // the differential suite holds the other tiers against.
  uint64_t exec_switch(ThreadData& td, Frame& fr, uint32_t block,
                       uint32_t instr, StopState* stop);

  uint64_t call_function(ThreadData& td, const ir::Function& f,
                         std::vector<uint64_t> args);

  uint64_t external_call(ThreadData& td, const ir::Instr& in, Frame& fr);

  void do_fork(ThreadData& td, Frame& fr, const ir::Instr& in);
  // Handles mutls.join: returns true when the joiner must resume from a
  // committed child's position (out params set).
  bool do_join(ThreadData& td, Frame& fr, int64_t point, uint32_t* rblock,
               uint32_t* rinstr);

  // exec::ExecHost — the dispatcher's callbacks for cold, protocol-heavy
  // ops (fork/join, nested calls, externals).
  void host_fork(exec::ExecState& st, const ir::Instr& in) override;
  bool host_join(exec::ExecState& st, int64_t point, uint32_t* rblock,
                 uint32_t* rinstr) override;
  uint64_t host_call(exec::ExecState& st, const ir::Function& callee,
                     const uint64_t* args, size_t n) override;
  uint64_t host_external(exec::ExecState& st, const ir::Instr& in) override;

  ir::Module module_;
  ThreadManager mgr_;
  std::unordered_map<std::string, std::unique_ptr<char[]>> globals_;
  exec::EngineConfig engine_;
  // Built at construction, after globals are allocated (addresses resolve
  // at decode). Immutable but for the per-region atomics; shared by every
  // thread and every dispatch tier (the switch oracle reads its
  // fork-point tables too — the old lazy liveness cache and its mutex are
  // gone).
  std::unique_ptr<exec::DecodedModule> decoded_;
  std::mutex print_mu_;
};

}  // namespace mutls::interp
