#include "ir/ir.h"

namespace mutls::ir {

size_t type_size(Type t) {
  switch (t) {
    case Type::kVoid: return 0;
    case Type::kI1: return 1;
    case Type::kI8: return 1;
    case Type::kI16: return 2;
    case Type::kI32: return 4;
    case Type::kI64: return 8;
    case Type::kF32: return 4;
    case Type::kF64: return 8;
    case Type::kPtr: return 8;
  }
  return 0;
}

const char* type_name(Type t) {
  switch (t) {
    case Type::kVoid: return "void";
    case Type::kI1: return "i1";
    case Type::kI8: return "i8";
    case Type::kI16: return "i16";
    case Type::kI32: return "i32";
    case Type::kI64: return "i64";
    case Type::kF32: return "f32";
    case Type::kF64: return "f64";
    case Type::kPtr: return "ptr";
  }
  return "?";
}

bool is_integer(Type t) {
  return t == Type::kI1 || t == Type::kI8 || t == Type::kI16 ||
         t == Type::kI32 || t == Type::kI64;
}

bool is_float(Type t) { return t == Type::kF32 || t == Type::kF64; }

const char* op_name(Op op) {
  switch (op) {
    case Op::kConst: return "const";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kSDiv: return "sdiv";
    case Op::kSRem: return "srem";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kXor: return "xor";
    case Op::kShl: return "shl";
    case Op::kLShr: return "lshr";
    case Op::kAShr: return "ashr";
    case Op::kFAdd: return "fadd";
    case Op::kFSub: return "fsub";
    case Op::kFMul: return "fmul";
    case Op::kFDiv: return "fdiv";
    case Op::kICmp: return "icmp";
    case Op::kFCmp: return "fcmp";
    case Op::kSelect: return "select";
    case Op::kTrunc: return "trunc";
    case Op::kZExt: return "zext";
    case Op::kSExt: return "sext";
    case Op::kSIToFP: return "sitofp";
    case Op::kFPToSI: return "fptosi";
    case Op::kPtrToInt: return "ptrtoint";
    case Op::kIntToPtr: return "inttoptr";
    case Op::kBitcast: return "bitcast";
    case Op::kAlloca: return "alloca";
    case Op::kLoad: return "load";
    case Op::kStore: return "store";
    case Op::kGep: return "gep";
    case Op::kGlobal: return "globaladdr";
    case Op::kCall: return "call";
    case Op::kBr: return "br";
    case Op::kCondBr: return "condbr";
    case Op::kRet: return "ret";
    case Op::kPhi: return "phi";
    case Op::kMutlsFork: return "mutls.fork";
    case Op::kMutlsJoin: return "mutls.join";
    case Op::kMutlsBarrier: return "mutls.barrier";
  }
  return "?";
}

bool is_terminator(Op op) {
  return op == Op::kBr || op == Op::kCondBr || op == Op::kRet;
}

const char* pred_name(Pred p) {
  switch (p) {
    case Pred::kEq: return "eq";
    case Pred::kNe: return "ne";
    case Pred::kSlt: return "slt";
    case Pred::kSle: return "sle";
    case Pred::kSgt: return "sgt";
    case Pred::kSge: return "sge";
    case Pred::kOlt: return "olt";
    case Pred::kOle: return "ole";
    case Pred::kOgt: return "ogt";
    case Pred::kOge: return "oge";
    case Pred::kOeq: return "oeq";
    case Pred::kOne: return "one";
  }
  return "?";
}

}  // namespace mutls::ir
