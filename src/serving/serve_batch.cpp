#include "serving/serve_batch.h"

namespace mutls::serving {

Server::Server(Runtime& rt, CacheIndex& index, size_t max_batch)
    : rt_(rt),
      index_(index),
      items_route_(routes_.add_prefix("/cache/items/")),
      health_route_(routes_.add_exact("/healthz")),
      max_batch_(max_batch),
      scratch_(static_cast<size_t>(rt.num_cpus()) + 1),
      outcomes_(rt, max_batch) {
  stages_.push_back([this](Ctx& c, int64_t i) { stage_parse(c, i); });
  stages_.push_back([this](Ctx& c, int64_t i) { stage_route_lookup(c, i); });
  stages_.push_back([this](Ctx& c, int64_t i) { stage_update(c, i); });
}

Outcome Server::route_of(const RouteTable& routes, int items_route,
                         int health_route, const ParsedRequest& parsed,
                         uint64_t* key, uint64_t* size) {
  RouteTable::Match m = routes.match(parsed.path);
  if (m.route == items_route) {
    // The key is the path suffix after the items prefix; anything that is
    // not a bare positive decimal (404-shaped garbage) misses.
    if (!parse_decimal(m.rest, key) || *key == 0) return Outcome::kRouteMiss;
    if (parsed.method == Method::kGet) return Outcome::kGet;
    if (parsed.method == Method::kPut) {
      // Absent or unparseable Content-Length serves as size 0 — the index
      // does not police payload plausibility.
      *size = 0;
      parse_decimal(parsed.header_value("Content-Length"), size);
      return Outcome::kPut;
    }
    return Outcome::kRouteMiss;  // 405-shaped: no handler for this method
  }
  if (m.route == health_route && parsed.method == Method::kGet) {
    return Outcome::kHealth;
  }
  return Outcome::kRouteMiss;
}

void Server::stage_parse(Ctx& c, int64_t i) {
  Slot& s = scratch_[static_cast<size_t>(c.rank())];
  // Oversized header sets spill into this virtual CPU's arena; the spill
  // lives until the slot re-arms, well past the item's last stage.
  parse_request(batch_->request(static_cast<size_t>(i)), s.parsed,
                &c.thread_data().arena);
}

void Server::stage_route_lookup(Ctx& c, int64_t i) {
  (void)i;
  Slot& s = scratch_[static_cast<size_t>(c.rank())];
  if (s.parsed.status != ParseStatus::kOk) {
    s.out = static_cast<uint64_t>(Outcome::kMalformed);
    return;
  }
  Outcome kind = route_of(routes_, items_route_, health_route_, s.parsed,
                          &s.key, &s.size);
  s.out = static_cast<uint64_t>(kind);
  if (kind == Outcome::kGet) {
    CacheIndex::GetResult r = index_.get(c, s.key);
    if (r.hit) s.out |= kOutcomeHitBit;
  }
}

void Server::stage_update(Ctx& c, int64_t i) {
  Slot& s = scratch_[static_cast<size_t>(c.rank())];
  if ((s.out & kOutcomeKindMask) == static_cast<uint64_t>(Outcome::kPut)) {
    if (index_.put(c, s.key, s.size, epoch_)) s.out |= kOutcomeEvictBit;
  }
  // The routed store makes the outcome speculative state: rolled-back
  // attempts leave no trace, committed ones land for fold() to read.
  outcomes_.at(c, static_cast<size_t>(i)) = s.out;
}

BatchCounters Server::fold(const uint64_t* outcomes, size_t n) {
  BatchCounters counters;
  counters.requests = n;
  for (size_t i = 0; i < n; ++i) {
    uint64_t out = outcomes[i];
    switch (static_cast<Outcome>(out & kOutcomeKindMask)) {
      case Outcome::kMalformed: ++counters.malformed; break;
      case Outcome::kRouteMiss: ++counters.route_misses; break;
      case Outcome::kHealth: ++counters.health; break;
      case Outcome::kGet:
        ++(out & kOutcomeHitBit ? counters.get_hits : counters.get_misses);
        break;
      case Outcome::kPut:
        ++counters.puts;
        if (out & kOutcomeEvictBit) ++counters.evictions;
        break;
    }
  }
  return counters;
}

BatchCounters Server::serve_batch(Ctx& ctx, const RequestBatch& batch,
                                  uint64_t epoch, const ServeOpts& opts) {
  MUTLS_CHECK(!ctx.speculative(),
              "serve_batch drives its own speculation chain");
  MUTLS_CHECK(batch.count() <= max_batch_, "batch exceeds the server bound");
  batch_ = &batch;
  epoch_ = epoch;
  par::LoopOpts lo;
  lo.chunks = opts.chunks;
  lo.model = opts.model;
  lo.fork_latency = opts.fork_latency;
  lo.fork_ns_scratch = opts.fork_ns_scratch;
  par::pipeline(rt_, ctx, static_cast<int64_t>(batch.count()), stages_, lo);
  // Every chunk is joined: the outcome words are committed plain memory.
  return fold(outcomes_.data(), batch.count());
}

BatchCounters Server::serve_batch_seq(CacheIndex& index,
                                      const RequestBatch& batch,
                                      uint64_t epoch) {
  // Mirror of the pipeline stages, same helpers, direct index accessors.
  RouteTable routes;
  int items_route = routes.add_prefix("/cache/items/");
  int health_route = routes.add_exact("/healthz");
  Arena arena;  // spill storage, so the malformed bound matches spec's
  BatchCounters counters;
  counters.requests = batch.count();
  for (size_t i = 0; i < batch.count(); ++i) {
    ParsedRequest parsed;
    parse_request(batch.request(i), parsed, &arena);
    if (parsed.status != ParseStatus::kOk) {
      ++counters.malformed;
      continue;
    }
    uint64_t key = 0, size = 0;
    switch (route_of(routes, items_route, health_route, parsed, &key,
                     &size)) {
      case Outcome::kMalformed:
      case Outcome::kRouteMiss: ++counters.route_misses; break;
      case Outcome::kHealth: ++counters.health; break;
      case Outcome::kGet:
        ++(index.get_seq(key).hit ? counters.get_hits : counters.get_misses);
        break;
      case Outcome::kPut:
        ++counters.puts;
        if (index.put_seq(key, size, epoch)) ++counters.evictions;
        break;
    }
  }
  return counters;
}

}  // namespace mutls::serving
