// Barnes-Hut N-body simulation — Table II row 4.
//
// Each step builds an octree over the bodies (sequential, on the critical
// path), computes per-body accelerations by tree traversal (loop
// speculation over body blocks: every traversal reads large parts of the
// shared tree — the memory-intensive profile of the paper's bh — while
// writing only its own acceleration rows), then integrates. No conflicts
// arise, matching the paper. Paper size: 12800 bodies.
#pragma once

#include "workloads/workload.h"

namespace mutls::workloads {

struct BarnesHut {
  struct Params {
    int n = 512;
    int steps = 2;
    int chunks = 16;
    double dt = 1e-3;
    double theta = 0.5;
    uint64_t seed = 17;
  };

  static constexpr const char* kName = "bh";
  static constexpr Pattern kPattern = Pattern::kLoop;

  static SeqRun run_seq(const Params& p);
  static SpecRun run_spec(Runtime& rt, const Params& p, ForkModel model);
};

}  // namespace mutls::workloads
