#include "workloads/nqueen.h"

namespace mutls::workloads {

uint64_t NQueen::solve_seq(int n, uint32_t cols, uint32_t d1, uint32_t d2) {
  uint32_t full = (1u << n) - 1;
  if (cols == full) return 1;
  uint64_t count = 0;
  uint32_t avail = ~(cols | d1 | d2) & full;
  while (avail) {
    uint32_t bit = avail & (0u - avail);
    avail -= bit;
    count += solve_seq(n, cols | bit, ((d1 | bit) << 1) & full,
                       (d2 | bit) >> 1);
  }
  return count;
}

namespace {

struct SpecNq {
  Runtime& rt;
  int n;
  int cutoff;
  ForkModel model;
  uint64_t* slots;
  size_t slot_count;

  // Deterministic numbering of search-tree nodes: placing column c under
  // node `id` yields child id*n + c + 1 (base-(n+1) heap numbering), so
  // every continuation fork site (node, candidate ordinal) owns slot
  // id*n + ordinal without any shared allocation traffic.
  size_t slot_for(uint64_t id, int ordinal) const {
    size_t s = static_cast<size_t>(id) * static_cast<size_t>(n) +
               static_cast<size_t>(ordinal);
    return s < slot_count ? s : slot_count;  // == slot_count: no slot left
  }

  uint64_t descend(Ctx& ctx, uint32_t cols, uint32_t d1, uint32_t d2,
                   int depth, uint64_t id) const {
    uint32_t full = (1u << n) - 1;
    if (cols == full) return 1;
    if (depth >= cutoff) return NQueen::solve_seq(n, cols, d1, d2);
    uint32_t avail = ~(cols | d1 | d2) & full;
    return count_candidates(ctx, cols, d1, d2, avail, depth, id, 0);
  }

  // Counts solutions reachable through the candidate set `avail` at this
  // node; speculates the continuation (all but the first candidate).
  uint64_t count_candidates(Ctx& ctx, uint32_t cols, uint32_t d1, uint32_t d2,
                            uint32_t avail, int depth, uint64_t id,
                            int ordinal) const {
    if (avail == 0) return 0;
    uint32_t bit = avail & (0u - avail);
    uint32_t rest = avail - bit;
    uint32_t full = (1u << n) - 1;
    int col = __builtin_ctz(bit);
    uint64_t child_id = id * static_cast<uint64_t>(n) +
                        static_cast<uint64_t>(col) + 1;

    uint64_t rest_count = 0;
    size_t slot = slot_for(id, ordinal);
    // Conditional fork: a plain (move-only) Spec with an explicit join —
    // wrapping ScopedSpec in std::optional would put a potentially
    // throwing destructor inside ~optional (noexcept), a terminate trap.
    Spec s;
    bool forked = false;
    if (rest != 0 && slot < slot_count) {
      s = rt.fork(ctx, model, [=, this](Ctx& c) {
        uint64_t v = count_candidates(c, cols, d1, d2, rest, depth, id,
                                      ordinal + 1);
        shared(c, &slots[slot]) = v;
      });
      forked = true;
    }
    uint64_t mine = descend(ctx, cols | bit, ((d1 | bit) << 1) & full,
                            (d2 | bit) >> 1, depth + 1, child_id);
    ctx.check_point();
    if (forked) {
      rt.join(ctx, s);
      rest_count = shared(ctx, &slots[slot]);
    } else if (rest != 0) {
      rest_count =
          count_candidates(ctx, cols, d1, d2, rest, depth, id, ordinal + 1);
    }
    return mine + rest_count;
  }
};

}  // namespace

SeqRun NQueen::run_seq(const Params& p) {
  Stopwatch sw;
  uint64_t count = solve_seq(p.n, 0, 0, 0);
  return SeqRun{hash_mix(hash_begin(), count), sw.elapsed_sec()};
}

SpecRun NQueen::run_spec(Runtime& rt, const Params& p, ForkModel model) {
  // Upper bound on fork-site slots: node ids stay below (n+1)^cutoff.
  size_t ids = 1;
  for (int i = 0; i < p.cutoff; ++i) ids *= static_cast<size_t>(p.n) + 1;
  SharedArray<uint64_t> slots(rt, ids * static_cast<size_t>(p.n) + 1, 0);
  Stopwatch sw;
  uint64_t count = 0;
  RunStats stats = rt.run([&](Ctx& ctx) {
    SpecNq nq{rt, p.n, p.cutoff, model, slots.data(), slots.size()};
    count = nq.descend(ctx, 0, 0, 0, 0, 0);
  });
  double secs = sw.elapsed_sec();
  return SpecRun{hash_mix(hash_begin(), count), secs, stats};
}

}  // namespace mutls::workloads
