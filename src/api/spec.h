// Speculation control of the native MUTLS embedding (API v2, layer 2 of 4):
// one fork entry point, explicit and RAII join handles, and the Runtime.
//
// This is the call sequence the paper's speculator pass emits, packaged as
// a direct API so C++ programs can speculate without going through the IR
// path: fork() is MUTLS_get_CPU + save-live-locals + MUTLS_speculate,
// join() is MUTLS_validate_local + MUTLS_synchronize (re-executing the
// speculated region inline on rollback, exactly what the non-speculative
// thread does after a failed speculation). The end of a speculated region
// is its barrier point.
//
// Usage sketch (tree-form divide and conquer):
//
//   mutls::Runtime rt({.num_cpus = 8});
//   rt.run([&](mutls::Ctx& ctx) { solve(rt, ctx, root_problem); });
//
//   void solve(Runtime& rt, Ctx& ctx, Problem p) {
//     if (p.small()) { leaf(ctx, p); return; }
//     auto [a, b] = p.split();
//     {
//       auto s = rt.fork_scoped(ctx, {.model = ForkModel::kMixed},
//                               [&, b](Ctx& c) { solve(rt, c, b); });
//       solve(rt, ctx, a);
//     }  // s joins here: commit, or re-execute b inline on rollback
//     p.combine(ctx);
//   }
//
// Every fork shape goes through the single `Runtime::fork(ctx, ForkOpts,
// body)`: plain speculation, live-in prediction (`.predictions`), and the
// detached loop-chain form (`.tag`/`.detached`) that v1 exposed as three
// separate entry points (fork / fork_predicted / fork_tagged).
#pragma once

#include <cstdint>
#include <cstring>
#include <exception>
#include <optional>
#include <thread>
#include <utility>

#include "api/ctx.h"
#include "api/scalar_access.h"
#include "runtime/thread_manager.h"
#include "support/check.h"
#include "support/inline_task.h"
#include "support/small_vec.h"
#include "support/timing.h"

namespace mutls {

// Live-in prediction (paper IV-G4): `parent_addr` names the parent-side
// variable; `predicted` is the value the child was given. At the join
// point the parent validates that its variable indeed holds the predicted
// value, otherwise the child is forced to roll back.
struct Prediction {
  const void* parent_addr;
  uint64_t predicted;
  size_t size;

  template <typename T>
  static Prediction of(const T* addr, T value) {
    static_assert(sizeof(T) <= 8 && std::is_trivially_copyable_v<T>);
    uint64_t raw = 0;
    std::memcpy(&raw, &value, sizeof(T));
    return Prediction{addr, raw, sizeof(T)};
  }
};

// Predictions ride through ForkOpts by value and are retained by the Spec
// until its join validates them; four inline slots cover every realistic
// live-in list without touching the heap.
using PredictionList = SmallVec<Prediction, 4>;

// The one fork entry point's options. Defaults give a plain mixed-model
// speculation; the fields subsume the v1 fork_predicted / fork_tagged
// variants.
struct ForkOpts {
  ForkModel model = ForkModel::kMixed;

  // Live-in value predictions: `predictions[i]` is stored into the child's
  // RegisterBuffer slot i (readable via Ctx::get_livein<T>(i)) and
  // validated against the parent's variable at the join point. Incompatible
  // with `detached` (validation happens in join(), which detached forks
  // never pass through) — fork() CHECKs the combination.
  PredictionList predictions{};

  // Opaque payload the eventual joiner receives through join_next(); used
  // by detached loop chains to re-execute a region after rollback.
  uint64_t tag = 0;

  // Detached fork (the loop-chain pattern): the forker does NOT join this
  // child; the child is left on the children stack to be *adopted* by
  // whoever joins the forker (paper IV-F: a joined child's children are
  // preserved). The returned Spec carries no join obligation; only
  // speculated() is meaningful on it.
  bool detached = false;
};

// Handle of one speculation attempt; also carries the speculated region so
// join() can execute it inline when speculation failed or rolled back.
// Joining is an obligation: Runtime::run CHECKs that no speculative thread
// outlives the run, and Runtime::join CHECKs against double joins. Prefer
// ScopedSpec, which discharges the obligation by scope discipline.
class Spec {
 public:
  Spec() = default;
  // Move-only, and the move consumes the source: a copy (or a defaulted
  // move that leaves the source intact) would carry an independent joined_
  // flag, letting the same speculation be joined twice past the
  // double-join CHECK.
  Spec(Spec&& o) noexcept
      : ref_(o.ref_),
        speculated_(o.speculated_),
        detached_(o.detached_),
        joined_(o.joined_),
        task_(std::move(o.task_)),
        predictions_(std::move(o.predictions_)),
        unwind_depth_(o.unwind_depth_) {
    o.speculated_ = false;
    o.joined_ = true;
  }
  Spec& operator=(Spec&& o) noexcept {
    if (this != &o) {
      MUTLS_CHECK(joined_ || !task_,
                  "Spec overwritten without join (missing join: even a "
                  "denied fork defers its region to join())");
      ref_ = o.ref_;
      speculated_ = o.speculated_;
      detached_ = o.detached_;
      joined_ = o.joined_;
      task_ = std::move(o.task_);
      predictions_ = std::move(o.predictions_);
      unwind_depth_ = o.unwind_depth_;
      o.speculated_ = false;
      o.joined_ = true;
    }
    return *this;
  }
  Spec(const Spec&) = delete;
  Spec& operator=(const Spec&) = delete;

  // Dropping an unjoined handle is the one misuse the run-drain cannot see
  // when the fork was denied (the deferred region would silently never
  // run), so it is policed here for granted and denied forks alike.
  // Exception unwind (relative to the handle's construction, like
  // ScopedSpec) is exempt: abandoning the region is then deliberate — a
  // doomed speculative task unwinds via SpecAbort and the worker NOSYNCs
  // its subtree (ScopedSpec makes the same choice via discard).
  ~Spec() {
    MUTLS_CHECK(joined_ || !task_ ||
                    std::uncaught_exceptions() > unwind_depth_,
                "Spec destroyed without join (missing join: even a denied "
                "fork defers its region to join())");
  }

  bool speculated() const { return speculated_; }
  bool detached() const { return detached_; }
  bool joined() const { return joined_; }
  int rank() const { return ref_.rank; }

 private:
  friend class Runtime;
  ChildRef ref_;
  bool speculated_ = false;
  bool detached_ = false;
  bool joined_ = false;
  // The retained region, for inline (re-)execution at join. An InlineTask
  // bound to the forker's arena: bodies that outgrow the inline buffer
  // spill into arena storage that the forker's own epoch reclaims — never
  // the global heap at steady state. The handle must therefore not outlive
  // the forking thread's epoch, which the join obligation already enforces.
  InlineTask<void(Ctx&)> task_;
  PredictionList predictions_;
  int unwind_depth_ = std::uncaught_exceptions();
};

enum class JoinOutcome {
  kCommitted,   // speculation validated and committed
  kRolledBack,  // speculation failed; region re-executed inline
  kSequential,  // speculation was never granted; region executed inline
  kDiscarded,   // region abandoned (ScopedSpec destroyed during unwind)
};

class ScopedSpec;

class Runtime {
 public:
  struct Options {
    int num_cpus = 4;
    int buffer_log2 = 16;
    size_t overflow_cap = 4096;
    // Speculative-buffer backend (see "Choosing a buffer backend" in the
    // README): kStaticHash dooms the speculation on overflow pressure,
    // kGrowableLog resizes instead, kAdaptive starts each virtual-CPU slot
    // on the static hash and flips it to the growable log after repeated
    // overflow events (the two knobs below; ignored otherwise).
    BufferBackend buffer_backend = BufferBackend::kStaticHash;
    uint64_t adaptive_overflow_threshold = 4;
    uint64_t adaptive_calm_hysteresis = 16;
    // Value prediction (see "Value prediction" in the README): when
    // enabled, each virtual-CPU slot trains a last-value/stride predictor
    // on conflicting read-set words and lets confident first-touch reads
    // adopt the predicted settled value — turning would-be rollbacks on
    // conflict-heavy workloads into validated commits (saved_rollbacks);
    // mispredicts doom through the ordinary rollback path.
    bool predict_enabled = false;
    uint32_t predict_confidence_threshold = 2;
    uint64_t predict_stride_window = 1u << 16;
    int predict_table_log2 = 8;
    int register_slots = 256;
    double rollback_probability = 0.0;
    uint64_t seed = 0x5eed;
    std::optional<ForkModel> model_override;
    // Worker handoff spin budget; 0 calibrates a machine-appropriate value
    // per NUMA node at first manager construction (see ManagerConfig).
    int handoff_spin_budget = 0;
    // NUMA shape (see "NUMA-aware scaling" in the README): 0 probes the
    // machine topology (sysfs, single-node fallback); a positive value
    // fakes that many nodes — per-node idle freelists, same-node-first
    // child placement, and the kNumaSharded backend's shard count all
    // derive from it. numa_shard_region_log2 sets the contiguous byte
    // range one shard covers (kNumaSharded only).
    int numa_nodes = 0;
    int numa_shard_region_log2 = 12;
    // How long run() waits for a protocol violation (a fork the user never
    // joined) to drain before CHECK-failing instead of hanging.
    uint64_t missing_join_timeout_ns = 5'000'000'000ull;
  };

  explicit Runtime(const Options& opt)
      : mgr_(manager_config_from(opt, opt.register_slots)),
        missing_join_timeout_ns_(opt.missing_join_timeout_ns) {}

  // __builtin_MUTLS_fork: attempts to speculate `body` (the code that
  // follows the matching join point). Returns a handle; when speculation is
  // denied the handle simply defers `body` to join(). This is the single
  // fork entry point — ForkOpts selects the model, live-in predictions and
  // the detached loop-chain form.
  template <typename F>
  Spec fork(Ctx& ctx, ForkOpts opts, F&& body) {
    MUTLS_CHECK(!opts.detached || opts.predictions.empty(),
                "detached forks cannot carry live-in predictions: they are "
                "joined via join_next(), which does not validate them");
    for (const Prediction& p : opts.predictions) {
      // Prediction is a public aggregate; only Prediction::of static_asserts
      // the size, so hand-built entries must be policed here — join() copies
      // `size` bytes into 8-byte scalars.
      MUTLS_CHECK(p.size > 0 && p.size <= sizeof(uint64_t),
                  "Prediction.size must be 1..8 bytes");
    }
    static_assert(std::is_copy_constructible_v<std::decay_t<F>>,
                  "fork bodies must be copyable: the joiner keeps a copy "
                  "for inline re-execution on rollback");
    Spec s;
    s.detached_ = opts.detached;
    // The handle keeps its own copy of the region (join may run it inline),
    // stored in the *forker's* arena; the speculated wrapper below is
    // emplaced by speculate() into the *child's* arena. Neither touches the
    // global heap at steady state.
    s.task_.emplace(body, &ctx.thread_data().arena);
    s.predictions_ = std::move(opts.predictions);
    const PredictionList& predictions = s.predictions_;
    const uint64_t tag = opts.tag;
    // MUTLS_set_regvar_*: the proxy stores predicted live-ins into the
    // child's RegisterBuffer before the stub starts consuming them.
    auto setup = [&predictions, tag](ThreadData& child) {
      child.user_tag = tag;
      int off = 0;
      for (const Prediction& p : predictions) {
        child.lbuf.top().regs.set(off++, p.predicted);
      }
    };
    int rank = mgr_.speculate(
        ctx.thread_data(), opts.model,
        [this, body = std::forward<F>(body)](ThreadData& td) mutable {
          Ctx child(*this, td);
          body(child);
        },
        setup);
    if (rank != 0) {
      s.speculated_ = true;
      s.ref_ = ctx.thread_data().children.back();
    }
    if (s.detached_) {
      // No join obligation on the handle: the child (if any) awaits
      // adoption, and a denied detached fork is simply the caller's job to
      // continue inline.
      s.joined_ = true;
    }
    return s;
  }

  // Convenience overload for the common plain-speculation case.
  template <typename F>
  Spec fork(Ctx& ctx, ForkModel model, F&& body) {
    return fork(ctx, ForkOpts{.model = model}, std::forward<F>(body));
  }

  // RAII forms of the above: the returned ScopedSpec joins when it leaves
  // scope (or discards the speculation when leaving scope by exception),
  // turning a missing join from a runtime CHECK into scope discipline.
  template <typename F>
  ScopedSpec fork_scoped(Ctx& ctx, ForkOpts opts, F&& body);
  template <typename F>
  ScopedSpec fork_scoped(Ctx& ctx, ForkModel model, F&& body);

  struct AdoptedJoin {
    bool joined = false;  // false: no child was on the stack
    JoinOutcome outcome = JoinOutcome::kSequential;
    uint64_t tag = 0;
  };

  // Joins the most recent child on the caller's children stack (own or
  // adopted). On rollback the caller is responsible for re-executing the
  // region identified by `tag` (typically after NOSYNC-ing the rest of the
  // chain, since in-order semantics cascade the rollback).
  AdoptedJoin join_next(Ctx& ctx) {
    AdoptedJoin r;
    ThreadData& td = ctx.thread_data();
    if (td.children.empty()) return r;
    r.joined = true;
    ChildRef ref = td.children.back();
    auto jr = mgr_.synchronize(td, ref, false, &r.tag);
    r.outcome = jr == ThreadManager::JoinResult::kCommit
                    ? JoinOutcome::kCommitted
                    : JoinOutcome::kRolledBack;
    return r;
  }

  // __builtin_MUTLS_join: synchronizes with the speculation `s`. On commit
  // the speculated effects are already visible through the joiner's view;
  // on rollback (or when speculation never happened) the region runs inline
  // in the joiner's context. Each Spec must be joined exactly once.
  JoinOutcome join(Ctx& ctx, Spec& s) {
    MUTLS_CHECK(!s.detached_,
                "detached forks carry no join obligation; adopted children "
                "are joined via join_next()");
    MUTLS_CHECK(!s.joined_, "double join of a Spec");
    s.joined_ = true;
    if (!s.speculated_) {
      s.task_(ctx);
      return JoinOutcome::kSequential;
    }
    // MUTLS_validate_local: live-in predictions must match the parent's
    // actual values at the join point (paper IV-G4). The parent-side reads
    // go through the relaxed path like every other direct access, keeping
    // the protocol free of C++ data races.
    bool force_rollback = false;
    for (const Prediction& p : s.predictions_) {
      uint64_t cur = 0;
      relaxed_load_bytes(p.parent_addr, &cur, p.size);
      uint64_t want = 0;
      std::memcpy(&want, &p.predicted, p.size);
      if (cur != want) {
        force_rollback = true;
        break;
      }
    }
    ThreadManager::JoinResult r =
        mgr_.synchronize(ctx.thread_data(), s.ref_, force_rollback);
    if (r == ThreadManager::JoinResult::kCommit) {
      return JoinOutcome::kCommitted;
    }
    s.task_(ctx);
    return JoinOutcome::kRolledBack;
  }

  // Abandons the speculation `s` without executing its region: the child
  // (and its subtree) is NOSYNC-discarded, and a deferred task is dropped.
  // This is the unwind path of ScopedSpec — when an exception abandons the
  // code between fork and join, the speculated continuation must not
  // survive it.
  void discard(Ctx& ctx, Spec& s) {
    if (s.joined_ || s.detached_) return;
    s.joined_ = true;
    if (!s.speculated_) return;
    ThreadData& td = ctx.thread_data();
    for (size_t i = td.children.size(); i-- > 0;) {
      if (td.children[i].rank == s.ref_.rank &&
          td.children[i].epoch == s.ref_.epoch) {
        // Discard this child and everything forked after it: unwinding
        // scopes release LIFO, so later children belong to the abandoned
        // region too.
        mgr_.nosync_children(td, i);
        return;
      }
    }
    // Child no longer on the stack (a cascade already consumed it).
  }

  // Runs `f` as the non-speculative thread of one measured region and
  // returns the aggregated statistics of the run.
  template <typename F>
  RunStats run(F&& f) {
    mgr_.begin_run();
    Ctx root(*this, mgr_.root());
    f(root);
    // Joins and discards are synchronous handshakes, so a conforming run
    // ends with no live speculation; the bounded drain below only covers
    // protocol violations (a fork the user never joined) so they surface
    // as a CHECK instead of a hang.
    uint64_t deadline = now_ns() + missing_join_timeout_ns_;
    while (mgr_.live_threads() != 0 && now_ns() < deadline) {
      std::this_thread::yield();
    }
    MUTLS_CHECK(mgr_.live_threads() == 0,
                "speculative threads outlived the run (missing join)");
    mgr_.end_run();
    return mgr_.collect_stats();
  }

  // Address-space registration (paper IV-G1).
  void register_memory(const void* p, size_t n) { mgr_.register_space(p, n); }
  void unregister_memory(const void* p, size_t n) {
    mgr_.unregister_space(p, n);
  }

  ThreadManager& manager() { return mgr_; }
  int num_cpus() const { return mgr_.num_cpus(); }

 private:
  friend class Ctx;

  ThreadManager mgr_;
  uint64_t missing_join_timeout_ns_;
};

// RAII speculation scope: holds the join obligation of one fork. Leaving
// scope normally joins (commit, or inline re-execution on rollback);
// leaving scope by exception discards the speculation instead — the region
// between fork and join was abandoned, so its speculated continuation is
// NOSYNC-ed rather than executed. Declaration order doubles as join order:
// scopes unwind LIFO, which is exactly the mixed-model assumption.
class ScopedSpec {
 public:
  ScopedSpec(Runtime& rt, Ctx& ctx, Spec s)
      : rt_(&rt),
        ctx_(&ctx),
        s_(std::move(s)),
        unwind_depth_(std::uncaught_exceptions()) {}

  ScopedSpec(ScopedSpec&& o) noexcept
      : rt_(o.rt_),
        ctx_(o.ctx_),
        s_(std::move(o.s_)),
        active_(o.active_),
        outcome_(o.outcome_),
        unwind_depth_(o.unwind_depth_) {
    o.active_ = false;
  }
  ScopedSpec(const ScopedSpec&) = delete;
  ScopedSpec& operator=(const ScopedSpec&) = delete;
  ScopedSpec& operator=(ScopedSpec&&) = delete;

  // Joining can re-execute the region inline, which inside a doomed
  // speculative parent legitimately throws SpecAbort — hence not noexcept.
  ~ScopedSpec() noexcept(false) {
    if (!active_) return;
    active_ = false;
    if (std::uncaught_exceptions() > unwind_depth_) {
      // Unwinding: the region this speculation continues was abandoned.
      rt_->discard(*ctx_, s_);
      outcome_ = JoinOutcome::kDiscarded;
      return;
    }
    outcome_ = rt_->join(*ctx_, s_);
  }

  // Early explicit join, for when the result is needed before scope end.
  // Exactly one join per scope: joining an already-joined or moved-from
  // scope is a CHECK failure.
  JoinOutcome join() {
    MUTLS_CHECK(active_,
                "join of an inactive ScopedSpec (already joined or moved "
                "from)");
    active_ = false;
    outcome_ = rt_->join(*ctx_, s_);
    return outcome_;
  }

  bool speculated() const { return s_.speculated(); }
  bool joined() const { return !active_; }
  JoinOutcome outcome() const { return outcome_; }

 private:
  Runtime* rt_;
  Ctx* ctx_;
  Spec s_;
  bool active_ = true;
  JoinOutcome outcome_ = JoinOutcome::kSequential;
  int unwind_depth_;
};

template <typename F>
ScopedSpec Runtime::fork_scoped(Ctx& ctx, ForkOpts opts, F&& body) {
  MUTLS_CHECK(!opts.detached, "a detached fork has no scope to join");
  Spec s = fork(ctx, std::move(opts), std::forward<F>(body));
  return ScopedSpec(*this, ctx, std::move(s));
}

template <typename F>
ScopedSpec Runtime::fork_scoped(Ctx& ctx, ForkModel model, F&& body) {
  return fork_scoped(ctx, ForkOpts{.model = model}, std::forward<F>(body));
}

}  // namespace mutls
