// Region profiler of the execution engine (tier (b) of ROADMAP item 5).
//
// A region is a natural loop named by its (function, header-block) pair;
// the decoder discovers regions at module load (see exec/dispatch.h) and
// the dispatcher's branch handlers pay exactly one relaxed atomic increment
// per executed back edge. This header is the read side: cheap snapshots of
// the per-region heat counters, ordered hottest-first, plus a reset for
// benchmark phases. The same counters are what a future JIT policy would
// consult to pick compilation candidates; today they feed RunStats,
// bench_interp_dispatch and BENCH_results.json.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mutls::exec {

class DecodedModule;

// One region's heat at snapshot time.
struct RegionHeat {
  std::string function;
  std::string header;       // header block label
  uint32_t header_block = 0;
  uint64_t count = 0;       // back-edge executions since the last reset
  bool compiled = false;    // a native body is registered
};

// All regions of the module, hottest first (ties: function, then block).
std::vector<RegionHeat> snapshot_heat(const DecodedModule& dm);

}  // namespace mutls::exec
