// N-queens — Table II row 8.
//
// Depth-first search over placements, counting solutions. Speculation uses
// the method-level continuation pattern: at each search node above the
// cutoff depth, the thread forks the *rest of the candidate columns* as a
// continuation and descends into the first candidate itself — under the
// mixed model this unfolds the whole top of the search tree into a tree of
// threads, which is precisely the scenario where the paper shows mixed
// beating in-order and out-of-order. Each speculated continuation writes
// its solution count into a dedicated slot (deterministically numbered
// search-tree addresses), so the search is conflict-free, matching the
// paper's observation that nqueen exhibits no rollbacks.
// Paper size: 14 queens.
#pragma once

#include "workloads/workload.h"

namespace mutls::workloads {

struct NQueen {
  struct Params {
    int n = 10;
    int cutoff = 3;  // speculate in the top `cutoff` rows
  };

  static constexpr const char* kName = "nqueen";
  static constexpr Pattern kPattern = Pattern::kDepthFirstSearch;

  // Pure sequential solver on bitmasks (no shared-memory access).
  static uint64_t solve_seq(int n, uint32_t cols, uint32_t d1, uint32_t d2);

  static SeqRun run_seq(const Params& p);
  static SpecRun run_spec(Runtime& rt, const Params& p, ForkModel model);
};

}  // namespace mutls::workloads
