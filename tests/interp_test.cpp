// End-to-end tests of IR execution with thread-level speculation: the
// universality claim of the paper exercised at the IR level.
#include "interp/interp.h"

#include <gtest/gtest.h>

#include <cstring>

namespace mutls::interp {
namespace {

using ir::parse_module;

Interpreter::Options opts(int cpus = 2) {
  Interpreter::Options o;
  o.num_cpus = cpus;
  o.buffer_log2 = 10;
  return o;
}

TEST(Interp, StraightLineArithmetic) {
  Interpreter it(parse_module(R"(
func @f(%a: i64, %b: i64) : i64 {
entry:
  %s = add %a, %b
  %two = const i64 2
  %m = mul %s, %two
  ret %m
}
)"),
                 opts());
  EXPECT_EQ(it.call("f", {3, 4}), 14u);
}

TEST(Interp, LoopsAndPhis) {
  Interpreter it(parse_module(R"(
func @sum(%n: i64) : i64 {
entry:
  %zero = const i64 0
  %one = const i64 1
  br loop
loop:
  %i = phi i64 [%zero, entry], [%inc, loop]
  %s = phi i64 [%zero, entry], [%s2, loop]
  %s2 = add %s, %i
  %inc = add %i, %one
  %c = icmp slt %inc, %n
  condbr %c, loop, done
done:
  ret %s2
}
)"),
                 opts());
  EXPECT_EQ(it.call("sum", {10}), 45u);
}

TEST(Interp, GlobalsLoadsStores) {
  Interpreter it(parse_module(R"(
global @cell : i64[4] = {10, 20, 30, 40}
func @get(%i: i64) : i64 {
entry:
  %base = globaladdr @cell
  %p = gep %base, %i, 8
  %v = load i64, %p
  ret %v
}
func @inc(%i: i64) : i64 {
entry:
  %base = globaladdr @cell
  %p = gep %base, %i, 8
  %v = load i64, %p
  %one = const i64 1
  %v2 = add %v, %one
  store %v2, %p
  ret %v2
}
)"),
                 opts());
  EXPECT_EQ(it.call("get", {2}), 30u);
  EXPECT_EQ(it.call("inc", {2}), 31u);
  EXPECT_EQ(it.call("get", {2}), 31u);
}

TEST(Interp, CallsAndRecursion) {
  Interpreter it(parse_module(R"(
func @fib(%n: i64) : i64 {
entry:
  %two = const i64 2
  %c = icmp slt %n, %two
  condbr %c, base, rec
base:
  ret %n
rec:
  %one = const i64 1
  %n1 = sub %n, %one
  %n2 = sub %n, %two
  %f1 = call i64 @fib(%n1)
  %f2 = call i64 @fib(%n2)
  %s = add %f1, %f2
  ret %s
}
)"),
                 opts());
  EXPECT_EQ(it.call("fib", {10}), 55u);
}

TEST(Interp, FloatArithmetic) {
  Interpreter it(parse_module(R"(
func @fma(%a: f64, %b: f64) : f64 {
entry:
  %p = fmul %a, %b
  %s = fadd %p, %a
  ret %s
}
)"),
                 opts());
  double a = 2.5, b = 4.0;
  uint64_t ra, rb;
  memcpy(&ra, &a, 8);
  memcpy(&rb, &b, 8);
  uint64_t r = it.call("fma", {ra, rb});
  double d;
  memcpy(&d, &r, 8);
  EXPECT_DOUBLE_EQ(d, 2.5 * 4.0 + 2.5);
}

TEST(Interp, AllocaIsPrivateMemory) {
  Interpreter it(parse_module(R"(
func @scratch() : i64 {
entry:
  %p = alloca 16
  %v = const i64 99
  store %v, %p
  %r = load i64, %p
  ret %r
}
)"),
                 opts());
  EXPECT_EQ(it.call("scratch"), 99u);
}

// The paper's Figure 1 pattern: fork, work, join, barrier. The speculative
// thread executes the store to @flag while the parent computes.
const char* kForkJoin = R"(
global @out : i64[2]
func @work(%n: i64) : i64 {
entry:
  %zero = const i64 0
  %one = const i64 1
  %base = globaladdr @out
  %p1 = gep %base, %one, 8
  %forty = const i64 40
  %two = const i64 2
  %fortytwo = add %forty, %two
  mutls.fork 0, mixed
  br loop
loop:
  %i = phi i64 [%zero, entry], [%inc, loop]
  %s = phi i64 [%zero, entry], [%s2, loop]
  %s2 = add %s, %i
  %inc = add %i, %one
  %c = icmp slt %inc, %n
  condbr %c, loop, joinblk
joinblk:
  store %s2, %base
  mutls.join 0
  store %fortytwo, %p1
  mutls.barrier 0
  %r1 = load i64, %base
  %r2 = load i64, %p1
  %sum = add %r1, %r2
  ret %sum
}
)";

TEST(Interp, SpeculativeForkJoinCommits) {
  Interpreter it(parse_module(kForkJoin), opts(2));
  // Sequential result: sum(0..9) = 45 in out[0], 42 in out[1], ret 87.
  EXPECT_EQ(it.call("work", {10}), 87u);
  RunStats rs = it.collect_stats();
  EXPECT_GE(rs.speculative_threads + rs.critical.fork_denied, 1u);
}

TEST(Interp, SpeculationMatchesSequentialOnOneCpuDenial) {
  // With all CPUs busy the fork is denied and execution is sequential;
  // results must be identical.
  Interpreter it(parse_module(kForkJoin), opts(1));
  EXPECT_EQ(it.call("work", {10}), 87u);
}

TEST(Interp, ValuePredictionConflictRollsBack) {
  // The speculative continuation reads @cell, which the parent writes
  // between fork and join: the speculation must roll back and re-execute,
  // producing the sequential result.
  Interpreter it(parse_module(R"(
global @cell : i64[1] = {5}
global @res : i64[1]
func @work() : i64 {
entry:
  %base = globaladdr @cell
  mutls.fork 0, mixed
  %seven = const i64 7
  store %seven, %base
  mutls.join 0
  %v = load i64, %base
  %r = globaladdr @res
  store %v, %r
  mutls.barrier 0
  %out = load i64, %r
  ret %out
}
)"),
                 opts(2));
  EXPECT_EQ(it.call("work"), 7u);
}

TEST(Interp, LoopChainAtIrLevel) {
  // Loop speculation through the IR intrinsics: each iteration forks the
  // remaining iterations. The result must equal the sequential sum.
  Interpreter it(parse_module(R"(
global @acc : i64[64]
func @work(%n: i64) : i64 {
entry:
  %zero = const i64 0
  %one = const i64 1
  br head
head:
  %i = phi i64 [%zero, entry], [%inc, tail]
  mutls.fork 1, mixed
  mutls.join 1
  %base = globaladdr @acc
  %p = gep %base, %i, 8
  %sq = mul %i, %i
  store %sq, %p
  br tail
tail:
  %inc = add %i, %one
  %c = icmp slt %inc, %n
  condbr %c, head, done
done:
  %r = load i64, %base
  ret %r
}
)"),
                 opts(2));
  it.call("work", {16});
  auto* acc = static_cast<int64_t*>(it.global_addr("acc"));
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(acc[i], static_cast<int64_t>(i) * i) << i;
  }
}

TEST(Interp, TerminatePointDefersExternalCall) {
  // print_i64 is unsafe to speculate: the child stops at the call and the
  // parent executes it after commit — output appears exactly once, in
  // order.
  Interpreter it(parse_module(R"(
func @work() : i64 {
entry:
  mutls.fork 0, mixed
  %x = const i64 1
  mutls.join 0
  %v = const i64 123
  call @print_i64(%v)
  mutls.barrier 0
  ret %x
}
)"),
                 opts(2));
  it.call("work");
  ASSERT_EQ(it.printed.size(), 1u);
  EXPECT_EQ(it.printed[0], 123);
}

TEST(Interp, RollbackInjectionPreservesResults) {
  Interpreter::Options o = opts(2);
  o.rollback_probability = 1.0;
  Interpreter it(parse_module(kForkJoin), o);
  EXPECT_EQ(it.call("work", {10}), 87u);
  RunStats rs = it.collect_stats();
  EXPECT_GT(rs.speculative.rollbacks + rs.critical.fork_denied, 0u);
}

TEST(Interp, ModelOverrideAppliesAtIrLevel) {
  Interpreter::Options o = opts(2);
  o.model_override = ForkModel::kOutOfOrder;
  Interpreter it(parse_module(kForkJoin), o);
  EXPECT_EQ(it.call("work", {10}), 87u);
}

}  // namespace
}  // namespace mutls::interp
