// Tree-form speculation on a depth-first search (the paper's headline
// scenario for the mixed forking model).
//
// Every search node forks its remaining candidates as a *continuation*
// (method-level speculation); under the mixed model the children fork
// further, unfolding the top of the search tree into a tree of threads —
// the case where in-order extracts only top-level parallelism and
// out-of-order descends into a single branch (paper section II).
//
// Run with a model argument to compare:  ./examples/nqueen_dfs [mixed|inorder|ooo]
#include <cstdio>
#include <cstring>

#include "mutls/mutls.h"
#include "support/timing.h"
#include "workloads/nqueen.h"

int main(int argc, char** argv) {
  using namespace mutls;
  ForkModel model = ForkModel::kMixed;
  if (argc > 1 && !std::strcmp(argv[1], "inorder")) {
    model = ForkModel::kInOrder;
  } else if (argc > 1 && !std::strcmp(argv[1], "ooo")) {
    model = ForkModel::kOutOfOrder;
  }

  workloads::NQueen::Params p;
  p.n = 11;
  p.cutoff = 3;

  workloads::SeqRun seq = workloads::NQueen::run_seq(p);

  Runtime rt({.num_cpus = 4, .buffer_log2 = 12});
  workloads::SpecRun spec = workloads::NQueen::run_spec(rt, p, model);

  std::printf("%d-queens under the %s model\n", p.n, fork_model_name(model));
  std::printf("results match sequential: %s\n",
              spec.checksum == seq.checksum ? "yes" : "NO");
  std::printf("sequential: %.3fs   speculative: %.3fs   speedup: %.2f\n",
              seq.seconds, spec.seconds, seq.seconds / spec.seconds);
  std::printf("threads: %llu, commits: %llu, rollbacks: %llu, denied: %llu\n",
              static_cast<unsigned long long>(spec.stats.speculative_threads),
              static_cast<unsigned long long>(spec.stats.speculative.commits),
              static_cast<unsigned long long>(spec.stats.speculative.rollbacks),
              static_cast<unsigned long long>(
                  spec.stats.critical.fork_denied +
                  spec.stats.speculative.fork_denied));
  std::printf("parallel execution coverage C: %.2f\n", spec.stats.coverage());
  return 0;
}
