// Unit tests for speculative memory buffering, validation, commit and the
// tree-form merge (paper IV-G2 and IV-F).
#include "runtime/global_buffer.h"

#include <gtest/gtest.h>

#include <array>
#include <cstring>

namespace mutls {
namespace {

class GlobalBufferTest : public ::testing::Test {
 protected:
  void SetUp() override { buf_.init(8, 64); }

  template <typename T>
  T spec_load(GlobalBuffer& b, const T& var) {
    T out;
    b.load_bytes(reinterpret_cast<uintptr_t>(&var), &out, sizeof(T));
    return out;
  }

  template <typename T>
  void spec_store(GlobalBuffer& b, T& var, T v) {
    b.store_bytes(reinterpret_cast<uintptr_t>(&var), &v, sizeof(T));
  }

  GlobalBuffer buf_;
};

TEST_F(GlobalBufferTest, LoadReadsMainMemoryFirstTouch) {
  alignas(8) uint64_t x = 1234;
  EXPECT_EQ(spec_load(buf_, x), 1234u);
  EXPECT_EQ(buf_.read_entries(), 1u);
}

TEST_F(GlobalBufferTest, LoadReturnsBufferedWrite) {
  alignas(8) uint64_t x = 1;
  spec_store(buf_, x, uint64_t{77});
  EXPECT_EQ(spec_load(buf_, x), 77u);
  EXPECT_EQ(x, 1u) << "store must not touch main memory before commit";
}

TEST_F(GlobalBufferTest, ReadSetKeepsFirstObservation) {
  alignas(8) uint64_t x = 10;
  EXPECT_EQ(spec_load(buf_, x), 10u);
  x = 20;  // main memory changes behind the speculation
  EXPECT_EQ(spec_load(buf_, x), 10u)
      << "subsequent loads come from the read-set";
}

TEST_F(GlobalBufferTest, WriteThenReadDoesNotTouchReadSet) {
  alignas(8) uint64_t x = 5;
  spec_store(buf_, x, uint64_t{6});
  EXPECT_EQ(spec_load(buf_, x), 6u);
  EXPECT_EQ(buf_.read_entries(), 0u)
      << "a fully written word carries no memory dependency";
}

TEST_F(GlobalBufferTest, ValidationSucceedsWhenMemoryUnchanged) {
  alignas(8) uint64_t x = 42;
  spec_load(buf_, x);
  EXPECT_TRUE(buf_.validate_against_memory());
}

TEST_F(GlobalBufferTest, ValidationFailsWhenMemoryChanged) {
  alignas(8) uint64_t x = 42;
  spec_load(buf_, x);
  x = 43;
  EXPECT_FALSE(buf_.validate_against_memory());
}

TEST_F(GlobalBufferTest, CommitWritesWholeWords) {
  alignas(8) uint64_t x = 0;
  spec_store(buf_, x, uint64_t{0x1122334455667788ull});
  buf_.commit_to_memory();
  EXPECT_EQ(x, 0x1122334455667788ull);
}

TEST_F(GlobalBufferTest, SubWordStoreCommitsOnlyMarkedBytes) {
  alignas(8) uint64_t x = 0xffffffffffffffffull;
  auto* bytes = reinterpret_cast<uint8_t*>(&x);
  uint8_t v = 0xab;
  buf_.store_bytes(reinterpret_cast<uintptr_t>(bytes + 2), &v, 1);
  buf_.commit_to_memory();
  EXPECT_EQ(bytes[2], 0xab);
  EXPECT_EQ(bytes[0], 0xff);
  EXPECT_EQ(bytes[3], 0xff);
}

TEST_F(GlobalBufferTest, SubWordLoadBuffersWholeWord) {
  alignas(8) uint32_t pair[2] = {111, 222};
  uint32_t out;
  buf_.load_bytes(reinterpret_cast<uintptr_t>(&pair[0]), &out, 4);
  EXPECT_EQ(out, 111u);
  pair[1] = 999;  // same word, other half changes
  EXPECT_FALSE(buf_.validate_against_memory())
      << "whole-word validation is conservative, as in the paper";
}

TEST_F(GlobalBufferTest, SubWordReadAfterSubWordWriteCombines) {
  alignas(8) uint32_t pair[2] = {1, 2};
  uint32_t nv = 10;
  buf_.store_bytes(reinterpret_cast<uintptr_t>(&pair[0]), &nv, 4);
  // Reading the other (unwritten) half must come from memory.
  uint32_t out;
  buf_.load_bytes(reinterpret_cast<uintptr_t>(&pair[1]), &out, 4);
  EXPECT_EQ(out, 2u);
  // Reading the written half must come from the write-set.
  buf_.load_bytes(reinterpret_cast<uintptr_t>(&pair[0]), &out, 4);
  EXPECT_EQ(out, 10u);
}

TEST_F(GlobalBufferTest, MultiWordAccessSplitsAcrossWords) {
  alignas(8) std::array<uint64_t, 4> arr = {1, 2, 3, 4};
  std::array<uint64_t, 3> nv = {11, 12, 13};
  buf_.store_bytes(reinterpret_cast<uintptr_t>(&arr[0]), nv.data(),
                   sizeof(nv));
  std::array<uint64_t, 3> out{};
  buf_.load_bytes(reinterpret_cast<uintptr_t>(&arr[0]), out.data(),
                  sizeof(out));
  EXPECT_EQ(out, nv);
  buf_.commit_to_memory();
  EXPECT_EQ(arr[0], 11u);
  EXPECT_EQ(arr[1], 12u);
  EXPECT_EQ(arr[2], 13u);
  EXPECT_EQ(arr[3], 4u);
}

TEST_F(GlobalBufferTest, UnalignedAccessStraddlingWordsRoundTrips) {
  alignas(8) std::array<uint8_t, 24> arr{};
  for (size_t i = 0; i < arr.size(); ++i) arr[i] = static_cast<uint8_t>(i);
  // 8-byte access at offset 5 crosses a word boundary.
  uint64_t out = 0;
  buf_.load_bytes(reinterpret_cast<uintptr_t>(arr.data() + 5), &out, 8);
  uint64_t expect = 0;
  std::memcpy(&expect, arr.data() + 5, 8);
  EXPECT_EQ(out, expect);

  uint64_t nv = 0xa0a1a2a3a4a5a6a7ull;
  buf_.store_bytes(reinterpret_cast<uintptr_t>(arr.data() + 5), &nv, 8);
  buf_.commit_to_memory();
  uint64_t readback = 0;
  std::memcpy(&readback, arr.data() + 5, 8);
  EXPECT_EQ(readback, nv);
  EXPECT_EQ(arr[4], 4u);
  EXPECT_EQ(arr[13], 13u);
}

TEST_F(GlobalBufferTest, ResetDiscardsBufferedState) {
  alignas(8) uint64_t x = 3;
  spec_store(buf_, x, uint64_t{9});
  spec_load(buf_, x);
  buf_.reset();
  EXPECT_EQ(buf_.read_entries(), 0u);
  EXPECT_EQ(buf_.write_entries(), 0u);
  buf_.commit_to_memory();
  EXPECT_EQ(x, 3u) << "reset state must not commit anything";
}

TEST_F(GlobalBufferTest, DoomOnOverflowExhaustion) {
  GlobalBuffer tiny;
  tiny.init(4, 2);  // 16 slots, 2 overflow entries
  alignas(8) static uint64_t arena[256];
  // Store to 19 colliding words: slot + 2 overflow + 1 too many.
  for (int i = 0; i < 4; ++i) {
    uint64_t v = i;
    tiny.store_bytes(reinterpret_cast<uintptr_t>(&arena[i * 16]), &v, 8);
  }
  EXPECT_TRUE(tiny.doomed());
  EXPECT_GT(tiny.overflow_events, 0u);
}

// --- tree-form merge (speculative joiner) ---

TEST_F(GlobalBufferTest, ValidateAgainstJoinerSeesJoinerWrites) {
  alignas(8) uint64_t x = 100;
  GlobalBuffer parent;
  parent.init(8, 64);
  // Parent speculatively wrote x = 200 before forking the child; the child
  // read main memory (100) -- a conflict the tree validation must catch.
  spec_store(parent, x, uint64_t{200});
  GlobalBuffer child;
  child.init(8, 64);
  spec_load(child, x);
  EXPECT_FALSE(child.validate_against(parent));
  // If the parent's buffered value matches what the child read, it passes.
  GlobalBuffer child2;
  child2.init(8, 64);
  spec_store(parent, x, uint64_t{100});
  spec_load(child2, x);
  EXPECT_TRUE(child2.validate_against(parent));
}

TEST_F(GlobalBufferTest, MergeOverlaysChildWritesOntoJoiner) {
  alignas(8) uint64_t x = 0, y = 0;
  GlobalBuffer parent, child;
  parent.init(8, 64);
  child.init(8, 64);
  spec_store(parent, x, uint64_t{1});
  spec_store(child, y, uint64_t{2});
  child.merge_into(parent);
  // Parent now holds both writes; committing publishes both.
  parent.commit_to_memory();
  EXPECT_EQ(x, 1u);
  EXPECT_EQ(y, 2u);
}

TEST_F(GlobalBufferTest, MergeChildWriteWinsOverJoinerWrite) {
  // The child is logically *later*, so its write supersedes the joiner's.
  alignas(8) uint64_t x = 0;
  GlobalBuffer parent, child;
  parent.init(8, 64);
  child.init(8, 64);
  spec_store(parent, x, uint64_t{1});
  spec_store(child, x, uint64_t{2});
  child.merge_into(parent);
  parent.commit_to_memory();
  EXPECT_EQ(x, 2u);
}

TEST_F(GlobalBufferTest, MergePropagatesChildReadsForFinalValidation) {
  alignas(8) uint64_t x = 7;
  GlobalBuffer parent, child;
  parent.init(8, 64);
  child.init(8, 64);
  spec_load(child, x);
  child.merge_into(parent);
  EXPECT_TRUE(parent.validate_against_memory());
  x = 8;  // memory changes after the merge: the adopted read must fail
  EXPECT_FALSE(parent.validate_against_memory());
}

TEST_F(GlobalBufferTest, MergeSkipsReadsFullyCoveredByJoinerWrites) {
  alignas(8) uint64_t x = 7;
  GlobalBuffer parent, child;
  parent.init(8, 64);
  child.init(8, 64);
  spec_store(parent, x, uint64_t{7});  // full-word write, same value
  spec_load(child, x);
  child.merge_into(parent);
  x = 99;  // adopted read carried no memory dependency -> still valid
  EXPECT_TRUE(parent.validate_against_memory());
}

TEST_F(GlobalBufferTest, SubWordMergeCombinesMarks) {
  alignas(8) uint64_t x = 0;
  auto* b = reinterpret_cast<uint8_t*>(&x);
  GlobalBuffer parent, child;
  parent.init(8, 64);
  child.init(8, 64);
  uint8_t v1 = 0x11, v2 = 0x22;
  parent.store_bytes(reinterpret_cast<uintptr_t>(b + 0), &v1, 1);
  child.store_bytes(reinterpret_cast<uintptr_t>(b + 1), &v2, 1);
  child.merge_into(parent);
  parent.commit_to_memory();
  EXPECT_EQ(b[0], 0x11);
  EXPECT_EQ(b[1], 0x22);
  EXPECT_EQ(b[2], 0x00);
}

}  // namespace
}  // namespace mutls
