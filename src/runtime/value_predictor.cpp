#include "runtime/value_predictor.h"

#include <cstring>

#include "support/check.h"

namespace mutls {

ValuePredictor::~ValuePredictor() { release_table(); }

void ValuePredictor::release_table() {
  if (table_ != nullptr) {
    arena_release(arena_, table_,
                  (size_t{1} << policy_.table_log2) * sizeof(Entry));
    table_ = nullptr;
  }
}

void ValuePredictor::init(const SpecPredictPolicy& policy, Arena* arena) {
  release_table();
  policy_ = policy;
  arena_ = arena;
  if (!policy_.enabled) return;
  MUTLS_CHECK(policy_.table_log2 >= 0 && policy_.table_log2 <= 20,
              "predict_table_log2 out of range");
  MUTLS_CHECK(policy_.confidence_threshold >= 1,
              "predict confidence threshold must be >= 1");
  size_t bytes = (size_t{1} << policy_.table_log2) * sizeof(Entry);
  table_ = static_cast<Entry*>(arena_grab(arena_, bytes));
  std::memset(table_, 0, bytes);
}

void ValuePredictor::train(uintptr_t word_addr, uint64_t actual) {
  if (table_ == nullptr) return;
  Entry& e = table_[bucket(word_addr)];
  if (e.addr != word_addr) {
    // Collision (or empty bucket). Age the incumbent instead of evicting
    // outright — a confident hot entry should survive one-off conflict
    // addresses that happen to share its bucket.
    if (e.addr != 0 && e.confidence > 0) {
      --e.confidence;
      return;
    }
    e.addr = word_addr;
    e.last_value = actual;
    e.stride = 0;
    e.confidence = 0;
    return;
  }
  uint64_t delta = actual - e.last_value;  // wraparound: negative strides ok
  uint64_t magnitude =
      delta > (~uint64_t{0} >> 1) ? uint64_t{0} - delta : delta;
  if (delta == e.stride) {
    if (e.confidence < kMaxConfidence) ++e.confidence;
  } else if (magnitude <= policy_.stride_window) {
    // New candidate stride inside the window: retarget, restart confidence
    // at 1 (this delta is its first confirmation).
    e.stride = delta;
    e.confidence = 1;
  } else {
    // Chaotic jump: keep tracking the value, drop the stride hypothesis.
    e.stride = 0;
    e.confidence = 0;
  }
  e.last_value = actual;
}

size_t ValuePredictor::entries() const {
  if (table_ == nullptr) return 0;
  size_t n = 0;
  size_t cap = size_t{1} << policy_.table_log2;
  for (size_t i = 0; i < cap; ++i) {
    if (table_[i].addr != 0) ++n;
  }
  return n;
}

uint32_t ValuePredictor::confidence_of(uintptr_t word_addr) const {
  if (table_ == nullptr) return 0;
  const Entry& e = table_[bucket(word_addr)];
  return e.addr == word_addr ? e.confidence : 0;
}

}  // namespace mutls
