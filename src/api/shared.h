// Typed shared-memory views of the native MUTLS embedding (API v2, layer 3
// of 4).
//
// The paper polices every speculative access through the buffer map; in v1
// of the embedding that meant writing `ctx.load(p)` / `ctx.store(p, v)` at
// every call site. These views wrap registered memory behind ordinary
// reference syntax instead: a `SharedRef<T>` (usually obtained by indexing
// a `SharedSpan<T>`) converts to T on read and routes assignment and
// compound assignment through the owning context, so workloads write
// `a[i] += x` and the proxy picks the speculative buffer map or the relaxed
// direct path automatically.
//
//   SharedArray<double> arr(rt, n);        // RAII registration (IV-G1)
//   rt.run([&](Ctx& ctx) {
//     auto a = arr.span(ctx);              // context-bound view
//     a[0] = 1.0;                          // routed store
//     a[1] += a[0];                        // routed load + store
//     double x = a[1];                     // routed load
//   });
#pragma once

#include <cstddef>
#include <vector>

#include "api/ctx.h"
#include "api/spec.h"
#include "support/check.h"

namespace mutls {

// Proxy for one shared scalar bound to an execution context. Copying is
// cheap (two pointers); reading converts to T, writing routes through the
// context. Note `auto x = span[i]` deduces SharedRef — write `T x = span[i]`
// (or use get()) to read a value out.
template <typename T>
class SharedRef {
 public:
  SharedRef(Ctx& ctx, T* p) : ctx_(&ctx), p_(p) {}

  operator T() const { return ctx_->load(p_); }
  T get() const { return ctx_->load(p_); }
  void set(T v) { ctx_->store(p_, v); }

  SharedRef& operator=(T v) {
    ctx_->store(p_, v);
    return *this;
  }
  SharedRef& operator=(const SharedRef& o) {
    set(o.get());
    return *this;
  }
  SharedRef& operator+=(T v) {
    set(static_cast<T>(get() + v));
    return *this;
  }
  SharedRef& operator-=(T v) {
    set(static_cast<T>(get() - v));
    return *this;
  }
  SharedRef& operator*=(T v) {
    set(static_cast<T>(get() * v));
    return *this;
  }
  SharedRef& operator/=(T v) {
    set(static_cast<T>(get() / v));
    return *this;
  }

  // The raw address (for registration bookkeeping / prediction targets).
  T* raw() const { return p_; }

 private:
  Ctx* ctx_;
  T* p_;
};

// Terse view constructor for one-off accesses on computed addresses:
//   shared(ctx, p.at(i, j)) = acc;
template <typename T>
SharedRef<T> shared(Ctx& ctx, T* p) {
  return SharedRef<T>(ctx, p);
}

// Context-bound view over a contiguous run of registered memory. Indexing
// yields routed SharedRef proxies.
template <typename T>
class SharedSpan {
 public:
  SharedSpan(Ctx& ctx, T* data, size_t size)
      : ctx_(&ctx), data_(data), size_(size) {}

  SharedRef<T> operator[](size_t i) const {
    MUTLS_DCHECK(i < size_, "SharedSpan index out of range");
    return SharedRef<T>(*ctx_, data_ + i);
  }

  // Bulk transfers: move `count` elements starting at `offset` through the
  // speculative view in one routed call — one registration check and one
  // buffer-map probe per word instead of per element. Prefer these over an
  // element loop whenever a chunk's elements are consumed or produced
  // together (row sweeps, gather/scatter staging).
  void read(size_t offset, T* out, size_t count) const {
    MUTLS_DCHECK(offset + count <= size_, "SharedSpan read out of range");
    ctx_->load_n(data_ + offset, out, count);
  }
  void write(size_t offset, const T* src, size_t count) const {
    MUTLS_DCHECK(offset + count <= size_, "SharedSpan write out of range");
    ctx_->store_n(data_ + offset, src, count);
  }

  SharedSpan subspan(size_t offset, size_t count) const {
    MUTLS_DCHECK(offset + count <= size_, "SharedSpan subspan out of range");
    return SharedSpan(*ctx_, data_ + offset, count);
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T* data() const { return data_; }
  Ctx& ctx() const { return *ctx_; }

 private:
  Ctx* ctx_;
  T* data_;
  size_t size_;
};

// RAII registered single shared value.
template <typename T>
class Shared {
 public:
  explicit Shared(Runtime& rt, T init = T{}) : rt_(&rt), v_(init) {
    rt_->register_memory(&v_, sizeof(T));
  }
  ~Shared() { rt_->unregister_memory(&v_, sizeof(T)); }

  Shared(const Shared&) = delete;
  Shared& operator=(const Shared&) = delete;

  SharedRef<T> ref(Ctx& ctx) { return SharedRef<T>(ctx, &v_); }
  // Direct access for use outside runs (setup / verification).
  T value() const { return v_; }
  T* raw() { return &v_; }

 private:
  Runtime* rt_;
  T v_;
};

// RAII registered heap array: the paper intercepts malloc/new to register
// heap objects; in the embedding this wrapper plays that role. Direct
// element access (operator[], data()) is for use outside runs; inside a
// run, bind a context with span().
template <typename T>
class SharedArray {
 public:
  SharedArray(Runtime& rt, size_t n, T init = T{})
      : rt_(&rt), data_(n, init) {
    rt_->register_memory(data_.data(), n * sizeof(T));
  }
  ~SharedArray() {
    rt_->unregister_memory(data_.data(), data_.size() * sizeof(T));
  }

  SharedArray(const SharedArray&) = delete;
  SharedArray& operator=(const SharedArray&) = delete;

  SharedSpan<T> span(Ctx& ctx) {
    return SharedSpan<T>(ctx, data_.data(), data_.size());
  }
  SharedRef<T> at(Ctx& ctx, size_t i) {
    MUTLS_DCHECK(i < data_.size(), "SharedArray index out of range");
    return SharedRef<T>(ctx, data_.data() + i);
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  size_t size() const { return data_.size(); }
  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }

 private:
  Runtime* rt_;
  std::vector<T> data_;
};

// RAII registration of an existing object (static / stack-shared data).
class RegisteredRegion {
 public:
  RegisteredRegion(Runtime& rt, const void* p, size_t n)
      : rt_(&rt), p_(p), n_(n) {
    rt_->register_memory(p, n);
  }
  ~RegisteredRegion() { rt_->unregister_memory(p_, n_); }

  RegisteredRegion(const RegisteredRegion&) = delete;
  RegisteredRegion& operator=(const RegisteredRegion&) = delete;

 private:
  Runtime* rt_;
  const void* p_;
  size_t n_;
};

}  // namespace mutls
