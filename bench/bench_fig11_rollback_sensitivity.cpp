// Figure 11 — rollback sensitivity: relative slowdown when the runtime is
// forced to roll back speculations with probability p in {1, 5, 10, 20,
// 50, 100}%, for mandelbrot, md, fft, matmult, nqueen, tsp, bh.
//
// Paper shape: programs with better speedups are more sensitive at low p;
// for most memory-intensive workloads, 5% rollbacks preserve at least 70%
// of the speedup.
#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace mutls;
  using namespace mutls::bench;
  HarnessArgs args = parse_args(argc, argv);
  auto ws = filter(make_workloads(args),
                   {"mandelbrot", "md", "fft", "matmult", "nqueen", "tsp",
                    "bh"});
  const double probs[] = {0.01, 0.05, 0.10, 0.20, 0.50, 1.00};

  if (args.measured) {
    int n = args.measured_cpus.back();
    std::printf(
        "FIG 11 (measured, %d cpus) — speedup relative to the no-rollback "
        "run\n", n);
    std::printf("%-11s", "benchmark");
    for (double p : probs) std::printf(" %6.0f%%", p * 100);
    std::printf("\n");
    for (BenchWorkload& w : ws) {
      workloads::SpecRun base = w.spec(n, ForkModel::kMixed, 0.0);
      std::printf("%-11s", w.name.c_str());
      for (double p : probs) {
        workloads::SpecRun r = w.spec(n, ForkModel::kMixed, p);
        check_checksum(w, r.checksum, base.checksum);
        std::printf(" %6.2f ", base.seconds / r.seconds);
      }
      std::printf("\n");
    }
  }

  if (args.sim) {
    std::printf(
        "\nFIG 11 (simulated, paper scale, 64 cpus) — relative speedup\n");
    std::printf("%-11s", "benchmark");
    for (double p : probs) std::printf(" %6.0f%%", p * 100);
    std::printf("\n");
    for (BenchWorkload& w : ws) {
      sim::SimModel m0 = w.sim_model();
      double base =
          sim::Simulator(sim_opts(64, ForkModel::kMixed)).run(m0).speedup();
      std::printf("%-11s", w.name.c_str());
      for (double p : probs) {
        sim::SimModel m = w.sim_model();
        double s = sim::Simulator(sim_opts(64, ForkModel::kMixed, p))
                       .run(m)
                       .speedup();
        std::printf(" %6.2f ", s / base);
      }
      std::printf("\n");
    }
    std::printf(
        "paper: at 5%% rollbacks most memory-intensive workloads keep >=70%% "
        "of their speedup.\n");
  }
  return 0;
}
