// Figure 3 — absolute speedup of the computation-intensive applications
// (3x+1, mandelbrot, md) versus CPU count.
//
// Paper reference points (64 cores): 3x+1 51.8, mandelbrot 33.6, md 31.9
// for C. Expected shape: near-linear growth, a plateau from 32 to 63 CPUs
// (64 chunks, so at least two run back-to-back) and a jump at 64.
#include <thread>

#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace mutls;
  using namespace mutls::bench;
  HarnessArgs args = parse_args(argc, argv);
  auto ws = filter(make_workloads(args), {"3x+1", "mandelbrot", "md"});

  bool gate_failed = false;
  if (args.measured) {
    std::printf("FIG 3 (measured) — absolute speedup, compute-intensive\n");
    std::printf("%-11s %-6s %-9s %-9s %-9s\n", "benchmark", "cpus", "Ts(s)",
                "Tn(s)", "speedup");
    double worst_best = 1e9;  // the worst per-workload best speedup
    for (BenchWorkload& w : ws) {
      workloads::SeqRun seq = w.seq();
      double best = 1.0;
      for (int n : args.measured_cpus) {
        if (n == 1) {
          std::printf("%-11s %-6d %-9.3f %-9.3f %-9.2f\n", w.name.c_str(), 1,
                      seq.seconds, seq.seconds, 1.0);
          continue;
        }
        workloads::SpecRun r = w.spec(n, ForkModel::kMixed, 0.0);
        check_checksum(w, r.checksum, seq.checksum);
        double speedup = seq.seconds / r.seconds;
        if (speedup > best) best = speedup;
        std::printf("%-11s %-6d %-9.3f %-9.3f %-9.2f\n", w.name.c_str(), n,
                    seq.seconds, r.seconds, speedup);
      }
      if (best < worst_best) worst_best = best;
    }
    // The compute-intensive group is the paper's headline: on a real
    // multi-core box every workload must beat sequential at its best CPU
    // count. A box with fewer than 4 hardware threads can't run enough
    // truly parallel speculative threads for the assertion to be
    // meaningful, so it reports skipped instead of a vacuous failure.
    unsigned hw = std::thread::hardware_concurrency();
    if (hw < 4) {
      std::printf("SPEEDUP-GATE fig=3 status=skipped hw_threads=%u\n", hw);
    } else if (worst_best >= 1.05) {
      std::printf("SPEEDUP-GATE fig=3 status=ok worst_best=%.2f\n",
                  worst_best);
    } else {
      std::printf("SPEEDUP-GATE fig=3 status=fail worst_best=%.2f floor=1.05\n",
                  worst_best);
      gate_failed = true;
    }
  }

  if (args.sim) {
    std::printf("\nFIG 3 (simulated, paper scale) — absolute speedup\n");
    std::printf("%-11s", "benchmark");
    for (int n : args.sim_cpus) std::printf(" %7d", n);
    std::printf("\n");
    for (BenchWorkload& w : ws) {
      std::printf("%-11s", w.name.c_str());
      for (int n : args.sim_cpus) {
        sim::SimModel m = w.sim_model();
        sim::SimResult r = sim::Simulator(sim_opts(n, ForkModel::kMixed)).run(m);
        std::printf(" %7.2f", r.speedup());
      }
      std::printf("\n");
    }
    std::printf("paper@64: 3x+1 51.8, mandelbrot 33.6, md 31.9 (C)\n");
  }
  return gate_failed ? 1 : 0;
}
