// Figure 4 — absolute speedup of the memory-intensive applications
// (fft, matmult, nqueen, tsp, bh) versus CPU count.
//
// Paper reference maxima: fft 3.72, matmult 2.01, nqueen 5.40, tsp 4.86,
// bh 6.55. Expected shape: modest speedups saturating well below the
// compute-intensive curves, with matmult the lowest (rollbacks) and
// nqueen/tsp/bh the best of the group.
#include <thread>

#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace mutls;
  using namespace mutls::bench;
  HarnessArgs args = parse_args(argc, argv);
  auto ws =
      filter(make_workloads(args), {"fft", "matmult", "nqueen", "tsp", "bh"});

  bool gate_failed = false;
  if (args.measured) {
    std::printf("FIG 4 (measured) — absolute speedup, memory-intensive\n");
    std::printf("%-11s %-6s %-9s %-9s %-9s %-9s\n", "benchmark", "cpus",
                "Ts(s)", "Tn(s)", "speedup", "rollbacks");
    double worst_best = 1e9;  // the worst per-workload best speedup
    for (BenchWorkload& w : ws) {
      workloads::SeqRun seq = w.seq();
      double best = 1.0;
      for (int n : args.measured_cpus) {
        if (n == 1) {
          std::printf("%-11s %-6d %-9.3f %-9.3f %-9.2f %-9d\n",
                      w.name.c_str(), 1, seq.seconds, seq.seconds, 1.0, 0);
          continue;
        }
        workloads::SpecRun r = w.spec(n, ForkModel::kMixed, 0.0);
        check_checksum(w, r.checksum, seq.checksum);
        double speedup = seq.seconds / r.seconds;
        if (speedup > best) best = speedup;
        std::printf("%-11s %-6d %-9.3f %-9.3f %-9.2f %-9llu\n",
                    w.name.c_str(), n, seq.seconds, r.seconds, speedup,
                    static_cast<unsigned long long>(
                        r.stats.speculative.rollbacks));
      }
      if (best < worst_best) worst_best = best;
    }
    // The memory-intensive group saturates low (paper maxima 2.01–6.55),
    // so the floor only rules out a pathological slowdown: speculation
    // plus rollbacks must not cost more than ~30% over sequential at the
    // workload's best CPU count. Meaningless under 4 hardware threads —
    // report skipped there rather than asserting into the noise.
    unsigned hw = std::thread::hardware_concurrency();
    if (hw < 4) {
      std::printf("SPEEDUP-GATE fig=4 status=skipped hw_threads=%u\n", hw);
    } else if (worst_best >= 0.70) {
      std::printf("SPEEDUP-GATE fig=4 status=ok worst_best=%.2f\n",
                  worst_best);
    } else {
      std::printf("SPEEDUP-GATE fig=4 status=fail worst_best=%.2f floor=0.70\n",
                  worst_best);
      gate_failed = true;
    }
  }

  if (args.sim) {
    std::printf("\nFIG 4 (simulated, paper scale) — absolute speedup\n");
    std::printf("%-11s", "benchmark");
    for (int n : args.sim_cpus) std::printf(" %7d", n);
    std::printf("\n");
    for (BenchWorkload& w : ws) {
      std::printf("%-11s", w.name.c_str());
      for (int n : args.sim_cpus) {
        sim::SimModel m = w.sim_model();
        sim::SimResult r =
            sim::Simulator(sim_opts(n, ForkModel::kMixed)).run(m);
        std::printf(" %7.2f", r.speedup());
      }
      std::printf("\n");
    }
    std::printf(
        "paper maxima: fft 3.72, matmult 2.01, nqueen 5.40, tsp 4.86, "
        "bh 6.55\n");
  }
  return gate_failed ? 1 : 0;
}
