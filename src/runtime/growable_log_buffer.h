// Growable-log speculative buffering backend, the kGrowableLog backend of
// the SpecBuffer API ("runtime/spec_buffer.h").
//
// Trades the paper's static-hash design point the other way: instead of a
// fixed table with a bounded overflow map that dooms the thread when it
// fills (rollback on capacity pressure), each set is an append-only log of
// (word, data, mark) entries indexed by an open-addressed, linearly-probed
// hash table that *resizes* under load. A speculation can therefore never
// fail for capacity reasons — the cost moves into occasional rehashes and
// longer probe sequences, which the SpecBufferStats counters expose so the
// trade can be measured (bench_ablation_buffer_map).
//
//   log   — densely packed entries in insertion order: validation, commit
//           and merge walk the log linearly, never the sparse index
//   index — power-of-two open-addressed table of log positions (+1, 0 =
//           empty), grown at 3/4 load factor; Fibonacci-mixed home slots
//           keep strided word addresses from clustering
//
// Capacity grows but never shrinks across reset(): a virtual-CPU slot that
// once ran a large speculation keeps its table, amortizing the rehashes.
// Both arrays live in the owning slot's Arena pool when one is attached
// (heap otherwise): a resize releases the old block into a size-class free
// list and grabs the next class, so the read- and write-set of a slot
// recycle each other's outgrown arrays instead of round-tripping malloc.
//
// Like the static hash, this class provides only the word-granular slot
// primitives (WordRef in "runtime/memory.h"); the speculative view
// composition, the MRU word-view cache, validation, commit and the
// tree-form merge policy live once in SpecBuffer. The handles this backend
// hands out are log positions — resize-stable, unlike entry pointers — so
// they stay valid in SpecBuffer's MRU line across rehashes.
#pragma once

#include <cstdint>

#include "runtime/buffer_stats.h"
#include "runtime/memory.h"
#include "support/arena.h"
#include "support/check.h"

namespace mutls {

// One growable set (either the read-set or the write-set).
class GrowableSet {
 public:
  struct Entry {
    uintptr_t word_addr;
    uint64_t data;
    uint64_t mark;
    uint32_t slot;  // index_ slot holding this entry, for O(entries) clear
  };

  // The index never grows past 2^kMaxLog2 slots by default. At that size
  // the load factor is allowed to rise until one empty slot remains (probe
  // termination needs it); the owning buffer dooms the speculation before
  // the next insert instead of aborting the process.
  static constexpr int kMaxLog2 = 28;

  // `log2_entries` fixes the *initial* index capacity; `stats` receives
  // probe and resize counters; `max_log2` lowers the hard capacity below
  // kMaxLog2 (a memory bound, and the seam the doom-path tests use —
  // nothing can allocate its way to 2^28 entries in a test). `arena`, when
  // given, backs the log and index arrays through its persistent pool.
  void init(int log2_entries, SpecBufferStats* stats, int max_log2 = kMaxLog2,
            Arena* arena = nullptr);

  GrowableSet() = default;
  ~GrowableSet() { release_storage(); }

  bool initialized() const { return index_ != nullptr; }

  bool at_hard_capacity() const {
    return log2_ >= max_log2_ && entry_count() + 1 >= capacity();
  }

  // Finds the entry for `word_addr`, appending a zeroed one (and growing
  // the index if needed) when absent. Never fails. The reference stays
  // valid until the next find_or_insert on this set.
  Entry& find_or_insert(uintptr_t word_addr, bool& inserted);

  // Finds without inserting; null if absent.
  Entry* find(uintptr_t word_addr);

  // Log positions (+1, 0 = none) are the resize-stable handle to an entry:
  // they survive both log reallocation and index rehashes, unlike raw
  // pointers — which is what the unified MRU cache stores.
  uint32_t position_of(const Entry* e) const {
    return e ? static_cast<uint32_t>(e - log_) + 1 : 0;
  }
  Entry& at_position(uint32_t pos) { return log_[pos - 1]; }

  // Visits every entry in insertion order.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (size_t i = 0; i < log_size_; ++i) fn(log_[i]);
  }

  size_t entry_count() const { return log_size_; }
  size_t capacity() const {
    return index_ != nullptr ? size_t{1} << log2_ : 0;
  }
  bool resized_this_epoch() const { return resized_this_epoch_; }

  // Pre-sizes both arrays for `entries` entries — the index at or below
  // its 3/4 load factor (clamped to the hard cap) — so a speculation of
  // that footprint walks no doubling ladder. Used to seed a freshly
  // flipped adaptive slot at the footprint the static hash observed.
  // Deliberately not counted as resize_events: it happens between
  // speculations, not under one.
  void reserve_entries(size_t entries);

  // Empties the set in O(entries), not O(capacity); keeps the grown index.
  void clear();

 private:
  // Fibonacci hashing: multiplicative mix, top bits select the home slot.
  // Linear probing needs scattered home slots even for the strided word
  // addresses block-based workloads produce.
  size_t home_slot(uintptr_t word_addr) const {
    return static_cast<size_t>(
        ((word_addr >> 3) * 0x9e3779b97f4a7c15ull) >> shift_);
  }

  void grow();
  void grow_log();
  // Releases both arrays back to the pool (or heap) they came from.
  void release_storage();
  // Swaps the index for a zeroed one of 2^new_log2 slots and rehashes
  // every log entry into it.
  void rebuild_index(int new_log2);

  Entry* log_ = nullptr;          // arena-pooled; dense [0, log_size_)
  size_t log_size_ = 0;
  size_t log_cap_ = 0;
  uint32_t* index_ = nullptr;     // log position + 1; 0 = empty; 2^log2_
  int log2_ = 0;
  int shift_ = 64;  // 64 - log2_
  int max_log2_ = kMaxLog2;
  bool resized_this_epoch_ = false;
  SpecBufferStats* stats_ = nullptr;
  Arena* arena_ = nullptr;
};

class GrowableLogBuffer {
 public:
  GrowableLogBuffer() = default;
  // After init the sets hold a pointer to the owning SpecBuffer's stats,
  // so a copied/moved buffer would count into the original. Never needed.
  GrowableLogBuffer(const GrowableLogBuffer&) = delete;
  GrowableLogBuffer& operator=(const GrowableLogBuffer&) = delete;

  // Matches the static-hash init signature so SpecBuffer can configure
  // either backend uniformly; `overflow_cap` has no meaning here (there is
  // no bounded overflow to cap). `max_log2` bounds the growable index;
  // `arena` backs both sets' arrays through its persistent pool.
  void init(int log2_entries, size_t overflow_cap, SpecBufferStats* stats,
            int max_log2 = GrowableSet::kMaxLog2, Arena* arena = nullptr);

  // Pre-sizes both sets for `entries` entries (see
  // GrowableSet::reserve_entries).
  void reserve(size_t entries) {
    read_set_.reserve_entries(entries);
    write_set_.reserve_entries(entries);
  }

  // --- word-granular slot primitives (driven by SpecBuffer) ---

  // Lookups without insertion; .data is null when absent.
  WordRef find_read(uintptr_t word_addr);
  WordRef find_write(uintptr_t word_addr);

  // Lookup-or-insert. Dooms (returning a null .data) only at the hard
  // index capacity — ~2^28 distinct words by default, past the point where
  // resizing can help — exactly like static-hash exhaustion instead of
  // aborting the process; a merge-specific reason is used when `merging`.
  WordRef insert_read(uintptr_t word_addr, bool& inserted, bool merging);
  WordRef insert_write(uintptr_t word_addr, bool merging);

  // Handle-indexed access for MRU-cached slots (handle = log position, as
  // handed out in WordRef::handle; stable across resizes).
  uint64_t read_data(uint32_t handle) {
    return read_set_.at_position(handle).data;
  }
  uint64_t& write_data(uint32_t handle) {
    return write_set_.at_position(handle).data;
  }
  uint64_t& write_mark(uint32_t handle) {
    return write_set_.at_position(handle).mark;
  }

  // Visits every read-set entry as fn(word_addr, data).
  template <typename Fn>
  void for_each_read(Fn&& fn) {
    read_set_.for_each(
        [&](GrowableSet::Entry& e) { fn(e.word_addr, e.data); });
  }

  // Visits every write-set entry as fn(word_addr, data, mark).
  template <typename Fn>
  void for_each_write(Fn&& fn) {
    write_set_.for_each(
        [&](GrowableSet::Entry& e) { fn(e.word_addr, e.data, e.mark); });
  }

  // Discards all buffered state; clears doom. Grown index capacity is kept.
  void reset();

  // This backend dooms itself only at the hard index capacity (no
  // realistic speculation reaches the default); external conditions — wild
  // accesses, escaped exceptions, abort signals — still doom through here.
  bool doomed() const { return doomed_; }
  const char* doom_reason() const { return doom_reason_; }
  void doom(const char* reason) {
    doomed_ = true;
    doom_reason_ = reason;
  }

  // Capacity pressure: the current speculation forced at least one resize.
  bool pressure() const {
    return read_set_.resized_this_epoch() || write_set_.resized_this_epoch();
  }

  size_t read_entries() const { return read_set_.entry_count(); }
  size_t write_entries() const { return write_set_.entry_count(); }

 private:
  GrowableSet read_set_;
  GrowableSet write_set_;
  bool doomed_ = false;
  const char* doom_reason_ = "";
  SpecBufferStats* stats_ = nullptr;
};

}  // namespace mutls
