// Quickstart: parallelize a loop with MUTLS speculation in ~20 lines.
//
// Mirrors the paper's Figure 1 usage: mark a fork point, let speculative
// threads run ahead, and let the runtime validate and commit (or quietly
// re-execute). With the v2 embedding the whole pattern is one
// par::reduce call — the chunking, forking, joining and partial-sum
// plumbing live in the library.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "mutls/mutls.h"

int main() {
  using namespace mutls;

  // A runtime with 4 virtual CPUs for speculative threads.
  Runtime rt({.num_cpus = 4});

  constexpr int64_t kN = 1'000'000;
  uint64_t total = 0;

  RunStats stats = rt.run([&](Ctx& ctx) {
    // Parallel reduction over 1..kN: the range is split into chunks, a
    // chain of speculative threads runs ahead, and the calling thread
    // joins (validates + commits) each chunk in order — the paper's loop
    // speculation, as a one-liner.
    total = par::reduce(rt, ctx, 1, kN + 1,
                        {.chunks = 8, .checkpoint_every = 0x10000},
                        uint64_t{0}, [](Ctx&, int64_t i) {
                          // Collatz trajectory length of i: pure computation.
                          uint64_t x = static_cast<uint64_t>(i), steps = 0;
                          while (x != 1) {
                            x = (x & 1) ? 3 * x + 1 : x / 2;
                            ++steps;
                          }
                          return steps;
                        });
  });

  std::printf("total 3x+1 steps for 1..%lld: %llu\n",
              static_cast<long long>(kN),
              static_cast<unsigned long long>(total));
  std::printf("speculative threads used: %llu, commits: %llu, rollbacks: %llu\n",
              static_cast<unsigned long long>(stats.speculative_threads),
              static_cast<unsigned long long>(stats.speculative.commits),
              static_cast<unsigned long long>(stats.speculative.rollbacks));
  std::printf("critical path efficiency: %.2f\n",
              stats.critical_efficiency());
  return 0;
}
