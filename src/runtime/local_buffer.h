// Local-variable buffering (paper sections IV-G3, IV-G4 and IV-H).
//
// The LocalBuffer transfers register and stack variables between parent and
// child threads at fork and join. It is organized as an array of stack
// frames; each frame holds a RegisterBuffer (static array of 64-bit slots
// addressed by offsets assigned at compile time / fork time) and a
// StackBuffer (copies of addressed stack variables). A pointer-mapping
// table translates pointers into the speculative stack to the corresponding
// non-speculative variables at commit time. Frames beyond the entry frame
// are pushed at enter points and popped at return points, enabling the
// stack-frame-reconstruction scheme of section IV-H.
#pragma once

#include <cstdint>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "support/check.h"

namespace mutls {

// Fixed-capacity array of 64-bit register slots. Exceeding the capacity is
// a compile-time error in the paper ("the speculator pass reports an error
// and speculation fails"); here set/get report failure to the caller.
class RegisterBuffer {
 public:
  void init(int slots) { slots_.assign(static_cast<size_t>(slots), 0); }

  bool set(int offset, uint64_t value) {
    if (offset < 0 || static_cast<size_t>(offset) >= slots_.size())
      return false;
    slots_[static_cast<size_t>(offset)] = value;
    return true;
  }

  bool get(int offset, uint64_t& value) const {
    if (offset < 0 || static_cast<size_t>(offset) >= slots_.size())
      return false;
    value = slots_[static_cast<size_t>(offset)];
    return true;
  }

  int capacity() const { return static_cast<int>(slots_.size()); }

 private:
  std::vector<uint64_t> slots_;
};

// Copies of stack variables, keyed by assigned offset, remembering the
// source address and size so commit can copy the bytes back and so pointer
// mapping can translate interior pointers.
class StackBuffer {
 public:
  struct Entry {
    uintptr_t addr = 0;  // address in the *owning* thread's stack
    std::vector<char> bytes;
  };

  void clear() { entries_.clear(); }

  // Saves `size` bytes at `addr` under `offset`.
  void set(int offset, uintptr_t addr, const void* data, size_t size);

  // Restores into `out` (size must match the saved entry); also records
  // `addr` as the reader's address of that variable for pointer mapping.
  bool get(int offset, uintptr_t addr, void* out, size_t size);

  const Entry* lookup(int offset) const;

  // Given a pointer value pointing into the writer's saved variable
  // `offset` (anywhere within its span), returns the equivalent pointer in
  // the reader's copy recorded by get(). Returns 0 if not mappable.
  uintptr_t map_pointer(uintptr_t value) const;

  size_t entry_count() const { return entries_.size(); }

 private:
  struct Record {
    Entry writer;          // as saved by set()
    uintptr_t reader_addr = 0;  // as recorded by get()
  };
  std::unordered_map<int, Record> entries_;
};

// One speculative stack frame.
struct LocalFrame {
  RegisterBuffer regs;
  StackBuffer stack;
  // Synchronization counter of the call site that created this frame
  // (paper IV-H: used by MUTLS_sync_entry to re-descend the call chain).
  int entry_counter = 0;
  // Identifies the callee function (IR path: function name id).
  int function_id = -1;
};

// Frames beyond depth_ are retired, not destroyed: a virtual-CPU slot that
// once speculated through a deep call chain keeps those frames (and their
// register arrays) and re-arms by recycling them in place, so resetting
// the buffer for the next speculation allocates nothing — part of the
// runtime's zero-allocation steady-state invariant.
class LocalBuffer {
 public:
  void init(int register_slots) {
    register_slots_ = register_slots;
    // A changed slot count invalidates retired frames' register arrays;
    // drop them and rebuild the entry frame.
    frames_.clear();
    depth_ = 0;
    push_frame(0, -1);
  }

  // Re-arms for a new speculation: recycles the entry frame in place
  // (registers zeroed, stack copies dropped) instead of destroying and
  // re-allocating it.
  void reset() {
    depth_ = 0;
    push_frame(0, -1);
  }

  // Enter point (paper IV-H): register a new stack frame for a nested
  // call, reusing a retired frame when one exists.
  LocalFrame& push_frame(int entry_counter, int function_id) {
    if (depth_ == frames_.size()) frames_.emplace_back();
    LocalFrame& f = frames_[depth_++];
    f.regs.init(register_slots_);  // zero in place; allocates only once
    f.stack.clear();
    f.entry_counter = entry_counter;
    f.function_id = function_id;
    return f;
  }

  // Return point: pop the nested frame. Returns false when only the entry
  // frame remains (the paper restricts speculative threads from returning
  // from their entry function). The frame is retired for reuse, not freed.
  bool pop_frame() {
    if (depth_ <= 1) return false;
    --depth_;
    return true;
  }

  LocalFrame& top() {
    MUTLS_DCHECK(depth_ != 0, "no local frame");
    return frames_[depth_ - 1];
  }
  LocalFrame& frame(size_t i) { return frames_[i]; }
  size_t frame_count() const { return depth_; }

  // Pointer mapping (paper IV-G3): translate `value` if it points into any
  // saved speculative stack variable; otherwise return it unchanged.
  uintptr_t map_pointer(uintptr_t value) const {
    for (size_t i = 0; i < depth_; ++i) {
      uintptr_t m = frames_[i].stack.map_pointer(value);
      if (m) return m;
    }
    return value;
  }

 private:
  std::vector<LocalFrame> frames_;  // live [0, depth_), retired past depth_
  size_t depth_ = 0;
  int register_slots_ = 256;
};

}  // namespace mutls
