// Integration tests: every Table II workload must produce bit-identical
// results under speculation (all forking models) and sequentially.
#include <gtest/gtest.h>

#include "workloads/bh.h"
#include "workloads/fft.h"
#include "workloads/http_serving.h"
#include "workloads/mandelbrot.h"
#include "workloads/matmult.h"
#include "workloads/md.h"
#include "workloads/nqueen.h"
#include "workloads/threex.h"
#include "workloads/tsp.h"

namespace mutls::workloads {
namespace {

Runtime::Options test_opts(int cpus) {
  Runtime::Options o;
  o.num_cpus = cpus;
  o.buffer_log2 = 16;
  o.overflow_cap = 4096;
  return o;
}

struct ModelCase {
  ForkModel model;
  int cpus;
};

class WorkloadEquivalence : public ::testing::TestWithParam<ModelCase> {};

TEST_P(WorkloadEquivalence, ThreeX) {
  ThreeX::Params p;
  p.n = 20000;
  p.chunks = 8;
  SeqRun seq = ThreeX::run_seq(p);
  Runtime rt(test_opts(GetParam().cpus));
  SpecRun spec = ThreeX::run_spec(rt, p, GetParam().model);
  EXPECT_EQ(spec.checksum, seq.checksum);
}

TEST_P(WorkloadEquivalence, Mandelbrot) {
  Mandelbrot::Params p;
  p.width = 64;
  p.height = 48;
  p.max_iter = 100;
  p.chunks = 8;
  SeqRun seq = Mandelbrot::run_seq(p);
  Runtime rt(test_opts(GetParam().cpus));
  SpecRun spec = Mandelbrot::run_spec(rt, p, GetParam().model);
  EXPECT_EQ(spec.checksum, seq.checksum);
}

TEST_P(WorkloadEquivalence, MolecularDynamics) {
  MolecularDynamics::Params p;
  p.n = 24;
  p.steps = 4;
  p.chunks = 4;
  SeqRun seq = MolecularDynamics::run_seq(p);
  Runtime rt(test_opts(GetParam().cpus));
  SpecRun spec = MolecularDynamics::run_spec(rt, p, GetParam().model);
  EXPECT_EQ(spec.checksum, seq.checksum);
}

TEST_P(WorkloadEquivalence, BarnesHut) {
  BarnesHut::Params p;
  p.n = 64;
  p.steps = 2;
  p.chunks = 4;
  SeqRun seq = BarnesHut::run_seq(p);
  Runtime rt(test_opts(GetParam().cpus));
  SpecRun spec = BarnesHut::run_spec(rt, p, GetParam().model);
  EXPECT_EQ(spec.checksum, seq.checksum);
}

TEST_P(WorkloadEquivalence, Fft) {
  Fft::Params p;
  p.log2_n = 8;
  p.fork_levels = 3;
  SeqRun seq = Fft::run_seq(p);
  Runtime rt(test_opts(GetParam().cpus));
  SpecRun spec = Fft::run_spec(rt, p, GetParam().model);
  EXPECT_EQ(spec.checksum, seq.checksum);
}

TEST_P(WorkloadEquivalence, MatMult) {
  MatMult::Params p;
  p.n = 32;
  p.leaf = 8;
  p.fork_levels = 2;
  SeqRun seq = MatMult::run_seq(p);
  Runtime rt(test_opts(GetParam().cpus));
  SpecRun spec = MatMult::run_spec(rt, p, GetParam().model);
  EXPECT_EQ(spec.checksum, seq.checksum);
}

TEST_P(WorkloadEquivalence, NQueen) {
  NQueen::Params p;
  p.n = 8;
  p.cutoff = 3;
  SeqRun seq = NQueen::run_seq(p);
  Runtime rt(test_opts(GetParam().cpus));
  SpecRun spec = NQueen::run_spec(rt, p, GetParam().model);
  EXPECT_EQ(spec.checksum, seq.checksum);
}

TEST_P(WorkloadEquivalence, HttpServing) {
  HttpServing::Params p;
  p.batches = 6;
  p.batch = 96;
  p.chunks = 6;
  p.num_keys = 64;       // small key space: plenty of real index conflicts
  p.zipf_s = 1.1;
  p.put_ratio = 0.25;
  p.malformed_ratio = 0.1;
  p.capacity_log2 = 5;   // 32 slots for 64 keys: evictions exercised
  SeqRun seq = HttpServing::run_seq(p);
  Runtime rt(test_opts(GetParam().cpus));
  SpecRun spec = HttpServing::run_spec(rt, p, GetParam().model);
  EXPECT_EQ(spec.checksum, seq.checksum);
}

TEST_P(WorkloadEquivalence, Tsp) {
  Tsp::Params p;
  p.n = 7;
  p.cutoff = 2;
  SeqRun seq = Tsp::run_seq(p);
  Runtime rt(test_opts(GetParam().cpus));
  SpecRun spec = Tsp::run_spec(rt, p, GetParam().model);
  EXPECT_EQ(spec.checksum, seq.checksum);
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndCpus, WorkloadEquivalence,
    ::testing::Values(ModelCase{ForkModel::kMixed, 1},
                      ModelCase{ForkModel::kMixed, 2},
                      ModelCase{ForkModel::kMixed, 4},
                      ModelCase{ForkModel::kInOrder, 2},
                      ModelCase{ForkModel::kInOrder, 4},
                      ModelCase{ForkModel::kOutOfOrder, 2},
                      ModelCase{ForkModel::kOutOfOrder, 4}),
    [](const ::testing::TestParamInfo<ModelCase>& info) {
      std::string name = fork_model_name(info.param.model);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_" + std::to_string(info.param.cpus) + "cpu";
    });

// Known-answer checks independent of the speculation machinery.
TEST(WorkloadKnownAnswers, NQueenCounts) {
  EXPECT_EQ(NQueen::solve_seq(4, 0, 0, 0), 2u);
  EXPECT_EQ(NQueen::solve_seq(5, 0, 0, 0), 10u);
  EXPECT_EQ(NQueen::solve_seq(6, 0, 0, 0), 4u);
  EXPECT_EQ(NQueen::solve_seq(7, 0, 0, 0), 40u);
  EXPECT_EQ(NQueen::solve_seq(8, 0, 0, 0), 92u);
}

TEST(WorkloadKnownAnswers, CollatzTrajectories) {
  EXPECT_EQ(ThreeX::trajectory(1), 0u);
  EXPECT_EQ(ThreeX::trajectory(2), 1u);
  EXPECT_EQ(ThreeX::trajectory(3), 7u);
  EXPECT_EQ(ThreeX::trajectory(6), 8u);
  EXPECT_EQ(ThreeX::trajectory(27), 111u);
}

TEST(WorkloadKnownAnswers, MandelbrotInteriorAndExterior) {
  EXPECT_EQ(Mandelbrot::escape_iters(0.0, 0.0, 500), 500);  // interior
  EXPECT_LT(Mandelbrot::escape_iters(2.0, 2.0, 500), 3);    // far exterior
}

// Rollback injection must never change results, only statistics.
TEST(WorkloadChaos, InjectedRollbacksPreserveResults) {
  NQueen::Params p;
  p.n = 8;
  p.cutoff = 2;
  SeqRun seq = NQueen::run_seq(p);
  Runtime::Options o = test_opts(2);
  o.rollback_probability = 0.5;
  o.seed = 99;
  Runtime rt(o);
  SpecRun spec = NQueen::run_spec(rt, p, ForkModel::kMixed);
  EXPECT_EQ(spec.checksum, seq.checksum);
  EXPECT_GT(spec.stats.speculative.rollbacks, 0u);
}

// The serving pipeline must keep the cache index bit-identical to the
// sequential run even when rollbacks are injected into its chain.
TEST(WorkloadChaos, ServingInjectedRollbacksPreserveIndex) {
  HttpServing::Params p;
  p.batches = 4;
  p.batch = 96;
  p.chunks = 6;
  p.num_keys = 64;
  p.zipf_s = 1.1;
  p.put_ratio = 0.25;
  p.capacity_log2 = 5;
  SeqRun seq = HttpServing::run_seq(p);
  Runtime::Options o = test_opts(3);
  o.rollback_probability = 0.3;
  o.seed = 7;
  Runtime rt(o);
  SpecRun spec = HttpServing::run_spec(rt, p, ForkModel::kMixed);
  EXPECT_EQ(spec.checksum, seq.checksum);
  EXPECT_GT(spec.stats.speculative.rollbacks, 0u);
}

TEST(WorkloadChaos, TinyBuffersStillCorrect) {
  // Forces overflow dooms: the run must fall back to inline execution and
  // still be bit-correct.
  Mandelbrot::Params p;
  p.width = 64;
  p.height = 32;
  p.max_iter = 50;
  p.chunks = 4;
  SeqRun seq = Mandelbrot::run_seq(p);
  Runtime::Options o;
  o.num_cpus = 2;
  o.buffer_log2 = 4;
  o.overflow_cap = 8;
  Runtime rt(o);
  SpecRun spec = Mandelbrot::run_spec(rt, p, ForkModel::kMixed);
  EXPECT_EQ(spec.checksum, seq.checksum);
}

}  // namespace
}  // namespace mutls::workloads
