#include "workloads/fft.h"

#include <cmath>
#include <numbers>
#include <vector>

#include "support/prng.h"

namespace mutls::workloads {

namespace {

void init_signal(const Fft::Params& p, std::vector<double>& re,
                 std::vector<double>& im) {
  size_t n = size_t{1} << p.log2_n;
  Xorshift64 rng(p.seed);
  re.resize(n);
  im.resize(n);
  for (size_t i = 0; i < n; ++i) {
    re[i] = rng.next_double() - 0.5;
    im[i] = 0.0;
  }
}

// Sequential two-buffer recursion: transforms buf[0], buf[step], ... using
// out as scratch; the result lands in buf.
void fft_seq(double* bre, double* bim, double* ore, double* oim, size_t n,
             size_t step) {
  if (step >= n) return;
  fft_seq(ore, oim, bre, bim, n, step * 2);
  fft_seq(ore + step, oim + step, bre + step, bim + step, n, step * 2);
  for (size_t i = 0; i < n; i += 2 * step) {
    double ang = -std::numbers::pi * static_cast<double>(i) /
                 static_cast<double>(n);
    double wr = std::cos(ang), wi = std::sin(ang);
    double xr = ore[i + step], xi = oim[i + step];
    double tr = wr * xr - wi * xi;
    double ti = wr * xi + wi * xr;
    bre[i / 2] = ore[i] + tr;
    bim[i / 2] = oim[i] + ti;
    bre[(i + n) / 2] = ore[i] - tr;
    bim[(i + n) / 2] = oim[i] - ti;
  }
}

struct SpecFft {
  Runtime& rt;
  const Fft::Params& p;
  ForkModel model;

  // `level` counts tree depth from the root; the top fork_levels levels
  // speculate their second recursive call. The ScopedSpec block is the
  // paper's "fork a thread to execute the second recursive call and
  // barrier it after the call": the join happens at scope exit, before the
  // butterfly consumes both halves.
  void run(Ctx& ctx, double* bre, double* bim, double* ore, double* oim,
           size_t n, size_t step, int level) const {
    if (step >= n) return;
    if (level < p.fork_levels) {
      ScopedSpec s = rt.fork_scoped(ctx, model, [=, this](Ctx& c) {
        run(c, ore + step, oim + step, bre + step, bim + step, n, step * 2,
            level + 1);
      });
      run(ctx, ore, oim, bre, bim, n, step * 2, level + 1);
      s.join();
    } else {
      run(ctx, ore, oim, bre, bim, n, step * 2, level + 1);
      run(ctx, ore + step, oim + step, bre + step, bim + step, n, step * 2,
          level + 1);
    }
    ctx.check_point();
    SharedSpan<double> b_re(ctx, bre, n), b_im(ctx, bim, n),
        o_re(ctx, ore, n), o_im(ctx, oim, n);
    for (size_t i = 0; i < n; i += 2 * step) {
      double ang = -std::numbers::pi * static_cast<double>(i) /
                   static_cast<double>(n);
      double wr = std::cos(ang), wi = std::sin(ang);
      double xr = o_re[i + step], xi = o_im[i + step];
      double tr = wr * xr - wi * xi;
      double ti = wr * xi + wi * xr;
      double er = o_re[i], ei = o_im[i];
      b_re[i / 2] = er + tr;
      b_im[i / 2] = ei + ti;
      b_re[(i + n) / 2] = er - tr;
      b_im[(i + n) / 2] = ei - ti;
    }
  }
};

uint64_t checksum_signal(const double* re, const double* im, size_t n) {
  uint64_t h = hash_begin();
  for (size_t i = 0; i < n; ++i) {
    h = hash_double(h, re[i]);
    h = hash_double(h, im[i]);
  }
  return h;
}

}  // namespace

SeqRun Fft::run_seq(const Params& p) {
  std::vector<double> re, im;
  init_signal(p, re, im);
  std::vector<double> sre = re, sim = im;
  Stopwatch sw;
  fft_seq(re.data(), im.data(), sre.data(), sim.data(), re.size(), 1);
  double secs = sw.elapsed_sec();
  return SeqRun{checksum_signal(re.data(), im.data(), re.size()), secs};
}

SpecRun Fft::run_spec(Runtime& rt, const Params& p, ForkModel model) {
  size_t n = size_t{1} << p.log2_n;
  SharedArray<double> re(rt, n), im(rt, n), sre(rt, n), sim(rt, n);
  {
    std::vector<double> r0, i0;
    init_signal(p, r0, i0);
    for (size_t i = 0; i < n; ++i) {
      re[i] = r0[i];
      im[i] = i0[i];
      sre[i] = r0[i];
      sim[i] = i0[i];
    }
  }
  Stopwatch sw;
  RunStats stats = rt.run([&](Ctx& ctx) {
    SpecFft f{rt, p, model};
    f.run(ctx, re.data(), im.data(), sre.data(), sim.data(), n, 1, 0);
  });
  double secs = sw.elapsed_sec();
  return SpecRun{checksum_signal(re.data(), im.data(), n), secs, stats};
}

}  // namespace mutls::workloads
