// SpecBuffer — the runtime's pluggable speculative-buffer backend API.
//
// This is the contract between the speculation protocol (ThreadManager,
// Ctx, the IR interpreter) and speculative memory buffering: everything
// above the runtime talks to SpecBuffer, never to a concrete backend, so a
// new buffering strategy is a drop-in backend rather than a rewrite.
//
// Backends (see BufferBackend in "runtime/enums.h"):
//   kStaticHash  — the paper's static hash + bounded overflow map
//                  ("runtime/global_buffer.h"); capacity exhaustion dooms
//                  the speculation.
//   kGrowableLog — open-addressed growable index over an append-only log
//                  ("runtime/growable_log_buffer.h"); capacity pressure
//                  resizes instead of dooming.
//
// Dispatch is static: the backend enum is resolved once when the owning
// virtual CPU is configured, and every operation branches once to a fully
// inlined backend body — no virtual call on the load/store hot path. The
// byte-splitting load/store loops and the set algorithms (validation,
// commit, tree-form merge of paper IV-F) are written once here as
// templates over the backend primitives:
//
//   read_word_view / peek_word_view / write_word / adopt_read
//   for_each_read / for_each_write
//   reset / doom / pressure / entry counts / SpecBufferStats
//
// Access-path tiers, fastest first:
//   load_aligned/store_aligned — naturally-aligned accesses of power-of-two
//     size <= 8 (every Shared<T>/SharedSpan<T> scalar): one word-view
//     resolution plus a shift, no byte-splitting loop. Counted as
//     fastpath_hits.
//   load_span/store_span — bulk transfers: one dispatch and doom check per
//     span, one probe per *word* (not per element), full interior words
//     move as whole words.
//   load_bytes/store_bytes — the fully generic entry (any size, any
//     alignment), now a span of length one access.
// Below all three sit the backends' MRU word-view caches, so consecutive
// touches of the same words skip the hash probes too.
//
// The double dispatch in validate_against/merge_into makes the join-time
// pairings generic, so buffers of *different* backends compose (exercised
// by the cross-backend tests even though a ThreadManager configures all
// its buffers uniformly).
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "runtime/buffer_stats.h"
#include "runtime/enums.h"
#include "runtime/global_buffer.h"
#include "runtime/growable_log_buffer.h"
#include "runtime/memory.h"
#include "support/check.h"

namespace mutls {

class SpecBuffer {
  // The whole API funnels through these two: one predictable branch on the
  // enum fixed at init, then a fully inlined backend body. Defined before
  // first use — their deduced return types must be visible to the inline
  // methods below.
  template <typename Fn>
  decltype(auto) dispatch(Fn&& fn) {
    return backend_ == BufferBackend::kGrowableLog ? fn(growable_log_)
                                                   : fn(static_hash_);
  }
  template <typename Fn>
  decltype(auto) dispatch(Fn&& fn) const {
    return backend_ == BufferBackend::kGrowableLog ? fn(growable_log_)
                                                   : fn(static_hash_);
  }

  BufferBackend backend_ = BufferBackend::kStaticHash;
  GlobalBuffer static_hash_;
  GrowableLogBuffer growable_log_;

  // Reused gather buffer for the join-time set walks: large sets are
  // streamed into it, sorted by address, and then touch main memory in
  // address order (sequential prefetch instead of hash-order hopping).
  // Small sets fit in cache, where the sort costs more than hash-order
  // misses ever could — they are walked directly instead; the threshold is
  // roughly where a set's footprint outgrows L1/L2.
  struct SetEntry {
    uintptr_t word_addr;
    uint64_t data;
    uint64_t mark;
  };
  static constexpr size_t kAddressOrderThreshold = 4096;
  std::vector<SetEntry> scratch_;

  void sort_scratch() {
    std::sort(scratch_.begin(), scratch_.end(),
              [](const SetEntry& a, const SetEntry& b) {
                return a.word_addr < b.word_addr;
              });
  }

 public:
  SpecBuffer() = default;
  // The backends are self-referential after init (their maps point at the
  // owner's stats); copying/moving a buffer is never needed and is deleted
  // down the whole stack.
  SpecBuffer(const SpecBuffer&) = delete;
  SpecBuffer& operator=(const SpecBuffer&) = delete;

  // Configures the selected backend. `log2_entries` sizes the table (the
  // static size for kStaticHash, the initial size for kGrowableLog);
  // `overflow_cap` bounds kStaticHash's temporary buffer and is ignored by
  // kGrowableLog.
  void init(BufferBackend backend, int log2_entries, size_t overflow_cap) {
    backend_ = backend;
    dispatch([&](auto& b) { b.init(log2_entries, overflow_cap); });
  }

  BufferBackend backend() const { return backend_; }

  // --- speculative access path (runs on the owning speculative thread) ---

  // Aligned-word fast path: a naturally-aligned access of power-of-two
  // size <= 8 can never straddle a word, so the byte-splitting loop
  // collapses to one word-view resolution plus a shift. The load returns
  // the addressed bytes in the LOW bytes of the result (the caller copies
  // out `size` of them); the store takes the value in the low bytes.
  uint64_t load_aligned(uintptr_t addr, size_t size) {
    MUTLS_DCHECK(word_sized_aligned(addr, size),
                 "load_aligned: size must be a power of two <= 8 and addr "
                 "naturally aligned");
    (void)size;  // only the high bytes the caller ignores depend on it
    return dispatch([&](auto& b) {
      ++b.stats_mutable().fastpath_hits;
      uintptr_t word_addr = addr & ~kWordMask;
      return b.read_word_view(word_addr) >> (8 * (addr - word_addr));
    });
  }

  void store_aligned(uintptr_t addr, uint64_t value, size_t size) {
    MUTLS_DCHECK(word_sized_aligned(addr, size),
                 "store_aligned: size must be a power of two <= 8 and addr "
                 "naturally aligned");
    dispatch([&](auto& b) {
      ++b.stats_mutable().fastpath_hits;
      uintptr_t word_addr = addr & ~kWordMask;
      size_t off = addr - word_addr;
      b.write_word(word_addr, value << (8 * off), byte_mask(off, size));
    });
  }

  // Bulk span transfer: reads `size` bytes of the thread's speculative view
  // of `addr`. One dispatch for the whole span; a partial head word, whole
  // interior words, a partial tail — one probe per word, not per element.
  void load_span(uintptr_t addr, void* out, size_t size) {
    if (size == 0) return;  // must not touch (and first-touch insert) a word
    dispatch([&](auto& b) {
      char* dst = static_cast<char*>(out);
      uintptr_t a = addr;
      size_t left = size;
      size_t head = a & kWordMask;
      if (head != 0) {
        size_t n = std::min(kWordSize - head, left);
        uint64_t w = b.read_word_view(a - head);
        copy_from_word(w, head, n, dst);
        a += n;
        dst += n;
        left -= n;
      }
      while (left >= kWordSize) {
        uint64_t w = b.read_word_view(a);
        std::memcpy(dst, &w, kWordSize);
        a += kWordSize;
        dst += kWordSize;
        left -= kWordSize;
      }
      if (left > 0) {
        uint64_t w = b.read_word_view(a);
        copy_from_word(w, 0, left, dst);
      }
    });
  }

  // Bulk span transfer: buffers a write of `size` bytes at `addr`. Whole
  // interior words carry a full mark and skip the mask computation.
  void store_span(uintptr_t addr, const void* src, size_t size) {
    if (size == 0) return;  // a zero-mask write-set entry is a false entry
    dispatch([&](auto& b) {
      const char* s = static_cast<const char*>(src);
      uintptr_t a = addr;
      size_t left = size;
      size_t head = a & kWordMask;
      if (head != 0) {
        size_t n = std::min(kWordSize - head, left);
        uint64_t v = 0;
        copy_into_word(v, head, n, s);
        b.write_word(a - head, v, byte_mask(head, n));
        if (b.doomed()) return;
        a += n;
        s += n;
        left -= n;
      }
      while (left >= kWordSize) {
        uint64_t v;
        std::memcpy(&v, s, kWordSize);
        b.write_word(a, v, kFullMark);
        if (b.doomed()) return;
        a += kWordSize;
        s += kWordSize;
        left -= kWordSize;
      }
      if (left > 0) {
        uint64_t v = 0;
        copy_into_word(v, 0, left, s);
        b.write_word(a, v, byte_mask(0, left));
      }
    });
  }

  // Fully generic entries (any size, any alignment): a span of one access.
  void load_bytes(uintptr_t addr, void* out, size_t size) {
    load_span(addr, out, size);
  }
  void store_bytes(uintptr_t addr, const void* src, size_t size) {
    store_span(addr, src, size);
  }

  // --- join-time operations (both threads stopped at the flag barrier) ---

  // Validates the read-set against main memory (non-speculative joiner).
  // The comparison accumulates a XOR difference — no branch per word; a
  // cache-exceeding set is additionally gathered and sorted so main memory
  // is compared in address order (hardware prefetch instead of hash-order
  // hopping).
  bool validate_against_memory() {
    return dispatch([&](auto& b) {
      uint64_t diff = 0;
      uint64_t words = 0;
      if (b.read_entries() >= kAddressOrderThreshold) {
        scratch_.clear();
        b.for_each_read([&](uintptr_t word_addr, uint64_t data) {
          scratch_.push_back(SetEntry{word_addr, data, 0});
        });
        sort_scratch();
        for (const SetEntry& e : scratch_) {
          diff |= atomic_word_load(e.word_addr) ^ e.data;
        }
        words = scratch_.size();
      } else {
        b.for_each_read([&](uintptr_t word_addr, uint64_t data) {
          ++words;
          diff |= atomic_word_load(word_addr) ^ data;
        });
      }
      b.stats_mutable().validated_words += words;
      return diff == 0;
    });
  }

  // Validates the read-set against a speculative joiner's buffered view.
  // Probes the joiner's maps (address order buys nothing there) but keeps
  // the branchless XOR accumulation.
  bool validate_against(SpecBuffer& joiner) {
    return dispatch([&](auto& b) {
      return joiner.dispatch([&](auto& j) {
        uint64_t diff = 0;
        uint64_t words = 0;
        b.for_each_read([&](uintptr_t word_addr, uint64_t data) {
          ++words;
          diff |= j.peek_word_view(word_addr) ^ data;
        });
        b.stats_mutable().validated_words += words;
        return diff == 0;
      });
    });
  }

  // Commits marked write-set bytes to main memory — in address order when
  // the set is large enough for the ordered walk to beat the sort.
  void commit_to_memory() {
    dispatch([&](auto& b) {
      auto commit_one = [](uintptr_t word_addr, uint64_t data, uint64_t mark) {
        if (mark == kFullMark) {
          atomic_word_store(word_addr, data);
          return;
        }
        const char* bytes = reinterpret_cast<const char*>(&data);
        for (size_t i = 0; i < kWordSize; ++i) {
          if (mark & (0xffull << (8 * i))) {
            atomic_byte_store(word_addr + i, static_cast<uint8_t>(bytes[i]));
          }
        }
      };
      if (b.write_entries() >= kAddressOrderThreshold) {
        scratch_.clear();
        b.for_each_write(
            [&](uintptr_t word_addr, uint64_t data, uint64_t mark) {
              scratch_.push_back(SetEntry{word_addr, data, mark});
            });
        sort_scratch();
        for (const SetEntry& e : scratch_) {
          commit_one(e.word_addr, e.data, e.mark);
        }
      } else {
        b.for_each_write(commit_one);
      }
    });
  }

  // Merges this buffer into a *speculative* joiner: writes overlay the
  // joiner's write-set (this thread is logically later, so its bytes win);
  // reads not fully covered by the joiner's writes join the joiner's
  // read-set so the eventual non-speculative validation still covers them.
  void merge_into(SpecBuffer& joiner) {
    dispatch([&](auto& b) {
      joiner.dispatch([&](auto& j) {
        b.for_each_write([&](uintptr_t word_addr, uint64_t data,
                             uint64_t mark) { j.adopt_write(word_addr, data, mark); });
        b.for_each_read([&](uintptr_t word_addr, uint64_t data) {
          j.adopt_read(word_addr, data);
        });
      });
    });
  }

  // --- lifecycle, doom and pressure signals, statistics ---

  // Discards all buffered state; clears doom.
  void reset() {
    dispatch([](auto& b) { b.reset(); });
  }

  bool doomed() const {
    return dispatch([](const auto& b) { return b.doomed(); });
  }
  const char* doom_reason() const {
    return dispatch([](const auto& b) { return b.doom_reason(); });
  }
  void doom(const char* reason) {
    dispatch([&](auto& b) { b.doom(reason); });
  }

  // Backend-defined capacity pressure: the static hash is spilling into its
  // bounded overflow map, or the growable log resized this speculation.
  bool pressure() const {
    return dispatch([](const auto& b) { return b.pressure(); });
  }

  size_t read_entries() const {
    return dispatch([](const auto& b) { return b.read_entries(); });
  }
  size_t write_entries() const {
    return dispatch([](const auto& b) { return b.write_entries(); });
  }

  // Cost-counter snapshot. Survives reset(); zeroed by clear_stats() when a
  // virtual-CPU slot is re-armed for a new speculation.
  const SpecBufferStats& stats() const {
    return dispatch(
        [](const auto& b) -> const SpecBufferStats& { return b.stats(); });
  }
  void clear_stats() {
    dispatch([](auto& b) { b.clear_stats(); });
  }
};

}  // namespace mutls
