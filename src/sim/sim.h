// Discrete-event TLS simulator.
//
// Substitute for the paper's 64-core AMD Opteron 6274 (see DESIGN.md §2):
// the simulator executes the same structured task trees as the native
// runtime — forking-model admission, bounded virtual-CPU pool, LIFO joins,
// validation/commit costs proportional to buffer footprints, inline
// re-execution after rollback — over *virtual* time, so speedup and
// breakdown curves can be produced for any CPU count on any host.
//
// A model is a sequence of phases; each phase is a tree of SimNodes. One
// SimNode describes one speculated region: the children it forks at its
// start (joined LIFO after its own work), the nodes it executes inline as
// the same thread, its own work, and its read/write footprints in words.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "runtime/enums.h"
#include "support/prng.h"

namespace mutls::sim {

struct SimNode {
  std::vector<SimNode*> forks;         // speculated at task start, in order
  std::vector<SimNode*> inline_nodes;  // executed by this same thread next
  double own_work = 0;                 // microseconds of pure computation
  double read_words = 0;               // read-set footprint (words)
  double write_words = 0;              // write-set footprint (words)
  // True for regions that conflict with state buffered in a speculative
  // forker (matmult's accumulate-phase sub-sub-tasks): they validate fine
  // when forked by the non-speculative thread but roll back otherwise.
  bool conflict_under_spec = false;

  // Loop-chain phase (the paper's loop speculation with counter-based
  // resumption): when chain_chunks > 0 this node is an in-order chunked
  // loop. The calling thread both consumes (joins) committed chunks and
  // executes chunks itself when speculation cannot keep up, so chunks
  // spread over min(CPUs, chunks) workers. read_words/write_words are per
  // chunk. chain_weights, when non-empty, scales chunk i's work by
  // chain_weights[i % size] (load imbalance, e.g. mandelbrot rows).
  int chain_chunks = 0;
  double chain_chunk_work = 0;
  std::vector<double> chain_weights;
};

// Arena-owning model: phases run sequentially on the non-speculative thread.
struct SimModel {
  std::deque<SimNode> arena;
  std::vector<SimNode*> phases;

  // Slowdown of work executed on a speculative thread relative to the
  // non-speculative thread: every load/store goes through the software
  // buffers (paper IV-G), which is what caps the memory-intensive
  // benchmarks at small speedups. 1.0 = access-free compute.
  double spec_work_factor = 1.0;

  SimNode* node() {
    arena.emplace_back();
    return &arena.back();
  }
};

struct SimCosts {
  double find_cpu = 0.2;          // us per MUTLS_get_CPU
  double fork = 1.5;              // us per successful speculation
  double join_bookkeep = 0.5;     // us per synchronize
  double per_word_validate = 0.0005;  // us per read-set word
  double per_word_commit = 0.0005;    // us per write-set word
  double finalize = 0.3;          // us per thread finalization
  // How quickly a running speculative thread notices SYNC/NOSYNC: the
  // check-point polling interval (paper IV-E inserts check points inside
  // inner loops so "the non-speculative thread need not wait overly long").
  double checkpoint_poll = 50.0;
};

// Per-path breakdown, mirroring TimeCat (all in virtual microseconds).
struct SimBreakdown {
  double work = 0, find_cpu = 0, fork = 0, join = 0, idle = 0;
  double validation = 0, commit = 0, finalize = 0, wasted = 0;

  double total() const {
    return work + find_cpu + fork + join + idle + validation + commit +
           finalize + wasted;
  }
};

struct SimResult {
  double sequential_time = 0;  // total work of the model (Ts)
  double critical_time = 0;    // finish time of the non-speculative thread
  SimBreakdown critical;
  SimBreakdown speculative;    // aggregate over all speculative threads
  double spec_runtime_sum = 0;
  uint64_t forks = 0, denied = 0, commits = 0, rollbacks = 0;

  double speedup() const {
    return critical_time > 0 ? sequential_time / critical_time : 1.0;
  }
  double critical_efficiency() const {
    return critical_time > 0 ? critical.work / critical_time : 1.0;
  }
  double speculative_efficiency() const {
    return spec_runtime_sum > 0 ? speculative.work / spec_runtime_sum : 1.0;
  }
  double power_efficiency() const {
    double all = critical_time + spec_runtime_sum;
    return all > 0 ? sequential_time / all : 1.0;
  }
  double coverage() const {
    return critical_time > 0 ? spec_runtime_sum / critical_time : 0.0;
  }
  double rollback_fraction() const {
    uint64_t n = commits + rollbacks;
    return n ? static_cast<double>(rollbacks) / static_cast<double>(n) : 0.0;
  }
};

class Simulator {
 public:
  struct Options {
    int num_cpus = 4;
    ForkModel model = ForkModel::kMixed;
    SimCosts costs;
    double rollback_probability = 0.0;
    uint64_t seed = 0x5eed;
    // Ablation: emulate the *linear* mixed model of prior systems
    // (Mitosis/POSH/safe futures): once any speculation rolls back, every
    // subsequently joined speculation of the phase rolls back too, instead
    // of containing the cascade to the failing subtree (paper section II).
    bool linear_cascade = false;
  };

  explicit Simulator(const Options& opt);

  SimResult run(const SimModel& model);

  // Total work of a subtree (virtual sequential execution time).
  static double seq_work(const SimNode& n);

 private:
  struct CpuSlot {
    double busy_until = 0;
  };

  // Simulates `n` executed by the thread identified by `self` starting at
  // virtual time t; returns the finish time. `self == nullptr` denotes the
  // non-speculative thread. `bd` is that thread's breakdown ledger.
  double sim_node(const SimNode& n, double t, const SimNode* self,
                  SimBreakdown& bd);

  // Adoption-based loop chain (chain_chunks > 0).
  double sim_chain(const SimNode& n, double t, const SimNode* self,
                   SimBreakdown& bd);

  bool admission(const SimNode* self, double t) const;
  int acquire_cpu(double t);

  Options opt_;
  std::vector<CpuSlot> cpus_;
  Xorshift64 rng_;
  SimResult res_;
  double spec_factor_ = 1.0;  // from the model being run

  // In-order chain state: the most recently forked live node and the time
  // its chain drains.
  const SimNode* chain_tail_ = nullptr;
  double chain_busy_until_ = 0;

  // Linear-cascade ablation state (reset per phase).
  bool cascade_active_ = false;
};

}  // namespace mutls::sim
