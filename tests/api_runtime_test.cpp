// End-to-end tests of the native embedding API: fork/join semantics,
// buffered accesses, conflicts, nesting (tree-form model), live-in
// prediction, spec_for, and address-space policing. The raw Ctx::load /
// Ctx::store calls here are deliberate — this suite tests the access layer
// the typed views of api/shared.h are built on.
#include "mutls/mutls.h"

#include <gtest/gtest.h>

#include <numeric>

namespace mutls {
namespace {

Runtime::Options small_opts(int cpus = 2) {
  Runtime::Options o;
  o.num_cpus = cpus;
  o.buffer_log2 = 10;
  o.overflow_cap = 256;
  return o;
}

TEST(ApiRuntime, CommittedSpeculationPublishesWrites) {
  Runtime rt(small_opts());
  SharedArray<uint64_t> data(rt, 4, 0);
  rt.run([&](Ctx& ctx) {
    Spec s = rt.fork(ctx, ForkModel::kMixed, [&](Ctx& c) {
      c.store(&data[1], uint64_t{11});
      c.store(&data[2], uint64_t{22});
    });
    ctx.store(&data[0], uint64_t{7});
    JoinOutcome r = rt.join(ctx, s);
    EXPECT_NE(r, JoinOutcome::kRolledBack);
  });
  EXPECT_EQ(data[0], 7u);
  EXPECT_EQ(data[1], 11u);
  EXPECT_EQ(data[2], 22u);
}

TEST(ApiRuntime, DeniedSpeculationRunsInline) {
  Runtime rt(small_opts(1));
  SharedArray<uint64_t> data(rt, 2, 0);
  rt.run([&](Ctx& ctx) {
    Spec s1 = rt.fork(ctx, ForkModel::kMixed,
                      [&](Ctx& c) { c.store(&data[0], uint64_t{1}); });
    // Only one CPU: the second fork must be denied and defer to join().
    Spec s2 = rt.fork(ctx, ForkModel::kMixed,
                      [&](Ctx& c) { c.store(&data[1], uint64_t{2}); });
    EXPECT_FALSE(s2.speculated());
    EXPECT_EQ(rt.join(ctx, s2), JoinOutcome::kSequential);
    rt.join(ctx, s1);
  });
  EXPECT_EQ(data[0], 1u);
  EXPECT_EQ(data[1], 2u);
}

TEST(ApiRuntime, ReadConflictRollsBackAndReexecutes) {
  Runtime rt(small_opts());
  SharedArray<uint64_t> data(rt, 2, 0);
  data[0] = 1;
  std::atomic<bool> child_read{false};
  rt.run([&](Ctx& ctx) {
    Spec s = rt.fork(ctx, ForkModel::kMixed, [&](Ctx& c) {
      uint64_t v = c.load(&data[0]);
      child_read = true;
      c.store(&data[1], v * 100);
    });
    if (s.speculated()) {
      // Guarantee the speculative read happens before the conflicting
      // parent write, making rollback deterministic.
      while (!child_read) std::this_thread::yield();
    }
    ctx.store(&data[0], uint64_t{5});
    JoinOutcome r = rt.join(ctx, s);
    if (s.speculated()) {
      EXPECT_EQ(r, JoinOutcome::kRolledBack);
    }
  });
  EXPECT_EQ(data[1], 500u) << "re-execution must observe the parent's write";
}

TEST(ApiRuntime, RunsWithoutSpeculationStillWork) {
  Runtime rt(small_opts());
  SharedArray<int> data(rt, 8, 0);
  RunStats rs = rt.run([&](Ctx& ctx) {
    for (size_t i = 0; i < data.size(); ++i) {
      ctx.store(&data[i], static_cast<int>(i));
    }
  });
  EXPECT_EQ(data[7], 7);
  EXPECT_EQ(rs.speculative_threads, 0u);
  EXPECT_EQ(rs.critical.stores, 8u);
}

TEST(ApiRuntime, NestedSpeculationFormsTree) {
  // Mixed model: a speculative child forks its own child (paper's thread
  // tree); the grandchild's effects must survive both commits.
  Runtime rt(small_opts(3));
  SharedArray<uint64_t> data(rt, 3, 0);
  rt.run([&](Ctx& ctx) {
    Spec s = rt.fork(ctx, ForkModel::kMixed, [&](Ctx& c) {
      Spec g = rt.fork(c, ForkModel::kMixed,
                       [&](Ctx& cc) { cc.store(&data[2], uint64_t{3}); });
      c.store(&data[1], uint64_t{2});
      rt.join(c, g);
    });
    ctx.store(&data[0], uint64_t{1});
    rt.join(ctx, s);
  });
  EXPECT_EQ(data[0], 1u);
  EXPECT_EQ(data[1], 2u);
  EXPECT_EQ(data[2], 3u);
}

TEST(ApiRuntime, NestedConflictStaysInSubtree) {
  // A grandchild conflicting with its (speculative) parent rolls back and
  // re-executes inside the subtree; the root still commits everything.
  Runtime rt(small_opts(3));
  SharedArray<uint64_t> data(rt, 3, 0);
  data[0] = 1;
  rt.run([&](Ctx& ctx) {
    Spec s = rt.fork(ctx, ForkModel::kMixed, [&](Ctx& c) {
      std::atomic<bool> gc_read{false};
      Spec g = rt.fork(c, ForkModel::kMixed, [&](Ctx& cc) {
        uint64_t v = cc.load(&data[0]);
        gc_read = true;
        cc.store(&data[2], v + 100);
      });
      if (g.speculated()) {
        while (!gc_read) std::this_thread::yield();
      }
      c.store(&data[0], uint64_t{50});  // conflicts with grandchild's read
      rt.join(c, g);
    });
    rt.join(ctx, s);
  });
  EXPECT_EQ(data[0], 50u);
  EXPECT_EQ(data[2], 150u)
      << "grandchild re-execution sees the speculative parent's write";
}

TEST(ApiRuntime, UnregisteredAccessRollsBackSafely) {
  Runtime rt(small_opts());
  alignas(8) static uint64_t unregistered;
  unregistered = 0;
  SharedArray<uint64_t> data(rt, 1, 0);
  rt.run([&](Ctx& ctx) {
    Spec s = rt.fork(ctx, ForkModel::kMixed, [&](Ctx& c) {
      c.store(&unregistered, uint64_t{1});  // dooms the speculation
      // The speculative attempt aborts at the store above; only the inline
      // (non-speculative) re-execution reaches this line.
      EXPECT_FALSE(c.speculative());
    });
    JoinOutcome r = rt.join(ctx, s);
    if (s.speculated()) {
      EXPECT_EQ(r, JoinOutcome::kRolledBack);
    }
  });
  // The inline re-execution runs non-speculatively where direct access is
  // legal, so the value is eventually written exactly once.
  EXPECT_EQ(unregistered, 1u);
}

TEST(ApiRuntime, NonSpeculativeAccessBypassesBuffers) {
  Runtime rt(small_opts());
  alignas(8) static uint64_t anywhere;
  anywhere = 3;
  rt.run([&](Ctx& ctx) {
    EXPECT_EQ(ctx.load(&anywhere), 3u);
    ctx.store(&anywhere, uint64_t{4});
  });
  EXPECT_EQ(anywhere, 4u);
}

TEST(ApiRuntime, LiveInPredictionValidates) {
  Runtime rt(small_opts());
  SharedArray<uint64_t> data(rt, 1, 0);
  rt.run([&](Ctx& ctx) {
    int64_t i = 0;
    Spec s = rt.fork(
        ctx,
        ForkOpts{.predictions = {Prediction::of<int64_t>(&i, 10)}},
        [&](Ctx& c) {
          int64_t start = c.get_livein<int64_t>(0);
          c.store(&data[0], static_cast<uint64_t>(start * 2));
        });
    i = 10;  // parent reaches the join point with the predicted value
    JoinOutcome r = rt.join(ctx, s);
    if (s.speculated()) EXPECT_EQ(r, JoinOutcome::kCommitted);
  });
  EXPECT_EQ(data[0], 20u);
}

TEST(ApiRuntime, MispredictedLiveInForcesRollback) {
  Runtime rt(small_opts());
  SharedArray<uint64_t> data(rt, 1, 0);
  rt.run([&](Ctx& ctx) {
    int64_t i = 0;
    Spec s = rt.fork(
        ctx,
        ForkOpts{.predictions = {Prediction::of<int64_t>(&i, 10)}},
        [&](Ctx& c) {
          // On re-execution the live-in fetch is meaningless, so read the
          // parent's actual variable non-speculatively via capture.
          c.store(&data[0], uint64_t{1});
        });
    i = 11;  // prediction was wrong
    JoinOutcome r = rt.join(ctx, s);
    if (s.speculated()) EXPECT_EQ(r, JoinOutcome::kRolledBack);
  });
  EXPECT_EQ(data[0], 1u);
}

TEST(ApiRuntime, SpecForComputesCorrectSums) {
  for (ForkModel m : {ForkModel::kInOrder, ForkModel::kOutOfOrder,
                      ForkModel::kMixed}) {
    Runtime rt(small_opts(2));
    SharedArray<uint64_t> partial(rt, 8, 0);
    rt.run([&](Ctx& ctx) {
      spec_for(rt, ctx, 0, 1000, 8, m,
               [&](Ctx& c, int chunk, int64_t lo, int64_t hi) {
                 uint64_t sum = 0;
                 for (int64_t i = lo; i < hi; ++i) {
                   sum += static_cast<uint64_t>(i);
                 }
                 c.store(&partial[static_cast<size_t>(chunk)], sum);
                 c.check_point();
               });
    });
    uint64_t total = 0;
    for (size_t i = 0; i < partial.size(); ++i) total += partial[i];
    EXPECT_EQ(total, 499500u) << "model " << fork_model_name(m);
  }
}

TEST(ApiRuntime, SpecForSingleChunkRunsSequentially) {
  Runtime rt(small_opts());
  SharedArray<uint64_t> acc(rt, 1, 0);
  RunStats rs = rt.run([&](Ctx& ctx) {
    spec_for(rt, ctx, 0, 10, 1, ForkModel::kMixed,
             [&](Ctx& c, int, int64_t lo, int64_t hi) {
               for (int64_t i = lo; i < hi; ++i) c.add(&acc[0], uint64_t{1});
             });
  });
  EXPECT_EQ(acc[0], 10u);
  EXPECT_EQ(rs.critical.forks, 0u);
}

TEST(ApiRuntime, SpecForEmptyRangeIsNoop) {
  Runtime rt(small_opts());
  rt.run([&](Ctx& ctx) {
    spec_for(rt, ctx, 5, 5, 4, ForkModel::kMixed,
             [&](Ctx&, int, int64_t, int64_t) {
               ADD_FAILURE() << "body must not run for an empty range";
             });
  });
}

TEST(ApiRuntime, RollbackInjectionDegradesButStaysCorrect) {
  Runtime::Options o = small_opts(2);
  o.rollback_probability = 1.0;
  Runtime rt(o);
  SharedArray<uint64_t> partial(rt, 4, 0);
  RunStats rs = rt.run([&](Ctx& ctx) {
    spec_for(rt, ctx, 0, 100, 4, ForkModel::kMixed,
             [&](Ctx& c, int chunk, int64_t lo, int64_t hi) {
               uint64_t sum = 0;
               for (int64_t i = lo; i < hi; ++i) {
                 sum += static_cast<uint64_t>(i);
               }
               c.store(&partial[static_cast<size_t>(chunk)], sum);
             });
  });
  uint64_t total = 0;
  for (size_t i = 0; i < partial.size(); ++i) total += partial[i];
  EXPECT_EQ(total, 4950u);
  EXPECT_GT(rs.speculative.rollbacks, 0u);
  EXPECT_EQ(rs.speculative.commits, 0u);
}

TEST(ApiRuntime, StatsCountAccesses) {
  Runtime rt(small_opts());
  SharedArray<uint64_t> data(rt, 4, 0);
  RunStats rs = rt.run([&](Ctx& ctx) {
    Spec s = rt.fork(ctx, ForkModel::kMixed, [&](Ctx& c) {
      c.store(&data[1], c.load(&data[0]) + 1);
    });
    ctx.store(&data[0], uint64_t{0});
    rt.join(ctx, s);
  });
  EXPECT_GE(rs.critical.stores, 1u);
  EXPECT_GE(rs.speculative.loads + rs.critical.loads, 1u);
}

TEST(ApiRuntime, SequentialEquivalenceUnderChaos) {
  // Property: whatever mix of commits/rollbacks happens, the final state
  // must equal the sequential execution. Stress with tiny buffers (forcing
  // overflow dooms) and injected rollbacks.
  for (uint64_t seed : {1u, 2u, 3u}) {
    Runtime::Options o;
    o.num_cpus = 2;
    o.buffer_log2 = 4;  // 16 slots: heavy collision pressure
    o.overflow_cap = 4;
    o.rollback_probability = 0.3;
    o.seed = seed;
    Runtime rt(o);
    const int n = 64;
    SharedArray<uint64_t> v(rt, n, 0);
    rt.run([&](Ctx& ctx) {
      spec_for(rt, ctx, 0, n, 8, ForkModel::kMixed,
               [&](Ctx& c, int, int64_t lo, int64_t hi) {
                 for (int64_t i = lo; i < hi; ++i) {
                   c.store(&v[static_cast<size_t>(i)],
                           static_cast<uint64_t>(i * i));
                   c.check_point();
                 }
               });
    });
    for (int i = 0; i < n; ++i) {
      ASSERT_EQ(v[static_cast<size_t>(i)], static_cast<uint64_t>(i) * i)
          << "seed " << seed << " index " << i;
    }
  }
}

}  // namespace
}  // namespace mutls
