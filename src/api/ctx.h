// Execution context of the native MUTLS embedding (API v2, layer 1 of 4).
//
// `Ctx` is the per-thread view of shared memory: every shared access inside
// a speculated region routes through it, hitting the speculative buffer map
// (paper IV-G2) when the thread is speculative and the relaxed direct path
// otherwise. Ctx::load/store are the raw MUTLS_load_*/MUTLS_store_*
// wrappers; application code should prefer the typed views of
// "api/shared.h" (`Shared<T>`, `SharedSpan<T>`, `shared()`), which wrap
// these calls behind ordinary `a[i] += x` syntax.
//
// Layering: ctx.h (this file) -> spec.h (fork/join/Runtime) -> shared.h
// (typed views) -> parallel.h (loop drivers + mutls::par algorithms), all
// re-exported by the "mutls/mutls.h" umbrella.
#pragma once

#include <cstdint>
#include <cstring>
#include <type_traits>

#include "api/scalar_access.h"
#include "runtime/memory.h"
#include "runtime/spec_abort.h"
#include "runtime/thread_data.h"

namespace mutls {

class Runtime;

// Execution context of one thread (speculative or not). Every shared-memory
// access inside a speculated region must go through this wrapper.
class Ctx {
 public:
  bool speculative() const { return td_->is_speculative(); }
  int rank() const { return td_->rank; }
  Runtime& runtime() const { return *rt_; }
  ThreadData& thread_data() const { return *td_; }

  // The buffer backend actually serving this thread's virtual-CPU slot.
  // Equals Options::buffer_backend except under kAdaptive, where a slot
  // that accumulated overflow events reports the growable log it flipped
  // to (diagnostics; the count of flips rides in ThreadStats as
  // buffer.backend_flips).
  BufferBackend buffer_backend() const { return td_->sbuf.active_backend(); }

  // True when a T can ever take the aligned-word fast path: power-of-two
  // size <= 8, checked at compile time so oversized types skip the branch;
  // the per-address natural-alignment half of the rule is
  // word_sized_aligned ("runtime/memory.h").
  template <typename T>
  static constexpr bool kWordSized = word_sized_aligned(0, sizeof(T));

  template <typename T>
  T load(const T* p) {
    static_assert(std::is_trivially_copyable_v<T>);
    ++td_->stats.loads;
    if (!td_->is_speculative()) {
      return relaxed_load_scalar(p);
    }
    uintptr_t a = reinterpret_cast<uintptr_t>(p);
    check_registered(a, sizeof(T));
    T out;
    if constexpr (kWordSized<T>) {
      if (word_sized_aligned(a, sizeof(T))) {
        uint64_t raw = td_->sbuf.load_aligned(a, sizeof(T));
        std::memcpy(&out, &raw, sizeof(T));
        if (td_->sbuf.doomed()) throw SpecAbort{td_->sbuf.doom_reason()};
        return out;
      }
    }
    td_->sbuf.load_bytes(a, &out, sizeof(T));
    if (td_->sbuf.doomed()) throw SpecAbort{td_->sbuf.doom_reason()};
    return out;
  }

  template <typename T>
  void store(T* p, T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    ++td_->stats.stores;
    if (!td_->is_speculative()) {
      relaxed_store_scalar(p, v);
      return;
    }
    uintptr_t a = reinterpret_cast<uintptr_t>(p);
    check_registered(a, sizeof(T));
    if constexpr (kWordSized<T>) {
      if (word_sized_aligned(a, sizeof(T))) {
        uint64_t raw = 0;
        std::memcpy(&raw, &v, sizeof(T));
        td_->sbuf.store_aligned(a, raw, sizeof(T));
        if (td_->sbuf.doomed()) throw SpecAbort{td_->sbuf.doom_reason()};
        return;
      }
    }
    td_->sbuf.store_bytes(a, &v, sizeof(T));
    if (td_->sbuf.doomed()) throw SpecAbort{td_->sbuf.doom_reason()};
  }

  // Bulk transfers: move `count` contiguous T's through the speculative
  // view with one registration check, one stats bump and one buffer-map
  // probe per *word* instead of per element. The workhorse behind
  // SharedSpan<T>::read/write.
  template <typename T>
  void load_n(const T* p, T* out, size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (count == 0) return;
    td_->stats.loads += count;
    if (!td_->is_speculative()) {
      relaxed_load_bytes(p, out, count * sizeof(T));
      return;
    }
    uintptr_t a = reinterpret_cast<uintptr_t>(p);
    check_registered(a, count * sizeof(T));
    td_->sbuf.load_span(a, out, count * sizeof(T));
    if (td_->sbuf.doomed()) throw SpecAbort{td_->sbuf.doom_reason()};
  }

  template <typename T>
  void store_n(T* p, const T* src, size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (count == 0) return;
    td_->stats.stores += count;
    if (!td_->is_speculative()) {
      relaxed_store_bytes(p, src, count * sizeof(T));
      return;
    }
    uintptr_t a = reinterpret_cast<uintptr_t>(p);
    check_registered(a, count * sizeof(T));
    td_->sbuf.store_span(a, src, count * sizeof(T));
    if (td_->sbuf.doomed()) throw SpecAbort{td_->sbuf.doom_reason()};
  }

  // Read-modify-write convenience.
  template <typename T>
  void add(T* p, T v) {
    store(p, static_cast<T>(load(p) + v));
  }

  // MUTLS_check_point: polls the synchronization flags. Inserted inside
  // loops and before calls so a speculative thread notices abort signals
  // promptly (paper IV-E).
  void check_point() {
    if (!td_->is_speculative()) return;
    SyncStatus s = td_->sync_status.load(std::memory_order_acquire);
    if (s == SyncStatus::kNoSync) {
      throw SpecAbort{"NOSYNC received at check point"};
    }
    if (td_->sbuf.doomed()) throw SpecAbort{td_->sbuf.doom_reason()};
  }

  // Live-in value stored at fork (paper IV-G3): reads slot `offset` of this
  // thread's RegisterBuffer.
  template <typename T>
  T get_livein(int offset) {
    static_assert(sizeof(T) <= 8 && std::is_trivially_copyable_v<T>);
    uint64_t raw = 0;
    if (!td_->lbuf.top().regs.get(offset, raw)) {
      td_->sbuf.doom("register buffer offset out of range");
      throw SpecAbort{"register buffer offset out of range"};
    }
    T out;
    std::memcpy(&out, &raw, sizeof(T));
    return out;
  }

 private:
  friend class Runtime;
  Ctx(Runtime& rt, ThreadData& td) : rt_(&rt), td_(&td) {}

  void check_registered(uintptr_t a, size_t n);

  Runtime* rt_;
  ThreadData* td_;
  // Small cache of recent address-space lookups: workloads typically touch
  // a handful of registered arrays in rotation, so a few entries remove
  // the shared-mutex lookup from the speculative hot path entirely.
  static constexpr int kSpanCache = 4;
  uintptr_t span_lo_[kSpanCache] = {1, 1, 1, 1};
  uintptr_t span_hi_[kSpanCache] = {0, 0, 0, 0};
  int span_next_ = 0;
  // Address-space epoch the cache entries were filled under; a mismatch
  // (some region was unregistered since) flushes them.
  uint64_t span_epoch_ = 0;
};

}  // namespace mutls
