// Umbrella header of the native MUTLS embedding API (v2).
//
// The embedding is layered; include this to get the whole surface:
//
//   api/ctx.h       Ctx — per-thread routed access, check points, live-ins
//   api/spec.h      Runtime, ForkOpts, fork/join, Spec, ScopedSpec (RAII)
//   api/shared.h    Shared<T>, SharedArray<T>, SharedSpan<T>, SharedRef<T>
//   api/parallel.h  spec_for drivers and the mutls::par algorithms
//                   (par::for_each, par::reduce, par::divide_and_conquer,
//                   par::pipeline)
//
// Quickstart:
//
//   #include "mutls/mutls.h"
//
//   mutls::Runtime rt({.num_cpus = 8});
//   mutls::SharedArray<uint64_t> out(rt, n);
//   rt.run([&](mutls::Ctx& ctx) {
//     mutls::par::for_each(rt, ctx, 0, n, {}, [&](mutls::Ctx& c, int64_t i) {
//       out.span(c)[i] = f(i);
//     });
//   });
#pragma once

#include "api/ctx.h"
#include "api/parallel.h"
#include "api/shared.h"
#include "api/spec.h"
