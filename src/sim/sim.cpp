#include "sim/sim.h"

#include <algorithm>
#include <limits>

#include "support/check.h"

namespace mutls::sim {

Simulator::Simulator(const Options& opt) : opt_(opt), rng_(opt.seed) {
  MUTLS_CHECK(opt_.num_cpus >= 1, "simulator needs at least one CPU");
  cpus_.resize(static_cast<size_t>(opt_.num_cpus));
}

double Simulator::seq_work(const SimNode& n) {
  double w = n.own_work;
  for (int i = 0; i < n.chain_chunks; ++i) {
    double cw = n.chain_chunk_work;
    if (!n.chain_weights.empty()) {
      cw *= n.chain_weights[static_cast<size_t>(i) % n.chain_weights.size()];
    }
    w += cw;
  }
  for (const SimNode* c : n.forks) w += seq_work(*c);
  for (const SimNode* c : n.inline_nodes) w += seq_work(*c);
  return w;
}

bool Simulator::admission(const SimNode* self, double t) const {
  switch (opt_.model) {
    case ForkModel::kMixed:
      return true;
    case ForkModel::kOutOfOrder:
      return self == nullptr;
    case ForkModel::kInOrder:
      if (self == nullptr) return t >= chain_busy_until_;
      return self == chain_tail_;
  }
  return false;
}

int Simulator::acquire_cpu(double t) {
  for (size_t i = 0; i < cpus_.size(); ++i) {
    if (cpus_[i].busy_until <= t) return static_cast<int>(i);
  }
  return -1;
}

double Simulator::sim_chain(const SimNode& n, double t, const SimNode* self,
                             SimBreakdown& bd) {
  const int chunks = n.chain_chunks;
  auto chunk_work = [&](int i) {
    double w = n.chain_chunk_work;
    if (!n.chain_weights.empty()) {
      w *= n.chain_weights[static_cast<size_t>(i) % n.chain_weights.size()];
    }
    return w;
  };
  const double settle = n.read_words * opt_.costs.per_word_validate +
                        n.write_words * opt_.costs.per_word_commit +
                        opt_.costs.finalize + opt_.costs.join_bookkeep;

  // Number of speculative workers the chain can hold. Out-of-order forbids
  // speculative threads from extending the chain, so at most one
  // speculative worker exists (paper section II); in-order requires the
  // caller to be the chain tail.
  int free_cpus = 0;
  for (const CpuSlot& c : cpus_) {
    if (c.busy_until <= t) ++free_cpus;
  }
  bool may_chain = true;
  if (opt_.model == ForkModel::kOutOfOrder) may_chain = false;
  if (opt_.model == ForkModel::kInOrder && self != nullptr &&
      self != chain_tail_) {
    free_cpus = 0;
  }
  int spec_workers =
      may_chain ? std::min(free_cpus, chunks - 1) : std::min(free_cpus, 1);

  if (spec_workers == 0) {
    // Fully sequential.
    double w = 0;
    for (int i = 0; i < chunks; ++i) w += chunk_work(i);
    bd.work += w;
    if (chunks > 1) ++res_.denied;
    return t + w;
  }

  // Greedy chunk-order assignment to the earliest-free worker; worker 0 is
  // the calling thread (the paper's parent resumes partially executed
  // chunks via the synchronization table, so it continuously consumes and
  // executes work). Speculative workers pay the buffering inflation.
  std::vector<double> load(static_cast<size_t>(spec_workers) + 1, 0.0);
  double root_work = 0, spec_work = 0, spec_settle_total = 0;
  uint64_t spec_chunks = 0;
  Xorshift64& rng = rng_;
  uint64_t rollbacks_before = res_.rollbacks;
  for (int i = 0; i < chunks; ++i) {
    size_t k = 0;
    for (size_t j = 1; j < load.size(); ++j) {
      if (load[j] < load[k]) k = j;
    }
    double w = chunk_work(i);
    if (k == 0) {
      load[0] += w;
      root_work += w;
    } else {
      double dur = w * spec_factor_;
      bool rollback = opt_.rollback_probability > 0.0 &&
                      rng.bernoulli(opt_.rollback_probability);
      if (opt_.linear_cascade && cascade_active_) rollback = true;
      load[k] += dur;
      ++res_.forks;
      ++spec_chunks;
      if (rollback) {
        ++res_.rollbacks;
        cascade_active_ = true;
        res_.speculative.wasted += dur;
        // The caller re-executes the chunk inline.
        load[0] += w;
        root_work += w;
        spec_settle_total += n.read_words * opt_.costs.per_word_validate +
                             opt_.costs.join_bookkeep;
      } else {
        ++res_.commits;
        spec_work += dur;
        spec_settle_total += settle;
      }
    }
  }
  (void)rollbacks_before;

  // The caller additionally pays the join/validate/commit serialization.
  double root_busy = root_work + spec_settle_total;
  double makespan = root_busy;
  for (size_t j = 1; j < load.size(); ++j) {
    makespan = std::max(makespan, load[j]);
  }
  // A trailing speculative chunk still has to be joined after it finishes.
  if (makespan > root_busy) makespan += settle;

  // Ledger accounting.
  bd.work += root_work;
  double fork_costs =
      static_cast<double>(spec_chunks) *
      (opt_.costs.find_cpu + opt_.costs.fork);
  res_.speculative.find_cpu += fork_costs * 0.5;
  res_.speculative.fork += fork_costs * 0.5;
  bd.join += spec_settle_total * 0.3;
  bd.idle += std::max(0.0, makespan - root_busy) + spec_settle_total * 0.7;
  res_.speculative.work += spec_work;
  res_.speculative.validation +=
      static_cast<double>(spec_chunks) * n.read_words *
      opt_.costs.per_word_validate;
  res_.speculative.commit += static_cast<double>(spec_chunks) *
                             n.write_words * opt_.costs.per_word_commit;
  res_.speculative.finalize +=
      static_cast<double>(spec_chunks) * opt_.costs.finalize;
  // Each speculative worker is occupied for the whole chain (it waits at
  // its barrier between chunks it executes and the joins that free it).
  for (size_t j = 1; j < load.size(); ++j) {
    res_.spec_runtime_sum += makespan;
    res_.speculative.idle += std::max(0.0, makespan - load[j]);
  }
  // Occupy the CPUs for the chain duration.
  int used = 0;
  for (CpuSlot& c : cpus_) {
    if (used >= spec_workers) break;
    if (c.busy_until <= t) {
      c.busy_until = t + makespan;
      ++used;
    }
  }
  return t + makespan;
}


double Simulator::sim_node(const SimNode& n, double t, const SimNode* self,
                           SimBreakdown& bd) {
  if (n.chain_chunks > 0) {
    MUTLS_CHECK(n.forks.empty() && n.inline_nodes.empty() && n.own_work == 0,
                "chain nodes must be pure chains");
    return sim_chain(n, t, self, bd);
  }
  struct ForkRec {
    const SimNode* child;
    double finish;      // child's task finish (ready to validate)
    double start;
    int cpu;            // -1: executed inline at the join point
    bool rollback;
    SimBreakdown child_bd;
  };
  std::vector<ForkRec> recs;
  recs.reserve(n.forks.size());

  for (const SimNode* c : n.forks) {
    t += opt_.costs.find_cpu;
    bd.find_cpu += opt_.costs.find_cpu;
    int cpu = -1;
    if (admission(self, t)) cpu = acquire_cpu(t);
    if (cpu < 0) {
      ++res_.denied;
      recs.push_back(ForkRec{c, 0, 0, -1, false, {}});
      continue;
    }
    t += opt_.costs.fork;
    bd.fork += opt_.costs.fork;
    ++res_.forks;
    bool inject = opt_.rollback_probability > 0.0 &&
                  rng_.bernoulli(opt_.rollback_probability);
    bool conflict = c->conflict_under_spec && self != nullptr;
    if (opt_.linear_cascade && cascade_active_) conflict = true;
    // In-order bookkeeping: the freshly forked node is now the most
    // speculative thread; only it may extend the chain. The root may start
    // a new chain once the current one drains (chain_busy_until_).
    chain_tail_ = c;
    ForkRec rec{c, 0, t, cpu, inject || conflict, {}};
    if (rec.rollback) {
      // The child is doomed from the start: its entire execution is
      // wasted work. Charging it as flattened straight-line time (instead
      // of recursing into its subtree, whose own speculations are equally
      // doomed) keeps simulation cost linear under heavy rollback rates
      // without changing the timing observed by the joiner.
      double waste = seq_work(*c) * spec_factor_;
      rec.finish = t + waste;
      rec.child_bd.wasted = waste;
      cpus_[static_cast<size_t>(cpu)].busy_until = rec.finish;
      recs.push_back(rec);
      continue;
    }
    // The CPU is occupied for the child's whole execution: mark it busy
    // *before* simulating the subtree so nested forks cannot reuse it.
    cpus_[static_cast<size_t>(cpu)].busy_until =
        std::numeric_limits<double>::infinity();
    rec.finish = sim_node(*c, t, c, rec.child_bd);
    chain_busy_until_ = std::max(chain_busy_until_, rec.finish);
    cpus_[static_cast<size_t>(cpu)].busy_until = rec.finish;
    recs.push_back(rec);
  }

  // Speculative threads pay the buffering inflation on their computation.
  double own = n.own_work * (self != nullptr ? spec_factor_ : 1.0);
  t += own;
  bd.work += own;

  for (const SimNode* c : n.inline_nodes) {
    t = sim_node(*c, t, self, bd);
  }

  // LIFO joins (structured speculation).
  for (auto it = recs.rbegin(); it != recs.rend(); ++it) {
    ForkRec& r = *it;
    if (r.cpu < 0) {
      // Speculation was denied: the region runs inline at the join point.
      t = sim_node(*r.child, t, self, bd);
      continue;
    }
    t += opt_.costs.join_bookkeep;
    bd.join += opt_.costs.join_bookkeep;
    if (opt_.linear_cascade && cascade_active_) r.rollback = true;

    // The paper's counter-based resumption: if the child is still running
    // when the joiner arrives, the joiner can signal SYNC at the child's
    // next check point, commit the partial work and execute the remainder
    // itself at non-speculative speed. Model the joiner as choosing
    // whichever is faster: waiting for the child, or consuming it now.
    double vc = r.child->read_words * opt_.costs.per_word_validate;
    double cc = r.child->write_words * opt_.costs.per_word_commit;
    double settle = vc + cc + opt_.costs.finalize;
    if (!r.rollback && t < r.finish) {
      double child_seq = seq_work(*r.child);
      double done = std::min(child_seq, (t - r.start) / spec_factor_);
      double remainder = child_seq - done;
      double consume_finish = t + settle + remainder;
      double wait_finish = std::max(t, r.finish) + settle;
      if (consume_finish < wait_finish) {
        // Partial commit at a check point; the joiner takes over.
        bd.idle += settle;
        t += settle;
        bd.work += remainder;
        t += remainder;
        ++res_.commits;
        r.child_bd.validation += vc;
        r.child_bd.commit += cc;
        r.child_bd.finalize += opt_.costs.finalize;
        double runtime = t - r.start;
        res_.spec_runtime_sum += runtime;
        SimBreakdown& agg0 = res_.speculative;
        agg0.work += r.child_bd.work;
        agg0.find_cpu += r.child_bd.find_cpu;
        agg0.fork += r.child_bd.fork;
        agg0.join += r.child_bd.join;
        agg0.validation += r.child_bd.validation;
        agg0.commit += r.child_bd.commit;
        agg0.finalize += r.child_bd.finalize;
        agg0.wasted += r.child_bd.wasted;
        cpus_[static_cast<size_t>(r.cpu)].busy_until = t;
        continue;
      }
    }

    double vstart = std::max(t, r.finish);
    if (r.rollback) {
      // A doomed child stops at its first check point after SYNC instead
      // of running to completion (paper IV-E).
      double stop_by = std::max(t, r.start) + opt_.costs.checkpoint_poll;
      if (stop_by < vstart) {
        vstart = stop_by;
        double elapsed = vstart - r.start;
        r.child_bd.wasted = std::min(r.child_bd.wasted, elapsed);
      }
    }
    bd.idle += vstart - t;  // waiting for the child to stop
    // The child waits at its barrier from its finish until the join.
    r.child_bd.idle += std::max(0.0, t - r.finish);
    t = vstart;
    r.child_bd.validation += vc;
    if (!r.rollback) {
      r.child_bd.commit += cc;
      ++res_.commits;
    } else {
      cc = 0;
      ++res_.rollbacks;
      cascade_active_ = true;
    }
    r.child_bd.finalize += opt_.costs.finalize;
    // The joiner idles while the child validates/commits/finalizes
    // (paper Fig. 8: critical-path overhead is almost all idle time).
    double settle_wait = vc + cc + opt_.costs.finalize;
    bd.idle += settle_wait;
    t += settle_wait;
    cpus_[static_cast<size_t>(r.cpu)].busy_until = t;

    if (r.rollback) {
      // Everything the child did is waste; re-execute inline.
      r.child_bd.wasted += r.child_bd.work;
      r.child_bd.work = 0;
      t = sim_node(*r.child, t, self, bd);
    }
    // Account the speculative thread's runtime: from its start until the
    // join completed.
    double runtime = t - r.start;
    res_.spec_runtime_sum += runtime;
    // Aggregate the child's ledger.
    SimBreakdown& agg = res_.speculative;
    agg.work += r.child_bd.work;
    agg.find_cpu += r.child_bd.find_cpu;
    agg.fork += r.child_bd.fork;
    agg.join += r.child_bd.join;
    agg.validation += r.child_bd.validation;
    agg.commit += r.child_bd.commit;
    agg.finalize += r.child_bd.finalize;
    agg.wasted += r.child_bd.wasted;
    // Idle for the speculative thread: its runtime minus everything it did.
    double accounted = r.child_bd.total() - r.child_bd.idle;
    agg.idle += std::max(0.0, runtime - accounted);
  }

  return t;
}

SimResult Simulator::run(const SimModel& model) {
  res_ = SimResult{};
  for (CpuSlot& c : cpus_) c.busy_until = 0;
  chain_tail_ = nullptr;
  chain_busy_until_ = 0;

  spec_factor_ = std::max(1.0, model.spec_work_factor);
  double t = 0;
  for (const SimNode* phase : model.phases) {
    cascade_active_ = false;
    res_.sequential_time += seq_work(*phase);
    t = sim_node(*phase, t, nullptr, res_.critical);
  }
  res_.critical_time = t;
  return res_;
}

}  // namespace mutls::sim
