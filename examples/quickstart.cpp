// Quickstart: parallelize a loop with MUTLS speculation in ~30 lines.
//
// Mirrors the paper's Figure 1 usage: mark a fork point, let a speculative
// thread run ahead from the join point, and let the runtime validate and
// commit (or quietly re-execute) the speculated region.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "api/runtime.h"

int main() {
  using namespace mutls;

  // A runtime with 4 virtual CPUs for speculative threads.
  Runtime rt({.num_cpus = 4});

  // Shared data must be registered with the runtime's address space so
  // speculative accesses can be policed (paper IV-G1). SharedArray is the
  // RAII helper for that.
  constexpr int kN = 1'000'000;
  SharedArray<uint64_t> partial(rt, 8, 0);

  RunStats stats = rt.run([&](Ctx& ctx) {
    // spec_for is the paper's loop speculation: the range is split into
    // chunks, a chain of speculative threads runs ahead, and this thread
    // joins (validates + commits) each chunk in order.
    spec_for(rt, ctx, 1, kN, 8, ForkModel::kMixed,
             [&](Ctx& c, int chunk, int64_t lo, int64_t hi) {
               uint64_t sum = 0;
               for (int64_t i = lo; i < hi; ++i) {
                 // Collatz trajectory length of i: pure computation.
                 uint64_t x = static_cast<uint64_t>(i);
                 while (x != 1) {
                   x = (x & 1) ? 3 * x + 1 : x / 2;
                   ++sum;
                 }
               }
               // The only shared-memory write: one partial-sum slot.
               c.store(&partial[static_cast<size_t>(chunk)], sum);
             });
  });

  uint64_t total = 0;
  for (size_t i = 0; i < partial.size(); ++i) total += partial[i];

  std::printf("total 3x+1 steps for 1..%d: %llu\n", kN,
              static_cast<unsigned long long>(total));
  std::printf("speculative threads used: %llu, commits: %llu, rollbacks: %llu\n",
              static_cast<unsigned long long>(stats.speculative_threads),
              static_cast<unsigned long long>(stats.speculative.commits),
              static_cast<unsigned long long>(stats.speculative.rollbacks));
  std::printf("critical path efficiency: %.2f\n",
              stats.critical_efficiency());
  return 0;
}
