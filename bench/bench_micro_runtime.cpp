// Microbenchmarks of the runtime primitives: fork/join round trip,
// buffered vs direct access through the typed shared views, live-in
// transfer, address-space lookup. These quantify the constant factors
// behind the paper's overhead discussion (section V-B).
#include <benchmark/benchmark.h>

#include "mutls/mutls.h"

namespace {

using namespace mutls;

void BM_ForkJoinRoundTrip(benchmark::State& state) {
  Runtime rt({.num_cpus = 1, .buffer_log2 = 10});
  rt.run([&](Ctx& ctx) {
    for (auto _ : state) {
      Spec s = rt.fork(ctx, ForkModel::kMixed, [](Ctx&) {});
      JoinOutcome r = rt.join(ctx, s);
      benchmark::DoNotOptimize(r);
    }
  });
}
BENCHMARK(BM_ForkJoinRoundTrip);

void BM_DirectLoadStore(benchmark::State& state) {
  // Non-speculative view access: the relaxed direct path.
  Runtime rt({.num_cpus = 1, .buffer_log2 = 10});
  SharedArray<uint64_t> data(rt, 1024, 0);
  rt.run([&](Ctx& ctx) {
    SharedSpan<uint64_t> d = data.span(ctx);
    size_t i = 0;
    for (auto _ : state) {
      d[i & 1023] += 1;
      ++i;
    }
  });
}
BENCHMARK(BM_DirectLoadStore);

void BM_BufferedLoadStore(benchmark::State& state) {
  // Measures the speculative access path by running the loop inside a
  // speculative region (single iteration batches to amortize fork cost).
  Runtime rt({.num_cpus = 1, .buffer_log2 = 16});
  SharedArray<uint64_t> data(rt, 1024, 0);
  int64_t iters = 0;
  rt.run([&](Ctx& ctx) {
    for (auto _ : state) {
      ++iters;
    }
    Spec s = rt.fork(ctx, ForkModel::kMixed, [&](Ctx& c) {
      SharedSpan<uint64_t> d = data.span(c);
      for (int64_t k = 0; k < iters; ++k) {
        d[static_cast<size_t>(k) & 1023] += 1;
      }
    });
    rt.join(ctx, s);
  });
  state.SetItemsProcessed(iters);
}
BENCHMARK(BM_BufferedLoadStore);

void BM_LiveInTransfer(benchmark::State& state) {
  Runtime rt({.num_cpus = 1, .buffer_log2 = 10});
  SharedArray<uint64_t> out(rt, 1, 0);
  rt.run([&](Ctx& ctx) {
    int64_t v = 42;
    for (auto _ : state) {
      Spec s = rt.fork(
          ctx, ForkOpts{.predictions = {Prediction::of<int64_t>(&v, 42)}},
          [&](Ctx& c) {
            out.at(c, 0) = static_cast<uint64_t>(c.get_livein<int64_t>(0));
          });
      JoinOutcome r = rt.join(ctx, s);
      benchmark::DoNotOptimize(r);
    }
  });
}
BENCHMARK(BM_LiveInTransfer);

void BM_AddressSpaceLookup(benchmark::State& state) {
  Runtime rt({.num_cpus = 1, .buffer_log2 = 10});
  std::vector<SharedArray<uint64_t>*> arrays;
  for (int i = 0; i < 16; ++i) {
    arrays.push_back(new SharedArray<uint64_t>(rt, 256, 0));
  }
  const IntervalSet& space = rt.manager().address_space();
  size_t i = 0;
  for (auto _ : state) {
    uintptr_t lo, hi;
    bool ok = space.lookup(
        reinterpret_cast<uintptr_t>(arrays[i & 15]->data()) + 64, 8, &lo,
        &hi);
    benchmark::DoNotOptimize(ok);
    ++i;
  }
  for (auto* a : arrays) delete a;
}
BENCHMARK(BM_AddressSpaceLookup);

}  // namespace

BENCHMARK_MAIN();
