#include "interp/interp.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "exec/mem_ops.h"
#include "runtime/spec_abort.h"

namespace mutls::interp {

using namespace ir;

namespace {

double as_f64(uint64_t raw) { return std::bit_cast<double>(raw); }
uint64_t from_f64(double d) { return std::bit_cast<uint64_t>(d); }
float as_f32(uint64_t raw) {
  return std::bit_cast<float>(static_cast<uint32_t>(raw));
}
uint64_t from_f32(float f) {
  return static_cast<uint64_t>(std::bit_cast<uint32_t>(f));
}

int64_t sext_of(uint64_t v, Type t) {
  switch (t) {
    case Type::kI1: return (v & 1) ? -1 : 0;
    case Type::kI8: return static_cast<int8_t>(v);
    case Type::kI16: return static_cast<int16_t>(v);
    case Type::kI32: return static_cast<int32_t>(v);
    default: return static_cast<int64_t>(v);
  }
}

uint64_t trunc_to(uint64_t v, Type t) {
  switch (t) {
    case Type::kI1: return v & 1;
    case Type::kI8: return v & 0xff;
    case Type::kI16: return v & 0xffff;
    case Type::kI32: return v & 0xffffffffull;
    default: return v;
  }
}

uint32_t skip_phis(const Block& b) {
  uint32_t i = 0;
  while (i < b.instrs.size() && b.instrs[i].op == Op::kPhi) ++i;
  return i;
}

}  // namespace

Interpreter::Interpreter(Module module, const Options& opt)
    : module_(std::move(module)),
      mgr_(manager_config_from(opt, /*register_slots=*/64)),
      engine_(exec::engine_config_from(opt)) {
  for (const Global& g : module_.globals) {
    size_t bytes = type_size(g.elem_type) * g.count;
    bytes = (bytes + 7) & ~size_t{7};
    auto mem = std::make_unique<char[]>(bytes);
    std::memset(mem.get(), 0, bytes);
    for (size_t i = 0; i < g.init.size() && i < g.count; ++i) {
      int64_t v = g.init[i];
      std::memcpy(mem.get() + i * type_size(g.elem_type), &v,
                  type_size(g.elem_type));
    }
    mgr_.register_space(mem.get(), bytes);
    globals_.emplace(g.name, std::move(mem));
  }
  // Predecode after globals exist: kGlobal instructions resolve to host
  // addresses, fork points get their join position + validation set, loop
  // regions are discovered. One pass, shared by all threads and tiers.
  decoded_ = std::make_unique<exec::DecodedModule>(
      module_, [this](const std::string& name) { return global_addr(name); });
}

Interpreter::~Interpreter() = default;

void* Interpreter::global_addr(const std::string& name) {
  auto it = globals_.find(name);
  MUTLS_CHECK(it != globals_.end(), "unknown global");
  return it->second.get();
}

uint64_t Interpreter::external_call(ThreadData& td, const Instr& in,
                                    Frame& fr) {
  // Known-safe externals (paper IV-C: "other than for known, safe external
  // calls such as abs, log, etc").
  if (in.sym == "abs_i64") {
    int64_t v = static_cast<int64_t>(fr.regs[in.args[0]]);
    return static_cast<uint64_t>(v < 0 ? -v : v);
  }
  if (in.sym == "print_i64") {
    std::lock_guard lock(print_mu_);
    printed.push_back(static_cast<int64_t>(fr.regs[in.args[0]]));
    return 0;
  }
  MUTLS_CHECK(!td.is_speculative(),
              "unsafe external call executed speculatively");
  (void)td;
  MUTLS_CHECK(false, "unknown external function");
  return 0;
}

void Interpreter::do_fork(ThreadData& td, Frame& fr, const Instr& in) {
  int64_t point = in.imm;
  ForkModel model = static_cast<ForkModel>(in.pred);
  if (fr.forks.count(point) && fr.forks[point].active) {
    // At most one speculation per fork/join point id (paper IV-D).
    return;
  }
  const Function* fn = fr.fn;
  // Join position + validation set were computed once at decode
  // (exec/dispatch.h); a fork without a matching join still fails here,
  // at execution time.
  const exec::DecodedFunction& df = decoded_->decoded(*fn);
  auto fp = df.fork_points.find(point);
  MUTLS_CHECK(fp != df.fork_points.end(),
              "fork point without a matching join point");
  uint32_t jb = fp->second.join_block;
  uint32_t ji = fp->second.join_instr;
  std::vector<uint64_t> snapshot = fr.regs;

  Interpreter* self = this;
  int rank = mgr_.speculate(
      td, model,
      [self, fn, jb, ji, snapshot](ThreadData& child) {
        Frame cf;
        cf.fn = fn;
        cf.regs = snapshot;
        cf.defined.assign(fn->value_count, false);
        cf.used_snapshot.assign(fn->value_count, false);
        cf.speculative_entry = true;
        auto stop = std::make_shared<StopState>();
        stop->mgr = &self->mgr_;
        try {
          self->exec_any(child, cf, jb, ji, stop.get());
        } catch (...) {
          // Doomed: release the frame state, then rethrow for the worker.
          stop->allocas = std::move(cf.allocas);
          child.user_state.reset();
          throw;
        }
        stop->regs = std::move(cf.regs);
        stop->used_snapshot = std::move(cf.used_snapshot);
        stop->forks = std::move(cf.forks);
        // The entry frame's allocas are the continuation's live stack
        // memory: ownership moves to the joiner on commit.
        stop->allocas = std::move(cf.allocas);
        child.user_state = stop;
      });
  if (rank != 0) {
    ForkRec rec;
    rec.ref = td.children.back();
    rec.snapshot = std::move(snapshot);
    rec.validate_ids = &fp->second.validate_ids;
    rec.active = true;
    fr.forks[point] = std::move(rec);
  }
}

bool Interpreter::do_join(ThreadData& td, Frame& fr, int64_t point,
                          uint32_t* rblock, uint32_t* rinstr) {
  auto it = fr.forks.find(point);
  if (it == fr.forks.end() || !it->second.active) return false;
  ForkRec rec = std::move(it->second);
  fr.forks.erase(it);

  // MUTLS_validate_local (paper IV-G4): every value live into the
  // continuation was predicted with its fork-time snapshot; the joiner's
  // value at the join point must match, else the child consumed a stale
  // prediction and is forced to roll back.
  bool force_rollback = false;
  for (ValueId v : *rec.validate_ids) {
    if (fr.regs[v] != rec.snapshot[v]) {
      force_rollback = true;
      break;
    }
  }

  std::shared_ptr<void> state;
  auto jr = mgr_.synchronize(td, rec.ref, force_rollback, nullptr,
                             [&state](ThreadData& child) {
                               state = child.user_state;
                               child.user_state.reset();
                             });
  if (jr != ThreadManager::JoinResult::kCommit) {
    return false;  // fall through: re-execute the region inline
  }
  auto* stop = static_cast<StopState*>(state.get());
  MUTLS_CHECK(stop != nullptr, "committed child without a stop state");
  // Resume from the child's stop position with its registers (the paper's
  // synchronization table + restore blocks). Element-wise copy: the
  // register file's storage must stay put — the direct-threaded dispatcher
  // holds a raw pointer to it across this call.
  MUTLS_CHECK(stop->regs.size() == fr.regs.size(),
              "stop state register file size mismatch");
  std::copy(stop->regs.begin(), stop->regs.end(), fr.regs.begin());
  for (auto& [p, childrec] : stop->forks) {
    fr.forks[p] = childrec;  // adopted children stay joinable
  }
  // Adopt the continuation's stack memory.
  for (auto& a : stop->allocas) fr.allocas.push_back(a);
  stop->allocas.clear();
  *rblock = stop->block;
  *rinstr = stop->instr;
  return true;
}

// --- exec::ExecHost (direct-threaded / compiled-region tiers) -----------

void Interpreter::host_fork(exec::ExecState& st, const Instr& in) {
  do_fork(*st.td, *st.fr, in);
}

bool Interpreter::host_join(exec::ExecState& st, int64_t point,
                            uint32_t* rblock, uint32_t* rinstr) {
  return do_join(*st.td, *st.fr, point, rblock, rinstr);
}

uint64_t Interpreter::host_call(exec::ExecState& st, const Function& callee,
                                const uint64_t* args, size_t n) {
  return call_function(*st.td, callee,
                       std::vector<uint64_t>(args, args + n));
}

uint64_t Interpreter::host_external(exec::ExecState& st, const Instr& in) {
  return external_call(*st.td, in, *st.fr);
}

uint64_t Interpreter::exec_any(ThreadData& td, Frame& fr, uint32_t block,
                               uint32_t instr, StopState* stop) {
  if (engine_.dispatch_mode == exec::DispatchMode::kSwitch) {
    return exec_switch(td, fr, block, instr, stop);
  }
  const exec::DecodedFunction& df = decoded_->decoded(*fr.fn);
  exec::ExecState st;
  st.df = &df;
  st.code = df.code.data();
  st.regs = fr.regs.data();
  st.fr = &fr;
  st.td = &td;
  st.mgr = &mgr_;
  st.host = this;
  st.stop = stop;
  st.ip = df.flat_ip(block, instr);
  st.prev_block = block;
  st.track = fr.speculative_entry;
  st.use_compiled =
      engine_.dispatch_mode == exec::DispatchMode::kCompiledRegion;
  return exec::run(st);
}

uint64_t Interpreter::exec_switch(ThreadData& td, Frame& fr, uint32_t block,
                                  uint32_t instr, StopState* stop) {
  const Function& f = *fr.fn;
  const exec::DecodedFunction& df = decoded_->decoded(f);  // region table
  uint32_t prev_block = block;  // for phi resolution

  auto rd = [&](ValueId v) -> uint64_t {
    if (fr.speculative_entry && !fr.defined[v]) fr.used_snapshot[v] = true;
    return fr.regs[v];
  };
  auto wr = [&](const Instr& in, uint64_t v) {
    if (in.result != kNoValue) {
      fr.regs[in.result] = v;
      if (fr.speculative_entry) fr.defined[in.result] = true;
    }
  };

  while (true) {
    MUTLS_CHECK(block < f.blocks.size(), "control flow out of range");
    const Block& b = f.blocks[block];
    if (instr >= b.instrs.size()) {
      MUTLS_CHECK(false, "fell off the end of a block");
    }
    for (uint32_t i = instr; i < b.instrs.size(); ++i) {
      const Instr& in = b.instrs[i];
      switch (in.op) {
        case Op::kConst:
          wr(in, is_float(in.type)
                     ? (in.type == Type::kF32
                            ? from_f32(static_cast<float>(in.fimm))
                            : from_f64(in.fimm))
                     : trunc_to(static_cast<uint64_t>(in.imm), in.type));
          break;
        case Op::kAdd: wr(in, trunc_to(rd(in.args[0]) + rd(in.args[1]), in.type)); break;
        case Op::kSub: wr(in, trunc_to(rd(in.args[0]) - rd(in.args[1]), in.type)); break;
        case Op::kMul: wr(in, trunc_to(rd(in.args[0]) * rd(in.args[1]), in.type)); break;
        case Op::kSDiv: {
          int64_t d = sext_of(rd(in.args[1]), in.type);
          MUTLS_CHECK(d != 0, "division by zero");
          wr(in, trunc_to(static_cast<uint64_t>(
                              sext_of(rd(in.args[0]), in.type) / d),
                          in.type));
          break;
        }
        case Op::kSRem: {
          int64_t d = sext_of(rd(in.args[1]), in.type);
          MUTLS_CHECK(d != 0, "remainder by zero");
          wr(in, trunc_to(static_cast<uint64_t>(
                              sext_of(rd(in.args[0]), in.type) % d),
                          in.type));
          break;
        }
        case Op::kAnd: wr(in, rd(in.args[0]) & rd(in.args[1])); break;
        case Op::kOr: wr(in, rd(in.args[0]) | rd(in.args[1])); break;
        case Op::kXor: wr(in, rd(in.args[0]) ^ rd(in.args[1])); break;
        case Op::kShl: wr(in, trunc_to(rd(in.args[0]) << (rd(in.args[1]) & 63), in.type)); break;
        case Op::kLShr: wr(in, trunc_to(rd(in.args[0]), in.type) >> (rd(in.args[1]) & 63)); break;
        case Op::kAShr:
          wr(in, trunc_to(static_cast<uint64_t>(
                              sext_of(rd(in.args[0]), in.type) >>
                              (rd(in.args[1]) & 63)),
                          in.type));
          break;
        case Op::kFAdd:
          wr(in, in.type == Type::kF32
                     ? from_f32(as_f32(rd(in.args[0])) + as_f32(rd(in.args[1])))
                     : from_f64(as_f64(rd(in.args[0])) + as_f64(rd(in.args[1]))));
          break;
        case Op::kFSub:
          wr(in, in.type == Type::kF32
                     ? from_f32(as_f32(rd(in.args[0])) - as_f32(rd(in.args[1])))
                     : from_f64(as_f64(rd(in.args[0])) - as_f64(rd(in.args[1]))));
          break;
        case Op::kFMul:
          wr(in, in.type == Type::kF32
                     ? from_f32(as_f32(rd(in.args[0])) * as_f32(rd(in.args[1])))
                     : from_f64(as_f64(rd(in.args[0])) * as_f64(rd(in.args[1]))));
          break;
        case Op::kFDiv:
          wr(in, in.type == Type::kF32
                     ? from_f32(as_f32(rd(in.args[0])) / as_f32(rd(in.args[1])))
                     : from_f64(as_f64(rd(in.args[0])) / as_f64(rd(in.args[1]))));
          break;
        case Op::kICmp: {
          Type ot = f.value_types[in.args[0]];
          int64_t a = sext_of(rd(in.args[0]), ot);
          int64_t bb = sext_of(rd(in.args[1]), ot);
          uint64_t ua = rd(in.args[0]), ub = rd(in.args[1]);
          bool r = false;
          switch (in.pred) {
            case Pred::kEq: r = ua == ub; break;
            case Pred::kNe: r = ua != ub; break;
            case Pred::kSlt: r = a < bb; break;
            case Pred::kSle: r = a <= bb; break;
            case Pred::kSgt: r = a > bb; break;
            case Pred::kSge: r = a >= bb; break;
            default: MUTLS_CHECK(false, "bad icmp predicate");
          }
          wr(in, r ? 1 : 0);
          break;
        }
        case Op::kFCmp: {
          double a = as_f64(rd(in.args[0])), bb = as_f64(rd(in.args[1]));
          if (f.value_types[in.args[0]] == Type::kF32) {
            a = as_f32(rd(in.args[0]));
            bb = as_f32(rd(in.args[1]));
          }
          bool r = false;
          switch (in.pred) {
            case Pred::kOeq: r = a == bb; break;
            case Pred::kOne: r = a != bb; break;
            case Pred::kOlt: r = a < bb; break;
            case Pred::kOle: r = a <= bb; break;
            case Pred::kOgt: r = a > bb; break;
            case Pred::kOge: r = a >= bb; break;
            default: MUTLS_CHECK(false, "bad fcmp predicate");
          }
          wr(in, r ? 1 : 0);
          break;
        }
        case Op::kSelect:
          wr(in, rd(in.args[0]) & 1 ? rd(in.args[1]) : rd(in.args[2]));
          break;
        case Op::kTrunc: wr(in, trunc_to(rd(in.args[0]), in.type)); break;
        case Op::kZExt: wr(in, trunc_to(rd(in.args[0]), f.value_types[in.args[0]])); break;
        case Op::kSExt:
          wr(in, trunc_to(static_cast<uint64_t>(
                              sext_of(rd(in.args[0]),
                                      f.value_types[in.args[0]])),
                          in.type));
          break;
        case Op::kSIToFP: {
          int64_t v = sext_of(rd(in.args[0]), f.value_types[in.args[0]]);
          wr(in, in.type == Type::kF32
                     ? from_f32(static_cast<float>(v))
                     : from_f64(static_cast<double>(v)));
          break;
        }
        case Op::kFPToSI: {
          double v = f.value_types[in.args[0]] == Type::kF32
                         ? as_f32(rd(in.args[0]))
                         : as_f64(rd(in.args[0]));
          wr(in, trunc_to(static_cast<uint64_t>(static_cast<int64_t>(v)),
                          in.type));
          break;
        }
        case Op::kPtrToInt:
        case Op::kIntToPtr:
        case Op::kBitcast:
          wr(in, rd(in.args[0]));
          break;
        case Op::kAlloca: {
          size_t n = static_cast<size_t>(in.imm);
          char* mem = new char[n]();
          mgr_.register_space(mem, n);
          fr.allocas.emplace_back(mem, n);
          wr(in, reinterpret_cast<uint64_t>(mem));
          break;
        }
        case Op::kLoad: {
          uint64_t out = 0;
          exec::load_mem(mgr_, td, rd(in.args[0]), &out,
                         type_size(in.type));
          wr(in, trunc_to(out, in.type));
          break;
        }
        case Op::kStore: {
          uint64_t v = rd(in.args[0]);
          exec::store_mem(mgr_, td, rd(in.args[1]), &v,
                          type_size(f.value_types[in.args[0]]));
          break;
        }
        case Op::kGep:
          wr(in, rd(in.args[0]) +
                     static_cast<uint64_t>(
                         sext_of(rd(in.args[1]),
                                 f.value_types[in.args[1]]) *
                         in.imm));
          break;
        case Op::kGlobal:
          wr(in, reinterpret_cast<uint64_t>(global_addr(in.sym)));
          break;
        case Op::kCall: {
          const Function* callee = module_.find_function(in.sym);
          if (!callee) {
            // Terminate point (paper IV-C): a speculative thread stops
            // before an unsafe external call; the joiner resumes at the
            // call and executes it non-speculatively. Known-safe externals
            // run anywhere.
            if (fr.speculative_entry && in.sym != "abs_i64") {
              stop->stop = Stop::kTerminate;
              stop->block = block;
              stop->instr = i;
              return 0;
            }
            wr(in, external_call(td, in, fr));
            break;
          }
          std::vector<uint64_t> args;
          args.reserve(in.args.size());
          for (ValueId a : in.args) args.push_back(rd(a));
          wr(in, call_function(td, *callee, std::move(args)));
          break;
        }
        case Op::kMutlsFork:
          do_fork(td, fr, in);
          break;
        case Op::kMutlsJoin: {
          uint32_t rb = 0, ri = 0;
          if (do_join(td, fr, in.imm, &rb, &ri)) {
            prev_block = block;
            block = rb;
            instr = ri;
            goto resumed;
          }
          break;
        }
        case Op::kMutlsBarrier:
          if (fr.speculative_entry) {
            // Barrier point: stop here; the joiner resumes after it.
            stop->stop = Stop::kBarrier;
            stop->block = block;
            stop->instr = i + 1;
            return 0;
          }
          break;
        case Op::kPhi: {
          // Resolve against the edge we arrived on.
          bool found = false;
          for (size_t pi = 0; pi < in.blocks.size(); ++pi) {
            if (in.blocks[pi] == prev_block) {
              wr(in, rd(in.args[pi]));
              found = true;
              break;
            }
          }
          MUTLS_CHECK(found, "phi without an edge for the predecessor");
          break;
        }
        case Op::kBr:
        case Op::kCondBr: {
          uint32_t target =
              in.op == Op::kBr
                  ? in.blocks[0]
                  : ((rd(in.args[0]) & 1) ? in.blocks[0] : in.blocks[1]);
          if (target <= block) {
            // Back edge: credit the region profiler like the threaded
            // tiers do, then poll the check point (paper IV-E) when
            // speculative.
            int r = df.region_of(target);
            if (r >= 0) {
              df.regions[static_cast<size_t>(r)]->heat.fetch_add(
                  1, std::memory_order_relaxed);
            }
            ++td.stats.back_edges;
            if (fr.speculative_entry) {
              SyncStatus s = td.sync_status.load(std::memory_order_acquire);
              if (s == SyncStatus::kNoSync) {
                throw SpecAbort{"NOSYNC at check point"};
              }
              if (s == SyncStatus::kSync) {
                // Stop mid-task: commit what we have; the joiner resumes
                // at the jump target.
                stop->stop = Stop::kCheck;
                stop->block = target;
                stop->instr = 0;
                // Phis in the target need prev_block context: save it by
                // pre-resolving them into the register file.
                const Block& tb = f.blocks[target];
                for (const Instr& pin : tb.instrs) {
                  if (pin.op != Op::kPhi) break;
                  for (size_t pi = 0; pi < pin.blocks.size(); ++pi) {
                    if (pin.blocks[pi] == block) {
                      fr.regs[pin.result] = rd(pin.args[pi]);
                      if (fr.speculative_entry) fr.defined[pin.result] = true;
                    }
                  }
                }
                stop->instr = skip_phis(tb);
                return 0;
              }
            }
          }
          prev_block = block;
          block = target;
          instr = 0;
          goto next_block;
        }
        case Op::kRet:
          if (fr.speculative_entry) {
            // Return point: the speculative thread may not return from its
            // entry function (paper IV-H); stop and let the joiner execute
            // the ret.
            stop->stop = Stop::kRet;
            stop->block = block;
            stop->instr = i;
            return 0;
          }
          return in.args.empty() ? 0 : rd(in.args[0]);
      }
    }
    MUTLS_CHECK(false, "block without terminator effect");
  next_block:
    continue;
  resumed:
    // After resuming from a child's stop position, phis at the resume
    // point were already materialized into the register file.
    continue;
  }
}

uint64_t Interpreter::call_function(ThreadData& td, const Function& f,
                                    std::vector<uint64_t> args) {
  MUTLS_CHECK(args.size() == f.params.size(), "argument count mismatch");
  Frame fr;
  fr.fn = &f;
  fr.regs.assign(f.value_count, 0);
  for (size_t i = 0; i < args.size(); ++i) fr.regs[i + 1] = args[i];
  fr.speculative_entry = false;
  StopState dummy;
  uint64_t ret = exec_any(td, fr, 0, 0, &dummy);
  for (auto& [addr, size] : fr.allocas) {
    mgr_.unregister_space(addr, size);
    delete[] addr;
  }
  // Structured usage joins everything; stragglers would leak CPUs.
  for (auto& [point, rec] : fr.forks) {
    if (rec.active) {
      mgr_.synchronize(td, rec.ref);
    }
  }
  return ret;
}

uint64_t Interpreter::call(const std::string& name,
                           std::vector<uint64_t> args) {
  const Function* f = module_.find_function(name);
  MUTLS_CHECK(f != nullptr, "unknown function");
  mgr_.begin_run();
  uint64_t r = call_function(mgr_.root(), *f, std::move(args));
  MUTLS_CHECK(mgr_.live_threads() == 0,
              "speculative threads outlived the call");
  mgr_.end_run();
  return r;
}

}  // namespace mutls::interp
