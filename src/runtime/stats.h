// Per-thread and aggregated execution statistics.
//
// These feed every figure of the paper's evaluation: speedups come from
// wall time, Figures 5-9 from the TimeLedger categories, Table II's memory
// access density from the load/store counters, and the coverage/power
// metrics from the runtime sums.
#pragma once

#include <cstdint>

#include "runtime/buffer_stats.h"
#include "support/timing.h"

namespace mutls {

struct ThreadStats {
  TimeLedger ledger;

  uint64_t loads = 0;
  uint64_t stores = 0;
  uint64_t forks = 0;        // successful speculations
  uint64_t fork_denied = 0;  // admission or no-IDLE-CPU failures
  uint64_t commits = 0;
  uint64_t rollbacks = 0;
  uint64_t nosyncs = 0;
  uint64_t back_edges = 0;  // loop back edges executed (region profiler)
  uint64_t cross_node_claims = 0;  // forks whose child CPU came from a
                                   // remote node's freelist (same-node
                                   // placement missed; work stealing)
  uint64_t runtime_ns = 0;  // total wall time attributed to this thread

  // Per-backend buffer cost counters, accumulated at each settle: overflow
  // exhaustions (static-hash), index rehashes (growable-log), probe
  // lengths and validation word counts (both). These carry the cost
  // breakdown behind backend comparisons.
  SpecBufferStats buffer;

  void clear() { *this = ThreadStats{}; }

  ThreadStats& operator+=(const ThreadStats& o) {
    ledger += o.ledger;
    loads += o.loads;
    stores += o.stores;
    forks += o.forks;
    fork_denied += o.fork_denied;
    commits += o.commits;
    rollbacks += o.rollbacks;
    nosyncs += o.nosyncs;
    back_edges += o.back_edges;
    cross_node_claims += o.cross_node_claims;
    buffer += o.buffer;
    runtime_ns += o.runtime_ns;
    return *this;
  }
};

// Snapshot of one parallel run: the critical (non-speculative) path plus the
// sum over all speculative threads, as the paper's metrics require.
struct RunStats {
  ThreadStats critical;
  ThreadStats speculative;
  uint64_t speculative_threads = 0;

  // Critical path efficiency eta_crit = Twork_nonsp / Truntime_nonsp.
  double critical_efficiency() const {
    return critical.runtime_ns
               ? static_cast<double>(critical.ledger.get(TimeCat::kWork)) /
                     static_cast<double>(critical.runtime_ns)
               : 1.0;
  }

  // Speculative path efficiency eta_sp = sum Twork_sp / sum Truntime_sp.
  double speculative_efficiency() const {
    return speculative.runtime_ns
               ? static_cast<double>(speculative.ledger.get(TimeCat::kWork)) /
                     static_cast<double>(speculative.runtime_ns)
               : 1.0;
  }

  // Power efficiency eta_power = Ts / (Truntime_nonsp + sum Truntime_sp),
  // given the sequential runtime Ts in ns.
  double power_efficiency(uint64_t sequential_ns) const {
    uint64_t all = critical.runtime_ns + speculative.runtime_ns;
    return all ? static_cast<double>(sequential_ns) / static_cast<double>(all)
               : 1.0;
  }

  // Parallel execution coverage C = sum Truntime_sp / Truntime_nonsp.
  double coverage() const {
    return critical.runtime_ns
               ? static_cast<double>(speculative.runtime_ns) /
                     static_cast<double>(critical.runtime_ns)
               : 0.0;
  }

  // Memory access density rho = Nrw / T (accesses per second), Table II.
  double access_density() const {
    uint64_t n = critical.loads + critical.stores + speculative.loads +
                 speculative.stores;
    uint64_t t = critical.runtime_ns;
    return t ? static_cast<double>(n) / (static_cast<double>(t) * 1e-9) : 0.0;
  }
};

}  // namespace mutls
