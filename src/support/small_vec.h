// Small-buffer vector for trivially-copyable payloads: the first N
// elements live inline (no allocation at all — the common case for
// ForkOpts::predictions, which carries 0 or a couple of live-ins), heap
// storage only past that. Copyable, because it rides through options
// structs passed by value.
#pragma once

#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <new>
#include <type_traits>

namespace mutls {

template <typename T, size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec is for trivially copyable payloads only");
  static_assert(N >= 1, "inline capacity must be at least 1");

 public:
  SmallVec() = default;

  SmallVec(std::initializer_list<T> init) {
    for (const T& v : init) push_back(v);
  }

  SmallVec(const SmallVec& o) { assign(o); }
  SmallVec& operator=(const SmallVec& o) {
    if (this != &o) {
      clear_storage();
      assign(o);
    }
    return *this;
  }

  SmallVec(SmallVec&& o) noexcept { steal(o); }
  SmallVec& operator=(SmallVec&& o) noexcept {
    if (this != &o) {
      clear_storage();
      steal(o);
    }
    return *this;
  }

  ~SmallVec() { clear_storage(); }

  void push_back(const T& v) {
    if (size_ == cap_) grow();
    data()[size_++] = v;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }
  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T& operator[](size_t i) const { return data()[i]; }
  T& operator[](size_t i) { return data()[i]; }

  bool inlined() const { return heap_ == nullptr; }

 private:
  T* data() { return heap_ != nullptr ? heap_ : inline_; }
  const T* data() const { return heap_ != nullptr ? heap_ : inline_; }

  void grow() {
    size_t cap = cap_ * 2;
    T* fresh = static_cast<T*>(::operator new(cap * sizeof(T)));
    std::memcpy(fresh, data(), size_ * sizeof(T));
    if (heap_ != nullptr) ::operator delete(heap_);
    heap_ = fresh;
    cap_ = cap;
  }

  void clear_storage() {
    if (heap_ != nullptr) ::operator delete(heap_);
    heap_ = nullptr;
    cap_ = N;
    size_ = 0;
  }

  void assign(const SmallVec& o) {
    if (o.size_ > N) {
      heap_ = static_cast<T*>(::operator new(o.cap_ * sizeof(T)));
      cap_ = o.cap_;
    }
    size_ = o.size_;
    std::memcpy(data(), o.data(), size_ * sizeof(T));
  }

  void steal(SmallVec& o) noexcept {
    if (o.heap_ != nullptr) {
      heap_ = o.heap_;
      cap_ = o.cap_;
      size_ = o.size_;
      o.heap_ = nullptr;
      o.cap_ = N;
      o.size_ = 0;
    } else {
      size_ = o.size_;
      std::memcpy(inline_, o.inline_, size_ * sizeof(T));
      o.size_ = 0;
    }
  }

  T inline_[N] = {};
  T* heap_ = nullptr;
  size_t size_ = 0;
  size_t cap_ = N;
};

}  // namespace mutls
