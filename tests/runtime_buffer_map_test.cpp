// Unit tests for the map structures underlying the SpecBuffer backends:
// the paper's static hash map (single-slot hashing, offsets stack, overflow
// buffer — IV-G2) and the growable-log backend's open-addressed
// GrowableSet (probing, resize, O(entries) clear).
#include <gtest/gtest.h>

#include <vector>

#include "runtime/global_buffer.h"
#include "runtime/growable_log_buffer.h"

namespace mutls {
namespace {

// Word addresses that collide in a map of 2^4 entries: the slot index is
// (addr >> 3) & 15, so addresses 8*k and 8*(k+16) collide.
constexpr uintptr_t kA = 0x10000;
constexpr uintptr_t kColliding = kA + 16 * 8;

TEST(BufferMap, InsertThenFind) {
  BufferMap m;
  m.init(4, 4, /*with_marks=*/true);
  BufferMap::Slot s;
  EXPECT_EQ(m.find_or_insert(kA, s), BufferMap::Find::kInserted);
  *s.data = 0xdeadbeef;
  *s.mark = 0xff;
  BufferMap::Slot t;
  ASSERT_TRUE(m.find(kA, t));
  EXPECT_EQ(*t.data, 0xdeadbeefu);
  EXPECT_EQ(*t.mark, 0xffu);
  EXPECT_EQ(m.find_or_insert(kA, t), BufferMap::Find::kFound);
}

TEST(BufferMap, DefaultConstructedReportsNotInitialized) {
  // Regression: initialized() used to be `mask_ != 0 || !addresses_`, which
  // reports a default-constructed map (mask_ == 0, addresses_ == null) as
  // initialized.
  BufferMap m;
  EXPECT_FALSE(m.initialized());
  m.init(4, 4, /*with_marks=*/false);
  EXPECT_TRUE(m.initialized());
}

TEST(BufferMap, MissingAddressNotFound) {
  BufferMap m;
  m.init(4, 4, false);
  BufferMap::Slot s;
  EXPECT_FALSE(m.find(kA, s));
}

TEST(BufferMap, InsertZeroesSlot) {
  BufferMap m;
  m.init(4, 4, true);
  BufferMap::Slot s;
  m.find_or_insert(kA, s);
  EXPECT_EQ(*s.data, 0u);
  EXPECT_EQ(*s.mark, 0u);
}

TEST(BufferMap, CollisionGoesToOverflow) {
  BufferMap m;
  m.init(4, 4, true);
  BufferMap::Slot s1, s2;
  EXPECT_EQ(m.find_or_insert(kA, s1), BufferMap::Find::kInserted);
  EXPECT_EQ(m.find_or_insert(kColliding, s2), BufferMap::Find::kInserted);
  EXPECT_EQ(m.overflow_count(), 1u);
  *s1.data = 1;
  *s2.data = 2;
  BufferMap::Slot t;
  ASSERT_TRUE(m.find(kA, t));
  EXPECT_EQ(*t.data, 1u);
  ASSERT_TRUE(m.find(kColliding, t));
  EXPECT_EQ(*t.data, 2u);
}

TEST(BufferMap, OverflowCapExhaustionReportsFull) {
  BufferMap m;
  m.init(4, 2, true);  // only two overflow entries
  BufferMap::Slot s;
  EXPECT_EQ(m.find_or_insert(kA, s), BufferMap::Find::kInserted);
  EXPECT_EQ(m.find_or_insert(kA + 16 * 8, s), BufferMap::Find::kInserted);
  EXPECT_EQ(m.find_or_insert(kA + 32 * 8, s), BufferMap::Find::kInserted);
  EXPECT_EQ(m.find_or_insert(kA + 48 * 8, s), BufferMap::Find::kFull);
  // Existing overflow entries stay findable.
  EXPECT_TRUE(m.find(kA + 16 * 8, s));
  EXPECT_TRUE(m.find(kA + 32 * 8, s));
  EXPECT_FALSE(m.find(kA + 48 * 8, s));
}

TEST(BufferMap, ForEachVisitsMainAndOverflowEntries) {
  BufferMap m;
  m.init(4, 4, true);
  BufferMap::Slot s;
  m.find_or_insert(kA, s);
  *s.data = 10;
  m.find_or_insert(kA + 8, s);
  *s.data = 20;
  m.find_or_insert(kColliding, s);  // overflow
  *s.data = 30;

  std::vector<std::pair<uintptr_t, uint64_t>> seen;
  m.for_each([&](uintptr_t a, uint64_t& d, uint64_t&) {
    seen.emplace_back(a, d);
  });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(m.entry_count(), 3u);
}

TEST(BufferMap, ClearEmptiesInEntryTime) {
  BufferMap m;
  m.init(4, 4, true);
  BufferMap::Slot s;
  m.find_or_insert(kA, s);
  m.find_or_insert(kColliding, s);
  m.clear();
  EXPECT_EQ(m.entry_count(), 0u);
  EXPECT_FALSE(m.find(kA, s));
  EXPECT_FALSE(m.find(kColliding, s));
  // Reusable after clear.
  EXPECT_EQ(m.find_or_insert(kA, s), BufferMap::Find::kInserted);
}

TEST(BufferMap, MarklessMapHasNullMark) {
  BufferMap m;
  m.init(4, 4, /*with_marks=*/false);
  BufferMap::Slot s;
  m.find_or_insert(kA, s);
  EXPECT_EQ(s.mark, nullptr);
  // for_each presents the dummy full mark for mark-less maps.
  m.for_each([&](uintptr_t, uint64_t&, uint64_t& mark) {
    EXPECT_EQ(mark, kFullMark);
  });
}

// Property: a BufferMap with ample overflow must behave like a
// std::unordered_map over random word addresses.
class BufferMapProperty : public ::testing::TestWithParam<int> {};

TEST_P(BufferMapProperty, AgreesWithHashMapModel) {
  BufferMap m;
  m.init(6, 512, true);
  std::unordered_map<uintptr_t, uint64_t> model;

  uint64_t state = static_cast<uint64_t>(GetParam()) * 2654435761u + 99;
  auto rnd = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };

  for (int i = 0; i < 400; ++i) {
    uintptr_t addr = 0x40000 + (rnd() % 256) * 8;
    uint64_t val = rnd();
    BufferMap::Slot s;
    auto r = m.find_or_insert(addr, s);
    ASSERT_NE(r, BufferMap::Find::kFull);
    *s.data = val;
    model[addr] = val;
  }
  EXPECT_EQ(m.entry_count(), model.size());
  for (const auto& [addr, val] : model) {
    BufferMap::Slot s;
    ASSERT_TRUE(m.find(addr, s)) << std::hex << addr;
    EXPECT_EQ(*s.data, val);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BufferMapProperty, ::testing::Range(1, 7));

// --- GrowableSet (the growable-log backend's open-addressed index) ------

TEST(GrowableSet, InsertThenFind) {
  SpecBufferStats stats;
  GrowableSet s;
  s.init(4, &stats);
  EXPECT_TRUE(s.initialized());
  bool inserted = false;
  GrowableSet::Entry& e = s.find_or_insert(kA, inserted);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(e.data, 0u);
  EXPECT_EQ(e.mark, 0u);
  e.data = 0xdeadbeef;
  GrowableSet::Entry* f = s.find(kA);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->data, 0xdeadbeefu);
  s.find_or_insert(kA, inserted);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(s.find(kA + 8), nullptr);
  EXPECT_EQ(s.entry_count(), 1u);
}

TEST(GrowableSet, GrowsPastInitialCapacityAndKeepsEntries) {
  SpecBufferStats stats;
  GrowableSet s;
  s.init(4, &stats);  // 16 slots, grows at 12 entries
  constexpr int kN = 500;
  for (int i = 0; i < kN; ++i) {
    bool inserted = false;
    GrowableSet::Entry& e = s.find_or_insert(kA + 8 * i, inserted);
    ASSERT_TRUE(inserted);
    e.data = static_cast<uint64_t>(i) * 3 + 1;
  }
  EXPECT_EQ(s.entry_count(), static_cast<size_t>(kN));
  EXPECT_GT(stats.resize_events, 0u);
  EXPECT_GE(s.capacity(), static_cast<size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    GrowableSet::Entry* e = s.find(kA + 8 * i);
    ASSERT_NE(e, nullptr) << "entry " << i << " lost across resizes";
    EXPECT_EQ(e->data, static_cast<uint64_t>(i) * 3 + 1);
  }
}

TEST(GrowableSet, ForEachVisitsInInsertionOrder) {
  SpecBufferStats stats;
  GrowableSet s;
  s.init(4, &stats);
  for (int i = 0; i < 40; ++i) {
    bool inserted = false;
    s.find_or_insert(kA + 8 * i, inserted).data = static_cast<uint64_t>(i);
  }
  std::vector<uint64_t> seen;
  s.for_each([&](GrowableSet::Entry& e) { seen.push_back(e.data); });
  ASSERT_EQ(seen.size(), 40u);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(seen[static_cast<size_t>(i)], static_cast<uint64_t>(i))
        << "the append-only log preserves insertion order";
  }
}

TEST(GrowableSet, ClearEmptiesAndStaysUsable) {
  SpecBufferStats stats;
  GrowableSet s;
  s.init(4, &stats);
  for (int i = 0; i < 100; ++i) {
    bool inserted = false;
    s.find_or_insert(kA + 8 * i, inserted);
  }
  size_t grown_capacity = s.capacity();
  s.clear();
  EXPECT_EQ(s.entry_count(), 0u);
  EXPECT_EQ(s.find(kA), nullptr);
  EXPECT_EQ(s.capacity(), grown_capacity) << "clear keeps the grown index";
  bool inserted = false;
  s.find_or_insert(kA, inserted);
  EXPECT_TRUE(inserted);
}

TEST(GrowableSet, ProbeCountersTrackCollisions) {
  SpecBufferStats stats;
  GrowableSet s;
  s.init(6, &stats);
  for (int i = 0; i < 40; ++i) {
    bool inserted = false;
    s.find_or_insert(kA + 8 * i, inserted);
  }
  EXPECT_GE(stats.probe_ops, 40u);
  // Probe steps may be zero for a lucky layout, but ops are exact.
  for (int i = 0; i < 40; ++i) s.find(kA + 8 * i);
  EXPECT_GE(stats.probe_ops, 80u);
}

// Property: a GrowableSet must behave like a std::unordered_map over
// random word addresses, across resizes.
class GrowableSetProperty : public ::testing::TestWithParam<int> {};

TEST_P(GrowableSetProperty, AgreesWithHashMapModel) {
  SpecBufferStats stats;
  GrowableSet s;
  s.init(4, &stats);  // tiny start: the workload forces many resizes
  std::unordered_map<uintptr_t, uint64_t> model;

  uint64_t state = static_cast<uint64_t>(GetParam()) * 2654435761u + 7;
  auto rnd = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };

  for (int i = 0; i < 400; ++i) {
    uintptr_t addr = 0x40000 + (rnd() % 256) * 8;
    uint64_t val = rnd();
    bool inserted = false;
    s.find_or_insert(addr, inserted).data = val;
    model[addr] = val;
  }
  EXPECT_EQ(s.entry_count(), model.size());
  for (const auto& [addr, val] : model) {
    GrowableSet::Entry* e = s.find(addr);
    ASSERT_NE(e, nullptr) << std::hex << addr;
    EXPECT_EQ(e->data, val);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GrowableSetProperty, ::testing::Range(1, 7));

}  // namespace
}  // namespace mutls
