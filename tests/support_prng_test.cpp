#include "support/prng.h"

#include <gtest/gtest.h>

#include <set>

namespace mutls {
namespace {

TEST(Xorshift64, DeterministicForSameSeed) {
  Xorshift64 a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Xorshift64, DifferentSeedsDiverge) {
  Xorshift64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Xorshift64, ZeroSeedDoesNotDegenerate) {
  Xorshift64 a(0);
  std::set<uint64_t> seen;
  for (int i = 0; i < 64; ++i) seen.insert(a.next());
  EXPECT_EQ(seen.size(), 64u);
}

TEST(Xorshift64, DoubleInUnitInterval) {
  Xorshift64 a(7);
  for (int i = 0; i < 1000; ++i) {
    double d = a.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xorshift64, NextBelowInRange) {
  Xorshift64 a(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(a.next_below(17), 17u);
  }
  EXPECT_EQ(a.next_below(0), 0u);
}

TEST(Xorshift64, BernoulliFrequencyTracksProbability) {
  Xorshift64 a(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (a.bernoulli(0.25)) ++hits;
  }
  double rate = static_cast<double>(hits) / n;
  EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(Xorshift64, BernoulliEdges) {
  Xorshift64 a(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(a.bernoulli(0.0));
    EXPECT_TRUE(a.bernoulli(1.0));
  }
}

TEST(Xorshift64, ReseedRestartsSequence) {
  Xorshift64 a(5);
  uint64_t first = a.next();
  a.next();
  a.reseed(5);
  EXPECT_EQ(a.next(), first);
}

}  // namespace
}  // namespace mutls
