// Figure 10 — comparison of forking models on the tree-form recursion
// benchmarks (fft, matmult, nqueen, tsp): in-order and out-of-order
// speedups normalized to the mixed model.
//
// Paper shape: above ~8 cores, mixed beats both simple models on almost
// every benchmark (the occasional in-order exception at mid core counts);
// out-of-order is capped near 1-2 threads of parallelism.
#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace mutls;
  using namespace mutls::bench;
  HarnessArgs args = parse_args(argc, argv);
  auto ws = filter(make_workloads(args), {"fft", "matmult", "nqueen", "tsp"});

  if (args.measured) {
    std::printf(
        "FIG 10 (measured) — in-order / out-of-order speedup normalized to "
        "mixed\n");
    std::printf("%-11s %-6s %10s %10s %10s %10s\n", "benchmark", "cpus",
                "mixed", "inorder", "ooo", "(norm in/ooo)");
    for (BenchWorkload& w : ws) {
      workloads::SeqRun seq = w.seq();
      for (int n : args.measured_cpus) {
        if (n == 1) continue;
        workloads::SpecRun mixed = w.spec(n, ForkModel::kMixed, 0.0);
        workloads::SpecRun in_o = w.spec(n, ForkModel::kInOrder, 0.0);
        workloads::SpecRun ooo = w.spec(n, ForkModel::kOutOfOrder, 0.0);
        double sm = seq.seconds / mixed.seconds;
        double si = seq.seconds / in_o.seconds;
        double so = seq.seconds / ooo.seconds;
        std::printf("%-11s %-6d %10.2f %10.2f %10.2f   %.2f/%.2f\n",
                    w.name.c_str(), n, sm, si, so, si / sm, so / sm);
      }
    }
  }

  if (args.sim) {
    std::printf(
        "\nFIG 10 (simulated, paper scale) — normalized speedup vs mixed\n");
    std::printf("%-11s %-8s", "benchmark", "model");
    for (int n : args.sim_cpus) std::printf(" %6d", n);
    std::printf("\n");
    for (BenchWorkload& w : ws) {
      std::vector<double> mixed;
      for (int n : args.sim_cpus) {
        sim::SimModel m = w.sim_model();
        mixed.push_back(
            sim::Simulator(sim_opts(n, ForkModel::kMixed)).run(m).speedup());
      }
      for (ForkModel fm : {ForkModel::kInOrder, ForkModel::kOutOfOrder}) {
        std::printf("%-11s %-8s", w.name.c_str(),
                    fm == ForkModel::kInOrder ? "inorder" : "ooo");
        for (size_t i = 0; i < args.sim_cpus.size(); ++i) {
          sim::SimModel m = w.sim_model();
          double s =
              sim::Simulator(sim_opts(args.sim_cpus[i], fm)).run(m).speedup();
          std::printf(" %6.2f", s / mixed[i]);
        }
        std::printf("\n");
      }
    }
    std::printf("paper: mixed wins on tree recursion beyond ~8 cores.\n");
  }
  return 0;
}
