// Shared helper for the test suites value-parameterized over the
// SpecBuffer backends: one CamelCase name mapping, so adding a backend
// updates every suite's test names in one place.
#pragma once

#include <string>

#include "runtime/enums.h"

namespace mutls {

inline std::string backend_camel_name(BufferBackend b) {
  switch (b) {
    case BufferBackend::kStaticHash: return "StaticHash";
    case BufferBackend::kGrowableLog: return "GrowableLog";
    case BufferBackend::kAdaptive: return "Adaptive";
    case BufferBackend::kNumaSharded: return "NumaSharded";
  }
  return "Unknown";
}

}  // namespace mutls
