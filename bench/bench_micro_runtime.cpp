// Microbenchmarks of the runtime primitives: fork/join round trip,
// buffered vs direct access through the typed shared views, live-in
// transfer, address-space lookup. These quantify the constant factors
// behind the paper's overhead discussion (section V-B).
#include <benchmark/benchmark.h>

#include "mutls/mutls.h"

namespace {

using namespace mutls;

// Warm-up fork/joins executed before the timed loop: enough for every
// virtual-CPU slot to pay its arena segments, pool classes along the
// growable doubling ladder, retired local frames — and for the adaptive
// backend to cross its overflow threshold and flip. Past this point the
// runtime's zero-allocation steady-state invariant holds.
constexpr int kAllocWarmup = 8;

// Steady-state heap-fallback allocations: everything after the warm-up
// snapshot. Reported absolute (not per iteration) — the CI alloc budget
// requires exactly zero. The critical counter only lands at end_run, so it
// is absent from the mid-run snapshot; the root forker's handles stay
// inline (or in warmed root-arena segments), keeping that term zero too.
double steady_alloc_events(const RunStats& final_rs, const RunStats& warm) {
  uint64_t total = final_rs.speculative.buffer.alloc_events +
                   final_rs.critical.buffer.alloc_events;
  uint64_t warmed = warm.speculative.buffer.alloc_events +
                    warm.critical.buffer.alloc_events;
  return static_cast<double>(total - warmed);
}

void BM_ForkJoinRoundTrip(benchmark::State& state) {
  Runtime rt({.num_cpus = 1, .buffer_log2 = 10});
  RunStats warm;
  RunStats rs = rt.run([&](Ctx& ctx) {
    for (int i = 0; i < kAllocWarmup; ++i) {
      Spec s = rt.fork(ctx, ForkModel::kMixed, [](Ctx&) {});
      rt.join(ctx, s);
    }
    warm = rt.manager().collect_stats();
    for (auto _ : state) {
      Spec s = rt.fork(ctx, ForkModel::kMixed, [](Ctx&) {});
      JoinOutcome r = rt.join(ctx, s);
      benchmark::DoNotOptimize(r);
    }
  });
  // The critical-path fork-latency ledger split, per round trip: idle-slot
  // claim, slot arming, worker handoff (spin-then-park pickup), join.
  const TimeLedger& l = rs.critical.ledger;
  using benchmark::Counter;
  auto per_iter = [&](TimeCat c) {
    return Counter(static_cast<double>(l.get(c)), Counter::kAvgIterations);
  };
  state.counters["find_cpu_ns"] = per_iter(TimeCat::kFindCpu);
  state.counters["fork_arm_ns"] = per_iter(TimeCat::kFork);
  state.counters["fork_handoff_ns"] = per_iter(TimeCat::kForkHandoff);
  state.counters["join_ns"] = per_iter(TimeCat::kJoin);
  state.counters["alloc_events"] = steady_alloc_events(rs, warm);
}
BENCHMARK(BM_ForkJoinRoundTrip);

void BM_DirectLoadStore(benchmark::State& state) {
  // Non-speculative view access: the relaxed direct path.
  Runtime rt({.num_cpus = 1, .buffer_log2 = 10});
  SharedArray<uint64_t> data(rt, 1024, 0);
  rt.run([&](Ctx& ctx) {
    SharedSpan<uint64_t> d = data.span(ctx);
    size_t i = 0;
    for (auto _ : state) {
      d[i & 1023] += 1;
      ++i;
    }
  });
}
BENCHMARK(BM_DirectLoadStore);

// Attaches the per-backend buffer cost counters (SpecBufferStats folded
// into ThreadStats at settle) so backend comparisons carry their cost
// breakdown alongside raw throughput. Event counters span the whole run,
// so they are reported per iteration (comparable across runs whose
// auto-chosen iteration counts differ); avg_probe_len is already a ratio.
void attach_buffer_counters(benchmark::State& state, const RunStats& rs) {
  const SpecBufferStats& b = rs.speculative.buffer;
  using benchmark::Counter;
  state.counters["resize_events"] =
      Counter(static_cast<double>(b.resize_events), Counter::kAvgIterations);
  state.counters["overflow_events"] =
      Counter(static_cast<double>(b.overflow_events), Counter::kAvgIterations);
  state.counters["validated_words"] =
      Counter(static_cast<double>(b.validated_words), Counter::kAvgIterations);
  state.counters["avg_probe_len"] = b.avg_probe_length();
  // Access-path tier counters: aligned-word fast-path uses, MRU word-view
  // cache hits/misses and the set probes those hits skipped.
  state.counters["fastpath_hits"] =
      Counter(static_cast<double>(b.fastpath_hits), Counter::kAvgIterations);
  state.counters["mru_hits"] =
      Counter(static_cast<double>(b.mru_hits), Counter::kAvgIterations);
  state.counters["mru_misses"] =
      Counter(static_cast<double>(b.mru_misses), Counter::kAvgIterations);
  state.counters["probe_skips"] =
      Counter(static_cast<double>(b.probe_skips), Counter::kAvgIterations);
  // Adaptive backend: speculations that started on a freshly flipped
  // backend (0 for the fixed backends).
  state.counters["backend_flips"] =
      Counter(static_cast<double>(b.backend_flips), Counter::kAvgIterations);
  // Value prediction: all zero with prediction disabled (the default
  // here), but always *reported* — the bench_json micro gate fails when a
  // buffer-counter run stops carrying them, the same way it polices
  // alloc_events.
  state.counters["predicted_reads"] =
      Counter(static_cast<double>(b.predicted_reads), Counter::kAvgIterations);
  state.counters["predictor_hits"] =
      Counter(static_cast<double>(b.predictor_hits), Counter::kAvgIterations);
  state.counters["predictor_mispredicts"] = Counter(
      static_cast<double>(b.predictor_mispredicts), Counter::kAvgIterations);
  state.counters["saved_rollbacks"] =
      Counter(static_cast<double>(b.saved_rollbacks), Counter::kAvgIterations);
}

void BM_BufferedLoadStore(benchmark::State& state) {
  // Measures the speculative access path: each iteration forks one
  // speculation doing a fixed batch of buffered read-modify-writes (the
  // fork/join round trip amortizes over the batch), once per SpecBuffer
  // backend (arg: 0 = static-hash, 1 = growable-log, 2 = adaptive,
  // 3 = numa-sharded).
  auto backend = static_cast<BufferBackend>(state.range(0));
  constexpr int64_t kBatch = 4096;
  Runtime rt({.num_cpus = 1, .buffer_log2 = 16, .buffer_backend = backend});
  SharedArray<uint64_t> data(rt, 1024, 0);
  RunStats warm;
  auto body = [&](Ctx& ctx) {
    Spec s = rt.fork(ctx, ForkModel::kMixed, [&](Ctx& c) {
      SharedSpan<uint64_t> d = data.span(c);
      for (int64_t k = 0; k < kBatch; ++k) {
        d[static_cast<size_t>(k) & 1023] += 1;
      }
    });
    rt.join(ctx, s);
  };
  RunStats rs = rt.run([&](Ctx& ctx) {
    for (int i = 0; i < kAllocWarmup; ++i) body(ctx);
    warm = rt.manager().collect_stats();
    for (auto _ : state) body(ctx);
  });
  state.SetItemsProcessed(state.iterations() * kBatch);
  state.SetLabel(buffer_backend_name(backend));
  attach_buffer_counters(state, rs);
  state.counters["alloc_events"] = steady_alloc_events(rs, warm);
}
BENCHMARK(BM_BufferedLoadStore)
    ->ArgNames({"backend"})
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3);

void BM_BufferedLargeFootprint(benchmark::State& state) {
  // A speculative footprint larger than the configured table (2^8 slots,
  // 16K words touched): the static hash dooms and rolls back, the growable
  // log resizes and commits — this is the trade the backend choice buys.
  // The adaptive backend shows the learning curve: it pays the static
  // rollbacks until its slot crosses the overflow threshold, flips, and
  // commits from then on (visible as rollbacks + backend_flips + commits).
  auto backend = static_cast<BufferBackend>(state.range(0));
  Runtime rt({.num_cpus = 1,
              .buffer_log2 = 8,
              .overflow_cap = 256,
              .buffer_backend = backend});
  constexpr size_t kN = 16384;
  SharedArray<uint64_t> data(rt, kN, 0);
  int64_t iters = 0;
  RunStats warm;
  auto body = [&](Ctx& ctx) {
    Spec s = rt.fork(ctx, ForkModel::kMixed, [&](Ctx& c) {
      SharedSpan<uint64_t> d = data.span(c);
      for (size_t k = 0; k < kN; ++k) {
        c.check_point();  // a doomed run stops here, as real code would
        d[k] += 1;
      }
    });
    rt.join(ctx, s);
  };
  RunStats rs = rt.run([&](Ctx& ctx) {
    for (int i = 0; i < kAllocWarmup; ++i) body(ctx);
    warm = rt.manager().collect_stats();
    for (auto _ : state) {
      ++iters;
      body(ctx);
    }
  });
  state.SetItemsProcessed(iters * static_cast<int64_t>(kN));
  state.SetLabel(buffer_backend_name(backend));
  attach_buffer_counters(state, rs);
  state.counters["rollbacks"] = static_cast<double>(rs.speculative.rollbacks);
  state.counters["commits"] = static_cast<double>(rs.speculative.commits);
  state.counters["alloc_events"] = steady_alloc_events(rs, warm);
}
BENCHMARK(BM_BufferedLargeFootprint)
    ->ArgNames({"backend"})
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3);

void BM_LiveInTransfer(benchmark::State& state) {
  Runtime rt({.num_cpus = 1, .buffer_log2 = 10});
  SharedArray<uint64_t> out(rt, 1, 0);
  rt.run([&](Ctx& ctx) {
    int64_t v = 42;
    for (auto _ : state) {
      Spec s = rt.fork(
          ctx, ForkOpts{.predictions = {Prediction::of<int64_t>(&v, 42)}},
          [&](Ctx& c) {
            out.at(c, 0) = static_cast<uint64_t>(c.get_livein<int64_t>(0));
          });
      JoinOutcome r = rt.join(ctx, s);
      benchmark::DoNotOptimize(r);
    }
  });
}
BENCHMARK(BM_LiveInTransfer);

void BM_AddressSpaceLookup(benchmark::State& state) {
  Runtime rt({.num_cpus = 1, .buffer_log2 = 10});
  std::vector<SharedArray<uint64_t>*> arrays;
  for (int i = 0; i < 16; ++i) {
    arrays.push_back(new SharedArray<uint64_t>(rt, 256, 0));
  }
  const IntervalSet& space = rt.manager().address_space();
  size_t i = 0;
  for (auto _ : state) {
    uintptr_t lo, hi;
    bool ok = space.lookup(
        reinterpret_cast<uintptr_t>(arrays[i & 15]->data()) + 64, 8, &lo,
        &hi);
    benchmark::DoNotOptimize(ok);
    ++i;
  }
  for (auto* a : arrays) delete a;
}
BENCHMARK(BM_AddressSpaceLookup);

}  // namespace

BENCHMARK_MAIN();
