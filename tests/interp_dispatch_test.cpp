// Differential equivalence suite for the execution engine's dispatch
// tiers: every program must produce byte-identical observable results —
// return value, printed output, committed global memory — under
// {switch, direct-threaded, compiled-region} x {1, 2, 4} virtual CPUs x
// injected rollbacks, with the original switch loop as the oracle.
// TLS correctness demands the outputs be independent of all three axes, so
// a single sequential oracle run pins down the expectation for the whole
// matrix.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "exec/native_kernels.h"
#include "interp/interp.h"

namespace mutls::interp {
namespace {

using exec::DispatchMode;
using ir::parse_module;

constexpr DispatchMode kModes[] = {DispatchMode::kSwitch,
                                   DispatchMode::kDirectThreaded,
                                   DispatchMode::kCompiledRegion};
constexpr int kCpus[] = {1, 2, 4};
constexpr double kRollbackP[] = {0.0, 1.0};

struct Observed {
  uint64_t ret = 0;
  std::vector<int64_t> printed;
  std::vector<std::vector<char>> globals;  // committed bytes, module order
  RunStats stats;
  uint64_t heat_total = 0;
};

Observed run_one(const std::string& ir_text, const std::string& fn,
                 const std::vector<uint64_t>& args, DispatchMode mode,
                 int cpus, double p) {
  Interpreter::Options o;
  o.num_cpus = cpus;
  o.buffer_log2 = 10;
  o.rollback_probability = p;
  o.dispatch_mode = mode;
  ir::Module m = parse_module(ir_text);
  std::vector<std::pair<std::string, size_t>> gl;
  for (const ir::Global& g : m.globals) {
    gl.emplace_back(g.name, ir::type_size(g.elem_type) * g.count);
  }
  Interpreter it(std::move(m), o);
  // Native bodies are registered unconditionally; only kCompiledRegion
  // consults them, so the other tiers double as the no-op control.
  exec::kernels::register_native_kernels(
      [&](const std::string& f, const std::string& h, exec::CompiledFn b) {
        return it.register_compiled_region(f, h, b);
      });
  Observed ob;
  ob.ret = it.call(fn, args);
  ob.printed = it.printed;
  for (auto& [name, size] : gl) {
    const char* a = static_cast<const char*>(it.global_addr(name));
    ob.globals.emplace_back(a, a + size);
  }
  ob.stats = it.collect_stats();
  for (const exec::RegionHeat& h : it.region_heat()) ob.heat_total += h.count;
  return ob;
}

// Runs the whole mode x cpus x rollback matrix against the sequential
// switch oracle and checks every invariant.
void expect_equivalent(const std::string& ir_text, const std::string& fn,
                       const std::vector<uint64_t>& args) {
  Observed oracle =
      run_one(ir_text, fn, args, DispatchMode::kSwitch, 1, 0.0);
  for (DispatchMode mode : kModes) {
    for (int cpus : kCpus) {
      for (double p : kRollbackP) {
        SCOPED_TRACE(std::string("mode=") + dispatch_mode_name(mode) +
                     " cpus=" + std::to_string(cpus) +
                     " p=" + std::to_string(p));
        Observed got = run_one(ir_text, fn, args, mode, cpus, p);
        EXPECT_EQ(got.ret, oracle.ret);
        EXPECT_EQ(got.printed, oracle.printed);
        ASSERT_EQ(got.globals.size(), oracle.globals.size());
        for (size_t g = 0; g < got.globals.size(); ++g) {
          EXPECT_EQ(got.globals[g], oracle.globals[g]) << "global #" << g;
        }
        // Injected certain-rollback means no speculation ever commits.
        if (p == 1.0) {
          EXPECT_EQ(
              got.stats.critical.commits + got.stats.speculative.commits,
              0u);
        }
        // The region profiler pairs every back-edge stat increment with a
        // heat increment, in every tier (compiled bodies credit in bulk).
        EXPECT_EQ(got.heat_total, got.stats.critical.back_edges +
                                      got.stats.speculative.back_edges);
        // Committed speculation redistributes back edges between the
        // critical and speculative counters 1:1; rollbacks re-execute
        // them. So the total never drops below the sequential path's.
        EXPECT_GE(got.stats.critical.back_edges +
                      got.stats.speculative.back_edges,
                  oracle.stats.critical.back_edges +
                      oracle.stats.speculative.back_edges);
      }
    }
  }
}

// --- fixed corpus (the interp_test programs and the native kernels) -----

TEST(InterpDispatch, StraightLineArithmetic) {
  expect_equivalent(R"(
func @f(%a: i64, %b: i64) : i64 {
entry:
  %s = add %a, %b
  %two = const i64 2
  %m = mul %s, %two
  ret %m
}
)",
                    "f", {3, 4});
}

TEST(InterpDispatch, LoopsAndPhis) {
  expect_equivalent(R"(
func @sum(%n: i64) : i64 {
entry:
  %zero = const i64 0
  %one = const i64 1
  br loop
loop:
  %i = phi i64 [%zero, entry], [%inc, loop]
  %s = phi i64 [%zero, entry], [%s2, loop]
  %s2 = add %s, %i
  %inc = add %i, %one
  %c = icmp slt %inc, %n
  condbr %c, loop, done
done:
  ret %s2
}
)",
                    "sum", {10});
}

TEST(InterpDispatch, MixedWidthArithmeticAndCasts) {
  expect_equivalent(R"(
func @f(%a: i64) : i64 {
entry:
  %t8 = trunc %a to i8
  %s8 = sext %t8 to i64
  %z8 = zext %t8 to i64
  %t16 = trunc %a to i16
  %s16 = sext %t16 to i64
  %d = sub %s8, %z8
  %m = mul %d, %s16
  %sh = const i64 3
  %l = lshr %m, %sh
  %r = ashr %m, %sh
  %x = xor %l, %r
  %c = icmp sge %x, %d
  %sel = select %c, %x, %m
  ret %sel
}
)",
                    "f", {0xfedcba9876543210ull});
}

TEST(InterpDispatch, GlobalsLoadsStores) {
  expect_equivalent(R"(
global @cell : i64[4] = {10, 20, 30, 40}
func @inc(%i: i64) : i64 {
entry:
  %base = globaladdr @cell
  %p = gep %base, %i, 8
  %v = load i64, %p
  %one = const i64 1
  %v2 = add %v, %one
  store %v2, %p
  ret %v2
}
)",
                    "inc", {2});
}

TEST(InterpDispatch, CallsAndRecursion) {
  expect_equivalent(R"(
func @fibr(%n: i64) : i64 {
entry:
  %two = const i64 2
  %c = icmp slt %n, %two
  condbr %c, base, rec
base:
  ret %n
rec:
  %one = const i64 1
  %n1 = sub %n, %one
  %n2 = sub %n, %two
  %f1 = call i64 @fibr(%n1)
  %f2 = call i64 @fibr(%n2)
  %s = add %f1, %f2
  ret %s
}
)",
                    "fibr", {10});
}

TEST(InterpDispatch, SpeculativeForkJoin) {
  expect_equivalent(R"(
global @out : i64[2]
func @work(%n: i64) : i64 {
entry:
  %zero = const i64 0
  %one = const i64 1
  %base = globaladdr @out
  %p1 = gep %base, %one, 8
  %forty = const i64 40
  %two = const i64 2
  %fortytwo = add %forty, %two
  mutls.fork 0, mixed
  br loop
loop:
  %i = phi i64 [%zero, entry], [%inc, loop]
  %s = phi i64 [%zero, entry], [%s2, loop]
  %s2 = add %s, %i
  %inc = add %i, %one
  %c = icmp slt %inc, %n
  condbr %c, loop, joinblk
joinblk:
  store %s2, %base
  mutls.join 0
  store %fortytwo, %p1
  mutls.barrier 0
  %r1 = load i64, %base
  %r2 = load i64, %p1
  %sum = add %r1, %r2
  ret %sum
}
)",
                    "work", {10});
}

TEST(InterpDispatch, ValuePredictionConflict) {
  expect_equivalent(R"(
global @cell : i64[1] = {5}
global @res : i64[1]
func @work() : i64 {
entry:
  %base = globaladdr @cell
  mutls.fork 0, mixed
  %seven = const i64 7
  store %seven, %base
  mutls.join 0
  %v = load i64, %base
  %r = globaladdr @res
  store %v, %r
  mutls.barrier 0
  %out = load i64, %r
  ret %out
}
)",
                    "work", {});
}

TEST(InterpDispatch, LoopChainSpeculation) {
  expect_equivalent(R"(
global @acc : i64[64]
func @work(%n: i64) : i64 {
entry:
  %zero = const i64 0
  %one = const i64 1
  br head
head:
  %i = phi i64 [%zero, entry], [%inc, tail]
  mutls.fork 1, mixed
  mutls.join 1
  %base = globaladdr @acc
  %p = gep %base, %i, 8
  %sq = mul %i, %i
  store %sq, %p
  br tail
tail:
  %inc = add %i, %one
  %c = icmp slt %inc, %n
  condbr %c, head, done
done:
  %r = load i64, %base
  ret %r
}
)",
                    "work", {16});
}

TEST(InterpDispatch, TerminatePointDefersExternalCall) {
  expect_equivalent(R"(
func @work() : i64 {
entry:
  mutls.fork 0, mixed
  %x = const i64 1
  mutls.join 0
  %v = const i64 123
  call @print_i64(%v)
  mutls.barrier 0
  ret %x
}
)",
                    "work", {});
}

TEST(InterpDispatch, FibKernel) {
  expect_equivalent(exec::kernels::fib_ir(), "fib", {40});
  // And the kernel's own oracle.
  Observed o = run_one(exec::kernels::fib_ir(), "fib", {40},
                       DispatchMode::kCompiledRegion, 2, 0.0);
  EXPECT_EQ(o.ret, exec::kernels::fib_expected(40));
}

TEST(InterpDispatch, FillKernel) {
  expect_equivalent(exec::kernels::fill_ir(), "fill", {300});
  Observed o = run_one(exec::kernels::fill_ir(), "fill", {300},
                       DispatchMode::kCompiledRegion, 2, 0.0);
  EXPECT_EQ(o.ret, exec::kernels::fill_expected(300));
}

// --- randomized programs ------------------------------------------------
//
// Deterministically generated small programs: a straight-line mixed-width
// arithmetic prologue, a loop writing/reading a global array, optionally
// wrapped in fork/join so a speculative child executes the continuation.
// Seeds are fixed; every generated module passes the verifier.

std::string gen_program(uint64_t seed, bool with_fork) {
  std::mt19937_64 rng(seed);
  auto pick = [&](uint64_t n) { return rng() % n; };
  std::ostringstream os;
  os << "global @g : i64[64]\n";
  os << "func @t(%x: i64, %y: i64) : i64 {\nentry:\n";
  std::vector<std::string> vals = {"%x", "%y"};
  int next_id = 0;
  auto fresh = [&] { return "%v" + std::to_string(next_id++); };
  auto any = [&] { return vals[pick(vals.size())]; };
  // Constants.
  os << "  %one = const i64 1\n  %zero = const i64 0\n";
  for (int i = 0; i < 3; ++i) {
    std::string c = fresh();
    os << "  " << c << " = const i64 "
       << static_cast<int64_t>(pick(2000) - 1000) << "\n";
    vals.push_back(c);
  }
  static const char* kBin[] = {"add", "sub", "mul", "and",
                               "or",  "xor", "shl", "lshr",
                               "ashr"};
  auto emit_op = [&] {
    std::string r = fresh();
    uint64_t k = pick(12);
    if (k < 9) {
      std::string b = any();
      if (k >= 6) {  // shifts: mask the amount to keep them meaningful
        std::string m = fresh();
        os << "  " << m << " = const i64 " << pick(8) << "\n";
        b = m;
      }
      os << "  " << r << " = " << kBin[k] << " " << any() << ", " << b
         << "\n";
    } else if (k == 9) {  // compare + select
      std::string c = fresh();
      os << "  " << c << " = icmp "
         << (pick(2) ? "slt" : "sge") << " " << any() << ", " << any()
         << "\n";
      os << "  " << r << " = select " << c << ", " << any() << ", " << any()
         << "\n";
    } else {  // narrow + widen round trip
      const char* ty = pick(2) ? "i8" : "i16";
      std::string t = fresh();
      os << "  " << t << " = trunc " << any() << " to " << ty << "\n";
      os << "  " << r << " = " << (pick(2) ? "sext" : "zext") << " " << t
         << " to i64\n";
    }
    vals.push_back(r);
  };
  for (int i = 0; i < 6; ++i) emit_op();
  os << "  %base = globaladdr @g\n";
  os << "  %iters = const i64 " << (8 + pick(25)) << "\n";
  if (with_fork) os << "  mutls.fork 0, mixed\n";
  os << "  br loop\n";
  // The loop: accumulate, store to a masked slot, load it back.
  std::string seedv = any();
  os << "loop:\n";
  os << "  %i = phi i64 [%zero, entry], [%inc, loop]\n";
  os << "  %acc = phi i64 [" << seedv << ", entry], [%acc2, loop]\n";
  vals.push_back("%i");
  vals.push_back("%acc");
  for (int i = 0; i < 2; ++i) emit_op();
  os << "  %m63 = const i64 63\n";
  os << "  %slot = and %i, %m63\n";
  os << "  %sp = gep %base, %slot, 8\n";
  os << "  store " << any() << ", %sp\n";
  os << "  %back = load i64, %sp\n";
  os << "  %acc2 = add %acc, %back\n";
  os << "  %inc = add %i, %one\n";
  os << "  %c = icmp slt %inc, %iters\n";
  os << "  condbr %c, loop, done\n";
  os << "done:\n";
  if (with_fork) {
    // The speculative child executes from here; give it loads and stores
    // that can conflict with the parent's loop.
    os << "  mutls.join 0\n";
    os << "  %rp = gep %base, %zero, 8\n";
    os << "  %rv = load i64, %rp\n";
    os << "  %out = add %rv, %acc2\n";
    os << "  store %out, %rp\n";
    os << "  mutls.barrier 0\n";
    os << "  %fin = load i64, %rp\n";
    os << "  ret %fin\n";
  } else {
    os << "  ret %acc2\n";
  }
  os << "}\n";
  return os.str();
}

TEST(InterpDispatch, RandomizedPrograms) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    for (bool with_fork : {false, true}) {
      std::string text = gen_program(seed, with_fork);
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " fork=" + std::to_string(with_fork) + "\n" + text);
      ir::Module m = parse_module(text);
      std::vector<std::string> errs = ir::verify_module(m);
      ASSERT_TRUE(errs.empty()) << errs.front();
      expect_equivalent(text, "t", {seed * 7919, seed * 104729});
    }
  }
}

}  // namespace
}  // namespace mutls::interp
