#include "exec/native_kernels.h"

#include <mutex>

#include "ir/ir.h"
#include "support/check.h"

namespace mutls::exec::kernels {

namespace {

// The bodies are plain function pointers (CompiledFn carries no state), so
// the value ids and block indices they use live in file-static tables
// resolved once from a parsed copy of the kernel text. The text is fixed,
// hence so are the ids; resolution CHECKs every name so any drift between
// the IR strings and the bodies fails loudly at registration.

constexpr const char* kFibIr = R"(
global @fib_out : i64[1]
func @fib(%n: i64) : i64 {
entry:
  %zero = const i64 0
  %one = const i64 1
  %base = globaladdr @fib_out
  mutls.fork 0, mixed
  br loop
loop:
  %i = phi i64 [%zero, entry], [%inc, loop]
  %a = phi i64 [%zero, entry], [%b, loop]
  %b = phi i64 [%one, entry], [%s, loop]
  %s = add %a, %b
  %inc = add %i, %one
  %c = icmp slt %inc, %n
  condbr %c, loop, joinblk
joinblk:
  store %s, %base
  mutls.join 0
  mutls.barrier 0
  %r = load i64, %base
  ret %r
}
)";

constexpr const char* kFillIr = R"(
global @fill_cells : i64[4096]
global @fill_sum : i64[1]
func @fill(%n: i64) : i64 {
entry:
  %zero = const i64 0
  %one = const i64 1
  %base = globaladdr @fill_cells
  br wloop
wloop:
  %i = phi i64 [%zero, entry], [%inc, wloop]
  %p = gep %base, %i, 8
  store %i, %p
  %inc = add %i, %one
  %c = icmp slt %inc, %n
  condbr %c, wloop, forkblk
forkblk:
  mutls.fork 0, mixed
  mutls.join 0
  br rloop
rloop:
  %j = phi i64 [%zero, forkblk], [%jinc, rloop]
  %s = phi i64 [%zero, forkblk], [%s2, rloop]
  %q = gep %base, %j, 8
  %v = load i64, %q
  %s2 = add %s, %v
  %jinc = add %j, %one
  %c2 = icmp slt %jinc, %n
  condbr %c2, rloop, done
done:
  %sp = globaladdr @fill_sum
  store %s2, %sp
  mutls.barrier 0
  %r = load i64, %sp
  ret %r
}
)";

ir::ValueId vid(const ir::Function& f, const char* name) {
  for (ir::ValueId v = 1; v < f.value_count; ++v) {
    if (f.value_names[v] == name) return v;
  }
  MUTLS_CHECK(false, "native kernel value name not found");
  return 0;
}

struct FibIds {
  ir::ValueId n, zero, one, i, a, b, s, inc, c;
  uint32_t entry, loop, joinblk;
};
struct FillIds {
  ir::ValueId n, zero, one, base, i, p, inc, c;
  ir::ValueId j, s, q, v, s2, jinc, c2;
  uint32_t entry, wloop, forkblk, rloop, done;
};

FibIds g_fib;
FillIds g_fill;
std::once_flag g_resolved;

void resolve_ids() {
  {
    ir::Module m = ir::parse_module(kFibIr);
    const ir::Function& f = *m.find_function("fib");
    g_fib.n = vid(f, "n");
    g_fib.zero = vid(f, "zero");
    g_fib.one = vid(f, "one");
    g_fib.i = vid(f, "i");
    g_fib.a = vid(f, "a");
    g_fib.b = vid(f, "b");
    g_fib.s = vid(f, "s");
    g_fib.inc = vid(f, "inc");
    g_fib.c = vid(f, "c");
    g_fib.entry = f.block_index("entry");
    g_fib.loop = f.block_index("loop");
    g_fib.joinblk = f.block_index("joinblk");
  }
  {
    ir::Module m = ir::parse_module(kFillIr);
    const ir::Function& f = *m.find_function("fill");
    g_fill.n = vid(f, "n");
    g_fill.zero = vid(f, "zero");
    g_fill.one = vid(f, "one");
    g_fill.base = vid(f, "base");
    g_fill.i = vid(f, "i");
    g_fill.p = vid(f, "p");
    g_fill.inc = vid(f, "inc");
    g_fill.c = vid(f, "c");
    g_fill.j = vid(f, "j");
    g_fill.s = vid(f, "s");
    g_fill.q = vid(f, "q");
    g_fill.v = vid(f, "v");
    g_fill.s2 = vid(f, "s2");
    g_fill.jinc = vid(f, "jinc");
    g_fill.c2 = vid(f, "c2");
    g_fill.entry = f.block_index("entry");
    g_fill.wloop = f.block_index("wloop");
    g_fill.forkblk = f.block_index("forkblk");
    g_fill.rloop = f.block_index("rloop");
    g_fill.done = f.block_index("done");
  }
}

// @fib region "loop": 3 phis + 2 adds + icmp + condbr, all in registers.
// Runs in the (non-speculative) forker frame; polls are no-ops there but
// stay for ABI fidelity — the body is correct in any frame.
RegionResult fib_loop(RegionCtx& ctx) {
  const FibIds& id = g_fib;
  uint64_t i, a, b;
  if (ctx.entry_block == id.entry) {  // loop-entry edge: initial phi values
    i = ctx.regs[id.zero];
    a = ctx.regs[id.zero];
    b = ctx.regs[id.one];
  } else {  // back-edge entry (resume mid-loop): loop-carried values
    i = ctx.regs[id.inc];
    a = ctx.regs[id.b];
    b = ctx.regs[id.s];
  }
  const uint64_t one = ctx.regs[id.one];
  const int64_t n = static_cast<int64_t>(ctx.regs[id.n]);
  uint64_t iters = 0;
  for (;;) {
    uint64_t s = a + b;
    uint64_t inc = i + one;
    if (static_cast<int64_t>(inc) >= n) {
      // Exit edge loop->joinblk: leave the register file exactly as the
      // interpreted loop would (current phi values + this iteration's
      // defs, condition false).
      ctx.regs[id.i] = i;
      ctx.regs[id.a] = a;
      ctx.regs[id.b] = b;
      ctx.regs[id.s] = s;
      ctx.regs[id.inc] = inc;
      ctx.regs[id.c] = 0;
      region_credit(ctx, iters);
      return RegionResult::exit(id.joinblk, 0, id.loop);
    }
    ++iters;
    if (region_poll(ctx)) {
      // Check-point stop: materialize the header phis for the back edge
      // and stop just after them.
      ctx.regs[id.s] = s;
      ctx.regs[id.inc] = inc;
      ctx.regs[id.c] = 1;
      ctx.regs[id.i] = inc;
      ctx.regs[id.a] = b;
      ctx.regs[id.b] = s;
      region_credit(ctx, iters);
      return RegionResult::stop(id.loop, 3);
    }
    i = inc;
    a = b;
    b = s;
  }
}

// @fill region "wloop": the sequential store loop. Stores go through
// region_store — direct host access non-speculatively, SpecBuffer when a
// speculative frame ever runs it.
RegionResult fill_wloop(RegionCtx& ctx) {
  const FillIds& id = g_fill;
  uint64_t i = ctx.entry_block == id.entry ? ctx.regs[id.zero]
                                           : ctx.regs[id.inc];
  const uint64_t base = ctx.regs[id.base];
  const uint64_t one = ctx.regs[id.one];
  const int64_t n = static_cast<int64_t>(ctx.regs[id.n]);
  uint64_t iters = 0;
  for (;;) {
    uint64_t p = base + i * 8;
    region_store(ctx, p, i, 8);
    uint64_t inc = i + one;
    if (static_cast<int64_t>(inc) >= n) {
      ctx.regs[id.i] = i;
      ctx.regs[id.p] = p;
      ctx.regs[id.inc] = inc;
      ctx.regs[id.c] = 0;
      region_credit(ctx, iters);
      return RegionResult::exit(id.forkblk, 0, id.wloop);
    }
    ++iters;
    if (region_poll(ctx)) {
      ctx.regs[id.p] = p;
      ctx.regs[id.inc] = inc;
      ctx.regs[id.c] = 1;
      ctx.regs[id.i] = inc;
      region_credit(ctx, iters);
      return RegionResult::stop(id.wloop, 1);
    }
    i = inc;
  }
}

// @fill region "rloop": the load-reduce loop a speculative child runs as
// the fork continuation — loads route through its SpecBuffer and every
// back edge polls the check point.
RegionResult fill_rloop(RegionCtx& ctx) {
  const FillIds& id = g_fill;
  uint64_t j, s;
  if (ctx.entry_block == id.forkblk) {
    j = ctx.regs[id.zero];
    s = ctx.regs[id.zero];
  } else {
    j = ctx.regs[id.jinc];
    s = ctx.regs[id.s2];
  }
  const uint64_t base = ctx.regs[id.base];
  const uint64_t one = ctx.regs[id.one];
  const int64_t n = static_cast<int64_t>(ctx.regs[id.n]);
  uint64_t iters = 0;
  for (;;) {
    uint64_t q = base + j * 8;
    uint64_t v = region_load(ctx, q, 8);
    uint64_t s2 = s + v;
    uint64_t jinc = j + one;
    if (static_cast<int64_t>(jinc) >= n) {
      ctx.regs[id.j] = j;
      ctx.regs[id.s] = s;
      ctx.regs[id.q] = q;
      ctx.regs[id.v] = v;
      ctx.regs[id.s2] = s2;
      ctx.regs[id.jinc] = jinc;
      ctx.regs[id.c2] = 0;
      region_credit(ctx, iters);
      return RegionResult::exit(id.done, 0, id.rloop);
    }
    ++iters;
    if (region_poll(ctx)) {
      ctx.regs[id.q] = q;
      ctx.regs[id.v] = v;
      ctx.regs[id.s2] = s2;
      ctx.regs[id.jinc] = jinc;
      ctx.regs[id.c2] = 1;
      ctx.regs[id.j] = jinc;
      ctx.regs[id.s] = s2;
      region_credit(ctx, iters);
      return RegionResult::stop(id.rloop, 2);
    }
    j = jinc;
    s = s2;
  }
}

}  // namespace

const char* fib_ir() { return kFibIr; }
const char* fill_ir() { return kFillIr; }

uint64_t fib_expected(uint64_t n) {
  uint64_t a = 0, b = 1, s = 1;
  for (uint64_t i = 0; i < n; ++i) {  // the IR loop body runs n times
    s = a + b;
    a = b;
    b = s;
  }
  return s;
}

uint64_t fill_expected(uint64_t n) {
  uint64_t s = 0;
  for (uint64_t i = 0; i < n; ++i) s += i;
  return s;
}

uint64_t fib_instrs(uint64_t n) { return 7 * n + 12; }
uint64_t fill_instrs(uint64_t n) { return 6 * n + 8 * n + 16; }

int register_native_kernels(
    const std::function<bool(const std::string&, const std::string&,
                             CompiledFn)>& reg) {
  std::call_once(g_resolved, resolve_ids);
  int count = 0;
  if (reg("fib", "loop", &fib_loop)) ++count;
  if (reg("fill", "wloop", &fill_wloop)) ++count;
  if (reg("fill", "rloop", &fill_rloop)) ++count;
  return count;
}

}  // namespace mutls::exec::kernels
