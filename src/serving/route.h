// Route table of the serving subsystem: maps request paths to route ids.
//
// Routes are installed once at server construction (setup-time allocation
// is fine; the match path allocates nothing) and matched per request:
// exact routes win over prefix routes, and among matching prefixes the
// longest wins — the rule every production router (nginx location, squid
// acl) converges on. The table is immutable during serving, so concurrent
// speculative handlers read it as plain shared data with no registration.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "support/check.h"

namespace mutls::serving {

class RouteTable {
 public:
  static constexpr int kNoRoute = -1;

  // Returns the route id (dense, starting at 0) for use as a handler
  // index. Ids are assigned in registration order across both kinds.
  int add_exact(std::string_view path) { return add(path, /*prefix=*/false); }
  int add_prefix(std::string_view prefix) { return add(prefix, true); }

  struct Match {
    int route = kNoRoute;
    // The target suffix after the matched prefix ("/cache/items/42"
    // against prefix "/cache/items/" leaves "42"); empty for exact
    // matches and misses.
    std::string_view rest;
  };

  Match match(std::string_view path) const {
    Match best;
    size_t best_len = 0;
    bool best_exact = false;
    for (const Rule& r : rules_) {
      if (!r.prefix) {
        if (path == r.pattern) {
          best = Match{r.id, {}};
          best_exact = true;
          // Exact beats everything; rules are unique, stop scanning.
          break;
        }
        continue;
      }
      if (!best_exact && path.size() >= r.pattern.size() &&
          path.substr(0, r.pattern.size()) == r.pattern &&
          r.pattern.size() >= best_len) {
        best = Match{r.id, path.substr(r.pattern.size())};
        best_len = r.pattern.size();
      }
    }
    return best;
  }

  size_t size() const { return rules_.size(); }

 private:
  struct Rule {
    std::string pattern;
    bool prefix;
    int id;
  };

  int add(std::string_view pattern, bool prefix) {
    MUTLS_CHECK(!pattern.empty() && pattern.front() == '/',
                "routes must be absolute paths");
    for (const Rule& r : rules_) {
      MUTLS_CHECK(r.prefix != prefix || r.pattern != pattern,
                  "duplicate route registration");
    }
    int id = static_cast<int>(rules_.size());
    rules_.push_back(Rule{std::string(pattern), prefix, id});
    return id;
  }

  std::vector<Rule> rules_;
};

}  // namespace mutls::serving
