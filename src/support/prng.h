// Deterministic per-thread PRNG used for rollback injection (paper Fig. 11)
// and workload generation. xoshiro-style xorshift with splitmix seeding so
// two runs with the same seed inject rollbacks at the same decisions.
#pragma once

#include <cstdint>

namespace mutls {

class Xorshift64 {
 public:
  explicit Xorshift64(uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(uint64_t seed) {
    // splitmix64 scrambling so small seeds (0, 1, 2...) diverge immediately.
    uint64_t z = seed + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    state_ = z ^ (z >> 31);
    if (state_ == 0) state_ = 0x9e3779b97f4a7c15ull;
  }

  uint64_t next() {
    uint64_t x = state_;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    state_ = x;
    return x;
  }

  // Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Uniform in [0, n).
  uint64_t next_below(uint64_t n) { return n ? next() % n : 0; }

  // Bernoulli trial with probability p.
  bool bernoulli(double p) { return next_double() < p; }

 private:
  uint64_t state_;
};

}  // namespace mutls
