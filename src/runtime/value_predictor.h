// ValuePredictor — per-virtual-CPU last-value + stride predictor over word
// addresses (ROADMAP item 4: the paper's IV-G4 live-in prediction
// generalized to memory).
//
// The paper's `ForkOpts.predictions` only covers values the forker names
// up front; every other read-set conflict dooms the whole speculation.
// This table closes that gap: it is trained at settle time from the final
// values of *conflicting* read-set words (that is how an address enters
// the table — a word that never conflicts never costs a slot), and once an
// entry is confident, SpecBuffer adopts the predicted final value as the
// read observation at access time. The existing branchless XOR validation
// then does the containment for free: a correct prediction validates, a
// mispredict fails validation and rides the ordinary doom/rollback path
// (with a distinct doom_reason for attribution).
//
// Prediction model, per entry:
//   last_value — the word's value at the entry's most recent training
//   stride     — the delta between the last two trainings (two's-complement
//                wraparound, so negative strides are just large deltas)
//   confidence — saturating count of consecutive trainings whose delta
//                repeated the stride; predictions are only served at or
//                above the policy threshold. A stable value is the stride-0
//                case, so last-value prediction falls out of the same entry.
// predict(addr) returns last_value + stride: the value the word is
// expected to hold at the *next* settle.
//
// The table is direct-mapped (Fibonacci-hashed word address, one entry per
// bucket) with confidence aging on collisions: a colliding training
// decrements the incumbent's confidence and only replaces it at zero, so a
// hot entry is not thrashed by one-off conflict addresses. Storage comes
// from the owning slot's arena pool (heap only for standalone test
// instances), is sized once at init, and — like the adaptive flip state —
// deliberately survives SpecBuffer::rearm(): the *slot* learns across
// speculations while the stats stay per-speculation.
#pragma once

#include <cstdint>

#include "support/arena.h"

namespace mutls {

// The value-prediction knobs. Surfaced as the predict_* fields of
// ManagerConfig / Runtime::Options / interp Options and handed to
// SpecBuffer::init as SpecBuffer::PredictPolicy. (Namespace-scope rather
// than nested, same reason as SpecAdaptivePolicy: it appears as a default
// argument of SpecBuffer::init.)
struct SpecPredictPolicy {
  // Master switch. Disabled, the predictor allocates nothing and the
  // access/validation hot paths pay one predicted-not-taken branch.
  bool enabled = false;
  // Consecutive stride confirmations required before an entry serves
  // predictions. 1 predicts after two trainings (aggressive); higher
  // values trade warm-up epochs for fewer mispredict rollbacks.
  uint32_t confidence_threshold = 2;
  // Largest |delta| accepted as a learnable stride. A training whose delta
  // exceeds the window is treated as chaos, not a stride: the entry keeps
  // tracking last_value but drops stride and confidence to zero. 0 turns
  // the entry into a pure last-value predictor (only an unchanged word
  // gains confidence).
  uint64_t stride_window = 1u << 16;
  // log2 of the per-slot table's entry count (0 = a single bucket, which
  // the collision tests use). 256 entries cost 8 KiB of arena pool.
  int table_log2 = 8;
};

class ValuePredictor {
 public:
  ValuePredictor() = default;
  ValuePredictor(const ValuePredictor&) = delete;
  ValuePredictor& operator=(const ValuePredictor&) = delete;
  ~ValuePredictor();

  // Sizes (or re-sizes) the table from the arena pool; releases any prior
  // table first, so re-init is safe. A disabled policy frees the table:
  // predict() then never fires and train() is a no-op.
  void init(const SpecPredictPolicy& policy, Arena* arena);

  // Serves a prediction for `word_addr` when its entry is confident.
  // Returns false (leaving *out untouched) otherwise. Const and
  // side-effect free: consulting the predictor never perturbs it.
  bool predict(uintptr_t word_addr, uint64_t* out) const {
    if (table_ == nullptr) return false;
    const Entry& e = table_[bucket(word_addr)];
    if (e.addr != word_addr || e.confidence < policy_.confidence_threshold) {
      return false;
    }
    *out = e.last_value + e.stride;
    return true;
  }

  // Trains the entry for `word_addr` with the word's settled value (final
  // memory at validation, or the predicted value a successful validation
  // just proved). Called off the access hot path — at settle only.
  void train(uintptr_t word_addr, uint64_t actual);

  // --- observability (tests, diagnostics) ---

  bool enabled() const { return table_ != nullptr; }
  size_t capacity() const { return table_ ? size_t{1} << policy_.table_log2 : 0; }
  // Occupied entries (linear scan; test/diagnostic use only).
  size_t entries() const;
  // The confidence of the entry holding `word_addr`, 0 when absent.
  uint32_t confidence_of(uintptr_t word_addr) const;

 private:
  struct Entry {
    uintptr_t addr = 0;  // 0 = empty (no word lives at address 0)
    uint64_t last_value = 0;
    uint64_t stride = 0;
    uint32_t confidence = 0;
    uint32_t unused = 0;
  };

  static constexpr uint32_t kMaxConfidence = 64;

  size_t bucket(uintptr_t word_addr) const {
    // Single-bucket tables short-circuit: the general expression would
    // shift by 64, which is undefined.
    if (policy_.table_log2 == 0) return 0;
    // Fibonacci hash of the word index (the low 3 address bits are always
    // zero, so shift them out before mixing); the top table_log2 bits of
    // the product index the table.
    uint64_t h = (static_cast<uint64_t>(word_addr) >> 3) *
                 0x9e3779b97f4a7c15ull;
    return static_cast<size_t>(h >> (64 - policy_.table_log2));
  }

  void release_table();

  SpecPredictPolicy policy_;
  Entry* table_ = nullptr;
  Arena* arena_ = nullptr;
};

}  // namespace mutls
