#include "workloads/matmult.h"

#include <vector>

#include "support/prng.h"

namespace mutls::workloads {

namespace {

struct View {
  // Submatrix [r0, r0+n) x [c0, c0+n) of a row-major `dim` x `dim` matrix.
  double* base;
  int dim;
  int r0, c0;

  double* at(int r, int c) const {
    return base + static_cast<size_t>(r0 + r) * dim + (c0 + c);
  }
  View quad(int qr, int qc, int half) const {
    return View{base, dim, r0 + qr * half, c0 + qc * half};
  }
};

void init_matrices(const MatMult::Params& p, std::vector<double>& a,
                   std::vector<double>& b) {
  size_t nn = static_cast<size_t>(p.n) * p.n;
  Xorshift64 rng(p.seed);
  a.resize(nn);
  b.resize(nn);
  for (size_t i = 0; i < nn; ++i) {
    a[i] = rng.next_double() - 0.5;
    b[i] = rng.next_double() - 0.5;
  }
}

void leaf_mm_seq(View c, View a, View b, int n, bool accumulate) {
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = accumulate ? *c.at(i, j) : 0.0;
      for (int k = 0; k < n; ++k) {
        acc += *a.at(i, k) * *b.at(k, j);
      }
      *c.at(i, j) = acc;
    }
  }
}

void mm_seq(View c, View a, View b, int n, int leaf, bool accumulate) {
  if (n <= leaf) {
    leaf_mm_seq(c, a, b, n, accumulate);
    return;
  }
  int h = n / 2;
  for (int qr = 0; qr < 2; ++qr) {
    for (int qc = 0; qc < 2; ++qc) {
      View cq = c.quad(qr, qc, h);
      mm_seq(cq, a.quad(qr, 0, h), b.quad(0, qc, h), h, leaf, accumulate);
      mm_seq(cq, a.quad(qr, 1, h), b.quad(1, qc, h), h, leaf, true);
    }
  }
}

struct SpecMm {
  Runtime& rt;
  const MatMult::Params& p;
  ForkModel model;

  void leaf_mm(Ctx& ctx, View c, View a, View b, int n,
               bool accumulate) const {
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        double acc = accumulate ? shared(ctx, c.at(i, j)).get() : 0.0;
        for (int k = 0; k < n; ++k) {
          acc += shared(ctx, a.at(i, k)) * shared(ctx, b.at(k, j));
        }
        shared(ctx, c.at(i, j)) = acc;
      }
      ctx.check_point();
    }
  }

  // One quadrant sub-task: assign-multiply then accumulate-multiply.
  void quad_task(Ctx& ctx, View c, View a, View b, int qr, int qc, int h,
                 bool accumulate, int level) const {
    View cq = c.quad(qr, qc, h);
    run(ctx, cq, a.quad(qr, 0, h), b.quad(0, qc, h), h, accumulate, level);
    run(ctx, cq, a.quad(qr, 1, h), b.quad(1, qc, h), h, true, level);
  }

  void run(Ctx& ctx, View c, View a, View b, int n, bool accumulate,
           int level) const {
    if (n <= p.leaf) {
      leaf_mm(ctx, c, a, b, n, accumulate);
      return;
    }
    int h = n / 2;
    if (level < p.fork_levels) {
      // Parent computes quadrant (0,0); three speculative children compute
      // the rest. Reverse declaration order of the scopes joins s11, s10,
      // s01 — LIFO, keeping the mixed-model assumption intact.
      ScopedSpec s01 = rt.fork_scoped(ctx, model, [=, this](Ctx& cc) {
        quad_task(cc, c, a, b, 0, 1, h, accumulate, level + 1);
      });
      ScopedSpec s10 = rt.fork_scoped(ctx, model, [=, this](Ctx& cc) {
        quad_task(cc, c, a, b, 1, 0, h, accumulate, level + 1);
      });
      ScopedSpec s11 = rt.fork_scoped(ctx, model, [=, this](Ctx& cc) {
        quad_task(cc, c, a, b, 1, 1, h, accumulate, level + 1);
      });
      quad_task(ctx, c, a, b, 0, 0, h, accumulate, level + 1);
    } else {
      for (int qr = 0; qr < 2; ++qr) {
        for (int qc = 0; qc < 2; ++qc) {
          quad_task(ctx, c, a, b, qr, qc, h, accumulate, level + 1);
        }
      }
    }
  }
};

uint64_t checksum_matrix(const double* m, size_t nn) {
  uint64_t h = hash_begin();
  for (size_t i = 0; i < nn; ++i) h = hash_double(h, m[i]);
  return h;
}

}  // namespace

SeqRun MatMult::run_seq(const Params& p) {
  std::vector<double> a, b;
  init_matrices(p, a, b);
  std::vector<double> c(static_cast<size_t>(p.n) * p.n, 0.0);
  Stopwatch sw;
  mm_seq(View{c.data(), p.n, 0, 0}, View{a.data(), p.n, 0, 0},
         View{b.data(), p.n, 0, 0}, p.n, p.leaf, false);
  double secs = sw.elapsed_sec();
  return SeqRun{checksum_matrix(c.data(), c.size()), secs};
}

SpecRun MatMult::run_spec(Runtime& rt, const Params& p, ForkModel model) {
  size_t nn = static_cast<size_t>(p.n) * p.n;
  SharedArray<double> a(rt, nn), b(rt, nn), c(rt, nn, 0.0);
  {
    std::vector<double> a0, b0;
    init_matrices(p, a0, b0);
    for (size_t i = 0; i < nn; ++i) {
      a[i] = a0[i];
      b[i] = b0[i];
    }
  }
  Stopwatch sw;
  RunStats stats = rt.run([&](Ctx& ctx) {
    SpecMm mm{rt, p, model};
    mm.run(ctx, View{c.data(), p.n, 0, 0}, View{a.data(), p.n, 0, 0},
           View{b.data(), p.n, 0, 0}, p.n, false, 0);
  });
  double secs = sw.elapsed_sec();
  return SpecRun{checksum_matrix(c.data(), nn), secs, stats};
}

}  // namespace mutls::workloads
