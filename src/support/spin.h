// Busy-wait helpers for the flag-based barriers of MUTLS (paper section
// IV-E): the non-speculative thread spins on valid_status while the
// speculative thread spins on sync_status. An exponential backoff keeps two
// spinning threads from saturating the memory bus on small machines.
#pragma once

#include <atomic>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace mutls {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  std::this_thread::yield();
#endif
}

// Spins until `pred()` returns true. Starts with pause instructions and
// degrades to yielding the OS thread, which matters when virtual CPUs
// outnumber hardware threads (the common case for this reproduction).
template <typename Pred>
void spin_until(Pred&& pred) {
  int spins = 0;
  while (!pred()) {
    if (spins < 64) {
      cpu_relax();
      ++spins;
    } else {
      std::this_thread::yield();
    }
  }
}

// Bounded spin: waits for `pred` for at most `budget` iterations (pause
// instructions first, then OS-thread yields, like spin_until) and reports
// whether it held. The spin phase of spin-then-park hybrids: a caller that
// gets `false` back should fall back to a real block (mutex + condvar)
// instead of burning the core.
template <typename Pred>
bool spin_until_bounded(Pred&& pred, int budget) {
  for (int spins = 0; spins < budget; ++spins) {
    if (pred()) return true;
    if (spins < 64) {
      cpu_relax();
    } else {
      std::this_thread::yield();
    }
  }
  return pred();
}

// Spin on an atomic until it differs from `current`; returns the new value.
template <typename T>
T spin_while_equal(const std::atomic<T>& flag, T current) {
  T v = flag.load(std::memory_order_acquire);
  int spins = 0;
  while (v == current) {
    if (spins < 64) {
      cpu_relax();
      ++spins;
    } else {
      std::this_thread::yield();
    }
    v = flag.load(std::memory_order_acquire);
  }
  return v;
}

}  // namespace mutls
