// Arena unit and randomized property tests (run under ASan and TSan in CI:
// the randomized mix is the memory-safety net for the bump/pool machinery
// that the allocation-budget test only observes through counters).
#include "support/arena.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "support/prng.h"

namespace mutls {
namespace {

TEST(Arena, BumpAllocAlignsAndCounts) {
  Arena a;
  void* p = a.alloc(10);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % alignof(std::max_align_t), 0u);
  void* q = a.alloc(1, 1);
  EXPECT_NE(p, q);
  ArenaStats st = a.stats();
  EXPECT_GE(st.bytes_in_use, 11u);
  EXPECT_EQ(st.segments, 1u);
  EXPECT_EQ(st.fallback_heap_allocs, 1u);  // the one segment
}

TEST(Arena, LifoRecycleRewindsTheBump) {
  Arena a;
  (void)a.alloc(64);
  void* b = a.alloc(64);
  size_t used = a.stats().bytes_in_use;
  a.recycle(b, 64);
  EXPECT_EQ(a.stats().bytes_in_use, used - 64);
  // The rewound space is handed out again.
  EXPECT_EQ(a.alloc(64), b);
}

TEST(Arena, OutOfOrderRecycleIsAbandonedUntilRearm) {
  Arena a;
  void* b0 = a.alloc(64);
  (void)a.alloc(64);
  size_t used = a.stats().bytes_in_use;
  a.recycle(b0, 64);  // not the top — no rewind
  EXPECT_EQ(a.stats().bytes_in_use, used);
  a.rearm();
  EXPECT_EQ(a.stats().bytes_in_use, 0u);
}

TEST(Arena, OversizedBlocksAreDedicatedAndFreed) {
  Arena a;
  size_t n = Arena::kOversizeBytes + 1;
  void* p = a.alloc(n);
  std::memset(p, 0xab, n);
  EXPECT_EQ(a.stats().bytes_in_use, n);
  a.recycle(p, n);
  EXPECT_EQ(a.stats().bytes_in_use, 0u);
  // And via rearm instead of recycle:
  void* q = a.alloc(n);
  std::memset(q, 0xcd, n);
  a.rearm();
  EXPECT_EQ(a.stats().bytes_in_use, 0u);
}

TEST(Arena, WarmedEpochsNeverTouchTheHeap) {
  Arena a;
  constexpr size_t kPerEpoch = 3 * Arena::kSegmentBytes / 2;
  // Warm-up epoch: pays for its segments once.
  while (a.stats().bytes_in_use < kPerEpoch) (void)a.alloc(1024);
  EXPECT_GT(a.epoch_heap_allocs(), 0u);
  for (int epoch = 0; epoch < 5; ++epoch) {
    a.rearm();
    while (a.stats().bytes_in_use < kPerEpoch) (void)a.alloc(1024);
    EXPECT_EQ(a.epoch_heap_allocs(), 0u) << "epoch " << epoch;
  }
}

TEST(Arena, PoolReusesReleasedBlocks) {
  Arena a;
  void* p = a.grab(100);
  uint64_t base = a.stats().fallback_heap_allocs;
  a.release(p, 100);
  // Same size class (128B) — must come back from the free list.
  EXPECT_EQ(a.grab(65), p);
  EXPECT_EQ(a.stats().fallback_heap_allocs, base);
  // Pool storage survives rearm.
  a.release(p, 100);
  a.rearm();
  EXPECT_EQ(a.grab(128), p);
  EXPECT_EQ(a.stats().fallback_heap_allocs, base);
}

TEST(Arena, PooledSizeRoundsToClasses) {
  EXPECT_EQ(Arena::pooled_size(1), Arena::kMinPoolBytes);
  EXPECT_EQ(Arena::pooled_size(64), 64u);
  EXPECT_EQ(Arena::pooled_size(65), 128u);
  EXPECT_EQ(Arena::pooled_size(4096), 4096u);
  EXPECT_EQ(Arena::pooled_size(4097), 8192u);
}

TEST(PodVec, GrowsPreservesAndRecyclesThroughThePool) {
  Arena a;
  PodVec<uint32_t> v;
  v.attach(&a);
  for (uint32_t i = 0; i < 1000; ++i) v.push_back(i);
  ASSERT_EQ(v.size(), 1000u);
  for (uint32_t i = 0; i < 1000; ++i) EXPECT_EQ(v[i], i);
  size_t cap = v.capacity();
  uint64_t warm = a.stats().fallback_heap_allocs;
  // Steady state: clearing keeps capacity; refilling to the same footprint
  // allocates nothing.
  for (int round = 0; round < 3; ++round) {
    v.clear();
    for (uint32_t i = 0; i < 1000; ++i) v.push_back(i);
  }
  EXPECT_EQ(v.capacity(), cap);
  EXPECT_EQ(a.stats().fallback_heap_allocs, warm);
}

TEST(PodVec, WorksUnattached) {
  PodVec<uint64_t> v;
  for (uint64_t i = 0; i < 200; ++i) v.push_back(i * 3);
  for (uint64_t i = 0; i < 200; ++i) EXPECT_EQ(v[i], i * 3);
}

// Randomized property test: a shadow model of live blocks checks that the
// arena never hands out overlapping storage and never corrupts a live
// block, across bump allocs (including oversized), LIFO and out-of-order
// recycles, pool grab/release cycles, and epoch rearms.
TEST(ArenaProperty, RandomizedMixKeepsLiveBlocksIntact) {
  struct Block {
    void* p;
    size_t n;
    unsigned char tag;
    bool pooled;
  };
  Xorshift64 rng(20260807);
  Arena a;
  std::vector<Block> bump_live;  // stack order == allocation order
  std::vector<Block> pool_live;
  unsigned char next_tag = 1;

  auto fill = [](const Block& b) { std::memset(b.p, b.tag, b.n); };
  auto check = [](const Block& b) {
    const unsigned char* c = static_cast<const unsigned char*>(b.p);
    for (size_t i = 0; i < b.n; ++i) {
      ASSERT_EQ(c[i], b.tag) << "live block corrupted at byte " << i;
    }
  };

  for (int step = 0; step < 20000; ++step) {
    uint64_t op = rng.next_below(100);
    if (op < 45) {
      // Bump alloc; ~1 in 30 is oversized.
      size_t n = rng.next_below(30) == 0
                     ? Arena::kOversizeBytes + 1 + rng.next_below(4096)
                     : 1 + rng.next_below(512);
      Block b{a.alloc(n), n, next_tag, false};
      next_tag = next_tag == 255 ? 1 : static_cast<unsigned char>(next_tag + 1);
      fill(b);
      bump_live.push_back(b);
    } else if (op < 60 && !bump_live.empty()) {
      // Recycle — usually the top (LIFO), sometimes mid-stack. Either way
      // the block is dead to the model from here on.
      size_t i = rng.next_below(4) != 0
                     ? bump_live.size() - 1
                     : rng.next_below(bump_live.size());
      check(bump_live[i]);
      a.recycle(bump_live[i].p, bump_live[i].n);
      bump_live.erase(bump_live.begin() + static_cast<ptrdiff_t>(i));
    } else if (op < 75) {
      size_t n = 1 + rng.next_below(2048);
      Block b{a.grab(n), Arena::pooled_size(n), next_tag, true};
      next_tag = next_tag == 255 ? 1 : static_cast<unsigned char>(next_tag + 1);
      fill(b);
      pool_live.push_back(b);
    } else if (op < 90 && !pool_live.empty()) {
      size_t i = rng.next_below(pool_live.size());
      check(pool_live[i]);
      a.release(pool_live[i].p, pool_live[i].n);
      pool_live.erase(pool_live.begin() + static_cast<ptrdiff_t>(i));
    } else if (op < 92) {
      // Epoch boundary: every bump block dies, pool blocks survive.
      for (const Block& b : bump_live) check(b);
      bump_live.clear();
      a.rearm();
      EXPECT_EQ(a.epoch_heap_allocs(), 0u);
      EXPECT_EQ(a.stats().bytes_in_use, 0u);
      for (const Block& b : pool_live) check(b);
    } else {
      // Spot-check everything still live.
      for (const Block& b : bump_live) check(b);
      for (const Block& b : pool_live) check(b);
    }
  }
  for (const Block& b : bump_live) check(b);
  for (const Block& b : pool_live) check(b);
}

}  // namespace
}  // namespace mutls
