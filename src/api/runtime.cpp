#include "api/ctx.h"

#include "api/spec.h"

namespace mutls {

void Ctx::check_registered(uintptr_t a, size_t n) {
  // A cached positive lookup must not outlive the registration it proved:
  // any unregistration bumps the manager's epoch and flushes the cache.
  uint64_t epoch = rt_->manager().space_epoch();
  if (epoch != span_epoch_) {
    span_epoch_ = epoch;
    for (int i = 0; i < kSpanCache; ++i) {
      span_lo_[i] = 1;
      span_hi_[i] = 0;
    }
  }
  for (int i = 0; i < kSpanCache; ++i) {
    if (a >= span_lo_[i] && a + n <= span_hi_[i]) return;
  }
  int slot = span_next_;
  span_next_ = (span_next_ + 1) % kSpanCache;
  if (rt_->manager().address_space().lookup(a, n, &span_lo_[slot],
                                            &span_hi_[slot])) {
    return;
  }
  span_lo_[slot] = 1;
  span_hi_[slot] = 0;
  // Wild speculative access (paper IV-G1): roll back instead of faulting.
  td_->sbuf.doom("access outside the registered address space");
  throw SpecAbort{td_->sbuf.doom_reason()};
}

}  // namespace mutls
