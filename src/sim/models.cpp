#include "sim/models.h"

#include <algorithm>
#include <cmath>

namespace mutls::sim {

SimNode* build_chain(SimModel& m, int chunks, double work_per_chunk,
                     double read_words, double write_words) {
  SimNode* n = m.node();
  n->chain_chunks = chunks;
  n->chain_chunk_work = work_per_chunk;
  n->read_words = read_words;
  n->write_words = write_words;
  return n;
}

SimModel model_threex(double total_work_us, int chunks) {
  SimModel m;
  m.spec_work_factor = 1.0;  // the inner loop touches no shared memory
  SimNode* chain = build_chain(m, chunks, total_work_us / chunks, 0, 1);
  // Trajectory lengths vary mildly across the range: ~±20% chunk imbalance.
  for (int i = 0; i < chunks; ++i) {
    chain->chain_weights.push_back(
        0.8 + 0.4 * (((i * 2654435761u) >> 3) % 1000) / 1000.0);
  }
  m.phases.push_back(chain);
  return m;
}

SimModel model_mandelbrot(double total_work_us, int chunks, int pixels) {
  SimModel m;
  m.spec_work_factor = 1.02;  // one buffered store per pixel
  double words_per_chunk = static_cast<double>(pixels) / chunks / 2.0;
  SimNode* chain =
      build_chain(m, chunks, total_work_us / chunks, 0, words_per_chunk);
  // Row blocks near the set's interior run the full iteration budget while
  // exterior rows escape quickly: strong triangular imbalance.
  for (int i = 0; i < chunks; ++i) {
    double d = std::abs(i - chunks / 2.0) / (chunks / 2.0);
    chain->chain_weights.push_back(0.25 + 1.5 * (1.0 - d));
  }
  m.phases.push_back(chain);
  return m;
}

SimModel model_md(int particles, int steps, int chunks, double step_work_us) {
  SimModel m;
  m.spec_work_factor = 1.15;  // positions are read through the buffers
  double reads = 3.0 * particles;              // every position, each chunk
  double writes = 3.0 * particles / chunks;    // own force rows
  for (int s = 0; s < steps; ++s) {
    SimNode* phase = m.node();
    SimNode* chain =
        build_chain(m, chunks, step_work_us / chunks, reads, writes);
    phase->inline_nodes.push_back(chain);
    // Sequential integration on the critical path.
    SimNode* integrate = m.node();
    integrate->own_work = 0.02 * particles;
    phase->inline_nodes.push_back(integrate);
    m.phases.push_back(phase);
  }
  return m;
}

SimModel model_bh(int bodies, int steps, int chunks, double step_work_us,
                  double build_fraction) {
  SimModel m;
  m.spec_work_factor = 2.5;  // tree traversal is all buffered loads
  double tree_words = 12.0 * bodies / chunks;  // traversal footprint
  double writes = 3.0 * bodies / chunks;
  for (int s = 0; s < steps; ++s) {
    SimNode* phase = m.node();
    SimNode* build = m.node();
    build->own_work = step_work_us * build_fraction;
    phase->inline_nodes.push_back(build);
    SimNode* chain = build_chain(m, chunks,
                                 step_work_us * (1.0 - build_fraction) / chunks,
                                 tree_words, writes);
    phase->inline_nodes.push_back(chain);
    m.phases.push_back(phase);
  }
  return m;
}

namespace {

SimNode* fft_node(SimModel& m, double n, int level, int fork_levels,
                  double us_per_element_level) {
  SimNode* node = m.node();
  if (n < 32 && level >= fork_levels) {
    // Flatten the deep sequential tail into plain work to keep the model
    // compact: a full subtree of size s costs s*log2(s) element-levels.
    node->own_work = n * std::max(1.0, std::log2(n)) * us_per_element_level;
    return node;
  }
  node->own_work = n * us_per_element_level;  // the combine loop
  if (n >= 2) {
    SimNode* first =
        fft_node(m, n / 2, level + 1, fork_levels, us_per_element_level);
    SimNode* second =
        fft_node(m, n / 2, level + 1, fork_levels, us_per_element_level);
    if (level < fork_levels) {
      // Speculated subtree: its merged buffer covers its whole half.
      second->read_words = 2.0 * (n / 2);
      second->write_words = 3.0 * (n / 2);
      node->forks.push_back(second);
      node->inline_nodes.push_back(first);
    } else {
      node->inline_nodes.push_back(first);
      node->inline_nodes.push_back(second);
    }
  }
  return node;
}

struct MmBuilder {
  SimModel& m;
  int leaf;
  int fork_levels;
  double us_per_leaf_mul;

  // One multiply C += A*B of size n; `conflicting` marks accumulate-phase
  // regions that read blocks buffered in a speculative forker.
  SimNode* mult(int n, int level, bool conflicting) {
    SimNode* node = m.node();
    double nn = static_cast<double>(n) * n;
    if (n <= leaf) {
      node->own_work = nn * n * us_per_leaf_mul / leaf;
      node->read_words = 2 * nn;
      node->write_words = nn;
      node->conflict_under_spec = conflicting;
      return node;
    }
    int h = n / 2;
    for (int q = 0; q < 4; ++q) {
      SimNode* task = m.node();
      task->inline_nodes.push_back(mult(h, level + 1, conflicting));
      SimNode* acc = mult(h, level + 1, /*conflicting=*/true);
      task->inline_nodes.push_back(acc);
      task->read_words = 3.0 * h * h;
      task->write_words = 1.0 * h * h;
      task->conflict_under_spec = conflicting;
      if (level < fork_levels && q < 3) {
        node->forks.push_back(task);
      } else {
        node->inline_nodes.push_back(task);
      }
    }
    return node;
  }
};

SimNode* dfs_node(SimModel& m, int branch, int depth, int cutoff,
                  double leaf_us, double decay) {
  // Candidate-continuation chain: handle first candidate (descend), fork
  // the rest as a continuation.
  if (depth >= cutoff) {
    SimNode* leaf = m.node();
    leaf->own_work = leaf_us;
    leaf->write_words = 1;
    return leaf;
  }
  int b = std::max(1, branch - depth);
  SimNode* next = nullptr;
  for (int k = b - 1; k >= 0; --k) {
    SimNode* cand = m.node();
    cand->write_words = 1;  // its result slot
    cand->read_words = 1;
    cand->inline_nodes.push_back(
        dfs_node(m, branch, depth + 1, cutoff, leaf_us * decay, decay));
    if (next) cand->forks.push_back(next);
    next = cand;
  }
  return next;
}

}  // namespace

SimModel model_fft(int log2_n, int fork_levels, double us_per_element_level) {
  SimModel m;
  m.spec_work_factor = 4.5;  // every element moves through the buffers
  m.phases.push_back(fft_node(m, std::ldexp(1.0, log2_n), 0, fork_levels,
                              us_per_element_level));
  return m;
}

SimModel model_matmult(int n, int leaf, int fork_levels,
                       double us_per_leaf_mul) {
  SimModel m;
  m.spec_work_factor = 2.8;
  MmBuilder b{m, leaf, fork_levels, us_per_leaf_mul};
  m.phases.push_back(b.mult(n, 0, false));
  return m;
}

SimModel model_nqueen(int n, int cutoff, double leaf_us) {
  SimModel m;
  m.spec_work_factor = 6.0;  // board state is buffered in the paper's nqueen
  m.phases.push_back(dfs_node(m, n, 0, cutoff, leaf_us, 0.9));
  return m;
}

SimModel model_tsp(int n, int cutoff, double leaf_us) {
  SimModel m;
  m.spec_work_factor = 6.5;
  m.phases.push_back(dfs_node(m, n - 1, 0, cutoff, leaf_us, 0.85));
  return m;
}

SimModel model_http_serving(int batches, int chunks, int requests_per_chunk,
                            double us_per_request) {
  SimModel m;
  // Every index probe and outcome store is buffered; parse/route are plain
  // reads of the request bytes.
  m.spec_work_factor = 1.3;
  // Per request: ~4 probed words on the lookup side, ~2 written (hit count
  // or inserted entry, plus the outcome word).
  double reads = 4.0 * requests_per_chunk;
  double writes = 2.0 * requests_per_chunk;
  for (int b = 0; b < batches; ++b) {
    SimNode* chain =
        build_chain(m, chunks, us_per_request * requests_per_chunk, reads,
                    writes);
    m.phases.push_back(chain);
  }
  return m;
}

const std::vector<NamedModel>& paper_models() {
  static const std::vector<NamedModel> kModels = {
      {"3x+1", [] { return model_threex(); }, true},
      {"mandelbrot", [] { return model_mandelbrot(); }, true},
      {"md", [] { return model_md(); }, true},
      {"fft", [] { return model_fft(); }, false},
      {"matmult", [] { return model_matmult(); }, false},
      {"nqueen", [] { return model_nqueen(); }, false},
      {"tsp", [] { return model_tsp(); }, false},
      {"bh", [] { return model_bh(); }, false},
  };
  return kModels;
}

}  // namespace mutls::sim
