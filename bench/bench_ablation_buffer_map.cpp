// Ablation — the GlobalBuffer static hash map vs std::unordered_map
// (design claim of paper section IV-G2: "Normal hash maps frequently
// increase in size as data is inserted, causing dynamic memory allocation
// and deallocation. Our design is instead to use static memory.").
//
// Measures buffered store+load streams and the validate/commit/finalize
// cycle for thread footprints of various sizes.
#include <benchmark/benchmark.h>

#include <unordered_map>
#include <vector>

#include "runtime/global_buffer.h"

namespace {

using namespace mutls;

std::vector<uint64_t>& arena() {
  static std::vector<uint64_t> a(1 << 20, 1);
  return a;
}

// Word addresses with a stride pattern similar to block-based workloads.
std::vector<uintptr_t> make_addresses(size_t n) {
  std::vector<uintptr_t> addrs;
  addrs.reserve(n);
  uint64_t x = 88172645463325252ull;
  for (size_t i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    addrs.push_back(
        reinterpret_cast<uintptr_t>(&arena()[x % arena().size()]));
  }
  return addrs;
}

void BM_GlobalBufferStoreLoad(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto addrs = make_addresses(n);
  GlobalBuffer buf;
  buf.init(18, 65536);
  for (auto _ : state) {
    for (uintptr_t a : addrs) {
      uint64_t v = a;
      buf.store_bytes(a, &v, 8);
    }
    uint64_t out = 0;
    for (uintptr_t a : addrs) {
      buf.load_bytes(a, &out, 8);
      benchmark::DoNotOptimize(out);
    }
    buf.reset();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(2 * n));
}
BENCHMARK(BM_GlobalBufferStoreLoad)->Arg(64)->Arg(1024)->Arg(16384);

void BM_UnorderedMapStoreLoad(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto addrs = make_addresses(n);
  for (auto _ : state) {
    std::unordered_map<uintptr_t, uint64_t> map;
    for (uintptr_t a : addrs) map[a] = a;
    uint64_t out = 0;
    for (uintptr_t a : addrs) {
      auto it = map.find(a);
      if (it != map.end()) out = it->second;
      benchmark::DoNotOptimize(out);
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(2 * n));
}
BENCHMARK(BM_UnorderedMapStoreLoad)->Arg(64)->Arg(1024)->Arg(16384);

void BM_ValidateCommitCycle(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto addrs = make_addresses(n);
  GlobalBuffer buf;
  buf.init(18, 65536);
  for (auto _ : state) {
    uint64_t v = 7;
    for (uintptr_t a : addrs) {
      buf.load_bytes(a, &v, 8);
      buf.store_bytes(a, &v, 8);
    }
    bool ok = buf.validate_against_memory();
    benchmark::DoNotOptimize(ok);
    buf.commit_to_memory();
    buf.reset();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_ValidateCommitCycle)->Arg(64)->Arg(1024)->Arg(16384);

// The offsets stack is what keeps small-footprint threads fast even with a
// large static map: reset cost must scale with entries used, not capacity.
void BM_ResetSmallFootprintLargeMap(benchmark::State& state) {
  GlobalBuffer buf;
  buf.init(20, 65536);  // 1M-slot map
  auto addrs = make_addresses(16);
  for (auto _ : state) {
    uint64_t v = 1;
    for (uintptr_t a : addrs) buf.store_bytes(a, &v, 8);
    buf.reset();
  }
}
BENCHMARK(BM_ResetSmallFootprintLargeMap);

}  // namespace

BENCHMARK_MAIN();
