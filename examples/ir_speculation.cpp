// The universality path: a program written in the language-neutral IR,
// annotated with the paper's fork/join/barrier builtins, run through
//
//   1. the speculator pass (compile-time transformation: speculative
//      clone, proxy/stub, point blocks, tables), printed for inspection;
//   2. the interpreter with integrated TLS semantics, executing the
//      original annotated program speculatively and checking the result.
//
// Run: ./examples/ir_speculation [switch|direct-threaded|compiled-region]
// (the optional argument picks the execution-engine dispatch tier; the
// default is the direct-threaded dispatcher, `switch` is the oracle loop)
#include <cstdio>
#include <cstring>

#include "interp/interp.h"
#include "speculator/pass.h"

namespace {

const char* kProgram = R"(
; Sum the squares of 0..n-1 into @acc while a speculative thread
; runs ahead to fill @flags -- the paper's Figure 1 shape.
global @acc : i64[1]
global @flags : i64[4]
func @work(%n: i64) : i64 {
entry:
  %zero = const i64 0
  %one = const i64 1
  %acc = globaladdr @acc
  %flags = globaladdr @flags
  mutls.fork 0, mixed
  br loop
loop:
  %i = phi i64 [%zero, entry], [%inc, loop]
  %s = phi i64 [%zero, entry], [%s2, loop]
  %sq = mul %i, %i
  %s2 = add %s, %sq
  %inc = add %i, %one
  %c = icmp slt %inc, %n
  condbr %c, loop, joinblk
joinblk:
  store %s2, %acc
  mutls.join 0
  ; --- speculated continuation: mark all four flags ---
  %f0 = gep %flags, %zero, 8
  store %one, %f0
  %f1 = gep %flags, %one, 8
  store %one, %f1
  mutls.barrier 0
  %r = load i64, %acc
  ret %r
}
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace mutls;

  exec::DispatchMode mode = exec::DispatchMode::kDirectThreaded;
  if (argc > 1) {
    if (!std::strcmp(argv[1], "switch")) {
      mode = exec::DispatchMode::kSwitch;
    } else if (!std::strcmp(argv[1], "direct-threaded")) {
      mode = exec::DispatchMode::kDirectThreaded;
    } else if (!std::strcmp(argv[1], "compiled-region")) {
      mode = exec::DispatchMode::kCompiledRegion;
    } else {
      std::printf("unknown dispatch mode '%s'\n", argv[1]);
      return 1;
    }
  }

  ir::Module m = ir::parse_module(kProgram);
  auto errs = ir::verify_module(m);
  if (!errs.empty()) {
    std::printf("verification failed: %s\n", errs[0].c_str());
    return 1;
  }

  // --- the compile-time artifact ---
  speculator::PassResult pr = speculator::run_speculator_pass(m);
  std::printf("speculator pass generated %zu functions:\n",
              pr.module.functions.size());
  for (const ir::Function& f : pr.module.functions) {
    std::printf("  @%s (%zu blocks)\n", f.name.c_str(), f.blocks.size());
  }
  const speculator::FunctionReport& rep = pr.reports[0];
  std::printf("point blocks in @%s: %zu, local slots: %d\n",
              rep.original.c_str(), rep.points.size(), rep.live_slots);
  std::printf("\n--- transformed non-speculative @work ---\n%s\n",
              ir::print_function(*pr.module.find_function("work")).c_str());

  // --- the runtime behaviour ---
  interp::Interpreter::Options o;
  o.num_cpus = 2;
  o.dispatch_mode = mode;
  interp::Interpreter it(ir::parse_module(kProgram), o);
  std::printf("dispatch mode: %s\n", exec::dispatch_mode_name(mode));
  uint64_t r = it.call("work", {100});
  auto* flags = static_cast<int64_t*>(it.global_addr("flags"));
  RunStats rs = it.collect_stats();
  std::printf("work(100) = %llu (expect 328350)\n",
              static_cast<unsigned long long>(r));
  std::printf("flags: %lld %lld (expect 1 1)\n",
              static_cast<long long>(flags[0]),
              static_cast<long long>(flags[1]));
  std::printf("speculations: %llu, commits: %llu, rollbacks: %llu\n",
              static_cast<unsigned long long>(rs.speculative_threads),
              static_cast<unsigned long long>(rs.speculative.commits),
              static_cast<unsigned long long>(rs.speculative.rollbacks));
  for (const exec::RegionHeat& h : it.region_heat()) {
    std::printf("region @%s:%s heat: %llu back edges\n", h.function.c_str(),
                h.header.c_str(), static_cast<unsigned long long>(h.count));
  }
  return r == 328350 && flags[0] == 1 && flags[1] == 1 ? 0 : 1;
}
