// Static-hash speculative buffering backend (paper section IV-G2), the
// kStaticHash backend of the SpecBuffer API ("runtime/spec_buffer.h").
//
// Each speculative thread owns one buffer holding a read-set and a
// write-set over main-memory words. Both sets use the paper's *static* map:
//
//   buffer    — N words of data
//   addresses — N word-aligned keys, 0 = empty slot
//   offsets   — stack of occupied slot indices, so validation / commit /
//               finalization of threads touching little data stay fast
//   mark      — N words of per-byte dirty masks (write-set only)
//
// The hash is the low bits of the word address, one slot per key, no
// probing: a slot collision diverts the access to a small bounded overflow
// map ("temporary buffer" in the paper). When the overflow map fills, the
// thread is doomed: it stops at its next check point / barrier and reports
// ROLLBACK at synchronization.
//
// This class provides only the word-granular slot primitives (WordRef in
// "runtime/memory.h"): find/insert into either set, handle-indexed access
// for MRU-cached slots, and the set walks. Everything with policy in it —
// the byte-level load/store splitting, the speculative view composition,
// the MRU word-view cache state machine, validation, commit and the
// tree-form merge (including read-adoption policy) — lives once in
// SpecBuffer, generic over the backend primitives. Only static-table slots
// hand out cacheable handles (their storage never moves); overflow
// residents always take the probing path.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/buffer_stats.h"
#include "runtime/memory.h"
#include "support/check.h"

namespace mutls {

// One static hash map (either the read-set or the write-set).
class BufferMap {
 public:
  // Static-table index of a resolved slot, or kNoSlot for bounded-overflow
  // residents (whose storage moves when the overflow vector grows and must
  // therefore never be cached).
  static constexpr uint32_t kNoSlot = 0xffffffffu;

  struct Slot {
    uint64_t* data = nullptr;
    uint64_t* mark = nullptr;  // null when the map carries no marks
    uint32_t table_index = kNoSlot;
  };

  enum class Find { kFound, kInserted, kFull };

  BufferMap() = default;

  // `log2_entries` fixes the static size N = 2^log2_entries;
  // `overflow_cap` bounds the temporary buffer; `with_marks` is true for
  // the write-set. `stats`, when given, receives probe counters (the
  // overflow scan is this map's probe sequence).
  void init(int log2_entries, size_t overflow_cap, bool with_marks,
            SpecBufferStats* stats = nullptr);

  bool initialized() const { return addresses_ != nullptr; }

  // Finds the slot for `word_addr`, inserting (zeroed) if absent.
  Find find_or_insert(uintptr_t word_addr, Slot& out);

  // Finds without inserting; returns false if absent.
  bool find(uintptr_t word_addr, Slot& out);

  // Visits every occupied entry as fn(word_addr, data&, mark&).
  // `mark` references a dummy full mark when the map carries no marks.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (uint32_t idx : offsets_) {
      fn(addresses_[idx], buffer_[idx], marks_ ? marks_[idx] : dummy_mark_);
    }
    for (OverflowEntry& e : overflow_) {
      fn(e.word_addr, e.data, e.mark);
    }
  }

  // Direct static-table access for MRU-cached slots (index from
  // Slot::table_index; stable for the life of the map).
  uint64_t& data_at(uint32_t idx) { return buffer_[idx]; }
  uint64_t& mark_at(uint32_t idx) { return marks_[idx]; }

  size_t entry_count() const { return offsets_.size() + overflow_.size(); }
  size_t overflow_count() const { return overflow_.size(); }
  bool overflow_pressure() const { return !overflow_.empty(); }

  // Empties the map in O(entries), not O(N).
  void clear();

 private:
  struct OverflowEntry {
    uintptr_t word_addr;
    uint64_t data;
    uint64_t mark;
  };

  size_t slot_index(uintptr_t word_addr) const {
    return (word_addr >> 3) & mask_;
  }

  std::unique_ptr<uint64_t[]> buffer_;
  std::unique_ptr<uintptr_t[]> addresses_;
  std::unique_ptr<uint64_t[]> marks_;
  std::vector<uint32_t> offsets_;
  std::vector<OverflowEntry> overflow_;
  size_t mask_ = 0;
  size_t overflow_cap_ = 0;
  uint64_t dummy_mark_ = kFullMark;
  SpecBufferStats* stats_ = nullptr;
};

class GlobalBuffer {
 public:
  GlobalBuffer() = default;
  // After init the maps hold a pointer to the owning SpecBuffer's stats,
  // so a copied/moved buffer would count into the original. Never needed.
  GlobalBuffer(const GlobalBuffer&) = delete;
  GlobalBuffer& operator=(const GlobalBuffer&) = delete;

  // `stats` is the owning SpecBuffer's counter block (shared by whichever
  // backend is active, so counters survive an adaptive flip).
  void init(int log2_entries, size_t overflow_cap, SpecBufferStats* stats);

  // --- word-granular slot primitives (driven by SpecBuffer) ---

  // Lookups without insertion; .data is null when absent.
  WordRef find_read(uintptr_t word_addr);
  WordRef find_write(uintptr_t word_addr);

  // Lookup-or-insert. `inserted` reports a first touch (the caller loads
  // the main-memory word / applies first-value-wins). On overflow
  // exhaustion the returned .data is null and this buffer has doomed
  // itself — with a merge-specific reason when `merging`, so a joiner's
  // rollback points at the adopted child commit rather than its own
  // access path.
  WordRef insert_read(uintptr_t word_addr, bool& inserted, bool merging);
  WordRef insert_write(uintptr_t word_addr, bool merging);

  // Handle-indexed access for MRU-cached slots (handle = table index + 1,
  // as handed out in WordRef::handle).
  uint64_t read_data(uint32_t handle) { return read_set_.data_at(handle - 1); }
  uint64_t& write_data(uint32_t handle) {
    return write_set_.data_at(handle - 1);
  }
  uint64_t& write_mark(uint32_t handle) {
    return write_set_.mark_at(handle - 1);
  }

  // Visits every read-set entry as fn(word_addr, data).
  template <typename Fn>
  void for_each_read(Fn&& fn) {
    read_set_.for_each(
        [&](uintptr_t addr, uint64_t& data, uint64_t&) { fn(addr, data); });
  }

  // Visits every write-set entry as fn(word_addr, data, mark).
  template <typename Fn>
  void for_each_write(Fn&& fn) {
    write_set_.for_each([&](uintptr_t addr, uint64_t& data, uint64_t& mark) {
      fn(addr, data, mark);
    });
  }

  // Discards all buffered state; clears doom.
  void reset();

  bool doomed() const { return doomed_; }
  const char* doom_reason() const { return doom_reason_; }
  void doom(const char* reason) {
    doomed_ = true;
    doom_reason_ = reason;
  }

  // Capacity pressure: accesses are landing in the bounded overflow map.
  bool pressure() const {
    return read_set_.overflow_pressure() || write_set_.overflow_pressure();
  }

  size_t read_entries() const { return read_set_.entry_count(); }
  size_t write_entries() const { return write_set_.entry_count(); }

 private:
  static WordRef as_ref(const BufferMap::Slot& s) {
    return WordRef{s.data, s.mark,
                   s.table_index != BufferMap::kNoSlot ? s.table_index + 1
                                                       : 0};
  }

  BufferMap read_set_;
  BufferMap write_set_;
  bool doomed_ = false;
  const char* doom_reason_ = "";
  SpecBufferStats* stats_ = nullptr;
};

}  // namespace mutls
