// Unit tests of the execution engine (src/exec/): decoder layout and
// specialization, fork-point tables vs the liveness analysis, region
// discovery, the profiler's exact counts, and the compiled-region registry
// and ABI (including the doomed-speculation path through region helpers).
#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "exec/dispatch.h"
#include "exec/native_kernels.h"
#include "exec/profile.h"
#include "interp/interp.h"

namespace mutls::exec {
namespace {

using interp::Interpreter;
using ir::parse_module;

Interpreter::Options opts(DispatchMode mode, int cpus = 2) {
  Interpreter::Options o;
  o.num_cpus = cpus;
  o.buffer_log2 = 10;
  o.dispatch_mode = mode;
  return o;
}

// --- decoder ------------------------------------------------------------

TEST(ExecDecode, FlatLayoutMatchesBlockCoordinates) {
  ir::Module m = parse_module(R"(
func @f(%n: i64) : i64 {
entry:
  %zero = const i64 0
  br loop
loop:
  %i = phi i64 [%zero, entry], [%inc, loop]
  %one = const i64 1
  %inc = add %i, %one
  %c = icmp slt %inc, %n
  condbr %c, loop, done
done:
  ret %inc
}
)");
  DecodedModule dm(m, [](const std::string&) -> void* { return nullptr; });
  const ir::Function& f = m.functions[0];
  const DecodedFunction& df = dm.decoded(f);
  // Every block ends in a terminator: no trap padding, 1:1 layout.
  size_t total = 0;
  for (const ir::Block& b : f.blocks) total += b.instrs.size();
  EXPECT_EQ(df.code.size(), total);
  for (uint32_t b = 0; b < f.blocks.size(); ++b) {
    for (uint32_t i = 0; i < f.blocks[b].instrs.size(); ++i) {
      const DecodedInstr& d = df.code[df.flat_ip(b, i)];
      EXPECT_EQ(d.block, b);
      EXPECT_EQ(d.index, i);
    }
  }
}

TEST(ExecDecode, RegionTableFindsLoopHeaders) {
  ir::Module m = parse_module(R"(
func @f(%n: i64) : i64 {
entry:
  %zero = const i64 0
  %one = const i64 1
  br outer
outer:
  %i = phi i64 [%zero, entry], [%i2, latch]
  br inner
inner:
  %j = phi i64 [%zero, outer], [%j2, inner]
  %j2 = add %j, %one
  %cj = icmp slt %j2, %n
  condbr %cj, inner, latch
latch:
  %i2 = add %i, %one
  %ci = icmp slt %i2, %n
  condbr %ci, outer, done
done:
  ret %i2
}
)");
  const ir::Function& f = m.functions[0];
  std::vector<uint32_t> headers = ir::loop_headers(f);
  ASSERT_EQ(headers.size(), 2u);
  EXPECT_EQ(headers[0], f.block_index("outer"));
  EXPECT_EQ(headers[1], f.block_index("inner"));

  DecodedModule dm(m, [](const std::string&) -> void* { return nullptr; });
  const DecodedFunction& df = dm.decoded(f);
  ASSERT_EQ(df.regions.size(), 2u);
  int outer = df.region_of(f.block_index("outer"));
  int inner = df.region_of(f.block_index("inner"));
  ASSERT_GE(outer, 0);
  ASSERT_GE(inner, 0);
  EXPECT_EQ(df.regions[outer]->label, "outer");
  EXPECT_EQ(df.regions[outer]->last_latch, f.block_index("latch"));
  EXPECT_EQ(df.regions[inner]->last_latch, f.block_index("inner"));
}

TEST(ExecDecode, ForkPointTableMatchesLivenessAnalysis) {
  ir::Module m = parse_module(kernels::fill_ir());
  const ir::Function& f = *m.find_function("fill");
  DecodedModule dm(m, [](const std::string&) -> void* { return nullptr; });
  const DecodedFunction& df = dm.decoded(f);
  ASSERT_EQ(df.fork_points.size(), 1u);
  const ForkPointInfo& fp = df.fork_points.at(0);
  // The join position is just after `mutls.join 0` in forkblk.
  uint32_t fb = f.block_index("forkblk");
  EXPECT_EQ(fp.join_block, fb);
  EXPECT_EQ(fp.join_instr, 2u);
  // The validation set is exactly the liveness analysis at that position.
  std::vector<std::vector<bool>> live = ir::compute_live_in(f);
  std::vector<bool> li = ir::live_at(f, live, fb, 2);
  std::vector<ir::ValueId> want;
  for (ir::ValueId v = 1; v < f.value_count; ++v) {
    if (li[v]) want.push_back(v);
  }
  EXPECT_EQ(fp.validate_ids, want);
}

// Decode-time specialization: narrow-type wrapping, shifts and float
// conversions produce exact values through the threaded dispatcher.
TEST(ExecDecode, SpecializedHandlersComputeExactValues) {
  Interpreter it(parse_module(R"(
func @narrow(%a: i64, %b: i64) : i64 {
entry:
  %a8 = trunc %a to i8
  %b8 = trunc %b to i8
  %s = add %a8, %b8
  %w = zext %s to i64
  ret %w
}
func @shr(%a: i64) : i64 {
entry:
  %a32 = trunc %a to i32
  %k = const i64 4
  %l = lshr %a32, %k
  %w = zext %l to i64
  ret %w
}
func @fp(%a: i64) : i64 {
entry:
  %d = sitofp %a to f64
  %h = const f64 0.5
  %m = fmul %d, %h
  %r = fptosi %m to i64
  ret %r
}
)"),
                 opts(DispatchMode::kDirectThreaded, 1));
  // 200 + 100 wraps to 44 in i8.
  EXPECT_EQ(it.call("narrow", {200, 100}), 44u);
  // The i32 truncation masks the high word before the shift.
  EXPECT_EQ(it.call("shr", {0xffff0000ffff0000ull}), 0x0ffff000ull);
  EXPECT_EQ(it.call("fp", {90}), 45u);
}

// --- profiler -----------------------------------------------------------

TEST(ExecProfile, HeatCountsBackEdgesExactly) {
  const char* kSum = R"(
func @sum(%n: i64) : i64 {
entry:
  %zero = const i64 0
  %one = const i64 1
  br loop
loop:
  %i = phi i64 [%zero, entry], [%inc, loop]
  %s = phi i64 [%zero, entry], [%s2, loop]
  %s2 = add %s, %i
  %inc = add %i, %one
  %c = icmp slt %inc, %n
  condbr %c, loop, done
done:
  ret %s2
}
)";
  for (DispatchMode mode :
       {DispatchMode::kSwitch, DispatchMode::kDirectThreaded,
        DispatchMode::kCompiledRegion}) {
    SCOPED_TRACE(dispatch_mode_name(mode));
    Interpreter it(parse_module(kSum), opts(mode, 1));
    EXPECT_EQ(it.call("sum", {100}), 4950u);
    std::vector<RegionHeat> heat = it.region_heat();
    ASSERT_EQ(heat.size(), 1u);
    EXPECT_EQ(heat[0].function, "sum");
    EXPECT_EQ(heat[0].header, "loop");
    // 100 loop iterations take the back edge 99 times.
    EXPECT_EQ(heat[0].count, 99u);
    RunStats rs = it.collect_stats();
    EXPECT_EQ(rs.critical.back_edges + rs.speculative.back_edges, 99u);
    it.reset_region_heat();
    EXPECT_EQ(it.region_heat()[0].count, 0u);
  }
}

// --- compiled-region registry and ABI -----------------------------------

std::atomic<uint64_t> g_body_calls{0};

RegionResult counting_loop_body(RegionCtx& ctx) {
  g_body_calls.fetch_add(1, std::memory_order_relaxed);
  // @sum loop of HeatCountsBackEdgesExactly: ids resolved by fixed parser
  // assignment (n=1, zero=2, one=3, i=4, s=5, s2=6, inc=7, c=8).
  uint64_t i, s;
  if (ctx.entry_block == 0) {
    i = ctx.regs[2];
    s = ctx.regs[2];
  } else {
    i = ctx.regs[7];
    s = ctx.regs[6];
  }
  const uint64_t one = ctx.regs[3];
  const int64_t n = static_cast<int64_t>(ctx.regs[1]);
  uint64_t iters = 0;
  for (;;) {
    uint64_t s2 = s + i;
    uint64_t inc = i + one;
    if (static_cast<int64_t>(inc) >= n) {
      ctx.regs[4] = i;
      ctx.regs[5] = s;
      ctx.regs[6] = s2;
      ctx.regs[7] = inc;
      ctx.regs[8] = 0;
      region_credit(ctx, iters);
      return RegionResult::exit(2, 0, 1);
    }
    ++iters;
    if (region_poll(ctx)) {
      ctx.regs[6] = s2;
      ctx.regs[7] = inc;
      ctx.regs[8] = 1;
      ctx.regs[4] = inc;
      ctx.regs[5] = s2;
      region_credit(ctx, iters);
      return RegionResult::stop(1, 2);
    }
    i = inc;
    s = s2;
  }
}

const char* kSumForRegistry = R"(
func @sum(%n: i64) : i64 {
entry:
  %zero = const i64 0
  %one = const i64 1
  br loop
loop:
  %i = phi i64 [%zero, entry], [%inc, loop]
  %s = phi i64 [%zero, entry], [%s2, loop]
  %s2 = add %s, %i
  %inc = add %i, %one
  %c = icmp slt %inc, %n
  condbr %c, loop, done
done:
  ret %s2
}
)";

TEST(ExecCompiled, RegistryRejectsUnknownTargets) {
  Interpreter it(parse_module(kSumForRegistry),
                 opts(DispatchMode::kCompiledRegion, 1));
  EXPECT_FALSE(
      it.register_compiled_region("nosuch", "loop", &counting_loop_body));
  EXPECT_FALSE(
      it.register_compiled_region("sum", "entry", &counting_loop_body));
  EXPECT_TRUE(
      it.register_compiled_region("sum", "loop", &counting_loop_body));
}

TEST(ExecCompiled, BodyRunsOnlyInCompiledMode) {
  for (DispatchMode mode :
       {DispatchMode::kDirectThreaded, DispatchMode::kCompiledRegion}) {
    SCOPED_TRACE(dispatch_mode_name(mode));
    Interpreter it(parse_module(kSumForRegistry), opts(mode, 1));
    ASSERT_TRUE(
        it.register_compiled_region("sum", "loop", &counting_loop_body));
    g_body_calls.store(0);
    EXPECT_EQ(it.call("sum", {100}), 4950u);
    if (mode == DispatchMode::kCompiledRegion) {
      EXPECT_GT(g_body_calls.load(), 0u);
      // The body credits the same back-edge count interpretation would.
      EXPECT_EQ(it.region_heat()[0].count, 99u);
    } else {
      EXPECT_EQ(g_body_calls.load(), 0u);
    }
  }
}

TEST(ExecCompiled, RegistryRejectsRegionsWithIntrinsics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Interpreter it(parse_module(R"(
func @f(%n: i64) : i64 {
entry:
  %zero = const i64 0
  %one = const i64 1
  br loop
loop:
  %i = phi i64 [%zero, entry], [%inc, loop]
  mutls.fork 0, mixed
  mutls.join 0
  %inc = add %i, %one
  %c = icmp slt %inc, %n
  condbr %c, loop, done
done:
  ret %inc
}
)"),
                 opts(DispatchMode::kCompiledRegion, 1));
  EXPECT_DEATH(it.register_compiled_region("f", "loop", &counting_loop_body),
               "cannot be compiled");
}

// The native fill kernel drives the speculative side of the ABI: the
// child executes the compiled rloop through its SpecBuffer and stops at a
// region_poll check point (or its barrier), and the results match the
// sequential oracle whatever the interleaving.
TEST(ExecCompiled, SpeculativeRegionMatchesOracle) {
  for (int cpus : {1, 2, 4}) {
    SCOPED_TRACE(cpus);
    Interpreter it(parse_module(kernels::fill_ir()),
                   opts(DispatchMode::kCompiledRegion, cpus));
    int n = kernels::register_native_kernels(
        [&](const std::string& f, const std::string& h, CompiledFn b) {
          return it.register_compiled_region(f, h, b);
        });
    EXPECT_EQ(n, 2);  // wloop + rloop (fib is not in this module)
    EXPECT_EQ(it.call("fill", {2000}), kernels::fill_expected(2000));
  }
}

// A speculative child that stores through a wild pointer dooms itself via
// the shared memory path; the run still completes with the sequential
// result in every dispatch mode. The wild address is taken only when the
// speculative load observed the pre-store value, so the non-speculative
// re-execution after rollback (which sees 5) stores to the real global.
TEST(ExecCompiled, WildSpeculativeStoreDoomsAndRecovers) {
  const char* kWild = R"(
global @res : i64[1]
func @work() : i64 {
entry:
  %r = globaladdr @res
  mutls.fork 0, mixed
  %five = const i64 5
  store %five, %r
  mutls.join 0
  %wild = const i64 4096
  %wp = inttoptr %wild to ptr
  %v = load i64, %r
  %k = const i64 5
  %ok = icmp eq %v, %k
  %addr = select %ok, %r, %wp
  store %v, %addr
  mutls.barrier 0
  %out = load i64, %r
  ret %out
}
)";
  for (DispatchMode mode :
       {DispatchMode::kSwitch, DispatchMode::kDirectThreaded,
        DispatchMode::kCompiledRegion}) {
    SCOPED_TRACE(dispatch_mode_name(mode));
    Interpreter it(parse_module(kWild), opts(mode, 2));
    EXPECT_EQ(it.call("work"), 5u);
  }
}

}  // namespace
}  // namespace mutls::exec
