// Speculative request-serving driver: the tentpole of the serving
// subsystem. serve_batch() pushes one batch of wire-format requests
// through a mutls::par::pipeline of the three stages a cache front-end
// runs per request — parse (zero-copy head parse), route/lookup (route
// match + GET index probe), index update (PUT insert/evict) — speculating
// ahead across request chunks with the in-order chain. The cache index is
// the shared state: concurrent handlers conflict through the buffer map
// exactly where a real cache's handlers would contend, so key skew and
// PUT ratio translate directly into doom/rollback rate.
//
// Correctness story: per-request scratch is per-virtual-CPU-rank (a rank
// is owned by exactly one live thread, and an item's three stages run
// consecutively on one thread), per-item outcomes land in registered
// memory through the routed view (so rollback discards them), and the
// sequential reference (serve_batch_seq) shares the classification helper
// and the CacheIndex probe template with the speculative path — identical
// decisions by construction, which makes seq/spec checksum equality of
// the index a meaningful invariant.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "mutls/mutls.h"
#include "serving/cache_index.h"
#include "serving/http_parse.h"
#include "serving/request_gen.h"
#include "serving/route.h"
#include "support/latency_histogram.h"

namespace mutls::serving {

// Final disposition of one request (low 3 bits of its outcome word).
enum class Outcome : uint8_t {
  kMalformed = 1,  // parse rejected (incomplete or malformed)
  kRouteMiss = 2,  // parsed, but no route / bad key / unsupported method
  kHealth = 3,     // GET /healthz
  kGet = 4,        // routed cache lookup
  kPut = 5,        // routed cache insert
};
inline constexpr uint64_t kOutcomeKindMask = 7;
inline constexpr uint64_t kOutcomeHitBit = 8;    // kGet only
inline constexpr uint64_t kOutcomeEvictBit = 16;  // kPut only

struct BatchCounters {
  uint64_t requests = 0;
  uint64_t malformed = 0;
  uint64_t route_misses = 0;
  uint64_t health = 0;
  uint64_t get_hits = 0;
  uint64_t get_misses = 0;
  uint64_t puts = 0;
  uint64_t evictions = 0;

  BatchCounters& operator+=(const BatchCounters& o) {
    requests += o.requests;
    malformed += o.malformed;
    route_misses += o.route_misses;
    health += o.health;
    get_hits += o.get_hits;
    get_misses += o.get_misses;
    puts += o.puts;
    evictions += o.evictions;
    return *this;
  }
  bool operator==(const BatchCounters&) const = default;
};

struct ServeOpts {
  // Pipeline chunking and fork model, passed through to par::pipeline.
  int chunks = 0;
  ForkModel model = ForkModel::kMixed;
  // Fork-to-settle latency sampling (see par::LoopOpts): the scratch array
  // needs capacity for the resolved chunk count.
  LatencyHistogram* fork_latency = nullptr;
  uint64_t* fork_ns_scratch = nullptr;
};

class Server {
 public:
  // `max_batch` bounds batch.count() for this server's lifetime: the
  // outcome array is registered once at that size, so serving allocates
  // nothing per batch.
  Server(Runtime& rt, CacheIndex& index, size_t max_batch);

  // Serves the batch speculatively; `epoch` is the freshness stamp PUTs
  // write. Must be called from the non-speculative context of rt.run.
  BatchCounters serve_batch(Ctx& ctx, const RequestBatch& batch,
                            uint64_t epoch, const ServeOpts& opts);

  // Sequential reference: identical parse/route/index decisions against a
  // sequential-only CacheIndex. Static because it must not touch the
  // runtime — pair it with CacheIndex's unregistered constructor.
  static BatchCounters serve_batch_seq(CacheIndex& index,
                                       const RequestBatch& batch,
                                       uint64_t epoch);

  const RouteTable& routes() const { return routes_; }
  int items_route() const { return items_route_; }

 private:
  // Per-rank, per-item scratch carried between an item's stages. Lives in
  // plain memory: a rank has exactly one live thread, and re-execution
  // after rollback happens on the re-executing thread only after the old
  // owner settled (the slot-reclaim edges order the accesses).
  struct Slot {
    ParsedRequest parsed;
    uint64_t key = 0;
    uint64_t size = 0;
    uint64_t out = 0;
  };

  // Pure classification shared by the speculative and sequential paths:
  // route match + key/Content-Length extraction from an already-parsed
  // request. Returns the outcome kind; fills key/size for kGet/kPut.
  static Outcome route_of(const RouteTable& routes, int items_route,
                          int health_route, const ParsedRequest& parsed,
                          uint64_t* key, uint64_t* size);

  void stage_parse(Ctx& c, int64_t i);
  void stage_route_lookup(Ctx& c, int64_t i);
  void stage_update(Ctx& c, int64_t i);

  static BatchCounters fold(const uint64_t* outcomes, size_t n);

  Runtime& rt_;
  CacheIndex& index_;
  RouteTable routes_;
  int items_route_;
  int health_route_;
  size_t max_batch_;
  std::vector<Slot> scratch_;        // indexed by ctx.rank()
  SharedArray<uint64_t> outcomes_;   // one routed word per request
  std::vector<par::PipelineStage> stages_;

  // Per-batch inputs, published to workers by the fork edges.
  const RequestBatch* batch_ = nullptr;
  uint64_t epoch_ = 0;
};

}  // namespace mutls::serving
