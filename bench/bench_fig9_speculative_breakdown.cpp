// Figure 9 — speculative path breakdown (wasted work / finalize / commit /
// validation / overflow / idle / fork / find CPU) for fft and matmult.
//
// Paper shape: for fft, validation+commit+finalize ~17% at few cores and
// shrinking, while idle grows to ~59% at 64 cores; matmult is the only
// benchmark with rollbacks (from 3 cores, peaking ~23% wasted work at 7),
// yet idle still dominates.
#include "bench/common.h"

namespace {

void header() {
  std::printf("%-11s %-6s %8s %8s %8s %8s %8s %8s %8s\n", "benchmark",
              "cpus", "work%", "wasted%", "valid%", "commit%", "final%",
              "idle%", "fork%");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mutls;
  using namespace mutls::bench;
  HarnessArgs args = parse_args(argc, argv);
  auto ws = filter(make_workloads(args), {"fft", "matmult"});

  if (args.measured) {
    std::printf("FIG 9 (measured) — speculative path breakdown\n");
    header();
    for (BenchWorkload& w : ws) {
      for (int n : args.measured_cpus) {
        if (n == 1) continue;
        workloads::SpecRun r = w.spec(n, ForkModel::kMixed, 0.0);
        const TimeLedger& l = r.stats.speculative.ledger;
        double tot = static_cast<double>(r.stats.speculative.runtime_ns);
        if (tot <= 0) continue;
        auto pct = [&](TimeCat c) {
          return 100.0 * static_cast<double>(l.get(c)) / tot;
        };
        std::printf(
            "%-11s %-6d %8.1f %8.1f %8.1f %8.1f %8.1f %8.1f %8.1f\n",
            w.name.c_str(), n, pct(TimeCat::kWork), pct(TimeCat::kWastedWork),
            pct(TimeCat::kValidation), pct(TimeCat::kCommit),
            pct(TimeCat::kFinalize), pct(TimeCat::kIdle),
            pct(TimeCat::kFork) + pct(TimeCat::kForkHandoff) +
                pct(TimeCat::kFindCpu));
      }
    }
  }

  if (args.sim) {
    std::printf(
        "\nFIG 9 (simulated, paper scale) — speculative path breakdown\n");
    header();
    for (BenchWorkload& w : ws) {
      for (int n : args.sim_cpus) {
        sim::SimModel m = w.sim_model();
        sim::SimResult r =
            sim::Simulator(sim_opts(n, ForkModel::kMixed)).run(m);
        double tot = r.spec_runtime_sum;
        if (tot <= 0) continue;
        const sim::SimBreakdown& b = r.speculative;
        std::printf(
            "%-11s %-6d %8.1f %8.1f %8.1f %8.1f %8.1f %8.1f %8.1f\n",
            w.name.c_str(), n, 100 * b.work / tot, 100 * b.wasted / tot,
            100 * b.validation / tot, 100 * b.commit / tot,
            100 * b.finalize / tot, 100 * b.idle / tot,
            100 * (b.fork + b.find_cpu) / tot);
      }
    }
    std::printf(
        "paper: fft idle grows to ~59%% at 64 cores; matmult is the only "
        "benchmark with rollbacks (peak ~23%%).\n");
  }
  return 0;
}
