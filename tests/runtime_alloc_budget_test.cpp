// CI-enforced allocation budget: after a short warm-up, a fork/join steady
// state performs ZERO global-heap allocations — on every buffer backend.
//
// Two independent meters agree:
//   1. counting global operator new/delete overrides (ground truth for the
//      whole process, gated so only the measured window counts), and
//   2. the runtime's own alloc_events counter (per-slot Arena heap-fallback
//      trips, aggregated through SpecBufferStats at settle time) — the
//      number bench_json.py and the CI budget step watch.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "api/spec.h"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<uint64_t> g_news{0};

void* counted_alloc(std::size_t n) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_news.fetch_add(1, std::memory_order_relaxed);
  }
  return std::malloc(n ? n : 1);
}

void* counted_alloc_aligned(std::size_t n, std::size_t align) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_news.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     n ? n : 1) != 0) {
    return nullptr;
  }
  return p;
}

}  // namespace

void* operator new(std::size_t n) {
  void* p = counted_alloc(n);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}
void* operator new[](std::size_t n) { return operator new(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return counted_alloc(n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return counted_alloc(n);
}
void* operator new(std::size_t n, std::align_val_t a) {
  void* p = counted_alloc_aligned(n, static_cast<std::size_t>(a));
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return operator new(n, a);
}
void* operator new(std::size_t n, std::align_val_t a,
                   const std::nothrow_t&) noexcept {
  return counted_alloc_aligned(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a,
                     const std::nothrow_t&) noexcept {
  return counted_alloc_aligned(n, static_cast<std::size_t>(a));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, std::size_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t, std::size_t) noexcept {
  std::free(p);
}

namespace mutls {
namespace {

constexpr int kWarmup = 10;
constexpr int kMeasured = 20;

struct SteadyState {
  uint64_t heap_news = 0;      // from the operator new overrides
  uint64_t alloc_events = 0;   // from the runtime's arena counters
  uint64_t commits = 0;
};

// One iteration: speculate a child that writes `touch` distinct shared
// words, while the parent writes a disjoint word; join at scope exit.
SteadyState run_steady(BufferBackend backend, size_t touch) {
  Runtime rt({.num_cpus = 2,
              .buffer_log2 = 8,
              .overflow_cap = 64,
              .buffer_backend = backend,
              .adaptive_overflow_threshold = 2});
  std::vector<uint64_t> data(touch + 1, 0);
  rt.register_memory(data.data(), data.size() * sizeof(uint64_t));

  auto one_run = [&] {
    return rt.run([&](Ctx& root) {
      auto s = rt.fork_scoped(root, ForkModel::kMixed, [&](Ctx& c) {
        for (size_t i = 0; i < touch; ++i) {
          c.store(&data[i], static_cast<uint64_t>(i + 1));
        }
      });
      root.store(&data[touch], uint64_t{7});
    });
  };

  // Warm-up: first speculations pay for arena segments, pool classes along
  // the growable doubling ladder, retired local frames — and, for the
  // adaptive backend, the flip to the growable log after repeated overflow
  // dooms. Everything after that must recycle.
  for (int i = 0; i < kWarmup; ++i) (void)one_run();

  SteadyState out;
  g_news.store(0);
  g_counting.store(true);
  for (int i = 0; i < kMeasured; ++i) {
    RunStats rs = one_run();
    out.alloc_events +=
        rs.speculative.buffer.alloc_events + rs.critical.buffer.alloc_events;
    out.commits += rs.speculative.commits;
  }
  g_counting.store(false);
  out.heap_news = g_news.load();
  return out;
}

TEST(AllocBudget, StaticHashSteadyStateIsAllocationFree) {
  SteadyState s = run_steady(BufferBackend::kStaticHash, 100);
  EXPECT_EQ(s.heap_news, 0u);
  EXPECT_EQ(s.alloc_events, 0u);
  EXPECT_GT(s.commits, 0u);
}

TEST(AllocBudget, GrowableLogSteadyStateIsAllocationFree) {
  SteadyState s = run_steady(BufferBackend::kGrowableLog, 2048);
  EXPECT_EQ(s.heap_news, 0u);
  EXPECT_EQ(s.alloc_events, 0u);
  EXPECT_GT(s.commits, 0u);
}

TEST(AllocBudget, AdaptiveSteadyStateIsAllocationFree) {
  // 2048 distinct words doom the 2^8-slot static hash, so warmed slots have
  // flipped to the growable log by the measured window.
  SteadyState s = run_steady(BufferBackend::kAdaptive, 2048);
  EXPECT_EQ(s.heap_news, 0u);
  EXPECT_EQ(s.alloc_events, 0u);
  EXPECT_GT(s.commits, 0u);
}

// The fork path itself (handle + speculated wrapper) must stay off the heap
// even when bodies capture more than InlineTask's buffer: the spill goes to
// the forker's/child's arena, warmed after the first epoch.
TEST(AllocBudget, OversizedCapturesSpillIntoArenasNotTheHeap) {
  Runtime rt({.num_cpus = 2, .buffer_log2 = 8, .overflow_cap = 64});
  std::vector<uint64_t> data(8, 0);
  rt.register_memory(data.data(), data.size() * sizeof(uint64_t));
  struct Fat {
    uint64_t pad[40];  // 320B: over the 128B inline buffer
  };
  auto one_run = [&] {
    return rt.run([&](Ctx& root) {
      Fat fat{};
      fat.pad[0] = 5;
      auto s = rt.fork_scoped(root, ForkModel::kMixed, [&data, fat](Ctx& c) {
        c.store(&data[0], fat.pad[0]);
      });
      root.store(&data[1], uint64_t{9});
    });
  };
  for (int i = 0; i < kWarmup; ++i) (void)one_run();
  g_news.store(0);
  g_counting.store(true);
  uint64_t alloc_events = 0;
  for (int i = 0; i < kMeasured; ++i) {
    RunStats rs = one_run();
    alloc_events +=
        rs.speculative.buffer.alloc_events + rs.critical.buffer.alloc_events;
  }
  g_counting.store(false);
  EXPECT_EQ(g_news.load(), 0u);
  EXPECT_EQ(alloc_events, 0u);
}

}  // namespace
}  // namespace mutls
