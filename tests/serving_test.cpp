// Serving subsystem tests: parser grammar and bounds, route table
// precedence, cache index semantics, and seq/spec equivalence of the
// serve_batch driver. The parser properties run against exactly-sized heap
// buffers so the ASan job turns any read past buf.size() into a failure —
// the "never reads past the buffer" guarantee is enforced, not assumed.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <string_view>

#include "serving/cache_index.h"
#include "serving/http_parse.h"
#include "serving/request_gen.h"
#include "serving/route.h"
#include "serving/serve_batch.h"
#include "support/prng.h"

namespace mutls::serving {
namespace {

// Heap copy of exactly s.size() bytes — no NUL terminator, no slack — so
// sanitizers catch any parser read beyond the view.
class ExactBuf {
 public:
  explicit ExactBuf(std::string_view s)
      : n_(s.size()), p_(new char[n_ == 0 ? 1 : n_]) {
    std::memcpy(p_.get(), s.data(), n_);
  }
  std::string_view view() const { return {p_.get(), n_}; }

 private:
  size_t n_;
  std::unique_ptr<char[]> p_;
};

// Parse a heap copy of `s` and drop the copy before returning: callers may
// only look at `out.status` / counts, never at the string_view fields (the
// views point into the freed copy). Tests that inspect views keep their own
// ExactBuf alive instead.
ParseStatus parse_exact(std::string_view s, ParsedRequest& out,
                        Arena* arena = nullptr) {
  ExactBuf buf(s);
  return parse_request(buf.view(), out, arena);
}

// --- parser grammar ---

TEST(HttpParse, BasicGet) {
  ParsedRequest r;
  std::string_view raw =
      "GET /cache/items/42?fresh=1 HTTP/1.1\r\n"
      "Host: example.test\r\n"
      "Accept: */*\r\n"
      "\r\n";
  ExactBuf buf(raw);
  ASSERT_EQ(parse_request(buf.view(), r), ParseStatus::kOk);
  EXPECT_EQ(r.method, Method::kGet);
  EXPECT_EQ(r.method_text, "GET");
  EXPECT_EQ(r.target, "/cache/items/42?fresh=1");
  EXPECT_EQ(r.path, "/cache/items/42");
  EXPECT_EQ(r.query, "fresh=1");
  EXPECT_EQ(r.version, "HTTP/1.1");
  EXPECT_EQ(r.header_count, 2u);
  EXPECT_EQ(r.consumed, raw.size());
  EXPECT_EQ(r.header_value("host"), "example.test");  // case-insensitive
  EXPECT_EQ(r.header_value("ACCEPT"), "*/*");
  EXPECT_FALSE(r.spilled());
}

TEST(HttpParse, ViewsAliasTheBuffer) {
  ExactBuf buf("PUT /x HTTP/1.0\r\nA: b\r\n\r\n");
  ParsedRequest r;
  ASSERT_EQ(parse_request(buf.view(), r), ParseStatus::kOk);
  const char* lo = buf.view().data();
  const char* hi = lo + buf.view().size();
  for (std::string_view v :
       {r.method_text, r.target, r.path, r.version, r.header(0).name,
        r.header(0).value}) {
    EXPECT_GE(v.data(), lo);
    EXPECT_LE(v.data() + v.size(), hi);
  }
}

TEST(HttpParse, ConsumedStopsAtHeadEnd) {
  std::string raw = "PUT /k HTTP/1.1\r\nContent-Length: 4\r\n\r\nBODY";
  ExactBuf buf(raw);
  ParsedRequest r;
  ASSERT_EQ(parse_request(buf.view(), r), ParseStatus::kOk);
  EXPECT_EQ(r.consumed, raw.size() - 4);
  uint64_t len = 0;
  ASSERT_TRUE(parse_decimal(r.header_value("Content-Length"), &len));
  EXPECT_EQ(len, 4u);
}

TEST(HttpParse, OwsTrimmedEmptyValueLegal) {
  ExactBuf buf("GET / HTTP/1.1\r\nX-Empty:   \r\n\r\n");
  ParsedRequest r;
  ASSERT_EQ(parse_request(buf.view(), r), ParseStatus::kOk);
  EXPECT_TRUE(r.has_header("X-Empty"));
  EXPECT_EQ(r.header_value("X-Empty"), "");
  EXPECT_FALSE(r.has_header("X-Absent"));
}

TEST(HttpParse, MalformedRejections) {
  const char* cases[] = {
      "G T / HTTP/1.1\r\n\r\n",             // space inside method split
      " GET / HTTP/1.1\r\n\r\n",            // empty method
      "GET  / HTTP/1.1\r\n\r\n",            // double space -> empty target
      "GET x HTTP/1.1\r\n\r\n",             // target not origin-form
      "GET /a b HTTP/1.1\r\n\r\n",          // space in target
      "GET / HTTP/2\r\n\r\n",               // version too short
      "GET / HTTPS/1.1\r\n\r\n",            // wrong protocol
      "GET / HTTP/1.x\r\n\r\n",             // non-digit minor
      "GET / HTTP/1.1\nHost: a\r\n\r\n",    // bare LF line ending
      "GET / HTTP/1.1\r\nHost a\r\n\r\n",   // header without colon
      "GET / HTTP/1.1\r\n: v\r\n\r\n",      // empty header name
      "GET / HTTP/1.1\r\nHost : a\r\n\r\n", // space before colon
      "GET / HTTP/1.1\r\nBad\x01: v\r\n\r\n",  // CTL in name
      "GET / HTTP/1.1\r\nA: b\x01\r\n\r\n",    // CTL in value
      "GET / HTTP/1.1\rX\r\n\r\n",          // stray CR
  };
  for (const char* c : cases) {
    ParsedRequest r;
    EXPECT_EQ(parse_exact(c, r), ParseStatus::kMalformed) << c;
    EXPECT_EQ(r.status, ParseStatus::kMalformed);
  }
}

TEST(HttpParse, EveryPrefixOfAValidHeadIsIncomplete) {
  std::string raw =
      "DELETE /cache/items/7 HTTP/1.1\r\n"
      "Host: h\r\n"
      "X-Trace: abc123\r\n"
      "\r\n";
  for (size_t cut = 0; cut < raw.size(); ++cut) {
    ParsedRequest r;
    ASSERT_EQ(parse_exact(std::string_view(raw).substr(0, cut), r),
              ParseStatus::kIncomplete)
        << "cut=" << cut;
  }
  ParsedRequest r;
  EXPECT_EQ(parse_exact(raw, r), ParseStatus::kOk);
}

TEST(HttpParse, OverlongLineRejectedOnceUndecidable) {
  std::string raw = "GET /";
  raw.append(kMaxLine + 10, 'a');
  raw += " HTTP/1.1\r\n\r\n";
  ParsedRequest r;
  EXPECT_EQ(parse_exact(raw, r), ParseStatus::kMalformed);
}

TEST(HttpParse, HeaderSpillIntoArena) {
  std::string raw = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 12; ++i) {
    raw += "X-H" + std::to_string(i) + ": v" + std::to_string(i) + "\r\n";
  }
  raw += "\r\n";
  // Without an arena, the inline capacity is the hard bound.
  ParsedRequest r;
  EXPECT_EQ(parse_exact(raw, r), ParseStatus::kMalformed);
  // With an arena the fields spill and stay addressable.
  Arena arena;
  ExactBuf buf(raw);
  ASSERT_EQ(parse_request(buf.view(), r, &arena), ParseStatus::kOk);
  EXPECT_TRUE(r.spilled());
  EXPECT_EQ(r.header_count, 12u);
  EXPECT_EQ(r.header_value("X-H0"), "v0");   // copied inline fields
  EXPECT_EQ(r.header_value("X-H11"), "v11");  // spill-resident fields
}

TEST(HttpParse, HeaderCountHardBound) {
  std::string raw = "GET / HTTP/1.1\r\n";
  for (size_t i = 0; i < kMaxHeaders + 1; ++i) {
    raw += "X-" + std::to_string(i) + ": v\r\n";
  }
  raw += "\r\n";
  Arena arena;
  ParsedRequest r;
  EXPECT_EQ(parse_exact(raw, r, &arena), ParseStatus::kMalformed);
}

TEST(HttpParse, ParseDecimal) {
  uint64_t v = 0;
  EXPECT_TRUE(parse_decimal("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(parse_decimal("18446744073709551615", &v));
  EXPECT_EQ(v, UINT64_MAX);
  EXPECT_FALSE(parse_decimal("18446744073709551616", &v));  // overflow
  EXPECT_FALSE(parse_decimal("", &v));
  EXPECT_FALSE(parse_decimal("12a", &v));
  EXPECT_FALSE(parse_decimal("-1", &v));
}

// Randomized: arbitrary bytes must never crash or read out of bounds
// (ASan-checked via the exact-sized buffer), whatever status they get.
TEST(HttpParse, RandomBytesNeverOverread) {
  Xorshift64 rng(71);
  Arena arena;
  for (int iter = 0; iter < 3000; ++iter) {
    size_t len = rng.next_below(200);
    std::string s(len, '\0');
    for (char& c : s) {
      // Bias toward protocol-ish bytes so parses get past the first line.
      uint64_t r = rng.next_below(10);
      if (r < 6) {
        c = "GET /PUTHOST: 1.\r\n"[rng.next_below(18)];
      } else {
        c = static_cast<char>(rng.next());
      }
    }
    ParsedRequest r;
    parse_exact(s, r, &arena);
  }
}

// Round-trip: every well-formed generated request parses back to the
// generator's oracle; every corrupted one is rejected.
TEST(HttpParse, GeneratedTrafficRoundTrip) {
  TrafficConfig cfg;
  cfg.num_keys = 500;
  cfg.zipf_s = 1.1;
  cfg.put_ratio = 0.3;
  cfg.malformed_ratio = 0.25;
  cfg.seed = 99;
  RequestGen gen(cfg);
  char buf[kMaxRequestBytes];
  int corrupted = 0;
  for (int i = 0; i < 5000; ++i) {
    size_t len = gen.generate(buf, sizeof(buf));
    RequestGen::Shape shape = gen.last();
    ParsedRequest r;
    ExactBuf exact(std::string_view(buf, len));  // keeps the views alive
    ParseStatus s = parse_request(exact.view(), r);
    if (shape.corrupted) {
      ++corrupted;
      EXPECT_NE(s, ParseStatus::kOk) << std::string_view(buf, len);
      continue;
    }
    ASSERT_EQ(s, ParseStatus::kOk);
    EXPECT_EQ(r.method, shape.is_put ? Method::kPut : Method::kGet);
    EXPECT_EQ(r.path,
              "/cache/items/" + std::to_string(shape.key));
    if (shape.is_put) {
      uint64_t cl = 0;
      ASSERT_TRUE(parse_decimal(r.header_value("Content-Length"), &cl));
      EXPECT_EQ(cl, shape.content_length);
    }
  }
  EXPECT_GT(corrupted, 1000);  // the injection ratio actually applied
}

// --- route table ---

TEST(RouteTable, ExactBeatsPrefixAndLongestPrefixWins) {
  RouteTable t;
  int items = t.add_prefix("/cache/items/");
  int cache = t.add_prefix("/cache/");
  int stats = t.add_exact("/cache/stats");
  EXPECT_EQ(t.match("/cache/stats").route, stats);
  EXPECT_EQ(t.match("/cache/items/42").route, items);
  EXPECT_EQ(t.match("/cache/items/42").rest, "42");
  EXPECT_EQ(t.match("/cache/other").route, cache);
  EXPECT_EQ(t.match("/cache/other").rest, "other");
  EXPECT_EQ(t.match("/nope").route, RouteTable::kNoRoute);
  EXPECT_EQ(t.match("/cache/item").route, cache);  // no partial items match
}

TEST(RouteTable, ExactRequiresFullEquality) {
  RouteTable t;
  int h = t.add_exact("/healthz");
  EXPECT_EQ(t.match("/healthz").route, h);
  EXPECT_EQ(t.match("/healthz/").route, RouteTable::kNoRoute);
  EXPECT_EQ(t.match("/health").route, RouteTable::kNoRoute);
}

// --- cache index (sequential semantics) ---

TEST(CacheIndex, PutGetRefreshAndHitCounts) {
  CacheIndex idx(6);
  EXPECT_FALSE(idx.get_seq(7).hit);
  EXPECT_FALSE(idx.put_seq(7, 100, 1));
  CacheIndex::GetResult r = idx.get_seq(7);
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(r.byte_size, 100u);
  // Refresh replaces size/epoch without eviction.
  EXPECT_FALSE(idx.put_seq(7, 250, 2));
  EXPECT_EQ(idx.get_seq(7).byte_size, 250u);
  EXPECT_EQ(idx.live_entries(), 1u);
}

TEST(CacheIndex, EvictsColdestWhenWindowFull) {
  // A tiny index (one probe window's worth of slots) filled past capacity
  // must evict, and the hot key must survive: get_seq bumps hit counts and
  // the eviction victim is the coldest entry in the window.
  CacheIndex idx(4);  // 16 slots == kProbeWindow
  for (uint64_t k = 1; k <= 16; ++k) idx.put_seq(k, k, 0);
  EXPECT_EQ(idx.live_entries(), 16u);
  for (int i = 0; i < 5; ++i) {
    for (uint64_t k = 1; k <= 16; ++k) {
      if (k != 3) idx.get_seq(k);  // key 3 stays cold
    }
  }
  uint64_t evictions = 0;
  for (uint64_t k = 17; k <= 20; ++k) {
    if (idx.put_seq(k, k, 1)) ++evictions;
  }
  EXPECT_GT(evictions, 0u);
  EXPECT_FALSE(idx.get_seq(3).hit);  // the cold key was the first victim
}

TEST(CacheIndex, ChecksumReflectsContentExactly) {
  CacheIndex a(8), b(8);
  EXPECT_EQ(a.checksum(), b.checksum());
  Xorshift64 rng(3);
  for (int i = 0; i < 500; ++i) {
    uint64_t k = 1 + rng.next_below(100);
    if (rng.bernoulli(0.3)) {
      a.put_seq(k, k * 10, static_cast<uint64_t>(i));
      b.put_seq(k, k * 10, static_cast<uint64_t>(i));
    } else {
      a.get_seq(k);
      b.get_seq(k);
    }
    ASSERT_EQ(a.checksum(), b.checksum());
  }
  a.put_seq(999, 1, 0);
  EXPECT_NE(a.checksum(), b.checksum());
  a.clear();
  b.clear();
  EXPECT_EQ(a.checksum(), b.checksum());
  EXPECT_EQ(a.live_entries(), 0u);
}

// --- serve_batch: speculative vs sequential ---

class ServeBatchEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ServeBatchEquivalence, CountersAndIndexMatchSequential) {
  TrafficConfig cfg;
  cfg.num_keys = 80;
  cfg.zipf_s = 1.1;
  cfg.put_ratio = 0.3;
  cfg.malformed_ratio = 0.15;
  cfg.seed = 1234;

  // Sequential reference.
  CacheIndex seq_index(5);
  RequestGen seq_gen(cfg);
  RequestBatch seq_batch(128);
  BatchCounters seq_totals;
  for (uint64_t b = 0; b < 4; ++b) {
    seq_gen.fill(seq_batch);
    seq_totals += Server::serve_batch_seq(seq_index, seq_batch, b);
  }

  // Speculative run over the identical stream.
  Runtime::Options o;
  o.num_cpus = GetParam();
  o.buffer_log2 = 14;
  Runtime rt(o);
  CacheIndex index(rt, 5);
  Server server(rt, index, 128);
  RequestGen gen(cfg);
  RequestBatch batch(128);
  BatchCounters totals;
  rt.run([&](Ctx& ctx) {
    ServeOpts opts;
    opts.chunks = 8;
    for (uint64_t b = 0; b < 4; ++b) {
      gen.fill(batch);
      totals += server.serve_batch(ctx, batch, b, opts);
    }
  });

  EXPECT_EQ(totals, seq_totals);
  EXPECT_EQ(index.checksum(), seq_index.checksum());
  // The traffic mix actually exercised every disposition.
  EXPECT_GT(totals.malformed, 0u);
  EXPECT_GT(totals.get_hits, 0u);
  EXPECT_GT(totals.get_misses, 0u);
  EXPECT_GT(totals.puts, 0u);
  EXPECT_GT(totals.evictions, 0u);
}

INSTANTIATE_TEST_SUITE_P(Cpus, ServeBatchEquivalence,
                         ::testing::Values(1, 2, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return std::to_string(info.param) + "cpu";
                         });

TEST(ServeBatch, LatencySamplingRecordsSettles) {
  Runtime::Options o;
  o.num_cpus = 2;
  Runtime rt(o);
  CacheIndex index(rt, 6);
  Server server(rt, index, 64);
  TrafficConfig cfg;
  cfg.num_keys = 32;
  RequestGen gen(cfg);
  RequestBatch batch(64);
  LatencyHistogram lat;
  uint64_t scratch[8];
  rt.run([&](Ctx& ctx) {
    ServeOpts opts;
    opts.chunks = 8;
    opts.fork_latency = &lat;
    opts.fork_ns_scratch = scratch;
    for (uint64_t b = 0; b < 3; ++b) {
      gen.fill(batch);
      server.serve_batch(ctx, batch, b, opts);
    }
  });
  // Every adopted join of every batch recorded one sample.
  EXPECT_GT(lat.count(), 0u);
  EXPECT_GT(lat.percentile(0.5), 0u);
  EXPECT_GE(lat.max(), lat.percentile(0.99));
}

}  // namespace
}  // namespace mutls::serving
