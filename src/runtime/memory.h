// Raw word/byte access primitives used by the speculative memory system.
//
// Non-speculative commits to main memory can race (benignly, by TLS design)
// with speculative first-touch reads of the same words; those races are
// resolved by validation at join time. To keep that well-defined in C++ we
// route every main-memory access of the runtime through relaxed atomics on
// naturally-aligned words and bytes.
#pragma once

#include <cstdint>
#include <cstring>

namespace mutls {

// The WORD granularity of the speculative buffer maps (paper IV-G2).
constexpr size_t kWordSize = 8;
constexpr uintptr_t kWordMask = kWordSize - 1;

inline uintptr_t word_align_down(uintptr_t addr) { return addr & ~kWordMask; }

// The one eligibility rule of the aligned-word fast path
// (SpecBuffer::load_aligned/store_aligned): a naturally-aligned access of
// power-of-two size <= kWordSize can never straddle a buffered word.
constexpr bool word_sized_aligned(uintptr_t addr, size_t size) {
  return size <= kWordSize && (size & (size - 1)) == 0 &&
         (addr & (size - 1)) == 0;
}

inline uint64_t atomic_word_load(uintptr_t word_addr) {
  return __atomic_load_n(reinterpret_cast<const uint64_t*>(word_addr),
                         __ATOMIC_RELAXED);
}

inline void atomic_word_store(uintptr_t word_addr, uint64_t v) {
  __atomic_store_n(reinterpret_cast<uint64_t*>(word_addr), v,
                   __ATOMIC_RELAXED);
}

inline uint8_t atomic_byte_load(uintptr_t addr) {
  return __atomic_load_n(reinterpret_cast<const uint8_t*>(addr),
                         __ATOMIC_RELAXED);
}

inline void atomic_byte_store(uintptr_t addr, uint8_t v) {
  __atomic_store_n(reinterpret_cast<uint8_t*>(addr), v, __ATOMIC_RELAXED);
}

// Copies `size` bytes out of the word `w` starting at in-word offset `off`.
inline void copy_from_word(uint64_t w, size_t off, size_t size, void* out) {
  std::memcpy(out, reinterpret_cast<const char*>(&w) + off, size);
}

// Overlays `size` bytes into the word `w` at in-word offset `off`.
inline void copy_into_word(uint64_t& w, size_t off, size_t size,
                           const void* src) {
  std::memcpy(reinterpret_cast<char*>(&w) + off, src, size);
}

// Mark word with the `size` bytes starting at `off` set to 0xFF
// (the paper's `mark` array records which bytes of a buffered word were
// actually written).
inline uint64_t byte_mask(size_t off, size_t size) {
  if (size >= kWordSize) return ~0ull;
  uint64_t m = ((1ull << (8 * size)) - 1) << (8 * off);
  return m;
}

constexpr uint64_t kFullMark = ~0ull;

// Overlays the bytes of `data` selected by `mask` onto `base` — the one
// byte-granular merge rule of the whole buffering protocol (speculative
// view composition, write-set overlay, tree-form adoption).
inline uint64_t overlay_bytes(uint64_t base, uint64_t data, uint64_t mask) {
  return (base & ~mask) | (data & mask);
}

// Reference to one buffered word, the return shape of every backend slot
// primitive (find_read / find_write / insert_read / insert_write). This is
// the contract the unified machinery in SpecBuffer — the MRU word-view
// cache, the view composition, the tree-form merge policy — is written
// against, so both halves of the reference mean the same thing in every
// backend:
//   data/mark — storage of the entry; data == nullptr means "absent" from
//               a find, "capacity exhausted, the backend has doomed
//               itself" from an insert. mark is null for read-set refs.
//   handle    — the backend's MRU-cacheable slot handle (+1; 0 = not
//               cacheable): a static-table index for the static hash
//               (overflow residents move when the overflow vector grows,
//               so they hand out 0), a resize-stable log position for the
//               growable log.
struct WordRef {
  uint64_t* data = nullptr;
  uint64_t* mark = nullptr;
  uint32_t handle = 0;
};

}  // namespace mutls
