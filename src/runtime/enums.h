// Core enumerations of the MUTLS runtime (paper sections II, IV-D, IV-E).
#pragma once

namespace mutls {

// Forking models (paper section II). The model is a property of each fork
// point, passed as the `model` argument of __builtin_MUTLS_fork.
enum class ForkModel : int {
  kInOrder = 0,     // only the most speculative thread may fork
  kOutOfOrder = 1,  // only the non-speculative thread may fork
  kMixed = 2,       // every thread may fork: tree of threads
};

inline const char* fork_model_name(ForkModel m) {
  switch (m) {
    case ForkModel::kInOrder: return "in-order";
    case ForkModel::kOutOfOrder: return "out-of-order";
    case ForkModel::kMixed: return "mixed";
  }
  return "?";
}

// Virtual CPU states (paper section IV-D).
enum class CpuState : int {
  kIdle = 0,
  kRunning = 1,
  kReadyToReclaim = 2,
};

// sync_status of a speculative thread (paper sections IV-E, IV-F).
// kNone corresponds to the paper's NULL initialization.
enum class SyncStatus : int {
  kNone = 0,
  kSync = 1,    // the joiner wants to synchronize: validate and commit/rollback
  kNoSync = 2,  // non-conforming speculation or subtree abort: discard quietly
};

// valid_status reported back through the flag-based barrier.
enum class ValidStatus : int {
  kNone = 0,
  kCommit = 1,
  kRollback = 2,
};

}  // namespace mutls
