#include "workloads/bh.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/check.h"
#include "support/prng.h"

namespace mutls::workloads {

namespace {

// Flat octree in structure-of-arrays form so both the sequential and the
// speculative traversal read it through plain typed pointers.
struct Octree {
  // Per node: center of the cell, half width, center of mass, total mass,
  // 8 child indices (-1 = none), body index for single-body leaves (-1 for
  // internal nodes).
  std::vector<double> cellx, celly, cellz, half;
  std::vector<double> comx, comy, comz, mass;
  std::vector<int32_t> child;  // 8 per node
  std::vector<int32_t> body;

  size_t size() const { return half.size(); }

  int32_t add_node(double cx, double cy, double cz, double h) {
    cellx.push_back(cx);
    celly.push_back(cy);
    cellz.push_back(cz);
    half.push_back(h);
    comx.push_back(0);
    comy.push_back(0);
    comz.push_back(0);
    mass.push_back(0);
    for (int i = 0; i < 8; ++i) child.push_back(-1);
    body.push_back(-1);
    return static_cast<int32_t>(size() - 1);
  }

  void clear() {
    cellx.clear(); celly.clear(); cellz.clear(); half.clear();
    comx.clear(); comy.clear(); comz.clear(); mass.clear();
    child.clear(); body.clear();
  }
};

int octant(double cx, double cy, double cz, double x, double y, double z) {
  return (x >= cx ? 1 : 0) | (y >= cy ? 2 : 0) | (z >= cz ? 4 : 0);
}

void tree_insert(Octree& t, int32_t node, int b, const double* px,
                 const double* py, const double* pz, const double* pm) {
  while (true) {
    if (t.body[static_cast<size_t>(node)] == -1 &&
        t.mass[static_cast<size_t>(node)] == 0.0) {
      // Empty leaf: claim it.
      t.body[static_cast<size_t>(node)] = static_cast<int32_t>(b);
      t.mass[static_cast<size_t>(node)] = pm[b];
      t.comx[static_cast<size_t>(node)] = px[b];
      t.comy[static_cast<size_t>(node)] = py[b];
      t.comz[static_cast<size_t>(node)] = pz[b];
      return;
    }
    if (t.body[static_cast<size_t>(node)] != -1) {
      // Single-body leaf: push the resident body down and convert to an
      // internal node.
      int old = t.body[static_cast<size_t>(node)];
      t.body[static_cast<size_t>(node)] = -1;
      double cx = t.cellx[static_cast<size_t>(node)];
      double cy = t.celly[static_cast<size_t>(node)];
      double cz = t.cellz[static_cast<size_t>(node)];
      double h = t.half[static_cast<size_t>(node)] / 2;
      int oq = octant(cx, cy, cz, px[old], py[old], pz[old]);
      int32_t oc = t.add_node(cx + (oq & 1 ? h : -h), cy + (oq & 2 ? h : -h),
                              cz + (oq & 4 ? h : -h), h);
      t.child[static_cast<size_t>(node) * 8 + static_cast<size_t>(oq)] = oc;
      tree_insert(t, oc, old, px, py, pz, pm);
    }
    // Internal node: accumulate mass and descend.
    size_t ni = static_cast<size_t>(node);
    double m = t.mass[ni] + pm[b];
    t.comx[ni] = (t.comx[ni] * t.mass[ni] + px[b] * pm[b]) / m;
    t.comy[ni] = (t.comy[ni] * t.mass[ni] + py[b] * pm[b]) / m;
    t.comz[ni] = (t.comz[ni] * t.mass[ni] + pz[b] * pm[b]) / m;
    t.mass[ni] = m;
    double cx = t.cellx[ni], cy = t.celly[ni], cz = t.cellz[ni];
    double h = t.half[ni] / 2;
    int q = octant(cx, cy, cz, px[b], py[b], pz[b]);
    int32_t c = t.child[ni * 8 + static_cast<size_t>(q)];
    if (c == -1) {
      c = t.add_node(cx + (q & 1 ? h : -h), cy + (q & 2 ? h : -h),
                     cz + (q & 4 ? h : -h), h);
      t.child[ni * 8 + static_cast<size_t>(q)] = c;
    }
    node = c;
  }
}

void build_tree(Octree& t, int n, const double* px, const double* py,
                const double* pz, const double* pm) {
  t.clear();
  double lo = 1e30, hi = -1e30;
  for (int i = 0; i < n; ++i) {
    lo = std::min({lo, px[i], py[i], pz[i]});
    hi = std::max({hi, px[i], py[i], pz[i]});
  }
  double c = (lo + hi) / 2, h = (hi - lo) / 2 + 1e-9;
  t.add_node(c, c, c, h);
  for (int b = 0; b < n; ++b) tree_insert(t, 0, b, px, py, pz, pm);
}

// Acceleration on body b by tree traversal. LoadD/LoadI abstract the
// element reads so the identical kernel serves the sequential baseline and
// the speculative version (via Ctx::load), keeping floating-point results
// bit-identical.
template <typename LoadD, typename LoadI>
void accel_on(int b, double bx, double by, double bz, double theta,
              const LoadD& ld, const LoadI& li, size_t nodes, double out[3]) {
  (void)nodes;
  double ax = 0, ay = 0, az = 0;
  int32_t stack[256];
  int sp = 0;
  stack[sp++] = 0;
  while (sp > 0) {
    int32_t node = stack[--sp];
    size_t ni = static_cast<size_t>(node);
    double m = ld('m', ni);
    if (m == 0.0) continue;
    int32_t leaf_body = li('b', ni);
    double dx = ld('x', ni) - bx;
    double dy = ld('y', ni) - by;
    double dz = ld('z', ni) - bz;
    double r2 = dx * dx + dy * dy + dz * dz;
    double h = ld('h', ni);
    if (leaf_body == static_cast<int32_t>(b)) continue;
    bool is_leaf = leaf_body != -1;
    if (is_leaf || 4.0 * h * h < theta * theta * r2) {
      double r2s = r2 + 1e-4;
      double inv = m / (r2s * std::sqrt(r2s));
      ax += dx * inv;
      ay += dy * inv;
      az += dz * inv;
    } else {
      for (int q = 0; q < 8; ++q) {
        int32_t c = li('c', ni * 8 + static_cast<size_t>(q));
        if (c != -1) {
          MUTLS_CHECK(sp < 256, "bh traversal stack overflow");
          stack[sp++] = c;
        }
      }
    }
  }
  out[0] = ax;
  out[1] = ay;
  out[2] = az;
}

void init_bodies(const BarnesHut::Params& p, std::vector<double>& px,
                 std::vector<double>& py, std::vector<double>& pz,
                 std::vector<double>& vx, std::vector<double>& vy,
                 std::vector<double>& vz, std::vector<double>& pm) {
  Xorshift64 rng(p.seed);
  size_t n = static_cast<size_t>(p.n);
  px.resize(n); py.resize(n); pz.resize(n);
  vx.assign(n, 0.0); vy.assign(n, 0.0); vz.assign(n, 0.0);
  pm.resize(n);
  for (size_t i = 0; i < n; ++i) {
    px[i] = rng.next_double() * 10 - 5;
    py[i] = rng.next_double() * 10 - 5;
    pz[i] = rng.next_double() * 10 - 5;
    pm[i] = 0.5 + rng.next_double();
  }
}

uint64_t checksum_bodies(const double* px, const double* py, const double* pz,
                         size_t n) {
  uint64_t h = hash_begin();
  for (size_t i = 0; i < n; ++i) {
    h = hash_double(h, px[i]);
    h = hash_double(h, py[i]);
    h = hash_double(h, pz[i]);
  }
  return h;
}

}  // namespace

SeqRun BarnesHut::run_seq(const Params& p) {
  std::vector<double> px, py, pz, vx, vy, vz, pm;
  init_bodies(p, px, py, pz, vx, vy, vz, pm);
  std::vector<double> ax(static_cast<size_t>(p.n)), ay(ax), az(ax);
  Octree t;
  Stopwatch sw;
  for (int s = 0; s < p.steps; ++s) {
    build_tree(t, p.n, px.data(), py.data(), pz.data(), pm.data());
    auto ld = [&](char what, size_t i) -> double {
      switch (what) {
        case 'x': return t.comx[i];
        case 'y': return t.comy[i];
        case 'z': return t.comz[i];
        case 'm': return t.mass[i];
        default: return t.half[i];
      }
    };
    auto li = [&](char what, size_t i) -> int32_t {
      return what == 'b' ? t.body[i] : t.child[i];
    };
    for (int b = 0; b < p.n; ++b) {
      double a[3];
      size_t bi = static_cast<size_t>(b);
      accel_on(b, px[bi], py[bi], pz[bi], p.theta, ld, li, t.size(), a);
      ax[bi] = a[0];
      ay[bi] = a[1];
      az[bi] = a[2];
    }
    for (size_t i = 0; i < static_cast<size_t>(p.n); ++i) {
      vx[i] += p.dt * ax[i];
      vy[i] += p.dt * ay[i];
      vz[i] += p.dt * az[i];
      px[i] += p.dt * vx[i];
      py[i] += p.dt * vy[i];
      pz[i] += p.dt * vz[i];
    }
  }
  return SeqRun{checksum_bodies(px.data(), py.data(), pz.data(),
                                static_cast<size_t>(p.n)),
                sw.elapsed_sec()};
}

SpecRun BarnesHut::run_spec(Runtime& rt, const Params& p, ForkModel model) {
  size_t n = static_cast<size_t>(p.n);
  std::vector<double> px0, py0, pz0, vx0, vy0, vz0, pm0;
  init_bodies(p, px0, py0, pz0, vx0, vy0, vz0, pm0);
  SharedArray<double> px(rt, n), py(rt, n), pz(rt, n), vx(rt, n, 0.0),
      vy(rt, n, 0.0), vz(rt, n, 0.0), ax(rt, n, 0.0), ay(rt, n, 0.0),
      az(rt, n, 0.0);
  std::vector<double> pm = pm0;
  for (size_t i = 0; i < n; ++i) {
    px[i] = px0[i]; py[i] = py0[i]; pz[i] = pz0[i];
  }
  // Shared flat tree arrays, rebuilt (and re-filled) every step; capacity
  // bounds the node count.
  size_t cap = n * 4 + 64;
  SharedArray<double> tcomx(rt, cap), tcomy(rt, cap), tcomz(rt, cap),
      tmass(rt, cap), thalf(rt, cap);
  SharedArray<int32_t> tchild(rt, cap * 8), tbody(rt, cap);
  Octree t;
  Stopwatch sw;
  RunStats stats = rt.run([&](Ctx& ctx) {
    for (int s = 0; s < p.steps; ++s) {
      // Tree build on the critical path (sequential, like the paper's bh
      // which only speculates the force loop).
      build_tree(t, p.n, px.data(), py.data(), pz.data(), pm.data());
      MUTLS_CHECK(t.size() <= cap, "octree capacity exceeded");
      for (size_t i = 0; i < t.size(); ++i) {
        tcomx[i] = t.comx[i]; tcomy[i] = t.comy[i]; tcomz[i] = t.comz[i];
        tmass[i] = t.mass[i]; thalf[i] = t.half[i];
        tbody[i] = t.body[i];
        for (int q = 0; q < 8; ++q) tchild[i * 8 + static_cast<size_t>(q)] =
            t.child[i * 8 + static_cast<size_t>(q)];
      }
      par::for_each_chunk(
          rt, ctx, 0, p.n, par::LoopOpts{.chunks = p.chunks, .model = model},
          [&](Ctx& c, int, int64_t lo, int64_t hi) {
            // Views and accessors hoisted out of the per-body loop: this
            // is the hottest measured loop of the figure benches.
            SharedSpan<double> comx = tcomx.span(c), comy = tcomy.span(c),
                               comz = tcomz.span(c), mass = tmass.span(c),
                               half = thalf.span(c);
            SharedSpan<int32_t> child = tchild.span(c), body = tbody.span(c);
            SharedSpan<double> pxs = px.span(c), pys = py.span(c),
                               pzs = pz.span(c), axs = ax.span(c),
                               ays = ay.span(c), azs = az.span(c);
            auto ld = [&](char what, size_t i) -> double {
              switch (what) {
                case 'x': return comx[i];
                case 'y': return comy[i];
                case 'z': return comz[i];
                case 'm': return mass[i];
                default: return half[i];
              }
            };
            auto li = [&](char what, size_t i) -> int32_t {
              return what == 'b' ? body[i] : child[i];
            };
            for (int64_t b = lo; b < hi; ++b) {
              size_t bi = static_cast<size_t>(b);
              double a[3];
              accel_on(static_cast<int>(b), pxs[bi], pys[bi], pzs[bi],
                       p.theta, ld, li, t.size(), a);
              axs[bi] = a[0];
              ays[bi] = a[1];
              azs[bi] = a[2];
              c.check_point();
            }
          });
      SharedSpan<double> pxs = px.span(ctx), pys = py.span(ctx),
                         pzs = pz.span(ctx), vxs = vx.span(ctx),
                         vys = vy.span(ctx), vzs = vz.span(ctx),
                         axs = ax.span(ctx), ays = ay.span(ctx),
                         azs = az.span(ctx);
      for (size_t i = 0; i < n; ++i) {
        double nvx = vxs[i] + p.dt * axs[i];
        double nvy = vys[i] + p.dt * ays[i];
        double nvz = vzs[i] + p.dt * azs[i];
        vxs[i] = nvx;
        vys[i] = nvy;
        vzs[i] = nvz;
        pxs[i] += p.dt * nvx;
        pys[i] += p.dt * nvy;
        pzs[i] += p.dt * nvz;
      }
    }
  });
  double secs = sw.elapsed_sec();
  return SpecRun{checksum_bodies(px.data(), py.data(), pz.data(), n), secs,
                 stats};
}

}  // namespace mutls::workloads
