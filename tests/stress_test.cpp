// Stress and property tests across the runtime + API stack: randomized
// speculation trees checked against a sequential model, buffered-view
// semantics against a reference memory model, nested loop drivers, and
// the statistics identities used by the figures.
#include <gtest/gtest.h>

#include <map>

#include "mutls/mutls.h"
#include "support/prng.h"
#include "tests/backend_param.h"

namespace mutls {
namespace {

// --- SpecBuffer semantics vs a byte-level reference model ---------------
//
// Parameterized over (backend, seed): the buffered-view contract is
// backend-independent, so every backend must agree with the same model.

class BufferSemantics
    : public ::testing::TestWithParam<std::tuple<BufferBackend, int>> {};

TEST_P(BufferSemantics, SpeculativeViewMatchesReferenceModel) {
  // Random interleavings of speculative loads/stores of mixed sizes must
  // always observe: own writes first, then the initial memory image.
  auto [backend, seed] = GetParam();
  Xorshift64 rng(static_cast<uint64_t>(seed) * 7919 + 3);
  alignas(8) static uint8_t arena[512];
  for (size_t i = 0; i < sizeof(arena); ++i) {
    arena[i] = static_cast<uint8_t>(rng.next());
  }
  std::map<size_t, uint8_t> spec_view;  // offset -> speculatively written

  SpecBuffer buf;
  buf.init(backend, 8, 128);
  for (int op = 0; op < 500; ++op) {
    size_t sizes[] = {1, 2, 4, 8, 16};
    size_t size = sizes[rng.next_below(5)];
    size_t off = rng.next_below(sizeof(arena) - size);
    uintptr_t addr = reinterpret_cast<uintptr_t>(arena) + off;
    if (rng.bernoulli(0.5)) {
      uint8_t data[16];
      for (size_t i = 0; i < size; ++i) {
        data[i] = static_cast<uint8_t>(rng.next());
        spec_view[off + i] = data[i];
      }
      buf.store_bytes(addr, data, size);
    } else {
      uint8_t out[16];
      buf.load_bytes(addr, out, size);
      for (size_t i = 0; i < size; ++i) {
        auto it = spec_view.find(off + i);
        uint8_t expect = it != spec_view.end() ? it->second : arena[off + i];
        ASSERT_EQ(out[i], expect)
            << "op " << op << " offset " << off + i << " size " << size;
      }
    }
    ASSERT_FALSE(buf.doomed());
  }
  // Nothing wrote main memory; validation must pass; commit must publish
  // exactly the spec view.
  EXPECT_TRUE(buf.validate_against_memory());
  buf.commit_to_memory();
  for (const auto& [off, val] : spec_view) {
    EXPECT_EQ(arena[off], val);
  }
}

INSTANTIATE_TEST_SUITE_P(
    BackendsAndSeeds, BufferSemantics,
    ::testing::Combine(::testing::Values(BufferBackend::kStaticHash,
                                         BufferBackend::kGrowableLog,
                                         BufferBackend::kAdaptive,
                                         BufferBackend::kNumaSharded),
                       ::testing::Range(1, 9)),
    [](const ::testing::TestParamInfo<std::tuple<BufferBackend, int>>& info) {
      return backend_camel_name(std::get<0>(info.param)) + "Seed" +
             std::to_string(std::get<1>(info.param));
    });

// --- randomized speculation trees vs sequential execution ---------------

struct TreeCase {
  int cpus;
  double rollback_p;
  int buffer_log2;
  uint64_t seed;
};

class SpecTreeStress
    : public ::testing::TestWithParam<std::tuple<BufferBackend, TreeCase>> {};

// Recursively computes values into `out` using nested speculation with a
// deterministic shape drawn from `seed`; the sequential model is the same
// recursion without speculation.
void tree_work(Runtime& rt, Ctx& ctx, uint64_t* out, size_t lo, size_t hi,
               uint64_t salt, int depth) {
  if (hi - lo <= 2 || depth >= 4) {
    for (size_t i = lo; i < hi; ++i) {
      uint64_t v = salt ^ (i * 0x9e3779b97f4a7c15ull);
      v ^= v >> 29;
      ctx.store(&out[i], v);
    }
    return;
  }
  size_t mid = lo + (hi - lo) / 2;
  Spec s = rt.fork(ctx, ForkModel::kMixed, [&, mid, hi, salt, depth](Ctx& c) {
    tree_work(rt, c, out, mid, hi, salt * 31 + 7, depth + 1);
  });
  tree_work(rt, ctx, out, lo, mid, salt * 17 + 3, depth + 1);
  rt.join(ctx, s);
}

void tree_model(std::vector<uint64_t>& out, size_t lo, size_t hi,
                uint64_t salt, int depth) {
  if (hi - lo <= 2 || depth >= 4) {
    for (size_t i = lo; i < hi; ++i) {
      uint64_t v = salt ^ (i * 0x9e3779b97f4a7c15ull);
      v ^= v >> 29;
      out[i] = v;
    }
    return;
  }
  size_t mid = lo + (hi - lo) / 2;
  tree_model(out, mid, hi, salt * 31 + 7, depth + 1);
  tree_model(out, lo, mid, salt * 17 + 3, depth + 1);
}

TEST_P(SpecTreeStress, TreeSpeculationMatchesSequentialModel) {
  const auto& [backend, tc] = GetParam();
  Runtime::Options o;
  o.num_cpus = tc.cpus;
  o.buffer_log2 = tc.buffer_log2;
  o.overflow_cap = 32;
  o.buffer_backend = backend;
  o.rollback_probability = tc.rollback_p;
  o.seed = tc.seed;
  Runtime rt(o);

  constexpr size_t kN = 96;
  SharedArray<uint64_t> out(rt, kN, 0);
  for (int round = 0; round < 3; ++round) {
    uint64_t salt = tc.seed * 1000 + static_cast<uint64_t>(round);
    rt.run([&](Ctx& ctx) { tree_work(rt, ctx, out.data(), 0, kN, salt, 0); });
    std::vector<uint64_t> expect(kN);
    tree_model(expect, 0, kN, salt, 0);
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(out[i], expect[i]) << "round " << round << " index " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SpecTreeStress,
    ::testing::Combine(
        ::testing::Values(BufferBackend::kStaticHash,
                          BufferBackend::kGrowableLog,
                          BufferBackend::kAdaptive,
                          BufferBackend::kNumaSharded),
        ::testing::Values(TreeCase{1, 0.0, 10, 1}, TreeCase{2, 0.0, 10, 2},
                          TreeCase{4, 0.0, 10, 3}, TreeCase{4, 0.3, 10, 4},
                          TreeCase{2, 1.0, 10, 5}, TreeCase{4, 0.1, 4, 6},
                          TreeCase{8, 0.05, 8, 7})),
    [](const ::testing::TestParamInfo<std::tuple<BufferBackend, TreeCase>>&
           info) {
      return backend_camel_name(std::get<0>(info.param)) + "Case" +
             std::to_string(std::get<1>(info.param).seed);
    });

// --- growable-log backend: resize while the speculation is live ----------

TEST(GrowableLogUnderSpeculation, ResizesMidSpeculationAndCommits) {
  // A footprint far beyond the initial table forces index resizes *during*
  // the speculative task; with the static hash this exact configuration
  // would doom every speculation (bounded overflow), so commits prove the
  // resize path end to end: buffered view across rehashes, validation,
  // commit, and the stats plumbing.
  constexpr size_t kN = 2048;  // >> 2^4 initial slots
  Runtime rt({.num_cpus = 2,
              .buffer_log2 = 4,
              .overflow_cap = 8,
              .buffer_backend = BufferBackend::kGrowableLog});
  SharedArray<uint64_t> data(rt, kN, 0);
  RunStats rs = rt.run([&](Ctx& ctx) {
    Spec s = rt.fork(ctx, ForkModel::kMixed, [&](Ctx& c) {
      for (size_t i = 0; i < kN; ++i) {
        // Read-modify-write: stresses read-set and write-set growth.
        c.store(&data[i], c.load(&data[i]) + i);
      }
    });
    rt.join(ctx, s);
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(data[i], i) << "value lost across a mid-speculation resize";
  }
  EXPECT_EQ(rs.speculative.commits, 1u);
  EXPECT_EQ(rs.speculative.rollbacks, 0u);
  EXPECT_EQ(rs.speculative.buffer.overflow_events, 0u);
  EXPECT_GT(rs.speculative.buffer.resize_events, 0u)
      << "the tiny initial table must have grown";
  EXPECT_GT(rs.speculative.buffer.probe_ops, 0u);
}

TEST(GrowableLogUnderSpeculation, NestedMergeIntoGrowingJoiner) {
  // Tree-form nesting where the *joiner's* buffer must grow while adopting
  // a large child commit (merge-driven resize, not access-driven).
  constexpr size_t kN = 512;
  Runtime rt({.num_cpus = 2,
              .buffer_log2 = 4,
              .overflow_cap = 8,
              .buffer_backend = BufferBackend::kGrowableLog});
  SharedArray<uint64_t> data(rt, kN, 0);
  RunStats rs = rt.run([&](Ctx& ctx) {
    Spec outer = rt.fork(ctx, ForkModel::kMixed, [&](Ctx& c) {
      Spec inner = rt.fork(c, ForkModel::kMixed, [&](Ctx& cc) {
        for (size_t i = kN / 2; i < kN; ++i) {
          cc.store(&data[i], uint64_t{i} * 2);
        }
      });
      for (size_t i = 0; i < kN / 2; ++i) {
        c.store(&data[i], uint64_t{i} * 2);
      }
      rt.join(c, inner);  // speculative joiner: merge_into path
    });
    rt.join(ctx, outer);
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(data[i], i * 2);
  }
  EXPECT_GE(rs.speculative.commits, 1u);
  EXPECT_EQ(rs.speculative.buffer.overflow_events, 0u);
  EXPECT_GT(rs.speculative.buffer.resize_events, 0u);
}

// --- nested loop driver ---------------------------------------------------

TEST(SpecForNested, MatchesAdoptionDriverResults) {
  for (ForkModel m : {ForkModel::kInOrder, ForkModel::kMixed}) {
    Runtime rt({.num_cpus = 2, .buffer_log2 = 12});
    SharedArray<uint64_t> a(rt, 16, 0), b(rt, 16, 0);
    rt.run([&](Ctx& ctx) {
      spec_for(rt, ctx, 0, 160, 16, m,
               [&](Ctx& c, int chunk, int64_t lo, int64_t hi) {
                 uint64_t s = 0;
                 for (int64_t i = lo; i < hi; ++i) s += static_cast<uint64_t>(i * i);
                 c.store(&a[static_cast<size_t>(chunk)], s);
               });
    });
    rt.run([&](Ctx& ctx) {
      spec_for_nested(rt, ctx, 0, 160, 16, m,
                      [&](Ctx& c, int chunk, int64_t lo, int64_t hi) {
                        uint64_t s = 0;
                        for (int64_t i = lo; i < hi; ++i) {
                          s += static_cast<uint64_t>(i * i);
                        }
                        c.store(&b[static_cast<size_t>(chunk)], s);
                      });
    });
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i]) << fork_model_name(m) << " chunk " << i;
    }
  }
}

TEST(SpecForNested, InsideSpeculativeRegion) {
  // A speculated region may itself run a nested loop driver (mixed model:
  // speculative threads fork).
  Runtime rt({.num_cpus = 4, .buffer_log2 = 12});
  SharedArray<uint64_t> out(rt, 8, 0);
  rt.run([&](Ctx& ctx) {
    Spec s = rt.fork(ctx, ForkModel::kMixed, [&](Ctx& c) {
      spec_for_nested(rt, c, 0, 8, 4, ForkModel::kMixed,
                      [&](Ctx& cc, int, int64_t lo, int64_t hi) {
                        for (int64_t i = lo; i < hi; ++i) {
                          cc.store(&out[static_cast<size_t>(i)],
                                   static_cast<uint64_t>(i + 100));
                        }
                      });
    });
    rt.join(ctx, s);
  });
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], i + 100);
  }
}

// --- statistics identities -----------------------------------------------

TEST(StatsIdentities, MetricsAreConsistent) {
  Runtime rt({.num_cpus = 2, .buffer_log2 = 12});
  SharedArray<uint64_t> data(rt, 64, 0);
  RunStats rs = rt.run([&](Ctx& ctx) {
    spec_for(rt, ctx, 0, 640, 8, ForkModel::kMixed,
             [&](Ctx& c, int chunk, int64_t lo, int64_t hi) {
               uint64_t s = 0;
               for (int64_t i = lo; i < hi; ++i) {
                 s += static_cast<uint64_t>(i) * 3;
               }
               c.store(&data[static_cast<size_t>(chunk)], s);
             });
  });
  // Efficiencies are fractions of runtime.
  EXPECT_GE(rs.critical_efficiency(), 0.0);
  EXPECT_LE(rs.critical_efficiency(), 1.0 + 1e-9);
  EXPECT_GE(rs.speculative_efficiency(), 0.0);
  EXPECT_LE(rs.speculative_efficiency(), 1.0 + 1e-9);
  // Coverage = spec runtime / critical runtime, both measured here.
  EXPECT_NEAR(rs.coverage(),
              static_cast<double>(rs.speculative.runtime_ns) /
                  static_cast<double>(rs.critical.runtime_ns),
              1e-12);
  // Power efficiency with Ts == critical runtime is coverage-bounded.
  double pe = rs.power_efficiency(rs.critical.runtime_ns);
  EXPECT_GT(pe, 0.0);
  EXPECT_LE(pe, 1.0 + 1e-9);
  // The ledger never exceeds the runtime it partitions.
  EXPECT_LE(rs.critical.ledger.total(), rs.critical.runtime_ns * 1.01 + 1000);
}

TEST(StatsIdentities, RepeatedRunsResetCleanly) {
  Runtime rt({.num_cpus = 2, .buffer_log2 = 10});
  SharedArray<uint64_t> x(rt, 1, 0);
  for (int i = 0; i < 3; ++i) {
    RunStats rs = rt.run([&](Ctx& ctx) {
      Spec s = rt.fork(ctx, ForkModel::kMixed,
                       [&](Ctx& c) { c.add(&x[0], uint64_t{1}); });
      rt.join(ctx, s);
    });
    EXPECT_LE(rs.speculative_threads, 1u) << "stats must reset per run";
  }
  EXPECT_EQ(x[0], 3u);
}

// --- repeated heavy churn: CPU slots, buffers, epochs ---------------------

TEST(Churn, ThousandsOfSpeculationsReuseSlotsSafely) {
  Runtime rt({.num_cpus = 2, .buffer_log2 = 8});
  SharedArray<uint64_t> cell(rt, 4, 0);
  rt.run([&](Ctx& ctx) {
    for (int i = 0; i < 2000; ++i) {
      Spec s = rt.fork(ctx, ForkModel::kMixed, [&, i](Ctx& c) {
        c.store(&cell[static_cast<size_t>(i % 4)],
                static_cast<uint64_t>(i));
      });
      rt.join(ctx, s);
    }
  });
  EXPECT_EQ(cell[3], 1999u);
  RunStats rs = rt.manager().collect_stats();
  EXPECT_EQ(rs.speculative.rollbacks, 0u);
}

}  // namespace
}  // namespace mutls
