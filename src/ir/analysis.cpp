// CFG, dominator and liveness analyses used by the verifier and by the
// speculator pass (live locals at synchronization blocks, paper IV-C
// step (4)).
#include <algorithm>

#include "ir/ir.h"

namespace mutls::ir {

Cfg build_cfg(const Function& f) {
  Cfg cfg;
  cfg.succ.resize(f.blocks.size());
  cfg.pred.resize(f.blocks.size());
  for (uint32_t b = 0; b < f.blocks.size(); ++b) {
    const Instr& t = f.blocks[b].terminator();
    if (t.op == Op::kBr || t.op == Op::kCondBr) {
      for (uint32_t s : t.blocks) {
        cfg.succ[b].push_back(s);
        cfg.pred[s].push_back(b);
      }
    }
  }
  return cfg;
}

std::vector<uint32_t> compute_idom(const Function& f, const Cfg& cfg) {
  // Cooper-Harvey-Kennedy iterative dominators over a reverse post-order.
  const size_t n = f.blocks.size();
  std::vector<uint32_t> rpo;
  std::vector<bool> seen(n, false);
  std::vector<std::pair<uint32_t, size_t>> stack;
  stack.emplace_back(0, 0);
  seen[0] = true;
  std::vector<uint32_t> post;
  while (!stack.empty()) {
    auto& [b, i] = stack.back();
    if (i < cfg.succ[b].size()) {
      uint32_t s = cfg.succ[b][i++];
      if (!seen[s]) {
        seen[s] = true;
        stack.emplace_back(s, 0);
      }
    } else {
      post.push_back(b);
      stack.pop_back();
    }
  }
  rpo.assign(post.rbegin(), post.rend());
  std::vector<uint32_t> rpo_index(n, 0);
  for (uint32_t i = 0; i < rpo.size(); ++i) rpo_index[rpo[i]] = i;

  constexpr uint32_t kUndef = ~0u;
  std::vector<uint32_t> idom(n, kUndef);
  idom[0] = 0;
  auto intersect = [&](uint32_t a, uint32_t b) {
    while (a != b) {
      while (rpo_index[a] > rpo_index[b]) a = idom[a];
      while (rpo_index[b] > rpo_index[a]) b = idom[b];
    }
    return a;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (uint32_t b : rpo) {
      if (b == 0) continue;
      uint32_t new_idom = kUndef;
      for (uint32_t p : cfg.pred[b]) {
        if (idom[p] == kUndef) continue;
        new_idom = new_idom == kUndef ? p : intersect(new_idom, p);
      }
      if (new_idom != kUndef && idom[b] != new_idom) {
        idom[b] = new_idom;
        changed = true;
      }
    }
  }
  // Unreachable blocks dominate themselves (kept out of verification).
  for (uint32_t b = 0; b < n; ++b) {
    if (idom[b] == kUndef) idom[b] = b;
  }
  return idom;
}

std::vector<std::vector<bool>> compute_live_in(const Function& f) {
  const size_t n = f.blocks.size();
  Cfg cfg = build_cfg(f);
  std::vector<std::vector<bool>> live_in(n,
                                         std::vector<bool>(f.value_count));
  std::vector<std::vector<bool>> live_out(n,
                                          std::vector<bool>(f.value_count));
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t bi = n; bi-- > 0;) {
      uint32_t b = static_cast<uint32_t>(bi);
      // live_out = union of successors' live_in, with phi adjustments:
      // a phi use is live only on the edge from its predecessor.
      std::vector<bool> out(f.value_count, false);
      for (uint32_t s : cfg.succ[b]) {
        for (ValueId v = 1; v < f.value_count; ++v) {
          if (live_in[s][v]) out[v] = true;
        }
        // Remove phi results of s (defined there), add phi args from b.
        for (const Instr& in : f.blocks[s].instrs) {
          if (in.op != Op::kPhi) break;
          out[in.result] = false;
        }
        for (const Instr& in : f.blocks[s].instrs) {
          if (in.op != Op::kPhi) break;
          for (size_t i = 0; i < in.args.size(); ++i) {
            if (in.blocks[i] == b && in.args[i] != kNoValue) {
              out[in.args[i]] = true;
            }
          }
        }
      }
      live_out[b] = out;
      // live_in = (live_out - defs) + uses, scanned backwards.
      std::vector<bool> in_set = out;
      const Block& blk = f.blocks[b];
      for (size_t ii = blk.instrs.size(); ii-- > 0;) {
        const Instr& in = blk.instrs[ii];
        if (in.result != kNoValue) in_set[in.result] = false;
        if (in.op == Op::kPhi) continue;  // phi uses live on edges only
        for (ValueId a : in.args) {
          if (a != kNoValue) in_set[a] = true;
        }
      }
      if (in_set != live_in[b]) {
        live_in[b] = std::move(in_set);
        changed = true;
      }
    }
  }
  return live_in;
}

std::vector<uint32_t> loop_headers(const Function& f) {
  std::vector<bool> header(f.blocks.size(), false);
  for (uint32_t b = 0; b < f.blocks.size(); ++b) {
    for (const Instr& in : f.blocks[b].instrs) {
      if (in.op != Op::kBr && in.op != Op::kCondBr) continue;
      for (uint32_t t : in.blocks) {
        if (t <= b) header[t] = true;
      }
    }
  }
  std::vector<uint32_t> out;
  for (uint32_t b = 0; b < f.blocks.size(); ++b) {
    if (header[b]) out.push_back(b);
  }
  return out;
}

std::vector<bool> live_at(const Function& f,
                          const std::vector<std::vector<bool>>& live_in,
                          uint32_t block, uint32_t instr) {
  Cfg cfg = build_cfg(f);
  // live_out(block): union of successors' live_in with phi adjustment.
  std::vector<bool> cur(f.value_count, false);
  for (uint32_t s : cfg.succ[block]) {
    for (ValueId v = 1; v < f.value_count; ++v) {
      if (live_in[s][v]) cur[v] = true;
    }
    for (const Instr& in : f.blocks[s].instrs) {
      if (in.op != Op::kPhi) break;
      cur[in.result] = false;
    }
    for (const Instr& in : f.blocks[s].instrs) {
      if (in.op != Op::kPhi) break;
      for (size_t i = 0; i < in.args.size(); ++i) {
        if (in.blocks[i] == block && in.args[i] != kNoValue) {
          cur[in.args[i]] = true;
        }
      }
    }
  }
  const Block& blk = f.blocks[block];
  for (size_t ii = blk.instrs.size(); ii-- > instr;) {
    const Instr& in = blk.instrs[ii];
    if (in.result != kNoValue) cur[in.result] = false;
    if (in.op == Op::kPhi) continue;
    for (ValueId a : in.args) {
      if (a != kNoValue) cur[a] = true;
    }
  }
  return cur;
}

}  // namespace mutls::ir
