// Unit tests for the static hash map underlying the read/write sets
// (paper IV-G2): single-slot hashing, offsets stack, overflow buffer.
#include <gtest/gtest.h>

#include <vector>

#include "runtime/global_buffer.h"

namespace mutls {
namespace {

// Word addresses that collide in a map of 2^4 entries: the slot index is
// (addr >> 3) & 15, so addresses 8*k and 8*(k+16) collide.
constexpr uintptr_t kA = 0x10000;
constexpr uintptr_t kColliding = kA + 16 * 8;

TEST(BufferMap, InsertThenFind) {
  BufferMap m;
  m.init(4, 4, /*with_marks=*/true);
  BufferMap::Slot s;
  EXPECT_EQ(m.find_or_insert(kA, s), BufferMap::Find::kInserted);
  *s.data = 0xdeadbeef;
  *s.mark = 0xff;
  BufferMap::Slot t;
  ASSERT_TRUE(m.find(kA, t));
  EXPECT_EQ(*t.data, 0xdeadbeefu);
  EXPECT_EQ(*t.mark, 0xffu);
  EXPECT_EQ(m.find_or_insert(kA, t), BufferMap::Find::kFound);
}

TEST(BufferMap, MissingAddressNotFound) {
  BufferMap m;
  m.init(4, 4, false);
  BufferMap::Slot s;
  EXPECT_FALSE(m.find(kA, s));
}

TEST(BufferMap, InsertZeroesSlot) {
  BufferMap m;
  m.init(4, 4, true);
  BufferMap::Slot s;
  m.find_or_insert(kA, s);
  EXPECT_EQ(*s.data, 0u);
  EXPECT_EQ(*s.mark, 0u);
}

TEST(BufferMap, CollisionGoesToOverflow) {
  BufferMap m;
  m.init(4, 4, true);
  BufferMap::Slot s1, s2;
  EXPECT_EQ(m.find_or_insert(kA, s1), BufferMap::Find::kInserted);
  EXPECT_EQ(m.find_or_insert(kColliding, s2), BufferMap::Find::kInserted);
  EXPECT_EQ(m.overflow_count(), 1u);
  *s1.data = 1;
  *s2.data = 2;
  BufferMap::Slot t;
  ASSERT_TRUE(m.find(kA, t));
  EXPECT_EQ(*t.data, 1u);
  ASSERT_TRUE(m.find(kColliding, t));
  EXPECT_EQ(*t.data, 2u);
}

TEST(BufferMap, OverflowCapExhaustionReportsFull) {
  BufferMap m;
  m.init(4, 2, true);  // only two overflow entries
  BufferMap::Slot s;
  EXPECT_EQ(m.find_or_insert(kA, s), BufferMap::Find::kInserted);
  EXPECT_EQ(m.find_or_insert(kA + 16 * 8, s), BufferMap::Find::kInserted);
  EXPECT_EQ(m.find_or_insert(kA + 32 * 8, s), BufferMap::Find::kInserted);
  EXPECT_EQ(m.find_or_insert(kA + 48 * 8, s), BufferMap::Find::kFull);
  // Existing overflow entries stay findable.
  EXPECT_TRUE(m.find(kA + 16 * 8, s));
  EXPECT_TRUE(m.find(kA + 32 * 8, s));
  EXPECT_FALSE(m.find(kA + 48 * 8, s));
}

TEST(BufferMap, ForEachVisitsMainAndOverflowEntries) {
  BufferMap m;
  m.init(4, 4, true);
  BufferMap::Slot s;
  m.find_or_insert(kA, s);
  *s.data = 10;
  m.find_or_insert(kA + 8, s);
  *s.data = 20;
  m.find_or_insert(kColliding, s);  // overflow
  *s.data = 30;

  std::vector<std::pair<uintptr_t, uint64_t>> seen;
  m.for_each([&](uintptr_t a, uint64_t& d, uint64_t&) {
    seen.emplace_back(a, d);
  });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(m.entry_count(), 3u);
}

TEST(BufferMap, ClearEmptiesInEntryTime) {
  BufferMap m;
  m.init(4, 4, true);
  BufferMap::Slot s;
  m.find_or_insert(kA, s);
  m.find_or_insert(kColliding, s);
  m.clear();
  EXPECT_EQ(m.entry_count(), 0u);
  EXPECT_FALSE(m.find(kA, s));
  EXPECT_FALSE(m.find(kColliding, s));
  // Reusable after clear.
  EXPECT_EQ(m.find_or_insert(kA, s), BufferMap::Find::kInserted);
}

TEST(BufferMap, MarklessMapHasNullMark) {
  BufferMap m;
  m.init(4, 4, /*with_marks=*/false);
  BufferMap::Slot s;
  m.find_or_insert(kA, s);
  EXPECT_EQ(s.mark, nullptr);
  // for_each presents the dummy full mark for mark-less maps.
  m.for_each([&](uintptr_t, uint64_t&, uint64_t& mark) {
    EXPECT_EQ(mark, kFullMark);
  });
}

// Property: a BufferMap with ample overflow must behave like a
// std::unordered_map over random word addresses.
class BufferMapProperty : public ::testing::TestWithParam<int> {};

TEST_P(BufferMapProperty, AgreesWithHashMapModel) {
  BufferMap m;
  m.init(6, 512, true);
  std::unordered_map<uintptr_t, uint64_t> model;

  uint64_t state = static_cast<uint64_t>(GetParam()) * 2654435761u + 99;
  auto rnd = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };

  for (int i = 0; i < 400; ++i) {
    uintptr_t addr = 0x40000 + (rnd() % 256) * 8;
    uint64_t val = rnd();
    BufferMap::Slot s;
    auto r = m.find_or_insert(addr, s);
    ASSERT_NE(r, BufferMap::Find::kFull);
    *s.data = val;
    model[addr] = val;
  }
  EXPECT_EQ(m.entry_count(), model.size());
  for (const auto& [addr, val] : model) {
    BufferMap::Slot s;
    ASSERT_TRUE(m.find(addr, s)) << std::hex << addr;
    EXPECT_EQ(*s.data, val);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BufferMapProperty, ::testing::Range(1, 7));

}  // namespace
}  // namespace mutls
