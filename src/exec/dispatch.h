// Predecoded direct-threaded dispatch (ROADMAP item 5, tier (a) of the
// execution engine).
//
// At module load every function's instruction stream is predecoded into a
// flat, cache-friendly DecodedInstr array: one 64-byte record per IR
// instruction carrying a function-pointer handler specialized at decode
// time (per op x type x predicate), resolved operand slots, pre-truncation
// masks / sign-extension shifts, pre-converted constants, pre-resolved
// global addresses and callees, and branch targets as flat instruction
// indices. Execution is then a tight loop over the handler table —
//
//   while (running) { const DecodedInstr& di = code[ip]; di.handler(st, di); }
//
// — with none of the per-op switch chains (trunc_to / sext_of / predicate
// dispatch) the interpreter's oracle pays on every instruction.
//
// Decode also precomputes everything the speculation protocol needs on the
// execution path: per-fork-point join positions and live-in validation
// sets (one liveness pass per function at load — the interpreter's lazy
// mutex-guarded live_cache_ is gone), and the region table of loop headers
// (back-edge targets) that powers the region profiler (exec/profile.h) and
// the native-compilation seam (exec/compiled_region.h).
//
// Positions visible to the speculation protocol (stop states, resume
// points, fork bookkeeping) stay in original (block, instr) coordinates so
// every dispatch tier interoperates with every other.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/compiled_region.h"
#include "exec/frame.h"
#include "ir/ir.h"

namespace mutls::exec {

// How the engine executes decoded code. kSwitch is the interpreter's
// original per-op switch loop, retained as the semantic oracle and
// fallback; kDirectThreaded is the handler-table dispatcher;
// kCompiledRegion additionally transfers control to registered native
// region bodies (see exec/compiled_region.h).
enum class DispatchMode : uint8_t {
  kSwitch = 0,
  kDirectThreaded = 1,
  kCompiledRegion = 2,
};

inline const char* dispatch_mode_name(DispatchMode m) {
  switch (m) {
    case DispatchMode::kSwitch: return "switch";
    case DispatchMode::kDirectThreaded: return "direct-threaded";
    case DispatchMode::kCompiledRegion: return "compiled-region";
  }
  return "?";
}

// Engine knobs of an embedding's options struct, mapped through
// engine_config_from below (the manager_config_from discipline: one
// mapping, next to the config it produces).
struct EngineConfig {
  DispatchMode dispatch_mode = DispatchMode::kDirectThreaded;
};

template <typename Opts>
EngineConfig engine_config_from(const Opts& opt) {
  EngineConfig c;
  c.dispatch_mode = opt.dispatch_mode;
  return c;
}

struct ExecState;
struct DecodedInstr;
using Handler = void (*)(ExecState&, const DecodedInstr&);

// Edge metadata packed per branch target: 0 = plain forward edge into a
// non-header block; otherwise the low 30 bits hold (region index + 1) of
// the target loop header and bit 31 marks a back edge (check point).
constexpr uint32_t kEdgeBack = 0x8000'0000u;
constexpr uint32_t kEdgeRegionMask = 0x3fff'ffffu;

// One predecoded instruction: a 64-byte record, handler first. For
// branches, aux packs the two edge-metadata words (e0 in the low half for
// t0, e1 in the high half for t1).
struct DecodedInstr {
  Handler handler = nullptr;
  uint32_t a = 0, b = 0, c = 0;  // operand value ids / arg-pool off+len
  uint32_t result = 0;
  uint64_t imm = 0;  // payload: pre-converted const / mask / size / scale
  uint64_t aux = 0;  // mask / sext shift / flags / packed edge metadata
  const void* ptr = nullptr;  // global addr / callee Function* / Instr*
  uint32_t block = 0;         // original coordinates (stop states)
  uint32_t index = 0;
  uint32_t t0 = 0, t1 = 0;  // flat branch targets (taken / fallthrough)
};
static_assert(sizeof(DecodedInstr) == 64, "one cache line per instruction");

// Precomputed join position + live-in validation set of one fork point
// (paper IV-G4), computed once at decode from the function's liveness.
struct ForkPointInfo {
  uint32_t join_block = 0;
  uint32_t join_instr = 0;  // position just after the mutls.join
  std::vector<ir::ValueId> validate_ids;
};

// One profiled region: a natural loop named by its header block (a
// back-edge target under the repo's block-ordering discipline). `heat`
// counts back-edge executions (the region profiler's one increment);
// `compiled` is the native-compilation seam consulted by branch handlers
// in DispatchMode::kCompiledRegion.
struct RegionInfo {
  uint32_t header_block = 0;
  uint32_t last_latch = 0;  // highest-index back-edge source (loop extent)
  std::string label;        // header block label
  std::atomic<uint64_t> heat{0};
  std::atomic<CompiledFn> compiled{nullptr};
};

struct DecodedFunction {
  const ir::Function* fn = nullptr;
  std::vector<DecodedInstr> code;     // all blocks, concatenated in order
  std::vector<uint32_t> block_start;  // flat index of each block's first
  std::vector<ir::ValueId> arg_pool;  // call argument lists
  std::vector<std::unique_ptr<RegionInfo>> regions;
  std::unordered_map<int64_t, ForkPointInfo> fork_points;

  uint32_t flat_ip(uint32_t block, uint32_t instr) const {
    MUTLS_DCHECK(block < block_start.size(), "flat_ip: block out of range");
    return block_start[block] + instr;
  }
  // Region index of a header block, or -1.
  int region_of(uint32_t header_block) const {
    for (size_t i = 0; i < regions.size(); ++i) {
      if (regions[i]->header_block == header_block) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }
};

// Host services the dispatcher calls back into for the cold, protocol-
// heavy ops (fork/join, nested calls, externals). Implemented by the
// interpreter; everything hot (arithmetic, memory, branches, stops) is
// handled inside the engine.
class ExecHost {
 public:
  virtual ~ExecHost() = default;
  virtual void host_fork(ExecState& st, const ir::Instr& in) = 0;
  // Returns true when the joiner must resume from a committed child's
  // position (out params set, original coordinates).
  virtual bool host_join(ExecState& st, int64_t point, uint32_t* rblock,
                         uint32_t* rinstr) = 0;
  virtual uint64_t host_call(ExecState& st, const ir::Function& callee,
                             const uint64_t* args, size_t n) = 0;
  virtual uint64_t host_external(ExecState& st, const ir::Instr& in) = 0;
};

// Mutable state of one direct-threaded activation.
struct ExecState {
  const DecodedFunction* df = nullptr;
  const DecodedInstr* code = nullptr;
  uint64_t* regs = nullptr;
  Frame* fr = nullptr;
  ThreadData* td = nullptr;
  ThreadManager* mgr = nullptr;
  ExecHost* host = nullptr;
  StopState* stop = nullptr;
  uint32_t ip = 0;
  uint32_t prev_block = 0;  // phi resolution
  bool track = false;       // speculative-entry def/use bookkeeping
  bool use_compiled = false;
  enum class Exit : uint8_t { kRunning, kReturn, kStopped } exit =
      Exit::kRunning;
  uint64_t ret = 0;
};

// The whole-module decode artifact. Built once at load (after globals are
// allocated, so addresses resolve); shared by every thread — the only
// mutable fields are the per-region atomics.
class DecodedModule {
 public:
  // `global_addr` resolves a global symbol to its host address.
  DecodedModule(const ir::Module& m,
                const std::function<void*(const std::string&)>& global_addr);

  const DecodedFunction& decoded(const ir::Function& f) const {
    auto it = fns_.find(&f);
    MUTLS_CHECK(it != fns_.end(), "function was not decoded");
    return *it->second;
  }

  // Installs a native body on (function, header label). Returns false when
  // the function or header is unknown; CHECK-fails when the region is not
  // eligible (contains forks/joins/barriers/calls — see
  // exec/compiled_region.h).
  bool register_compiled(const std::string& function,
                         const std::string& header_label, CompiledFn body);

  // Profiler access (see exec/profile.h for the snapshot shape).
  template <typename Fn>
  void for_each_region(Fn&& visit) const {
    for (const auto& [f, df] : fns_) {
      for (const auto& r : df->regions) visit(*df, *r);
    }
  }
  void reset_heat();

 private:
  std::unordered_map<const ir::Function*, std::unique_ptr<DecodedFunction>>
      fns_;
};

// Runs decoded code from st.ip until return or stop. Returns the ret value
// (0 when the frame stopped; st.exit tells which).
uint64_t run(ExecState& st);

}  // namespace mutls::exec
