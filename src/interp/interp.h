// IR interpreter with integrated thread-level speculation.
//
// Executes the mini-IR of src/ir/ against host memory through the MUTLS
// runtime. The mutls.fork / mutls.join / mutls.barrier intrinsics behave as
// the paper's transformed code does:
//
//  * mutls.fork p, model — MUTLS_get_CPU + save live locals + speculate: a
//    child thread starts executing from the instruction after the matching
//    mutls.join p with a snapshot of the forker's registers (value
//    prediction, paper IV-G4). Register reads that precede any child-side
//    definition are recorded and validated against the joiner's registers
//    at the join (validate_local).
//  * Speculative loads/stores go through the thread's SpecBuffer (any
//    configured backend); wild addresses, capacity doom and abort signals
//    doom the speculation.
//  * A speculative thread stops at its barrier point (mutls.barrier p), at
//    a return point (before ret of its entry function), at a terminate
//    point (before an external call), or at a check point (loop back edge)
//    once SYNC has been signalled. Its stop position + registers + fork
//    bookkeeping are deposited for the joiner.
//  * mutls.join p — MUTLS_validate_local + MUTLS_synchronize. On commit the
//    joiner *resumes from the child's stop position* with the child's
//    registers (the paper's synchronization-table mechanism), adopting the
//    child's children. On rollback it simply continues after the join
//    point, re-executing the region, exactly like the transformed
//    non-speculative code.
//
// Restrictions relative to the paper (documented in DESIGN.md): stop
// positions are taken only in the speculative entry frame, so the
// stack-frame reconstruction walk of section IV-H is not needed at
// runtime; nested calls run speculatively but stop points inside them
// degrade to rollback.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/ir.h"
#include "runtime/thread_manager.h"

namespace mutls::interp {

class Interpreter {
 public:
  struct Options {
    int num_cpus = 4;
    int buffer_log2 = 14;
    size_t overflow_cap = 4096;
    // Speculative-buffer backend of every virtual CPU (SpecBuffer API),
    // plus the kAdaptive flip knobs (ignored by the other backends).
    BufferBackend buffer_backend = BufferBackend::kStaticHash;
    uint64_t adaptive_overflow_threshold = 4;
    uint64_t adaptive_calm_hysteresis = 16;
    double rollback_probability = 0.0;
    uint64_t seed = 0x5eed;
    std::optional<ForkModel> model_override;
    // Worker handoff spin budget; 0 calibrates at first manager
    // construction (see ManagerConfig::handoff_spin_budget).
    int handoff_spin_budget = 0;
  };

  Interpreter(ir::Module module, const Options& opt);
  ~Interpreter();

  Interpreter(const Interpreter&) = delete;
  Interpreter& operator=(const Interpreter&) = delete;

  // Calls @name on the non-speculative thread. Raw 64-bit argument/return
  // encoding (floats bit-cast).
  uint64_t call(const std::string& name, std::vector<uint64_t> args = {});

  // Host address of a global, for seeding inputs and reading results.
  void* global_addr(const std::string& name);

  RunStats collect_stats() { return mgr_.collect_stats(); }
  ThreadManager& manager() { return mgr_; }

  // Captured output of the print_* external functions (testing aid).
  std::vector<int64_t> printed;

 private:
  struct ForkRec {
    ChildRef ref;
    std::vector<uint64_t> snapshot;  // registers at the fork point
    // Values to validate at the join (live-ins of the continuation,
    // paper IV-G4): snapshot[v] must equal the joiner's regs[v].
    std::vector<ir::ValueId> validate_ids;
    bool active = false;
  };

  // Why a speculative entry frame stopped.
  enum class Stop : uint8_t {
    kNone,      // ran to ret (non-speculative only)
    kBarrier,   // at mutls.barrier (resume after it)
    kRet,       // at ret (resume executing the ret)
    kTerminate, // at an external call (resume executing the call)
    kCheck,     // at a loop back edge after SYNC (resume at jump target)
  };

  // Deposited via ThreadData::user_state at a stop. Owns the entry
  // frame's allocas until a committing joiner adopts them (they are live
  // stack memory of the resumed continuation).
  struct StopState {
    Stop stop = Stop::kNone;
    uint32_t block = 0;
    uint32_t instr = 0;
    std::vector<uint64_t> regs;
    std::vector<bool> used_snapshot;
    std::unordered_map<int64_t, ForkRec> forks;  // un-joined (adopted)
    std::vector<std::pair<char*, size_t>> allocas;
    Interpreter* owner = nullptr;
    ~StopState();
  };

  struct Frame {
    const ir::Function* fn = nullptr;
    std::vector<uint64_t> regs;
    std::vector<bool> defined;        // child-side defs (snapshot tracking)
    std::vector<bool> used_snapshot;
    std::vector<std::pair<char*, size_t>> allocas;
    std::unordered_map<int64_t, ForkRec> forks;
    bool speculative_entry = false;   // polls + stop points enabled
  };

  // Executes `f` from (block, instr); fills `stop` for speculative entry
  // frames; returns the ret value otherwise.
  uint64_t exec(ThreadData& td, Frame& fr, uint32_t block, uint32_t instr,
                StopState* stop);

  uint64_t call_function(ThreadData& td, const ir::Function& f,
                         std::vector<uint64_t> args);

  uint64_t external_call(ThreadData& td, const ir::Instr& in, Frame& fr);

  void do_fork(ThreadData& td, Frame& fr, const ir::Instr& in);
  // Handles mutls.join: returns true when the joiner must resume from a
  // committed child's position (out params set).
  bool do_join(ThreadData& td, Frame& fr, int64_t point, uint32_t* rblock,
               uint32_t* rinstr);

  void load_mem(ThreadData& td, uint64_t addr, void* out, size_t n);
  void store_mem(ThreadData& td, uint64_t addr, const void* src, size_t n);
  void check_space(ThreadData& td, uint64_t addr, size_t n);

  // Finds the block/instr just after `mutls.join point` in `f`.
  std::pair<uint32_t, uint32_t> join_position(const ir::Function& f,
                                              int64_t point) const;

  // Values that must be validated for a continuation starting at
  // (block, instr): the block's live-ins plus results of the block's
  // earlier instructions (defined before the continuation entry).
  std::vector<ir::ValueId> validation_set(const ir::Function& f,
                                          uint32_t block, uint32_t instr);

  std::mutex live_mu_;
  std::unordered_map<const ir::Function*, std::vector<std::vector<bool>>>
      live_cache_;

  ir::Module module_;
  ThreadManager mgr_;
  std::unordered_map<std::string, std::unique_ptr<char[]>> globals_;
  std::mutex print_mu_;
};

}  // namespace mutls::interp
