// Address-space registration (paper section IV-G1).
//
// MUTLS registers the [start, end) span of every static and heap object so
// a speculative thread can detect wild reads/writes and roll back instead
// of faulting. Adjacent or overlapping spans are merged, as the paper
// suggests, to keep lookups fast. Registration happens at allocation sites
// (rare); containment queries happen on the speculative hot path, so the
// set is a sorted vector under a shared mutex with a per-query hint.
#pragma once

#include <cstdint>
#include <shared_mutex>
#include <vector>

namespace mutls {

class IntervalSet {
 public:
  // Registers [start, start+size). Overlapping/adjacent spans merge.
  void insert(uintptr_t start, size_t size);

  // Unregisters [start, start+size). Spans are split if the removal covers
  // an interior range (frees of suballocations in tests).
  void erase(uintptr_t start, size_t size);

  // True if [addr, addr+size) is fully covered by one registered span.
  bool contains(uintptr_t addr, size_t size) const;

  // Like contains, but also reports the covering span's bounds so callers
  // can cache them and skip the lock on subsequent hits.
  bool lookup(uintptr_t addr, size_t size, uintptr_t* lo, uintptr_t* hi) const;

  size_t span_count() const;

  // Total registered bytes.
  uint64_t total_bytes() const;

  void clear();

 private:
  struct Span {
    uintptr_t lo;
    uintptr_t hi;  // exclusive
  };

  // Index of the first span with hi > addr, under lock.
  size_t lower_bound_locked(uintptr_t addr) const;

  mutable std::shared_mutex mu_;
  std::vector<Span> spans_;  // sorted by lo, non-overlapping
};

}  // namespace mutls
