// Per-virtual-CPU arena memory (ROADMAP item: zero allocations per
// fork/join at steady state, in the spirit of lusca-cache's MemPool/MemBuf
// typed pools).
//
// Every ThreadData owns one Arena; ownership follows the slot's speculation
// protocol (fork handoff, flag barrier, settle), so the arena needs no
// locks: at any instant exactly one thread — the forker arming the slot or
// the worker running it — touches the arena, and the protocol's existing
// acquire/release edges order the accesses.
//
// Two allocation regimes share the underlying heap blocks:
//
//   Transient bump region — alloc()/recycle(), lifetime = one speculation
//     epoch. Backed by chunked segments (kSegmentBytes each) that are
//     *kept* across rearm(): after the first epoch that needed a segment,
//     later epochs bump-allocate into recycled memory and never reach the
//     heap. recycle() is a LIFO rewind (frees in reverse allocation order
//     reclaim space immediately); out-of-order frees are simply abandoned
//     until the next rearm(). Requests too large for a segment get a
//     dedicated heap block, freed at rearm() and counted as a heap
//     fallback exactly once.
//
//   Persistent pool — grab()/release(), lifetime = explicit, *surviving*
//     rearm(). Power-of-two size classes with intrusive free lists
//     threaded through the released blocks themselves. This backs storage
//     that must outlive epochs but still wants recycling instead of
//     malloc/free churn: the growable buffer's log and index arrays and
//     the SpecBuffer sort scratch. A released index array is reused by the
//     next grow — across read/write sets and across epochs.
//
// Both regimes count every trip to ::operator new in fallback_heap_allocs
// (lifetime) and in an epoch counter zeroed by rearm(). The epoch counter
// is what flows into SpecBufferStats::alloc_events at settle time: a
// warmed-up slot reports 0 per speculation, and the CI alloc budget holds
// that line.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <vector>

#include "support/check.h"

namespace mutls {

struct ArenaStats {
  size_t bytes_in_use = 0;    // bump bytes handed out this epoch
  size_t segments = 0;        // heap blocks owned (segments + pool + oversized)
  uint64_t fallback_heap_allocs = 0;  // lifetime ::operator new trips
};

class Arena {
 public:
  static constexpr size_t kSegmentBytes = 64 * 1024;
  // Bump requests above this get a dedicated heap block (freed at rearm).
  static constexpr size_t kOversizeBytes = kSegmentBytes / 2;
  static constexpr size_t kMinPoolBytes = 64;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ~Arena() {
    for (char* s : segments_) ::operator delete(s);
    for (const Oversized& o : oversized_) ::operator delete(o.p);
    // Pool blocks are freed through the ownership list, whether they are
    // currently grabbed or sitting on a free list.
    for (void* p : pool_blocks_) ::operator delete(p);
  }

  // --- transient bump region (one speculation epoch) ---

  void* alloc(size_t n, size_t align = alignof(std::max_align_t)) {
    MUTLS_DCHECK(align != 0 && (align & (align - 1)) == 0,
                 "arena alignment must be a power of two");
    MUTLS_CHECK(align <= alignof(std::max_align_t),
                "over-aligned arena requests are not supported");
    if (n == 0) n = 1;
    if (n > kOversizeBytes) {
      void* p = heap_block(n);
      oversized_.push_back(Oversized{p, n});
      bytes_in_use_ += n;
      return p;
    }
    uintptr_t cur = reinterpret_cast<uintptr_t>(cur_);
    uintptr_t aligned = (cur + (align - 1)) & ~(uintptr_t{align} - 1);
    if (aligned + n > reinterpret_cast<uintptr_t>(end_)) {
      next_segment();
      cur = reinterpret_cast<uintptr_t>(cur_);
      aligned = (cur + (align - 1)) & ~(uintptr_t{align} - 1);
    }
    cur_ = reinterpret_cast<char*>(aligned + n);
    bytes_in_use_ += (aligned + n) - cur;
    return reinterpret_cast<void*>(aligned);
  }

  // LIFO rewind: freeing the most recent alloc() reclaims its space for
  // the current epoch; anything else is abandoned until rearm(). Oversized
  // blocks are genuinely freed (they are heap blocks of their own).
  void recycle(void* p, size_t n) {
    if (n == 0) n = 1;
    if (n > kOversizeBytes) {
      for (size_t i = oversized_.size(); i-- > 0;) {
        if (oversized_[i].p == p) {
          ::operator delete(p);
          bytes_in_use_ -= oversized_[i].n;
          oversized_.erase(oversized_.begin() +
                           static_cast<ptrdiff_t>(i));
          return;
        }
      }
      MUTLS_DCHECK(false, "recycle of an unknown oversized arena block");
      return;
    }
    if (static_cast<char*>(p) + n == cur_) {
      cur_ = static_cast<char*>(p);
      bytes_in_use_ -= n;
    }
  }

  // Epoch reset: rewinds the bump region to the start of the first (kept)
  // segment, frees oversized blocks and zeroes the per-epoch heap counter.
  // Pool storage (grab/release) is untouched — that is its point.
  void rearm() {
    for (const Oversized& o : oversized_) ::operator delete(o.p);
    oversized_.clear();
    if (segments_.empty()) {
      seg_idx_ = kNoSegment;
      cur_ = end_ = nullptr;
    } else {
      seg_idx_ = 0;
      cur_ = segments_[0];
      end_ = cur_ + kSegmentBytes;
    }
    bytes_in_use_ = 0;
    epoch_heap_allocs_ = 0;
    ++epoch_;
  }

  // --- persistent pool (explicit lifetime, survives rearm) ---

  // Rounds `n` up to a power-of-two size class (>= kMinPoolBytes) and
  // returns a block of that class, reusing a released one when available.
  // release() must be called with the same `n` (or pooled_size(n)).
  void* grab(size_t n) {
    int cls = pool_class(n);
    if (free_lists_[cls] != nullptr) {
      void* p = free_lists_[cls];
      std::memcpy(&free_lists_[cls], p, sizeof(void*));
      return p;
    }
    void* p = heap_block(size_t{1} << cls);
    pool_blocks_.push_back(p);
    return p;
  }

  void release(void* p, size_t n) {
    if (p == nullptr) return;
    int cls = pool_class(n);
    std::memcpy(p, &free_lists_[cls], sizeof(void*));
    free_lists_[cls] = p;
  }

  // The byte size actually reserved for a grab(n) block.
  static size_t pooled_size(size_t n) { return size_t{1} << pool_class(n); }

  // --- observability ---

  ArenaStats stats() const {
    return ArenaStats{
        bytes_in_use_,
        segments_.size() + pool_blocks_.size() + oversized_.size(),
        heap_allocs_};
  }

  // Heap trips since the last rearm(); folded into the settling
  // speculation's SpecBufferStats::alloc_events.
  uint64_t epoch_heap_allocs() const { return epoch_heap_allocs_; }

  uint64_t epoch() const { return epoch_; }

 private:
  static constexpr size_t kNoSegment = static_cast<size_t>(-1);

  struct Oversized {
    void* p;
    size_t n;
  };

  static int pool_class(size_t n) {
    if (n < kMinPoolBytes) n = kMinPoolBytes;
    int cls = 6;  // 2^6 = kMinPoolBytes
    while ((size_t{1} << cls) < n) ++cls;
    MUTLS_CHECK(cls < 48, "arena pool request exceeds the class range");
    return cls;
  }

  void* heap_block(size_t n) {
    ++heap_allocs_;
    ++epoch_heap_allocs_;
    return ::operator new(n);
  }

  void next_segment() {
    ++seg_idx_;  // kNoSegment wraps to 0
    if (seg_idx_ >= segments_.size()) {
      segments_.push_back(static_cast<char*>(heap_block(kSegmentBytes)));
    }
    cur_ = segments_[seg_idx_];
    end_ = cur_ + kSegmentBytes;
  }

  std::vector<char*> segments_;
  size_t seg_idx_ = kNoSegment;
  char* cur_ = nullptr;
  char* end_ = nullptr;
  std::vector<Oversized> oversized_;

  void* free_lists_[48] = {};
  std::vector<void*> pool_blocks_;

  size_t bytes_in_use_ = 0;
  uint64_t heap_allocs_ = 0;
  uint64_t epoch_heap_allocs_ = 0;
  uint64_t epoch_ = 0;
};

// Pool-or-heap helpers for storage that may or may not be arena-attached
// (standalone GrowableSet/SpecBuffer instances in tests pass no arena).
inline void* arena_grab(Arena* a, size_t n) {
  return a != nullptr ? a->grab(n) : ::operator new(n);
}
inline void arena_release(Arena* a, void* p, size_t n) {
  if (p == nullptr) return;
  if (a != nullptr) {
    a->release(p, n);
  } else {
    ::operator delete(p);
  }
}

// Growable buffer of a trivially-copyable T over the arena pool (heap when
// unattached): capacity is retained across clear(), growth recycles the old
// block through the pool. The zero-alloc replacement for the std::vector
// scratch/log buffers on the settle paths.
template <typename T>
class PodVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "PodVec is for trivially copyable payloads only");

 public:
  PodVec() = default;
  PodVec(const PodVec&) = delete;
  PodVec& operator=(const PodVec&) = delete;
  ~PodVec() { arena_release(arena_, data_, cap_ * sizeof(T)); }

  // Binds the backing arena. Existing storage (possibly from another
  // arena) is released first, so re-attachment on re-init is safe.
  void attach(Arena* arena) {
    if (arena != arena_ && data_ != nullptr) {
      arena_release(arena_, data_, cap_ * sizeof(T));
      data_ = nullptr;
      cap_ = 0;
      size_ = 0;
    }
    arena_ = arena;
  }

  void clear() { size_ = 0; }

  void push_back(const T& v) {
    if (size_ == cap_) grow(size_ + 1);
    data_[size_++] = v;
  }

  void reserve(size_t n) {
    if (n > cap_) grow(n);
  }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T* data() { return data_; }
  size_t size() const { return size_; }
  size_t capacity() const { return cap_; }

 private:
  void grow(size_t need) {
    size_t cap = cap_ == 0 ? 64 : cap_ * 2;
    while (cap < need) cap *= 2;
    T* fresh = static_cast<T*>(arena_grab(arena_, cap * sizeof(T)));
    if (size_ != 0) std::memcpy(fresh, data_, size_ * sizeof(T));
    arena_release(arena_, data_, cap_ * sizeof(T));
    data_ = fresh;
    cap_ = cap;
  }

  Arena* arena_ = nullptr;
  T* data_ = nullptr;
  size_t size_ = 0;
  size_t cap_ = 0;
};

}  // namespace mutls
