// Figure 5 — critical path efficiency eta_crit = Twork_nonsp /
// Truntime_nonsp versus CPU count, all benchmarks.
//
// Paper shape: 3x+1 and mandelbrot near 1.0 throughout; md decays steadily;
// matmult stays 94-100% (data reuse); the DFS pair track each other.
#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace mutls;
  using namespace mutls::bench;
  HarnessArgs args = parse_args(argc, argv);
  auto ws = make_workloads(args);

  if (args.measured) {
    std::printf("FIG 5 (measured) — critical path efficiency\n");
    std::printf("%-11s", "benchmark");
    for (int n : args.measured_cpus) {
      if (n > 1) std::printf(" %6d", n);
    }
    std::printf("\n");
    for (BenchWorkload& w : ws) {
      std::printf("%-11s", w.name.c_str());
      for (int n : args.measured_cpus) {
        if (n == 1) continue;
        workloads::SpecRun r = w.spec(n, ForkModel::kMixed, 0.0);
        std::printf(" %6.3f", r.stats.critical_efficiency());
      }
      std::printf("\n");
    }
  }

  if (args.sim) {
    std::printf("\nFIG 5 (simulated, paper scale) — critical path efficiency\n");
    std::printf("%-11s", "benchmark");
    for (int n : args.sim_cpus) std::printf(" %6d", n);
    std::printf("\n");
    for (BenchWorkload& w : ws) {
      std::printf("%-11s", w.name.c_str());
      for (int n : args.sim_cpus) {
        sim::SimModel m = w.sim_model();
        sim::SimResult r =
            sim::Simulator(sim_opts(n, ForkModel::kMixed)).run(m);
        std::printf(" %6.3f", r.critical_efficiency());
      }
      std::printf("\n");
    }
  }
  return 0;
}
