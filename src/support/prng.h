// Deterministic per-thread PRNG used for rollback injection (paper Fig. 11)
// and workload generation. xoshiro-style xorshift with splitmix seeding so
// two runs with the same seed inject rollbacks at the same decisions. The
// Zipf sampler below drives the serving traffic generator's hot-key skew.
#pragma once

#include <cmath>
#include <cstdint>

#include "support/check.h"

namespace mutls {

class Xorshift64 {
 public:
  explicit Xorshift64(uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(uint64_t seed) {
    // splitmix64 scrambling so small seeds (0, 1, 2...) diverge immediately.
    uint64_t z = seed + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    state_ = z ^ (z >> 31);
    if (state_ == 0) state_ = 0x9e3779b97f4a7c15ull;
  }

  uint64_t next() {
    uint64_t x = state_;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    state_ = x;
    return x;
  }

  // Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Uniform in [0, n).
  uint64_t next_below(uint64_t n) { return n ? next() % n : 0; }

  // Bernoulli trial with probability p.
  bool bernoulli(double p) { return next_double() < p; }

 private:
  uint64_t state_;
};

// Bounded Zipf(s) sampler over {1..n} by rejection inversion (Hörmann &
// Derflinger, "Rejection-inversion to generate variates from monotone
// discrete distributions"): P(k) ∝ k^-s. Inverting the integral of the
// continuous majorizing density h(x) = x^-s needs no per-value tables, so
// construction is O(1) and sampling is allocation-free with an expected
// <2 rejection rounds for any s > 0 — including the serving benches'
// adversarial hot-key skews (s ≈ 1, where naive inversion over precomputed
// CDF tables would need all n harmonic partial sums). The three harmonic
// integral terms that depend only on (n, s) are precomputed here.
class Zipf {
 public:
  // `s` is the exponent (> 0); s → 0 approaches uniform, s ≥ 1 makes the
  // first few keys dominate (s = 1.1 over 4k keys puts ~12% of all traffic
  // on key 1).
  Zipf(uint64_t n, double s) : n_(n), s_(s) {
    MUTLS_CHECK(n >= 1, "Zipf needs a nonempty value range");
    MUTLS_CHECK(s > 0.0, "Zipf exponent must be positive");
    h_x1_ = h_integral(1.5) - 1.0;
    h_n_ = h_integral(static_cast<double>(n) + 0.5);
    cutoff_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
  }

  uint64_t n() const { return n_; }
  double s() const { return s_; }

  // One variate in [1, n]. Consumes a variable (expected < 2) number of
  // rng draws; deterministic for a given rng state.
  uint64_t sample(Xorshift64& rng) {
    while (true) {
      double u = h_n_ + rng.next_double() * (h_x1_ - h_n_);
      double x = h_integral_inverse(u);
      uint64_t k = static_cast<uint64_t>(x + 0.5);
      if (k < 1) {
        k = 1;
      } else if (k > n_) {
        k = n_;
      }
      // Accept k either inside the unconditional-acceptance band around
      // the inverse (covers the tail, where h hugs the histogram) or by
      // the exact rejection test against the majorizing integral.
      if (static_cast<double>(k) - x <= cutoff_ ||
          u >= h_integral(static_cast<double>(k) + 0.5) -
                   h(static_cast<double>(k))) {
        return k;
      }
    }
  }

  // Exact probability mass of value k (for distribution-shape tests):
  // k^-s / H(n, s), with the generalized harmonic number summed directly.
  double mass(uint64_t k) const {
    MUTLS_DCHECK(k >= 1 && k <= n_, "Zipf::mass out of range");
    double harmonic = 0.0;
    for (uint64_t i = 1; i <= n_; ++i) {
      harmonic += h(static_cast<double>(i));
    }
    return h(static_cast<double>(k)) / harmonic;
  }

 private:
  // h(x) = x^-s, the continuous majorizing density.
  double h(double x) const { return std::exp(-s_ * std::log(x)); }

  // ∫ h = (x^(1-s) - 1) / (1 - s), computed via expm1/log1p helpers so the
  // s → 1 singularity degrades to log(x) smoothly instead of cancelling.
  double h_integral(double x) const {
    double log_x = std::log(x);
    return expm1_over_x((1.0 - s_) * log_x) * log_x;
  }

  double h_integral_inverse(double x) const {
    double t = x * (1.0 - s_);
    if (t < -1.0) t = -1.0;  // numerical round-off guard near the tail
    return std::exp(log1p_over_x(t) * x);
  }

  // expm1(x)/x and log1p(x)/x with their removable singularities at 0
  // filled by the Taylor series (the |x| < 1e-8 window keeps double
  // precision through the s ≈ 1 cancellation).
  static double expm1_over_x(double x) {
    if (std::abs(x) > 1e-8) return std::expm1(x) / x;
    return 1.0 + x * 0.5 * (1.0 + x / 3.0);
  }
  static double log1p_over_x(double x) {
    if (std::abs(x) > 1e-8) return std::log1p(x) / x;
    return 1.0 - x * 0.5 * (1.0 - x * (2.0 / 3.0));
  }

  uint64_t n_;
  double s_;
  double h_x1_;    // hIntegral(1.5) - 1: top of the inversion range
  double h_n_;     // hIntegral(n + 0.5): bottom of the inversion range
  double cutoff_;  // unconditional-acceptance band width
};

}  // namespace mutls
