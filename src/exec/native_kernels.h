// Hand-compiled native region bodies for two benchmark kernels, proving
// the compilation seam end to end (tier (c) of ROADMAP item 5): a real
// CompiledFn per hot loop, registered on (function, header label), obeying
// the speculative-access contract of exec/compiled_region.h. A later JIT
// replaces the hand-written bodies; nothing else changes.
//
// Kernels (used by bench_interp_dispatch and the differential suite):
//
//  * fib — an arithmetic loop (pure register pressure, no memory traffic)
//    that runs non-speculatively in the forker while a speculative child
//    waits at its barrier point. Region "loop" is compiled. Shows the
//    dispatch-tier difference on instruction-dispatch-bound code.
//  * fill — a store loop, then fork/join around a load-reduce loop that a
//    speculative child executes through its SpecBuffer. Regions "wloop"
//    and "rloop" are compiled; "rloop" runs speculatively (region_load +
//    region_poll on the child) and non-speculatively (inline re-execution
//    after a rollback), exercising both sides of the ABI.
//
// Value ids and block indices used by the bodies are resolved by name at
// registration time from a freshly parsed copy of the kernel text (the
// parser's id assignment is deterministic), so the bodies stay in sync
// with the IR below by construction — registration CHECK-fails on drift.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "exec/compiled_region.h"

namespace mutls::exec::kernels {

// Module text of each kernel (parse_module-ready).
const char* fib_ir();
const char* fill_ir();

// Sequential-oracle results, computed the same wrapping-uint64 way the IR
// computes them (valid for any n >= 1).
uint64_t fib_expected(uint64_t n);
uint64_t fill_expected(uint64_t n);

// Approximate interpreted instruction count of one call (ns-per-instr
// denominators in the dispatch benchmark).
uint64_t fib_instrs(uint64_t n);
uint64_t fill_instrs(uint64_t n);

// Registers every hand-compiled body through `reg` — typically
//   [&](const std::string& f, const std::string& h, CompiledFn b) {
//     return it.register_compiled_region(f, h, b);
//   }
// Returns the number of bodies accepted (3 when both kernels are present
// in the module behind `reg`).
int register_native_kernels(
    const std::function<bool(const std::string&, const std::string&,
                             CompiledFn)>& reg);

}  // namespace mutls::exec::kernels
