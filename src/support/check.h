// Lightweight invariant checking for the MUTLS runtime.
//
// MUTLS_CHECK is always on (cheap, used for API misuse and protocol
// violations); MUTLS_DCHECK compiles away outside debug builds and guards
// hot-path invariants.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace mutls {

[[noreturn]] inline void panic(const char* file, int line, const char* msg) {
  std::fprintf(stderr, "MUTLS panic at %s:%d: %s\n", file, line, msg);
  std::abort();
}

}  // namespace mutls

#define MUTLS_CHECK(cond, msg)                       \
  do {                                               \
    if (!(cond)) ::mutls::panic(__FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define MUTLS_DCHECK(cond, msg) \
  do {                          \
  } while (0)
#else
#define MUTLS_DCHECK(cond, msg) MUTLS_CHECK(cond, msg)
#endif
