#include "workloads/threex.h"

namespace mutls::workloads {

SeqRun ThreeX::run_seq(const Params& p) {
  Stopwatch sw;
  uint64_t total = 0;
  for (int64_t i = 1; i <= p.n; ++i) {
    total += trajectory(static_cast<uint64_t>(i));
  }
  return SeqRun{hash_mix(hash_begin(), total), sw.elapsed_sec()};
}

SpecRun ThreeX::run_spec(Runtime& rt, const Params& p, ForkModel model) {
  Stopwatch sw;
  uint64_t total = 0;
  RunStats stats = rt.run([&](Ctx& ctx) {
    total = par::reduce(
        rt, ctx, 1, p.n + 1,
        par::LoopOpts{.chunks = p.chunks,
                      .model = model,
                      .checkpoint_every = 0x10000},
        uint64_t{0},
        [](Ctx&, int64_t i) { return trajectory(static_cast<uint64_t>(i)); });
  });
  double secs = sw.elapsed_sec();
  return SpecRun{hash_mix(hash_begin(), total), secs, stats};
}

}  // namespace mutls::workloads
