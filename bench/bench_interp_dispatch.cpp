// Dispatch-tier microbench: the two native-kernel IR programs (exec/
// native_kernels.h) swept over {dispatch mode x buffer backend}. Each cell
// runs the kernel under a fresh interpreter, validates the result against
// the kernel's closed-form expectation (a wrong answer or a failed
// compiled-region registration exits nonzero — this binary doubles as the
// Release-job smoke check), and reports best-of-N wall time normalized per
// interpreted instruction.
//
// Machine-readable output: one "DISPATCH key=value ..." line per cell and
// one "DISPATCH_HEAT ..." line per loop region of the last run;
// scripts/bench_json.py parses these into the interp_dispatch section of
// BENCH_results.json and fails loudly when a mode or backend is missing.
//
// Flags:
//   --quick    CI smoke sizes (~100x smaller)
//   --reps N   timed repetitions per cell, best-of (default 5)
//   --cpus N   virtual CPUs per interpreter (default 2)
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "exec/native_kernels.h"
#include "exec/profile.h"
#include "interp/interp.h"
#include "support/timing.h"

namespace {

using namespace mutls;
using interp::Interpreter;

struct Args {
  uint64_t n_fib = 2'000'000;
  uint64_t n_fill = 100'000;  // capped by @fill_cells (4096 cells) per pass
  int reps = 5;
  int cpus = 2;
};

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--quick")) {
      a.n_fib = 20'000;
      a.n_fill = 2'000;
      a.reps = 3;
    } else if (!std::strcmp(argv[i], "--reps") && i + 1 < argc) {
      a.reps = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--cpus") && i + 1 < argc) {
      a.cpus = std::atoi(argv[++i]);
    }
  }
  return a;
}

struct Kernel {
  const char* name;
  const char* ir;
  const char* fn;
  uint64_t n;
  uint64_t expected;
  uint64_t instrs;  // interpreted instruction count of one call
};

struct CellOut {
  uint64_t wall_ns = 0;
  RunStats stats;
  std::vector<exec::RegionHeat> heat;
};

// One timed call under a fresh interpreter (fresh manager, cold stats).
// Returns false when the kernel produced a wrong result or a native body
// failed to register.
bool run_cell(const Kernel& k, exec::DispatchMode mode, BufferBackend backend,
              const Args& args, CellOut* out) {
  Interpreter::Options o;
  o.num_cpus = args.cpus;
  o.buffer_log2 = 14;
  o.buffer_backend = backend;
  o.dispatch_mode = mode;
  Interpreter it(ir::parse_module(k.ir), o);
  int registered = exec::kernels::register_native_kernels(
      [&](const std::string& f, const std::string& h, exec::CompiledFn b) {
        return it.register_compiled_region(f, h, b);
      });
  // Each kernel module holds exactly one of the two kernel functions; the
  // other two registrations miss (unknown function) by design.
  int want = std::strcmp(k.fn, "fib") == 0 ? 1 : 2;
  if (registered != want) {
    std::fprintf(stderr, "FAIL %s: registered %d native regions, want %d\n",
                 k.name, registered, want);
    return false;
  }
  Stopwatch sw;
  uint64_t got = it.call(k.fn, {k.n});
  uint64_t ns = sw.elapsed_ns();
  if (got != k.expected) {
    std::fprintf(stderr,
                 "FAIL %s mode=%s backend=%s: got %" PRIu64
                 ", expected %" PRIu64 "\n",
                 k.name, exec::dispatch_mode_name(mode),
                 buffer_backend_name(backend), got, k.expected);
    return false;
  }
  out->wall_ns = ns;
  out->stats = it.collect_stats();
  out->heat = it.region_heat();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = parse(argc, argv);

  std::vector<Kernel> kernels = {
      {"fib", exec::kernels::fib_ir(), "fib", args.n_fib,
       exec::kernels::fib_expected(args.n_fib),
       exec::kernels::fib_instrs(args.n_fib)},
      {"fill", exec::kernels::fill_ir(), "fill", args.n_fill,
       exec::kernels::fill_expected(args.n_fill),
       exec::kernels::fill_instrs(args.n_fill)},
  };
  // @fill_cells has 4096 elements; keep n inside it.
  kernels[1].n = std::min<uint64_t>(kernels[1].n, 4096);
  kernels[1].expected = exec::kernels::fill_expected(kernels[1].n);
  kernels[1].instrs = exec::kernels::fill_instrs(kernels[1].n);

  const exec::DispatchMode kModes[] = {exec::DispatchMode::kSwitch,
                                       exec::DispatchMode::kDirectThreaded,
                                       exec::DispatchMode::kCompiledRegion};
  const BufferBackend kBackends[] = {BufferBackend::kStaticHash,
                                     BufferBackend::kGrowableLog,
                                     BufferBackend::kAdaptive,
                                     BufferBackend::kNumaSharded};

  bool ok = true;
  for (const Kernel& k : kernels) {
    for (exec::DispatchMode mode : kModes) {
      for (BufferBackend backend : kBackends) {
        CellOut best;
        for (int r = 0; r < args.reps; ++r) {
          CellOut cur;
          if (!run_cell(k, mode, backend, args, &cur)) {
            ok = false;
            continue;
          }
          if (best.wall_ns == 0 || cur.wall_ns < best.wall_ns) best = cur;
        }
        if (best.wall_ns == 0) {
          ok = false;
          continue;
        }
        const ThreadStats& c = best.stats.critical;
        const ThreadStats& s = best.stats.speculative;
        std::printf(
            "DISPATCH kernel=%s mode=%s backend=%s wall_ns=%" PRIu64
            " iters=%" PRIu64 " instrs=%" PRIu64
            " ns_per_instr=%.3f back_edges=%" PRIu64 " commits=%" PRIu64
            " rollbacks=%" PRIu64 "\n",
            k.name, exec::dispatch_mode_name(mode),
            buffer_backend_name(backend), best.wall_ns, k.n, k.instrs,
            static_cast<double>(best.wall_ns) /
                static_cast<double>(k.instrs),
            c.back_edges + s.back_edges, c.commits + s.commits,
            c.rollbacks + s.rollbacks);
        for (const exec::RegionHeat& h : best.heat) {
          std::printf("DISPATCH_HEAT kernel=%s mode=%s backend=%s "
                      "region=%s:%s count=%" PRIu64 " compiled=%d\n",
                      k.name, exec::dispatch_mode_name(mode),
                      buffer_backend_name(backend), h.function.c_str(),
                      h.header.c_str(), h.count, h.compiled ? 1 : 0);
        }
      }
    }
  }
  if (!ok) {
    std::fprintf(stderr, "bench_interp_dispatch: FAILED\n");
    return 1;
  }
  return 0;
}
