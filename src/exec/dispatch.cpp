// Decoder and handler table of the direct-threaded dispatcher.
//
// Decode-time specialization does the work the oracle's switch re-derives
// per execution: handler selection per (op, type, predicate), truncation
// masks and sign-extension shifts as operands, constants pre-converted,
// globals and callees pre-resolved, branch targets as flat indices with
// per-edge region/back-edge metadata. Handlers therefore run straight-line
// integer code plus exactly one indirect call per instruction.
#include "exec/dispatch.h"

#include <bit>
#include <cstring>

#include "exec/mem_ops.h"
#include "runtime/spec_abort.h"

namespace mutls::exec {

using namespace ir;

namespace {

constexpr size_t kMaxCallArgs = 64;

double as_f64(uint64_t raw) { return std::bit_cast<double>(raw); }
uint64_t from_f64(double d) { return std::bit_cast<uint64_t>(d); }
float as_f32(uint64_t raw) {
  return std::bit_cast<float>(static_cast<uint32_t>(raw));
}
uint64_t from_f32(float f) {
  return static_cast<uint64_t>(std::bit_cast<uint32_t>(f));
}

// trunc_to(v, t) == (v & mask_of(t)).
uint64_t mask_of(Type t) {
  switch (t) {
    case Type::kI1: return 1;
    case Type::kI8: return 0xff;
    case Type::kI16: return 0xffff;
    case Type::kI32: return 0xffffffffull;
    default: return ~0ull;
  }
}

// sext_of(v, t) == int64_t(v << s) >> s with s = sext_shift(t).
uint64_t sext_shift(Type t) {
  switch (t) {
    case Type::kI1: return 63;
    case Type::kI8: return 56;
    case Type::kI16: return 48;
    case Type::kI32: return 32;
    default: return 0;
  }
}

int64_t sext(uint64_t v, uint64_t shift) {
  return static_cast<int64_t>(v << shift) >> shift;
}

uint32_t skip_phis(const Block& b) {
  uint32_t i = 0;
  while (i < b.instrs.size() && b.instrs[i].op == Op::kPhi) ++i;
  return i;
}

// Register read/write with the speculative-entry def/use bookkeeping the
// oracle maintains (one predicted branch; disabled entirely for
// non-entry frames via st.track).
inline uint64_t rdv(ExecState& st, uint32_t v) {
  if (st.track && !st.fr->defined[v]) st.fr->used_snapshot[v] = true;
  return st.regs[v];
}

inline void wrv(ExecState& st, const DecodedInstr& di, uint64_t v) {
  st.regs[di.result] = v;
  if (st.track) st.fr->defined[di.result] = true;
}

// --- handlers -----------------------------------------------------------

void h_const(ExecState& st, const DecodedInstr& di) {
  wrv(st, di, di.imm);
  ++st.ip;
}

void h_add(ExecState& st, const DecodedInstr& di) {
  wrv(st, di, (rdv(st, di.a) + rdv(st, di.b)) & di.imm);
  ++st.ip;
}
void h_sub(ExecState& st, const DecodedInstr& di) {
  wrv(st, di, (rdv(st, di.a) - rdv(st, di.b)) & di.imm);
  ++st.ip;
}
void h_mul(ExecState& st, const DecodedInstr& di) {
  wrv(st, di, (rdv(st, di.a) * rdv(st, di.b)) & di.imm);
  ++st.ip;
}
void h_sdiv(ExecState& st, const DecodedInstr& di) {
  int64_t d = sext(rdv(st, di.b), di.aux);
  MUTLS_CHECK(d != 0, "division by zero");
  wrv(st, di,
      static_cast<uint64_t>(sext(rdv(st, di.a), di.aux) / d) & di.imm);
  ++st.ip;
}
void h_srem(ExecState& st, const DecodedInstr& di) {
  int64_t d = sext(rdv(st, di.b), di.aux);
  MUTLS_CHECK(d != 0, "remainder by zero");
  wrv(st, di,
      static_cast<uint64_t>(sext(rdv(st, di.a), di.aux) % d) & di.imm);
  ++st.ip;
}
void h_and(ExecState& st, const DecodedInstr& di) {
  wrv(st, di, rdv(st, di.a) & rdv(st, di.b));
  ++st.ip;
}
void h_or(ExecState& st, const DecodedInstr& di) {
  wrv(st, di, rdv(st, di.a) | rdv(st, di.b));
  ++st.ip;
}
void h_xor(ExecState& st, const DecodedInstr& di) {
  wrv(st, di, rdv(st, di.a) ^ rdv(st, di.b));
  ++st.ip;
}
void h_shl(ExecState& st, const DecodedInstr& di) {
  wrv(st, di, (rdv(st, di.a) << (rdv(st, di.b) & 63)) & di.imm);
  ++st.ip;
}
void h_lshr(ExecState& st, const DecodedInstr& di) {
  wrv(st, di, (rdv(st, di.a) & di.imm) >> (rdv(st, di.b) & 63));
  ++st.ip;
}
void h_ashr(ExecState& st, const DecodedInstr& di) {
  int64_t x = sext(rdv(st, di.a), di.aux);
  wrv(st, di, static_cast<uint64_t>(x >> (rdv(st, di.b) & 63)) & di.imm);
  ++st.ip;
}

void h_fadd32(ExecState& st, const DecodedInstr& di) {
  wrv(st, di, from_f32(as_f32(rdv(st, di.a)) + as_f32(rdv(st, di.b))));
  ++st.ip;
}
void h_fadd64(ExecState& st, const DecodedInstr& di) {
  wrv(st, di, from_f64(as_f64(rdv(st, di.a)) + as_f64(rdv(st, di.b))));
  ++st.ip;
}
void h_fsub32(ExecState& st, const DecodedInstr& di) {
  wrv(st, di, from_f32(as_f32(rdv(st, di.a)) - as_f32(rdv(st, di.b))));
  ++st.ip;
}
void h_fsub64(ExecState& st, const DecodedInstr& di) {
  wrv(st, di, from_f64(as_f64(rdv(st, di.a)) - as_f64(rdv(st, di.b))));
  ++st.ip;
}
void h_fmul32(ExecState& st, const DecodedInstr& di) {
  wrv(st, di, from_f32(as_f32(rdv(st, di.a)) * as_f32(rdv(st, di.b))));
  ++st.ip;
}
void h_fmul64(ExecState& st, const DecodedInstr& di) {
  wrv(st, di, from_f64(as_f64(rdv(st, di.a)) * as_f64(rdv(st, di.b))));
  ++st.ip;
}
void h_fdiv32(ExecState& st, const DecodedInstr& di) {
  wrv(st, di, from_f32(as_f32(rdv(st, di.a)) / as_f32(rdv(st, di.b))));
  ++st.ip;
}
void h_fdiv64(ExecState& st, const DecodedInstr& di) {
  wrv(st, di, from_f64(as_f64(rdv(st, di.a)) / as_f64(rdv(st, di.b))));
  ++st.ip;
}

void h_icmp_eq(ExecState& st, const DecodedInstr& di) {
  wrv(st, di, rdv(st, di.a) == rdv(st, di.b) ? 1 : 0);
  ++st.ip;
}
void h_icmp_ne(ExecState& st, const DecodedInstr& di) {
  wrv(st, di, rdv(st, di.a) != rdv(st, di.b) ? 1 : 0);
  ++st.ip;
}
void h_icmp_slt(ExecState& st, const DecodedInstr& di) {
  wrv(st, di, sext(rdv(st, di.a), di.aux) < sext(rdv(st, di.b), di.aux));
  ++st.ip;
}
void h_icmp_sle(ExecState& st, const DecodedInstr& di) {
  wrv(st, di, sext(rdv(st, di.a), di.aux) <= sext(rdv(st, di.b), di.aux));
  ++st.ip;
}
void h_icmp_sgt(ExecState& st, const DecodedInstr& di) {
  wrv(st, di, sext(rdv(st, di.a), di.aux) > sext(rdv(st, di.b), di.aux));
  ++st.ip;
}
void h_icmp_sge(ExecState& st, const DecodedInstr& di) {
  wrv(st, di, sext(rdv(st, di.a), di.aux) >= sext(rdv(st, di.b), di.aux));
  ++st.ip;
}

// aux = 1 when the operands are f32.
template <typename Cmp>
inline void fcmp(ExecState& st, const DecodedInstr& di, Cmp cmp) {
  double x, y;
  if (di.aux) {
    x = as_f32(rdv(st, di.a));
    y = as_f32(rdv(st, di.b));
  } else {
    x = as_f64(rdv(st, di.a));
    y = as_f64(rdv(st, di.b));
  }
  wrv(st, di, cmp(x, y) ? 1 : 0);
  ++st.ip;
}
void h_fcmp_oeq(ExecState& st, const DecodedInstr& di) {
  fcmp(st, di, [](double x, double y) { return x == y; });
}
void h_fcmp_one(ExecState& st, const DecodedInstr& di) {
  fcmp(st, di, [](double x, double y) { return x != y; });
}
void h_fcmp_olt(ExecState& st, const DecodedInstr& di) {
  fcmp(st, di, [](double x, double y) { return x < y; });
}
void h_fcmp_ole(ExecState& st, const DecodedInstr& di) {
  fcmp(st, di, [](double x, double y) { return x <= y; });
}
void h_fcmp_ogt(ExecState& st, const DecodedInstr& di) {
  fcmp(st, di, [](double x, double y) { return x > y; });
}
void h_fcmp_oge(ExecState& st, const DecodedInstr& di) {
  fcmp(st, di, [](double x, double y) { return x >= y; });
}

void h_select(ExecState& st, const DecodedInstr& di) {
  wrv(st, di, rdv(st, di.a) & 1 ? rdv(st, di.b) : rdv(st, di.c));
  ++st.ip;
}
void h_mask(ExecState& st, const DecodedInstr& di) {  // trunc / zext
  wrv(st, di, rdv(st, di.a) & di.imm);
  ++st.ip;
}
void h_sext(ExecState& st, const DecodedInstr& di) {
  wrv(st, di,
      static_cast<uint64_t>(sext(rdv(st, di.a), di.aux)) & di.imm);
  ++st.ip;
}
void h_sitofp32(ExecState& st, const DecodedInstr& di) {
  wrv(st, di, from_f32(static_cast<float>(sext(rdv(st, di.a), di.aux))));
  ++st.ip;
}
void h_sitofp64(ExecState& st, const DecodedInstr& di) {
  wrv(st, di, from_f64(static_cast<double>(sext(rdv(st, di.a), di.aux))));
  ++st.ip;
}
void h_fptosi(ExecState& st, const DecodedInstr& di) {
  double v = di.aux ? as_f32(rdv(st, di.a)) : as_f64(rdv(st, di.a));
  wrv(st, di,
      static_cast<uint64_t>(static_cast<int64_t>(v)) & di.imm);
  ++st.ip;
}
void h_copy(ExecState& st, const DecodedInstr& di) {
  wrv(st, di, rdv(st, di.a));
  ++st.ip;
}

void h_alloca(ExecState& st, const DecodedInstr& di) {
  size_t n = static_cast<size_t>(di.imm);
  char* mem = new char[n]();
  st.mgr->register_space(mem, n);
  st.fr->allocas.emplace_back(mem, n);
  wrv(st, di, reinterpret_cast<uint64_t>(mem));
  ++st.ip;
}

void h_load(ExecState& st, const DecodedInstr& di) {
  uint64_t out = 0;
  load_mem(*st.mgr, *st.td, rdv(st, di.a), &out,
           static_cast<size_t>(di.imm));
  wrv(st, di, out & di.aux);
  ++st.ip;
}
void h_store(ExecState& st, const DecodedInstr& di) {
  uint64_t v = rdv(st, di.a);
  store_mem(*st.mgr, *st.td, rdv(st, di.b), &v,
            static_cast<size_t>(di.imm));
  ++st.ip;
}
void h_gep(ExecState& st, const DecodedInstr& di) {
  wrv(st, di,
      rdv(st, di.a) +
          static_cast<uint64_t>(sext(rdv(st, di.b), di.aux) *
                                static_cast<int64_t>(di.imm)));
  ++st.ip;
}
void h_global(ExecState& st, const DecodedInstr& di) {
  wrv(st, di, reinterpret_cast<uint64_t>(di.ptr));
  ++st.ip;
}

void h_call(ExecState& st, const DecodedInstr& di) {
  uint64_t argv[kMaxCallArgs];
  const ValueId* ids = st.df->arg_pool.data() + di.a;
  for (uint32_t i = 0; i < di.b; ++i) argv[i] = rdv(st, ids[i]);
  uint64_t r = st.host->host_call(
      st, *static_cast<const Function*>(di.ptr), argv, di.b);
  if (di.result) wrv(st, di, r);
  ++st.ip;
}
void h_ext_safe(ExecState& st, const DecodedInstr& di) {
  uint64_t r =
      st.host->host_external(st, *static_cast<const Instr*>(di.ptr));
  if (di.result) wrv(st, di, r);
  ++st.ip;
}
void h_ext_unsafe(ExecState& st, const DecodedInstr& di) {
  if (st.fr->speculative_entry) {
    // Terminate point (paper IV-C): stop before the unsafe external call;
    // the joiner resumes at the call and executes it non-speculatively.
    st.stop->stop = Stop::kTerminate;
    st.stop->block = di.block;
    st.stop->instr = di.index;
    st.exit = ExecState::Exit::kStopped;
    st.ret = 0;
    return;
  }
  h_ext_safe(st, di);
}

void h_fork(ExecState& st, const DecodedInstr& di) {
  st.host->host_fork(st, *static_cast<const Instr*>(di.ptr));
  ++st.ip;
}
void h_join(ExecState& st, const DecodedInstr& di) {
  uint32_t rb = 0, ri = 0;
  if (st.host->host_join(st, static_cast<int64_t>(di.imm), &rb, &ri)) {
    // Resume from the committed child's stop position; phis there were
    // already materialized into the register file.
    st.prev_block = di.block;
    st.ip = st.df->flat_ip(rb, ri);
  } else {
    ++st.ip;
  }
}
void h_barrier(ExecState& st, const DecodedInstr& di) {
  if (st.fr->speculative_entry) {
    // Barrier point: stop here; the joiner resumes after it.
    st.stop->stop = Stop::kBarrier;
    st.stop->block = di.block;
    st.stop->instr = di.index + 1;
    st.exit = ExecState::Exit::kStopped;
    st.ret = 0;
    return;
  }
  ++st.ip;
}

void h_phi(ExecState& st, const DecodedInstr& di) {
  const Instr& in = *static_cast<const Instr*>(di.ptr);
  for (size_t pi = 0; pi < in.blocks.size(); ++pi) {
    if (in.blocks[pi] == st.prev_block) {
      wrv(st, di, rdv(st, in.args[pi]));
      ++st.ip;
      return;
    }
  }
  MUTLS_CHECK(false, "phi without an edge for the predecessor");
}

// Check-point stop at a back edge (paper IV-E): commit what we have; the
// joiner resumes at the jump target. Phis of the target are materialized
// into the register file so the resume needs no predecessor context.
void check_stop(ExecState& st, const DecodedInstr& di, uint32_t tip) {
  const Function& f = *st.df->fn;
  uint32_t target = st.code[tip].block;
  const Block& tb = f.blocks[target];
  for (const Instr& pin : tb.instrs) {
    if (pin.op != Op::kPhi) break;
    for (size_t pi = 0; pi < pin.blocks.size(); ++pi) {
      if (pin.blocks[pi] == di.block) {
        uint64_t v = rdv(st, pin.args[pi]);
        st.regs[pin.result] = v;
        if (st.track) st.fr->defined[pin.result] = true;
      }
    }
  }
  st.stop->stop = Stop::kCheck;
  st.stop->block = target;
  st.stop->instr = skip_phis(tb);
  st.exit = ExecState::Exit::kStopped;
  st.ret = 0;
}

// Transfer to a native region body (the compilation seam). The body owns
// the loop until it exits or stops; see exec/compiled_region.h for the
// speculative-access contract.
void enter_compiled(ExecState& st, const DecodedInstr& di, RegionInfo& r,
                    CompiledFn cf) {
  RegionCtx ctx;
  ctx.regs = st.regs;
  ctx.td = st.td;
  ctx.mgr = st.mgr;
  ctx.entry_block = di.block;
  ctx.speculative_entry = st.fr->speculative_entry;
  ctx.heat = &r.heat;
  RegionResult res = cf(ctx);
  if (res.kind == RegionResult::Kind::kStop) {
    MUTLS_CHECK(st.fr->speculative_entry,
                "compiled region stopped in a non-speculative frame");
    st.stop->stop = Stop::kCheck;
    st.stop->block = res.block;
    st.stop->instr = res.instr;
    st.exit = ExecState::Exit::kStopped;
    st.ret = 0;
    return;
  }
  st.prev_block = res.pred_block;
  st.ip = st.df->flat_ip(res.block, res.instr);
}

inline void take_edge(ExecState& st, const DecodedInstr& di, uint32_t tip,
                      uint32_t meta) {
  if (meta != 0) {  // edge into a loop header (and/or a back edge)
    RegionInfo& r = *st.df->regions[(meta & kEdgeRegionMask) - 1];
    if (meta & kEdgeBack) {
      // The region profiler's entire hot-path cost: one relaxed add.
      r.heat.fetch_add(1, std::memory_order_relaxed);
      ++st.td->stats.back_edges;
      if (st.fr->speculative_entry) {
        SyncStatus s = st.td->sync_status.load(std::memory_order_acquire);
        if (s == SyncStatus::kNoSync) {
          throw SpecAbort{"NOSYNC at check point"};
        }
        if (s == SyncStatus::kSync) {
          check_stop(st, di, tip);
          return;
        }
      }
    }
    if (st.use_compiled) {
      CompiledFn cf = r.compiled.load(std::memory_order_relaxed);
      if (cf) {
        enter_compiled(st, di, r, cf);
        return;
      }
    }
  }
  st.prev_block = di.block;
  st.ip = tip;
}

void h_br(ExecState& st, const DecodedInstr& di) {
  take_edge(st, di, di.t0, static_cast<uint32_t>(di.aux));
}
void h_condbr(ExecState& st, const DecodedInstr& di) {
  if (rdv(st, di.a) & 1) {
    take_edge(st, di, di.t0, static_cast<uint32_t>(di.aux));
  } else {
    take_edge(st, di, di.t1, static_cast<uint32_t>(di.aux >> 32));
  }
}

void h_ret_void(ExecState& st, const DecodedInstr& di) {
  if (st.fr->speculative_entry) {
    // Return point: the speculative thread may not return from its entry
    // function (paper IV-H); stop and let the joiner execute the ret.
    st.stop->stop = Stop::kRet;
    st.stop->block = di.block;
    st.stop->instr = di.index;
    st.exit = ExecState::Exit::kStopped;
    st.ret = 0;
    return;
  }
  st.exit = ExecState::Exit::kReturn;
  st.ret = 0;
}
void h_ret_val(ExecState& st, const DecodedInstr& di) {
  if (st.fr->speculative_entry) {
    st.stop->stop = Stop::kRet;
    st.stop->block = di.block;
    st.stop->instr = di.index;
    st.exit = ExecState::Exit::kStopped;
    st.ret = 0;
    return;
  }
  st.exit = ExecState::Exit::kReturn;
  st.ret = rdv(st, di.a);
}

void h_trap(ExecState& st, const DecodedInstr& di) {
  (void)st;
  (void)di;
  MUTLS_CHECK(false, "block without terminator effect");
}

// --- decoder ------------------------------------------------------------

bool ends_block(Op op) {
  return op == Op::kBr || op == Op::kCondBr || op == Op::kRet;
}

uint32_t edge_meta(const DecodedFunction& df, uint32_t from, uint32_t to) {
  int r = df.region_of(to);
  if (r < 0) return 0;
  uint32_t meta = static_cast<uint32_t>(r) + 1;
  if (to <= from) meta |= kEdgeBack;
  return meta;
}

void decode_instr(const ir::Module& m, const Function& f,
                  DecodedFunction& df, const Instr& in, uint32_t block,
                  uint32_t index, DecodedInstr& d,
                  const std::function<void*(const std::string&)>& gaddr) {
  d.block = block;
  d.index = index;
  d.result = in.result;
  if (!in.args.empty()) d.a = in.args[0];
  if (in.args.size() > 1) d.b = in.args[1];
  if (in.args.size() > 2) d.c = in.args[2];
  switch (in.op) {
    case Op::kConst:
      d.handler = h_const;
      d.imm = is_float(in.type)
                  ? (in.type == Type::kF32
                         ? from_f32(static_cast<float>(in.fimm))
                         : from_f64(in.fimm))
                  : (static_cast<uint64_t>(in.imm) & mask_of(in.type));
      break;
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
      d.handler = in.op == Op::kAdd ? h_add
                  : in.op == Op::kSub ? h_sub
                                      : h_mul;
      d.imm = mask_of(in.type);
      break;
    case Op::kSDiv:
    case Op::kSRem:
      d.handler = in.op == Op::kSDiv ? h_sdiv : h_srem;
      d.imm = mask_of(in.type);
      d.aux = sext_shift(in.type);
      break;
    case Op::kAnd: d.handler = h_and; break;
    case Op::kOr: d.handler = h_or; break;
    case Op::kXor: d.handler = h_xor; break;
    case Op::kShl:
      d.handler = h_shl;
      d.imm = mask_of(in.type);
      break;
    case Op::kLShr:
      d.handler = h_lshr;
      d.imm = mask_of(in.type);
      break;
    case Op::kAShr:
      d.handler = h_ashr;
      d.imm = mask_of(in.type);
      d.aux = sext_shift(in.type);
      break;
    case Op::kFAdd:
      d.handler = in.type == Type::kF32 ? h_fadd32 : h_fadd64;
      break;
    case Op::kFSub:
      d.handler = in.type == Type::kF32 ? h_fsub32 : h_fsub64;
      break;
    case Op::kFMul:
      d.handler = in.type == Type::kF32 ? h_fmul32 : h_fmul64;
      break;
    case Op::kFDiv:
      d.handler = in.type == Type::kF32 ? h_fdiv32 : h_fdiv64;
      break;
    case Op::kICmp:
      switch (in.pred) {
        case Pred::kEq: d.handler = h_icmp_eq; break;
        case Pred::kNe: d.handler = h_icmp_ne; break;
        case Pred::kSlt: d.handler = h_icmp_slt; break;
        case Pred::kSle: d.handler = h_icmp_sle; break;
        case Pred::kSgt: d.handler = h_icmp_sgt; break;
        case Pred::kSge: d.handler = h_icmp_sge; break;
        default: MUTLS_CHECK(false, "bad icmp predicate");
      }
      d.aux = sext_shift(f.value_types[in.args[0]]);
      break;
    case Op::kFCmp:
      switch (in.pred) {
        case Pred::kOeq: d.handler = h_fcmp_oeq; break;
        case Pred::kOne: d.handler = h_fcmp_one; break;
        case Pred::kOlt: d.handler = h_fcmp_olt; break;
        case Pred::kOle: d.handler = h_fcmp_ole; break;
        case Pred::kOgt: d.handler = h_fcmp_ogt; break;
        case Pred::kOge: d.handler = h_fcmp_oge; break;
        default: MUTLS_CHECK(false, "bad fcmp predicate");
      }
      d.aux = f.value_types[in.args[0]] == Type::kF32 ? 1 : 0;
      break;
    case Op::kSelect: d.handler = h_select; break;
    case Op::kTrunc:
      d.handler = h_mask;
      d.imm = mask_of(in.type);
      break;
    case Op::kZExt:
      d.handler = h_mask;
      d.imm = mask_of(f.value_types[in.args[0]]);
      break;
    case Op::kSExt:
      d.handler = h_sext;
      d.aux = sext_shift(f.value_types[in.args[0]]);
      d.imm = mask_of(in.type);
      break;
    case Op::kSIToFP:
      d.handler = in.type == Type::kF32 ? h_sitofp32 : h_sitofp64;
      d.aux = sext_shift(f.value_types[in.args[0]]);
      break;
    case Op::kFPToSI:
      d.handler = h_fptosi;
      d.aux = f.value_types[in.args[0]] == Type::kF32 ? 1 : 0;
      d.imm = mask_of(in.type);
      break;
    case Op::kPtrToInt:
    case Op::kIntToPtr:
    case Op::kBitcast:
      d.handler = h_copy;
      break;
    case Op::kAlloca:
      d.handler = h_alloca;
      d.imm = static_cast<uint64_t>(in.imm);
      break;
    case Op::kLoad:
      d.handler = h_load;
      d.imm = type_size(in.type);
      d.aux = mask_of(in.type);
      break;
    case Op::kStore:
      d.handler = h_store;
      d.imm = type_size(f.value_types[in.args[0]]);
      break;
    case Op::kGep:
      d.handler = h_gep;
      d.imm = static_cast<uint64_t>(in.imm);
      d.aux = sext_shift(f.value_types[in.args[1]]);
      break;
    case Op::kGlobal:
      d.handler = h_global;
      d.ptr = gaddr(in.sym);
      break;
    case Op::kCall: {
      const Function* callee = m.find_function(in.sym);
      if (callee) {
        MUTLS_CHECK(in.args.size() <= kMaxCallArgs,
                    "call with too many arguments");
        d.handler = h_call;
        d.ptr = callee;
        d.a = static_cast<uint32_t>(df.arg_pool.size());
        d.b = static_cast<uint32_t>(in.args.size());
        for (ValueId v : in.args) df.arg_pool.push_back(v);
      } else {
        // Known-safe externals run anywhere; everything else is a
        // terminate point in a speculative entry frame (paper IV-C).
        d.handler = in.sym == "abs_i64" ? h_ext_safe : h_ext_unsafe;
        d.ptr = &in;
      }
      break;
    }
    case Op::kMutlsFork:
      d.handler = h_fork;
      d.ptr = &in;
      break;
    case Op::kMutlsJoin:
      d.handler = h_join;
      d.imm = static_cast<uint64_t>(in.imm);
      break;
    case Op::kMutlsBarrier: d.handler = h_barrier; break;
    case Op::kPhi:
      d.handler = h_phi;
      d.ptr = &in;
      break;
    case Op::kBr:
      d.handler = h_br;
      d.t0 = df.flat_ip(in.blocks[0], 0);
      d.aux = edge_meta(df, block, in.blocks[0]);
      break;
    case Op::kCondBr:
      d.handler = h_condbr;
      d.t0 = df.flat_ip(in.blocks[0], 0);
      d.t1 = df.flat_ip(in.blocks[1], 0);
      d.aux = edge_meta(df, block, in.blocks[0]) |
              (static_cast<uint64_t>(edge_meta(df, block, in.blocks[1]))
               << 32);
      break;
    case Op::kRet:
      d.handler = in.args.empty() ? h_ret_void : h_ret_val;
      break;
  }
  MUTLS_CHECK(d.handler != nullptr, "undecodable instruction");
}

void decode_function(const ir::Module& m, const Function& f,
                     DecodedFunction& df,
                     const std::function<void*(const std::string&)>& gaddr) {
  df.fn = &f;

  // Flat layout: blocks concatenated in order; a block whose last
  // instruction is not a terminator (or that is empty) gets a trailing
  // trap slot so execution cannot silently fall into the next block —
  // the oracle's "block without terminator effect" check, paid at decode
  // layout time instead of per iteration.
  df.block_start.resize(f.blocks.size());
  uint32_t cur = 0;
  for (uint32_t b = 0; b < f.blocks.size(); ++b) {
    df.block_start[b] = cur;
    const Block& blk = f.blocks[b];
    cur += static_cast<uint32_t>(blk.instrs.size());
    if (blk.instrs.empty() || !ends_block(blk.instrs.back().op)) ++cur;
  }
  df.code.resize(cur);

  // Region table: one entry per loop header (back-edge target under the
  // block-ordering discipline shared with the oracle's check points).
  for (uint32_t h : loop_headers(f)) {
    auto r = std::make_unique<RegionInfo>();
    r->header_block = h;
    r->label = f.blocks[h].label;
    df.regions.push_back(std::move(r));
  }
  for (uint32_t b = 0; b < f.blocks.size(); ++b) {
    for (const Instr& in : f.blocks[b].instrs) {
      if (in.op != Op::kBr && in.op != Op::kCondBr) continue;
      for (uint32_t t : in.blocks) {
        if (t > b) continue;
        int r = df.region_of(t);
        if (r >= 0 && df.regions[static_cast<size_t>(r)]->last_latch < b) {
          df.regions[static_cast<size_t>(r)]->last_latch = b;
        }
      }
    }
  }

  // Fork-point table: join positions and live-in validation sets, one
  // liveness pass per function at load (paper IV-G4). Fork points without
  // a matching join stay absent and fail at execution time, exactly like
  // the oracle's lazy lookup did.
  bool has_forks = false;
  for (const Block& blk : f.blocks) {
    for (const Instr& in : blk.instrs) {
      if (in.op == Op::kMutlsFork) has_forks = true;
    }
  }
  if (has_forks) {
    std::vector<std::vector<bool>> live = compute_live_in(f);
    for (const Block& blk : f.blocks) {
      for (const Instr& in : blk.instrs) {
        if (in.op != Op::kMutlsFork) continue;
        if (df.fork_points.count(in.imm)) continue;
        for (uint32_t b = 0; b < f.blocks.size(); ++b) {
          const Block& jb = f.blocks[b];
          for (uint32_t i = 0; i < jb.instrs.size(); ++i) {
            if (jb.instrs[i].op == Op::kMutlsJoin &&
                jb.instrs[i].imm == in.imm) {
              ForkPointInfo info;
              info.join_block = b;
              info.join_instr = i + 1;
              std::vector<bool> li = live_at(f, live, b, i + 1);
              for (ValueId v = 1; v < f.value_count; ++v) {
                if (li[v]) info.validate_ids.push_back(v);
              }
              df.fork_points.emplace(in.imm, std::move(info));
              goto next_fork;
            }
          }
        }
      next_fork:;
      }
    }
  }

  // Instruction decode (after block_start and regions exist: branch
  // targets and edge metadata are resolved inline).
  for (uint32_t b = 0; b < f.blocks.size(); ++b) {
    const Block& blk = f.blocks[b];
    uint32_t base = df.block_start[b];
    for (uint32_t i = 0; i < blk.instrs.size(); ++i) {
      decode_instr(m, f, df, blk.instrs[i], b, i, df.code[base + i], gaddr);
    }
    if (blk.instrs.empty() || !ends_block(blk.instrs.back().op)) {
      DecodedInstr& t = df.code[base + blk.instrs.size()];
      t.handler = h_trap;
      t.block = b;
      t.index = static_cast<uint32_t>(blk.instrs.size());
    }
  }
}

}  // namespace

DecodedModule::DecodedModule(
    const ir::Module& m,
    const std::function<void*(const std::string&)>& global_addr) {
  for (const Function& f : m.functions) {
    auto df = std::make_unique<DecodedFunction>();
    decode_function(m, f, *df, global_addr);
    fns_.emplace(&f, std::move(df));
  }
}

bool DecodedModule::register_compiled(const std::string& function,
                                      const std::string& header_label,
                                      CompiledFn body) {
  for (auto& [f, df] : fns_) {
    if (f->name != function) continue;
    for (auto& r : df->regions) {
      if (r->label != header_label) continue;
      // Eligibility: the region's blocks (header..last latch, the natural-
      // loop extent under the block-ordering discipline) must be free of
      // speculation intrinsics and calls — a native body cannot re-enter
      // the interpreter mid-region.
      for (uint32_t b = r->header_block; b <= r->last_latch; ++b) {
        for (const Instr& in : f->blocks[b].instrs) {
          MUTLS_CHECK(in.op != Op::kMutlsFork && in.op != Op::kMutlsJoin &&
                          in.op != Op::kMutlsBarrier && in.op != Op::kCall,
                      "region with forks/joins/calls cannot be compiled");
        }
      }
      r->compiled.store(body, std::memory_order_relaxed);
      return true;
    }
    return false;
  }
  return false;
}

void DecodedModule::reset_heat() {
  for (auto& [f, df] : fns_) {
    (void)f;
    for (auto& r : df->regions) r->heat.store(0, std::memory_order_relaxed);
  }
}

uint64_t run(ExecState& st) {
  while (st.exit == ExecState::Exit::kRunning) {
    const DecodedInstr& di = st.code[st.ip];
    di.handler(st, di);
  }
  return st.ret;
}

}  // namespace mutls::exec
