#include "runtime/local_buffer.h"

namespace mutls {

void StackBuffer::set(int offset, uintptr_t addr, const void* data,
                      size_t size) {
  Record& rec = entries_[offset];
  rec.writer.addr = addr;
  rec.writer.bytes.assign(static_cast<const char*>(data),
                          static_cast<const char*>(data) + size);
}

bool StackBuffer::get(int offset, uintptr_t addr, void* out, size_t size) {
  auto it = entries_.find(offset);
  if (it == entries_.end()) return false;
  Record& rec = it->second;
  if (rec.writer.bytes.size() != size) return false;
  std::memcpy(out, rec.writer.bytes.data(), size);
  rec.reader_addr = addr;
  return true;
}

const StackBuffer::Entry* StackBuffer::lookup(int offset) const {
  auto it = entries_.find(offset);
  return it == entries_.end() ? nullptr : &it->second.writer;
}

uintptr_t StackBuffer::map_pointer(uintptr_t value) const {
  for (const auto& [offset, rec] : entries_) {
    (void)offset;
    uintptr_t lo = rec.writer.addr;
    uintptr_t hi = lo + rec.writer.bytes.size();
    if (value >= lo && value < hi && rec.reader_addr) {
      return rec.reader_addr + (value - lo);
    }
  }
  return 0;
}

}  // namespace mutls
