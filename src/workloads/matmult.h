// Block-based recursive matrix multiplication — Table II row 7.
//
// C = A*B by quadrant recursion: each level splits the product into four
// C-quadrant sub-tasks (the paper: "we split the computation into 4
// sub-tasks each multiplying one sub-matrix"), each sub-task performing two
// block multiplies (assign, then accumulate). When sub-tasks speculate
// their own sub-sub-tasks, the accumulate phase reads blocks written by the
// assign phase that still sit in the speculative parent's buffer — the
// paper's source of matmult rollbacks, reproduced here. Divide-and-conquer
// pattern, memory-intensive. Paper size: 1024x1024 doubles.
#pragma once

#include "workloads/workload.h"

namespace mutls::workloads {

struct MatMult {
  struct Params {
    int n = 128;          // matrix dimension (power of two)
    int leaf = 32;        // dense-kernel block size
    int fork_levels = 2;  // speculate in the top levels of the recursion
    uint64_t seed = 11;
  };

  static constexpr const char* kName = "matmult";
  static constexpr Pattern kPattern = Pattern::kDivideAndConquer;

  static SeqRun run_seq(const Params& p);
  static SpecRun run_spec(Runtime& rt, const Params& p, ForkModel model);
};

}  // namespace mutls::workloads
