#include "support/prng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace mutls {
namespace {

TEST(Xorshift64, DeterministicForSameSeed) {
  Xorshift64 a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Xorshift64, DifferentSeedsDiverge) {
  Xorshift64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Xorshift64, ZeroSeedDoesNotDegenerate) {
  Xorshift64 a(0);
  std::set<uint64_t> seen;
  for (int i = 0; i < 64; ++i) seen.insert(a.next());
  EXPECT_EQ(seen.size(), 64u);
}

TEST(Xorshift64, DoubleInUnitInterval) {
  Xorshift64 a(7);
  for (int i = 0; i < 1000; ++i) {
    double d = a.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xorshift64, NextBelowInRange) {
  Xorshift64 a(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(a.next_below(17), 17u);
  }
  EXPECT_EQ(a.next_below(0), 0u);
}

TEST(Xorshift64, BernoulliFrequencyTracksProbability) {
  Xorshift64 a(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (a.bernoulli(0.25)) ++hits;
  }
  double rate = static_cast<double>(hits) / n;
  EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(Xorshift64, BernoulliEdges) {
  Xorshift64 a(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(a.bernoulli(0.0));
    EXPECT_TRUE(a.bernoulli(1.0));
  }
}

TEST(Xorshift64, ReseedRestartsSequence) {
  Xorshift64 a(5);
  uint64_t first = a.next();
  a.next();
  a.reseed(5);
  EXPECT_EQ(a.next(), first);
}

TEST(Zipf, SamplesStayInRange) {
  Xorshift64 rng(17);
  Zipf z(100, 1.1);
  for (int i = 0; i < 20000; ++i) {
    uint64_t k = z.sample(rng);
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, 100u);
  }
}

TEST(Zipf, DeterministicForSameRngState) {
  Zipf z(5000, 0.9);
  Xorshift64 a(23), b(23);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(z.sample(a), z.sample(b));
  }
}

TEST(Zipf, MassSumsToOne) {
  for (double s : {0.5, 1.0, 1.1, 2.0}) {
    Zipf z(200, s);
    double total = 0.0;
    for (uint64_t k = 1; k <= 200; ++k) total += z.mass(k);
    EXPECT_NEAR(total, 1.0, 1e-12) << "s=" << s;
  }
}

// Empirical frequencies must track the exact mass function — the
// distribution-shape test for the rejection-inversion sampler, run across
// the s < 1, s = 1 (the harmonic singularity the expm1/log1p helpers
// bridge) and s > 1 regimes.
TEST(Zipf, FrequenciesMatchMass) {
  const uint64_t n = 50;
  const int draws = 200000;
  for (double s : {0.6, 1.0, 1.3}) {
    Zipf z(n, s);
    Xorshift64 rng(31);
    std::vector<int> counts(n + 1, 0);
    for (int i = 0; i < draws; ++i) ++counts[z.sample(rng)];
    for (uint64_t k : {uint64_t{1}, uint64_t{2}, uint64_t{5}, uint64_t{20},
                       n}) {
      double expected = z.mass(k);
      double got = static_cast<double>(counts[k]) / draws;
      // 4-sigma band of the binomial count, plus an absolute floor for the
      // deep tail where sigma is tiny.
      double sigma = std::sqrt(expected * (1.0 - expected) / draws);
      EXPECT_NEAR(got, expected, 4.0 * sigma + 5e-4)
          << "s=" << s << " k=" << k;
    }
  }
}

TEST(Zipf, HeavierExponentConcentratesHead) {
  const uint64_t n = 1000;
  const int draws = 50000;
  auto head_share = [&](double s) {
    Zipf z(n, s);
    Xorshift64 rng(47);
    int head = 0;
    for (int i = 0; i < draws; ++i) {
      if (z.sample(rng) <= 10) ++head;
    }
    return static_cast<double>(head) / draws;
  };
  double light = head_share(0.5);
  double heavy = head_share(1.5);
  EXPECT_GT(heavy, light + 0.2);  // s=1.5 puts most mass on the top keys
}

TEST(Zipf, SingleValueDegenerates) {
  Zipf z(1, 1.1);
  Xorshift64 rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.sample(rng), 1u);
  EXPECT_DOUBLE_EQ(z.mass(1), 1.0);
}

}  // namespace
}  // namespace mutls
