#include "serving/request_gen.h"

#include <cstdio>
#include <cstring>

namespace mutls::serving {

namespace {

// Deterministic payload size for a PUT of `key`: 64..4159 bytes, mixed so
// neighbouring keys differ.
uint64_t body_bytes_for(uint64_t key) {
  uint64_t z = key * 0x9e3779b97f4a7c15ull;
  z ^= z >> 29;
  return 64 + (z & 4095);
}

}  // namespace

RequestGen::RequestGen(const TrafficConfig& cfg)
    : cfg_(cfg),
      rng_(cfg.seed),
      zipf_(cfg.num_keys, cfg.zipf_s > 0.0 ? cfg.zipf_s : 1.0) {
  MUTLS_CHECK(cfg.num_keys >= 1, "traffic needs at least one key");
  MUTLS_CHECK(cfg.put_ratio >= 0.0 && cfg.put_ratio <= 1.0 &&
                  cfg.malformed_ratio >= 0.0 && cfg.malformed_ratio <= 1.0,
              "traffic ratios must be in [0, 1]");
}

size_t RequestGen::generate(char* buf, size_t cap) {
  MUTLS_CHECK(cap >= kMaxRequestBytes, "request buffer too small");
  uint64_t key = cfg_.zipf_s > 0.0 ? zipf_.sample(rng_)
                                   : 1 + rng_.next_below(cfg_.num_keys);
  bool is_put = rng_.bernoulli(cfg_.put_ratio);
  last_ = Shape{};
  last_.is_put = is_put;
  last_.key = key;

  int n;
  if (is_put) {
    last_.content_length = body_bytes_for(key);
    n = std::snprintf(buf, cap,
                      "PUT /cache/items/%llu HTTP/1.1\r\n"
                      "Host: bench.local\r\n"
                      "Content-Length: %llu\r\n"
                      "\r\n",
                      static_cast<unsigned long long>(key),
                      static_cast<unsigned long long>(last_.content_length));
  } else {
    n = std::snprintf(buf, cap,
                      "GET /cache/items/%llu HTTP/1.1\r\n"
                      "Host: bench.local\r\n"
                      "Accept: */*\r\n"
                      "\r\n",
                      static_cast<unsigned long long>(key));
  }
  MUTLS_CHECK(n > 0 && static_cast<size_t>(n) < cap,
              "generated request overflowed its slot");
  size_t len = static_cast<size_t>(n);

  if (cfg_.malformed_ratio > 0.0 && rng_.bernoulli(cfg_.malformed_ratio)) {
    last_.corrupted = true;
    switch (rng_.next_below(5)) {
      case 0:  // torn read: truncate mid-head
        len = 1 + rng_.next_below(len - 1);
        break;
      case 1:  // leading space: empty method token
        buf[0] = ' ';
        break;
      case 2: {  // mangle the version field
        char* v = std::strstr(buf, "HTTP/");
        v[5] = 'X';
        break;
      }
      case 3: {  // drop the first header colon
        char* c = static_cast<char*>(std::memchr(buf, ':', len));
        if (c != nullptr) *c = ' ';
        break;
      }
      case 4: {  // bare LF line ending
        char* cr = static_cast<char*>(std::memchr(buf, '\r', len));
        if (cr != nullptr) *cr = '\n';
        break;
      }
    }
  }
  return len;
}

void RequestGen::fill(RequestBatch& batch) {
  for (size_t i = 0; i < batch.count(); ++i) {
    batch.len_[i] =
        static_cast<uint32_t>(generate(batch.slot(i), kMaxRequestBytes));
  }
}

}  // namespace mutls::serving
