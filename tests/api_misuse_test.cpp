// API misuse and lifetime coverage: double joins, join-after-move,
// missing joins (the run-drain CHECK), detached-handle misuse, and the
// ScopedSpec unwind path (exception between fork and join NOSYNCs the
// speculation instead of executing or leaking it).
#include <gtest/gtest.h>

#include <stdexcept>

#include "mutls/mutls.h"

namespace mutls {
namespace {

Runtime::Options small_opts(int cpus = 2) {
  Runtime::Options o;
  o.num_cpus = cpus;
  o.buffer_log2 = 10;
  o.overflow_cap = 256;
  return o;
}

// Death tests fork the process; with runtime threads around, the
// re-exec-from-scratch style is the safe one.
class ApiMisuseDeathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

TEST_F(ApiMisuseDeathTest, DoubleJoinDies) {
  EXPECT_DEATH(
      {
        Runtime rt(small_opts());
        SharedArray<uint64_t> data(rt, 1, 0);
        rt.run([&](Ctx& ctx) {
          Spec s = rt.fork(ctx, ForkModel::kMixed,
                           [&](Ctx& c) { data.at(c, 0) = 1; });
          rt.join(ctx, s);
          rt.join(ctx, s);  // misuse: the handle was already consumed
        });
      },
      "double join");
}

TEST_F(ApiMisuseDeathTest, JoinOfDetachedHandleDies) {
  EXPECT_DEATH(
      {
        Runtime rt(small_opts());
        SharedArray<uint64_t> data(rt, 1, 0);
        rt.run([&](Ctx& ctx) {
          Spec s = rt.fork(ctx, ForkOpts{.tag = 7, .detached = true},
                           [&](Ctx& c) { data.at(c, 0) = 1; });
          rt.join(ctx, s);  // misuse: detached forks are adopted, not joined
        });
      },
      "detached");
}

TEST_F(ApiMisuseDeathTest, DetachedForkWithPredictionsDies) {
  EXPECT_DEATH(
      {
        Runtime rt(small_opts());
        SharedArray<uint64_t> data(rt, 1, 0);
        rt.run([&](Ctx& ctx) {
          int64_t i = 0;
          // Misuse: join_next() never validates predictions, so this
          // combination would silently commit mispredicted results.
          rt.fork(ctx,
                  ForkOpts{.predictions = {Prediction::of<int64_t>(&i, 1)},
                           .detached = true},
                  [&](Ctx& c) { data.at(c, 0) = 1; });
        });
      },
      "detached forks cannot carry live-in predictions");
}

TEST_F(ApiMisuseDeathTest, ScopedJoinAfterMoveDies) {
  EXPECT_DEATH(
      {
        Runtime rt(small_opts());
        SharedArray<uint64_t> data(rt, 1, 0);
        rt.run([&](Ctx& ctx) {
          ScopedSpec s = rt.fork_scoped(ctx, ForkModel::kMixed,
                                        [&](Ctx& c) { data.at(c, 0) = 1; });
          ScopedSpec moved = std::move(s);
          moved.join();
          s.join();  // misuse: s was moved from
        });
      },
      "inactive ScopedSpec");
}

TEST_F(ApiMisuseDeathTest, MissingJoinDies) {
  // The dropped handle's destructor CHECKs first; the run-drain CHECK
  // (Options::missing_join_timeout_ns) remains the backstop for protocol
  // leaks that bypass Spec entirely.
  EXPECT_DEATH(
      {
        Runtime::Options o = small_opts();
        o.missing_join_timeout_ns = 200'000'000;  // fail fast, not in 5s
        Runtime rt(o);
        SharedArray<uint64_t> data(rt, 1, 0);
        rt.run([&](Ctx& ctx) {
          Spec s = rt.fork(ctx, ForkModel::kMixed,
                           [&](Ctx& c) { data.at(c, 0) = 1; });
          (void)s;  // misuse: the fork is never joined
        });
      },
      "missing join");
}

TEST_F(ApiMisuseDeathTest, DroppedDeniedForkDies) {
  // A denied fork holds the region as a deferred task; dropping the handle
  // would silently skip the region, so it must die too — this path leaves
  // no live thread for the run-drain CHECK to notice.
  EXPECT_DEATH(
      {
        Runtime rt(small_opts(1));
        SharedArray<uint64_t> data(rt, 2, 0);
        rt.run([&](Ctx& ctx) {
          Spec occupant = rt.fork(ctx, ForkModel::kMixed,
                                  [&](Ctx& c) { data.at(c, 0) = 1; });
          {
            Spec denied = rt.fork(ctx, ForkModel::kMixed,
                                  [&](Ctx& c) { data.at(c, 1) = 2; });
            (void)denied;  // misuse: dropped without join
          }
          rt.join(ctx, occupant);
        });
      },
      "missing join");
}

// --- ScopedSpec lifetime ---------------------------------------------------

TEST(ScopedSpecLifetime, JoinsAtScopeExit) {
  Runtime rt(small_opts());
  SharedArray<uint64_t> data(rt, 2, 0);
  rt.run([&](Ctx& ctx) {
    {
      ScopedSpec s = rt.fork_scoped(ctx, ForkModel::kMixed,
                                    [&](Ctx& c) { data.at(c, 1) = 22; });
      data.at(ctx, 0) = 11;
    }  // join here
    EXPECT_EQ(data.at(ctx, 1).get(), 22u);
  });
  EXPECT_EQ(data[0], 11u);
  EXPECT_EQ(data[1], 22u);
}

TEST(ScopedSpecLifetime, ExplicitJoinThenScopeExitIsSingleJoin) {
  Runtime rt(small_opts());
  SharedArray<uint64_t> data(rt, 1, 0);
  rt.run([&](Ctx& ctx) {
    ScopedSpec s = rt.fork_scoped(ctx, ForkModel::kMixed,
                                  [&](Ctx& c) { data.at(c, 0) = 5; });
    JoinOutcome r = s.join();
    EXPECT_NE(r, JoinOutcome::kDiscarded);
    EXPECT_TRUE(s.joined());
    // Destructor must not join again.
  });
  EXPECT_EQ(data[0], 5u);
}

TEST(ScopedSpecLifetime, MoveTransfersTheJoinObligation) {
  Runtime rt(small_opts());
  SharedArray<uint64_t> data(rt, 1, 0);
  rt.run([&](Ctx& ctx) {
    ScopedSpec inner = rt.fork_scoped(ctx, ForkModel::kMixed,
                                      [&](Ctx& c) { data.at(c, 0) = 9; });
    ScopedSpec owner = std::move(inner);
    EXPECT_TRUE(inner.joined()) << "moved-from scope holds no obligation";
    EXPECT_FALSE(owner.joined());
    owner.join();
  });  // moved-from inner destructs: must be a no-op
  EXPECT_EQ(data[0], 9u);
}

TEST(ScopedSpecLifetime, UnwindDiscardsTheSpeculation) {
  // An exception thrown between fork and join abandons the region; the
  // ScopedSpec destructor must NOSYNC the speculation — its effects never
  // commit, its task is not executed inline, and the run ends clean.
  Runtime rt(small_opts());
  SharedArray<uint64_t> data(rt, 1, 0);
  std::atomic<int> task_runs{0};
  RunStats rs = rt.run([&](Ctx& ctx) {
    try {
      ScopedSpec s = rt.fork_scoped(ctx, ForkModel::kMixed, [&](Ctx& c) {
        ++task_runs;
        data.at(c, 0) = 99;
      });
      throw std::runtime_error("abandon the region");
    } catch (const std::runtime_error&) {
      // Unwound through the ScopedSpec: the speculation is discarded.
    }
  });
  EXPECT_EQ(data[0], 0u) << "a discarded speculation must not commit";
  EXPECT_LE(task_runs.load(), 1) << "the region must not be re-executed";
  EXPECT_EQ(rs.speculative.commits, 0u);
}

TEST(ScopedSpecLifetime, UnwindDropsADeferredTask) {
  // Same abandonment, but with speculation denied (no free CPU): the
  // deferred task must be dropped, not executed, on unwind.
  Runtime rt(small_opts(1));
  SharedArray<uint64_t> data(rt, 2, 0);
  rt.run([&](Ctx& ctx) {
    ScopedSpec occupant = rt.fork_scoped(ctx, ForkModel::kMixed,
                                         [&](Ctx& c) { data.at(c, 0) = 1; });
    try {
      ScopedSpec denied = rt.fork_scoped(
          ctx, ForkModel::kMixed, [&](Ctx& c) { data.at(c, 1) = 2; });
      EXPECT_FALSE(denied.speculated());
      throw std::runtime_error("abandon");
    } catch (const std::runtime_error&) {
    }
  });
  EXPECT_EQ(data[1], 0u) << "a dropped deferred task must not run";
  EXPECT_EQ(data[0], 1u);
}

TEST(ScopedSpecLifetime, UnwindDiscardsWholeLifoGroup) {
  // Several scopes abandoned at once: unwinding discards every one of
  // them — discarding an earlier child NOSYNCs the later ones with it.
  Runtime rt(small_opts(4));
  SharedArray<uint64_t> data(rt, 4, 0);
  rt.run([&](Ctx& ctx) {
    try {
      ScopedSpec s0 = rt.fork_scoped(ctx, ForkModel::kMixed,
                                     [&](Ctx& c) { data.at(c, 0) = 7; });
      ScopedSpec s1 = rt.fork_scoped(ctx, ForkModel::kMixed,
                                     [&](Ctx& c) { data.at(c, 1) = 7; });
      ScopedSpec s2 = rt.fork_scoped(ctx, ForkModel::kMixed,
                                     [&](Ctx& c) { data.at(c, 2) = 7; });
      throw std::runtime_error("abandon all");
    } catch (const std::runtime_error&) {
    }
  });
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(data[i], 0u) << "spec " << i << " must be discarded";
  }
}

TEST(ScopedSpecLifetime, OutcomeReportsCommitOrInline) {
  Runtime rt(small_opts());
  SharedArray<uint64_t> data(rt, 1, 0);
  rt.run([&](Ctx& ctx) {
    ScopedSpec s = rt.fork_scoped(ctx, ForkModel::kMixed,
                                  [&](Ctx& c) { data.at(c, 0) = 3; });
    JoinOutcome r = s.join();
    if (s.speculated()) {
      EXPECT_TRUE(r == JoinOutcome::kCommitted ||
                  r == JoinOutcome::kRolledBack);
    } else {
      EXPECT_EQ(r, JoinOutcome::kSequential);
    }
    EXPECT_EQ(r, s.outcome());
  });
  EXPECT_EQ(data[0], 3u);
}

}  // namespace
}  // namespace mutls
