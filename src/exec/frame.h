// Execution-state types shared by every dispatch tier of the execution
// engine (src/exec/) and by the interpreter's switch oracle (src/interp/).
//
// A Frame is one activation of an IR function: the flat register file, the
// frame-owned allocas and the fork bookkeeping of the tree-form mixed
// model. A StopState is the continuation deposited by a speculative entry
// frame when it reaches a stop point (barrier / return / terminate /
// check); the joiner resumes from it on commit. Both are dispatch-mode
// agnostic: a child may stop under direct-threaded dispatch and be resumed
// by a joiner running any other tier, because positions are recorded in
// original (block, instr) coordinates.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ir/ir.h"
#include "runtime/thread_data.h"
#include "runtime/thread_manager.h"

namespace mutls::exec {

// Bookkeeping of one outstanding fork point in a frame.
struct ForkRec {
  ChildRef ref;
  std::vector<uint64_t> snapshot;  // registers at the fork point
  // Values to validate at the join (live-ins of the continuation,
  // paper IV-G4): snapshot[v] must equal the joiner's regs[v]. Points into
  // the decoded module's precomputed per-fork-point set.
  const std::vector<ir::ValueId>* validate_ids = nullptr;
  bool active = false;
};

// Why a speculative entry frame stopped.
enum class Stop : uint8_t {
  kNone,       // ran to ret (non-speculative only)
  kBarrier,    // at mutls.barrier (resume after it)
  kRet,        // at ret (resume executing the ret)
  kTerminate,  // at an external call (resume executing the call)
  kCheck,      // at a loop back edge after SYNC (resume at jump target)
};

// Deposited via ThreadData::user_state at a stop. Owns the entry frame's
// allocas until a committing joiner adopts them (they are live stack
// memory of the resumed continuation).
struct StopState {
  Stop stop = Stop::kNone;
  uint32_t block = 0;
  uint32_t instr = 0;
  std::vector<uint64_t> regs;
  std::vector<bool> used_snapshot;
  std::unordered_map<int64_t, ForkRec> forks;  // un-joined (adopted)
  std::vector<std::pair<char*, size_t>> allocas;
  ThreadManager* mgr = nullptr;

  ~StopState() {
    // Allocas not adopted by a committing joiner (rollback / NOSYNC) are
    // released here.
    for (auto& [addr, size] : allocas) {
      if (mgr) mgr->unregister_space(addr, size);
      delete[] addr;
    }
  }
};

// One activation of an IR function.
struct Frame {
  const ir::Function* fn = nullptr;
  std::vector<uint64_t> regs;
  std::vector<bool> defined;  // child-side defs (snapshot tracking)
  std::vector<bool> used_snapshot;
  std::vector<std::pair<char*, size_t>> allocas;
  std::unordered_map<int64_t, ForkRec> forks;
  bool speculative_entry = false;  // polls + stop points enabled
};

}  // namespace mutls::exec
