// Core enumerations of the MUTLS runtime (paper sections II, IV-D, IV-E).
#pragma once

namespace mutls {

// Forking models (paper section II). The model is a property of each fork
// point, passed as the `model` argument of __builtin_MUTLS_fork.
enum class ForkModel : int {
  kInOrder = 0,     // only the most speculative thread may fork
  kOutOfOrder = 1,  // only the non-speculative thread may fork
  kMixed = 2,       // every thread may fork: tree of threads
};

inline const char* fork_model_name(ForkModel m) {
  switch (m) {
    case ForkModel::kInOrder: return "in-order";
    case ForkModel::kOutOfOrder: return "out-of-order";
    case ForkModel::kMixed: return "mixed";
  }
  return "?";
}

// Speculative-buffer backends (runtime IV-G2 and beyond). The backend is a
// property of the whole ThreadManager (every virtual CPU's SpecBuffer is
// configured identically), resolved once at construction; the per-access
// dispatch in SpecBuffer is a single predictable branch, never a virtual
// call.
enum class BufferBackend : int {
  // The paper's static hash map: one slot per key, bounded overflow
  // ("temporary buffer"); exhausting the overflow dooms the thread.
  kStaticHash = 0,
  // Open-addressed growable index over an append-only log: capacity
  // pressure triggers a resize instead of a rollback.
  kGrowableLog = 1,
  // Per-slot selection between the two: a virtual CPU starts on
  // kStaticHash and flips to kGrowableLog after repeated overflow events
  // (and back once the footprint calms down); see
  // SpecBuffer::AdaptivePolicy. The active backend can differ from slot
  // to slot, but every access still dispatches on one plain enum.
  kAdaptive = 2,
  // NUMA-sharded slot store: each read/write set is split by address range
  // into per-node growable sub-stores, so validation and commit of large
  // footprints stream from node-local memory instead of hopping a single
  // interleaved table (see SpecBuffer::NumaPolicy).
  kNumaSharded = 3,
};

inline const char* buffer_backend_name(BufferBackend b) {
  switch (b) {
    case BufferBackend::kStaticHash: return "static-hash";
    case BufferBackend::kGrowableLog: return "growable-log";
    case BufferBackend::kAdaptive: return "adaptive";
    case BufferBackend::kNumaSharded: return "numa-sharded";
  }
  return "?";
}

// Virtual CPU states (paper section IV-D).
enum class CpuState : int {
  kIdle = 0,
  kRunning = 1,
  kReadyToReclaim = 2,
};

// sync_status of a speculative thread (paper sections IV-E, IV-F).
// kNone corresponds to the paper's NULL initialization.
enum class SyncStatus : int {
  kNone = 0,
  kSync = 1,    // the joiner wants to synchronize: validate and commit/rollback
  kNoSync = 2,  // non-conforming speculation or subtree abort: discard quietly
};

// valid_status reported back through the flag-based barrier.
enum class ValidStatus : int {
  kNone = 0,
  kCommit = 1,
  kRollback = 2,
};

}  // namespace mutls
