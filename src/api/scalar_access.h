// Relaxed-atomic scalar access used by the non-speculative thread.
//
// Non-speculative direct accesses can race (benignly, by TLS construction)
// with speculative first-touch reads and validation reads of the same
// locations; commits are likewise relaxed atomics. Routing the direct path
// through relaxed atomics keeps the whole protocol free of C++ data races
// while compiling to plain loads/stores on every mainstream ISA.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace mutls {

template <size_t N>
struct UintFor;
template <>
struct UintFor<1> { using type = uint8_t; };
template <>
struct UintFor<2> { using type = uint16_t; };
template <>
struct UintFor<4> { using type = uint32_t; };
template <>
struct UintFor<8> { using type = uint64_t; };

template <typename T>
constexpr bool kScalarAtomicable =
    std::is_trivially_copyable_v<T> &&
    (sizeof(T) == 1 || sizeof(T) == 2 || sizeof(T) == 4 || sizeof(T) == 8);

template <typename T>
T relaxed_load_scalar(const T* p) {
  static_assert(std::is_trivially_copyable_v<T>);
  if constexpr (kScalarAtomicable<T>) {
    using U = typename UintFor<sizeof(T)>::type;
    U u = __atomic_load_n(reinterpret_cast<const U*>(p), __ATOMIC_RELAXED);
    return std::bit_cast<T>(u);
  } else {
    // Oversized types go byte-by-byte; torn values are caught by validation.
    T out;
    auto* dst = reinterpret_cast<uint8_t*>(&out);
    auto* src = reinterpret_cast<const uint8_t*>(p);
    for (size_t i = 0; i < sizeof(T); ++i) {
      dst[i] = __atomic_load_n(src + i, __ATOMIC_RELAXED);
    }
    return out;
  }
}

// Byte-wise relaxed copy out of shared memory for accesses whose size is
// only known at runtime (live-in prediction validation). Torn values are
// acceptable: a torn read differs from the predicted value and simply
// forces a rollback.
inline void relaxed_load_bytes(const void* p, void* out, size_t n) {
  const auto* src = static_cast<const uint8_t*>(p);
  auto* dst = static_cast<uint8_t*>(out);
  for (size_t i = 0; i < n; ++i) {
    dst[i] = __atomic_load_n(src + i, __ATOMIC_RELAXED);
  }
}

template <typename T>
void relaxed_store_scalar(T* p, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  if constexpr (kScalarAtomicable<T>) {
    using U = typename UintFor<sizeof(T)>::type;
    __atomic_store_n(reinterpret_cast<U*>(p), std::bit_cast<U>(v),
                     __ATOMIC_RELAXED);
  } else {
    auto* dst = reinterpret_cast<uint8_t*>(p);
    auto* src = reinterpret_cast<const uint8_t*>(&v);
    for (size_t i = 0; i < sizeof(T); ++i) {
      __atomic_store_n(dst + i, src[i], __ATOMIC_RELAXED);
    }
  }
}

}  // namespace mutls
