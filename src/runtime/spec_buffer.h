// SpecBuffer — the runtime's pluggable speculative-buffer backend API.
//
// This is the contract between the speculation protocol (ThreadManager,
// Ctx, the IR interpreter) and speculative memory buffering: everything
// above the runtime talks to SpecBuffer, never to a concrete backend, so a
// new buffering strategy is a drop-in backend rather than a rewrite.
//
// Backends (see BufferBackend in "runtime/enums.h"):
//   kStaticHash  — the paper's static hash + bounded overflow map
//                  ("runtime/global_buffer.h"); capacity exhaustion dooms
//                  the speculation.
//   kGrowableLog — open-addressed growable index over an append-only log
//                  ("runtime/growable_log_buffer.h"); capacity pressure
//                  resizes instead of dooming.
//   kAdaptive    — per-slot selection between the two: starts on
//                  kStaticHash, flips to kGrowableLog after repeated
//                  overflow events (and back once the footprint calms
//                  down). The flip happens in rearm(), i.e. when the
//                  owning virtual-CPU slot is re-armed for its next
//                  speculation — never mid-speculation.
//   kNumaSharded — per-node sub-stores split by address range
//                  ("runtime/numa_sharded_buffer.h"); validation and
//                  commit of large footprints stream one node-local
//                  shard at a time. Resizes like kGrowableLog.
//
// Dispatch is static: the *active* backend enum is resolved when the slot
// is (re-)armed, and every operation branches once to a fully inlined
// backend body — no virtual call on the load/store hot path.
//
// The backends themselves are just slot stores: they expose the
// word-granular primitives
//
//   find_read / find_write / insert_read / insert_write   (-> WordRef)
//   read_data / write_data / write_mark                   (by MRU handle)
//   for_each_read / for_each_write
//   reset / doom / pressure / entry counts
//
// and every algorithm with policy in it is written once here, generic over
// those primitives: the byte-splitting load/store loops, the speculative
// view composition (write-set marked bytes over the read-set observation
// over main memory), the MRU word-view cache state machine, validation
// with word counting, commit, and the tree-form merge of paper IV-F
// including its read-adoption policy (skip-if-covered-by-full-mark, first
// value wins).
//
// Access-path tiers, fastest first:
//   load_aligned/store_aligned — naturally-aligned accesses of power-of-two
//     size <= 8 (every Shared<T>/SharedSpan<T> scalar): one word-view
//     resolution plus a shift, no byte-splitting loop. Counted as
//     fastpath_hits.
//   load_span/store_span — bulk transfers: one dispatch and doom check per
//     span, one probe per *word* (not per element), full interior words
//     move as whole words.
//   load_bytes/store_bytes — the fully generic entry (any size, any
//     alignment), now a span of length one access.
// Below all three sits the one MRU word-view cache (shared by the
// backends, keyed on their handles), so consecutive touches of the same
// words skip the hash probes too.
//
// The double dispatch in validate_against/merge_into makes the join-time
// pairings generic, so buffers of *different* backends compose — which is
// also what makes an adaptive tree with mixed-backend siblings work: a
// flipped slot merges into (or validates against) an unflipped one through
// the same two templates.
//
// Value prediction (PredictPolicy, off by default) is a policy layer over
// the same primitives: a confident per-slot ValuePredictor entry lets a
// first-touch read adopt the *predicted* final value instead of the
// current memory word, and validation — unchanged on its hot path —
// settles the bet: a correct prediction validates where the unpredicted
// buffer would have rolled back (counted as saved_rollbacks), a mispredict
// fails validation and dooms with its own reason. See value_predictor.h.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>

#include "runtime/buffer_stats.h"
#include "runtime/enums.h"
#include "runtime/global_buffer.h"
#include "runtime/growable_log_buffer.h"
#include "runtime/memory.h"
#include "runtime/numa_sharded_buffer.h"
#include "runtime/value_predictor.h"
#include "support/arena.h"
#include "support/check.h"

namespace mutls {

// The adaptive flip policy (kAdaptive only; ignored otherwise). The two
// knobs surface as ManagerConfig::adaptive_overflow_threshold /
// adaptive_calm_hysteresis and ride the usual Options plumbing.
// (Namespace-scope rather than nested: it appears as a default argument
// of SpecBuffer::init, where a nested type's member initializers would
// not be parsed yet.)
struct SpecAdaptivePolicy {
  // Cumulative overflow events on this slot (summed across speculations
  // since the slot last ran on the static hash afresh) at which the slot
  // flips to kGrowableLog at its next rearm().
  uint64_t overflow_threshold = 4;
  // Consecutive calm speculations — no resizes and a footprint that
  // would sit at no more than half load in the static table — after
  // which a flipped slot returns to kStaticHash. The hysteresis is what
  // keeps one pathological speculation from permanently pinning the slot
  // to the growable backend, without flapping on every quiet epoch.
  uint64_t calm_hysteresis = 16;
};

// Shared view of one ThreadManager's adaptive fleet: how many of the
// sibling virtual-CPU slots are currently running on kGrowableLog. Slots
// update `flipped` from their own rearm() (relaxed — it is a hint, and
// rearms of different slots already race benignly), and a slot still on
// the static hash consults it to flip *proactively* once at least half
// the fleet has flipped: in a uniform-footprint loop every slot hits the
// same capacity wall, so the stragglers skip their own overflow-doom
// learning curve. Owned by ThreadManager; standalone buffers pass none.
struct SpecFleetView {
  std::atomic<uint32_t> flipped{0};
  uint32_t slots = 0;
};

class SpecBuffer {
  // The whole API funnels through these two: one predictable branch on the
  // active-backend enum, then a fully inlined backend body. Defined before
  // first use — their deduced return types must be visible to the inline
  // methods below.
  template <typename Fn>
  decltype(auto) dispatch(Fn&& fn) {
    switch (active_) {
      case BufferBackend::kGrowableLog: return fn(growable_log_);
      case BufferBackend::kNumaSharded: return fn(numa_sharded_);
      default: return fn(static_hash_);
    }
  }
  template <typename Fn>
  decltype(auto) dispatch(Fn&& fn) const {
    switch (active_) {
      case BufferBackend::kGrowableLog: return fn(growable_log_);
      case BufferBackend::kNumaSharded: return fn(numa_sharded_);
      default: return fn(static_hash_);
    }
  }

 public:
  using AdaptivePolicy = SpecAdaptivePolicy;
  using PredictPolicy = SpecPredictPolicy;
  using NumaPolicy = SpecNumaPolicy;

  // The doom reason a value-prediction mispredict is contained with —
  // distinct from capacity and conflict reasons so rollback attribution
  // (tests, diagnostics) can tell a lost bet from a genuine exhaustion.
  static constexpr const char* kMispredictDoomReason =
      "value-prediction mispredict invalidated the read-set";

  SpecBuffer() = default;
  // The backends are self-referential after init (their maps point at this
  // buffer's stats block); copying/moving a buffer is never needed and is
  // deleted down the whole stack.
  SpecBuffer(const SpecBuffer&) = delete;
  SpecBuffer& operator=(const SpecBuffer&) = delete;

  // Configures the selected backend. `log2_entries` sizes the table (the
  // static size for kStaticHash, the initial size for kGrowableLog);
  // `overflow_cap` bounds kStaticHash's temporary buffer and is ignored by
  // kGrowableLog. kAdaptive starts on the static hash and initializes the
  // growable log lazily at the first flip. `growable_max_log2` bounds the
  // growable index (a memory bound; also the seam the hard-cap doom tests
  // use). `arena`, when given (the owning virtual-CPU slot's arena), backs
  // the growable arrays and the join-time sort scratch through its
  // persistent pool; without one those fall back to the heap (standalone
  // buffers in tests). `predict` enables the per-slot value predictor
  // (table storage also from the arena pool); `fleet`, when given (by
  // ThreadManager), lets kAdaptive slots coordinate proactive flips.
  // `numa` configures kNumaSharded's address-range routing (shard count,
  // region granularity, home shard) and is ignored by the other backends.
  void init(BufferBackend backend, int log2_entries, size_t overflow_cap,
            AdaptivePolicy policy = {},
            int growable_max_log2 = GrowableSet::kMaxLog2,
            Arena* arena = nullptr, PredictPolicy predict = {},
            SpecFleetView* fleet = nullptr, NumaPolicy numa = {}) {
    configured_ = backend;
    policy_ = policy;
    predict_ = predict;
    numa_ = numa;
    fleet_ = fleet;
    log2_ = log2_entries;
    overflow_cap_ = overflow_cap;
    growable_max_log2_ = growable_max_log2;
    arena_ = arena;
    scratch_.attach(arena);
    predicted_.attach(arena);
    predictor_.init(predict, arena);
    if (predict.enabled) {
      // Pre-size the bet side table to its hard bound: a predicted read
      // needs a confident direct-mapped entry matching its word, so one
      // speculation can adopt at most one prediction per table bucket.
      // Sizing it here keeps the steady state allocation-free — the first
      // adoption necessarily happens *after* warm-up (the predictor must
      // train first), which is exactly when growing would break the
      // alloc_events == 0 budget.
      predicted_.reserve(size_t{1} << predict.table_log2);
    }
    overflow_score_ = 0;
    calm_epochs_ = 0;
    calm_reverted_ = false;
    footprint_hwm_ = 0;
    growable_ready_ = false;
    if (backend == BufferBackend::kAdaptive) {
      MUTLS_CHECK(policy_.overflow_threshold >= 1,
                  "adaptive overflow threshold must be at least 1");
      active_ = BufferBackend::kStaticHash;
    } else {
      active_ = backend;
    }
    if (active_ == BufferBackend::kGrowableLog) {
      growable_log_.init(log2_, overflow_cap_, &stats_, growable_max_log2_,
                         arena_);
      growable_ready_ = true;
    } else if (active_ == BufferBackend::kNumaSharded) {
      numa_sharded_.init(log2_, overflow_cap_, &stats_, growable_max_log2_,
                         arena_, numa_);
    } else {
      static_hash_.init(log2_, overflow_cap_, &stats_);
    }
    mru_invalidate();
  }

  // The configured backend (what the embedding asked for)...
  BufferBackend backend() const { return configured_; }
  // ...and the backend actually serving this slot right now (differs from
  // backend() only for kAdaptive).
  BufferBackend active_backend() const { return active_; }

  // --- speculative access path (runs on the owning speculative thread) ---

  // Aligned-word fast path: a naturally-aligned access of power-of-two
  // size <= 8 can never straddle a word, so the byte-splitting loop
  // collapses to one word-view resolution plus a shift. The load returns
  // the addressed bytes in the LOW bytes of the result (the caller copies
  // out `size` of them); the store takes the value in the low bytes.
  uint64_t load_aligned(uintptr_t addr, size_t size) {
    MUTLS_DCHECK(word_sized_aligned(addr, size),
                 "load_aligned: size must be a power of two <= 8 and addr "
                 "naturally aligned");
    (void)size;  // only the high bytes the caller ignores depend on it
    ++stats_.fastpath_hits;
    uintptr_t word_addr = addr & ~kWordMask;
    return dispatch([&](auto& b) { return word_view(b, word_addr); }) >>
           (8 * (addr - word_addr));
  }

  void store_aligned(uintptr_t addr, uint64_t value, size_t size) {
    MUTLS_DCHECK(word_sized_aligned(addr, size),
                 "store_aligned: size must be a power of two <= 8 and addr "
                 "naturally aligned");
    ++stats_.fastpath_hits;
    uintptr_t word_addr = addr & ~kWordMask;
    size_t off = addr - word_addr;
    dispatch([&](auto& b) {
      word_write(b, word_addr, value << (8 * off), byte_mask(off, size));
    });
  }

  // Bulk span transfer: reads `size` bytes of the thread's speculative view
  // of `addr`. One dispatch for the whole span; a partial head word, whole
  // interior words, a partial tail — one probe per word, not per element.
  void load_span(uintptr_t addr, void* out, size_t size) {
    if (size == 0) return;  // must not touch (and first-touch insert) a word
    dispatch([&](auto& b) {
      char* dst = static_cast<char*>(out);
      uintptr_t a = addr;
      size_t left = size;
      size_t head = a & kWordMask;
      if (head != 0) {
        size_t n = std::min(kWordSize - head, left);
        uint64_t w = word_view(b, a - head);
        copy_from_word(w, head, n, dst);
        a += n;
        dst += n;
        left -= n;
      }
      while (left >= kWordSize) {
        uint64_t w = word_view(b, a);
        std::memcpy(dst, &w, kWordSize);
        a += kWordSize;
        dst += kWordSize;
        left -= kWordSize;
      }
      if (left > 0) {
        uint64_t w = word_view(b, a);
        copy_from_word(w, 0, left, dst);
      }
    });
  }

  // Bulk span transfer: buffers a write of `size` bytes at `addr`. Whole
  // interior words carry a full mark and skip the mask computation.
  void store_span(uintptr_t addr, const void* src, size_t size) {
    if (size == 0) return;  // a zero-mask write-set entry is a false entry
    dispatch([&](auto& b) {
      const char* s = static_cast<const char*>(src);
      uintptr_t a = addr;
      size_t left = size;
      size_t head = a & kWordMask;
      if (head != 0) {
        size_t n = std::min(kWordSize - head, left);
        uint64_t v = 0;
        copy_into_word(v, head, n, s);
        word_write(b, a - head, v, byte_mask(head, n));
        if (b.doomed()) return;
        a += n;
        s += n;
        left -= n;
      }
      while (left >= kWordSize) {
        uint64_t v;
        std::memcpy(&v, s, kWordSize);
        word_write(b, a, v, kFullMark);
        if (b.doomed()) return;
        a += kWordSize;
        s += kWordSize;
        left -= kWordSize;
      }
      if (left > 0) {
        uint64_t v = 0;
        copy_into_word(v, 0, left, s);
        word_write(b, a, v, byte_mask(0, left));
      }
    });
  }

  // Fully generic entries (any size, any alignment): a span of one access.
  void load_bytes(uintptr_t addr, void* out, size_t size) {
    load_span(addr, out, size);
  }
  void store_bytes(uintptr_t addr, const void* src, size_t size) {
    store_span(addr, src, size);
  }

  // --- join-time operations (both threads stopped at the flag barrier) ---

  // Validates the read-set against main memory (non-speculative joiner).
  // The comparison accumulates a XOR difference — no branch per word; a
  // cache-exceeding set is additionally gathered and sorted so main memory
  // is compared in address order (hardware prefetch instead of hash-order
  // hopping).
  bool validate_against_memory() {
    return dispatch([&](auto& b) {
      uint64_t diff = 0;
      uint64_t words = 0;
      if (b.read_entries() >= kAddressOrderThreshold) {
        scratch_.clear();
        b.for_each_read([&](uintptr_t word_addr, uint64_t data) {
          scratch_.push_back(SetEntry{word_addr, data, 0});
        });
        sort_scratch();
        for (const SetEntry& e : scratch_) {
          diff |= atomic_word_load(e.word_addr) ^ e.data;
        }
        words = scratch_.size();
      } else {
        b.for_each_read([&](uintptr_t word_addr, uint64_t data) {
          ++words;
          diff |= atomic_word_load(word_addr) ^ data;
        });
      }
      stats_.validated_words += words;
      bool valid = diff == 0;
      if (predict_.enabled) {
        valid = settle_predicted(
            b, valid, [](uintptr_t a) { return atomic_word_load(a); });
      }
      return valid;
    });
  }

  // Validates the read-set against a speculative joiner's buffered view.
  // Probes the joiner's maps (address order buys nothing there) but keeps
  // the branchless XOR accumulation. Peeks never touch the joiner's MRU
  // line: they run on the joiner's buffer from *this* thread at the flag
  // barrier.
  bool validate_against(SpecBuffer& joiner) {
    return dispatch([&](auto& b) {
      return joiner.dispatch([&](auto& j) {
        uint64_t diff = 0;
        uint64_t words = 0;
        b.for_each_read([&](uintptr_t word_addr, uint64_t data) {
          ++words;
          diff |= word_peek(j, word_addr) ^ data;
        });
        stats_.validated_words += words;
        bool valid = diff == 0;
        if (predict_.enabled) {
          // The "settled value" against a speculative joiner is the
          // joiner's buffered view. Training on it is slightly optimistic
          // (the joiner may itself roll back later), but the predictor is
          // a hint table — a wrong lesson costs one mispredict, never
          // correctness.
          valid = settle_predicted(
              b, valid, [&](uintptr_t a) { return word_peek(j, a); });
        }
        return valid;
      });
    });
  }

  // Commits marked write-set bytes to main memory — in address order when
  // the set is large enough for the ordered walk to beat the sort.
  void commit_to_memory() {
    dispatch([&](auto& b) {
      // Locality accounting only the sharded backend can provide: the
      // words of this commit that stream from the slot's home shard.
      // Detected structurally so the other backends pay nothing.
      if constexpr (requires { b.local_write_words(); }) {
        stats_.local_commit_words += b.local_write_words();
      }
      auto commit_one = [](uintptr_t word_addr, uint64_t data, uint64_t mark) {
        if (mark == kFullMark) {
          atomic_word_store(word_addr, data);
          return;
        }
        const char* bytes = reinterpret_cast<const char*>(&data);
        for (size_t i = 0; i < kWordSize; ++i) {
          if (mark & (0xffull << (8 * i))) {
            atomic_byte_store(word_addr + i, static_cast<uint8_t>(bytes[i]));
          }
        }
      };
      if (b.write_entries() >= kAddressOrderThreshold) {
        scratch_.clear();
        b.for_each_write(
            [&](uintptr_t word_addr, uint64_t data, uint64_t mark) {
              scratch_.push_back(SetEntry{word_addr, data, mark});
            });
        sort_scratch();
        for (const SetEntry& e : scratch_) {
          commit_one(e.word_addr, e.data, e.mark);
        }
      } else {
        b.for_each_write(commit_one);
      }
    });
  }

  // Merges this buffer into a *speculative* joiner. The whole tree-form
  // adoption policy lives here, written once over the slot primitives:
  //   writes — overlay the joiner's write-set (this thread is logically
  //     later, so its bytes win) and union the marks;
  //   reads — a read fully covered by one of the joiner's full-mark writes
  //     carries no main-memory dependency and is skipped; everything else
  //     joins the joiner's read-set so the eventual non-speculative
  //     validation still covers it, first value (the joiner's earlier
  //     observation) winning.
  // Capacity exhaustion in the joiner dooms it through the backend's
  // merge-specific reason (insert_*'s `merging` flag).
  void merge_into(SpecBuffer& joiner) {
    // Adoption mutates the joiner's sets behind its MRU line (and runs at
    // the flag barrier, not on the access hot path): drop it wholesale.
    joiner.mru_invalidate();
    dispatch([&](auto& b) {
      joiner.dispatch([&](auto& j) {
        b.for_each_write(
            [&](uintptr_t word_addr, uint64_t data, uint64_t mark) {
              WordRef w = j.insert_write(word_addr, /*merging=*/true);
              if (!w.data) return;  // joiner doomed; keep draining
              *w.data = overlay_bytes(*w.data, data, mark);
              *w.mark |= mark;
            });
        b.for_each_read([&](uintptr_t word_addr, uint64_t data) {
          WordRef w = j.find_write(word_addr);
          if (w.data && *w.mark == kFullMark) return;  // covered: no dep
          bool inserted = false;
          WordRef r = j.insert_read(word_addr, inserted, /*merging=*/true);
          if (!r.data) return;  // joiner doomed; keep draining
          if (inserted) *r.data = data;  // first value wins
        });
      });
    });
  }

  // --- lifecycle, doom and pressure signals, statistics ---

  // Discards all buffered state; clears doom. Part of both the settle path
  // and rearm(); the cost counters intentionally survive (the settle paths
  // read them after resetting).
  void reset() {
    // Track the footprint high-water mark for the adaptive calm check
    // before the entry counts vanish.
    footprint_hwm_ = std::max(footprint_hwm_,
                              std::max(read_entries(), write_entries()));
    mru_invalidate();
    predicted_.clear();
    dispatch([](auto& b) { b.reset(); });
  }

  // Re-arms this buffer for the next speculation on its virtual-CPU slot:
  // applies the adaptive flip decision (based on the finished
  // speculation's counters), resets buffered state and zeroes the per-
  // speculation counters. A flip is recorded in the *new* speculation's
  // backend_flips counter — "this speculation started on a freshly flipped
  // backend" — while the flipped state itself persists per slot.
  void rearm() {
    // Capture the retiring speculation's footprint before deciding: in
    // the standalone flow (no settle-time reset() preceding this call)
    // the sets are still populated here, and the calm check below would
    // otherwise compare against an empty high-water mark — flipping a
    // busy slot back and flapping.
    footprint_hwm_ = std::max(footprint_hwm_,
                              std::max(read_entries(), write_entries()));
    BufferBackend next = active_;
    if (configured_ == BufferBackend::kAdaptive) next = adapt_next();
    // The observed footprint seeds a flip target's capacity so the next
    // speculation does not rediscover it through the doubling ladder.
    const size_t flip_hint = footprint_hwm_;
    reset();
    footprint_hwm_ = 0;
    clear_stats();
    if (next != active_) activate(next, flip_hint);
  }

  bool doomed() const {
    return dispatch([](const auto& b) { return b.doomed(); });
  }
  const char* doom_reason() const {
    return dispatch([](const auto& b) { return b.doom_reason(); });
  }
  void doom(const char* reason) {
    dispatch([&](auto& b) { b.doom(reason); });
  }

  // Backend-defined capacity pressure: the static hash is spilling into its
  // bounded overflow map, or the growable log resized this speculation.
  bool pressure() const {
    return dispatch([](const auto& b) { return b.pressure(); });
  }

  size_t read_entries() const {
    return dispatch([](const auto& b) { return b.read_entries(); });
  }
  size_t write_entries() const {
    return dispatch([](const auto& b) { return b.write_entries(); });
  }

  // Cost-counter snapshot. One block per buffer, shared by whichever
  // backend is active (so an adaptive flip never strands counters).
  // Survives reset(); zeroed by clear_stats()/rearm() when a virtual-CPU
  // slot is re-armed for a new speculation.
  const SpecBufferStats& stats() const { return stats_; }
  void clear_stats() { stats_.clear(); }

  // The slot's value predictor (tests, diagnostics). Like the adaptive
  // flip state it persists across rearm(): the slot learns across
  // speculations.
  const ValuePredictor& predictor() const { return predictor_; }

 private:
  // --- the unified MRU word-view cache + view composition ---
  //
  // One line caching the most recently resolved word view, shared by both
  // backends and parameterized on their handle accessors: mru_r_/mru_w_
  // hold the backend's WordRef::handle for the word's read-/write-set slot
  // (+1 encoded by the backend; 0 = not yet resolved), with kWriteAbsent
  // marking a word *proven* absent from the write set. 1 is an impossible
  // word address. Handles are only ever interpreted by the backend that
  // produced them: the line is invalidated on reset(), and adaptive flips
  // happen strictly after a reset, so a handle can never cross backends.
  // Consecutive touches of the same word — the load+store pair of every
  // read-modify-write, sub-word sweeps through one word — skip the hash
  // probes entirely; the miss path pays one compare and a three-word
  // refresh, so streaming patterns that never repeat a word lose nothing.
  static constexpr uint32_t kWriteAbsent = 0xffffffffu;

  void mru_invalidate() {
    mru_addr_ = 1;
    mru_r_ = 0;
    mru_w_ = 0;
  }

  // The thread's current view of one whole word: write-set marked bytes
  // over the read-set observation over main memory. First touch inserts
  // the word into the read-set; capacity exhaustion dooms the thread (via
  // the backend's insert_read) and falls back to the main-memory value.
  template <typename B>
  uint64_t word_view(B& b, uintptr_t word_addr) {
    if (word_addr == mru_addr_) {
      // Serve entirely from the cached handles when the line knows
      // everything the probing path would re-derive.
      if (mru_w_ != 0 && mru_w_ != kWriteAbsent) {
        uint64_t mark = b.write_mark(mru_w_);
        if (mark == kFullMark) {
          ++stats_.mru_hits;
          ++stats_.probe_skips;
          return b.write_data(mru_w_);
        }
        if (mru_r_ != 0) {
          ++stats_.mru_hits;
          stats_.probe_skips += 2;
          return overlay_bytes(b.read_data(mru_r_), b.write_data(mru_w_),
                               mark);
        }
      } else if (mru_w_ == kWriteAbsent && mru_r_ != 0) {
        ++stats_.mru_hits;
        stats_.probe_skips += 2;
        return b.read_data(mru_r_);
      }
    }
    ++stats_.mru_misses;
    // Keep whatever half of the line is still valid when re-resolving the
    // same word (e.g. a read after a store that only knew the write slot).
    uint32_t mr = word_addr == mru_addr_ ? mru_r_ : 0;

    WordRef w = b.find_write(word_addr);
    uint32_t mw = w.data ? w.handle : kWriteAbsent;
    if (w.data && *w.mark == kFullMark) {
      mru_addr_ = word_addr;
      mru_r_ = mr;
      mru_w_ = mw;
      return *w.data;
    }

    bool inserted = false;
    WordRef r = b.insert_read(word_addr, inserted, /*merging=*/false);
    if (!r.data) {
      // Capacity doom (the backend already doomed itself): fall back to
      // the main-memory value; nothing stable to cache.
      uint64_t base = atomic_word_load(word_addr);
      if (w.data) base = overlay_bytes(base, *w.data, *w.mark);
      mru_invalidate();
      return base;
    }
    if (inserted) {
      // First touch: load the whole word from main memory and remember it
      // for validation — unless a confident predictor entry bets on the
      // word's *settled* value, in which case the read adopts the
      // prediction: validation then passes exactly when the bet lands,
      // and the access-time observation is kept aside so the settle can
      // tell a saved rollback (memory moved under us, prediction held)
      // from a read that never conflicted at all.
      uint64_t observed = atomic_word_load(word_addr);
      uint64_t predicted;
      if (predict_.enabled && predictor_.predict(word_addr, &predicted)) {
        *r.data = predicted;
        predicted_.push_back(PredictedRead{word_addr, predicted, observed});
        ++stats_.predicted_reads;
      } else {
        *r.data = observed;
      }
    }
    mru_addr_ = word_addr;
    mru_r_ = r.handle;
    mru_w_ = mw;
    uint64_t base = *r.data;
    if (w.data) {
      // Overlay the bytes this thread already wrote. `w` points into the
      // write set, untouched by the read-set insertion above.
      base = overlay_bytes(base, *w.data, *w.mark);
    }
    return base;
  }

  // Like word_view but never inserts into the read-set and leaves the MRU
  // line untouched (used when a speculative joiner's view is evaluated
  // from the child's thread).
  template <typename B>
  static uint64_t word_peek(B& b, uintptr_t word_addr) {
    WordRef w = b.find_write(word_addr);
    if (w.data && *w.mark == kFullMark) return *w.data;
    WordRef r = b.find_read(word_addr);
    uint64_t base = r.data ? *r.data : atomic_word_load(word_addr);
    if (w.data) base = overlay_bytes(base, *w.data, *w.mark);
    return base;
  }

  // Settles the speculation's predicted reads against the outcome the XOR
  // walk just computed (prediction enabled only; called once per
  // validation, off the access hot path). `final_value` maps a word
  // address to the value the read-set was validated against — main memory
  // for a rank-0 joiner, the joiner's buffered view otherwise.
  //
  // On a *valid* speculation every predicted read's bet landed (its value
  // is part of the read-set the XOR walk accepted): count the hits, train
  // the proven values, and count one saved rollback iff some predicted
  // word's memory moved between access and settle — that is precisely a
  // speculation the unpredicted runtime would have rolled back.
  //
  // On a *failed* one: train the predictor from the final values of the
  // conflicting (mismatched) words — this is how an address earns a table
  // entry in the first place, a word that never conflicts never costs
  // one — then attribute the failure: any predicted read whose bet missed
  // is a mispredict, and the doom carries the distinct mispredict reason
  // so rollback accounting can separate lost bets from true conflicts.
  template <typename B, typename FinalFn>
  bool settle_predicted(B& b, bool valid, FinalFn&& final_value) {
    if (valid) {
      if (predicted_.size() != 0) {
        bool saved = false;
        for (const PredictedRead& p : predicted_) {
          ++stats_.predictor_hits;
          saved |= p.predicted != p.observed;
          predictor_.train(p.word_addr, p.predicted);
        }
        if (saved) ++stats_.saved_rollbacks;
      }
      return true;
    }
    b.for_each_read([&](uintptr_t word_addr, uint64_t data) {
      uint64_t actual = final_value(word_addr);
      if (actual != data) predictor_.train(word_addr, actual);
    });
    bool mispredicted = false;
    for (const PredictedRead& p : predicted_) {
      uint64_t actual = final_value(p.word_addr);
      if (actual == p.predicted) {
        // The bet landed but some *other* word conflicted. Still a hit —
        // and not trained by the mismatch walk above, so train it here.
        ++stats_.predictor_hits;
        predictor_.train(p.word_addr, actual);
      } else {
        ++stats_.predictor_mispredicts;
        mispredicted = true;
      }
    }
    if (mispredicted && !b.doomed()) b.doom(kMispredictDoomReason);
    return false;
  }

  // Overlays the bytes selected by `mask` onto the buffered word; dooms on
  // capacity exhaustion (via the backend's insert_write).
  template <typename B>
  void word_write(B& b, uintptr_t word_addr, uint64_t value, uint64_t mask) {
    if (word_addr == mru_addr_ && mru_w_ != 0 && mru_w_ != kWriteAbsent) {
      ++stats_.mru_hits;
      ++stats_.probe_skips;
      uint64_t& d = b.write_data(mru_w_);
      d = overlay_bytes(d, value, mask);
      b.write_mark(mru_w_) |= mask;
      return;
    }
    ++stats_.mru_misses;
    WordRef w = b.insert_write(word_addr, /*merging=*/false);
    if (!w.data) return;  // capacity doom; the backend set the reason
    *w.data = overlay_bytes(*w.data, value, mask);
    *w.mark |= mask;
    uint32_t mr = word_addr == mru_addr_ ? mru_r_ : 0;
    mru_addr_ = word_addr;
    mru_r_ = mr;
    mru_w_ = w.handle;
  }

  // --- adaptive backend selection (kAdaptive) ---

  // The flip decision, evaluated in rearm() against the finished
  // speculation's counters (they survive reset() until clear_stats()).
  BufferBackend adapt_next() {
    if (active_ == BufferBackend::kStaticHash) {
      overflow_score_ += stats_.overflow_events;
      if (overflow_score_ >= policy_.overflow_threshold) {
        // Flipping on own evidence clears the calm-revert latch: the slot
        // is eligible for fleet-following again once it re-earns a flip.
        calm_reverted_ = false;
        return BufferBackend::kGrowableLog;
      }
      // Fleet-wide proactive flip: once at least half the sibling slots
      // run on the growable log, a uniform-footprint loop has effectively
      // proven the capacity wall for everyone — flip now instead of
      // paying this slot's own overflow-doom learning curve. The
      // calm_reverted_ latch keeps a slot that *earned* its way back to
      // the static hash (calm hysteresis) from being dragged straight
      // back up by a still-flipped majority — without it the fleet would
      // flap one slot per epoch forever.
      if (fleet_ != nullptr && fleet_->slots >= 2 && !calm_reverted_ &&
          2 * fleet_->flipped.load(std::memory_order_relaxed) >=
              fleet_->slots) {
        return BufferBackend::kGrowableLog;
      }
    } else {
      // Calm = the speculation neither resized nor ran a footprint the
      // static table couldn't hold at low load (half capacity is the
      // comfort proxy: near-full static tables collision-doom). Without
      // the footprint check a flipped slot whose big footprints fit the
      // *grown* index without resizing would flip back, overflow-doom, and
      // flip up again — exactly the flapping the hysteresis exists to
      // prevent.
      bool calm = stats_.resize_events == 0 &&
                  footprint_hwm_ * 2 <= (size_t{1} << log2_);
      if (!calm) {
        calm_epochs_ = 0;
      } else if (++calm_epochs_ >= policy_.calm_hysteresis) {
        overflow_score_ = 0;
        calm_epochs_ = 0;
        calm_reverted_ = true;
        return BufferBackend::kStaticHash;
      }
    }
    return active_;
  }

  void activate(BufferBackend target, size_t footprint_hint = 0) {
    if (fleet_ != nullptr) {
      // Keep the fleet's flipped count in step with this slot's active
      // backend (relaxed: a momentarily stale count only shifts *when* a
      // sibling follows, never correctness).
      if (target == BufferBackend::kGrowableLog &&
          active_ != BufferBackend::kGrowableLog) {
        fleet_->flipped.fetch_add(1, std::memory_order_relaxed);
      } else if (target != BufferBackend::kGrowableLog &&
                 active_ == BufferBackend::kGrowableLog) {
        fleet_->flipped.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    if (target == BufferBackend::kGrowableLog && !growable_ready_) {
      growable_log_.init(log2_, overflow_cap_, &stats_, growable_max_log2_,
                         arena_);
      growable_ready_ = true;
    }
    active_ = target;
    // The target starts clean (it was reset when deactivated, but a flip
    // must never trust that); grown growable capacity is carried forward —
    // clear() keeps the index.
    dispatch([](auto& b) { b.reset(); });
    if (target == BufferBackend::kGrowableLog && footprint_hint != 0) {
      // Seed the flipped slot at the footprint the static hash observed
      // (entries at the doom point — a lower bound on the true footprint,
      // but it skips the bulk of the doubling ladder right after a flip).
      growable_log_.reserve(footprint_hint);
    }
    ++stats_.backend_flips;
  }

  BufferBackend configured_ = BufferBackend::kStaticHash;
  BufferBackend active_ = BufferBackend::kStaticHash;
  GlobalBuffer static_hash_;
  GrowableLogBuffer growable_log_;
  NumaShardedBuffer numa_sharded_;
  SpecBufferStats stats_;
  NumaPolicy numa_;

  uintptr_t mru_addr_ = 1;
  uint32_t mru_r_ = 0;  // read-set handle; 0 = unknown
  uint32_t mru_w_ = 0;  // write-set handle; 0 = unknown; kWriteAbsent

  // Adaptive state (kAdaptive only). Persists across rearm() — that is the
  // point: the *slot* learns, while the counters stay per-speculation.
  AdaptivePolicy policy_;
  int log2_ = 0;
  size_t overflow_cap_ = 0;
  int growable_max_log2_ = GrowableSet::kMaxLog2;
  uint64_t overflow_score_ = 0;
  uint64_t calm_epochs_ = 0;
  size_t footprint_hwm_ = 0;
  bool growable_ready_ = false;
  // Set when the calm hysteresis reverted this slot to the static hash;
  // cleared when the slot flips on its own overflow evidence. Gates the
  // fleet-following flip (see adapt_next).
  bool calm_reverted_ = false;
  SpecFleetView* fleet_ = nullptr;
  Arena* arena_ = nullptr;

  // Value prediction (PredictPolicy.enabled only). The predictor — like
  // the adaptive state above — persists across rearm(); the per-
  // speculation side table of bets is cleared with the sets on reset().
  PredictPolicy predict_;
  ValuePredictor predictor_;
  struct PredictedRead {
    uintptr_t word_addr;
    uint64_t predicted;  // what the read-set adopted (and validation saw)
    uint64_t observed;   // what memory actually held at access time
  };
  PodVec<PredictedRead> predicted_;

  // Reused gather buffer for the join-time set walks: large sets are
  // streamed into it, sorted by address, and then touch main memory in
  // address order (sequential prefetch instead of hash-order hopping).
  // Small sets fit in cache, where the sort costs more than hash-order
  // misses ever could — they are walked directly instead; the threshold is
  // roughly where a set's footprint outgrows L1/L2. Arena-pooled (capacity
  // retained across epochs): the settle path stays allocation-free.
  struct SetEntry {
    uintptr_t word_addr;
    uint64_t data;
    uint64_t mark;
  };
  static constexpr size_t kAddressOrderThreshold = 4096;
  PodVec<SetEntry> scratch_;

  void sort_scratch() {
    std::sort(scratch_.begin(), scratch_.end(),
              [](const SetEntry& a, const SetEntry& b) {
                return a.word_addr < b.word_addr;
              });
  }
};

}  // namespace mutls
