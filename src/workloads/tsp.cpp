#include "workloads/tsp.h"

#include <algorithm>
#include <vector>

#include "support/prng.h"

namespace mutls::workloads {

namespace {

constexpr double kInf = 1e30;

std::vector<double> make_distances(const Tsp::Params& p) {
  // Symmetric random euclidean-ish distances.
  Xorshift64 rng(p.seed);
  std::vector<double> xs(static_cast<size_t>(p.n)),
      ys(static_cast<size_t>(p.n));
  for (int i = 0; i < p.n; ++i) {
    xs[static_cast<size_t>(i)] = rng.next_double() * 100.0;
    ys[static_cast<size_t>(i)] = rng.next_double() * 100.0;
  }
  std::vector<double> d(static_cast<size_t>(p.n) * p.n);
  for (int i = 0; i < p.n; ++i) {
    for (int j = 0; j < p.n; ++j) {
      double dx = xs[static_cast<size_t>(i)] - xs[static_cast<size_t>(j)];
      double dy = ys[static_cast<size_t>(i)] - ys[static_cast<size_t>(j)];
      d[static_cast<size_t>(i) * p.n + j] = dx * dx + dy * dy;
    }
  }
  return d;
}

// Pure sequential DFS over the remaining city set (bitmask).
double tsp_seq(const double* d, int n, int last, uint32_t visited,
               double len) {
  uint32_t full = (1u << n) - 1;
  if (visited == full) {
    return len + d[static_cast<size_t>(last) * n + 0];
  }
  double best = kInf;
  for (int c = 1; c < n; ++c) {
    uint32_t bit = 1u << c;
    if (visited & bit) continue;
    double sub = tsp_seq(d, n, c, visited | bit,
                         len + d[static_cast<size_t>(last) * n + c]);
    best = std::min(best, sub);
  }
  return best;
}

struct SpecTsp {
  Runtime& rt;
  int n;
  int cutoff;
  ForkModel model;
  const double* dist;  // registered shared read-only matrix
  double* slots;
  size_t slot_count;

  size_t slot_for(uint64_t id, int ordinal) const {
    size_t s = static_cast<size_t>(id) * static_cast<size_t>(n) +
               static_cast<size_t>(ordinal);
    return s < slot_count ? s : slot_count;
  }

  double edge(Ctx& ctx, int i, int j) const {
    return shared(ctx, &dist[static_cast<size_t>(i) * n + j]);
  }

  double descend(Ctx& ctx, int last, uint32_t visited, double len, int depth,
                 uint64_t id) const {
    uint32_t full = (1u << n) - 1;
    if (visited == full) return len + edge(ctx, last, 0);
    if (depth >= cutoff) {
      // Below the cutoff the search is pure compute over a local copy-free
      // kernel; reading the matrix directly through the speculative buffer
      // would be equivalent but slower, so the kernel reads via ctx once
      // per edge through tsp_seq's direct pointer -- safe because the
      // matrix is read-only for the entire run.
      return tsp_seq(dist, n, last, visited, len);
    }
    uint32_t avail = ~visited & full & ~1u;
    return min_candidates(ctx, last, visited, len, avail, depth, id, 0);
  }

  double min_candidates(Ctx& ctx, int last, uint32_t visited, double len,
                        uint32_t avail, int depth, uint64_t id,
                        int ordinal) const {
    if (avail == 0) return kInf;
    uint32_t bit = avail & (0u - avail);
    uint32_t rest = avail - bit;
    int city = __builtin_ctz(bit);
    uint64_t child_id = id * static_cast<uint64_t>(n) +
                        static_cast<uint64_t>(city) + 1;

    size_t slot = slot_for(id, ordinal);
    // Conditional fork: plain Spec + explicit join (see nqueen.cpp for why
    // not std::optional<ScopedSpec>).
    Spec s;
    bool forked = false;
    if (rest != 0 && slot < slot_count) {
      s = rt.fork(ctx, model, [=, this](Ctx& c) {
        double v =
            min_candidates(c, last, visited, len, rest, depth, id, ordinal + 1);
        shared(c, &slots[slot]) = v;
      });
      forked = true;
    }
    double mine = descend(ctx, city, visited | bit,
                          len + edge(ctx, last, city), depth + 1, child_id);
    ctx.check_point();
    double rest_min = kInf;
    if (forked) {
      rt.join(ctx, s);
      rest_min = shared(ctx, &slots[slot]);
    } else if (rest != 0) {
      rest_min =
          min_candidates(ctx, last, visited, len, rest, depth, id, ordinal + 1);
    }
    return std::min(mine, rest_min);
  }
};

}  // namespace

SeqRun Tsp::run_seq(const Params& p) {
  std::vector<double> d = make_distances(p);
  Stopwatch sw;
  double best = tsp_seq(d.data(), p.n, 0, 1u, 0.0);
  double secs = sw.elapsed_sec();
  return SeqRun{hash_double(hash_begin(), best), secs};
}

SpecRun Tsp::run_spec(Runtime& rt, const Params& p, ForkModel model) {
  std::vector<double> d0 = make_distances(p);
  SharedArray<double> dist(rt, d0.size());
  for (size_t i = 0; i < d0.size(); ++i) dist[i] = d0[i];
  size_t ids = 1;
  for (int i = 0; i < p.cutoff; ++i) ids *= static_cast<size_t>(p.n) + 1;
  SharedArray<double> slots(rt, ids * static_cast<size_t>(p.n) + 1, kInf);
  Stopwatch sw;
  double best = 0.0;
  RunStats stats = rt.run([&](Ctx& ctx) {
    SpecTsp t{rt,          p.n,          p.cutoff, model,
              dist.data(), slots.data(), slots.size()};
    best = t.descend(ctx, 0, 1u, 0.0, 0, 0);
  });
  double secs = sw.elapsed_sec();
  return SpecRun{hash_double(hash_begin(), best), secs, stats};
}

}  // namespace mutls::workloads
