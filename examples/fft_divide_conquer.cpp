// Divide-and-conquer speculation: a recursive FFT whose second recursive
// call is speculated at every node of the top of the recursion tree
// (paper section V-B: "we fork a thread to execute the second recursive
// call and barrier it after the call").
//
// Also demonstrates rollback injection (paper Fig. 11): pass a probability
// to watch the runtime absorb forced rollbacks without changing results.
//
// Run:  ./examples/fft_divide_conquer [rollback_probability]
#include <cstdio>
#include <cstdlib>

#include "mutls/mutls.h"
#include "workloads/fft.h"

int main(int argc, char** argv) {
  using namespace mutls;
  double rollback_p = argc > 1 ? std::atof(argv[1]) : 0.0;

  workloads::Fft::Params p;
  p.log2_n = 16;
  p.fork_levels = 4;

  workloads::SeqRun seq = workloads::Fft::run_seq(p);

  Runtime::Options o;
  o.num_cpus = 4;
  o.buffer_log2 = 18;
  o.rollback_probability = rollback_p;
  Runtime rt(o);
  workloads::SpecRun spec = workloads::Fft::run_spec(rt, p, ForkModel::kMixed);

  std::printf("FFT of 2^%d doubles, %d speculated recursion levels\n",
              p.log2_n, p.fork_levels);
  std::printf("injected rollback probability: %.0f%%\n", rollback_p * 100);
  std::printf("results match sequential bit-for-bit: %s\n",
              spec.checksum == seq.checksum ? "yes" : "NO");
  std::printf("sequential: %.3fs   speculative: %.3fs   speedup: %.2f\n",
              seq.seconds, spec.seconds, seq.seconds / spec.seconds);
  std::printf("commits: %llu, rollbacks: %llu\n",
              static_cast<unsigned long long>(spec.stats.speculative.commits),
              static_cast<unsigned long long>(
                  spec.stats.speculative.rollbacks));
  std::printf("speculative path efficiency: %.2f\n",
              spec.stats.speculative_efficiency());
  return 0;
}
