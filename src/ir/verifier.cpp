// Structural and SSA verification of a module.
#include <sstream>

#include "ir/ir.h"

namespace mutls::ir {

namespace {

struct Verifier {
  const Module& m;
  std::vector<std::string> errors;

  void err(const Function& f, const std::string& msg) {
    errors.push_back("@" + f.name + ": " + msg);
  }

  Type vt(const Function& f, ValueId v) {
    return v < f.value_types.size() ? f.value_types[v] : Type::kVoid;
  }

  void check_function(const Function& f) {
    if (f.blocks.empty()) {
      err(f, "function has no blocks");
      return;
    }
    for (const Block& b : f.blocks) {
      if (b.instrs.empty()) {
        err(f, "block " + b.label + " is empty");
        return;
      }
      for (size_t i = 0; i < b.instrs.size(); ++i) {
        const Instr& in = b.instrs[i];
        bool last = i + 1 == b.instrs.size();
        if (is_terminator(in.op) != last) {
          err(f, "block " + b.label +
                     ": terminator placement violated at instruction " +
                     std::to_string(i));
        }
        if (in.op == Op::kPhi && i > 0 &&
            b.instrs[i - 1].op != Op::kPhi) {
          err(f, "block " + b.label + ": phi after non-phi");
        }
        check_instr(f, b, in);
      }
    }
    check_ssa(f);
  }

  void check_instr(const Function& f, const Block& b, const Instr& in) {
    auto want = [&](size_t n) {
      if (in.args.size() != n) {
        err(f, "block " + b.label + ": " + op_name(in.op) + " expects " +
                   std::to_string(n) + " operands");
        return false;
      }
      return true;
    };
    switch (in.op) {
      case Op::kAdd: case Op::kSub: case Op::kMul: case Op::kSDiv:
      case Op::kSRem: case Op::kAnd: case Op::kOr: case Op::kXor:
      case Op::kShl: case Op::kLShr: case Op::kAShr:
        if (want(2)) {
          if (!is_integer(vt(f, in.args[0])) ||
              vt(f, in.args[0]) != vt(f, in.args[1])) {
            err(f, "block " + b.label + ": integer binop type mismatch");
          }
        }
        break;
      case Op::kFAdd: case Op::kFSub: case Op::kFMul: case Op::kFDiv:
        if (want(2)) {
          if (!is_float(vt(f, in.args[0])) ||
              vt(f, in.args[0]) != vt(f, in.args[1])) {
            err(f, "block " + b.label + ": float binop type mismatch");
          }
        }
        break;
      case Op::kICmp:
        if (want(2) && vt(f, in.args[0]) != vt(f, in.args[1])) {
          err(f, "block " + b.label + ": icmp operand mismatch");
        }
        break;
      case Op::kFCmp:
        if (want(2) && (!is_float(vt(f, in.args[0])) ||
                        vt(f, in.args[0]) != vt(f, in.args[1]))) {
          err(f, "block " + b.label + ": fcmp operand mismatch");
        }
        break;
      case Op::kSelect:
        if (want(3) && vt(f, in.args[0]) != Type::kI1) {
          err(f, "block " + b.label + ": select condition must be i1");
        }
        break;
      case Op::kLoad:
        if (want(1) && vt(f, in.args[0]) != Type::kPtr) {
          err(f, "block " + b.label + ": load address must be ptr");
        }
        break;
      case Op::kStore:
        if (want(2) && vt(f, in.args[1]) != Type::kPtr) {
          err(f, "block " + b.label + ": store address must be ptr");
        }
        break;
      case Op::kGep:
        if (want(2)) {
          if (vt(f, in.args[0]) != Type::kPtr) {
            err(f, "block " + b.label + ": gep base must be ptr");
          }
          if (!is_integer(vt(f, in.args[1]))) {
            err(f, "block " + b.label + ": gep index must be integer");
          }
        }
        break;
      case Op::kGlobal:
        if (!const_cast<Module&>(m).find_global(in.sym)) {
          err(f, "unknown global @" + in.sym);
        }
        break;
      case Op::kCall: {
        const Function* callee = m.find_function(in.sym);
        if (callee) {
          if (callee->params.size() != in.args.size()) {
            err(f, "call @" + in.sym + ": argument count mismatch");
          }
          if (callee->ret_type != in.type) {
            err(f, "call @" + in.sym + ": return type mismatch");
          }
        }
        // Unknown symbols are external functions (printf etc.): allowed.
        break;
      }
      case Op::kCondBr:
        if (want(1) && vt(f, in.args[0]) != Type::kI1) {
          err(f, "block " + b.label + ": condbr condition must be i1");
        }
        break;
      case Op::kRet:
        if (f.ret_type == Type::kVoid) {
          if (!in.args.empty()) {
            err(f, "ret with value in void function");
          }
        } else if (in.args.empty()) {
          err(f, "ret without value in non-void function");
        } else if (vt(f, in.args[0]) != f.ret_type) {
          err(f, "ret type mismatch");
        }
        break;
      case Op::kPhi: {
        if (in.args.size() != in.blocks.size() || in.args.empty()) {
          err(f, "block " + b.label + ": malformed phi");
          break;
        }
        for (ValueId a : in.args) {
          if (a != kNoValue && vt(f, a) != in.type) {
            err(f, "block " + b.label + ": phi operand type mismatch");
          }
        }
        break;
      }
      default:
        break;
    }
  }

  // Non-phi uses must be dominated by their definitions.
  void check_ssa(const Function& f) {
    Cfg cfg = build_cfg(f);
    std::vector<uint32_t> idom = compute_idom(f, cfg);
    // def_block[v]: block defining v (params: entry).
    std::vector<uint32_t> def_block(f.value_count, 0);
    std::vector<uint32_t> def_pos(f.value_count, 0);
    for (uint32_t b = 0; b < f.blocks.size(); ++b) {
      for (uint32_t i = 0; i < f.blocks[b].instrs.size(); ++i) {
        const Instr& in = f.blocks[b].instrs[i];
        if (in.result != kNoValue) {
          def_block[in.result] = b;
          def_pos[in.result] = i + 1;  // 0 = parameter
        }
      }
    }
    auto dominates = [&](uint32_t a, uint32_t b) {
      while (true) {
        if (a == b) return true;
        if (b == 0) return a == 0;
        uint32_t next = idom[b];
        if (next == b) return a == b;
        b = next;
      }
    };
    for (uint32_t b = 0; b < f.blocks.size(); ++b) {
      for (uint32_t i = 0; i < f.blocks[b].instrs.size(); ++i) {
        const Instr& in = f.blocks[b].instrs[i];
        for (size_t ai = 0; ai < in.args.size(); ++ai) {
          ValueId v = in.args[ai];
          if (v == kNoValue) continue;
          uint32_t db = def_block[v];
          if (in.op == Op::kPhi) {
            // The def must dominate the incoming edge's source.
            if (!dominates(db, in.blocks[ai])) {
              err(f, "block " + f.blocks[b].label +
                         ": phi operand does not dominate its edge");
            }
            continue;
          }
          if (db == b) {
            if (def_pos[v] > i) {
              err(f, "block " + f.blocks[b].label +
                         ": use before def of %" + f.value_names[v]);
            }
          } else if (!dominates(db, b)) {
            err(f, "block " + f.blocks[b].label + ": %" + f.value_names[v] +
                       " does not dominate its use");
          }
        }
      }
    }
  }
};

}  // namespace

std::vector<std::string> verify_module(const Module& m) {
  Verifier v{m, {}};
  for (const Function& f : m.functions) {
    v.check_function(f);
  }
  return v.errors;
}

}  // namespace mutls::ir
