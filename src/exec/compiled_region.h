// The native-compilation seam of the execution engine (ROADMAP item 5,
// icpp-style exec/runtime split): a hot region — a natural loop headed by a
// back-edge target — may carry a CompiledFn. When the direct-threaded
// dispatcher runs in DispatchMode::kCompiledRegion and a taken branch
// targets a region whose pointer is non-null, it transfers control to the
// native body instead of dispatching the region's instructions one by one.
// The interpreter stays the semantic oracle; a real JIT later only has to
// produce functions with this ABI and register them.
//
// ## The speculative-access contract
//
// A compiled body executes *inside* the speculation protocol, so it must
// not touch host memory directly:
//
//  * Every load/store of registered (shared) memory goes through
//    region_load / region_store, which route speculative accesses through
//    the thread's SpecBuffer exactly like interpreted instructions — doom,
//    validation and rollback semantics are unchanged. Both throw SpecAbort
//    when the access dooms the speculation; the exception unwinds the
//    native frame like any interpreted abort.
//  * On every loop back edge the body calls region_poll. In a speculative
//    entry frame this is the paper's check point: NOSYNC unwinds via
//    SpecAbort, SYNC means the body must stop — write the loop-carried
//    values for the header's phis into ctx.regs and return
//    RegionResult::stop(header_block, first_instr_after_phis).
//  * Registers are read and written directly in ctx.regs (the frame's
//    register file), indexed by ir::ValueId. On a normal exit the body
//    materializes any phi values of its exit target and returns
//    RegionResult::exit(block, instr, pred_block) with instr >=
//    skip-phi position when it materialized them (instr 0 with a correct
//    pred_block is also legal when the target's phis were left to the
//    dispatcher).
//
// What a body need NOT maintain: the defined/used_snapshot def-use
// bookkeeping of speculative entry frames. Live-in validation uses the
// fork-time liveness sets precomputed at decode, so that bookkeeping is
// never consumed by the protocol.
//
// Regions eligible for compilation contain no fork/join/barrier intrinsics
// and no calls — the registry rejects anything else, so a body never needs
// to re-enter the interpreter mid-region.
#pragma once

#include <atomic>
#include <cstdint>

#include "exec/mem_ops.h"
#include "runtime/spec_abort.h"
#include "runtime/thread_data.h"
#include "runtime/thread_manager.h"

namespace mutls::exec {

// Everything a compiled body may touch. regs is the frame's register file
// (indexed by ir::ValueId); entry_block identifies the CFG edge the region
// was entered on, for header-phi selection.
struct RegionCtx {
  uint64_t* regs = nullptr;
  ThreadData* td = nullptr;
  ThreadManager* mgr = nullptr;
  // The region's heat counter; bodies credit executed back edges in bulk
  // via region_credit before handing control back.
  std::atomic<uint64_t>* heat = nullptr;
  uint32_t entry_block = 0;
  bool speculative_entry = false;  // polls enabled (stop points reachable)
};

// How a compiled region handed control back.
struct RegionResult {
  enum class Kind : uint8_t {
    kExit,  // left the loop: resume dispatch at (block, instr)
    kStop,  // SYNC seen at a back edge: check-point stop at (block, instr)
  };
  Kind kind = Kind::kExit;
  uint32_t block = 0;
  uint32_t instr = 0;
  // CFG predecessor to resume with (phi resolution at the exit target when
  // the body did not materialize them itself).
  uint32_t pred_block = 0;

  static RegionResult exit(uint32_t block, uint32_t instr,
                           uint32_t pred_block) {
    return {Kind::kExit, block, instr, pred_block};
  }
  static RegionResult stop(uint32_t block, uint32_t instr) {
    return {Kind::kStop, block, instr, 0};
  }
};

// A hand-compiled (or, later, JIT-emitted) region body.
using CompiledFn = RegionResult (*)(RegionCtx&);

// --- speculative-access helpers (the only legal memory path of a body) ---

inline uint64_t region_load(RegionCtx& ctx, uint64_t addr, size_t n) {
  uint64_t out = 0;
  load_mem(*ctx.mgr, *ctx.td, addr, &out, n);
  return out;
}

inline void region_store(RegionCtx& ctx, uint64_t addr, uint64_t value,
                         size_t n) {
  store_mem(*ctx.mgr, *ctx.td, addr, &value, n);
}

// Back-edge stop-point poll (paper IV-E). Returns true when the region
// must stop (SYNC); throws SpecAbort on NOSYNC; returns false when the
// loop may continue. Non-entry frames never stop.
inline bool region_poll(RegionCtx& ctx) {
  if (!ctx.speculative_entry) return false;
  SyncStatus s = ctx.td->sync_status.load(std::memory_order_acquire);
  if (s == SyncStatus::kNoSync) throw SpecAbort{"NOSYNC at check point"};
  return s == SyncStatus::kSync;
}

// Credits `back_edges` executed loop iterations to the region profiler and
// the thread's stats, keeping the counters identical to what interpreted
// dispatch of the same iterations would have recorded. Call before every
// return from the body.
inline void region_credit(RegionCtx& ctx, uint64_t back_edges) {
  if (ctx.heat) ctx.heat->fetch_add(back_edges, std::memory_order_relaxed);
  ctx.td->stats.back_edges += back_edges;
}

}  // namespace mutls::exec
