// Owning type-erased closure with fixed inline storage — the steady-path
// replacement for std::function in the fork/join protocol.
//
// std::function heap-allocates whenever the capture outgrows its (small,
// implementation-defined) SBO; on the speculation hot path that is one or
// two mallocs per fork. InlineTask fixes the inline buffer at a size that
// covers every closure the runtime itself ships (kInlineBytes = 128: the
// fork wrapper is a runtime pointer plus the user body, and real bodies
// capture a handful of pointers/values), and when a capture does exceed it,
// the closure spills into the owning slot's Arena bump region instead of
// the global heap — recycled at the slot's next rearm(), so even the spill
// path allocates nothing at steady state. Only an oversized capture with no
// arena attached falls back to ::operator new.
//
// Move-only, like the closures it stores. The inline path additionally
// requires a noexcept-movable callable (the move must not throw while two
// InlineTasks are in flight); throwing-movable types are forced onto the
// spill path, where moving the task just re-seats a pointer.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "support/arena.h"
#include "support/check.h"

namespace mutls {

template <typename Sig, size_t InlineBytes = 128>
class InlineTask;

template <typename R, typename... Args, size_t InlineBytes>
class InlineTask<R(Args...), InlineBytes> {
 public:
  InlineTask() = default;
  InlineTask(const InlineTask&) = delete;
  InlineTask& operator=(const InlineTask&) = delete;

  InlineTask(InlineTask&& o) noexcept { take(o); }
  InlineTask& operator=(InlineTask&& o) noexcept {
    if (this != &o) {
      reset();
      take(o);
    }
    return *this;
  }

  ~InlineTask() { reset(); }

  // Stores `f`. Captures beyond the inline buffer (or with a throwing move
  // constructor) spill into `arena`'s bump region when one is given — the
  // block is recycled on destruction and reclaimed wholesale by the
  // arena's next rearm() — else onto the heap.
  template <typename F>
  void emplace(F&& f, Arena* arena = nullptr) {
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<R, Fn&, Args...>,
                  "callable does not match the task signature");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned captures are not supported");
    reset();
    void* mem;
    if constexpr (fits_inline<Fn>()) {
      mem = &storage_;
    } else {
      mem = arena != nullptr ? arena->alloc(sizeof(Fn), alignof(Fn))
                             : ::operator new(sizeof(Fn));
      spill_ = mem;
      spill_bytes_ = sizeof(Fn);
      arena_ = arena;
    }
    ::new (mem) Fn(std::forward<F>(f));
    vt_ = &kVTable<Fn>;
  }

  void reset() {
    if (vt_ == nullptr) return;
    vt_->destroy(target());
    if (spill_ != nullptr) {
      if (arena_ != nullptr) {
        arena_->recycle(spill_, spill_bytes_);
      } else {
        ::operator delete(spill_);
      }
      spill_ = nullptr;
      spill_bytes_ = 0;
      arena_ = nullptr;
    }
    vt_ = nullptr;
  }

  explicit operator bool() const { return vt_ != nullptr; }

  R operator()(Args... args) {
    MUTLS_DCHECK(vt_ != nullptr, "invoking an empty InlineTask");
    return vt_->invoke(target(), std::forward<Args>(args)...);
  }

  // True when the stored closure lives in the inline buffer (exposed for
  // the allocation-budget tests).
  bool inlined() const { return vt_ != nullptr && spill_ == nullptr; }

 private:
  struct VTable {
    R (*invoke)(void*, Args...);
    void (*destroy)(void*);
    // Move-construct into `to`, destroy the source (inline storage only;
    // spilled closures move by pointer steal).
    void (*relocate)(void* from, void* to);
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= InlineBytes &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr VTable kVTable = {
      [](void* obj, Args... args) -> R {
        return (*static_cast<Fn*>(obj))(std::forward<Args>(args)...);
      },
      [](void* obj) { static_cast<Fn*>(obj)->~Fn(); },
      [](void* from, void* to) {
        ::new (to) Fn(std::move(*static_cast<Fn*>(from)));
        static_cast<Fn*>(from)->~Fn();
      },
  };

  void* target() { return spill_ != nullptr ? spill_ : &storage_; }

  void take(InlineTask& o) noexcept {
    vt_ = o.vt_;
    spill_ = o.spill_;
    spill_bytes_ = o.spill_bytes_;
    arena_ = o.arena_;
    if (vt_ != nullptr && spill_ == nullptr) {
      vt_->relocate(&o.storage_, &storage_);
    }
    o.vt_ = nullptr;
    o.spill_ = nullptr;
    o.spill_bytes_ = 0;
    o.arena_ = nullptr;
  }

  const VTable* vt_ = nullptr;
  void* spill_ = nullptr;
  size_t spill_bytes_ = 0;
  Arena* arena_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[InlineBytes];
};

}  // namespace mutls
