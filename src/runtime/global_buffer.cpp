#include "runtime/global_buffer.h"

#include <algorithm>

namespace mutls {

void BufferMap::init(int log2_entries, size_t overflow_cap, bool with_marks,
                     SpecBufferStats* stats) {
  MUTLS_CHECK(log2_entries >= 4 && log2_entries <= 28,
              "buffer log2 size out of range");
  size_t n = size_t{1} << log2_entries;
  buffer_ = std::make_unique<uint64_t[]>(n);
  addresses_ = std::make_unique<uintptr_t[]>(n);
  std::fill_n(addresses_.get(), n, uintptr_t{0});
  if (with_marks) {
    marks_ = std::make_unique<uint64_t[]>(n);
  }
  offsets_.reserve(1024);
  overflow_.reserve(std::min<size_t>(overflow_cap, 1024));
  mask_ = n - 1;
  overflow_cap_ = overflow_cap;
  stats_ = stats;
}

BufferMap::Find BufferMap::find_or_insert(uintptr_t word_addr, Slot& out) {
  MUTLS_DCHECK((word_addr & kWordMask) == 0, "unaligned word address");
  size_t idx = slot_index(word_addr);
  if (stats_) ++stats_->probe_ops;
  if (addresses_[idx] == word_addr) {
    out.data = &buffer_[idx];
    out.mark = marks_ ? &marks_[idx] : nullptr;
    out.table_index = static_cast<uint32_t>(idx);
    return Find::kFound;
  }
  if (addresses_[idx] == 0) {
    addresses_[idx] = word_addr;
    buffer_[idx] = 0;
    if (marks_) marks_[idx] = 0;
    offsets_.push_back(static_cast<uint32_t>(idx));
    out.data = &buffer_[idx];
    out.mark = marks_ ? &marks_[idx] : nullptr;
    out.table_index = static_cast<uint32_t>(idx);
    return Find::kInserted;
  }
  // Slot collision: the paper's "temporary buffer" path. The linear scan is
  // this map's probe sequence.
  for (OverflowEntry& e : overflow_) {
    if (stats_) ++stats_->probe_steps;
    if (e.word_addr == word_addr) {
      out.data = &e.data;
      out.mark = marks_ ? &e.mark : nullptr;
      out.table_index = kNoSlot;
      return Find::kFound;
    }
  }
  if (overflow_.size() >= overflow_cap_) {
    return Find::kFull;
  }
  overflow_.push_back(OverflowEntry{word_addr, 0, 0});
  out.data = &overflow_.back().data;
  out.mark = marks_ ? &overflow_.back().mark : nullptr;
  out.table_index = kNoSlot;
  return Find::kInserted;
}

bool BufferMap::find(uintptr_t word_addr, Slot& out) {
  size_t idx = slot_index(word_addr);
  if (stats_) ++stats_->probe_ops;
  if (addresses_[idx] == word_addr) {
    out.data = &buffer_[idx];
    out.mark = marks_ ? &marks_[idx] : nullptr;
    out.table_index = static_cast<uint32_t>(idx);
    return true;
  }
  if (addresses_[idx] == 0) return false;
  for (OverflowEntry& e : overflow_) {
    if (stats_) ++stats_->probe_steps;
    if (e.word_addr == word_addr) {
      out.data = &e.data;
      out.mark = marks_ ? &e.mark : nullptr;
      out.table_index = kNoSlot;
      return true;
    }
  }
  return false;
}

void BufferMap::clear() {
  for (uint32_t idx : offsets_) addresses_[idx] = 0;
  offsets_.clear();
  overflow_.clear();
}

void GlobalBuffer::init(int log2_entries, size_t overflow_cap) {
  read_set_.init(log2_entries, overflow_cap, /*with_marks=*/false, &stats_);
  write_set_.init(log2_entries, overflow_cap, /*with_marks=*/true, &stats_);
}

uint64_t GlobalBuffer::read_word_view(uintptr_t word_addr) {
  if (word_addr == mru_addr_) {
    // Serve entirely from the cached slots when the line knows everything
    // the probing path would re-derive.
    if (mru_w_ != 0 && mru_w_ != kWriteAbsent) {
      uint64_t mark = write_set_.mark_at(mru_w_ - 1);
      if (mark == kFullMark) {
        ++stats_.mru_hits;
        ++stats_.probe_skips;
        return write_set_.data_at(mru_w_ - 1);
      }
      if (mru_r_ != 0) {
        ++stats_.mru_hits;
        stats_.probe_skips += 2;
        return overlay_bytes(read_set_.data_at(mru_r_ - 1),
                             write_set_.data_at(mru_w_ - 1), mark);
      }
    } else if (mru_w_ == kWriteAbsent && mru_r_ != 0) {
      ++stats_.mru_hits;
      stats_.probe_skips += 2;
      return read_set_.data_at(mru_r_ - 1);
    }
  }
  ++stats_.mru_misses;
  // Keep whatever half of the line is still valid when re-resolving the
  // same word (e.g. a read after a store that only knew the write slot).
  uint32_t mr = word_addr == mru_addr_ ? mru_r_ : 0;

  BufferMap::Slot w;
  bool have_w = write_set_.find(word_addr, w);
  uint32_t mw = have_w
                    ? (w.table_index != BufferMap::kNoSlot ? w.table_index + 1
                                                           : 0)
                    : kWriteAbsent;
  if (have_w && *w.mark == kFullMark) {
    mru_addr_ = word_addr;
    mru_r_ = mr;
    mru_w_ = mw;
    return *w.data;
  }

  uint64_t base;
  BufferMap::Slot r;
  switch (read_set_.find_or_insert(word_addr, r)) {
    case BufferMap::Find::kFound:
      base = *r.data;
      break;
    case BufferMap::Find::kInserted:
      // First touch: load the whole word from main memory and remember it
      // for validation.
      base = atomic_word_load(word_addr);
      *r.data = base;
      break;
    case BufferMap::Find::kFull:
    default:
      doom("read-set overflow buffer full");
      ++stats_.overflow_events;
      base = atomic_word_load(word_addr);
      if (have_w) base = overlay_bytes(base, *w.data, *w.mark);
      mru_invalidate();  // nothing stable to cache for a doomed access
      return base;
  }
  mru_addr_ = word_addr;
  mru_r_ = r.table_index != BufferMap::kNoSlot ? r.table_index + 1 : 0;
  mru_w_ = mw;
  if (have_w) {
    // Overlay the bytes this thread already wrote.
    base = overlay_bytes(base, *w.data, *w.mark);
  }
  return base;
}

uint64_t GlobalBuffer::peek_word_view(uintptr_t word_addr) {
  BufferMap::Slot w;
  bool have_w = write_set_.find(word_addr, w);
  if (have_w && *w.mark == kFullMark) return *w.data;
  uint64_t base;
  BufferMap::Slot r;
  if (read_set_.find(word_addr, r)) {
    base = *r.data;
  } else {
    base = atomic_word_load(word_addr);
  }
  if (have_w) {
    base = overlay_bytes(base, *w.data, *w.mark);
  }
  return base;
}

void GlobalBuffer::write_word(uintptr_t word_addr, uint64_t value,
                              uint64_t mask) {
  if (word_addr == mru_addr_ && mru_w_ != 0 && mru_w_ != kWriteAbsent) {
    ++stats_.mru_hits;
    ++stats_.probe_skips;
    uint64_t& d = write_set_.data_at(mru_w_ - 1);
    d = overlay_bytes(d, value, mask);
    write_set_.mark_at(mru_w_ - 1) |= mask;
    return;
  }
  ++stats_.mru_misses;
  BufferMap::Slot w;
  if (write_set_.find_or_insert(word_addr, w) == BufferMap::Find::kFull) {
    doom("write-set overflow buffer full");
    ++stats_.overflow_events;
    return;
  }
  *w.data = overlay_bytes(*w.data, value, mask);
  *w.mark |= mask;
  uint32_t mr = word_addr == mru_addr_ ? mru_r_ : 0;
  mru_addr_ = word_addr;
  mru_r_ = mr;
  mru_w_ = w.table_index != BufferMap::kNoSlot ? w.table_index + 1 : 0;
}

void GlobalBuffer::adopt_write(uintptr_t word_addr, uint64_t data,
                               uint64_t mark) {
  // Adoption mutates the sets behind the MRU's back (and runs at the flag
  // barrier, not on the access hot path): drop the cache wholesale.
  mru_invalidate();
  BufferMap::Slot w;
  if (write_set_.find_or_insert(word_addr, w) == BufferMap::Find::kFull) {
    doom("write-set overflow while adopting a child commit");
    ++stats_.overflow_events;
    return;
  }
  *w.data = overlay_bytes(*w.data, data, mark);
  *w.mark |= mark;
}

void GlobalBuffer::adopt_read(uintptr_t word_addr, uint64_t data) {
  mru_invalidate();
  // Reads fully satisfied by this buffer's own writes carry no main-memory
  // dependency; everything else must survive until this thread's own
  // validation, so it joins the read-set (first value wins).
  BufferMap::Slot w;
  if (write_set_.find(word_addr, w) && *w.mark == kFullMark) return;
  BufferMap::Slot r;
  switch (read_set_.find_or_insert(word_addr, r)) {
    case BufferMap::Find::kFound:
      break;  // the earlier observation wins
    case BufferMap::Find::kInserted:
      *r.data = data;
      break;
    case BufferMap::Find::kFull:
      doom("read-set overflow while adopting a child commit");
      ++stats_.overflow_events;
      break;
  }
}

void GlobalBuffer::reset() {
  read_set_.clear();
  write_set_.clear();
  mru_invalidate();
  doomed_ = false;
  doom_reason_ = "";
  // stats_ intentionally survives reset: the settle paths read the counters
  // after resetting; clear_stats() re-arms them per speculation.
}

}  // namespace mutls
