#include "runtime/thread_manager.h"

#include <array>

#include "runtime/spec_abort.h"
#include "support/spin.h"
#include "support/timing.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace mutls {

namespace {

// Best-effort thread affinity for the per-node calibration probe: a pin
// that fails (CPU offline, cpuset restrictions, non-Linux host) just
// leaves the probe where the scheduler put it — the calibration is a
// heuristic, never a correctness dependency.
void pin_current_thread(int cpu_id) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu_id, &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)cpu_id;
#endif
}

// Folds the buffer backend's cost counters into the thread's statistics at
// settle time. The buffer's counters survive reset() and are zeroed when
// the slot is re-armed, so each settle reports exactly one speculation.
// The slot arena's heap-fallback trips ride along the same way: its epoch
// counter covers everything since the slot was re-armed — including the
// forker's closure spill — and zero is the steady-state expectation.
void accumulate_buffer_stats(ThreadData& td) {
  td.stats.buffer += td.sbuf.stats();
  td.stats.buffer.alloc_events += td.arena.epoch_heap_allocs();
}

// One-shot calibration probe behind resolve_handoff_spin_budget(): times a
// burst of spin iterations (the same pause-then-yield ladder
// spin_until_bounded runs, predicate cost included) and sizes the budget
// so a worker spins ~4µs before parking. The old fixed count of 256 was
// tuned on one machine: on hosts where cpu_relax degrades to a sched_yield
// syscall the same count spun for milliseconds, and on fast cores it
// covered well under a microsecond of forker lead.
int measure_spin_budget() {
  constexpr int kProbeIters = 4096;
  constexpr uint64_t kTargetNs = 4000;
  std::atomic<bool> never{false};
  uint64_t t0 = now_ns();
  spin_until_bounded([&] { return never.load(std::memory_order_seq_cst); },
                     kProbeIters);
  uint64_t elapsed = now_ns() - t0;
  if (elapsed == 0) elapsed = 1;
  double ns_per_iter = static_cast<double>(elapsed) / kProbeIters;
  int budget = static_cast<int>(static_cast<double>(kTargetNs) / ns_per_iter);
  if (budget < 64) budget = 64;
  if (budget > 8192) budget = 8192;
  return budget;
}

}  // namespace

int resolve_handoff_spin_budget(int configured, const Topology& topo,
                                int node) {
  if (configured > 0) return configured;
  // Memoized per node: one probe per process per node, shared by every
  // manager (the property being measured — spin iteration cost on that
  // node's cores — is per-machine, not per-run). On a probed multi-node
  // topology the probe thread is pinned to a CPU of the node, so a node
  // whose cores spin slower (remote cache, heterogeneous cores) gets its
  // own budget instead of inheriting the probe core's; fake and fallback
  // topologies calibrate unpinned (their CPU ids are synthetic).
  static std::array<int, Topology::kMaxNodes> cache{};
  static std::array<std::once_flag, Topology::kMaxNodes> flags;
  if (node < 0 || node >= Topology::kMaxNodes) node = 0;
  std::call_once(flags[static_cast<size_t>(node)], [&] {
    int budget = 0;
    if (topo.probed && node < topo.nodes() &&
        !topo.node_cpus[static_cast<size_t>(node)].empty()) {
      const int cpu_id = topo.node_cpus[static_cast<size_t>(node)][0];
      std::thread probe([&] {
        pin_current_thread(cpu_id);
        budget = measure_spin_budget();
      });
      probe.join();
    } else {
      budget = measure_spin_budget();
    }
    cache[static_cast<size_t>(node)] = budget;
  });
  return cache[static_cast<size_t>(node)];
}

int resolve_handoff_spin_budget(int configured) {
  // The single-budget form: node 0, unpinned — shares the per-node cache
  // so both forms agree on what "the" budget is.
  return resolve_handoff_spin_budget(configured, Topology{}, 0);
}

ThreadManager::ThreadManager(const ManagerConfig& config) : config_(config) {
  MUTLS_CHECK(config_.num_cpus >= 1, "need at least one virtual CPU");
  // Resolve the machine shape first: the freelists, the child-placement
  // policy, the sharded backend's shard count and the per-node spin
  // budgets all derive from it. More nodes than virtual CPUs would strand
  // ranks on empty home lists, so the node count is clamped.
  topo_ = config_.numa_nodes > 0 ? Topology::fake(config_.numa_nodes)
                                 : Topology::probe();
  num_nodes_ = topo_.nodes();
  if (num_nodes_ < 1) num_nodes_ = 1;
  if (num_nodes_ > config_.num_cpus) num_nodes_ = config_.num_cpus;
  if (num_nodes_ > Topology::kMaxNodes) num_nodes_ = Topology::kMaxNodes;
  for (int n = 0; n < Topology::kMaxNodes; ++n) {
    node_budget_[n] =
        n < num_nodes_
            ? resolve_handoff_spin_budget(config_.handoff_spin_budget, topo_,
                                          n)
            : node_budget_[0];
  }
  root_.rank = 0;
  root_.lbuf.init(config_.register_slots);
  // A children stack never holds more than num_cpus live refs (each live
  // speculation occupies one slot and sits on exactly one stack), so one
  // up-front reservation makes every push_back — including adoption at
  // join time — allocation-free.
  root_.children.reserve(static_cast<size_t>(config_.num_cpus));
  cpus_.reserve(static_cast<size_t>(config_.num_cpus));
  fleet_.slots = static_cast<uint32_t>(config_.num_cpus);
  for (int r = 1; r <= config_.num_cpus; ++r) {
    cpus_.push_back(std::make_unique<Cpu>());
    Cpu& c = *cpus_.back();
    c.data.rank = r;
    c.data.sbuf.init(config_.buffer_backend, config_.buffer_log2,
                     config_.overflow_cap,
                     SpecBuffer::AdaptivePolicy{
                         config_.adaptive_overflow_threshold,
                         config_.adaptive_calm_hysteresis},
                     GrowableSet::kMaxLog2, &c.data.arena,
                     SpecBuffer::PredictPolicy{
                         config_.predict_enabled,
                         config_.predict_confidence_threshold,
                         config_.predict_stride_window,
                         config_.predict_table_log2},
                     &fleet_,
                     // One shard per node, the slot's own node as the
                     // home shard (kNumaSharded only; ignored otherwise).
                     SpecBuffer::NumaPolicy{num_nodes_,
                                            config_.numa_shard_region_log2,
                                            node_of_rank(r)});
    c.data.lbuf.init(config_.register_slots);
    c.data.children.reserve(static_cast<size_t>(config_.num_cpus));
  }
  // Seed the idle freelist in reverse so the first claims pop rank 1, 2, …
  // (the order the old linear scan produced).
  for (int r = config_.num_cpus; r >= 1; --r) {
    push_idle(r);
  }
  // Workers start after all slots exist so worker_loop may index any cpu.
  for (auto& cp : cpus_) {
    Cpu* c = cp.get();
    c->worker = std::thread([this, c] { worker_loop(*c); });
  }
}

ThreadManager::~ThreadManager() {
  for (auto& cp : cpus_) {
    cp->shutdown.store(true, std::memory_order_seq_cst);
    {
      // Taking mu orders the store against a worker between its parked
      // check and the wait; the notify then cannot be lost.
      std::lock_guard lock(cp->mu);
    }
    cp->cv.notify_one();
  }
  for (auto& cp : cpus_) {
    if (cp->worker.joinable()) cp->worker.join();
  }
}

int ThreadManager::pop_idle(int node) {
  std::atomic<uint64_t>& list = idle_heads_[node].head;
  uint64_t head = list.load(std::memory_order_acquire);
  while (true) {
    int rank = static_cast<int>(head & 0xffffffffu);
    if (rank == 0) return 0;
    int next = cpu(rank).next_idle.load(std::memory_order_relaxed);
    uint64_t tagged = ((head >> 32) + 1) << 32 | static_cast<uint32_t>(next);
    if (list.compare_exchange_weak(head, tagged, std::memory_order_acq_rel,
                                   std::memory_order_acquire)) {
      return rank;
    }
  }
}

int ThreadManager::claim_cpu(ThreadData& forker) {
  // Same-node-first placement: the child lands next to its forker (whose
  // cache lines the live-in setup and the eventual merge touch) and only
  // steals from the other nodes' lists when the home pool is dry.
  const int home = node_of_rank(forker.rank);
  int rank = pop_idle(home);
  for (int i = 1; rank == 0 && i < num_nodes_; ++i) {
    int n = home + i;
    if (n >= num_nodes_) n -= num_nodes_;
    rank = pop_idle(n);
    if (rank != 0) ++forker.stats.cross_node_claims;
  }
  if (rank != 0) {
    // Release publications: admission_allows reads both with acquire from
    // other threads, and a lock-free kMixed claim racing an in-order
    // admission check must not let the new chain head become visible
    // ahead of the claim's own bookkeeping (the relaxed stores these
    // replaced could be observed in either order, letting the checker act
    // on a most-speculative rank whose live count it had not yet seen).
    live_.fetch_add(1, std::memory_order_release);
    most_speculative_rank_.store(rank, std::memory_order_release);
  }
  return rank;
}

void ThreadManager::push_idle(int rank) {
  // A rank always parks on its home node's list (node_of_rank is static),
  // so a cross-node steal is a one-fork loan, not a migration.
  std::atomic<uint64_t>& list = idle_heads_[node_of_rank(rank)].head;
  uint64_t head = list.load(std::memory_order_relaxed);
  while (true) {
    cpu(rank).next_idle.store(static_cast<int>(head & 0xffffffffu),
                              std::memory_order_relaxed);
    uint64_t tagged = ((head >> 32) + 1) << 32 | static_cast<uint32_t>(rank);
    if (list.compare_exchange_weak(head, tagged, std::memory_order_acq_rel,
                                   std::memory_order_relaxed)) {
      return;
    }
  }
}

bool ThreadManager::admission_allows(const ThreadData& td,
                                     ForkModel model) const {
  switch (config_.model_override.value_or(model)) {
    case ForkModel::kMixed:
      return true;
    case ForkModel::kOutOfOrder:
      return td.rank == 0;
    case ForkModel::kInOrder:
      return (live_.load(std::memory_order_acquire) == 0 && td.rank == 0) ||
             (td.rank != 0 &&
              td.rank == most_speculative_rank_.load(std::memory_order_acquire));
  }
  return false;
}

int ThreadManager::admit_and_claim(ThreadData& forker, ForkModel model) {
  ForkModel m = config_.model_override.value_or(model);
  if (m == ForkModel::kInOrder) {
    // In-order admission must check-then-claim atomically against other
    // in-order forks (two links of the chain must not both win), so it
    // keeps the lock.
    std::lock_guard lock(policy_mu_);
    bool ok =
        (live_.load(std::memory_order_relaxed) == 0 && forker.rank == 0) ||
        (forker.rank != 0 &&
         forker.rank == most_speculative_rank_.load(std::memory_order_relaxed));
    return ok ? claim_cpu(forker) : 0;
  }
  if (m == ForkModel::kMixed || forker.rank == 0) {
    // kMixed admits everyone and kOutOfOrder admits the non-speculative
    // thread: no shared policy state to consult, so the claim is one CAS
    // on the idle freelist — no mutex on the fast path.
    return claim_cpu(forker);
  }
  return 0;
}

ThreadManager::Cpu& ThreadManager::arm_cpu(int rank, ThreadData& forker) {
  Cpu& c = cpu(rank);
  c.state.store(CpuState::kRunning, std::memory_order_release);
  c.data.reset_for_speculation(forker.rank, forker.epoch, c.next_epoch++,
                               config_.seed, config_.rollback_probability);
  forker.children.push_back(ChildRef{rank, c.data.epoch});
  return c;
}

void ThreadManager::publish_task(Cpu& c) {
  // Hand the task to the worker: publish, then wake only a parked worker —
  // one in its spin window picks the flag up without any syscall.
  c.has_task.store(true, std::memory_order_seq_cst);
  if (c.parked.load(std::memory_order_seq_cst)) {
    {
      std::lock_guard lock(c.mu);
    }
    c.cv.notify_one();
  }
}

void ThreadManager::worker_loop(Cpu& c) {
  // Each worker spins with its *own node's* calibrated budget (pause
  // latency can differ across nodes and core types).
  const int spin_budget = node_budget_[node_of_rank(c.data.rank)];
  while (true) {
    // Spin-then-park: a short bounded spin catches back-to-back forks (the
    // sub-microsecond case) without a futex round trip; an idle worker
    // parks on the condvar and costs nothing.
    if (!spin_until_bounded(
            [&] {
              return c.has_task.load(std::memory_order_seq_cst) ||
                     c.shutdown.load(std::memory_order_seq_cst);
            },
            spin_budget)) {
      std::unique_lock lock(c.mu);
      c.parked.store(true, std::memory_order_seq_cst);
      c.cv.wait(lock, [&] {
        return c.has_task.load(std::memory_order_seq_cst) ||
               c.shutdown.load(std::memory_order_seq_cst);
      });
      c.parked.store(false, std::memory_order_seq_cst);
    }
    if (c.shutdown.load(std::memory_order_seq_cst)) return;
    Task task = std::move(c.task);
    c.has_task.store(false, std::memory_order_seq_cst);
    ThreadData& td = c.data;
    td.task_start_ns = now_ns();
    try {
      task(td);
    } catch (const SpecAbort& a) {
      if (!td.sbuf.doomed()) td.sbuf.doom(a.reason);
    } catch (...) {
      // A user exception escaping a speculative task dooms it; the joiner
      // re-executes inline, where the exception surfaces normally.
      td.sbuf.doom("exception escaped speculative task");
    }
    if (td.doomed()) {
      // Cascading rollback stays inside this subtree (paper IV-F).
      nosync_children(td);
    }
    barrier_and_settle(c, task);
  }
}

void ThreadManager::barrier_and_settle(Cpu& c, Task& task) {
  ThreadData& td = c.data;

  uint64_t idle0 = now_ns();
  SyncStatus s = spin_while_equal(td.sync_status, SyncStatus::kNone);
  td.stats.ledger.add(TimeCat::kIdle, now_ns() - idle0);

  if (s == SyncStatus::kNoSync) {
    // Quiet discard: non-conforming speculation or subtree abort. No joiner
    // reads this slot, so the thread frees its own CPU.
    nosync_children(td);
    ++td.stats.nosyncs;
    uint64_t f0 = now_ns();
    td.sbuf.reset();
    td.stats.ledger.add(TimeCat::kFinalize, now_ns() - f0);
    uint64_t end = now_ns();
    td.stats.runtime_ns = end - td.task_start_ns;
    uint64_t accounted = td.stats.ledger.total();
    td.stats.ledger.add(TimeCat::kWastedWork,
                        td.stats.runtime_ns > accounted
                            ? td.stats.runtime_ns - accounted
                            : 0);
    // Destroy the task before the settle publishes: a spilled closure lives
    // in this slot's arena, and the next forker re-arms that arena the
    // moment the slot is claimable again.
    task.reset();
    accumulate_buffer_stats(td);
    aggregate_stats(td);
    on_thread_finished(td.rank);
    c.settled_epoch.store(td.epoch, std::memory_order_release);
    c.state.store(CpuState::kIdle, std::memory_order_release);
    push_idle(td.rank);
    return;
  }

  // SYNC: validate against the joiner's view, then commit or roll back.
  ThreadData* j = td.joiner;
  MUTLS_CHECK(j != nullptr, "SYNC without a joiner");

  bool valid;
  {
    uint64_t v0 = now_ns();
    if (td.doomed() || td.force_rollback || td.inject_rollback) {
      valid = false;
    } else if (j->rank == 0) {
      valid = td.sbuf.validate_against_memory();
    } else {
      valid = td.sbuf.validate_against(j->sbuf);
    }
    td.stats.ledger.add(TimeCat::kValidation, now_ns() - v0);
  }

  if (valid) {
    uint64_t c0 = now_ns();
    if (j->rank == 0) {
      td.sbuf.commit_to_memory();
    } else {
      td.sbuf.merge_into(j->sbuf);
    }
    td.stats.ledger.add(TimeCat::kCommit, now_ns() - c0);
    ++td.stats.commits;
  } else {
    ++td.stats.rollbacks;
  }

  uint64_t f0 = now_ns();
  // Same lifetime rule as the NOSYNC path: the spilled closure must not
  // outlive its epoch, and valid_status is the hand-back to the joiner.
  task.reset();
  accumulate_buffer_stats(td);
  td.sbuf.reset();
  td.stats.ledger.add(TimeCat::kFinalize, now_ns() - f0);

  uint64_t end = now_ns();
  td.stats.runtime_ns = end - td.task_start_ns;
  uint64_t accounted = td.stats.ledger.total();
  uint64_t work =
      td.stats.runtime_ns > accounted ? td.stats.runtime_ns - accounted : 0;
  td.stats.ledger.add(valid ? TimeCat::kWork : TimeCat::kWastedWork, work);

  // Publishing valid_status releases the slot to the joiner: no writes to
  // td.stats or td.children may follow.
  td.valid_status.store(valid ? ValidStatus::kCommit : ValidStatus::kRollback,
                        std::memory_order_release);
}

ThreadManager::JoinResult ThreadManager::synchronize(
    ThreadData& joiner, ChildRef expect, bool force_rollback,
    uint64_t* out_tag, FunctionRef<void(ThreadData&)> on_settled) {
  uint64_t t0 = now_ns();
  // Scan down from the top of the stack without popping: in the conforming
  // case (expected child on top) no container is touched, and in the
  // non-conforming case the entries above the match double as the discard
  // list — no side vector, no allocation.
  std::vector<ChildRef>& kids = joiner.children;
  size_t found_at = kids.size();
  while (found_at > 0) {
    const ChildRef& ref = kids[found_at - 1];
    if (ref.rank == expect.rank && ref.epoch == expect.epoch) break;
    --found_at;
  }
  if (found_at == 0) {
    // Not found: every child on the stack is non-conforming (paper IV-F).
    // Signal them all before waiting on any so their subtrees drain
    // concurrently; each frees its own CPU.
    for (size_t i = kids.size(); i > 0; --i) signal_discard(kids[i - 1]);
    for (size_t i = kids.size(); i > 0; --i) wait_discarded(kids[i - 1]);
    kids.clear();
    joiner.stats.ledger.add(TimeCat::kJoin, now_ns() - t0);
    return JoinResult::kNotFound;
  }
  // Non-conforming mixed-model usage: NOSYNC the mismatched children above
  // the match. Each frees its own CPU.
  for (size_t i = kids.size(); i > found_at; --i) signal_discard(kids[i - 1]);

  Cpu& c = cpu(expect.rank);
  MUTLS_CHECK(c.data.epoch == expect.epoch,
              "synchronize: stale child reference");
  c.data.force_rollback = force_rollback;
  c.data.joiner = &joiner;
  joiner.stats.ledger.add(TimeCat::kJoin, now_ns() - t0);

  c.data.sync_status.store(SyncStatus::kSync, std::memory_order_release);

  // Drain the discarded mismatched children only after SYNC is raised, so
  // their teardown overlaps the expected child's validate/commit.
  for (size_t i = kids.size(); i > found_at; --i) wait_discarded(kids[i - 1]);
  kids.resize(found_at - 1);  // drop the discarded refs and the match

  uint64_t i0 = now_ns();
  ValidStatus v = spin_while_equal(c.data.valid_status, ValidStatus::kNone);
  joiner.stats.ledger.add(TimeCat::kIdle, now_ns() - i0);

  uint64_t t1 = now_ns();
  if (out_tag) *out_tag = c.data.user_tag;
  if (on_settled) on_settled(c.data);
  // Adopt the child's children — preserved even on rollback (paper IV-F),
  // so a local conflict does not squash sibling subtrees.
  for (const ChildRef& ref : c.data.children) {
    joiner.children.push_back(ref);
  }
  aggregate_stats(c.data);
  on_thread_finished(expect.rank);
  c.settled_epoch.store(c.data.epoch, std::memory_order_release);
  c.state.store(CpuState::kIdle, std::memory_order_release);
  push_idle(expect.rank);
  joiner.stats.ledger.add(TimeCat::kJoin, now_ns() - t1);
  return v == ValidStatus::kCommit ? JoinResult::kCommit
                                   : JoinResult::kRollback;
}

void ThreadManager::nosync_children(ThreadData& td, size_t keep) {
  if (td.children.size() <= keep) return;
  // Signal every discarded child before waiting on any so their subtrees
  // drain concurrently.
  for (size_t i = keep; i < td.children.size(); ++i) {
    signal_discard(td.children[i]);
  }
  for (size_t i = keep; i < td.children.size(); ++i) {
    wait_discarded(td.children[i]);
  }
  td.children.resize(keep);
}

void ThreadManager::signal_discard(const ChildRef& ref) {
  Cpu& cc = cpu(ref.rank);
  // The slot's occupant can only change after the speculation named by
  // `ref` settles, and `ref` is owned by exactly one parent until then, so
  // this epoch read is stable.
  if (cc.data.epoch == ref.epoch) {
    cc.data.sync_status.store(SyncStatus::kNoSync, std::memory_order_release);
  }
}

void ThreadManager::wait_discarded(const ChildRef& ref) {
  // Wait for the discarded task to settle. Without the handshake the task
  // keeps running (until its next check point or barrier) after the caller
  // has moved on — and its closure may capture stack frames the caller is
  // about to destroy. settled_epoch is monotonic, so slot reuse after the
  // settle cannot confuse the wait. The deadline turns a task that can
  // never settle (blocked forever without a check point) into a
  // diagnosable protocol violation instead of a silent hang.
  Cpu& cc = cpu(ref.rank);
  uint64_t timeout = config_.discard_settle_timeout_ns;
  uint64_t deadline = now_ns() + timeout;
  spin_until([&] {
    MUTLS_CHECK(timeout == 0 || now_ns() < deadline,
                "discarded speculative task failed to settle "
                "(task blocked without a check point?)");
    return cc.settled_epoch.load(std::memory_order_acquire) >= ref.epoch;
  });
}

void ThreadManager::on_thread_finished(int rank) {
  std::lock_guard lock(policy_mu_);
  live_.fetch_sub(1, std::memory_order_relaxed);
  if (most_speculative_rank_.load(std::memory_order_relaxed) == rank) {
    // The chain shrinks: speculation continues from this thread's parent if
    // that parent is still the same live speculative thread.
    const ThreadData& td = cpu(rank).data;
    if (td.parent_rank != 0) {
      Cpu& p = cpu(td.parent_rank);
      if (p.state.load(std::memory_order_acquire) != CpuState::kIdle &&
          p.data.epoch == td.parent_epoch) {
        most_speculative_rank_.store(td.parent_rank,
                                     std::memory_order_relaxed);
        return;
      }
    }
    most_speculative_rank_.store(0, std::memory_order_relaxed);
  }
}

void ThreadManager::aggregate_stats(ThreadData& td) {
  std::lock_guard lock(stats_mu_);
  spec_stats_ += td.stats;
  ++spec_thread_count_;
}

void ThreadManager::register_space(const void* p, size_t n) {
  space_.insert(reinterpret_cast<uintptr_t>(p), n);
}

void ThreadManager::unregister_space(const void* p, size_t n) {
  space_.erase(reinterpret_cast<uintptr_t>(p), n);
  // Invalidate every Ctx's cached positive lookups: a span that was
  // registered when cached may cover this region.
  space_epoch_.fetch_add(1, std::memory_order_acq_rel);
}

bool ThreadManager::space_contains(const void* p, size_t n) const {
  return space_.contains(reinterpret_cast<uintptr_t>(p), n);
}

int ThreadManager::live_threads() const {
  return live_.load(std::memory_order_acquire);
}

RunStats ThreadManager::collect_stats() {
  RunStats rs;
  rs.critical = root_.stats;
  {
    std::lock_guard lock(stats_mu_);
    rs.speculative = spec_stats_;
    rs.speculative_threads = spec_thread_count_;
  }
  return rs;
}

void ThreadManager::reset_stats() {
  root_.stats.clear();
  std::lock_guard lock(stats_mu_);
  spec_stats_.clear();
  spec_thread_count_ = 0;
}

void ThreadManager::begin_run() {
  reset_stats();
  // The root thread's arena follows run boundaries instead of speculation
  // epochs (the root never settles): re-arm here so each run's critical
  // alloc_events covers exactly that run.
  root_.arena.rearm();
  run_start_ns_ = now_ns();
}

void ThreadManager::end_run() {
  uint64_t end = now_ns();
  root_.stats.runtime_ns = end - run_start_ns_;
  uint64_t accounted = root_.stats.ledger.total();
  root_.stats.ledger.add(TimeCat::kWork,
                         root_.stats.runtime_ns > accounted
                             ? root_.stats.runtime_ns - accounted
                             : 0);
  root_.stats.buffer.alloc_events += root_.arena.epoch_heap_allocs();
}

}  // namespace mutls
