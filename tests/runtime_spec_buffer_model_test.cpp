// Differential property harness for the SpecBuffer backends.
//
// A plain std::map<offset, byte> reference model implements speculative
// load/store/validate/commit at byte granularity — no hashing, no marks,
// no word packing, no MRU cache, just the semantics: a load sees the
// thread's own written bytes over its first observation of the containing
// word over main memory; validation compares every observed word against
// memory; commit publishes exactly the written bytes.
//
// Randomized streams of mixed aligned / unaligned / word-straddling /
// multi-word operations are then driven simultaneously against the model
// and against every backend — kStaticHash, kGrowableLog, kAdaptive (both
// before and after a flip) — each buffering over its own identical arena.
// Every load must return byte-identical data, every epoch must produce
// identical validation outcomes (including under injected main-memory
// perturbations), identical set footprints, identical doom state, and
// byte-identical committed arenas. The PRNG seed is printed on failure so
// any divergence replays deterministically.
//
// The backend-specific *capacity* behavior (which the model deliberately
// does not share) is pinned separately at the bottom: doom reasons, the
// growable hard cap under kAdaptive, and the per-speculation zeroing of
// the overflow_events/backend_flips counters vs the per-slot persistence
// of the flipped state.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>
#include <vector>

#include "runtime/spec_buffer.h"
#include "support/prng.h"

namespace mutls {
namespace {

constexpr size_t kArenaWords = 256;
constexpr size_t kArenaBytes = kArenaWords * sizeof(uint64_t);

// The byte-level reference model. Offsets are relative to the arena base
// it is constructed over.
class ByteRefModel {
 public:
  explicit ByteRefModel(uint8_t* base) : base_(base) {}

  void load(size_t off, uint8_t* out, size_t n) {
    for (size_t i = 0; i < n; ++i) out[i] = load_byte(off + i);
  }

  void store(size_t off, const uint8_t* src, size_t n) {
    for (size_t i = 0; i < n; ++i) writes_[off + i] = src[i];
  }

  // Whole-word-conservative validation, as the paper's buffers do: every
  // byte of every observed word must still equal main memory.
  bool validate() const {
    for (const auto& [off, v] : reads_) {
      if (base_[off] != v) return false;
    }
    return true;
  }

  void commit() {
    for (const auto& [off, v] : writes_) base_[off] = v;
  }

  void reset() {
    reads_.clear();
    writes_.clear();
  }

  size_t read_words() const {
    return reads_.size() / 8;  // first touch always records all 8 bytes
  }
  size_t write_words() const {
    std::set<size_t> words;
    for (const auto& [off, v] : writes_) words.insert(off & ~size_t{7});
    return words.size();
  }

 private:
  uint8_t load_byte(size_t off) {
    size_t word = off & ~size_t{7};
    // Loads are word-granular: unless the thread's own writes cover the
    // *whole* containing word, resolving the view observes the word from
    // main memory (first touch only) — even when the requested byte itself
    // was written. Only a fully-written word carries no memory dependency.
    if (!word_fully_written(word) && !reads_.count(word)) {
      for (size_t i = 0; i < 8; ++i) reads_[word + i] = base_[word + i];
    }
    auto w = writes_.find(off);
    if (w != writes_.end()) return w->second;
    return reads_.at(off);
  }

  bool word_fully_written(size_t word) const {
    for (size_t i = 0; i < 8; ++i) {
      if (!writes_.count(word + i)) return false;
    }
    return true;
  }

  uint8_t* base_;
  std::map<size_t, uint8_t> reads_;
  std::map<size_t, uint8_t> writes_;
};

// One backend under test: a SpecBuffer over its own private arena copy, so
// commits never leak between the contestants.
struct Contestant {
  const char* name;
  SpecBuffer buf;
  alignas(8) uint8_t arena[kArenaBytes];

  uintptr_t addr(size_t off) const {
    return reinterpret_cast<uintptr_t>(arena) + off;
  }

  // Production routing rule: the aligned-word fast path where eligible,
  // the span path otherwise (what Ctx::load/store do).
  void store(size_t off, const uint8_t* src, size_t n) {
    uintptr_t a = addr(off);
    if (word_sized_aligned(a, n)) {
      uint64_t raw = 0;
      std::memcpy(&raw, src, n);
      buf.store_aligned(a, raw, n);
    } else {
      buf.store_span(a, src, n);
    }
  }
  void load(size_t off, uint8_t* out, size_t n) {
    uintptr_t a = addr(off);
    if (word_sized_aligned(a, n)) {
      uint64_t raw = buf.load_aligned(a, n);
      std::memcpy(out, &raw, n);
    } else {
      buf.load_span(a, out, n);
    }
  }
};

class SpecBufferModelTest : public ::testing::Test {
 protected:
  // 7 contestants: the two concrete backends, an adaptive slot still on
  // its starting static hash, an adaptive slot that has already flipped
  // to the growable log, the two concrete backends again with value
  // prediction enabled but never confident, and the NUMA-sharded store
  // (2 shards at sub-arena granularity, so the random stream genuinely
  // crosses shard boundaries).
  static constexpr int kContestants = 7;

  void SetUp() override {
    c_[0].name = "static-hash";
    c_[0].buf.init(BufferBackend::kStaticHash, 8, 64);
    c_[1].name = "growable-log";
    c_[1].buf.init(BufferBackend::kGrowableLog, 8, 64);
    c_[2].name = "adaptive-unflipped";
    c_[2].buf.init(BufferBackend::kAdaptive, 8, 64);
    // The flipped contestant starts on a deliberately tiny static table,
    // is overflow-doomed once, and re-armed with a threshold of 1: its
    // next speculation — the differential run — executes on the growable
    // log under the kAdaptive dispatch.
    c_[3].name = "adaptive-flipped";
    c_[3].buf.init(BufferBackend::kAdaptive, 4, 2,
                   SpecBuffer::AdaptivePolicy{/*overflow_threshold=*/1,
                                              /*calm_hysteresis=*/64});
    for (int i = 0; i < 8 && !c_[3].buf.doomed(); ++i) {
      uint64_t v = 1;  // stride 16 words: every store collides in slot 0
      c_[3].buf.store_bytes(c_[3].addr(static_cast<size_t>(i) * 16 * 8), &v,
                            8);
    }
    ASSERT_TRUE(c_[3].buf.doomed());
    c_[3].buf.rearm();
    ASSERT_EQ(c_[3].buf.active_backend(), BufferBackend::kGrowableLog);
    ASSERT_EQ(c_[2].buf.active_backend(), BufferBackend::kStaticHash);
    // Prediction-enabled contestants with an unreachable confidence
    // threshold (entry confidence saturates at 64): the whole prediction
    // machinery runs — table sizing, the settle walk, failure-path
    // training under the injected perturbations — yet no load ever adopts
    // a prediction, so behavior must stay byte-identical to the model.
    SpecPredictPolicy unconfident{.enabled = true,
                                  .confidence_threshold = 65,
                                  .stride_window = uint64_t{1} << 16,
                                  .table_log2 = 8};
    c_[4].name = "static-hash-predict-unconfident";
    c_[4].buf.init(BufferBackend::kStaticHash, 8, 64, {},
                   GrowableSet::kMaxLog2, nullptr, unconfident);
    c_[5].name = "growable-log-predict-unconfident";
    c_[5].buf.init(BufferBackend::kGrowableLog, 8, 64, {},
                   GrowableSet::kMaxLog2, nullptr, unconfident);
    // region_log2 = 8 splits the 2 KiB test arena into eight 256-byte
    // regions alternating between the two shards, so every random stream
    // exercises the cross-shard routing, not one shard in isolation.
    c_[6].name = "numa-sharded";
    c_[6].buf.init(BufferBackend::kNumaSharded, 8, 64, {},
                   GrowableSet::kMaxLog2, nullptr, {}, nullptr,
                   SpecBuffer::NumaPolicy{/*shards=*/2, /*region_log2=*/8,
                                          /*home_shard=*/0});

    for (size_t i = 0; i < kArenaBytes; ++i) {
      uint8_t v = static_cast<uint8_t>(i * 131 + 7);
      for (Contestant& c : c_) c.arena[i] = v;
      model_arena_[i] = v;
    }
  }

  Contestant c_[kContestants];
  alignas(8) uint8_t model_arena_[kArenaBytes];
};

TEST_F(SpecBufferModelTest, RandomOpsMatchByteModelOnEveryBackend) {
  constexpr int kEpochs = 5;
  constexpr int kOpsPerEpoch = 1000;  // 5k ops per seed, as specced
  for (uint64_t seed : {0x5eedull, 0xfeedbeefull}) {
    SCOPED_TRACE(::testing::Message() << "seed=0x" << std::hex << seed);
    Xorshift64 rng(seed);
    ByteRefModel model(model_arena_);

    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      SCOPED_TRACE(::testing::Message() << "epoch=" << epoch);
      for (int op = 0; op < kOpsPerEpoch; ++op) {
        size_t n = 1 + rng.next() % 16;  // aligned scalars, odd widths,
                                         // word straddles, two-word spans
        size_t off = rng.next() % (kArenaBytes - n);
        if (rng.next() % 2 == 0) {
          uint8_t data[16];
          for (size_t i = 0; i < n; ++i) {
            data[i] = static_cast<uint8_t>(rng.next());
          }
          for (Contestant& c : c_) c.store(off, data, n);
          model.store(off, data, n);
        } else {
          uint8_t want[16];
          model.load(off, want, n);
          for (Contestant& c : c_) {
            uint8_t got[16];
            c.load(off, got, n);
            ASSERT_EQ(std::memcmp(got, want, n), 0)
                << c.name << " diverges from the byte model at op " << op
                << " (off=" << off << " n=" << n << ")";
          }
        }
      }

      // Identical set footprints: the word-granular sets must contain
      // exactly the words the byte model observed/wrote.
      for (Contestant& c : c_) {
        ASSERT_EQ(c.buf.read_entries(), model.read_words()) << c.name;
        ASSERT_EQ(c.buf.write_entries(), model.write_words()) << c.name;
        ASSERT_FALSE(c.buf.doomed()) << c.name;
        ASSERT_STREQ(c.buf.doom_reason(), "") << c.name;
        // An unconfident predictor never adopts a read (trivially zero on
        // the prediction-disabled contestants too).
        ASSERT_EQ(c.buf.stats().predicted_reads, 0u) << c.name;
      }

      // Identical validation outcomes: clean now, and under injected
      // main-memory perturbations (applied identically to every arena).
      for (Contestant& c : c_) {
        ASSERT_TRUE(c.buf.validate_against_memory()) << c.name;
      }
      ASSERT_TRUE(model.validate());
      for (int probe = 0; probe < 16; ++probe) {
        size_t off = rng.next() % kArenaBytes;
        uint8_t delta = static_cast<uint8_t>(1 + rng.next() % 255);
        for (Contestant& c : c_) c.arena[off] ^= delta;
        model_arena_[off] ^= delta;
        bool want = model.validate();
        for (Contestant& c : c_) {
          ASSERT_EQ(c.buf.validate_against_memory(), want)
              << c.name << ": validation outcome diverges when byte " << off
              << " changes behind the speculation";
        }
        for (Contestant& c : c_) c.arena[off] ^= delta;
        model_arena_[off] ^= delta;
      }

      // Byte-identical committed state, then re-arm for the next epoch.
      for (Contestant& c : c_) c.buf.commit_to_memory();
      model.commit();
      for (Contestant& c : c_) {
        ASSERT_EQ(std::memcmp(c.arena, model_arena_, kArenaBytes), 0)
            << c.name << ": committed arena diverges from the byte model";
      }
      for (Contestant& c : c_) c.buf.rearm();
      model.reset();
    }
    // The flipped slot must still be flipped after all those re-arms
    // (large footprints are not "calm"), the unflipped one still unflipped
    // (it never doomed).
    EXPECT_EQ(c_[3].buf.active_backend(), BufferBackend::kGrowableLog);
    EXPECT_EQ(c_[2].buf.active_backend(), BufferBackend::kStaticHash);
  }
  // The perturbation probes failed validations, and failed validations
  // train the predictor from the conflicting words — the table must have
  // been learning all along even though it never got confident enough to
  // serve.
  EXPECT_GT(c_[4].buf.predictor().entries(), 0u);
  EXPECT_GT(c_[5].buf.predictor().entries(), 0u);
  // The sharded contestant really routed (per-epoch counters were cleared
  // by the final rearm, so check the lifetime evidence instead: a 2 KiB
  // arena split at 256-byte regions cannot have kept one shard empty).
  EXPECT_EQ(c_[6].buf.active_backend(), BufferBackend::kNumaSharded);
}

TEST_F(SpecBufferModelTest, NumaShardedCountsRoutingAndLocalCommitWords) {
  Contestant& c = c_[6];
  // One word per 256-byte region: words 0 and 64 land in shard 0 (home),
  // words 32 and 96 in shard 1.
  uint64_t v = 7;
  for (size_t w : {size_t{0}, size_t{32}, size_t{64}, size_t{96}}) {
    c.buf.store_bytes(c.addr(w * 8), &v, 8);
  }
  ASSERT_EQ(c.buf.write_entries(), 4u);
  EXPECT_GT(c.buf.stats().shard_probe_steps, 0u)
      << "every find/insert takes one address-range routing decision";
  ASSERT_EQ(c.buf.stats().local_commit_words, 0u) << "not committed yet";
  c.buf.commit_to_memory();
  EXPECT_EQ(c.buf.stats().local_commit_words, 2u)
      << "exactly the home-shard words count as node-local commit stream";
}

// The harness above keeps every contestant inside its capacity; the
// capacity *differences* are contract too, pinned here.

TEST(SpecBufferModelDoom, AdaptiveDoomsAndReportsLikeStaticUntilFlipped) {
  // Identically-sized tiny static hash vs adaptive slot (threshold high
  // enough not to flip): byte-identical op streams must produce identical
  // doom state and identical doom reasons.
  SpecBuffer st, ad;
  st.init(BufferBackend::kStaticHash, 4, 2);
  ad.init(BufferBackend::kAdaptive, 4, 2,
          SpecBuffer::AdaptivePolicy{/*overflow_threshold=*/100,
                                     /*calm_hysteresis=*/16});
  alignas(8) static uint64_t arena[1024];
  for (int i = 0; i < 8; ++i) {
    uint64_t v = static_cast<uint64_t>(i);
    uintptr_t a = reinterpret_cast<uintptr_t>(&arena[i * 16]);  // colliding
    st.store_bytes(a, &v, 8);
    ad.store_bytes(a, &v, 8);
    ASSERT_EQ(st.doomed(), ad.doomed()) << "store " << i;
  }
  ASSERT_TRUE(st.doomed());
  EXPECT_STREQ(st.doom_reason(), ad.doom_reason());
  EXPECT_EQ(st.stats().overflow_events, ad.stats().overflow_events);
}

TEST(SpecBufferModelDoom, AdaptiveUnderGrowableHardCapDoomsInsteadOfAborting) {
  // A flipped adaptive slot that exhausts the growable hard cap (lowered
  // from 2^28 via the max_log2 seam — nothing can allocate its way to the
  // real one in a test) must doom the speculation exactly like static-hash
  // exhaustion does, not abort the process.
  SpecBuffer buf;
  buf.init(BufferBackend::kAdaptive, 4, 2,
           SpecBuffer::AdaptivePolicy{/*overflow_threshold=*/1,
                                      /*calm_hysteresis=*/16},
           /*growable_max_log2=*/4);
  alignas(8) static uint64_t arena[1024];
  auto store_word = [&](size_t word, uint64_t v) {
    buf.store_bytes(reinterpret_cast<uintptr_t>(&arena[word]), &v, 8);
  };
  // Flip: one overflow-doomed speculation, then re-arm.
  for (int i = 0; i < 8 && !buf.doomed(); ++i) {
    store_word(static_cast<size_t>(i) * 16, 1);
  }
  ASSERT_TRUE(buf.doomed());
  buf.rearm();
  ASSERT_EQ(buf.active_backend(), BufferBackend::kGrowableLog);
  EXPECT_EQ(buf.stats().backend_flips, 1u);
  EXPECT_EQ(buf.stats().overflow_events, 0u) << "zeroed per speculation";

  // Exhaust the capped growable index: 16 slots, one kept empty for probe
  // termination, so the 16th distinct word dooms.
  int stored = 0;
  for (int i = 0; i < 64 && !buf.doomed(); ++i) {
    store_word(static_cast<size_t>(i), 2);
    ++stored;
  }
  ASSERT_TRUE(buf.doomed()) << "hard cap must doom, not grow forever";
  EXPECT_EQ(stored, 16) << "one index slot stays reserved for probing";
  EXPECT_STREQ(buf.doom_reason(),
               "write-set exhausted the maximum growable index");
  EXPECT_GE(buf.stats().overflow_events, 1u)
      << "a hard-cap doom is a capacity doom, same as static exhaustion";

  // Counters are per speculation; the flipped state is per slot.
  buf.rearm();
  EXPECT_EQ(buf.stats().overflow_events, 0u);
  EXPECT_EQ(buf.stats().backend_flips, 0u);
  EXPECT_EQ(buf.active_backend(), BufferBackend::kGrowableLog)
      << "the flip persists across re-arms";
  EXPECT_FALSE(buf.doomed());
}

TEST(SpecBufferModelDoom, StandaloneRearmDoesNotFlapOnRetainedCapacity) {
  // In the standalone flow — rearm() with no settle-time reset() before
  // it, as the model harness and the ablation benches drive it — the flip
  // decision must still see the retiring speculation's footprint. A
  // flipped slot whose big footprints fit the *grown* index pays zero
  // resizes, so without the footprint guard every epoch would look calm
  // and the slot would flip back, overflow-doom, and flip up again.
  SpecBuffer buf;
  buf.init(BufferBackend::kAdaptive, 4, 2,
           SpecBuffer::AdaptivePolicy{/*overflow_threshold=*/1,
                                      /*calm_hysteresis=*/2});
  alignas(8) static uint64_t arena[128];
  // Flip: one overflow-doomed epoch (colliding words), then re-arm.
  for (int i = 0; i < 8 && !buf.doomed(); ++i) {
    uint64_t v = 1;
    buf.store_bytes(reinterpret_cast<uintptr_t>(&arena[i * 16]), &v, 8);
  }
  ASSERT_TRUE(buf.doomed());
  buf.rearm();
  ASSERT_EQ(buf.active_backend(), BufferBackend::kGrowableLog);
  // Big-footprint epochs, well past the hysteresis count: after the first
  // one grows the index, the rest resize nothing — but 64 words is not
  // "calm" for a 16-slot static table, so the slot must stay flipped and
  // never doom again.
  for (int round = 0; round < 6; ++round) {
    for (size_t i = 0; i < 64; ++i) {
      uint64_t v = i;
      buf.store_bytes(reinterpret_cast<uintptr_t>(&arena[i]), &v, 8);
    }
    ASSERT_FALSE(buf.doomed()) << "round " << round
                               << ": slot flapped back to the static hash";
    ASSERT_EQ(buf.active_backend(), BufferBackend::kGrowableLog)
        << "round " << round;
    buf.rearm();
  }
  EXPECT_EQ(buf.active_backend(), BufferBackend::kGrowableLog);
}

// --- The value-prediction policy layer, driven standalone -------------
//
// A "ticker" word bumped by a constant stride between the speculative load
// and validation: the canonical conflict the predictor exists to absorb.
// Epochs are speculations (rearm between them); stats are read before the
// rearm that clears them.

class SpecBufferPredictTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kThreshold = 2;
  static constexpr uint64_t kStride = 7;

  void SetUp() override {
    buf_.init(BufferBackend::kStaticHash, 8, 64, {}, GrowableSet::kMaxLog2,
              /*arena=*/nullptr,
              SpecPredictPolicy{.enabled = true,
                                .confidence_threshold = kThreshold,
                                .stride_window = uint64_t{1} << 16,
                                .table_log2 = 8});
  }

  uintptr_t addr() const { return reinterpret_cast<uintptr_t>(&word_); }

  // One conflicting warm-up epoch: load, bump, fail validation (training
  // the predictor from the post-bump value), rearm. Three of these take
  // the entry to the confidence threshold: create the entry, seed the
  // stride candidate, confirm it.
  void warmup_epochs(int n) {
    for (int epoch = 0; epoch < n; ++epoch) {
      uint64_t seen = buf_.load_aligned(addr(), 8);
      ASSERT_EQ(seen, word_) << "unconfident load must observe memory";
      word_ += kStride;
      ASSERT_FALSE(buf_.validate_against_memory()) << "epoch " << epoch;
      ASSERT_FALSE(buf_.doomed())
          << "a plain conflict is a rollback, not a mispredict doom";
      ASSERT_EQ(buf_.stats().predicted_reads, 0u) << "epoch " << epoch;
      buf_.rearm();
    }
  }

  SpecBuffer buf_;
  alignas(8) uint64_t word_ = 100;
};

TEST_F(SpecBufferPredictTest, StrideTickerSavesTheRollbackOnceConfident) {
  warmup_epochs(3);
  ASSERT_GE(buf_.predictor().confidence_of(addr()), kThreshold);

  // Epoch 4: the load adopts the predicted post-bump value *before* the
  // ticker bumps; after the bump, validation passes — the conflict that
  // doomed the previous three epochs is absorbed into a commit.
  uint64_t seen = buf_.load_aligned(addr(), 8);
  EXPECT_EQ(seen, word_ + kStride) << "confident load must adopt last+stride";
  word_ += kStride;
  EXPECT_TRUE(buf_.validate_against_memory());
  EXPECT_FALSE(buf_.doomed());
  EXPECT_EQ(buf_.stats().predicted_reads, 1u);
  EXPECT_EQ(buf_.stats().predictor_hits, 1u);
  EXPECT_EQ(buf_.stats().predictor_mispredicts, 0u);
  EXPECT_EQ(buf_.stats().saved_rollbacks, 1u)
      << "memory moved under a predicted read that survived validation";
  buf_.commit_to_memory();
}

TEST_F(SpecBufferPredictTest, QuietPredictedReadIsNoSavedRollback) {
  warmup_epochs(3);
  // The ticker *stops*, but the adopted prediction happens to be wrong —
  // covered by the mispredict test. Here the prediction is made right by
  // the ticker bumping before the load: the adopted value equals memory
  // from the start, so nothing moved and no rollback was saved.
  word_ += kStride;  // bump first
  uint64_t seen = buf_.load_aligned(addr(), 8);
  EXPECT_EQ(seen, word_) << "prediction and memory agree";
  EXPECT_TRUE(buf_.validate_against_memory());
  EXPECT_EQ(buf_.stats().predicted_reads, 1u);
  EXPECT_EQ(buf_.stats().predictor_hits, 1u);
  EXPECT_EQ(buf_.stats().saved_rollbacks, 0u)
      << "a bet that was never in danger saves nothing";
}

TEST_F(SpecBufferPredictTest, MispredictDoomsWithTheDistinctReason) {
  warmup_epochs(3);
  // The ticker stops: the adopted last+stride value is now wrong, and the
  // speculation must fail validation with the mispredict doom reason (so
  // rollback accounting can tell lost bets from true conflicts).
  uint64_t seen = buf_.load_aligned(addr(), 8);
  ASSERT_EQ(seen, word_ + kStride);
  EXPECT_FALSE(buf_.validate_against_memory());
  EXPECT_TRUE(buf_.doomed());
  EXPECT_STREQ(buf_.doom_reason(), SpecBuffer::kMispredictDoomReason);
  EXPECT_EQ(buf_.stats().predicted_reads, 1u);
  EXPECT_EQ(buf_.stats().predictor_hits, 0u);
  EXPECT_EQ(buf_.stats().predictor_mispredicts, 1u);
  EXPECT_EQ(buf_.stats().saved_rollbacks, 0u);
  // The doom is per speculation, like every other doom.
  buf_.rearm();
  EXPECT_FALSE(buf_.doomed());
  EXPECT_STREQ(buf_.doom_reason(), "");
}

TEST_F(SpecBufferPredictTest, PredictedReadSettlesAgainstSpeculativeJoiner) {
  warmup_epochs(3);
  // Epoch 4 joins against a *speculative* joiner instead of rank 0: the
  // final value comes from the joiner's buffered (uncommitted) write via
  // word_peek, not from main memory — the predict-aware settle must look
  // through the same window the XOR walk did.
  uint64_t seen = buf_.load_aligned(addr(), 8);
  ASSERT_EQ(seen, word_ + kStride);
  SpecBuffer joiner;
  joiner.init(BufferBackend::kStaticHash, 8, 64);
  joiner.store_aligned(addr(), word_ + kStride, 8);  // buffered only
  EXPECT_TRUE(buf_.validate_against(joiner));
  EXPECT_EQ(buf_.stats().predictor_hits, 1u);
  EXPECT_EQ(buf_.stats().saved_rollbacks, 1u)
      << "the joiner's pending write is exactly the movement a rollback "
         "would have punished";
  EXPECT_EQ(word_, 100 + 3 * kStride) << "main memory itself never moved";
}

}  // namespace
}  // namespace mutls
