// Tests of the mini-IR: parser, printer round trip, verifier, analyses.
#include <gtest/gtest.h>

#include "ir/ir.h"

namespace mutls::ir {
namespace {

const char* kSumProgram = R"(
global @acc : i64[8]
func @sum(%n: i64) : i64 {
entry:
  %zero = const i64 0
  %one = const i64 1
  br loop
loop:
  %i = phi i64 [%zero, entry], [%inc, loop]
  %s = phi i64 [%zero, entry], [%s2, loop]
  %s2 = add %s, %i
  %inc = add %i, %one
  %c = icmp slt %inc, %n
  condbr %c, loop, done
done:
  ret %s2
}
)";

TEST(IrParser, ParsesSumProgram) {
  Module m = parse_module(kSumProgram);
  ASSERT_EQ(m.functions.size(), 1u);
  ASSERT_EQ(m.globals.size(), 1u);
  const Function& f = m.functions[0];
  EXPECT_EQ(f.name, "sum");
  EXPECT_EQ(f.params.size(), 1u);
  EXPECT_EQ(f.ret_type, Type::kI64);
  EXPECT_EQ(f.blocks.size(), 3u);
  EXPECT_EQ(m.globals[0].count, 8u);
}

TEST(IrParser, ReportsUndefinedValue) {
  EXPECT_THROW(parse_module("func @f() { entry:\n ret %missing\n}"),
               ParseError);
}

TEST(IrParser, ReportsUndefinedLabel) {
  EXPECT_THROW(parse_module("func @f() { entry:\n br nowhere\n}"),
               ParseError);
}

TEST(IrParser, ReportsBadInstruction) {
  EXPECT_THROW(parse_module("func @f() { entry:\n frobnicate\n}"),
               ParseError);
}

TEST(IrParser, ParsesForkJoinBarrier) {
  Module m = parse_module(R"(
func @w() {
entry:
  mutls.fork 3, mixed
  mutls.join 3
  mutls.barrier 3
  ret
}
)");
  const Block& b = m.functions[0].blocks[0];
  EXPECT_EQ(b.instrs[0].op, Op::kMutlsFork);
  EXPECT_EQ(b.instrs[0].imm, 3);
  EXPECT_EQ(static_cast<int>(b.instrs[0].pred), 2);  // mixed
  EXPECT_EQ(b.instrs[1].op, Op::kMutlsJoin);
  EXPECT_EQ(b.instrs[2].op, Op::kMutlsBarrier);
}

TEST(IrParser, GlobalInitializers) {
  Module m = parse_module("global @t : i32[4] = {1, 2, 3, 4}");
  ASSERT_EQ(m.globals.size(), 1u);
  EXPECT_EQ(m.globals[0].init.size(), 4u);
  EXPECT_EQ(m.globals[0].init[3], 4);
}

TEST(IrPrinter, RoundTripsThroughParser) {
  Module m1 = parse_module(kSumProgram);
  std::string text = print_module(m1);
  Module m2 = parse_module(text);
  EXPECT_EQ(print_module(m2), text) << "printer must be a fixed point";
}

TEST(IrVerifier, AcceptsWellFormed) {
  Module m = parse_module(kSumProgram);
  EXPECT_TRUE(verify_module(m).empty());
}

TEST(IrVerifier, RejectsMissingTerminator) {
  Module m = parse_module(kSumProgram);
  m.functions[0].blocks[0].instrs.pop_back();  // drop the br
  EXPECT_FALSE(verify_module(m).empty());
}

TEST(IrVerifier, RejectsTypeMismatch) {
  Module m = parse_module(R"(
func @f(%a: i64, %b: i32) : i64 {
entry:
  %x = add %a, %b
  ret %x
}
)");
  EXPECT_FALSE(verify_module(m).empty());
}

TEST(IrVerifier, RejectsUseNotDominatingDef) {
  Module m = parse_module(R"(
func @f(%c: i1) : i64 {
entry:
  condbr %c, a, b
a:
  %x = const i64 1
  br join
b:
  br join
join:
  ret %x
}
)");
  EXPECT_FALSE(verify_module(m).empty());
}

TEST(IrVerifier, AcceptsPhiMergedValues) {
  Module m = parse_module(R"(
func @f(%c: i1) : i64 {
entry:
  condbr %c, a, b
a:
  %x = const i64 1
  br join
b:
  %y = const i64 2
  br join
join:
  %m = phi i64 [%x, a], [%y, b]
  ret %m
}
)");
  EXPECT_TRUE(verify_module(m).empty()) << verify_module(m)[0];
}

TEST(IrVerifier, RejectsRetTypeMismatch) {
  Module m = parse_module(R"(
func @f() : i64 {
entry:
  %x = const i32 1
  ret %x
}
)");
  EXPECT_FALSE(verify_module(m).empty());
}

TEST(IrAnalysis, CfgEdges) {
  Module m = parse_module(kSumProgram);
  Cfg cfg = build_cfg(m.functions[0]);
  ASSERT_EQ(cfg.succ.size(), 3u);
  EXPECT_EQ(cfg.succ[0].size(), 1u);  // entry -> loop
  EXPECT_EQ(cfg.succ[1].size(), 2u);  // loop -> loop, done
  EXPECT_EQ(cfg.pred[1].size(), 2u);
  EXPECT_EQ(cfg.succ[2].size(), 0u);
}

TEST(IrAnalysis, Dominators) {
  Module m = parse_module(kSumProgram);
  const Function& f = m.functions[0];
  Cfg cfg = build_cfg(f);
  std::vector<uint32_t> idom = compute_idom(f, cfg);
  EXPECT_EQ(idom[0], 0u);
  EXPECT_EQ(idom[1], 0u);  // loop dominated by entry
  EXPECT_EQ(idom[2], 1u);  // done dominated by loop
}

TEST(IrAnalysis, LiveInAtLoop) {
  Module m = parse_module(kSumProgram);
  const Function& f = m.functions[0];
  auto live = compute_live_in(f);
  // %n (value 1) is live into the loop (used by the icmp).
  EXPECT_TRUE(live[1][1]);
  // %one and %zero flow into the loop via uses/phi edges.
  // The phi results are defined in the loop block, not live-in.
  for (const Block& b : f.blocks) {
    (void)b;
  }
  // done's live-in contains %s2.
  ValueId s2 = 0;
  for (ValueId v = 1; v < f.value_count; ++v) {
    if (f.value_names[v] == "s2") s2 = v;
  }
  ASSERT_NE(s2, kNoValue);
  EXPECT_TRUE(live[2][s2]);
}

TEST(IrParser, CommentsAreSkipped) {
  Module m = parse_module(R"(
; leading comment
func @f() : i64 {  // trailing comment
entry:
  %x = const i64 7  ; value
  ret %x
}
)");
  EXPECT_TRUE(verify_module(m).empty());
}

}  // namespace
}  // namespace mutls::ir
