#include "workloads/mandelbrot.h"

#include <vector>

namespace mutls::workloads {

namespace {

uint64_t checksum_image(const int* img, size_t n) {
  uint64_t h = hash_begin();
  for (size_t i = 0; i < n; ++i) {
    h = hash_mix(h, static_cast<uint64_t>(img[i]));
  }
  return h;
}

}  // namespace

SeqRun Mandelbrot::run_seq(const Params& p) {
  std::vector<int> img(static_cast<size_t>(p.width) * p.height);
  Stopwatch sw;
  for (int y = 0; y < p.height; ++y) {
    double ci = p.y0 + (p.y1 - p.y0) * y / p.height;
    for (int x = 0; x < p.width; ++x) {
      double cr = p.x0 + (p.x1 - p.x0) * x / p.width;
      img[static_cast<size_t>(y) * p.width + x] =
          escape_iters(cr, ci, p.max_iter);
    }
  }
  double secs = sw.elapsed_sec();
  return SeqRun{checksum_image(img.data(), img.size()), secs};
}

SpecRun Mandelbrot::run_spec(Runtime& rt, const Params& p, ForkModel model) {
  SharedArray<int> img(rt, static_cast<size_t>(p.width) * p.height, 0);
  Stopwatch sw;
  RunStats stats = rt.run([&](Ctx& ctx) {
    // Speculate over rows: each pixel is pure compute; the single shared
    // store per pixel writes a distinct image cell.
    par::for_each(
        rt, ctx, 0, p.height,
        par::LoopOpts{.chunks = p.chunks, .model = model,
                      .checkpoint_every = 1},
        [&](Ctx& c, int64_t y) {
          SharedSpan<int> out = img.span(c);
          double ci = p.y0 + (p.y1 - p.y0) * static_cast<double>(y) /
                                 p.height;
          // Compute the row into private scratch and publish it with one
          // bulk write: one buffer-map probe per word instead of one
          // routed store per pixel.
          std::vector<int> row(static_cast<size_t>(p.width));
          for (int x = 0; x < p.width; ++x) {
            double cr = p.x0 + (p.x1 - p.x0) * x / p.width;
            row[static_cast<size_t>(x)] = escape_iters(cr, ci, p.max_iter);
          }
          out.write(static_cast<size_t>(y) * p.width, row.data(),
                    row.size());
        });
  });
  double secs = sw.elapsed_sec();
  return SpecRun{checksum_image(img.data(), img.size()), secs, stats};
}

}  // namespace mutls::workloads
