// Zero-copy HTTP/1.1 request-head parser for the serving subsystem.
//
// parse_request() reads one request head (request line + header fields +
// the terminating empty line) out of a caller-owned buffer and fills a
// ParsedRequest whose every string_view points back INTO that buffer: the
// parse path performs no allocation and no copying. Header sets larger
// than the inline capacity spill into a caller-provided Arena (the
// virtual-CPU slot's arena on the speculative serve path, reclaimed at the
// epoch's rearm), so even pathological requests stay off the global heap.
//
// The grammar is the origin-form RFC 9112 request head, strict where
// laxness would hide bugs (CRLF line endings only, single spaces in the
// request line, no whitespace before the header colon) and bounded
// everywhere (line length, header count) so a hostile buffer cannot make
// the parser scan unbounded memory. The parser never reads past
// buf.size() — the serving_test property suite runs it against
// exactly-sized heap buffers under ASan to hold that line.
#pragma once

#include <cstdint>
#include <string_view>

#include "support/arena.h"

namespace mutls::serving {

enum class Method : uint8_t {
  kGet,
  kHead,
  kPut,
  kPost,
  kDelete,
  kOther,  // syntactically valid token that is none of the above
};

const char* method_name(Method m);

enum class ParseStatus : uint8_t {
  kOk,          // a complete, well-formed request head was consumed
  kIncomplete,  // the buffer ends before the head does (torn read)
  kMalformed,   // protocol violation; the buffer can only be rejected
};

struct HeaderField {
  std::string_view name;   // as written (header names are case-insensitive)
  std::string_view value;  // OWS-trimmed
};

// Hard parser bounds. A request line or header line longer than kMaxLine,
// or more than kMaxHeaders fields, is malformed — bounding what one
// request can make the parser (and any arena spill) do.
inline constexpr size_t kMaxLine = 8192;
inline constexpr size_t kMaxHeaders = 64;
// Header fields stored inline in the ParsedRequest itself; fields beyond
// this spill into the arena passed to parse_request.
inline constexpr size_t kInlineHeaders = 8;

struct ParsedRequest {
  ParseStatus status = ParseStatus::kIncomplete;
  Method method = Method::kOther;
  std::string_view method_text;  // the raw method token
  std::string_view target;       // full request target (path + query)
  std::string_view path;         // target up to '?'
  std::string_view query;        // after '?', empty when absent
  std::string_view version;      // "HTTP/1.0" or "HTTP/1.1"
  size_t header_count = 0;
  // Bytes of the buffer consumed by the head, including the terminating
  // CRLFCRLF; only meaningful when status == kOk (a body would start here).
  size_t consumed = 0;

  // Header field i of [0, header_count). Storage is the inline array until
  // it fills, then the arena spill block (valid for the arena's epoch).
  const HeaderField& header(size_t i) const {
    return (spill_ ? spill_ : inline_)[i];
  }

  // Case-insensitive lookup of the first field with this name; empty view
  // when absent. (An empty *value* is legal HTTP — use has_header to tell
  // the cases apart when it matters.)
  std::string_view header_value(std::string_view name) const;
  bool has_header(std::string_view name) const;

  // True when the header fields outgrew the inline array (testing seam).
  bool spilled() const { return spill_ != nullptr; }

 private:
  friend ParseStatus parse_request(std::string_view, ParsedRequest&, Arena*);
  HeaderField inline_[kInlineHeaders];
  HeaderField* spill_ = nullptr;
};

// Parses one request head from `buf`. Every view in `out` aliases `buf`;
// the caller owns both the buffer and (via `arena`) any spill storage.
// With a null arena, requests with more than kInlineHeaders fields are
// rejected as malformed (the 431-style bound) instead of spilling.
// Returns out.status for convenience.
ParseStatus parse_request(std::string_view buf, ParsedRequest& out,
                          Arena* arena = nullptr);

// Parses a non-negative decimal integer (e.g. a Content-Length value).
// Returns false on empty input, non-digits or overflow.
bool parse_decimal(std::string_view s, uint64_t* out);

}  // namespace mutls::serving
