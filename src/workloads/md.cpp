#include "workloads/md.h"

#include <cmath>
#include <vector>

#include "support/prng.h"

namespace mutls::workloads {

namespace {

void init_particles(const MolecularDynamics::Params& p, std::vector<double>& pos,
                    std::vector<double>& vel) {
  Xorshift64 rng(p.seed);
  pos.resize(static_cast<size_t>(p.n) * 3);
  vel.resize(static_cast<size_t>(p.n) * 3);
  for (size_t i = 0; i < pos.size(); ++i) {
    pos[i] = rng.next_double() * 10.0 - 5.0;
    vel[i] = rng.next_double() * 0.2 - 0.1;
  }
}

// Force on particle i from all others; reads `pos` through the accessor so
// the same kernel serves the sequential and speculative versions.
template <typename LoadFn>
void force_on(int i, int n, const LoadFn& load_pos, double out[3]) {
  double xi = load_pos(3 * i), yi = load_pos(3 * i + 1),
         zi = load_pos(3 * i + 2);
  double fx = 0, fy = 0, fz = 0;
  for (int j = 0; j < n; ++j) {
    if (j == i) continue;
    double dx = load_pos(3 * j) - xi;
    double dy = load_pos(3 * j + 1) - yi;
    double dz = load_pos(3 * j + 2) - zi;
    double r2 = dx * dx + dy * dy + dz * dz + 1e-2;  // softened
    double inv = 1.0 / (r2 * std::sqrt(r2));
    fx += dx * inv;
    fy += dy * inv;
    fz += dz * inv;
  }
  out[0] = fx;
  out[1] = fy;
  out[2] = fz;
}

uint64_t checksum_state(const std::vector<double>& pos,
                        const std::vector<double>& vel) {
  uint64_t h = hash_begin();
  for (double d : pos) h = hash_double(h, d);
  for (double d : vel) h = hash_double(h, d);
  return h;
}

}  // namespace

SeqRun MolecularDynamics::run_seq(const Params& p) {
  std::vector<double> pos, vel, force(static_cast<size_t>(p.n) * 3);
  init_particles(p, pos, vel);
  Stopwatch sw;
  for (int s = 0; s < p.steps; ++s) {
    for (int i = 0; i < p.n; ++i) {
      double f[3];
      force_on(i, p.n, [&](int k) { return pos[static_cast<size_t>(k)]; }, f);
      for (int d = 0; d < 3; ++d) force[static_cast<size_t>(3 * i + d)] = f[d];
    }
    for (int i = 0; i < 3 * p.n; ++i) {
      size_t k = static_cast<size_t>(i);
      vel[k] += p.dt * force[k];
      pos[k] += p.dt * vel[k];
    }
  }
  return SeqRun{checksum_state(pos, vel), sw.elapsed_sec()};
}

SpecRun MolecularDynamics::run_spec(Runtime& rt, const Params& p,
                                    ForkModel model) {
  SharedArray<double> pos(rt, static_cast<size_t>(p.n) * 3);
  SharedArray<double> vel(rt, static_cast<size_t>(p.n) * 3);
  SharedArray<double> force(rt, static_cast<size_t>(p.n) * 3, 0.0);
  {
    std::vector<double> p0, v0;
    init_particles(p, p0, v0);
    for (size_t i = 0; i < p0.size(); ++i) {
      pos[i] = p0[i];
      vel[i] = v0[i];
    }
  }
  Stopwatch sw;
  RunStats stats = rt.run([&](Ctx& ctx) {
    for (int s = 0; s < p.steps; ++s) {
      // Parallel force phase: every speculative chunk reads all positions
      // but writes only its own force rows -> no conflicts, as the paper's
      // md exhibits.
      par::for_each(
          rt, ctx, 0, p.n,
          par::LoopOpts{.chunks = p.chunks, .model = model,
                        .checkpoint_every = 1},
          [&](Ctx& c, int64_t i) {
            SharedSpan<double> ps = pos.span(c);
            SharedSpan<double> fs = force.span(c);
            double f[3];
            force_on(static_cast<int>(i), p.n,
                     [&](int k) -> double {
                       return ps[static_cast<size_t>(k)];
                     },
                     f);
            for (int d = 0; d < 3; ++d) {
              fs[static_cast<size_t>(3 * i + d)] = f[d];
            }
          });
      // Sequential integration on the critical path.
      SharedSpan<double> ps = pos.span(ctx);
      SharedSpan<double> vs = vel.span(ctx);
      SharedSpan<double> fs = force.span(ctx);
      for (int i = 0; i < 3 * p.n; ++i) {
        size_t k = static_cast<size_t>(i);
        double v = vs[k] + p.dt * fs[k];
        vs[k] = v;
        ps[k] += p.dt * v;
      }
    }
  });
  double secs = sw.elapsed_sec();
  std::vector<double> pf(pos.data(), pos.data() + pos.size());
  std::vector<double> vf(vel.data(), vel.data() + vel.size());
  return SpecRun{checksum_state(pf, vf), secs, stats};
}

}  // namespace mutls::workloads
