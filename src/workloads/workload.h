// Common infrastructure for the Table II benchmark suite.
//
// Every workload provides a sequential baseline and a speculative version
// built on the native embedding API. Checksums let the harness assert that
// speculation preserved sequential semantics bit-for-bit.
#pragma once

#include <cstdint>
#include <string>

#include "mutls/mutls.h"
#include "runtime/stats.h"
#include "support/timing.h"

namespace mutls::workloads {

struct SeqRun {
  uint64_t checksum = 0;
  double seconds = 0.0;
};

struct SpecRun {
  uint64_t checksum = 0;
  double seconds = 0.0;
  RunStats stats;
};

// FNV-1a accumulation used by all workload checksums.
inline uint64_t hash_mix(uint64_t h, uint64_t v) {
  h ^= v;
  h *= 0x100000001b3ull;
  return h;
}

inline uint64_t hash_begin() { return 0xcbf29ce484222325ull; }

inline uint64_t hash_double(uint64_t h, double d) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  __builtin_memcpy(&bits, &d, sizeof(bits));
  return hash_mix(h, bits);
}

// Identification used by Table II and the harness.
enum class Pattern { kLoop, kDivideAndConquer, kDepthFirstSearch };

inline const char* pattern_name(Pattern p) {
  switch (p) {
    case Pattern::kLoop: return "loop";
    case Pattern::kDivideAndConquer: return "divide and conquer";
    case Pattern::kDepthFirstSearch: return "depth-first search";
  }
  return "?";
}

}  // namespace mutls::workloads
