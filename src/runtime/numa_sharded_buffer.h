// NUMA-sharded speculative buffering backend, the kNumaSharded backend of
// the SpecBuffer API ("runtime/spec_buffer.h").
//
// Splits each read/write set by *address range* into per-node sub-stores:
// shard = bits [region_log2, region_log2 + log2(shards)) of the word
// address, so a contiguous footprint (the common shape of block-distributed
// loops) lands almost entirely in one shard instead of interleaving across
// all of them. Validation, commit and merge then walk one dense shard at a
// time — on a NUMA box whose shard arrays were touched (and thus
// first-touch-placed) node-locally, the large-footprint join paths stream
// from local memory instead of hopping a single interleaved table.
//
// Each shard is a pair of GrowableSets (the growable-log building block of
// "runtime/growable_log_buffer.h"), so capacity pressure resizes per shard
// rather than dooming, and all the arena pooling, Fibonacci-hashed probing
// and resize-stable log positions are inherited rather than rewritten.
//
// Like every backend this class is just a slot store: it exposes only the
// word-granular WordRef primitives and the set walks; the MRU cache, view
// composition, validation, commit and the tree-form merge policy live once
// in SpecBuffer. Handles pack (shard, per-shard log position): positions
// are resize-stable within their shard and a word's shard never changes,
// so the handles survive rehashes exactly like the growable log's.
//
// Two counters are this backend's own (SpecBufferStats):
//   shard_probe_steps  — address-range routing decisions taken (one per
//                        find/insert reaching the sharded store)
//   local_commit_words — write-set words resident in the slot's *home*
//                        shard at commit time (accounted by SpecBuffer),
//                        i.e. the fraction of the commit that streams from
//                        node-local memory
#pragma once

#include <cstdint>

#include "runtime/buffer_stats.h"
#include "runtime/growable_log_buffer.h"
#include "runtime/memory.h"
#include "support/arena.h"
#include "support/check.h"

namespace mutls {

// The kNumaSharded routing policy (ignored by the other backends). The
// knobs surface as ManagerConfig::numa_* and ride the usual Options
// plumbing; ThreadManager derives `shards` from the probed (or faked)
// topology and `home_shard` from the owning slot's node.
struct SpecNumaPolicy {
  // Number of address-range shards; rounded up to a power of two and
  // clamped to [1, kMaxShards]. One per NUMA node is the intended shape.
  int shards = 2;
  // log2 of the contiguous byte range mapped to one shard before the
  // mapping advances to the next (4 KiB pages by default): large enough
  // that a blocked loop's footprint stays in one shard, small enough that
  // an arbitrary heap spreads across all of them.
  int region_log2 = 12;
  // The shard co-located with the owning virtual CPU's node; words
  // committed from it count as local_commit_words.
  int home_shard = 0;
};

class NumaShardedBuffer {
 public:
  static constexpr int kMaxShards = 16;
  // Handle layout: low kPosBits carry the per-shard log position (+1,
  // nonzero), high bits the shard index. Caps the per-shard index at
  // 2^(kPosBits - 1) entries so a position can never spill into the shard
  // bits; the whole store still spans shards * 2^26 = 2^30 words.
  static constexpr int kPosBits = 27;
  static constexpr uint32_t kPosMask = (uint32_t{1} << kPosBits) - 1;
  static constexpr int kShardMaxLog2 = kPosBits - 1;

  NumaShardedBuffer() = default;
  // After init the sets hold a pointer to the owning SpecBuffer's stats,
  // so a copied/moved buffer would count into the original. Never needed.
  NumaShardedBuffer(const NumaShardedBuffer&) = delete;
  NumaShardedBuffer& operator=(const NumaShardedBuffer&) = delete;

  // Matches the other backends' init signature; `overflow_cap` has no
  // meaning here (shards resize like the growable log). `log2_entries`
  // sizes the whole store — each shard starts at its proportional share.
  // `max_log2` bounds each shard's index (clamped to kShardMaxLog2 so
  // handles stay packable); `arena` backs every shard's arrays.
  void init(int log2_entries, size_t overflow_cap, SpecBufferStats* stats,
            int max_log2 = GrowableSet::kMaxLog2, Arena* arena = nullptr,
            SpecNumaPolicy policy = {});

  // --- word-granular slot primitives (driven by SpecBuffer) ---

  WordRef find_read(uintptr_t word_addr);
  WordRef find_write(uintptr_t word_addr);
  WordRef insert_read(uintptr_t word_addr, bool& inserted, bool merging);
  WordRef insert_write(uintptr_t word_addr, bool merging);

  // Handle-indexed access for MRU-cached slots (handle = shard/position
  // pack, as handed out in WordRef::handle; stable across resizes).
  uint64_t read_data(uint32_t handle) {
    return shard_at(handle).read.at_position(handle & kPosMask).data;
  }
  uint64_t& write_data(uint32_t handle) {
    return shard_at(handle).write.at_position(handle & kPosMask).data;
  }
  uint64_t& write_mark(uint32_t handle) {
    return shard_at(handle).write.at_position(handle & kPosMask).mark;
  }

  // Visits every read-set entry as fn(word_addr, data) — one dense shard
  // at a time (the locality the backend exists for).
  template <typename Fn>
  void for_each_read(Fn&& fn) {
    for (int s = 0; s < shards_; ++s) {
      shard_[s].read.for_each(
          [&](GrowableSet::Entry& e) { fn(e.word_addr, e.data); });
    }
  }

  // Visits every write-set entry as fn(word_addr, data, mark).
  template <typename Fn>
  void for_each_write(Fn&& fn) {
    for (int s = 0; s < shards_; ++s) {
      shard_[s].write.for_each(
          [&](GrowableSet::Entry& e) { fn(e.word_addr, e.data, e.mark); });
    }
  }

  // Discards all buffered state; clears doom. Grown shard capacity kept.
  void reset();

  bool doomed() const { return doomed_; }
  const char* doom_reason() const { return doom_reason_; }
  void doom(const char* reason) {
    doomed_ = true;
    doom_reason_ = reason;
  }

  // Capacity pressure: some shard resized under the current speculation.
  bool pressure() const;

  size_t read_entries() const;
  size_t write_entries() const;

  // Write-set words resident in the home shard — the node-local fraction
  // of an imminent commit. SpecBuffer folds this into
  // stats().local_commit_words at commit time.
  size_t local_write_words() const {
    return shard_[home_shard_].write.entry_count();
  }

  int shard_count() const { return shards_; }
  int home_shard() const { return home_shard_; }

 private:
  struct Shard {
    GrowableSet read;
    GrowableSet write;
  };

  int shard_of(uintptr_t word_addr) const {
    return static_cast<int>((word_addr >> region_log2_) & shard_mask_);
  }
  Shard& shard_at(uint32_t handle) { return shard_[handle >> kPosBits]; }
  static uint32_t pack(int shard, uint32_t pos) {
    return static_cast<uint32_t>(shard) << kPosBits | pos;
  }

  Shard shard_[kMaxShards];
  int shards_ = 1;
  uintptr_t shard_mask_ = 0;
  int region_log2_ = 12;
  int home_shard_ = 0;
  bool doomed_ = false;
  const char* doom_reason_ = "";
  SpecBufferStats* stats_ = nullptr;
};

}  // namespace mutls
