// Recursive-descent parser for the textual IR (grammar in ir.h).
#include <cctype>
#include <cstdlib>
#include <sstream>

#include "ir/ir.h"

namespace mutls::ir {

namespace {

struct Lexer {
  const std::string& text;
  size_t pos = 0;
  int line = 1;

  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError{msg, line};
  }

  void skip_ws() {
    while (pos < text.size()) {
      char c = text[pos];
      if (c == '\n') {
        ++line;
        ++pos;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos;
      } else if (c == ';' || (c == '/' && pos + 1 < text.size() &&
                              text[pos + 1] == '/')) {
        while (pos < text.size() && text[pos] != '\n') ++pos;
      } else {
        break;
      }
    }
  }

  bool eof() {
    skip_ws();
    return pos >= text.size();
  }

  char peek() {
    skip_ws();
    return pos < text.size() ? text[pos] : '\0';
  }

  bool try_consume(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!try_consume(c)) {
      fail(std::string("expected '") + c + "'");
    }
  }

  static bool ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.';
  }

  std::string ident() {
    skip_ws();
    size_t start = pos;
    while (pos < text.size() && ident_char(text[pos])) ++pos;
    if (pos == start) fail("expected identifier");
    return text.substr(start, pos - start);
  }

  bool try_keyword(const std::string& kw) {
    skip_ws();
    size_t end = pos + kw.size();
    if (end <= text.size() && text.compare(pos, kw.size(), kw) == 0 &&
        (end == text.size() || !ident_char(text[end]))) {
      pos = end;
      return true;
    }
    return false;
  }

  int64_t integer() {
    skip_ws();
    size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    while (pos < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
    if (pos == start) fail("expected integer");
    return std::strtoll(text.substr(start, pos - start).c_str(), nullptr, 10);
  }

  double floating() {
    skip_ws();
    size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            ((text[pos] == '-' || text[pos] == '+') &&
             (text[pos - 1] == 'e' || text[pos - 1] == 'E')))) {
      ++pos;
    }
    if (pos == start) fail("expected number");
    return std::strtod(text.substr(start, pos - start).c_str(), nullptr);
  }
};

struct FnParser {
  Lexer& lex;
  Function& fn;
  std::unordered_map<std::string, ValueId> values;
  // Phi operands may reference values defined later; resolve lazily.
  struct PendingRef {
    uint32_t block;
    size_t instr;
    size_t arg;
    std::string name;
    int line;
  };
  std::vector<PendingRef> pending;
  std::unordered_map<std::string, uint32_t> labels;
  struct PendingLabel {
    uint32_t block;
    size_t instr;
    size_t slot;
    std::string label;
    int line;
  };
  std::vector<PendingLabel> pending_labels;

  Type parse_type() {
    std::string t = lex.ident();
    if (t == "i1") return Type::kI1;
    if (t == "i8") return Type::kI8;
    if (t == "i16") return Type::kI16;
    if (t == "i32") return Type::kI32;
    if (t == "i64") return Type::kI64;
    if (t == "f32") return Type::kF32;
    if (t == "f64") return Type::kF64;
    if (t == "ptr") return Type::kPtr;
    if (t == "void") return Type::kVoid;
    lex.fail("unknown type '" + t + "'");
  }

  ValueId use(const std::string& name, uint32_t blk, size_t ins, size_t arg) {
    auto it = values.find(name);
    if (it != values.end()) return it->second;
    pending.push_back(PendingRef{blk, ins, arg, name, lex.line});
    return kNoValue;
  }

  std::string value_name() {
    lex.expect('%');
    return lex.ident();
  }

  void parse_body();
  Instr parse_instr(uint32_t blk);
};

Pred parse_pred_name(Lexer& lex) {
  std::string p = lex.ident();
  if (p == "eq") return Pred::kEq;
  if (p == "ne") return Pred::kNe;
  if (p == "slt") return Pred::kSlt;
  if (p == "sle") return Pred::kSle;
  if (p == "sgt") return Pred::kSgt;
  if (p == "sge") return Pred::kSge;
  if (p == "olt") return Pred::kOlt;
  if (p == "ole") return Pred::kOle;
  if (p == "ogt") return Pred::kOgt;
  if (p == "oge") return Pred::kOge;
  if (p == "oeq") return Pred::kOeq;
  if (p == "one") return Pred::kOne;
  lex.fail("unknown predicate '" + p + "'");
}

Instr FnParser::parse_instr(uint32_t blk) {
  Instr in;
  size_t ins_index = fn.blocks[blk].instrs.size();
  std::string result_name;
  bool has_result = false;

  if (lex.peek() == '%') {
    has_result = true;
    result_name = value_name();
    lex.expect('=');
  }

  std::string op = lex.ident();
  auto rator = [&](Op o) { in.op = o; };
  auto operand = [&](size_t slot) {
    std::string n = value_name();
    in.args.resize(std::max(in.args.size(), slot + 1), kNoValue);
    in.args[slot] = use(n, blk, ins_index, slot);
    if (in.args[slot] == kNoValue) {
      pending.back().instr = ins_index;
    }
  };
  auto block_ref = [&](size_t slot) {
    std::string l = lex.ident();
    in.blocks.resize(std::max(in.blocks.size(), slot + 1), 0);
    auto it = labels.find(l);
    if (it != labels.end()) {
      in.blocks[slot] = it->second;
    } else {
      pending_labels.push_back(PendingLabel{blk, ins_index, slot, l, lex.line});
    }
  };

  if (op == "const") {
    rator(Op::kConst);
    in.type = parse_type();
    if (is_float(in.type)) {
      in.fimm = lex.floating();
    } else {
      in.imm = lex.integer();
    }
  } else if (op == "add" || op == "sub" || op == "mul" || op == "sdiv" ||
             op == "srem" || op == "and" || op == "or" || op == "xor" ||
             op == "shl" || op == "lshr" || op == "ashr" || op == "fadd" ||
             op == "fsub" || op == "fmul" || op == "fdiv") {
    static const std::unordered_map<std::string, Op> kBin = {
        {"add", Op::kAdd},   {"sub", Op::kSub},   {"mul", Op::kMul},
        {"sdiv", Op::kSDiv}, {"srem", Op::kSRem}, {"and", Op::kAnd},
        {"or", Op::kOr},     {"xor", Op::kXor},   {"shl", Op::kShl},
        {"lshr", Op::kLShr}, {"ashr", Op::kAShr}, {"fadd", Op::kFAdd},
        {"fsub", Op::kFSub}, {"fmul", Op::kFMul}, {"fdiv", Op::kFDiv}};
    rator(kBin.at(op));
    operand(0);
    lex.expect(',');
    operand(1);
  } else if (op == "icmp" || op == "fcmp") {
    rator(op == "icmp" ? Op::kICmp : Op::kFCmp);
    in.pred = parse_pred_name(lex);
    operand(0);
    lex.expect(',');
    operand(1);
    in.type = Type::kI1;
  } else if (op == "select") {
    rator(Op::kSelect);
    operand(0);
    lex.expect(',');
    operand(1);
    lex.expect(',');
    operand(2);
  } else if (op == "trunc" || op == "zext" || op == "sext" ||
             op == "sitofp" || op == "fptosi" || op == "ptrtoint" ||
             op == "inttoptr" || op == "bitcast") {
    static const std::unordered_map<std::string, Op> kCast = {
        {"trunc", Op::kTrunc},       {"zext", Op::kZExt},
        {"sext", Op::kSExt},         {"sitofp", Op::kSIToFP},
        {"fptosi", Op::kFPToSI},     {"ptrtoint", Op::kPtrToInt},
        {"inttoptr", Op::kIntToPtr}, {"bitcast", Op::kBitcast}};
    rator(kCast.at(op));
    operand(0);
    lex.ident();  // "to"
    in.type = parse_type();
  } else if (op == "alloca") {
    rator(Op::kAlloca);
    in.imm = lex.integer();
    in.type = Type::kPtr;
  } else if (op == "load") {
    rator(Op::kLoad);
    in.type = parse_type();
    lex.expect(',');
    operand(0);
  } else if (op == "store") {
    rator(Op::kStore);
    operand(0);
    lex.expect(',');
    operand(1);
  } else if (op == "gep") {
    rator(Op::kGep);
    operand(0);
    lex.expect(',');
    operand(1);
    lex.expect(',');
    in.imm = lex.integer();
    in.type = Type::kPtr;
  } else if (op == "globaladdr") {
    rator(Op::kGlobal);
    lex.expect('@');
    in.sym = lex.ident();
    in.type = Type::kPtr;
  } else if (op == "call") {
    rator(Op::kCall);
    if (lex.peek() != '@') {
      in.type = parse_type();
    }
    lex.expect('@');
    in.sym = lex.ident();
    lex.expect('(');
    size_t slot = 0;
    if (!lex.try_consume(')')) {
      do {
        operand(slot++);
      } while (lex.try_consume(','));
      lex.expect(')');
    }
  } else if (op == "br") {
    rator(Op::kBr);
    block_ref(0);
  } else if (op == "condbr") {
    rator(Op::kCondBr);
    operand(0);
    lex.expect(',');
    block_ref(0);
    lex.expect(',');
    block_ref(1);
  } else if (op == "ret") {
    rator(Op::kRet);
    if (lex.peek() == '%') operand(0);
  } else if (op == "phi") {
    rator(Op::kPhi);
    in.type = parse_type();
    size_t slot = 0;
    do {
      lex.expect('[');
      operand(slot);
      lex.expect(',');
      block_ref(slot);
      lex.expect(']');
      ++slot;
    } while (lex.try_consume(','));
  } else if (op == "mutls.fork") {
    rator(Op::kMutlsFork);
    in.imm = lex.integer();
    lex.expect(',');
    std::string model = lex.ident();
    if (model == "inorder") {
      in.pred = static_cast<Pred>(0);
    } else if (model == "outoforder") {
      in.pred = static_cast<Pred>(1);
    } else if (model == "mixed") {
      in.pred = static_cast<Pred>(2);
    } else {
      lex.fail("unknown fork model '" + model + "'");
    }
  } else if (op == "mutls.join") {
    rator(Op::kMutlsJoin);
    in.imm = lex.integer();
  } else if (op == "mutls.barrier") {
    rator(Op::kMutlsBarrier);
    in.imm = lex.integer();
  } else {
    lex.fail("unknown instruction '" + op + "'");
  }

  // Result binding. Cast/select/binary results inherit operand types at
  // verification time; record declared/defaulted type now.
  if (has_result) {
    if (in.type == Type::kVoid) {
      // Binary/select result type is resolved by the verifier from
      // operands; store a provisional i64 replaced in finalize.
      in.type = Type::kI64;
    }
    in.result = fn.new_value(in.type, result_name);
    values[result_name] = in.result;
  }
  return in;
}

void FnParser::parse_body() {
  lex.expect('{');
  while (!lex.try_consume('}')) {
    // label:
    std::string label = lex.ident();
    lex.expect(':');
    labels[label] = static_cast<uint32_t>(fn.blocks.size());
    fn.blocks.push_back(Block{label, {}});
    uint32_t blk = static_cast<uint32_t>(fn.blocks.size() - 1);
    while (lex.peek() != '}' && true) {
      // Lookahead: a new label is ident ':'.
      size_t save = lex.pos;
      int save_line = lex.line;
      if (lex.peek() != '%') {
        std::string maybe = lex.ident();
        if (lex.try_consume(':')) {
          lex.pos = save;
          lex.line = save_line;
          break;
        }
        lex.pos = save;
        lex.line = save_line;
      }
      Instr in = parse_instr(blk);
      bool term = is_terminator(in.op);
      fn.blocks[blk].instrs.push_back(std::move(in));
      if (term) break;
    }
  }
  // Resolve pending value references (forward refs from phis).
  for (const PendingRef& p : pending) {
    auto it = values.find(p.name);
    if (it == values.end()) {
      throw ParseError{"undefined value %" + p.name, p.line};
    }
    fn.blocks[p.block].instrs[p.instr].args[p.arg] = it->second;
  }
  for (const PendingLabel& p : pending_labels) {
    auto it = labels.find(p.label);
    if (it == labels.end()) {
      throw ParseError{"undefined label " + p.label, p.line};
    }
    fn.blocks[p.block].instrs[p.instr].blocks[p.slot] = it->second;
  }
  // Finalize inferred result types: binary/select results take their
  // operand's type (the parser recorded a provisional i64).
  for (Block& b : fn.blocks) {
    for (Instr& in : b.instrs) {
      if (in.result == kNoValue) continue;
      switch (in.op) {
        case Op::kAdd: case Op::kSub: case Op::kMul: case Op::kSDiv:
        case Op::kSRem: case Op::kAnd: case Op::kOr: case Op::kXor:
        case Op::kShl: case Op::kLShr: case Op::kAShr:
        case Op::kFAdd: case Op::kFSub: case Op::kFMul: case Op::kFDiv:
          in.type = fn.value_types[in.args[0]];
          fn.value_types[in.result] = in.type;
          break;
        case Op::kSelect:
          in.type = fn.value_types[in.args[1]];
          fn.value_types[in.result] = in.type;
          break;
        default:
          break;
      }
    }
  }
}

}  // namespace

Module parse_module(const std::string& text) {
  Module m;
  Lexer lex{text};
  while (!lex.eof()) {
    if (lex.try_keyword("global")) {
      Global g;
      lex.expect('@');
      g.name = lex.ident();
      lex.expect(':');
      std::string t = lex.ident();
      Lexer tl{t};
      // Reuse type parsing through a throwaway FnParser.
      Function dummy;
      FnParser fp{tl, dummy, {}, {}, {}, {}};
      g.elem_type = fp.parse_type();
      if (lex.try_consume('[')) {
        g.count = static_cast<size_t>(lex.integer());
        lex.expect(']');
      }
      if (lex.try_consume('=')) {
        lex.expect('{');
        if (!lex.try_consume('}')) {
          do {
            g.init.push_back(lex.integer());
          } while (lex.try_consume(','));
          lex.expect('}');
        }
      }
      m.globals.push_back(std::move(g));
    } else if (lex.try_keyword("func")) {
      Function fn;
      lex.expect('@');
      fn.name = lex.ident();
      lex.expect('(');
      FnParser fp{lex, fn, {}, {}, {}, {}};
      if (!lex.try_consume(')')) {
        do {
          lex.expect('%');
          std::string pname = lex.ident();
          lex.expect(':');
          Type pt = fp.parse_type();
          fn.params.push_back(Param{pname, pt});
          ValueId id = fn.new_value(pt, pname);
          fp.values[pname] = id;
        } while (lex.try_consume(','));
        lex.expect(')');
      }
      if (lex.try_consume(':')) {
        fn.ret_type = fp.parse_type();
      }
      fp.parse_body();
      m.functions.push_back(std::move(fn));
    } else {
      lex.fail("expected 'func' or 'global'");
    }
  }
  return m;
}

}  // namespace mutls::ir
