#include "support/interval_set.h"

#include <algorithm>
#include <mutex>

#include "support/check.h"

namespace mutls {

size_t IntervalSet::lower_bound_locked(uintptr_t addr) const {
  auto it = std::upper_bound(
      spans_.begin(), spans_.end(), addr,
      [](uintptr_t a, const Span& s) { return a < s.hi; });
  return static_cast<size_t>(it - spans_.begin());
}

void IntervalSet::insert(uintptr_t start, size_t size) {
  if (size == 0) return;
  uintptr_t lo = start;
  uintptr_t hi = start + size;
  MUTLS_CHECK(hi > lo, "interval wraps the address space");

  std::unique_lock lock(mu_);
  // Find all spans touching or adjacent to [lo, hi) and coalesce them.
  size_t i = lower_bound_locked(lo == 0 ? 0 : lo - 1);
  size_t first = i;
  while (i < spans_.size() && spans_[i].lo <= hi) {
    lo = std::min(lo, spans_[i].lo);
    hi = std::max(hi, spans_[i].hi);
    ++i;
  }
  spans_.erase(spans_.begin() + static_cast<ptrdiff_t>(first),
               spans_.begin() + static_cast<ptrdiff_t>(i));
  spans_.insert(spans_.begin() + static_cast<ptrdiff_t>(first), Span{lo, hi});
}

void IntervalSet::erase(uintptr_t start, size_t size) {
  if (size == 0) return;
  uintptr_t lo = start;
  uintptr_t hi = start + size;

  std::unique_lock lock(mu_);
  std::vector<Span> out;
  out.reserve(spans_.size() + 1);
  for (const Span& s : spans_) {
    if (s.hi <= lo || s.lo >= hi) {
      out.push_back(s);
      continue;
    }
    if (s.lo < lo) out.push_back(Span{s.lo, lo});
    if (s.hi > hi) out.push_back(Span{hi, s.hi});
  }
  spans_ = std::move(out);
}

bool IntervalSet::contains(uintptr_t addr, size_t size) const {
  if (size == 0) return true;
  std::shared_lock lock(mu_);
  size_t i = lower_bound_locked(addr);
  if (i >= spans_.size()) return false;
  const Span& s = spans_[i];
  return s.lo <= addr && addr + size <= s.hi;
}

bool IntervalSet::lookup(uintptr_t addr, size_t size, uintptr_t* lo,
                         uintptr_t* hi) const {
  std::shared_lock lock(mu_);
  size_t i = lower_bound_locked(addr);
  if (i >= spans_.size()) return false;
  const Span& s = spans_[i];
  if (s.lo <= addr && addr + size <= s.hi) {
    *lo = s.lo;
    *hi = s.hi;
    return true;
  }
  return false;
}

size_t IntervalSet::span_count() const {
  std::shared_lock lock(mu_);
  return spans_.size();
}

uint64_t IntervalSet::total_bytes() const {
  std::shared_lock lock(mu_);
  uint64_t t = 0;
  for (const Span& s : spans_) t += s.hi - s.lo;
  return t;
}

void IntervalSet::clear() {
  std::unique_lock lock(mu_);
  spans_.clear();
}

}  // namespace mutls
