// The MUTLS speculator transformation pass (paper section IV-C).
//
// For every function annotated with fork/join points this pass performs
// the paper's four preparation steps:
//
//  (1) clone the function into "<name>.speculative" with two extra integer
//      parameters (counter, rank), replacing every load/store with a
//      MUTLS_load_* / MUTLS_store_* runtime call;
//  (2) generate "<name>.proxy" (stores the arguments into the child's
//      LocalBuffer via MUTLS_set_regvar_* and calls MUTLS_speculate) and
//      "<name>.stub" (fetches them via MUTLS_get_regvar_* and enters the
//      speculative clone);
//  (3) split and number the synchronization blocks: a speculation block at
//      each fork point, a join point block per join id, check point blocks
//      at loop back edges, terminate point blocks before unsafe external
//      calls, enter point blocks before internal calls and a return point
//      block before ret — and build the speculation table (clone entry
//      dispatch on `counter`) and the synchronization table (non-spec
//      dispatch after a successful MUTLS_synchronize);
//  (4) assign LocalBuffer offsets to the locals live at each
//      synchronization block and emit MUTLS_save_local_* /
//      MUTLS_restore_local_* calls plus the restore blocks and phis that
//      keep the result in SSA form.
//
// The output is a well-formed module (verify_module passes). Execution of
// speculative programs uses the interpreter's integrated implementation of
// the same semantics (src/interp/); the pass is the compile-time artifact,
// checked structurally by the test suite.
#pragma once

#include <string>
#include <vector>

#include "ir/ir.h"

namespace mutls::speculator {

struct PointBlockInfo {
  enum Kind { kSpeculation, kJoin, kCheck, kTerminate, kEnter, kReturn };
  Kind kind;
  int counter;        // synchronization counter (0 for speculation blocks)
  std::string block;  // label in the transformed function
};

struct FunctionReport {
  std::string original;
  std::string speculative;  // clone name (empty if not transformed)
  std::string proxy;
  std::string stub;
  std::vector<PointBlockInfo> points;
  int live_slots = 0;  // LocalBuffer offsets assigned
};

struct PassResult {
  ir::Module module;
  std::vector<FunctionReport> reports;
};

// Runs the speculator pass over `m` (functions containing mutls.fork).
PassResult run_speculator_pass(const ir::Module& m);

}  // namespace mutls::speculator
