#include "exec/profile.h"

#include <algorithm>
#include <atomic>

#include "exec/dispatch.h"

namespace mutls::exec {

std::vector<RegionHeat> snapshot_heat(const DecodedModule& dm) {
  std::vector<RegionHeat> out;
  dm.for_each_region([&](const DecodedFunction& df, const RegionInfo& r) {
    RegionHeat h;
    h.function = df.fn->name;
    h.header = r.label;
    h.header_block = r.header_block;
    h.count = r.heat.load(std::memory_order_relaxed);
    h.compiled = r.compiled.load(std::memory_order_relaxed) != nullptr;
    out.push_back(std::move(h));
  });
  std::sort(out.begin(), out.end(),
            [](const RegionHeat& a, const RegionHeat& b) {
              if (a.count != b.count) return a.count > b.count;
              if (a.function != b.function) return a.function < b.function;
              return a.header_block < b.header_block;
            });
  return out;
}

}  // namespace mutls::exec
