// Integration tests of the ThreadManager protocol: CPU pool, flag-based
// barrier, forking-model admission, tree-form synchronize with NOSYNC and
// child adoption (paper IV-D, IV-E, IV-F). Value-parameterized over the
// SpecBuffer backends: the synchronization protocol must be identical no
// matter how speculative memory is buffered.
#include "runtime/thread_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

#include "runtime/spec_abort.h"
#include "tests/backend_param.h"

namespace mutls {
namespace {

ManagerConfig small_config(BufferBackend backend, int cpus = 2) {
  ManagerConfig c;
  c.num_cpus = cpus;
  c.buffer_log2 = 8;
  c.overflow_cap = 64;
  c.buffer_backend = backend;
  return c;
}

class ThreadManagerTest : public ::testing::TestWithParam<BufferBackend> {
 protected:
  ManagerConfig config(int cpus = 2) { return small_config(GetParam(), cpus); }
};

TEST_P(ThreadManagerTest, SpeculateRunsTaskAndCommits) {
  ThreadManager mgr(config());
  alignas(8) static uint64_t x;
  x = 0;
  mgr.register_space(&x, sizeof(x));

  int rank = mgr.speculate(mgr.root(), ForkModel::kMixed, [](ThreadData& td) {
    uint64_t v = 5;
    td.sbuf.store_bytes(reinterpret_cast<uintptr_t>(&x), &v, 8);
  });
  ASSERT_GT(rank, 0);
  ChildRef ref = mgr.root().children.back();
  auto r = mgr.synchronize(mgr.root(), ref);
  EXPECT_EQ(r, ThreadManager::JoinResult::kCommit);
  EXPECT_EQ(x, 5u);
  EXPECT_EQ(mgr.live_threads(), 0);
}

TEST_P(ThreadManagerTest, ConflictCausesRollbackAndNoCommit) {
  ThreadManager mgr(config());
  alignas(8) static uint64_t shared_val, out;
  shared_val = 1;
  out = 0;

  std::atomic<bool> child_read{false};
  int rank = mgr.speculate(mgr.root(), ForkModel::kMixed,
                           [&child_read](ThreadData& td) {
    // Speculative read of shared_val, then dependent write to out.
    uint64_t v;
    td.sbuf.load_bytes(reinterpret_cast<uintptr_t>(&shared_val), &v, 8);
    child_read = true;
    uint64_t w = v * 10;
    td.sbuf.store_bytes(reinterpret_cast<uintptr_t>(&out), &w, 8);
  });
  ASSERT_GT(rank, 0);
  ChildRef ref = mgr.root().children.back();
  // Parent writes shared_val strictly after the speculative read: a
  // guaranteed read conflict.
  while (!child_read) std::this_thread::yield();
  shared_val = 2;
  auto r = mgr.synchronize(mgr.root(), ref);
  EXPECT_EQ(r, ThreadManager::JoinResult::kRollback);
  EXPECT_EQ(out, 0u) << "rolled-back writes must not reach memory";
}

TEST_P(ThreadManagerTest, NoIdleCpuDeniesSpeculation) {
  ThreadManager mgr(config(1));
  std::atomic<bool> release{false};
  int r1 = mgr.speculate(mgr.root(), ForkModel::kMixed, [&](ThreadData&) {
    while (!release.load()) std::this_thread::yield();
  });
  ASSERT_GT(r1, 0);
  int r2 = mgr.speculate(mgr.root(), ForkModel::kMixed, [](ThreadData&) {});
  EXPECT_EQ(r2, 0) << "no IDLE CPU left";
  EXPECT_EQ(mgr.root().stats.fork_denied, 1u);
  release = true;
  mgr.synchronize(mgr.root(), mgr.root().children.back());
}

TEST_P(ThreadManagerTest, CpuSlotIsReusedAfterJoin) {
  ThreadManager mgr(config(1));
  for (int i = 0; i < 5; ++i) {
    int r = mgr.speculate(mgr.root(), ForkModel::kMixed, [](ThreadData&) {});
    ASSERT_EQ(r, 1) << "single CPU must be reclaimed and reused";
    auto jr = mgr.synchronize(mgr.root(), mgr.root().children.back());
    EXPECT_EQ(jr, ThreadManager::JoinResult::kCommit);
  }
  RunStats rs = mgr.collect_stats();
  EXPECT_EQ(rs.speculative_threads, 5u);
}

TEST_P(ThreadManagerTest, SynchronizeStaleRefReturnsNotFound) {
  ThreadManager mgr(config());
  auto r = mgr.synchronize(mgr.root(), ChildRef{1, 123});
  EXPECT_EQ(r, ThreadManager::JoinResult::kNotFound);
}

TEST_P(ThreadManagerTest, ForceRollbackOverridesValidation) {
  // Failed live-in validation (paper IV-G4) forces rollback even though
  // the read-set is clean.
  ThreadManager mgr(config());
  alignas(8) static uint64_t y;
  y = 0;
  int rank = mgr.speculate(mgr.root(), ForkModel::kMixed, [](ThreadData& td) {
    uint64_t v = 9;
    td.sbuf.store_bytes(reinterpret_cast<uintptr_t>(&y), &v, 8);
  });
  ASSERT_GT(rank, 0);
  auto r = mgr.synchronize(mgr.root(), mgr.root().children.back(),
                           /*force_rollback=*/true);
  EXPECT_EQ(r, ThreadManager::JoinResult::kRollback);
  EXPECT_EQ(y, 0u);
}

TEST_P(ThreadManagerTest, DoomedTaskRollsBack) {
  ThreadManager mgr(config());
  int rank = mgr.speculate(mgr.root(), ForkModel::kMixed, [](ThreadData& td) {
    td.sbuf.doom("synthetic doom");
    throw SpecAbort{"synthetic doom"};
  });
  ASSERT_GT(rank, 0);
  auto r = mgr.synchronize(mgr.root(), mgr.root().children.back());
  EXPECT_EQ(r, ThreadManager::JoinResult::kRollback);
}

TEST_P(ThreadManagerTest, UserExceptionDoomsSpeculation) {
  ThreadManager mgr(config());
  int rank = mgr.speculate(mgr.root(), ForkModel::kMixed,
                           [](ThreadData&) { throw 42; });
  ASSERT_GT(rank, 0);
  auto r = mgr.synchronize(mgr.root(), mgr.root().children.back());
  EXPECT_EQ(r, ThreadManager::JoinResult::kRollback);
}

TEST_P(ThreadManagerTest, NonConformingJoinNosyncsMismatchedChildren) {
  // Fork A then B from the root; joining A first violates the mixed-model
  // assumption (later-speculated = logically earlier), so B is NOSYNCed
  // while the search continues to A (paper IV-F).
  ThreadManager mgr(config(2));
  alignas(8) static uint64_t a_out, b_out;
  a_out = b_out = 0;

  int ra = mgr.speculate(mgr.root(), ForkModel::kMixed, [](ThreadData& td) {
    uint64_t v = 1;
    td.sbuf.store_bytes(reinterpret_cast<uintptr_t>(&a_out), &v, 8);
  });
  ASSERT_GT(ra, 0);
  ChildRef ref_a = mgr.root().children.back();
  int rb = mgr.speculate(mgr.root(), ForkModel::kMixed, [](ThreadData& td) {
    uint64_t v = 1;
    td.sbuf.store_bytes(reinterpret_cast<uintptr_t>(&b_out), &v, 8);
  });
  ASSERT_GT(rb, 0);

  auto r = mgr.synchronize(mgr.root(), ref_a);
  EXPECT_EQ(r, ThreadManager::JoinResult::kCommit);
  EXPECT_EQ(a_out, 1u);
  EXPECT_EQ(mgr.root().children.size(), 0u);

  // B self-frees after NOSYNC; wait for the pool to drain.
  while (mgr.live_threads() != 0) std::this_thread::yield();
  EXPECT_EQ(b_out, 0u) << "NOSYNCed child must not commit";
  RunStats rs = mgr.collect_stats();
  EXPECT_EQ(rs.speculative.nosyncs, 1u);
}

TEST_P(ThreadManagerTest, JoinerAdoptsGrandchildren) {
  // A child forks a grandchild and finishes without joining it; the joiner
  // adopts the grandchild (paper IV-F: children are preserved).
  ThreadManager mgr(config(2));
  ThreadManager* m = &mgr;
  int rank = mgr.speculate(mgr.root(), ForkModel::kMixed, [m](ThreadData& td) {
    m->speculate(td, ForkModel::kMixed, [](ThreadData&) {});
  });
  ASSERT_GT(rank, 0);
  ChildRef child_ref = mgr.root().children.back();
  // Wait until the grandchild exists before joining.
  while (mgr.live_threads() != 2) std::this_thread::yield();
  auto r = mgr.synchronize(mgr.root(), child_ref);
  EXPECT_EQ(r, ThreadManager::JoinResult::kCommit);
  ASSERT_EQ(mgr.root().children.size(), 1u) << "grandchild adopted";
  auto r2 = mgr.synchronize(mgr.root(), mgr.root().children.back());
  EXPECT_EQ(r2, ThreadManager::JoinResult::kCommit);
}

TEST_P(ThreadManagerTest, NosyncChildrenAbortsSubtree) {
  ThreadManager mgr(config(2));
  std::atomic<bool> spinning{false};
  int rank = mgr.speculate(mgr.root(), ForkModel::kMixed, [&](ThreadData&) {
    spinning = true;
    // Task body: nothing. The thread parks at its barrier.
  });
  ASSERT_GT(rank, 0);
  while (!spinning) std::this_thread::yield();
  mgr.nosync_children(mgr.root());
  while (mgr.live_threads() != 0) std::this_thread::yield();
  EXPECT_TRUE(mgr.root().children.empty());
  RunStats rs = mgr.collect_stats();
  EXPECT_EQ(rs.speculative.nosyncs, 1u);
}

// --- forking-model admission (paper section II) ---

TEST_P(ThreadManagerTest, OutOfOrderDeniesSpeculativeForkers) {
  ThreadManager mgr(config(2));
  std::atomic<int> child_fork_rank{-1};
  ThreadManager* m = &mgr;
  int rank =
      mgr.speculate(mgr.root(), ForkModel::kOutOfOrder, [&](ThreadData& td) {
        child_fork_rank =
            m->speculate(td, ForkModel::kOutOfOrder, [](ThreadData&) {});
      });
  ASSERT_GT(rank, 0);
  mgr.synchronize(mgr.root(), mgr.root().children.back());
  EXPECT_EQ(child_fork_rank.load(), 0)
      << "out-of-order: speculative threads may not fork";
}

TEST_P(ThreadManagerTest, InOrderAllowsOnlyMostSpeculativeThread) {
  ThreadManager mgr(config(3));
  std::atomic<int> child_fork_rank{-1};
  std::atomic<bool> child_forked{false};
  ThreadManager* m = &mgr;
  int rank =
      mgr.speculate(mgr.root(), ForkModel::kInOrder, [&](ThreadData& td) {
        // This thread is the most speculative: it may extend the chain.
        child_fork_rank =
            m->speculate(td, ForkModel::kInOrder, [](ThreadData&) {});
        child_forked = true;
        if (child_fork_rank > 0) {
          m->synchronize(td, td.children.back());
        }
      });
  ASSERT_GT(rank, 0);
  while (!child_forked) std::this_thread::yield();
  // Root is no longer the most speculative thread: denied.
  EXPECT_EQ(mgr.speculate(mgr.root(), ForkModel::kInOrder, [](ThreadData&) {}),
            0);
  EXPECT_GT(child_fork_rank.load(), 0)
      << "in-order: the chain tail may fork";
  mgr.synchronize(mgr.root(), mgr.root().children.back());
}

TEST_P(ThreadManagerTest, InOrderRootMayForkWhenNoLiveThreads) {
  ThreadManager mgr(config(2));
  int r = mgr.speculate(mgr.root(), ForkModel::kInOrder, [](ThreadData&) {});
  EXPECT_GT(r, 0);
  mgr.synchronize(mgr.root(), mgr.root().children.back());
  // After the chain drains, the root may start a new chain.
  int r2 = mgr.speculate(mgr.root(), ForkModel::kInOrder, [](ThreadData&) {});
  EXPECT_GT(r2, 0);
  mgr.synchronize(mgr.root(), mgr.root().children.back());
}

TEST_P(ThreadManagerTest, ModelOverrideForcesPolicy) {
  ManagerConfig c = config(2);
  c.model_override = ForkModel::kOutOfOrder;
  ThreadManager mgr(c);
  std::atomic<int> child_fork_rank{-1};
  ThreadManager* m = &mgr;
  // Fork point says mixed, but the override downgrades to out-of-order.
  int rank = mgr.speculate(mgr.root(), ForkModel::kMixed, [&](ThreadData& td) {
    child_fork_rank = m->speculate(td, ForkModel::kMixed, [](ThreadData&) {});
  });
  ASSERT_GT(rank, 0);
  mgr.synchronize(mgr.root(), mgr.root().children.back());
  EXPECT_EQ(child_fork_rank.load(), 0);
}

TEST_P(ThreadManagerTest, AdmissionAllowsQueries) {
  ThreadManager mgr(config(2));
  EXPECT_TRUE(mgr.admission_allows(mgr.root(), ForkModel::kMixed));
  EXPECT_TRUE(mgr.admission_allows(mgr.root(), ForkModel::kInOrder));
  EXPECT_TRUE(mgr.admission_allows(mgr.root(), ForkModel::kOutOfOrder));
}

// --- rollback injection (paper Fig. 11) ---

TEST_P(ThreadManagerTest, RollbackInjectionProbabilityOne) {
  ManagerConfig c = config(2);
  c.rollback_probability = 1.0;
  ThreadManager mgr(c);
  alignas(8) static uint64_t z;
  z = 0;
  int rank = mgr.speculate(mgr.root(), ForkModel::kMixed, [](ThreadData& td) {
    uint64_t v = 1;
    td.sbuf.store_bytes(reinterpret_cast<uintptr_t>(&z), &v, 8);
  });
  ASSERT_GT(rank, 0);
  auto r = mgr.synchronize(mgr.root(), mgr.root().children.back());
  EXPECT_EQ(r, ThreadManager::JoinResult::kRollback);
  EXPECT_EQ(z, 0u);
}

TEST_P(ThreadManagerTest, RollbackInjectionIsDeterministicPerSeed) {
  auto run_once = [this](uint64_t seed) {
    ManagerConfig c = config(1);
    c.rollback_probability = 0.5;
    c.seed = seed;
    ThreadManager mgr(c);
    std::vector<bool> outcomes;
    for (int i = 0; i < 16; ++i) {
      int r = mgr.speculate(mgr.root(), ForkModel::kMixed, [](ThreadData&) {});
      EXPECT_GT(r, 0);
      outcomes.push_back(mgr.synchronize(mgr.root(),
                                         mgr.root().children.back()) ==
                         ThreadManager::JoinResult::kCommit);
    }
    return outcomes;
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), run_once(8));
}

// --- statistics plumbing ---

TEST_P(ThreadManagerTest, StatsAggregateAcrossThreads) {
  ThreadManager mgr(config(2));
  mgr.begin_run();
  alignas(8) static uint64_t w;
  w = 0;
  int rank = mgr.speculate(mgr.root(), ForkModel::kMixed, [](ThreadData& td) {
    uint64_t v;
    td.sbuf.load_bytes(reinterpret_cast<uintptr_t>(&w), &v, 8);
    ++td.stats.loads;
  });
  ASSERT_GT(rank, 0);
  mgr.synchronize(mgr.root(), mgr.root().children.back());
  mgr.end_run();
  RunStats rs = mgr.collect_stats();
  EXPECT_EQ(rs.speculative_threads, 1u);
  EXPECT_EQ(rs.speculative.commits, 1u);
  EXPECT_EQ(rs.speculative.loads, 1u);
  EXPECT_EQ(rs.critical.forks, 1u);
  EXPECT_GT(rs.critical.runtime_ns, 0u);
  EXPECT_GT(rs.speculative.runtime_ns, 0u);
  EXPECT_GE(rs.coverage(), 0.0);
  // The one buffered load was probed and its read-set word validated.
  EXPECT_GE(rs.speculative.buffer.probe_ops, 1u);
  EXPECT_EQ(rs.speculative.buffer.validated_words, 1u);
}

TEST_P(ThreadManagerTest, BufferCountersDoNotLeakAcrossSpeculations) {
  // A slot's next speculation must not re-report its predecessors' buffer
  // events (regression guarded for overflow_events since PR 1; now covers
  // the whole SpecBufferStats set).
  ManagerConfig c = config(1);
  c.buffer_log2 = 4;  // tiny: every speculation stresses capacity
  c.overflow_cap = 4;
  // Keep an adaptive slot on its starting static hash for all 3 rounds
  // (the flip behavior itself is pinned by the AdaptiveBackend suite).
  c.adaptive_overflow_threshold = 100;
  ThreadManager mgr(c);
  alignas(8) static uint64_t arena[128];
  mgr.begin_run();
  for (int round = 0; round < 3; ++round) {
    int r = mgr.speculate(mgr.root(), ForkModel::kMixed, [](ThreadData& td) {
      for (int i = 0; i < 64; ++i) {
        uint64_t v = 1;
        td.sbuf.store_bytes(reinterpret_cast<uintptr_t>(&arena[i]), &v, 8);
        if (td.sbuf.doomed()) return;  // static-hash dooms, by design
      }
    });
    ASSERT_GT(r, 0);
    mgr.synchronize(mgr.root(), mgr.root().children.back());
  }
  mgr.end_run();
  RunStats rs = mgr.collect_stats();
  if (GetParam() == BufferBackend::kStaticHash ||
      GetParam() == BufferBackend::kAdaptive) {
    // Static hash — and an unflipped adaptive slot, which must behave
    // identically: exactly one exhaustion doom per round, not a growing
    // resurvey.
    EXPECT_EQ(rs.speculative.buffer.overflow_events, 3u);
    EXPECT_EQ(rs.speculative.buffer.resize_events, 0u);
    EXPECT_EQ(rs.speculative.rollbacks, 3u);
  } else {
    // The growable log — and the sharded store built from per-node
    // growable sets — absorbs the same pattern with resizes and commits.
    EXPECT_EQ(rs.speculative.buffer.overflow_events, 0u);
    EXPECT_GT(rs.speculative.buffer.resize_events, 0u);
    EXPECT_EQ(rs.speculative.commits, 3u);
  }
}

TEST_P(ThreadManagerTest, IdleFreelistSurvivesForkJoinChurn) {
  // Hammers the lock-free idle-rank freelist and the spin-then-park
  // handoff: speculative tasks fork grandchildren concurrently with the
  // root forking new children, so claims and releases interleave from
  // several threads. Every claim must yield a distinct rank, the pool must
  // deny exactly when empty, and every rank must return to the freelist
  // (under TSan this is the data-race probe for pop_idle/push_idle).
  ThreadManager mgr(config(3));
  alignas(8) static std::atomic<uint64_t> touched;
  touched = 0;
  for (int round = 0; round < 200; ++round) {
    int r1 = mgr.speculate(mgr.root(), ForkModel::kMixed, [&](ThreadData& td) {
      // Child claims (and possibly exhausts) another slot concurrently.
      int g = mgr.speculate(td, ForkModel::kMixed,
                            [&](ThreadData&) { touched.fetch_add(1); });
      if (g != 0) {
        mgr.synchronize(td, td.children.back());
      }
      touched.fetch_add(1);
    });
    ASSERT_GT(r1, 0) << "round " << round << ": pool lost a rank";
    int r2 = mgr.speculate(mgr.root(), ForkModel::kMixed,
                           [&](ThreadData&) { touched.fetch_add(1); });
    if (r2 != 0) {
      EXPECT_NE(r1, r2) << "freelist handed out the same rank twice";
      // Join in LIFO order (mixed-model children stack).
      EXPECT_NE(mgr.synchronize(mgr.root(), mgr.root().children.back()),
                ThreadManager::JoinResult::kNotFound);
    }
    EXPECT_NE(mgr.synchronize(mgr.root(), mgr.root().children.back()),
              ThreadManager::JoinResult::kNotFound);
    ASSERT_EQ(mgr.live_threads(), 0) << "round " << round;
  }
  EXPECT_GT(touched.load(), 200u);
}

TEST_P(ThreadManagerTest, ForkLatencyLedgerSplitsArmAndHandoff) {
  ThreadManager mgr(config(1));
  int r = mgr.speculate(mgr.root(), ForkModel::kMixed, [](ThreadData&) {});
  ASSERT_GT(r, 0);
  mgr.synchronize(mgr.root(), mgr.root().children.back());
  const TimeLedger& l = mgr.root().stats.ledger;
  // Arming always takes measurable time; the handoff category must be
  // populated (possibly 0ns on a coarse clock, but accounted — the sum of
  // categories is what fig8 folds into its fork column).
  EXPECT_GT(l.get(TimeCat::kFork) + l.get(TimeCat::kForkHandoff) +
                l.get(TimeCat::kFindCpu),
            0u);
}

TEST_P(ThreadManagerTest, ResetStatsClears) {
  ThreadManager mgr(config(1));
  int r = mgr.speculate(mgr.root(), ForkModel::kMixed, [](ThreadData&) {});
  ASSERT_GT(r, 0);
  mgr.synchronize(mgr.root(), mgr.root().children.back());
  mgr.reset_stats();
  RunStats rs = mgr.collect_stats();
  EXPECT_EQ(rs.speculative_threads, 0u);
  EXPECT_EQ(rs.critical.forks, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, ThreadManagerTest,
    ::testing::Values(BufferBackend::kStaticHash, BufferBackend::kGrowableLog,
                      BufferBackend::kAdaptive, BufferBackend::kNumaSharded),
    [](const ::testing::TestParamInfo<BufferBackend>& info) {
      return backend_camel_name(info.param);
    });

// --- adaptive per-slot backend selection (kAdaptive) ---
//
// The flip machinery lives in SpecBuffer::rearm(), but its contract is a
// ThreadManager-level one: slots flip exactly at the configured threshold
// of accumulated capacity dooms, hysteresis keeps a calm slot from
// flapping between backends, the flipped state survives slot reuse across
// speculations, and a tree with mixed-backend parent/child slots still
// merges exactly. (This suite rides the runtime_ TSan/ASan CI regexes.)

class AdaptiveBackendTest : public ::testing::Test {
 protected:
  // Tiny static table (16 slots, 2 overflow) so a 64-word footprint
  // reliably overflow-dooms the static hash and the growable log absorbs
  // it with resizes.
  ManagerConfig adaptive_config(uint64_t threshold, uint64_t hysteresis,
                                int cpus = 1) {
    ManagerConfig c;
    c.num_cpus = cpus;
    c.buffer_log2 = 4;
    c.overflow_cap = 2;
    c.buffer_backend = BufferBackend::kAdaptive;
    c.adaptive_overflow_threshold = threshold;
    c.adaptive_calm_hysteresis = hysteresis;
    return c;
  }

  // One speculation; returns true when it committed. `words` sizes the
  // speculative footprint: 64 overwhelms the tiny static table, 1 is calm.
  bool run_round(ThreadManager& mgr, size_t words,
                 BufferBackend* active_seen = nullptr) {
    int r = mgr.speculate(mgr.root(), ForkModel::kMixed, [=](ThreadData& td) {
      if (active_seen) *active_seen = td.sbuf.active_backend();
      for (size_t i = 0; i < words; ++i) {
        uint64_t v = i + 1;
        td.sbuf.store_bytes(reinterpret_cast<uintptr_t>(&arena_[i]), &v, 8);
        if (td.sbuf.doomed()) return;  // stop at the "check point"
      }
    });
    EXPECT_GT(r, 0);
    return mgr.synchronize(mgr.root(), mgr.root().children.back()) ==
           ThreadManager::JoinResult::kCommit;
  }

  alignas(8) static uint64_t arena_[128];
};

uint64_t AdaptiveBackendTest::arena_[128];

TEST_F(AdaptiveBackendTest, SlotFlipsExactlyAtOverflowThreshold) {
  ThreadManager mgr(adaptive_config(/*threshold=*/2, /*hysteresis=*/16));
  mgr.begin_run();
  // Rounds 1 and 2: still static (one capacity doom each), rolled back —
  // the flip must not fire below the threshold.
  EXPECT_FALSE(run_round(mgr, 64));
  EXPECT_FALSE(run_round(mgr, 64));
  // Round 3: the slot re-arms with two accumulated overflow events, flips
  // to the growable log, and the very same footprint commits.
  BufferBackend active = BufferBackend::kStaticHash;
  EXPECT_TRUE(run_round(mgr, 64, &active));
  EXPECT_EQ(active, BufferBackend::kGrowableLog);
  mgr.end_run();
  RunStats rs = mgr.collect_stats();
  EXPECT_EQ(rs.speculative.rollbacks, 2u);
  EXPECT_EQ(rs.speculative.commits, 1u);
  EXPECT_EQ(rs.speculative.buffer.overflow_events, 2u);
  EXPECT_EQ(rs.speculative.buffer.backend_flips, 1u)
      << "exactly one flip, visible in the aggregated ThreadStats";
  for (size_t i = 0; i < 64; ++i) {
    ASSERT_EQ(arena_[i], i + 1) << "the flipped round must have committed";
  }
}

TEST_F(AdaptiveBackendTest, HysteresisRevertsCalmSlotWithoutFlapping) {
  ThreadManager mgr(adaptive_config(/*threshold=*/1, /*hysteresis=*/3));
  mgr.begin_run();
  EXPECT_FALSE(run_round(mgr, 64));  // R1: static dooms -> flip at rearm
  EXPECT_TRUE(run_round(mgr, 64));   // R2: growable absorbs (resizes)
  // R3..R5: calm rounds. R2's resizes reset the calm streak, so R3 is the
  // first calm epoch; the slot must NOT flip back before the hysteresis
  // count is reached (that would be flapping).
  BufferBackend active = BufferBackend::kStaticHash;
  EXPECT_TRUE(run_round(mgr, 1, &active));
  EXPECT_EQ(active, BufferBackend::kGrowableLog);
  EXPECT_TRUE(run_round(mgr, 1, &active));
  EXPECT_EQ(active, BufferBackend::kGrowableLog)
      << "two calm epochs < hysteresis of 3: must not flip back yet";
  EXPECT_TRUE(run_round(mgr, 1, &active));
  EXPECT_EQ(active, BufferBackend::kGrowableLog);
  // R6: three calm epochs reached -> back on the static hash.
  EXPECT_TRUE(run_round(mgr, 1, &active));
  EXPECT_EQ(active, BufferBackend::kStaticHash)
      << "hysteresis satisfied: the calm slot returns to the static hash";
  mgr.end_run();
  RunStats rs = mgr.collect_stats();
  EXPECT_EQ(rs.speculative.buffer.backend_flips, 2u) << "up once, down once";
}

TEST_F(AdaptiveBackendTest, FlippedSlotSurvivesReuseAcrossSpeculations) {
  ThreadManager mgr(adaptive_config(/*threshold=*/1, /*hysteresis=*/16));
  mgr.begin_run();
  EXPECT_FALSE(run_round(mgr, 64));
  // Every subsequent reuse of the slot runs (and keeps running) on the
  // growable log: big footprints commit round after round, and after the
  // first growable round the grown capacity is carried forward, so no
  // further resizes are needed either.
  for (int round = 0; round < 5; ++round) {
    BufferBackend active = BufferBackend::kStaticHash;
    EXPECT_TRUE(run_round(mgr, 64, &active)) << "round " << round;
    EXPECT_EQ(active, BufferBackend::kGrowableLog) << "round " << round;
  }
  mgr.end_run();
  RunStats rs = mgr.collect_stats();
  EXPECT_EQ(rs.speculative.buffer.backend_flips, 1u);
  EXPECT_EQ(rs.speculative.commits, 5u);
  uint64_t resizes_after_first = rs.speculative.buffer.resize_events;
  EXPECT_GT(resizes_after_first, 0u) << "the first growable round grows";
  // One more round: the retained capacity means zero additional resizes.
  mgr.begin_run();
  EXPECT_TRUE(run_round(mgr, 64));
  mgr.end_run();
  rs = mgr.collect_stats();
  EXPECT_EQ(rs.speculative.buffer.resize_events, 0u)
      << "grown capacity carried forward across slot reuse";
}

TEST_F(AdaptiveBackendTest, FlipSeedsGrowableIndexAtObservedFootprint) {
  ThreadManager mgr(adaptive_config(/*threshold=*/1, /*hysteresis=*/16));
  mgr.begin_run();
  // R1: static dooms after filling the 16-slot table plus the 2 overflow
  // slots — the slot observes a ~18-entry footprint at the doom point.
  EXPECT_FALSE(run_round(mgr, 64));
  mgr.end_run();
  // R2: freshly flipped. The growable index is seeded at that observed
  // footprint rather than the 16-slot configured floor, so a footprint of
  // the same order commits with ZERO resizes instead of rediscovering the
  // capacity through the doubling ladder.
  mgr.begin_run();
  BufferBackend active = BufferBackend::kStaticHash;
  EXPECT_TRUE(run_round(mgr, 20, &active));
  EXPECT_EQ(active, BufferBackend::kGrowableLog);
  mgr.end_run();
  RunStats rs = mgr.collect_stats();
  EXPECT_EQ(rs.speculative.buffer.resize_events, 0u)
      << "the flip hint must pre-size the index past the doubling ladder";
}

TEST_F(AdaptiveBackendTest, MixedBackendParentChildMergeIsExact) {
  // A flipped (growable) parent slot joins an unflipped (static) child:
  // the child validates against and merges into a different backend than
  // its own, and the final commit must be byte-exact. Three slots, not
  // two: in a 2-slot fleet a single flipped slot is already a majority
  // and the fleet-following flip would homogenize the pair before the
  // mixed pairing under test ever forms.
  ThreadManager mgr(adaptive_config(/*threshold=*/1, /*hysteresis=*/16,
                                    /*cpus=*/3));
  mgr.register_space(arena_, sizeof(arena_));
  // Flip the slot the next fork will claim (the freelist hands the joined
  // rank right back).
  EXPECT_FALSE(run_round(mgr, 64));
  std::memset(arena_, 0, sizeof(arena_));

  std::atomic<BufferBackend> parent_active{BufferBackend::kStaticHash};
  std::atomic<BufferBackend> child_active{BufferBackend::kStaticHash};
  ThreadManager* m = &mgr;
  int rank = mgr.speculate(mgr.root(), ForkModel::kMixed, [&](ThreadData& td) {
    parent_active = td.sbuf.active_backend();
    // Parent writes a full word and one byte of another word.
    uint64_t v = 0x1111111111111111ull;
    td.sbuf.store_bytes(reinterpret_cast<uintptr_t>(&arena_[0]), &v, 8);
    uint8_t b = 0xAA;
    td.sbuf.store_bytes(reinterpret_cast<uintptr_t>(&arena_[1]), &b, 1);
    int child = m->speculate(td, ForkModel::kMixed, [&](ThreadData& ctd) {
      child_active = ctd.sbuf.active_backend();
      // Child overlaps the parent's full word (child is logically later:
      // its bytes must win), writes another byte of word 1, a fresh word
      // 2, and reads word 3 (adopted into the parent's read-set).
      uint64_t cv = 0x2222222222222222ull;
      ctd.sbuf.store_bytes(reinterpret_cast<uintptr_t>(&arena_[0]), &cv, 8);
      uint8_t cb = 0xBB;
      ctd.sbuf.store_bytes(reinterpret_cast<uintptr_t>(&arena_[1]) + 2, &cb,
                           1);
      uint64_t cw = 0x3333333333333333ull;
      ctd.sbuf.store_bytes(reinterpret_cast<uintptr_t>(&arena_[2]), &cw, 8);
      uint64_t out;
      ctd.sbuf.load_bytes(reinterpret_cast<uintptr_t>(&arena_[3]), &out, 8);
    });
    ASSERT_GT(child, 0);
    EXPECT_EQ(m->synchronize(td, td.children.back()),
              ThreadManager::JoinResult::kCommit);
  });
  ASSERT_GT(rank, 0);
  ASSERT_EQ(mgr.synchronize(mgr.root(), mgr.root().children.back()),
            ThreadManager::JoinResult::kCommit);
  EXPECT_EQ(parent_active.load(), BufferBackend::kGrowableLog);
  EXPECT_EQ(child_active.load(), BufferBackend::kStaticHash);

  EXPECT_EQ(arena_[0], 0x2222222222222222ull) << "child write wins";
  auto* b1 = reinterpret_cast<uint8_t*>(&arena_[1]);
  EXPECT_EQ(b1[0], 0xAA) << "parent byte survives the merge";
  EXPECT_EQ(b1[2], 0xBB) << "child byte merges in";
  EXPECT_EQ(b1[1], 0x00) << "unwritten byte stays untouched";
  EXPECT_EQ(arena_[2], 0x3333333333333333ull);
}

TEST_F(AdaptiveBackendTest, FleetMajorityFlipsRemainingSlotsProactively) {
  // Four slots, threshold 2: two of them earn their flips the hard way —
  // two overflow-doomed rounds each — and the moment they form a
  // half-the-fleet majority, the two slots that never doomed must come up
  // already flipped: the fleet view spares them their own learning curve.
  ThreadManager mgr(adaptive_config(/*threshold=*/2, /*hysteresis=*/64,
                                    /*cpus=*/4));
  mgr.begin_run();

  // One wave = `n` concurrent speculations of `words` words each, then
  // join them all newest-first (mixed model: later-speculated = logically
  // earlier — joining oldest-first would NOSYNC the younger siblings).
  // Records each fork's active backend; returns how many committed.
  std::atomic<BufferBackend> active[4];
  auto run_wave = [&](int n, size_t words) {
    for (int i = 0; i < n; ++i) {
      std::atomic<BufferBackend>* seen = &active[i];
      int r = mgr.speculate(mgr.root(), ForkModel::kMixed,
                            [seen, words](ThreadData& td) {
                              *seen = td.sbuf.active_backend();
                              for (size_t w = 0; w < words; ++w) {
                                uint64_t v = w + 1;
                                td.sbuf.store_bytes(
                                    reinterpret_cast<uintptr_t>(&arena_[w]),
                                    &v, 8);
                                if (td.sbuf.doomed()) return;
                              }
                            });
      EXPECT_GT(r, 0) << "wave fork " << i;
    }
    int committed = 0;
    while (!mgr.root().children.empty()) {
      if (mgr.synchronize(mgr.root(), mgr.root().children.back()) ==
          ThreadManager::JoinResult::kCommit) {
        ++committed;
      }
    }
    return committed;
  };

  // Rounds 1-2: two concurrent 64-word speculations per round. The LIFO
  // freelist hands the joined slots right back, so the same two slots
  // doom twice each — still on the static hash, still below threshold.
  EXPECT_EQ(run_wave(2, 64), 0);
  EXPECT_EQ(active[0].load(), BufferBackend::kStaticHash);
  EXPECT_EQ(active[1].load(), BufferBackend::kStaticHash);
  EXPECT_EQ(run_wave(2, 64), 0);
  EXPECT_EQ(active[0].load(), BufferBackend::kStaticHash);
  EXPECT_EQ(active[1].load(), BufferBackend::kStaticHash);

  // Round 3: the two veterans re-arm first (they top the freelist) and
  // flip on their own accumulated evidence; the two fresh slots then see
  // a half-flipped fleet at *their* re-arm and come up on the growable
  // log without ever having doomed. Calm 1-word footprints: all commit.
  EXPECT_EQ(run_wave(4, 1), 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(active[i].load(), BufferBackend::kGrowableLog)
        << "round-3 fork " << i << " should start flipped";
  }
  mgr.end_run();
  RunStats rs = mgr.collect_stats();
  EXPECT_EQ(rs.speculative.buffer.backend_flips, 4u)
      << "two earned flips plus two fleet-following flips";
}

TEST(SpecBufferFleet, CalmRevertedSlotResistsProactiveReflip) {
  // Two standalone buffers sharing one fleet view. A flips on its own
  // overflow evidence; B follows the (now half-flipped) fleet, then earns
  // its way back to the static hash through calm hysteresis. The majority
  // still stands — without the calm-revert latch B would be dragged
  // straight back up and the pair would flap one slot per epoch forever.
  SpecFleetView fleet;
  fleet.slots = 2;
  SpecBuffer a, b;
  SpecBuffer::AdaptivePolicy policy{/*overflow_threshold=*/1,
                                    /*calm_hysteresis=*/1};
  a.init(BufferBackend::kAdaptive, 4, 2, policy, GrowableSet::kMaxLog2,
         nullptr, {}, &fleet);
  b.init(BufferBackend::kAdaptive, 4, 2, policy, GrowableSet::kMaxLog2,
         nullptr, {}, &fleet);
  alignas(8) static uint64_t arena[128];

  // A: one overflow-doomed epoch (colliding words), flip at rearm.
  for (int i = 0; i < 8 && !a.doomed(); ++i) {
    uint64_t v = 1;
    a.store_bytes(reinterpret_cast<uintptr_t>(&arena[i * 16]), &v, 8);
  }
  ASSERT_TRUE(a.doomed());
  a.rearm();
  ASSERT_EQ(a.active_backend(), BufferBackend::kGrowableLog);
  EXPECT_EQ(fleet.flipped.load(), 1u);

  // B never doomed, but half the fleet has flipped: its next rearm
  // follows proactively.
  b.rearm();
  EXPECT_EQ(b.active_backend(), BufferBackend::kGrowableLog);
  EXPECT_EQ(fleet.flipped.load(), 2u);

  // One calm epoch satisfies B's hysteresis of 1: it reverts and latches.
  uint64_t v = 1;
  b.store_bytes(reinterpret_cast<uintptr_t>(&arena[0]), &v, 8);
  b.rearm();
  EXPECT_EQ(b.active_backend(), BufferBackend::kStaticHash);
  EXPECT_EQ(fleet.flipped.load(), 1u);

  // The majority condition still holds (1 of 2 flipped), but the latch
  // keeps B down through further calm epochs.
  for (int epoch = 0; epoch < 3; ++epoch) {
    b.store_bytes(reinterpret_cast<uintptr_t>(&arena[0]), &v, 8);
    b.rearm();
    ASSERT_EQ(b.active_backend(), BufferBackend::kStaticHash)
        << "epoch " << epoch << ": calm-reverted slot must not re-follow";
  }

  // Fresh overflow evidence of B's own clears the latch: it flips again —
  // and becomes eligible for fleet-following after any future calm revert.
  for (int i = 0; i < 8 && !b.doomed(); ++i) {
    b.store_bytes(reinterpret_cast<uintptr_t>(&arena[i * 16]), &v, 8);
  }
  ASSERT_TRUE(b.doomed());
  b.rearm();
  EXPECT_EQ(b.active_backend(), BufferBackend::kGrowableLog);
  EXPECT_EQ(fleet.flipped.load(), 2u);
}

// --- NUMA topology-aware fork placement (per-node idle freelists) ---
//
// ManagerConfig::numa_nodes > 0 fakes a topology, so these run on any
// machine (including the single-node CI box). The churn tests double as
// the TSan regression for the claim-side release ordering: claim_cpu's
// publications of live_ / most_speculative_rank_ race with
// admission_allows' acquire reads on concurrently forking workers, which
// TSan flags if either side decays to relaxed. (This suite rides the
// runtime_ TSan/ASan CI regexes.)

TEST(NumaFreelist, FakeTopologyShapesRankToNodeMapping) {
  ManagerConfig c = small_config(BufferBackend::kNumaSharded, 4);
  c.numa_nodes = 2;
  ThreadManager mgr(c);
  ASSERT_EQ(mgr.num_nodes(), 2);
  EXPECT_FALSE(mgr.topology().probed) << "a faked shape is not a probe";
  // Ranks split evenly across nodes, root (rank 0) on node 0.
  EXPECT_EQ(mgr.node_of_rank(0), 0);
  EXPECT_EQ(mgr.node_of_rank(1), 0);
  EXPECT_EQ(mgr.node_of_rank(2), 0);
  EXPECT_EQ(mgr.node_of_rank(3), 1);
  EXPECT_EQ(mgr.node_of_rank(4), 1);
}

TEST(NumaFreelist, NodeCountClampsToCpuCount) {
  ManagerConfig c = small_config(BufferBackend::kStaticHash, 1);
  c.numa_nodes = 8;
  ThreadManager mgr(c);
  EXPECT_EQ(mgr.num_nodes(), 1)
      << "never more nodes than virtual CPUs: no rank may strand on an "
         "empty home freelist";
  // The degenerate shape still forks and joins.
  int r = mgr.speculate(mgr.root(), ForkModel::kMixed, [](ThreadData&) {});
  ASSERT_GT(r, 0);
  EXPECT_EQ(mgr.synchronize(mgr.root(), mgr.root().children.back()),
            ThreadManager::JoinResult::kCommit);
}

TEST(NumaFreelist, TwoNodeChurnLosesNoRankAndCountsSteals) {
  ManagerConfig c = small_config(BufferBackend::kNumaSharded, 4);
  c.numa_nodes = 2;
  ThreadManager mgr(c);
  ASSERT_EQ(mgr.num_nodes(), 2);
  std::atomic<bool> release{false};
  for (int round = 0; round < 25; ++round) {
    release = false;
    uint32_t seen = 0;
    for (int i = 0; i < 4; ++i) {
      int r = mgr.speculate(mgr.root(), ForkModel::kMixed, [&](ThreadData&) {
        while (!release.load()) std::this_thread::yield();
      });
      ASSERT_GT(r, 0) << "round " << round << ": a rank was lost";
      ASSERT_LE(r, 4);
      ASSERT_EQ(seen & (1u << r), 0u)
          << "round " << round << ": rank " << r << " double-claimed";
      seen |= 1u << r;
    }
    EXPECT_EQ(
        mgr.speculate(mgr.root(), ForkModel::kMixed, [](ThreadData&) {}), 0)
        << "all four ranks are live: the fifth fork must be denied";
    release = true;
    while (!mgr.root().children.empty()) {
      ASSERT_EQ(mgr.synchronize(mgr.root(), mgr.root().children.back()),
                ThreadManager::JoinResult::kCommit);
    }
    ASSERT_EQ(mgr.live_threads(), 0);
  }
  // The root's home node 0 owns only two of the four ranks: filling the
  // machine every round forced claims from node 1's freelist.
  EXPECT_GT(mgr.root().stats.cross_node_claims, 0u);
}

TEST(NumaFreelist, ConcurrentWorkerClaimsStayDistinct) {
  // Workers fork grandchildren while the root forks children: pop_idle /
  // push_idle race across both node freelists. Every rank handed out in a
  // round is held live (spinning on `release`) until the whole round's
  // claims are recorded — a rank is only pushed back to its freelist
  // after release — so a set bit in the mask means exactly "handed out
  // twice", never legal sequential reuse within the round.
  ManagerConfig c = small_config(BufferBackend::kNumaSharded, 4);
  c.numa_nodes = 2;
  ThreadManager mgr(c);
  ThreadManager* m = &mgr;
  for (int round = 0; round < 25; ++round) {
    std::atomic<bool> release{false};
    std::atomic<uint32_t> live_mask{0};
    std::atomic<int> double_claims{0};
    auto claim_bit = [&](int rank) {
      uint32_t bit = 1u << rank;
      if (live_mask.fetch_or(bit) & bit) double_claims.fetch_add(1);
    };
    for (int i = 0; i < 2; ++i) {
      int r = mgr.speculate(mgr.root(), ForkModel::kMixed,
                            [&, m](ThreadData& td) {
        claim_bit(td.rank);
        // A denied grandchild fork never runs its body, so nothing here
        // can spin on a rank that was never claimed.
        int g = m->speculate(td, ForkModel::kMixed, [&](ThreadData& gd) {
          claim_bit(gd.rank);
          while (!release.load()) std::this_thread::yield();
        });
        while (!release.load()) std::this_thread::yield();
        if (g > 0) m->synchronize(td, td.children.back());
      });
      ASSERT_GT(r, 0);
    }
    release = true;
    while (!mgr.root().children.empty()) {
      mgr.synchronize(mgr.root(), mgr.root().children.back());
    }
    while (mgr.live_threads() != 0) std::this_thread::yield();
    EXPECT_EQ(double_claims.load(), 0) << "round " << round;
  }
}

// --- handoff spin budget (runtime-tuned, ManagerConfig-overridable) ---

TEST(HandoffSpinBudget, ExplicitConfigIsHonoredVerbatim) {
  for (int budget : {1, 64, 500, 8192, 100000}) {
    EXPECT_EQ(resolve_handoff_spin_budget(budget), budget);
    ManagerConfig c;
    c.num_cpus = 1;
    c.handoff_spin_budget = budget;
    ThreadManager mgr(c);
    EXPECT_EQ(mgr.handoff_spin_budget(), budget);
  }
}

TEST(HandoffSpinBudget, ZeroCalibratesWithinClamp) {
  int calibrated = resolve_handoff_spin_budget(0);
  EXPECT_GE(calibrated, 64);
  EXPECT_LE(calibrated, 8192);
  // The probe is memoized: every default-configured manager in the process
  // sees the same budget (and pays the probe cost once).
  EXPECT_EQ(resolve_handoff_spin_budget(0), calibrated);
  ManagerConfig c;
  c.num_cpus = 1;
  ThreadManager mgr(c);
  EXPECT_EQ(mgr.handoff_spin_budget(), calibrated);
}

TEST(HandoffSpinBudget, PerNodeBudgetsHonorOverrideAndClamp) {
  // An explicit budget applies verbatim on every node of a faked
  // topology; calibration (0) stays within the clamp on every node.
  ManagerConfig c;
  c.num_cpus = 4;
  c.numa_nodes = 2;
  c.handoff_spin_budget = 777;
  ThreadManager overridden(c);
  EXPECT_EQ(overridden.handoff_spin_budget(0), 777);
  EXPECT_EQ(overridden.handoff_spin_budget(1), 777);
  c.handoff_spin_budget = 0;
  ThreadManager calibrated(c);
  for (int n = 0; n < calibrated.num_nodes(); ++n) {
    EXPECT_GE(calibrated.handoff_spin_budget(n), 64) << "node " << n;
    EXPECT_LE(calibrated.handoff_spin_budget(n), 8192) << "node " << n;
  }
}

TEST(HandoffSpinBudget, ForkJoinWorksAcrossBudgetExtremes) {
  // A one-iteration budget parks almost immediately; a huge budget spins
  // through the whole handoff. Both must complete fork/join correctly.
  for (int budget : {1, 100000}) {
    ManagerConfig c;
    c.num_cpus = 2;
    c.handoff_spin_budget = budget;
    ThreadManager mgr(c);
    alignas(8) static uint64_t cell;
    cell = 0;
    mgr.register_space(&cell, sizeof(cell));
    for (int i = 0; i < 8; ++i) {
      int r = mgr.speculate(mgr.root(), ForkModel::kMixed, [](ThreadData& td) {
        uint64_t v = 7;
        td.sbuf.store_bytes(reinterpret_cast<uintptr_t>(&cell), &v, 8);
      });
      ASSERT_GT(r, 0) << "budget " << budget;
      ASSERT_EQ(mgr.synchronize(mgr.root(), mgr.root().children.back()),
                ThreadManager::JoinResult::kCommit);
      ASSERT_EQ(cell, 7u);
      cell = 0;
    }
    mgr.unregister_space(&cell, sizeof(cell));
  }
}

}  // namespace
}  // namespace mutls
