// Static-hash speculative buffering backend (paper section IV-G2), the
// kStaticHash backend of the SpecBuffer API ("runtime/spec_buffer.h").
//
// Each speculative thread owns one buffer holding a read-set and a
// write-set over main-memory words. Both sets use the paper's *static* map:
//
//   buffer    — N words of data
//   addresses — N word-aligned keys, 0 = empty slot
//   offsets   — stack of occupied slot indices, so validation / commit /
//               finalization of threads touching little data stay fast
//   mark      — N words of per-byte dirty masks (write-set only)
//
// The hash is the low bits of the word address, one slot per key, no
// probing: a slot collision diverts the access to a small bounded overflow
// map ("temporary buffer" in the paper). When the overflow map fills, the
// thread is doomed: it stops at its next check point / barrier and reports
// ROLLBACK at synchronization.
//
// This class provides the word-granular backend primitives; the byte-level
// load/store splitting, validation, commit and tree-form merge algorithms
// live once in SpecBuffer, generic over the backend. Loads resolve in the
// order write-set (marked bytes) -> read-set -> main memory (first touch
// inserts the whole containing word into the read-set, as the paper does
// for sub-word accesses).
//
// Hot-path shortcut: a one-line MRU cache of the most recently resolved
// word view (read-set slot, write-set slot, or a proven write-set absence)
// sits in front of the two maps, so consecutive touches of the same word —
// the load+store pair of every read-modify-write, sub-word sweeps through
// one word — skip the hash probes entirely. The line is deliberately tiny:
// the miss path pays one compare and a three-word refresh, so streaming
// access patterns that never repeat a word lose nothing. Only static-table
// slots are cached (their storage never moves); overflow residents always
// take the probing path.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/buffer_stats.h"
#include "runtime/memory.h"
#include "support/check.h"

namespace mutls {

// One static hash map (either the read-set or the write-set).
class BufferMap {
 public:
  // Static-table index of a resolved slot, or kNoSlot for bounded-overflow
  // residents (whose storage moves when the overflow vector grows and must
  // therefore never be cached).
  static constexpr uint32_t kNoSlot = 0xffffffffu;

  struct Slot {
    uint64_t* data = nullptr;
    uint64_t* mark = nullptr;  // null when the map carries no marks
    uint32_t table_index = kNoSlot;
  };

  enum class Find { kFound, kInserted, kFull };

  BufferMap() = default;

  // `log2_entries` fixes the static size N = 2^log2_entries;
  // `overflow_cap` bounds the temporary buffer; `with_marks` is true for
  // the write-set. `stats`, when given, receives probe counters (the
  // overflow scan is this map's probe sequence).
  void init(int log2_entries, size_t overflow_cap, bool with_marks,
            SpecBufferStats* stats = nullptr);

  bool initialized() const { return addresses_ != nullptr; }

  // Finds the slot for `word_addr`, inserting (zeroed) if absent.
  Find find_or_insert(uintptr_t word_addr, Slot& out);

  // Finds without inserting; returns false if absent.
  bool find(uintptr_t word_addr, Slot& out);

  // Visits every occupied entry as fn(word_addr, data&, mark&).
  // `mark` references a dummy full mark when the map carries no marks.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (uint32_t idx : offsets_) {
      fn(addresses_[idx], buffer_[idx], marks_ ? marks_[idx] : dummy_mark_);
    }
    for (OverflowEntry& e : overflow_) {
      fn(e.word_addr, e.data, e.mark);
    }
  }

  // Direct static-table access for MRU-cached slots (index from
  // Slot::table_index; stable for the life of the map).
  uint64_t& data_at(uint32_t idx) { return buffer_[idx]; }
  uint64_t& mark_at(uint32_t idx) { return marks_[idx]; }

  size_t entry_count() const { return offsets_.size() + overflow_.size(); }
  size_t overflow_count() const { return overflow_.size(); }
  bool overflow_pressure() const { return !overflow_.empty(); }

  // Empties the map in O(entries), not O(N).
  void clear();

 private:
  struct OverflowEntry {
    uintptr_t word_addr;
    uint64_t data;
    uint64_t mark;
  };

  size_t slot_index(uintptr_t word_addr) const {
    return (word_addr >> 3) & mask_;
  }

  std::unique_ptr<uint64_t[]> buffer_;
  std::unique_ptr<uintptr_t[]> addresses_;
  std::unique_ptr<uint64_t[]> marks_;
  std::vector<uint32_t> offsets_;
  std::vector<OverflowEntry> overflow_;
  size_t mask_ = 0;
  size_t overflow_cap_ = 0;
  uint64_t dummy_mark_ = kFullMark;
  SpecBufferStats* stats_ = nullptr;
};

class GlobalBuffer {
 public:
  GlobalBuffer() = default;
  // After init the maps hold a pointer to this object's stats_ member, so
  // a copied/moved buffer would count into the original. Never needed.
  GlobalBuffer(const GlobalBuffer&) = delete;
  GlobalBuffer& operator=(const GlobalBuffer&) = delete;

  void init(int log2_entries, size_t overflow_cap);

  // --- word-granular backend primitives (driven by SpecBuffer) ---

  // The thread's current view of one whole word: write-set marked bytes
  // over the read-set observation over main memory. First touch inserts
  // the word into the read-set; overflow exhaustion dooms the thread and
  // falls back to the main-memory value.
  uint64_t read_word_view(uintptr_t word_addr);

  // Like read_word_view but never inserts into the read-set (used when a
  // speculative joiner evaluates a child's validation). Leaves the MRU
  // cache untouched: peeks run on the *joiner's* buffer from the child's
  // thread at the flag barrier.
  uint64_t peek_word_view(uintptr_t word_addr);

  // Overlays the bytes selected by `mask` onto the buffered word; dooms on
  // overflow exhaustion.
  void write_word(uintptr_t word_addr, uint64_t value, uint64_t mask);

  // Adoption twins of write_word/first-read-insert, used by the tree-form
  // merge: same overlay/first-wins semantics, but an overflow exhaustion
  // dooms with a merge-specific reason so a joiner's rollback points at
  // the adopted child commit rather than its own access path.
  void adopt_write(uintptr_t word_addr, uint64_t data, uint64_t mark);
  void adopt_read(uintptr_t word_addr, uint64_t data);

  // Visits every read-set entry as fn(word_addr, data).
  template <typename Fn>
  void for_each_read(Fn&& fn) {
    read_set_.for_each(
        [&](uintptr_t addr, uint64_t& data, uint64_t&) { fn(addr, data); });
  }

  // Visits every write-set entry as fn(word_addr, data, mark).
  template <typename Fn>
  void for_each_write(Fn&& fn) {
    write_set_.for_each([&](uintptr_t addr, uint64_t& data, uint64_t& mark) {
      fn(addr, data, mark);
    });
  }

  // Discards all buffered state; clears doom.
  void reset();

  bool doomed() const { return doomed_; }
  const char* doom_reason() const { return doom_reason_; }
  void doom(const char* reason) {
    doomed_ = true;
    doom_reason_ = reason;
  }

  // Capacity pressure: accesses are landing in the bounded overflow map.
  bool pressure() const {
    return read_set_.overflow_pressure() || write_set_.overflow_pressure();
  }

  size_t read_entries() const { return read_set_.entry_count(); }
  size_t write_entries() const { return write_set_.entry_count(); }

  const SpecBufferStats& stats() const { return stats_; }
  SpecBufferStats& stats_mutable() { return stats_; }
  void clear_stats() { stats_.clear(); }

 private:
  // The MRU line: static-table slot indices (+1, 0 = not yet resolved)
  // recomposing the speculative view of mru_addr_ without probing either
  // map. kWriteAbsent marks a word proven absent from the write set; 1 is
  // an impossible word address.
  static constexpr uint32_t kWriteAbsent = 0xffffffffu;

  void mru_invalidate() {
    mru_addr_ = 1;
    mru_r_ = 0;
    mru_w_ = 0;
  }

  BufferMap read_set_;
  BufferMap write_set_;
  uintptr_t mru_addr_ = 1;
  uint32_t mru_r_ = 0;  // read-set table slot +1; 0 = unknown
  uint32_t mru_w_ = 0;  // write-set table slot +1; 0 = unknown; kWriteAbsent
  bool doomed_ = false;
  const char* doom_reason_ = "";
  SpecBufferStats stats_;
};

}  // namespace mutls
