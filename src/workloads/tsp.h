// Travelling salesperson — Table II row 9 (exhaustive DFS).
//
// Finds the optimal tour over n cities by depth-first search over
// permutations, speculating candidate-set continuations exactly like
// nqueen (the paper groups both as DFS benchmarks with near-identical
// efficiency profiles). The distance matrix is shared read-only data;
// every speculated continuation writes its partial minimum into its own
// slot, so there are no conflicts. Paper size: 12 cities.
#pragma once

#include "workloads/workload.h"

namespace mutls::workloads {

struct Tsp {
  struct Params {
    int n = 9;
    int cutoff = 3;  // speculate in the top `cutoff` tour positions
    uint64_t seed = 5;
  };

  static constexpr const char* kName = "tsp";
  static constexpr Pattern kPattern = Pattern::kDepthFirstSearch;

  static SeqRun run_seq(const Params& p);
  static SpecRun run_spec(Runtime& rt, const Params& p, ForkModel model);
};

}  // namespace mutls::workloads
