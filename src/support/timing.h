// Time accounting for the paper's execution-breakdown figures.
//
// Every thread attributes wall time to one of the categories that Figures
// 8 and 9 of the paper plot (work, join, idle, fork, find-CPU for the
// critical path; wasted work, finalize, commit, validation, overflow, idle,
// fork, find-CPU for the speculative path). A TimeLedger accumulates
// nanoseconds per category; ScopedTimer attributes a lexical scope.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>

namespace mutls {

using Clock = std::chrono::steady_clock;

inline uint64_t now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

enum class TimeCat : int {
  kWork = 0,     // useful computation
  kFindCpu,      // MUTLS_get_CPU admission + idle-slot claim
  kFork,         // slot arming + live-in save
  kForkHandoff,  // publishing the task to the worker (incl. any wakeup)
  kJoin,         // synchronize() on the critical path
  kIdle,         // busy-waiting (either side of the flag barrier)
  kValidation,   // read-set + live-in validation
  kCommit,       // write-set commit / merge
  kFinalize,     // buffer reset and CPU reclamation
  kOverflow,     // stalled on a full overflow buffer
  kWastedWork,   // work later discarded by rollback
  kCount
};

inline const char* time_cat_name(TimeCat c) {
  switch (c) {
    case TimeCat::kWork: return "work";
    case TimeCat::kFindCpu: return "find CPU";
    case TimeCat::kFork: return "fork";
    case TimeCat::kForkHandoff: return "fork handoff";
    case TimeCat::kJoin: return "join";
    case TimeCat::kIdle: return "idle";
    case TimeCat::kValidation: return "validation";
    case TimeCat::kCommit: return "commit";
    case TimeCat::kFinalize: return "finalize";
    case TimeCat::kOverflow: return "overflow";
    case TimeCat::kWastedWork: return "wasted work";
    default: return "?";
  }
}

constexpr int kTimeCatCount = static_cast<int>(TimeCat::kCount);

// Per-thread accumulator. Not thread-safe by design: each thread owns one
// and the harness aggregates after the barrier at join time.
class TimeLedger {
 public:
  void add(TimeCat cat, uint64_t ns) { ns_[static_cast<int>(cat)] += ns; }

  uint64_t get(TimeCat cat) const { return ns_[static_cast<int>(cat)]; }

  uint64_t total() const {
    uint64_t t = 0;
    for (uint64_t v : ns_) t += v;
    return t;
  }

  void clear() { ns_.fill(0); }

  // Moves everything recorded as kWork into kWastedWork: called when a
  // speculative thread rolls back so its computation is accounted as waste
  // (paper Fig. 9 "wasted work").
  void waste_work() {
    ns_[static_cast<int>(TimeCat::kWastedWork)] +=
        ns_[static_cast<int>(TimeCat::kWork)];
    ns_[static_cast<int>(TimeCat::kWork)] = 0;
  }

  TimeLedger& operator+=(const TimeLedger& o) {
    for (int i = 0; i < kTimeCatCount; ++i) ns_[i] += o.ns_[i];
    return *this;
  }

 private:
  std::array<uint64_t, kTimeCatCount> ns_{};
};

// Attributes the lifetime of the object to one category of a ledger.
class ScopedTimer {
 public:
  ScopedTimer(TimeLedger& ledger, TimeCat cat)
      : ledger_(ledger), cat_(cat), start_(now_ns()) {}
  ~ScopedTimer() { ledger_.add(cat_, now_ns() - start_); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimeLedger& ledger_;
  TimeCat cat_;
  uint64_t start_;
};

// Simple stopwatch for harness-level measurements.
class Stopwatch {
 public:
  Stopwatch() : start_(now_ns()) {}
  void restart() { start_ = now_ns(); }
  uint64_t elapsed_ns() const { return now_ns() - start_; }
  double elapsed_sec() const { return static_cast<double>(elapsed_ns()) * 1e-9; }

 private:
  uint64_t start_;
};

}  // namespace mutls
