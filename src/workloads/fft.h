// Recursive Fast Fourier Transform — Table II row 6.
//
// Cooley-Tukey radix-2 decimation in time, implemented with the classic
// two-buffer recursion. The second recursive call of every node is
// speculated (the paper: "we fork a thread to execute the second recursive
// call and barrier it after the call"), forming a binary tree of threads
// under the mixed model. Divide-and-conquer pattern, memory-intensive.
// Paper size: 2^20 doubles.
#pragma once

#include "workloads/workload.h"

namespace mutls::workloads {

struct Fft {
  struct Params {
    int log2_n = 12;         // transform size n = 2^log2_n
    int fork_levels = 4;     // speculate in the top `fork_levels` of the tree
    uint64_t seed = 7;
  };

  static constexpr const char* kName = "fft";
  static constexpr Pattern kPattern = Pattern::kDivideAndConquer;

  static SeqRun run_seq(const Params& p);
  static SpecRun run_spec(Runtime& rt, const Params& p, ForkModel model);
};

}  // namespace mutls::workloads
