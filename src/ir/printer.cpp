#include <sstream>

#include "ir/ir.h"

namespace mutls::ir {

namespace {

std::string vname(const Function& f, ValueId v) {
  if (v == kNoValue) return "%<none>";
  return "%" + (f.value_names[v].empty() ? std::to_string(v)
                                         : f.value_names[v]);
}

const char* model_kw(Pred p) {
  switch (static_cast<int>(p)) {
    case 0: return "inorder";
    case 1: return "outoforder";
    default: return "mixed";
  }
}

void print_instr(std::ostringstream& os, const Function& f, const Instr& in) {
  os << "  ";
  if (in.result != kNoValue) os << vname(f, in.result) << " = ";
  switch (in.op) {
    case Op::kConst:
      os << "const " << type_name(in.type) << " ";
      if (is_float(in.type)) {
        os << in.fimm;
      } else {
        os << in.imm;
      }
      break;
    case Op::kICmp:
    case Op::kFCmp:
      os << op_name(in.op) << " " << pred_name(in.pred) << " "
         << vname(f, in.args[0]) << ", " << vname(f, in.args[1]);
      break;
    case Op::kSelect:
      os << "select " << vname(f, in.args[0]) << ", " << vname(f, in.args[1])
         << ", " << vname(f, in.args[2]);
      break;
    case Op::kTrunc: case Op::kZExt: case Op::kSExt: case Op::kSIToFP:
    case Op::kFPToSI: case Op::kPtrToInt: case Op::kIntToPtr:
    case Op::kBitcast:
      os << op_name(in.op) << " " << vname(f, in.args[0]) << " to "
         << type_name(in.type);
      break;
    case Op::kAlloca:
      os << "alloca " << in.imm;
      break;
    case Op::kLoad:
      os << "load " << type_name(in.type) << ", " << vname(f, in.args[0]);
      break;
    case Op::kStore:
      os << "store " << vname(f, in.args[0]) << ", " << vname(f, in.args[1]);
      break;
    case Op::kGep:
      os << "gep " << vname(f, in.args[0]) << ", " << vname(f, in.args[1])
         << ", " << in.imm;
      break;
    case Op::kGlobal:
      os << "globaladdr @" << in.sym;
      break;
    case Op::kCall: {
      os << "call ";
      if (in.type != Type::kVoid) os << type_name(in.type) << " ";
      os << "@" << in.sym << "(";
      for (size_t i = 0; i < in.args.size(); ++i) {
        if (i) os << ", ";
        os << vname(f, in.args[i]);
      }
      os << ")";
      break;
    }
    case Op::kBr:
      os << "br " << f.blocks[in.blocks[0]].label;
      break;
    case Op::kCondBr:
      os << "condbr " << vname(f, in.args[0]) << ", "
         << f.blocks[in.blocks[0]].label << ", "
         << f.blocks[in.blocks[1]].label;
      break;
    case Op::kRet:
      os << "ret";
      if (!in.args.empty() && in.args[0] != kNoValue) {
        os << " " << vname(f, in.args[0]);
      }
      break;
    case Op::kPhi:
      os << "phi " << type_name(in.type) << " ";
      for (size_t i = 0; i < in.args.size(); ++i) {
        if (i) os << ", ";
        os << "[" << vname(f, in.args[i]) << ", "
           << f.blocks[in.blocks[i]].label << "]";
      }
      break;
    case Op::kMutlsFork:
      os << "mutls.fork " << in.imm << ", " << model_kw(in.pred);
      break;
    case Op::kMutlsJoin:
      os << "mutls.join " << in.imm;
      break;
    case Op::kMutlsBarrier:
      os << "mutls.barrier " << in.imm;
      break;
    default:
      os << op_name(in.op) << " ";
      for (size_t i = 0; i < in.args.size(); ++i) {
        if (i) os << ", ";
        os << vname(f, in.args[i]);
      }
      break;
  }
  os << "\n";
}

}  // namespace

std::string print_function(const Function& f) {
  std::ostringstream os;
  os << "func @" << f.name << "(";
  for (size_t i = 0; i < f.params.size(); ++i) {
    if (i) os << ", ";
    os << "%" << f.params[i].name << ": " << type_name(f.params[i].type);
  }
  os << ")";
  if (f.ret_type != Type::kVoid) os << " : " << type_name(f.ret_type);
  os << " {\n";
  for (const Block& b : f.blocks) {
    os << b.label << ":\n";
    for (const Instr& in : b.instrs) print_instr(os, f, in);
  }
  os << "}\n";
  return os.str();
}

std::string print_module(const Module& m) {
  std::ostringstream os;
  for (const Global& g : m.globals) {
    os << "global @" << g.name << " : " << type_name(g.elem_type);
    if (g.count != 1) os << "[" << g.count << "]";
    if (!g.init.empty()) {
      os << " = {";
      for (size_t i = 0; i < g.init.size(); ++i) {
        if (i) os << ", ";
        os << g.init[i];
      }
      os << "}";
    }
    os << "\n";
  }
  for (const Function& f : m.functions) {
    os << print_function(f);
  }
  return os.str();
}

}  // namespace mutls::ir
