// Parallel-algorithms layer of the native MUTLS embedding (API v2, layer 4
// of 4).
//
// Two levels live here:
//
//  * the raw loop drivers `spec_for` / `spec_for_nested` — the paper's
//    loop-speculation patterns (section II) expressed directly on
//    fork/join, kept public for ablation and for nesting inside other
//    speculated regions;
//  * `mutls::par` — `for_each`, `reduce`, `divide_and_conquer`, `pipeline`:
//    one-liner entry points for the paper's three program shapes (loop,
//    divide and conquer, depth-first/staged work), built on the drivers and
//    the tree-form fork so a new scenario needs no protocol code at all.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "api/ctx.h"
#include "api/shared.h"
#include "api/spec.h"
#include "support/check.h"
#include "support/latency_histogram.h"
#include "support/timing.h"

namespace mutls {

// Nested in-order loop driver: each chain link runs one chunk and joins the
// speculated remainder itself. Simple, but a link whose fork was denied
// executes the whole remaining range inline while earlier links wait at
// their barriers — parallelism collapses when chunks exceed CPUs. Kept for
// comparison (ablation) and for nesting inside other speculated regions.
// The body receives (ctx, chunk_index, lo, hi).
template <typename BodyFn>
void spec_for_nested(Runtime& rt, Ctx& ctx, int64_t begin, int64_t end,
                     int chunks, ForkModel model, const BodyFn& body) {
  if (begin >= end || chunks <= 0) return;
  struct Driver {
    Runtime& rt;
    int64_t begin, end;
    int chunks;
    ForkModel model;
    const BodyFn& body;

    int64_t bound(int i) const {
      return begin + (end - begin) * i / chunks;
    }

    void run(Ctx& c, int i) const {
      if (i + 1 >= chunks) {
        body(c, i, bound(i), bound(i + 1));
        return;
      }
      Spec s = rt.fork(c, model, [this, i](Ctx& cc) { run(cc, i + 1); });
      body(c, i, bound(i), bound(i + 1));
      rt.join(c, s);
    }
  };
  Driver d{rt, begin, end, chunks, model, body};
  d.run(ctx, 0);
}

// In-order loop speculation driver (the paper's loop pattern, section II):
// splits [begin, end) into `chunks` contiguous pieces. Every chain link
// forks the continuation *detached* and executes its chunk; the calling
// thread then joins the chain link by link, adopting each link's child
// (paper IV-F: children survive the join). Each join frees a virtual CPU,
// which the chain tail immediately reuses — reproducing the steady-state
// redistribution of the paper's counter-based resumption, where with 64
// chunks speedup plateaus from 32 to 63 CPUs and jumps at 64. A link whose
// fork is denied simply continues the chain itself; a rolled-back link
// cascades (the rest of the chain is NOSYNCed and re-executed inline), the
// classic in-order rollback behaviour.
// The body receives (ctx, chunk_index, lo, hi).
//
// Fork-to-settle latency sampling (the serving bench's percentile source):
// pass a histogram plus a scratch array of at least `chunks` entries. The
// forker of link i stamps fork_ns_scratch[i] just before forking it, and
// the joining thread records now - stamp after each adopted join. A denied
// fork leaves a stale stamp that is never read (its tag is never joined);
// visibility of a worker's stamp to the joiner rides the fork-publish and
// settle/adopt edges the chain already synchronizes on.
template <typename BodyFn>
void spec_for(Runtime& rt, Ctx& ctx, int64_t begin, int64_t end, int chunks,
              ForkModel model, const BodyFn& body,
              LatencyHistogram* fork_latency = nullptr,
              uint64_t* fork_ns_scratch = nullptr) {
  if (begin >= end || chunks <= 0) return;
  MUTLS_CHECK(fork_latency == nullptr || fork_ns_scratch != nullptr,
              "latency sampling needs a per-chunk scratch array");
  struct Driver {
    Runtime& rt;
    int64_t begin, end;
    int chunks;
    ForkModel model;
    const BodyFn& body;
    uint64_t* fork_ns;  // null when sampling is off

    int64_t bound(int i) const {
      return begin + (end - begin) * i / chunks;
    }

    // Runs chunks starting at `i`: forks the continuation (detached) and
    // runs one chunk; on fork denial, keeps the chain alive by continuing
    // with the next chunk itself.
    void chain(Ctx& c, int i) const {
      while (true) {
        bool forked = false;
        if (i + 1 < chunks) {
          int next = i + 1;
          if (fork_ns != nullptr) fork_ns[next] = now_ns();
          Spec s = rt.fork(
              c,
              ForkOpts{.model = model,
                       .tag = static_cast<uint64_t>(next),
                       .detached = true},
              [this, next](Ctx& cc) { chain(cc, next); });
          forked = s.speculated();
        }
        body(c, i, bound(i), bound(i + 1));
        c.check_point();
        if (forked || i + 1 >= chunks) return;
        ++i;
      }
    }
  };
  Driver d{rt,    begin, end, chunks,
           model, body,  fork_latency ? fork_ns_scratch : nullptr};

  size_t base_children = ctx.thread_data().children.size();
  d.chain(ctx, 0);
  // Join the chain in logical order, adopting each link's child.
  while (ctx.thread_data().children.size() > base_children) {
    Runtime::AdoptedJoin j = rt.join_next(ctx);
    MUTLS_CHECK(j.joined, "loop chain lost a child");
    if (fork_latency != nullptr &&
        j.tag < static_cast<uint64_t>(chunks)) {
      // Every settle counts, commit or rollback: the bench's percentiles
      // describe round-trip cost, and rollbacks are part of that cost.
      fork_latency->record(now_ns() - fork_ns_scratch[j.tag]);
    }
    if (j.outcome == JoinOutcome::kRolledBack) {
      // In-order cascade: everything after the failed link is discarded
      // and re-executed inline from the failed link's first chunk.
      rt.manager().nosync_children(ctx.thread_data(), base_children);
      d.chain(ctx, static_cast<int>(j.tag));
    }
  }
}

namespace par {

// Options shared by the loop-shaped algorithms.
struct LoopOpts {
  // Number of contiguous chunks the range is split into. 0 picks twice the
  // virtual-CPU count, the steady-state redistribution sweet spot.
  int chunks = 0;

  ForkModel model = ForkModel::kMixed;

  // Use the nested chain driver instead of the adoption chain (ablation,
  // or when the loop itself runs inside a deeply speculated region).
  bool nested = false;

  // When > 0, poll Ctx::check_point every this many elements inside a
  // chunk (element-wise algorithms only); the drivers always poll at chunk
  // boundaries.
  int64_t checkpoint_every = 0;

  // Fork-to-settle latency sampling (adoption-chain driver only; the
  // nested driver ignores it). Both must be set together: the histogram
  // receives one sample per adopted join, stamped through the scratch
  // array, which needs capacity for `chunks` entries and whose contents
  // are meaningless between calls.
  LatencyHistogram* fork_latency = nullptr;
  uint64_t* fork_ns_scratch = nullptr;
};

inline int resolve_chunks(const Runtime& rt, const LoopOpts& opts) {
  return opts.chunks > 0 ? opts.chunks : 2 * rt.num_cpus();
}

// Chunk-wise parallel loop: body(ctx, chunk_index, lo, hi) over [begin,
// end) split into opts.chunks pieces, speculated as an in-order chain.
template <typename BodyFn>
void for_each_chunk(Runtime& rt, Ctx& ctx, int64_t begin, int64_t end,
                    const LoopOpts& opts, const BodyFn& body) {
  int chunks = resolve_chunks(rt, opts);
  if (opts.nested) {
    spec_for_nested(rt, ctx, begin, end, chunks, opts.model, body);
  } else {
    spec_for(rt, ctx, begin, end, chunks, opts.model, body,
             opts.fork_latency, opts.fork_ns_scratch);
  }
}

// Element-wise parallel loop: body(ctx, i) for every i in [begin, end).
template <typename BodyFn>
void for_each(Runtime& rt, Ctx& ctx, int64_t begin, int64_t end,
              const LoopOpts& opts, const BodyFn& body) {
  for_each_chunk(rt, ctx, begin, end, opts,
                 [&](Ctx& c, int, int64_t lo, int64_t hi) {
                   int64_t since = 0;
                   for (int64_t i = lo; i < hi; ++i) {
                     body(c, i);
                     if (opts.checkpoint_every > 0 &&
                         ++since >= opts.checkpoint_every) {
                       since = 0;
                       c.check_point();
                     }
                   }
                 });
}

// Parallel reduction: combine(init, map(ctx, i) for i in [begin, end)).
// `init` must be the identity of `combine` (0 for +, +inf for min, ...):
// each chunk starts its accumulator from it. Chunk partials land in a
// registered scratch array (one slot per chunk, no conflicts) and are
// folded in chunk order, so the result is exactly the sequential fold for
// any associative combine.
template <typename T, typename MapFn, typename CombineFn = std::plus<T>>
T reduce(Runtime& rt, Ctx& ctx, int64_t begin, int64_t end,
         const LoopOpts& opts, T init, const MapFn& map,
         const CombineFn& combine = {}) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (begin >= end) return init;
  if (ctx.speculative()) {
    // Inside a speculated region the scratch array below would be freed
    // (and unregistered) before the enclosing speculation validates and
    // commits the buffered accesses to it — so compute inline instead.
    // The caller is already one arm of the speculation tree; nested
    // reduction parallelism is not worth a dangling commit.
    T acc = init;
    int64_t since = 0;
    for (int64_t i = begin; i < end; ++i) {
      acc = combine(acc, map(ctx, i));
      if (opts.checkpoint_every > 0 && ++since >= opts.checkpoint_every) {
        since = 0;
        ctx.check_point();
      }
    }
    return acc;
  }
  LoopOpts o = opts;
  o.chunks = resolve_chunks(rt, opts);
  SharedArray<T> partial(rt, static_cast<size_t>(o.chunks), init);
  for_each_chunk(rt, ctx, begin, end, o,
                 [&](Ctx& c, int chunk, int64_t lo, int64_t hi) {
                   T acc = init;
                   int64_t since = 0;
                   for (int64_t i = lo; i < hi; ++i) {
                     acc = combine(acc, map(c, i));
                     if (o.checkpoint_every > 0 &&
                         ++since >= o.checkpoint_every) {
                       since = 0;
                       c.check_point();
                     }
                   }
                   partial.at(c, static_cast<size_t>(chunk)) = acc;
                 });
  // The speculative-context case returned above, so the caller is the
  // non-speculative thread here and every chunk has been joined: the
  // partials are plain committed memory.
  T acc = init;
  for (size_t i = 0; i < partial.size(); ++i) {
    acc = combine(acc, partial[i]);
  }
  return acc;
}

// Options for the divide-and-conquer shape.
struct DncOpts {
  ForkModel model = ForkModel::kMixed;
  // Tree depth down to which sibling subproblems are speculated; below it
  // the recursion runs inline. With the mixed model the speculative
  // children fork further, unfolding the top of the tree (paper section
  // II).
  int fork_levels = 4;
};

// Generic tree-form divide and conquer over problems of type P:
//
//   if (is_leaf(p))  leaf(ctx, p)
//   else             subs = split(p); recurse on each, in order;
//                    then post(ctx, p)   // the combine step
//
// While depth < fork_levels, subproblems after the first are speculated
// (the parent descends into subs[0] itself) and joined LIFO via ScopedSpec
// scope order — the paper's tree-form pattern, where only the mixed model
// unfolds the whole tree. Sequential semantics are preserved for any
// split/leaf/post that is correct sequentially.
template <typename P, typename IsLeafFn, typename SplitFn, typename LeafFn,
          typename PostFn>
void divide_and_conquer(Runtime& rt, Ctx& ctx, const P& p,
                        const DncOpts& opts, const IsLeafFn& is_leaf,
                        const SplitFn& split, const LeafFn& leaf,
                        const PostFn& post, int level = 0) {
  if (is_leaf(p)) {
    leaf(ctx, p);
    return;
  }
  std::vector<P> subs = split(p);
  if (level < opts.fork_levels && subs.size() > 1) {
    // Each sibling's ScopedSpec is a true stack local of one recursion
    // frame (not a container element — ~ScopedSpec may throw SpecAbort,
    // which library containers may not survive): fork subs[1..k-1] on the
    // way down, descend into subs[0] at the bottom, and join LIFO on the
    // way back up — the mixed-model order.
    auto fork_rest = [&](auto&& self, size_t i) -> void {
      if (i >= subs.size()) {
        divide_and_conquer(rt, ctx, subs[0], opts, is_leaf, split, leaf,
                           post, level + 1);
        ctx.check_point();
        return;
      }
      P sub = subs[i];
      ScopedSpec s = rt.fork_scoped(
          ctx, ForkOpts{.model = opts.model}, [&, sub, level](Ctx& c) {
            divide_and_conquer(rt, c, sub, opts, is_leaf, split, leaf, post,
                               level + 1);
          });
      self(self, i + 1);
    };  // sibling i joins here, after siblings i+1..k-1
    fork_rest(fork_rest, 1);
  } else {
    for (const P& sub : subs) {
      divide_and_conquer(rt, ctx, sub, opts, is_leaf, split, leaf, post,
                         level + 1);
    }
  }
  post(ctx, p);
}

// Overload without a combine step.
template <typename P, typename IsLeafFn, typename SplitFn, typename LeafFn>
void divide_and_conquer(Runtime& rt, Ctx& ctx, const P& p,
                        const DncOpts& opts, const IsLeafFn& is_leaf,
                        const SplitFn& split, const LeafFn& leaf) {
  divide_and_conquer(rt, ctx, p, opts, is_leaf, split, leaf,
                     [](Ctx&, const P&) {});
}

// Speculative pipeline: runs `stages` (in order) on every item in
// [0, items), speculating ahead across item blocks with the in-order
// chain. Cross-item flow dependencies — a stage reading what an earlier
// item's stage wrote — are not forbidden: the buffer map detects the
// violated read and the chain cascades and re-executes, so results stay
// exactly sequential; dependency-light pipelines simply overlap.
using PipelineStage = std::function<void(Ctx&, int64_t)>;

inline void pipeline(Runtime& rt, Ctx& ctx, int64_t items,
                     const std::vector<PipelineStage>& stages,
                     LoopOpts opts = {}) {
  if (items <= 0 || stages.empty()) return;
  if (opts.chunks <= 0) {
    int64_t def = resolve_chunks(rt, opts);
    opts.chunks = static_cast<int>(items < def ? items : def);
  }
  for_each_chunk(rt, ctx, 0, items, opts,
                 [&](Ctx& c, int, int64_t lo, int64_t hi) {
                   for (int64_t i = lo; i < hi; ++i) {
                     for (const PipelineStage& stage : stages) {
                       stage(c, i);
                     }
                     c.check_point();
                   }
                 });
}

}  // namespace par

}  // namespace mutls
