// Ablation — tree-form vs linear mixed-model rollback cascading.
//
// The paper's design claim (sections II and IV-F): previous mixed-model
// systems organize speculations linearly, so one rollback squashes every
// logically later thread even without conflicts; MUTLS's thread tree
// confines cascades to the failing subtree. This harness runs the
// tree-recursion models under both regimes at increasing conflict rates
// and reports the speedup each retains.
#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace mutls;
  using namespace mutls::bench;
  HarnessArgs args = parse_args(argc, argv);
  auto ws = filter(make_workloads(args), {"fft", "matmult", "nqueen", "tsp"});
  const double probs[] = {0.0, 0.01, 0.05, 0.10, 0.20};

  std::printf(
      "ABLATION (simulated, 64 cpus) — tree vs linear mixed-model "
      "cascading: speedup\n");
  std::printf("%-11s %-7s", "benchmark", "model");
  for (double p : probs) std::printf(" %6.0f%%", p * 100);
  std::printf("\n");

  for (BenchWorkload& w : ws) {
    for (bool linear : {false, true}) {
      std::printf("%-11s %-7s", w.name.c_str(), linear ? "linear" : "tree");
      for (double p : probs) {
        sim::Simulator::Options o = sim_opts(64, ForkModel::kMixed, p);
        o.linear_cascade = linear;
        sim::SimModel m = w.sim_model();
        sim::SimResult r = sim::Simulator(o).run(m);
        std::printf(" %6.2f ", r.speedup());
      }
      std::printf("\n");
    }
  }
  std::printf(
      "expected: tree keeps markedly more speedup than linear as the\n"
      "conflict rate grows, because rollbacks stay inside one subtree.\n");
  return 0;
}
