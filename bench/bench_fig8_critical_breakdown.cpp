// Figure 8 — critical path breakdown (work / join / idle / fork / find CPU)
// for fft and md.
//
// Paper shape: almost all critical-path overhead is idle time spent
// synchronizing with speculative threads (waiting for them to validate and
// commit); join/fork/find-CPU are thin slivers.
#include "bench/common.h"

namespace {

void print_breakdown_header(const std::vector<int>& cpus) {
  std::printf("%-11s %-6s %7s %7s %7s %7s %7s\n", "benchmark", "cpus",
              "work%", "join%", "idle%", "fork%", "findcpu%");
  (void)cpus;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mutls;
  using namespace mutls::bench;
  HarnessArgs args = parse_args(argc, argv);
  auto ws = filter(make_workloads(args), {"fft", "md"});

  if (args.measured) {
    std::printf("FIG 8 (measured) — critical path breakdown\n");
    print_breakdown_header(args.measured_cpus);
    for (BenchWorkload& w : ws) {
      for (int n : args.measured_cpus) {
        if (n == 1) continue;
        workloads::SpecRun r = w.spec(n, ForkModel::kMixed, 0.0);
        const TimeLedger& l = r.stats.critical.ledger;
        double tot = static_cast<double>(r.stats.critical.runtime_ns);
        auto pct = [&](TimeCat c) {
          return 100.0 * static_cast<double>(l.get(c)) / tot;
        };
        // The fork column folds arming and the worker handoff together
        // (the paper does not split them; the ledger does).
        std::printf("%-11s %-6d %7.1f %7.1f %7.1f %7.1f %7.1f\n",
                    w.name.c_str(), n, pct(TimeCat::kWork), pct(TimeCat::kJoin),
                    pct(TimeCat::kIdle),
                    pct(TimeCat::kFork) + pct(TimeCat::kForkHandoff),
                    pct(TimeCat::kFindCpu));
      }
    }
  }

  if (args.sim) {
    std::printf("\nFIG 8 (simulated, paper scale) — critical path breakdown\n");
    print_breakdown_header(args.sim_cpus);
    for (BenchWorkload& w : ws) {
      for (int n : args.sim_cpus) {
        sim::SimModel m = w.sim_model();
        sim::SimResult r =
            sim::Simulator(sim_opts(n, ForkModel::kMixed)).run(m);
        double tot = r.critical_time;
        std::printf("%-11s %-6d %7.1f %7.1f %7.1f %7.1f %7.1f\n",
                    w.name.c_str(), n, 100 * r.critical.work / tot,
                    100 * r.critical.join / tot, 100 * r.critical.idle / tot,
                    100 * r.critical.fork / tot,
                    100 * r.critical.find_cpu / tot);
      }
    }
    std::printf("paper: overhead is almost entirely idle time.\n");
  }
  return 0;
}
