// Integration tests of the ThreadManager protocol: CPU pool, flag-based
// barrier, forking-model admission, tree-form synchronize with NOSYNC and
// child adoption (paper IV-D, IV-E, IV-F). Value-parameterized over the
// SpecBuffer backends: the synchronization protocol must be identical no
// matter how speculative memory is buffered.
#include "runtime/thread_manager.h"

#include <gtest/gtest.h>

#include <atomic>

#include "runtime/spec_abort.h"

namespace mutls {
namespace {

ManagerConfig small_config(BufferBackend backend, int cpus = 2) {
  ManagerConfig c;
  c.num_cpus = cpus;
  c.buffer_log2 = 8;
  c.overflow_cap = 64;
  c.buffer_backend = backend;
  return c;
}

class ThreadManagerTest : public ::testing::TestWithParam<BufferBackend> {
 protected:
  ManagerConfig config(int cpus = 2) { return small_config(GetParam(), cpus); }
};

TEST_P(ThreadManagerTest, SpeculateRunsTaskAndCommits) {
  ThreadManager mgr(config());
  alignas(8) static uint64_t x;
  x = 0;
  mgr.register_space(&x, sizeof(x));

  int rank = mgr.speculate(mgr.root(), ForkModel::kMixed, [](ThreadData& td) {
    uint64_t v = 5;
    td.sbuf.store_bytes(reinterpret_cast<uintptr_t>(&x), &v, 8);
  });
  ASSERT_GT(rank, 0);
  ChildRef ref = mgr.root().children.back();
  auto r = mgr.synchronize(mgr.root(), ref);
  EXPECT_EQ(r, ThreadManager::JoinResult::kCommit);
  EXPECT_EQ(x, 5u);
  EXPECT_EQ(mgr.live_threads(), 0);
}

TEST_P(ThreadManagerTest, ConflictCausesRollbackAndNoCommit) {
  ThreadManager mgr(config());
  alignas(8) static uint64_t shared_val, out;
  shared_val = 1;
  out = 0;

  std::atomic<bool> child_read{false};
  int rank = mgr.speculate(mgr.root(), ForkModel::kMixed,
                           [&child_read](ThreadData& td) {
    // Speculative read of shared_val, then dependent write to out.
    uint64_t v;
    td.sbuf.load_bytes(reinterpret_cast<uintptr_t>(&shared_val), &v, 8);
    child_read = true;
    uint64_t w = v * 10;
    td.sbuf.store_bytes(reinterpret_cast<uintptr_t>(&out), &w, 8);
  });
  ASSERT_GT(rank, 0);
  ChildRef ref = mgr.root().children.back();
  // Parent writes shared_val strictly after the speculative read: a
  // guaranteed read conflict.
  while (!child_read) std::this_thread::yield();
  shared_val = 2;
  auto r = mgr.synchronize(mgr.root(), ref);
  EXPECT_EQ(r, ThreadManager::JoinResult::kRollback);
  EXPECT_EQ(out, 0u) << "rolled-back writes must not reach memory";
}

TEST_P(ThreadManagerTest, NoIdleCpuDeniesSpeculation) {
  ThreadManager mgr(config(1));
  std::atomic<bool> release{false};
  int r1 = mgr.speculate(mgr.root(), ForkModel::kMixed, [&](ThreadData&) {
    while (!release.load()) std::this_thread::yield();
  });
  ASSERT_GT(r1, 0);
  int r2 = mgr.speculate(mgr.root(), ForkModel::kMixed, [](ThreadData&) {});
  EXPECT_EQ(r2, 0) << "no IDLE CPU left";
  EXPECT_EQ(mgr.root().stats.fork_denied, 1u);
  release = true;
  mgr.synchronize(mgr.root(), mgr.root().children.back());
}

TEST_P(ThreadManagerTest, CpuSlotIsReusedAfterJoin) {
  ThreadManager mgr(config(1));
  for (int i = 0; i < 5; ++i) {
    int r = mgr.speculate(mgr.root(), ForkModel::kMixed, [](ThreadData&) {});
    ASSERT_EQ(r, 1) << "single CPU must be reclaimed and reused";
    auto jr = mgr.synchronize(mgr.root(), mgr.root().children.back());
    EXPECT_EQ(jr, ThreadManager::JoinResult::kCommit);
  }
  RunStats rs = mgr.collect_stats();
  EXPECT_EQ(rs.speculative_threads, 5u);
}

TEST_P(ThreadManagerTest, SynchronizeStaleRefReturnsNotFound) {
  ThreadManager mgr(config());
  auto r = mgr.synchronize(mgr.root(), ChildRef{1, 123});
  EXPECT_EQ(r, ThreadManager::JoinResult::kNotFound);
}

TEST_P(ThreadManagerTest, ForceRollbackOverridesValidation) {
  // Failed live-in validation (paper IV-G4) forces rollback even though
  // the read-set is clean.
  ThreadManager mgr(config());
  alignas(8) static uint64_t y;
  y = 0;
  int rank = mgr.speculate(mgr.root(), ForkModel::kMixed, [](ThreadData& td) {
    uint64_t v = 9;
    td.sbuf.store_bytes(reinterpret_cast<uintptr_t>(&y), &v, 8);
  });
  ASSERT_GT(rank, 0);
  auto r = mgr.synchronize(mgr.root(), mgr.root().children.back(),
                           /*force_rollback=*/true);
  EXPECT_EQ(r, ThreadManager::JoinResult::kRollback);
  EXPECT_EQ(y, 0u);
}

TEST_P(ThreadManagerTest, DoomedTaskRollsBack) {
  ThreadManager mgr(config());
  int rank = mgr.speculate(mgr.root(), ForkModel::kMixed, [](ThreadData& td) {
    td.sbuf.doom("synthetic doom");
    throw SpecAbort{"synthetic doom"};
  });
  ASSERT_GT(rank, 0);
  auto r = mgr.synchronize(mgr.root(), mgr.root().children.back());
  EXPECT_EQ(r, ThreadManager::JoinResult::kRollback);
}

TEST_P(ThreadManagerTest, UserExceptionDoomsSpeculation) {
  ThreadManager mgr(config());
  int rank = mgr.speculate(mgr.root(), ForkModel::kMixed,
                           [](ThreadData&) { throw 42; });
  ASSERT_GT(rank, 0);
  auto r = mgr.synchronize(mgr.root(), mgr.root().children.back());
  EXPECT_EQ(r, ThreadManager::JoinResult::kRollback);
}

TEST_P(ThreadManagerTest, NonConformingJoinNosyncsMismatchedChildren) {
  // Fork A then B from the root; joining A first violates the mixed-model
  // assumption (later-speculated = logically earlier), so B is NOSYNCed
  // while the search continues to A (paper IV-F).
  ThreadManager mgr(config(2));
  alignas(8) static uint64_t a_out, b_out;
  a_out = b_out = 0;

  int ra = mgr.speculate(mgr.root(), ForkModel::kMixed, [](ThreadData& td) {
    uint64_t v = 1;
    td.sbuf.store_bytes(reinterpret_cast<uintptr_t>(&a_out), &v, 8);
  });
  ASSERT_GT(ra, 0);
  ChildRef ref_a = mgr.root().children.back();
  int rb = mgr.speculate(mgr.root(), ForkModel::kMixed, [](ThreadData& td) {
    uint64_t v = 1;
    td.sbuf.store_bytes(reinterpret_cast<uintptr_t>(&b_out), &v, 8);
  });
  ASSERT_GT(rb, 0);

  auto r = mgr.synchronize(mgr.root(), ref_a);
  EXPECT_EQ(r, ThreadManager::JoinResult::kCommit);
  EXPECT_EQ(a_out, 1u);
  EXPECT_EQ(mgr.root().children.size(), 0u);

  // B self-frees after NOSYNC; wait for the pool to drain.
  while (mgr.live_threads() != 0) std::this_thread::yield();
  EXPECT_EQ(b_out, 0u) << "NOSYNCed child must not commit";
  RunStats rs = mgr.collect_stats();
  EXPECT_EQ(rs.speculative.nosyncs, 1u);
}

TEST_P(ThreadManagerTest, JoinerAdoptsGrandchildren) {
  // A child forks a grandchild and finishes without joining it; the joiner
  // adopts the grandchild (paper IV-F: children are preserved).
  ThreadManager mgr(config(2));
  ThreadManager* m = &mgr;
  int rank = mgr.speculate(mgr.root(), ForkModel::kMixed, [m](ThreadData& td) {
    m->speculate(td, ForkModel::kMixed, [](ThreadData&) {});
  });
  ASSERT_GT(rank, 0);
  ChildRef child_ref = mgr.root().children.back();
  // Wait until the grandchild exists before joining.
  while (mgr.live_threads() != 2) std::this_thread::yield();
  auto r = mgr.synchronize(mgr.root(), child_ref);
  EXPECT_EQ(r, ThreadManager::JoinResult::kCommit);
  ASSERT_EQ(mgr.root().children.size(), 1u) << "grandchild adopted";
  auto r2 = mgr.synchronize(mgr.root(), mgr.root().children.back());
  EXPECT_EQ(r2, ThreadManager::JoinResult::kCommit);
}

TEST_P(ThreadManagerTest, NosyncChildrenAbortsSubtree) {
  ThreadManager mgr(config(2));
  std::atomic<bool> spinning{false};
  int rank = mgr.speculate(mgr.root(), ForkModel::kMixed, [&](ThreadData&) {
    spinning = true;
    // Task body: nothing. The thread parks at its barrier.
  });
  ASSERT_GT(rank, 0);
  while (!spinning) std::this_thread::yield();
  mgr.nosync_children(mgr.root());
  while (mgr.live_threads() != 0) std::this_thread::yield();
  EXPECT_TRUE(mgr.root().children.empty());
  RunStats rs = mgr.collect_stats();
  EXPECT_EQ(rs.speculative.nosyncs, 1u);
}

// --- forking-model admission (paper section II) ---

TEST_P(ThreadManagerTest, OutOfOrderDeniesSpeculativeForkers) {
  ThreadManager mgr(config(2));
  std::atomic<int> child_fork_rank{-1};
  ThreadManager* m = &mgr;
  int rank =
      mgr.speculate(mgr.root(), ForkModel::kOutOfOrder, [&](ThreadData& td) {
        child_fork_rank =
            m->speculate(td, ForkModel::kOutOfOrder, [](ThreadData&) {});
      });
  ASSERT_GT(rank, 0);
  mgr.synchronize(mgr.root(), mgr.root().children.back());
  EXPECT_EQ(child_fork_rank.load(), 0)
      << "out-of-order: speculative threads may not fork";
}

TEST_P(ThreadManagerTest, InOrderAllowsOnlyMostSpeculativeThread) {
  ThreadManager mgr(config(3));
  std::atomic<int> child_fork_rank{-1};
  std::atomic<bool> child_forked{false};
  ThreadManager* m = &mgr;
  int rank =
      mgr.speculate(mgr.root(), ForkModel::kInOrder, [&](ThreadData& td) {
        // This thread is the most speculative: it may extend the chain.
        child_fork_rank =
            m->speculate(td, ForkModel::kInOrder, [](ThreadData&) {});
        child_forked = true;
        if (child_fork_rank > 0) {
          m->synchronize(td, td.children.back());
        }
      });
  ASSERT_GT(rank, 0);
  while (!child_forked) std::this_thread::yield();
  // Root is no longer the most speculative thread: denied.
  EXPECT_EQ(mgr.speculate(mgr.root(), ForkModel::kInOrder, [](ThreadData&) {}),
            0);
  EXPECT_GT(child_fork_rank.load(), 0)
      << "in-order: the chain tail may fork";
  mgr.synchronize(mgr.root(), mgr.root().children.back());
}

TEST_P(ThreadManagerTest, InOrderRootMayForkWhenNoLiveThreads) {
  ThreadManager mgr(config(2));
  int r = mgr.speculate(mgr.root(), ForkModel::kInOrder, [](ThreadData&) {});
  EXPECT_GT(r, 0);
  mgr.synchronize(mgr.root(), mgr.root().children.back());
  // After the chain drains, the root may start a new chain.
  int r2 = mgr.speculate(mgr.root(), ForkModel::kInOrder, [](ThreadData&) {});
  EXPECT_GT(r2, 0);
  mgr.synchronize(mgr.root(), mgr.root().children.back());
}

TEST_P(ThreadManagerTest, ModelOverrideForcesPolicy) {
  ManagerConfig c = config(2);
  c.model_override = ForkModel::kOutOfOrder;
  ThreadManager mgr(c);
  std::atomic<int> child_fork_rank{-1};
  ThreadManager* m = &mgr;
  // Fork point says mixed, but the override downgrades to out-of-order.
  int rank = mgr.speculate(mgr.root(), ForkModel::kMixed, [&](ThreadData& td) {
    child_fork_rank = m->speculate(td, ForkModel::kMixed, [](ThreadData&) {});
  });
  ASSERT_GT(rank, 0);
  mgr.synchronize(mgr.root(), mgr.root().children.back());
  EXPECT_EQ(child_fork_rank.load(), 0);
}

TEST_P(ThreadManagerTest, AdmissionAllowsQueries) {
  ThreadManager mgr(config(2));
  EXPECT_TRUE(mgr.admission_allows(mgr.root(), ForkModel::kMixed));
  EXPECT_TRUE(mgr.admission_allows(mgr.root(), ForkModel::kInOrder));
  EXPECT_TRUE(mgr.admission_allows(mgr.root(), ForkModel::kOutOfOrder));
}

// --- rollback injection (paper Fig. 11) ---

TEST_P(ThreadManagerTest, RollbackInjectionProbabilityOne) {
  ManagerConfig c = config(2);
  c.rollback_probability = 1.0;
  ThreadManager mgr(c);
  alignas(8) static uint64_t z;
  z = 0;
  int rank = mgr.speculate(mgr.root(), ForkModel::kMixed, [](ThreadData& td) {
    uint64_t v = 1;
    td.sbuf.store_bytes(reinterpret_cast<uintptr_t>(&z), &v, 8);
  });
  ASSERT_GT(rank, 0);
  auto r = mgr.synchronize(mgr.root(), mgr.root().children.back());
  EXPECT_EQ(r, ThreadManager::JoinResult::kRollback);
  EXPECT_EQ(z, 0u);
}

TEST_P(ThreadManagerTest, RollbackInjectionIsDeterministicPerSeed) {
  auto run_once = [this](uint64_t seed) {
    ManagerConfig c = config(1);
    c.rollback_probability = 0.5;
    c.seed = seed;
    ThreadManager mgr(c);
    std::vector<bool> outcomes;
    for (int i = 0; i < 16; ++i) {
      int r = mgr.speculate(mgr.root(), ForkModel::kMixed, [](ThreadData&) {});
      EXPECT_GT(r, 0);
      outcomes.push_back(mgr.synchronize(mgr.root(),
                                         mgr.root().children.back()) ==
                         ThreadManager::JoinResult::kCommit);
    }
    return outcomes;
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), run_once(8));
}

// --- statistics plumbing ---

TEST_P(ThreadManagerTest, StatsAggregateAcrossThreads) {
  ThreadManager mgr(config(2));
  mgr.begin_run();
  alignas(8) static uint64_t w;
  w = 0;
  int rank = mgr.speculate(mgr.root(), ForkModel::kMixed, [](ThreadData& td) {
    uint64_t v;
    td.sbuf.load_bytes(reinterpret_cast<uintptr_t>(&w), &v, 8);
    ++td.stats.loads;
  });
  ASSERT_GT(rank, 0);
  mgr.synchronize(mgr.root(), mgr.root().children.back());
  mgr.end_run();
  RunStats rs = mgr.collect_stats();
  EXPECT_EQ(rs.speculative_threads, 1u);
  EXPECT_EQ(rs.speculative.commits, 1u);
  EXPECT_EQ(rs.speculative.loads, 1u);
  EXPECT_EQ(rs.critical.forks, 1u);
  EXPECT_GT(rs.critical.runtime_ns, 0u);
  EXPECT_GT(rs.speculative.runtime_ns, 0u);
  EXPECT_GE(rs.coverage(), 0.0);
  // The one buffered load was probed and its read-set word validated.
  EXPECT_GE(rs.speculative.buffer.probe_ops, 1u);
  EXPECT_EQ(rs.speculative.buffer.validated_words, 1u);
}

TEST_P(ThreadManagerTest, BufferCountersDoNotLeakAcrossSpeculations) {
  // A slot's next speculation must not re-report its predecessors' buffer
  // events (regression guarded for overflow_events since PR 1; now covers
  // the whole SpecBufferStats set).
  ManagerConfig c = config(1);
  c.buffer_log2 = 4;  // tiny: every speculation stresses capacity
  c.overflow_cap = 4;
  ThreadManager mgr(c);
  alignas(8) static uint64_t arena[128];
  mgr.begin_run();
  for (int round = 0; round < 3; ++round) {
    int r = mgr.speculate(mgr.root(), ForkModel::kMixed, [](ThreadData& td) {
      for (int i = 0; i < 64; ++i) {
        uint64_t v = 1;
        td.sbuf.store_bytes(reinterpret_cast<uintptr_t>(&arena[i]), &v, 8);
        if (td.sbuf.doomed()) return;  // static-hash dooms, by design
      }
    });
    ASSERT_GT(r, 0);
    mgr.synchronize(mgr.root(), mgr.root().children.back());
  }
  mgr.end_run();
  RunStats rs = mgr.collect_stats();
  if (GetParam() == BufferBackend::kStaticHash) {
    // Exactly one exhaustion doom per round, not a growing resurvey.
    EXPECT_EQ(rs.speculative.buffer.overflow_events, 3u);
    EXPECT_EQ(rs.speculative.buffer.resize_events, 0u);
    EXPECT_EQ(rs.speculative.rollbacks, 3u);
  } else {
    // The growable log absorbs the same pattern with resizes and commits.
    EXPECT_EQ(rs.speculative.buffer.overflow_events, 0u);
    EXPECT_GT(rs.speculative.buffer.resize_events, 0u);
    EXPECT_EQ(rs.speculative.commits, 3u);
  }
}

TEST_P(ThreadManagerTest, IdleFreelistSurvivesForkJoinChurn) {
  // Hammers the lock-free idle-rank freelist and the spin-then-park
  // handoff: speculative tasks fork grandchildren concurrently with the
  // root forking new children, so claims and releases interleave from
  // several threads. Every claim must yield a distinct rank, the pool must
  // deny exactly when empty, and every rank must return to the freelist
  // (under TSan this is the data-race probe for pop_idle/push_idle).
  ThreadManager mgr(config(3));
  alignas(8) static std::atomic<uint64_t> touched;
  touched = 0;
  for (int round = 0; round < 200; ++round) {
    int r1 = mgr.speculate(mgr.root(), ForkModel::kMixed, [&](ThreadData& td) {
      // Child claims (and possibly exhausts) another slot concurrently.
      int g = mgr.speculate(td, ForkModel::kMixed,
                            [&](ThreadData&) { touched.fetch_add(1); });
      if (g != 0) {
        mgr.synchronize(td, td.children.back());
      }
      touched.fetch_add(1);
    });
    ASSERT_GT(r1, 0) << "round " << round << ": pool lost a rank";
    int r2 = mgr.speculate(mgr.root(), ForkModel::kMixed,
                           [&](ThreadData&) { touched.fetch_add(1); });
    if (r2 != 0) {
      EXPECT_NE(r1, r2) << "freelist handed out the same rank twice";
      // Join in LIFO order (mixed-model children stack).
      EXPECT_NE(mgr.synchronize(mgr.root(), mgr.root().children.back()),
                ThreadManager::JoinResult::kNotFound);
    }
    EXPECT_NE(mgr.synchronize(mgr.root(), mgr.root().children.back()),
              ThreadManager::JoinResult::kNotFound);
    ASSERT_EQ(mgr.live_threads(), 0) << "round " << round;
  }
  EXPECT_GT(touched.load(), 200u);
}

TEST_P(ThreadManagerTest, ForkLatencyLedgerSplitsArmAndHandoff) {
  ThreadManager mgr(config(1));
  int r = mgr.speculate(mgr.root(), ForkModel::kMixed, [](ThreadData&) {});
  ASSERT_GT(r, 0);
  mgr.synchronize(mgr.root(), mgr.root().children.back());
  const TimeLedger& l = mgr.root().stats.ledger;
  // Arming always takes measurable time; the handoff category must be
  // populated (possibly 0ns on a coarse clock, but accounted — the sum of
  // categories is what fig8 folds into its fork column).
  EXPECT_GT(l.get(TimeCat::kFork) + l.get(TimeCat::kForkHandoff) +
                l.get(TimeCat::kFindCpu),
            0u);
}

TEST_P(ThreadManagerTest, ResetStatsClears) {
  ThreadManager mgr(config(1));
  int r = mgr.speculate(mgr.root(), ForkModel::kMixed, [](ThreadData&) {});
  ASSERT_GT(r, 0);
  mgr.synchronize(mgr.root(), mgr.root().children.back());
  mgr.reset_stats();
  RunStats rs = mgr.collect_stats();
  EXPECT_EQ(rs.speculative_threads, 0u);
  EXPECT_EQ(rs.critical.forks, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, ThreadManagerTest,
    ::testing::Values(BufferBackend::kStaticHash, BufferBackend::kGrowableLog),
    [](const ::testing::TestParamInfo<BufferBackend>& info) {
      return info.param == BufferBackend::kStaticHash
                 ? std::string("StaticHash")
                 : std::string("GrowableLog");
    });

}  // namespace
}  // namespace mutls
