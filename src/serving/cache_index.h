// Shared, speculation-visible cache index for the serving subsystem.
//
// An open-addressed hash index mapping cache keys to {hit count, freshness
// epoch, byte size} — the metadata a web cache touches on every request
// (squid/lusca keep exactly this triple hot in StoreEntry). The slot array
// is registered runtime memory, and the speculative accessors route every
// word through `Ctx`, so two speculative handlers touching the same key
// conflict through the buffer map exactly like a real shared cache: GETs
// are read-mostly but bump the hit count (a write!), PUTs insert or evict.
// Zipf-skewed traffic concentrates keys and therefore conflicts — the knob
// the sustained-load bench sweeps.
//
// Probe/update logic is one template over a word accessor; the sequential
// reference (`*_seq`) and the routed speculative path instantiate the same
// code, so their decisions (probe order, eviction victim) are identical by
// construction and seq/spec checksum equality is a real invariant, not a
// hope.
#pragma once

#include <cstdint>
#include <vector>

#include "api/ctx.h"
#include "support/check.h"

namespace mutls {
class Runtime;
}

namespace mutls::serving {

class CacheIndex {
 public:
  // Linear-probe window: a key lives within kProbeWindow slots of its home
  // slot or not at all. A full window evicts the coldest entry in it
  // (second pass over the hit counts), which keeps the speculative
  // read/write footprint of one request bounded.
  static constexpr size_t kProbeWindow = 16;
  // Slot layout: 4 words per entry.
  static constexpr size_t kWordsPerEntry = 4;
  static constexpr size_t kKeyWord = 0;
  static constexpr size_t kHitsWord = 1;
  static constexpr size_t kEpochWord = 2;
  static constexpr size_t kSizeWord = 3;
  // Key word 0 marks an empty slot; client keys must be nonzero.
  static constexpr uint64_t kEmptyKey = 0;

  // Speculation-visible index: the slot array is registered with `rt` for
  // the object's lifetime.
  CacheIndex(Runtime& rt, size_t capacity_log2);
  // Sequential-only index (no registration): for the seq reference run and
  // parser-free unit tests. Only the *_seq accessors may be used.
  explicit CacheIndex(size_t capacity_log2);
  ~CacheIndex();

  CacheIndex(const CacheIndex&) = delete;
  CacheIndex& operator=(const CacheIndex&) = delete;

  struct GetResult {
    bool hit = false;
    uint64_t byte_size = 0;
  };

  // Looks `key` up; on a hit, bumps the entry's hit count (the write that
  // makes even a read-mostly workload conflict under speculation).
  GetResult get(Ctx& ctx, uint64_t key) {
    return get_impl(RoutedAcc{ctx, slots_.data()}, key);
  }
  GetResult get_seq(uint64_t key) {
    return get_impl(DirectAcc{slots_.data()}, key);
  }

  // Inserts or refreshes `key` with the given size and freshness epoch.
  // Returns true when an existing (different) entry was evicted for it.
  bool put(Ctx& ctx, uint64_t key, uint64_t byte_size, uint64_t epoch) {
    return put_impl(RoutedAcc{ctx, slots_.data()}, key, byte_size, epoch);
  }
  bool put_seq(uint64_t key, uint64_t byte_size, uint64_t epoch) {
    return put_impl(DirectAcc{slots_.data()}, key, byte_size, epoch);
  }

  size_t capacity() const { return capacity_; }
  // Occupied slots (direct scan; call outside runs).
  size_t live_entries() const;
  // Order-independent-free content digest (direct scan; call outside runs).
  // Equal checksums mean bit-identical slot arrays.
  uint64_t checksum() const;
  void clear();

  // Home-slot hash (splitmix64 finalizer).
  static uint64_t hash_key(uint64_t key) {
    uint64_t z = key + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  // Word accessors the probe templates are instantiated over. Indices are
  // words into the flat slot array.
  struct DirectAcc {
    uint64_t* base;
    uint64_t load(size_t w) const { return base[w]; }
    void store(size_t w, uint64_t v) const { base[w] = v; }
  };
  struct RoutedAcc {
    Ctx& ctx;
    uint64_t* base;
    uint64_t load(size_t w) const { return ctx.load(base + w); }
    void store(size_t w, uint64_t v) const { ctx.store(base + w, v); }
  };

  size_t home_slot(uint64_t key) const {
    return static_cast<size_t>(hash_key(key)) & mask_;
  }
  size_t slot_word(size_t slot, size_t field) const {
    return slot * kWordsPerEntry + field;
  }

  template <typename Acc>
  GetResult get_impl(Acc acc, uint64_t key) {
    MUTLS_DCHECK(key != kEmptyKey, "cache keys must be nonzero");
    size_t home = home_slot(key);
    for (size_t i = 0; i < kProbeWindow; ++i) {
      size_t slot = (home + i) & mask_;
      uint64_t k = acc.load(slot_word(slot, kKeyWord));
      if (k == key) {
        size_t hits_w = slot_word(slot, kHitsWord);
        acc.store(hits_w, acc.load(hits_w) + 1);
        return GetResult{true, acc.load(slot_word(slot, kSizeWord))};
      }
      // Inserts take the first empty slot in the window, so an empty slot
      // here proves the key is absent.
      if (k == kEmptyKey) break;
    }
    return GetResult{};
  }

  template <typename Acc>
  bool put_impl(Acc acc, uint64_t key, uint64_t byte_size, uint64_t epoch) {
    MUTLS_DCHECK(key != kEmptyKey, "cache keys must be nonzero");
    size_t home = home_slot(key);
    for (size_t i = 0; i < kProbeWindow; ++i) {
      size_t slot = (home + i) & mask_;
      uint64_t k = acc.load(slot_word(slot, kKeyWord));
      if (k == key) {  // refresh in place, hit count survives
        acc.store(slot_word(slot, kEpochWord), epoch);
        acc.store(slot_word(slot, kSizeWord), byte_size);
        return false;
      }
      if (k == kEmptyKey) {
        acc.store(slot_word(slot, kKeyWord), key);
        acc.store(slot_word(slot, kHitsWord), 0);
        acc.store(slot_word(slot, kEpochWord), epoch);
        acc.store(slot_word(slot, kSizeWord), byte_size);
        return false;
      }
    }
    // Window full of other keys: evict the coldest (lowest hit count,
    // lowest probe index on ties — deterministic, so seq and spec pick the
    // same victim).
    size_t victim = home & mask_;
    uint64_t victim_hits = UINT64_MAX;
    for (size_t i = 0; i < kProbeWindow; ++i) {
      size_t slot = (home + i) & mask_;
      uint64_t hits = acc.load(slot_word(slot, kHitsWord));
      if (hits < victim_hits) {
        victim_hits = hits;
        victim = slot;
      }
    }
    acc.store(slot_word(victim, kKeyWord), key);
    acc.store(slot_word(victim, kHitsWord), 0);
    acc.store(slot_word(victim, kEpochWord), epoch);
    acc.store(slot_word(victim, kSizeWord), byte_size);
    return true;
  }

  Runtime* rt_;  // null for the sequential-only variant
  size_t capacity_;
  size_t mask_;
  std::vector<uint64_t> slots_;
};

}  // namespace mutls::serving
