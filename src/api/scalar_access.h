// Relaxed-atomic scalar access used by the non-speculative thread.
//
// Non-speculative direct accesses can race (benignly, by TLS construction)
// with speculative first-touch reads and validation reads of the same
// locations; commits are likewise relaxed atomics. Routing the direct path
// through relaxed atomics keeps the whole protocol free of C++ data races
// while compiling to plain loads/stores on every mainstream ISA.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace mutls {

template <size_t N>
struct UintFor;
template <>
struct UintFor<1> { using type = uint8_t; };
template <>
struct UintFor<2> { using type = uint16_t; };
template <>
struct UintFor<4> { using type = uint32_t; };
template <>
struct UintFor<8> { using type = uint64_t; };

template <typename T>
constexpr bool kScalarAtomicable =
    std::is_trivially_copyable_v<T> &&
    (sizeof(T) == 1 || sizeof(T) == 2 || sizeof(T) == 4 || sizeof(T) == 8);

template <typename T>
T relaxed_load_scalar(const T* p) {
  static_assert(std::is_trivially_copyable_v<T>);
  if constexpr (kScalarAtomicable<T>) {
    using U = typename UintFor<sizeof(T)>::type;
    U u = __atomic_load_n(reinterpret_cast<const U*>(p), __ATOMIC_RELAXED);
    return std::bit_cast<T>(u);
  } else {
    // Oversized types go byte-by-byte; torn values are caught by validation.
    T out;
    auto* dst = reinterpret_cast<uint8_t*>(&out);
    auto* src = reinterpret_cast<const uint8_t*>(p);
    for (size_t i = 0; i < sizeof(T); ++i) {
      dst[i] = __atomic_load_n(src + i, __ATOMIC_RELAXED);
    }
    return out;
  }
}

// Widest relaxed-atomic unit (power of two, <= 8) usable at `addr` for the
// next `left` bytes. Decomposing a run this way moves the interior as whole
// words and any head/tail fragment at its natural alignment — so an element
// of a naturally-aligned array is always covered by a single atomic op and
// can never tear against concurrent element-sized accesses.
inline size_t relaxed_unit(uintptr_t addr, size_t left) {
  size_t s = addr & (~addr + 1);  // lowest set bit = address alignment
  if (s == 0 || s > 8) s = 8;
  while (s > left) s >>= 1;
  return s;
}

// Relaxed copy out of shared memory for accesses whose size is only known
// at runtime (live-in prediction validation, bulk loads). A value torn
// across units is acceptable: it differs from the predicted/observed value
// and simply forces a rollback.
inline void relaxed_load_bytes(const void* p, void* out, size_t n) {
  uintptr_t a = reinterpret_cast<uintptr_t>(p);
  auto* dst = static_cast<uint8_t*>(out);
  while (n > 0) {
    size_t s = relaxed_unit(a, n);
    switch (s) {
      case 8: {
        uint64_t v = __atomic_load_n(reinterpret_cast<const uint64_t*>(a),
                                     __ATOMIC_RELAXED);
        std::memcpy(dst, &v, 8);
        break;
      }
      case 4: {
        uint32_t v = __atomic_load_n(reinterpret_cast<const uint32_t*>(a),
                                     __ATOMIC_RELAXED);
        std::memcpy(dst, &v, 4);
        break;
      }
      case 2: {
        uint16_t v = __atomic_load_n(reinterpret_cast<const uint16_t*>(a),
                                     __ATOMIC_RELAXED);
        std::memcpy(dst, &v, 2);
        break;
      }
      default:
        *dst = __atomic_load_n(reinterpret_cast<const uint8_t*>(a),
                               __ATOMIC_RELAXED);
        break;
    }
    a += s;
    dst += s;
    n -= s;
  }
}

// Relaxed copy into shared memory (non-speculative bulk stores), same unit
// decomposition.
inline void relaxed_store_bytes(void* p, const void* src, size_t n) {
  uintptr_t a = reinterpret_cast<uintptr_t>(p);
  const auto* s8 = static_cast<const uint8_t*>(src);
  while (n > 0) {
    size_t s = relaxed_unit(a, n);
    switch (s) {
      case 8: {
        uint64_t v;
        std::memcpy(&v, s8, 8);
        __atomic_store_n(reinterpret_cast<uint64_t*>(a), v, __ATOMIC_RELAXED);
        break;
      }
      case 4: {
        uint32_t v;
        std::memcpy(&v, s8, 4);
        __atomic_store_n(reinterpret_cast<uint32_t*>(a), v, __ATOMIC_RELAXED);
        break;
      }
      case 2: {
        uint16_t v;
        std::memcpy(&v, s8, 2);
        __atomic_store_n(reinterpret_cast<uint16_t*>(a), v, __ATOMIC_RELAXED);
        break;
      }
      default:
        __atomic_store_n(reinterpret_cast<uint8_t*>(a), *s8,
                         __ATOMIC_RELAXED);
        break;
    }
    a += s;
    s8 += s;
    n -= s;
  }
}

template <typename T>
void relaxed_store_scalar(T* p, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  if constexpr (kScalarAtomicable<T>) {
    using U = typename UintFor<sizeof(T)>::type;
    __atomic_store_n(reinterpret_cast<U*>(p), std::bit_cast<U>(v),
                     __ATOMIC_RELAXED);
  } else {
    auto* dst = reinterpret_cast<uint8_t*>(p);
    auto* src = reinterpret_cast<const uint8_t*>(&v);
    for (size_t i = 0; i < sizeof(T); ++i) {
      __atomic_store_n(dst + i, src[i], __ATOMIC_RELAXED);
    }
  }
}

}  // namespace mutls
