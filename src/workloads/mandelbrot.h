// Mandelbrot fractal generation — Table II row 2.
//
// Renders escape-iteration counts for a width x height window of the
// complex plane. Loop pattern, computation-intensive: per pixel the inner
// loop runs up to max_iter iterations with a single shared write at the
// end. Paper size: 512x512, max 80000 iterations.
#pragma once

#include "workloads/workload.h"

namespace mutls::workloads {

struct Mandelbrot {
  struct Params {
    int width = 256;
    int height = 256;
    int max_iter = 2000;
    int chunks = 64;
    double x0 = -2.0, x1 = 0.5, y0 = -1.25, y1 = 1.25;
  };

  static constexpr const char* kName = "mandelbrot";
  static constexpr Pattern kPattern = Pattern::kLoop;

  static int escape_iters(double cr, double ci, int max_iter) {
    double zr = 0.0, zi = 0.0;
    int it = 0;
    while (it < max_iter && zr * zr + zi * zi <= 4.0) {
      double nzr = zr * zr - zi * zi + cr;
      zi = 2.0 * zr * zi + ci;
      zr = nzr;
      ++it;
    }
    return it;
  }

  static SeqRun run_seq(const Params& p);
  static SpecRun run_spec(Runtime& rt, const Params& p, ForkModel model);
};

}  // namespace mutls::workloads
