// Figure 7 — power efficiency eta_power = Ts / (Truntime_nonsp + sum
// Truntime_sp) versus CPU count, plus the parallel execution coverage
// C = sum(Truntime_sp) / Truntime_nonsp quoted in the text (23.1 to 60.7).
//
// Paper reference at 64 cores: compute-intensive 60-76%; nqueen 15%,
// tsp 14%, bh 10%, fft 8.4%, matmult 5.3%.
#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace mutls;
  using namespace mutls::bench;
  HarnessArgs args = parse_args(argc, argv);
  auto ws = make_workloads(args);

  if (args.measured) {
    std::printf("FIG 7 (measured) — power efficiency (and coverage C)\n");
    std::printf("%-11s %-6s %-10s %-10s\n", "benchmark", "cpus", "eta_power",
                "coverage");
    for (BenchWorkload& w : ws) {
      workloads::SeqRun seq = w.seq();
      for (int n : args.measured_cpus) {
        if (n == 1) continue;
        workloads::SpecRun r = w.spec(n, ForkModel::kMixed, 0.0);
        check_checksum(w, r.checksum, seq.checksum);
        std::printf("%-11s %-6d %-10.3f %-10.2f\n", w.name.c_str(), n,
                    r.stats.power_efficiency(
                        static_cast<uint64_t>(seq.seconds * 1e9)),
                    r.stats.coverage());
      }
    }
  }

  if (args.sim) {
    std::printf("\nFIG 7 (simulated, paper scale) — power efficiency\n");
    std::printf("%-11s", "benchmark");
    for (int n : args.sim_cpus) std::printf(" %6d", n);
    std::printf("   C@64\n");
    for (BenchWorkload& w : ws) {
      std::printf("%-11s", w.name.c_str());
      double cov64 = 0;
      for (int n : args.sim_cpus) {
        sim::SimModel m = w.sim_model();
        sim::SimResult r =
            sim::Simulator(sim_opts(n, ForkModel::kMixed)).run(m);
        std::printf(" %6.3f", r.power_efficiency());
        if (n == 64) cov64 = r.coverage();
      }
      std::printf(" %6.1f\n", cov64);
    }
    std::printf(
        "paper@64: compute 60-76%%; nqueen 15%%, tsp 14%%, bh 10%%, fft "
        "8.4%%, matmult 5.3%%; coverage 23.1-60.7\n");
  }
  return 0;
}
