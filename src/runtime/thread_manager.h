// The ThreadManager (paper section IV-B): owns one ThreadData, SpecBuffer
// and LocalBuffer per virtual CPU, launches speculative threads at fork
// points, and implements the tree-form mixed-model synchronization of
// section IV-F, including NOSYNC of non-conforming children and adoption of
// a joined child's children.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/enums.h"
#include "runtime/stats.h"
#include "runtime/thread_data.h"
#include "support/function_ref.h"
#include "support/inline_task.h"
#include "support/interval_set.h"
#include "support/timing.h"
#include "support/topology.h"

namespace mutls {

struct ManagerConfig {
  // Number of virtual CPUs available for speculative threads (the paper's
  // rank range 1..N). The non-speculative thread is extra.
  int num_cpus = 4;

  // log2 of the entry count of each read/write set (paper IV-G2). For the
  // growable-log backend this is the *initial* capacity.
  int buffer_log2 = 16;

  // Capacity of the temporary (overflow) buffer per set (static-hash
  // backend only; the growable-log backend resizes instead).
  size_t overflow_cap = 4096;

  // Speculative-buffer backend for every virtual CPU (see BufferBackend in
  // "runtime/enums.h"): the paper's static hash with overflow-doom, the
  // growable log that resizes under capacity pressure, or the adaptive
  // per-slot selection between the two.
  BufferBackend buffer_backend = BufferBackend::kStaticHash;

  // kAdaptive knobs (ignored by the other backends); see
  // SpecBuffer::AdaptivePolicy. A slot flips to the growable log once its
  // cumulative overflow events reach the threshold, and flips back after
  // this many consecutive calm speculations.
  uint64_t adaptive_overflow_threshold = 4;
  uint64_t adaptive_calm_hysteresis = 16;

  // Value-prediction knobs (any backend; see SpecBuffer::PredictPolicy
  // in "runtime/value_predictor.h"). Off by default: speculative reads
  // observe memory and every conflict rolls back, exactly as before.
  // Enabled, a per-slot last-value/stride predictor — trained at settle
  // from the final values of conflicting read-set words — lets confident
  // first-touch reads adopt the predicted settled value, turning a
  // would-be rollback into a validated commit (counted as
  // saved_rollbacks); mispredicts ride the ordinary doom path.
  bool predict_enabled = false;
  uint32_t predict_confidence_threshold = 2;
  uint64_t predict_stride_window = 1u << 16;
  int predict_table_log2 = 8;

  // RegisterBuffer slots per frame (paper IV-G3).
  int register_slots = 256;

  // Rollback injection probability per speculative thread (paper Fig. 11).
  double rollback_probability = 0.0;

  // Seed for deterministic injection decisions.
  uint64_t seed = 0x5eed;

  // When set, overrides the model of every fork point (paper Fig. 10
  // compares in-order / out-of-order / mixed this way).
  std::optional<ForkModel> model_override;

  // How long a discard handshake waits for the discarded task (and its
  // subtree) to settle before declaring a protocol violation. Tasks are
  // expected to reach a check point or barrier well within this window;
  // raise it for workloads with genuinely long check-point-free stretches.
  // 0 waits forever.
  uint64_t discard_settle_timeout_ns = 30'000'000'000ull;

  // Iterations a worker spins on the handoff flag before parking on its
  // condvar. 0 (the default) calibrates at first manager construction: a
  // one-shot probe times the spin primitive on this machine and sizes the
  // budget to ~4µs of spinning — long enough that a forker running ahead
  // of its workers never pays a futex wakeup, short enough that an idle
  // pool is off the scheduler within microseconds regardless of how the
  // host implements cpu_relax (pause vs yield changes the per-iteration
  // cost by orders of magnitude, which is why a fixed count was wrong).
  // On a multi-node box the probe runs once per NUMA node, pinned to a
  // CPU of that node; an explicit value applies to every node verbatim.
  int handoff_spin_budget = 0;

  // NUMA node count override. 0 (the default) probes the machine topology
  // (sysfs; portable single-node fallback — see support/topology.h); a
  // positive value fakes that many nodes, which is how tests exercise the
  // per-node freelists and the sharded backend on a single-node box.
  int numa_nodes = 0;

  // kNumaSharded only: log2 of the contiguous byte range one shard covers
  // before the address-range mapping advances to the next node's shard
  // (see SpecNumaPolicy::region_log2).
  int numa_shard_region_log2 = 12;
};

// The one mapping from an embedding's options struct (Runtime::Options,
// interp::Interpreter::Options, ...) to a ManagerConfig. Kept here, next
// to ManagerConfig, so a new common field is threaded through exactly one
// place instead of drifting across per-embedding copies.
template <typename Opts>
ManagerConfig manager_config_from(const Opts& opt, int register_slots) {
  ManagerConfig c;
  c.num_cpus = opt.num_cpus;
  c.buffer_log2 = opt.buffer_log2;
  c.overflow_cap = opt.overflow_cap;
  c.buffer_backend = opt.buffer_backend;
  c.adaptive_overflow_threshold = opt.adaptive_overflow_threshold;
  c.adaptive_calm_hysteresis = opt.adaptive_calm_hysteresis;
  c.predict_enabled = opt.predict_enabled;
  c.predict_confidence_threshold = opt.predict_confidence_threshold;
  c.predict_stride_window = opt.predict_stride_window;
  c.predict_table_log2 = opt.predict_table_log2;
  c.register_slots = register_slots;
  c.rollback_probability = opt.rollback_probability;
  c.seed = opt.seed;
  c.model_override = opt.model_override;
  c.handoff_spin_budget = opt.handoff_spin_budget;
  c.numa_nodes = opt.numa_nodes;
  c.numa_shard_region_log2 = opt.numa_shard_region_log2;
  return c;
}

// The handoff spin budget a manager with this config will run with: the
// explicit value, or the memoized calibration probe's (see
// ManagerConfig::handoff_spin_budget). Exposed for tests and diagnostics.
int resolve_handoff_spin_budget(int configured);

// Per-node variant: the explicit value verbatim, or the memoized per-node
// probe — pinned to a CPU of `node` when the topology is real (probed),
// so each node's budget reflects its own spin-iteration latency. Fake and
// fallback topologies calibrate unpinned (the CPU ids are synthetic).
int resolve_handoff_spin_budget(int configured, const Topology& topo,
                                int node);

class ThreadManager {
 public:
  // Owning task storage of a virtual-CPU slot: 128 bytes inline, arena
  // spill past that — never the global heap after warm-up (the
  // zero-allocation steady-state invariant).
  using Task = InlineTask<void(ThreadData&)>;

  explicit ThreadManager(const ManagerConfig& config);
  ~ThreadManager();

  ThreadManager(const ThreadManager&) = delete;
  ThreadManager& operator=(const ThreadManager&) = delete;

  // ThreadData of the non-speculative thread (rank 0).
  ThreadData& root() { return root_; }

  // MUTLS_get_CPU + MUTLS_speculate: applies the forking-model admission
  // policy, claims an IDLE virtual CPU, arms its ThreadData and launches
  // `task` on it. Returns the child rank, or 0 when speculation is denied
  // (no IDLE CPU or model admission failed) — the caller then simply
  // continues sequentially, as in the paper. `setup`, when given, runs on
  // the forker between arming and launching: this is where the proxy
  // function stores live-in register/stack variables into the child's
  // LocalBuffer (paper IV-D step (2)); it is invoked synchronously, so a
  // non-owning FunctionRef suffices.
  //
  // A template so the caller's closure moves straight into the claimed
  // slot's Task storage — inline for small captures, the slot's arena for
  // large ones — with no intermediate type-erased heap copy. On denial the
  // closure is never stored at all.
  template <typename TaskF>
  int speculate(ThreadData& forker, ForkModel model, TaskF&& task,
                FunctionRef<void(ThreadData&)> setup = {}) {
    uint64_t t0 = now_ns();
    int rank = admit_and_claim(forker, model);
    forker.stats.ledger.add(TimeCat::kFindCpu, now_ns() - t0);
    if (rank == 0) {
      ++forker.stats.fork_denied;
      return 0;
    }
    uint64_t t1 = now_ns();
    Cpu& c = arm_cpu(rank, forker);
    if (setup) setup(c.data);
    ++forker.stats.forks;
    uint64_t t2 = now_ns();
    forker.stats.ledger.add(TimeCat::kFork, t2 - t1);
    // Emplaced only after the claim, spilling (if at all) into the *child*
    // slot's just-rearmed arena: between claim and handoff the slot has a
    // single owner, and the worker destroys the task before the slot
    // settles, so a spilled closure never outlives its epoch.
    c.task.emplace(std::forward<TaskF>(task), &c.data.arena);
    publish_task(c);
    forker.stats.ledger.add(TimeCat::kForkHandoff, now_ns() - t2);
    return rank;
  }

  enum class JoinResult { kCommit, kRollback, kNotFound };

  // MUTLS_synchronize: scans `joiner.children` down to `expect`,
  // NOSYNC-ing mismatched children stacked above it (non-conforming
  // mixed-model usage); performs the flag-based barrier with the child;
  // adopts the child's children either way; reclaims the CPU. The
  // conforming case — joining the most recent fork — touches no container
  // at all. `force_rollback` communicates a failed live-in validation.
  // `out_tag`, when non-null, receives the child's user_tag (see
  // ThreadData) so adopted children can be re-executed after rollback.
  // `on_settled` is invoked synchronously before the child's slot is
  // reclaimed (a non-owning FunctionRef, like `setup`).
  JoinResult synchronize(ThreadData& joiner, ChildRef expect,
                         bool force_rollback = false,
                         uint64_t* out_tag = nullptr,
                         FunctionRef<void(ThreadData&)> on_settled = {});

  // Aborts the remaining subtree of `td` down to `keep` children (used when
  // a speculative task unwinds without joining its children, and for
  // in-order chain cascades: cascading rollback stays within the subtree).
  // Blocks until every discarded speculation has settled: on return none of
  // the discarded tasks is still executing, so closures capturing the
  // caller's stack frame are safe to destroy.
  void nosync_children(ThreadData& td, size_t keep = 0);

  // Address-space registration (paper IV-G1).
  void register_space(const void* p, size_t n);
  void unregister_space(const void* p, size_t n);
  bool space_contains(const void* p, size_t n) const;
  const IntervalSet& address_space() const { return space_; }

  // Bumped on every unregistration; per-Ctx span caches compare it so a
  // cached positive lookup cannot outlive the registration it proved
  // (memory can be unregistered mid-run, e.g. algorithm-local scratch).
  uint64_t space_epoch() const {
    return space_epoch_.load(std::memory_order_acquire);
  }

  // Number of speculative threads currently live.
  int live_threads() const;

  // True when `td` may fork under `model` right now (admission policy
  // only; an IDLE CPU must additionally exist). Exposed for tests.
  bool admission_allows(const ThreadData& td, ForkModel model) const;

  // Statistics: aggregate of all *finished* speculative threads plus the
  // root. Call between runs, when no speculation is live.
  RunStats collect_stats();
  void reset_stats();

  // Marks the start of the non-speculative measured region (resets the
  // root runtime baseline).
  void begin_run();
  void end_run();

  const ManagerConfig& config() const { return config_; }

  int num_cpus() const { return config_.num_cpus; }

  // The resolved NUMA shape: node count after the probe (or the
  // numa_nodes override) was clamped to the virtual-CPU count, and the
  // static rank→node placement (contiguous blocks, so an in-order chain
  // of forks walks one node's ranks before spilling to the next).
  int num_nodes() const { return num_nodes_; }
  int node_of_rank(int rank) const {
    if (rank <= 0) return 0;
    return (rank - 1) * num_nodes_ / config_.num_cpus;
  }
  const Topology& topology() const { return topo_; }

  // The spin budget workers on `node` actually use (calibrated per node
  // when the config said 0; see resolve_handoff_spin_budget). The
  // argument-free form is node 0, kept for diagnostics and the common
  // single-node case.
  int handoff_spin_budget(int node) const { return node_budget_[node]; }
  int handoff_spin_budget() const { return node_budget_[0]; }

 private:
  struct Cpu {
    ThreadData data;
    std::thread worker;
    // Spin-then-park task handoff. The forker writes `task`, then raises
    // `has_task` (the claim through the idle freelist guarantees a single
    // producer); the worker spins briefly on the flag and only then parks
    // on the condvar, so a fork whose worker is still in its spin window
    // never pays a futex wakeup. `parked` tells the producer whether a
    // notify is needed at all; the flag pair uses seq_cst so the classic
    // flag/flag lost-wakeup interleaving cannot happen. mu guards only the
    // parking itself.
    std::mutex mu;
    std::condition_variable cv;
    Task task;  // written by the forker before has_task is raised
    std::atomic<bool> has_task{false};
    std::atomic<bool> shutdown{false};
    std::atomic<bool> parked{false};
    std::atomic<CpuState> state{CpuState::kIdle};
    // Link of the lock-free idle-rank freelist (rank of the next idle CPU,
    // 0 = end of list). Only written between unlink and relink, when this
    // CPU has a single owner.
    std::atomic<int> next_idle{0};
    uint64_t next_epoch = 1;
    // Epoch of the last speculation on this slot whose task has fully
    // settled (committed, rolled back or NOSYNC-discarded). Monotonic per
    // slot; the discard handshake spins on it, making a discard
    // synchronous rather than a fire-and-forget signal.
    std::atomic<uint64_t> settled_epoch{0};
  };

  void worker_loop(Cpu& cpu);

  // Per-node lock-free idle-rank freelists (one Treiber stack per NUMA
  // node over the Cpu::next_idle links; each head packs a 32-bit ABA tag
  // next to the rank). A rank always parks on its *home* node's list —
  // node_of_rank is static — so the lists never cross-link; claiming
  // tries the forker's node first and steals round-robin from the others
  // only when it is empty. On a single-node box this degrades to exactly
  // the old single Treiber stack.
  int pop_idle(int node);
  void push_idle(int rank);

  // Same-node-first claim plus the shared bookkeeping (live count, chain
  // head); 0 when every node's pool is empty. A steal from a remote node
  // counts into the forker's cross_node_claims. The admission branches of
  // speculate() differ only in whether they hold policy_mu_ around it.
  int claim_cpu(ThreadData& forker);

  // The non-template halves of speculate(): model admission + CPU claim
  // (0 = denied), arming the claimed slot for the forker, and the
  // spin-then-park handoff publication.
  int admit_and_claim(ThreadData& forker, ForkModel model);
  Cpu& arm_cpu(int rank, ThreadData& forker);
  void publish_task(Cpu& cpu);

  // Barrier-side protocol of the speculative thread: wait for a signal,
  // validate, commit or roll back, publish valid_status. Owns destroying
  // `task` (the slot's closure): before the settle publication, so a
  // spilled closure is recycled before any new forker can re-arm the
  // slot's arena.
  void barrier_and_settle(Cpu& cpu, Task& task);

  // Policy bookkeeping when a speculative thread finishes (either reclaimed
  // by a joiner or self-freed after NOSYNC). Takes policy_mu_ internally to
  // serialize the in-order chain bookkeeping against in-order admissions.
  void on_thread_finished(int rank);

  // The two halves of the discard handshake. signal_discard raises NOSYNC
  // on the child named by `ref` (if that speculation is still the slot's
  // occupant); wait_discarded blocks until it has settled. Kept separate
  // so a batch of discards can be signalled first and then waited on —
  // the subtrees drain concurrently and teardown latency is the max of
  // the drains, not their sum.
  void signal_discard(const ChildRef& ref);
  void wait_discarded(const ChildRef& ref);

  void aggregate_stats(ThreadData& td);

  Cpu& cpu(int rank) {
    MUTLS_DCHECK(rank >= 1 && rank <= config_.num_cpus, "bad rank");
    return *cpus_[static_cast<size_t>(rank - 1)];
  }

  ManagerConfig config_;
  // The machine shape (probed or faked per config_.numa_nodes) and the
  // node count after clamping to the virtual-CPU count.
  Topology topo_;
  int num_nodes_ = 1;
  // Per-node handoff spin budgets, resolved at construction (explicit
  // config value, or one calibration probe per node).
  int node_budget_[Topology::kMaxNodes] = {};
  // Shared fleet view for the adaptive slots' proactive flip (each slot's
  // SpecBuffer holds a pointer; see SpecFleetView in spec_buffer.h).
  SpecFleetView fleet_;
  std::vector<std::unique_ptr<Cpu>> cpus_;
  ThreadData root_;

  // Per-node idle freelist heads: (aba_tag << 32) | rank, rank 0 = empty.
  // Cache-line separated so claims on different nodes never contend the
  // same line — the point of sharding the old single head.
  struct alignas(64) IdleHead {
    std::atomic<uint64_t> head{0};
  };
  IdleHead idle_heads_[Topology::kMaxNodes];

  // kMixed and kOutOfOrder admissions are decided and claimed without any
  // lock (the policy state is atomic and the claim is the freelist CAS);
  // policy_mu_ serializes only kInOrder admission — whose check-then-claim
  // must be atomic against other in-order forks — and the chain-shrink
  // bookkeeping when a thread finishes. A *concurrent* mixed-model claim
  // can therefore interleave with an in-order admission and move the chain
  // head mid-check; that is accepted: admission is a performance policy,
  // not a safety property (the synchronize protocol validates every
  // speculation identically however it was admitted), and even the old
  // fully-locked path let a mixed fork retarget most_speculative_rank_ —
  // mixing models across concurrently forking threads has always meant
  // best-effort chain fidelity.
  mutable std::mutex policy_mu_;
  std::atomic<int> most_speculative_rank_{0};
  std::atomic<int> live_{0};

  std::mutex stats_mu_;
  ThreadStats spec_stats_;          // guarded by stats_mu_
  uint64_t spec_thread_count_ = 0;  // guarded by stats_mu_
  uint64_t run_start_ns_ = 0;

  IntervalSet space_;
  std::atomic<uint64_t> space_epoch_{0};
};

}  // namespace mutls
