// Per-virtual-CPU speculative thread state (paper section IV-B).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/enums.h"
#include "runtime/local_buffer.h"
#include "runtime/spec_buffer.h"
#include "runtime/stats.h"
#include "support/arena.h"
#include "support/prng.h"

namespace mutls {

// Reference to a speculated child. The epoch guards against virtual-CPU
// slot reuse: a rank alone could name a *later* speculation on the same CPU.
struct ChildRef {
  int rank = 0;
  uint64_t epoch = 0;
};

struct ThreadData {
  // Identity. rank 0 is the non-speculative thread; speculative ranks are
  // 1..num_cpus as in the paper.
  int rank = 0;
  uint64_t epoch = 0;
  int parent_rank = 0;
  uint64_t parent_epoch = 0;

  // Flag-based synchronization barrier (paper IV-E). Both are the paper's
  // volatile flags, expressed as atomics.
  std::atomic<SyncStatus> sync_status{SyncStatus::kNone};
  std::atomic<ValidStatus> valid_status{ValidStatus::kNone};

  // Set by the joiner before raising SYNC so the child validates and
  // commits against the correct view (tree-form nesting).
  ThreadData* joiner = nullptr;

  // Set by the joiner when live-in (register variable) validation failed:
  // the child must roll back regardless of its read-set (paper IV-G4).
  bool force_rollback = false;

  // Children stack of the tree-form mixed model (paper IV-F). Reserved to
  // num_cpus at manager construction: every live speculation occupies one
  // virtual-CPU slot and sits on exactly one parent's stack, so no stack
  // (even through adoption) can outgrow that — push_back never reallocates.
  std::vector<ChildRef> children;

  // Per-slot arena (see "support/arena.h"): transient bump storage for the
  // epoch (spilled task closures) plus the persistent pool backing sbuf's
  // growable arrays and scratch. Declared before sbuf, whose pooled
  // storage must release into a live arena at destruction. Ownership
  // follows the slot's speculation protocol — no locks.
  Arena arena;

  SpecBuffer sbuf;
  LocalBuffer lbuf;
  ThreadStats stats;
  Xorshift64 rng;

  // Rollback injection (paper Fig. 11): decided once per speculation.
  bool inject_rollback = false;

  // Opaque caller payload (e.g. the starting chunk of a loop-chain link),
  // readable by the joiner at synchronization time so adopted children can
  // be re-executed after a rollback.
  uint64_t user_tag = 0;

  // Opaque per-speculation state deposited by the execution layer before
  // the flag barrier publishes (e.g. the IR interpreter's stop position,
  // registers and fork bookkeeping); the joiner picks it up through the
  // on_settled hook of synchronize().
  std::shared_ptr<void> user_state;

  uint64_t task_start_ns = 0;

  bool is_speculative() const { return rank != 0; }

  bool doomed() const { return sbuf.doomed(); }

  // Re-arms this slot for a new speculation.
  void reset_for_speculation(int parent, uint64_t parent_ep,
                             uint64_t new_epoch, uint64_t seed,
                             double rollback_probability) {
    epoch = new_epoch;
    parent_rank = parent;
    parent_epoch = parent_ep;
    sync_status.store(SyncStatus::kNone, std::memory_order_relaxed);
    valid_status.store(ValidStatus::kNone, std::memory_order_relaxed);
    joiner = nullptr;
    force_rollback = false;
    children.clear();
    // Re-arm the arena first: the previous epoch's bump storage (the
    // settled task's spilled closure was already destroyed at settle) is
    // reclaimed wholesale and the epoch heap-fallback counter zeroes, so
    // alloc_events reports exactly this speculation. sbuf's pooled storage
    // survives — rearm() touches only the bump region.
    arena.rearm();
    // Re-arm the speculative buffer: reset buffered state, zero the cost
    // counters (they survive reset() so the settle paths could read them;
    // a slot's next speculation must not re-report its predecessors'
    // events), and — for the adaptive backend — apply the per-slot flip
    // decision based on the finished speculation's counters.
    sbuf.rearm();
    lbuf.reset();
    stats.clear();
    user_tag = 0;
    user_state.reset();
    rng.reseed(seed ^ (new_epoch * 0x9e3779b97f4a7c15ull) ^
               static_cast<uint64_t>(rank));
    inject_rollback = rollback_probability > 0.0 &&
                      rng.bernoulli(rollback_probability);
  }
};

}  // namespace mutls
