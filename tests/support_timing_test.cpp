#include "support/timing.h"

#include <gtest/gtest.h>

#include <thread>

namespace mutls {
namespace {

TEST(TimeLedger, StartsEmpty) {
  TimeLedger l;
  EXPECT_EQ(l.total(), 0u);
  for (int i = 0; i < kTimeCatCount; ++i) {
    EXPECT_EQ(l.get(static_cast<TimeCat>(i)), 0u);
  }
}

TEST(TimeLedger, AddAccumulatesPerCategory) {
  TimeLedger l;
  l.add(TimeCat::kWork, 100);
  l.add(TimeCat::kWork, 50);
  l.add(TimeCat::kIdle, 7);
  EXPECT_EQ(l.get(TimeCat::kWork), 150u);
  EXPECT_EQ(l.get(TimeCat::kIdle), 7u);
  EXPECT_EQ(l.total(), 157u);
}

TEST(TimeLedger, WasteWorkMovesWorkToWasted) {
  TimeLedger l;
  l.add(TimeCat::kWork, 120);
  l.add(TimeCat::kWastedWork, 5);
  l.waste_work();
  EXPECT_EQ(l.get(TimeCat::kWork), 0u);
  EXPECT_EQ(l.get(TimeCat::kWastedWork), 125u);
  EXPECT_EQ(l.total(), 125u);
}

TEST(TimeLedger, PlusEqualsMergesAllCategories) {
  TimeLedger a, b;
  a.add(TimeCat::kFork, 1);
  b.add(TimeCat::kFork, 2);
  b.add(TimeCat::kCommit, 3);
  a += b;
  EXPECT_EQ(a.get(TimeCat::kFork), 3u);
  EXPECT_EQ(a.get(TimeCat::kCommit), 3u);
}

TEST(TimeLedger, ClearResets) {
  TimeLedger l;
  l.add(TimeCat::kValidation, 9);
  l.clear();
  EXPECT_EQ(l.total(), 0u);
}

TEST(ScopedTimer, AttributesElapsedTime) {
  TimeLedger l;
  {
    ScopedTimer t(l, TimeCat::kJoin);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(l.get(TimeCat::kJoin), 1'000'000u);  // at least 1ms recorded
  EXPECT_EQ(l.get(TimeCat::kWork), 0u);
}

TEST(TimeCatNames, AllDistinctAndNonEmpty) {
  for (int i = 0; i < kTimeCatCount; ++i) {
    const char* n = time_cat_name(static_cast<TimeCat>(i));
    ASSERT_NE(n, nullptr);
    EXPECT_GT(std::string(n).size(), 0u);
    for (int j = i + 1; j < kTimeCatCount; ++j) {
      EXPECT_STRNE(n, time_cat_name(static_cast<TimeCat>(j)));
    }
  }
}

TEST(Stopwatch, MeasuresElapsed) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_GE(sw.elapsed_ns(), 1'000'000u);
  EXPECT_GT(sw.elapsed_sec(), 0.0);
  sw.restart();
  EXPECT_LT(sw.elapsed_ns(), 1'000'000'000u);
}

}  // namespace
}  // namespace mutls
