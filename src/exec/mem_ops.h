// Speculative memory access for IR execution, written once and shared by
// every dispatch tier: the interpreter's switch oracle, the direct-threaded
// handlers and the compiled-region helpers all route loads/stores through
// these, so doom/rollback semantics cannot drift between tiers.
//
// Non-speculative threads access host memory directly through relaxed
// atomics (TSan-clean against concurrent speculative first-touch reads);
// speculative threads go through the slot's SpecBuffer with the aligned
// fast path for word-sized accesses. A wild address or a doomed buffer
// unwinds the task with SpecAbort.
#pragma once

#include <cstdint>
#include <cstring>

#include "runtime/memory.h"
#include "runtime/spec_abort.h"
#include "runtime/thread_data.h"
#include "runtime/thread_manager.h"

namespace mutls::exec {

inline void check_space(ThreadManager& mgr, ThreadData& td, uint64_t addr,
                        size_t n) {
  if (!td.is_speculative()) return;
  if (!mgr.space_contains(reinterpret_cast<void*>(addr), n)) {
    td.sbuf.doom("speculative access outside the registered address space");
    throw SpecAbort{"wild speculative access"};
  }
}

inline void load_mem(ThreadManager& mgr, ThreadData& td, uint64_t addr,
                     void* out, size_t n) {
  ++td.stats.loads;
  if (!td.is_speculative()) {
    for (size_t i = 0; i < n; ++i) {
      static_cast<uint8_t*>(out)[i] = atomic_byte_load(addr + i);
    }
    return;
  }
  check_space(mgr, td, addr, n);
  if (word_sized_aligned(addr, n)) {
    uint64_t raw = td.sbuf.load_aligned(addr, n);
    std::memcpy(out, &raw, n);
  } else {
    td.sbuf.load_bytes(addr, out, n);
  }
  if (td.sbuf.doomed()) throw SpecAbort{td.sbuf.doom_reason()};
}

inline void store_mem(ThreadManager& mgr, ThreadData& td, uint64_t addr,
                      const void* src, size_t n) {
  ++td.stats.stores;
  if (!td.is_speculative()) {
    for (size_t i = 0; i < n; ++i) {
      atomic_byte_store(addr + i, static_cast<const uint8_t*>(src)[i]);
    }
    return;
  }
  check_space(mgr, td, addr, n);
  if (word_sized_aligned(addr, n)) {
    uint64_t raw = 0;
    std::memcpy(&raw, src, n);
    td.sbuf.store_aligned(addr, raw, n);
  } else {
    td.sbuf.store_bytes(addr, src, n);
  }
  if (td.sbuf.doomed()) throw SpecAbort{td.sbuf.doom_reason()};
}

}  // namespace mutls::exec
