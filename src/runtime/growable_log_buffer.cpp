#include "runtime/growable_log_buffer.h"

namespace mutls {

void GrowableSet::init(int log2_entries, SpecBufferStats* stats,
                       int max_log2) {
  MUTLS_CHECK(log2_entries >= 4 && log2_entries <= kMaxLog2,
              "buffer log2 size out of range");
  MUTLS_CHECK(max_log2 >= log2_entries && max_log2 <= kMaxLog2,
              "growable hard cap out of range");
  log2_ = log2_entries;
  shift_ = 64 - log2_;
  max_log2_ = max_log2;
  index_.assign(size_t{1} << log2_, 0);
  log_.clear();
  log_.reserve(1024);
  resized_this_epoch_ = false;
  stats_ = stats;
}

GrowableSet::Entry& GrowableSet::find_or_insert(uintptr_t word_addr,
                                                bool& inserted) {
  MUTLS_DCHECK((word_addr & kWordMask) == 0, "unaligned word address");
  MUTLS_DCHECK(!at_hard_capacity(),
               "insert into a growable set at hard capacity (the owning "
               "buffer must doom first)");
  const size_t mask = capacity() - 1;
  size_t idx = home_slot(word_addr);
  ++stats_->probe_ops;
  while (true) {
    uint32_t pos = index_[idx];
    if (pos == 0) {
      // Insert path only: keep the load factor at or below 3/4 so probe
      // sequences stay short (a lookup hit must never pay a rehash); past
      // max_log2_ the factor rises instead (the caller dooms before the
      // table could actually fill).
      if (log_.size() + 1 > capacity() - capacity() / 4 &&
          log2_ < max_log2_) {
        grow();
        // Re-probe for the empty slot in the grown index.
        const size_t grown_mask = capacity() - 1;
        idx = home_slot(word_addr);
        while (index_[idx] != 0) idx = (idx + 1) & grown_mask;
      }
      log_.push_back(Entry{word_addr, 0, 0, static_cast<uint32_t>(idx)});
      index_[idx] = static_cast<uint32_t>(log_.size());
      inserted = true;
      return log_.back();
    }
    Entry& e = log_[pos - 1];
    if (e.word_addr == word_addr) {
      inserted = false;
      return e;
    }
    ++stats_->probe_steps;
    idx = (idx + 1) & mask;
  }
}

GrowableSet::Entry* GrowableSet::find(uintptr_t word_addr) {
  if (index_.empty()) return nullptr;
  const size_t mask = capacity() - 1;
  size_t idx = home_slot(word_addr);
  ++stats_->probe_ops;
  while (true) {
    uint32_t pos = index_[idx];
    if (pos == 0) return nullptr;
    Entry& e = log_[pos - 1];
    if (e.word_addr == word_addr) return &e;
    ++stats_->probe_steps;
    idx = (idx + 1) & mask;
  }
}

void GrowableSet::grow() {
  ++log2_;
  shift_ = 64 - log2_;
  resized_this_epoch_ = true;
  ++stats_->resize_events;
  index_.assign(size_t{1} << log2_, 0);
  const size_t mask = capacity() - 1;
  // Rehash from the dense log; re-probe costs are part of the resize, not
  // the per-access probe counters.
  for (uint32_t i = 0; i < log_.size(); ++i) {
    size_t idx = home_slot(log_[i].word_addr);
    while (index_[idx] != 0) idx = (idx + 1) & mask;
    index_[idx] = i + 1;
    log_[i].slot = static_cast<uint32_t>(idx);
  }
}

void GrowableSet::clear() {
  for (const Entry& e : log_) index_[e.slot] = 0;
  log_.clear();
  resized_this_epoch_ = false;
}

void GrowableLogBuffer::init(int log2_entries, size_t overflow_cap,
                             SpecBufferStats* stats, int max_log2) {
  (void)overflow_cap;  // no bounded overflow in this backend
  stats_ = stats;
  read_set_.init(log2_entries, stats, max_log2);
  write_set_.init(log2_entries, stats, max_log2);
}

WordRef GrowableLogBuffer::find_read(uintptr_t word_addr) {
  GrowableSet::Entry* e = read_set_.find(word_addr);
  return e ? WordRef{&e->data, nullptr, read_set_.position_of(e)} : WordRef{};
}

WordRef GrowableLogBuffer::find_write(uintptr_t word_addr) {
  GrowableSet::Entry* e = write_set_.find(word_addr);
  return e ? WordRef{&e->data, &e->mark, write_set_.position_of(e)}
           : WordRef{};
}

WordRef GrowableLogBuffer::insert_read(uintptr_t word_addr, bool& inserted,
                                       bool merging) {
  if (read_set_.at_hard_capacity()) {
    doom(merging ? "read-set exhausted the maximum growable index while "
                   "adopting a child commit"
                 : "read-set exhausted the maximum growable index");
    ++stats_->overflow_events;
    return WordRef{};
  }
  GrowableSet::Entry& e = read_set_.find_or_insert(word_addr, inserted);
  return WordRef{&e.data, nullptr, read_set_.position_of(&e)};
}

WordRef GrowableLogBuffer::insert_write(uintptr_t word_addr, bool merging) {
  if (write_set_.at_hard_capacity()) {
    doom(merging ? "write-set exhausted the maximum growable index while "
                   "adopting a child commit"
                 : "write-set exhausted the maximum growable index");
    ++stats_->overflow_events;
    return WordRef{};
  }
  bool inserted = false;
  GrowableSet::Entry& e = write_set_.find_or_insert(word_addr, inserted);
  return WordRef{&e.data, &e.mark, write_set_.position_of(&e)};
}

void GrowableLogBuffer::reset() {
  read_set_.clear();
  write_set_.clear();
  doomed_ = false;
  doom_reason_ = "";
  // The stats block belongs to the owning SpecBuffer and intentionally
  // survives reset: the settle paths read the counters after resetting.
}

}  // namespace mutls
