// Tests of the discrete-event TLS simulator: conservation laws, policy
// behaviour, and the qualitative shapes the paper's figures rely on.
#include "sim/sim.h"

#include <gtest/gtest.h>

#include "sim/models.h"

namespace mutls::sim {
namespace {

Simulator::Options opts(int cpus, ForkModel model = ForkModel::kMixed) {
  Simulator::Options o;
  o.num_cpus = cpus;
  o.model = model;
  return o;
}

SimModel single_task(double work) {
  SimModel m;
  SimNode* n = m.node();
  n->own_work = work;
  m.phases.push_back(n);
  return m;
}

TEST(Simulator, SequentialTaskTakesItsWork) {
  SimModel m = single_task(100);
  SimResult r = Simulator(opts(1)).run(m);
  EXPECT_DOUBLE_EQ(r.critical_time, 100.0);
  EXPECT_DOUBLE_EQ(r.sequential_time, 100.0);
  EXPECT_DOUBLE_EQ(r.speedup(), 1.0);
  EXPECT_EQ(r.forks, 0u);
}

TEST(Simulator, TwoWaySplitHalvesTime) {
  SimModel m;
  SimNode* root = m.node();
  SimNode* child = m.node();
  child->own_work = 500;
  root->own_work = 500;
  root->forks.push_back(child);
  m.phases.push_back(root);
  SimResult r = Simulator(opts(2)).run(m);
  EXPECT_GT(r.speedup(), 1.8);
  EXPECT_LE(r.speedup(), 2.0);
  EXPECT_EQ(r.forks, 1u);
  EXPECT_EQ(r.commits, 1u);
}

TEST(Simulator, NoCpuMeansNoSpeedup) {
  SimModel m;
  SimNode* root = m.node();
  SimNode* child = m.node();
  child->own_work = 500;
  root->own_work = 500;
  root->forks.push_back(child);
  m.phases.push_back(root);
  // One CPU is reserved for speculation; with zero... minimum is 1, so use
  // a chain long enough that one CPU saturates.
  SimResult r = Simulator(opts(1)).run(m);
  EXPECT_GT(r.speedup(), 1.5) << "one speculative CPU still helps";
}

TEST(Simulator, ChainScalesWithCpus) {
  double prev = 0;
  for (int cpus : {1, 2, 4, 8, 16, 32, 63}) {
    SimModel m = model_threex(1e6, 64);
    SimResult r = Simulator(opts(cpus)).run(m);
    EXPECT_GT(r.speedup(), prev * 0.99) << cpus << " cpus";
    prev = r.speedup();
  }
}

TEST(Simulator, ChainPlateausBetweenHalfAndFullChunks) {
  // The paper: with 64 chunks, speedups are stable between 32 and 63 CPUs
  // and jump at 64 because at least two chunks run sequentially below 64.
  // The paper's "N CPUs" includes the non-speculative thread, so N total
  // CPUs = N-1 speculative slots.
  SimModel m33 = model_threex(1e6, 64);
  SimModel m63 = model_threex(1e6, 64);
  SimModel m64 = model_threex(1e6, 64);
  double s33 = Simulator(opts(32)).run(m33).speedup();
  double s63 = Simulator(opts(62)).run(m63).speedup();
  double s64 = Simulator(opts(63)).run(m64).speedup();
  // "Generally stable" plateau (the model's chunk imbalance leaves some
  // wobble, as in the paper's own curves), then the jump at 64.
  EXPECT_NEAR(s33, s63, s33 * 0.2);
  EXPECT_GT(s64, s63 * 1.5);
}

TEST(Simulator, RollbackInjectionCausesSlowdown) {
  SimModel a = model_nqueen(10, 3, 200);
  SimModel b = model_nqueen(10, 3, 200);
  Simulator::Options o = opts(8);
  double clean = Simulator(o).run(a).speedup();
  o.rollback_probability = 0.5;
  SimResult rb = Simulator(o).run(b);
  EXPECT_GT(rb.rollbacks, 0u);
  EXPECT_LT(rb.speedup(), clean);
  EXPECT_GT(rb.speculative.wasted, 0.0);
}

TEST(Simulator, ConflictUnderSpecOnlyFiresForSpeculativeForkers) {
  // A conflicting node forked by the root commits; forked by a speculative
  // thread it rolls back.
  {
    SimModel m;
    SimNode* root = m.node();
    SimNode* child = m.node();
    child->own_work = 100;
    child->conflict_under_spec = true;
    root->own_work = 100;
    root->forks.push_back(child);
    m.phases.push_back(root);
    SimResult r = Simulator(opts(4)).run(m);
    EXPECT_EQ(r.rollbacks, 0u);
  }
  {
    SimModel m;
    SimNode* root = m.node();
    SimNode* mid = m.node();
    SimNode* leaf = m.node();
    leaf->own_work = 100;
    leaf->conflict_under_spec = true;
    mid->own_work = 100;
    mid->forks.push_back(leaf);
    root->own_work = 100;
    root->forks.push_back(mid);
    m.phases.push_back(root);
    SimResult r = Simulator(opts(4)).run(m);
    EXPECT_EQ(r.rollbacks, 1u);
    EXPECT_EQ(r.commits, 1u);
  }
}

TEST(Simulator, OutOfOrderBoundsLoopParallelismToTwo) {
  // Section II: out-of-order cannot fork from speculative threads, so a
  // loop chain degenerates to at most two active threads.
  SimModel mixed_m = model_threex(1e6, 64);
  SimModel ooo_m = model_threex(1e6, 64);
  double mixed = Simulator(opts(16, ForkModel::kMixed)).run(mixed_m).speedup();
  double ooo =
      Simulator(opts(16, ForkModel::kOutOfOrder)).run(ooo_m).speedup();
  EXPECT_GT(mixed, 10.0);
  EXPECT_LT(ooo, 2.5);
}

TEST(Simulator, InOrderMatchesMixedOnPlainLoops) {
  SimModel a = model_threex(1e6, 64);
  SimModel b = model_threex(1e6, 64);
  double in_order = Simulator(opts(16, ForkModel::kInOrder)).run(a).speedup();
  double mixed = Simulator(opts(16, ForkModel::kMixed)).run(b).speedup();
  EXPECT_NEAR(in_order, mixed, mixed * 0.05);
}

TEST(Simulator, MixedBeatsBothOnTreeRecursion) {
  // The paper's headline claim (Fig. 10): for tree-form recursion with
  // enough cores, mixed > in-order and mixed > out-of-order.
  for (auto build : {model_nqueen, model_tsp}) {
    SimModel m1 = build(12, 3, 300);
    SimModel m2 = build(12, 3, 300);
    SimModel m3 = build(12, 3, 300);
    double mixed = Simulator(opts(32, ForkModel::kMixed)).run(m1).speedup();
    double in_order =
        Simulator(opts(32, ForkModel::kInOrder)).run(m2).speedup();
    double ooo =
        Simulator(opts(32, ForkModel::kOutOfOrder)).run(m3).speedup();
    EXPECT_GT(mixed, in_order * 1.2);
    EXPECT_GT(mixed, ooo * 1.2);
  }
}

TEST(Simulator, WorkIsConservedAcrossPaths) {
  // No work may be lost: for a flat fork set with no nesting, no inflation
  // and no rollbacks, critical work + speculative work == sequential time.
  SimModel m;
  SimNode* root = m.node();
  root->own_work = 100;
  for (int i = 0; i < 3; ++i) {
    SimNode* c = m.node();
    c->own_work = 100;
    root->forks.push_back(c);
  }
  m.phases.push_back(root);
  SimResult r = Simulator(opts(4)).run(m);
  EXPECT_EQ(r.rollbacks, 0u);
  EXPECT_NEAR(r.critical.work + r.speculative.work, r.sequential_time,
              r.sequential_time * 1e-6);
}

TEST(Simulator, InflatedWorkNeverUndercountsSequentialTime) {
  // With buffering inflation and parent takeover the executed work can
  // only exceed the sequential time, never fall short of it.
  SimModel m = model_fft(14, 4, 0.01);
  SimResult r = Simulator(opts(8)).run(m);
  EXPECT_EQ(r.rollbacks, 0u);
  EXPECT_GE(r.critical.work + r.speculative.work,
            r.sequential_time * (1.0 - 1e-9));
}

TEST(Simulator, BreakdownSumsToRuntime) {
  SimModel m = model_md(64, 10, 8, 1000);
  SimResult r = Simulator(opts(4)).run(m);
  double crit_sum = r.critical.total();
  EXPECT_NEAR(crit_sum, r.critical_time, r.critical_time * 0.01);
}

TEST(Simulator, ComputeIntensiveBeatsMemoryIntensive) {
  // Figures 3 vs 4: at 64 CPUs the compute-intensive models reach an order
  // of magnitude higher speedup than the memory-intensive ones.
  SimModel compute = model_threex();
  SimModel memory = model_fft();
  double sc = Simulator(opts(64)).run(compute).speedup();
  double sm = Simulator(opts(64)).run(memory).speedup();
  EXPECT_GT(sc, 30.0);
  EXPECT_LT(sm, 10.0);
  EXPECT_GT(sm, 1.5);
}

TEST(Simulator, DeterministicAcrossRuns) {
  SimModel a = model_matmult(256, 64, 2, 0.01);
  SimModel b = model_matmult(256, 64, 2, 0.01);
  SimResult r1 = Simulator(opts(8)).run(a);
  SimResult r2 = Simulator(opts(8)).run(b);
  EXPECT_DOUBLE_EQ(r1.critical_time, r2.critical_time);
  EXPECT_EQ(r1.rollbacks, r2.rollbacks);
}

TEST(SimModels, AllPaperModelsBuildAndRun) {
  for (const NamedModel& nm : paper_models()) {
    SimModel m = nm.build();
    ASSERT_FALSE(m.phases.empty()) << nm.name;
    SimResult r = Simulator(opts(4)).run(m);
    EXPECT_GT(r.sequential_time, 0.0) << nm.name;
    EXPECT_GT(r.speedup(), 0.9) << nm.name;
    EXPECT_GE(r.coverage(), 0.0) << nm.name;
  }
}

}  // namespace
}  // namespace mutls::sim
