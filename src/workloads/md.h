// 3D molecular dynamics simulation — Table II row 3.
//
// Velocity-Verlet integration of n particles under a softened inverse-square
// pair force, for `steps` time steps. Each step computes all pair forces
// (O(n^2), parallelized with loop speculation over particles) and then
// integrates positions/velocities sequentially. Loop pattern,
// computation-intensive (the pair loop is arithmetic-dominated).
// Paper size: 256 particles, 400 steps.
#pragma once

#include "workloads/workload.h"

namespace mutls::workloads {

struct MolecularDynamics {
  struct Params {
    int n = 64;
    int steps = 40;
    int chunks = 16;
    double dt = 1e-3;
    uint64_t seed = 42;
  };

  static constexpr const char* kName = "md";
  static constexpr Pattern kPattern = Pattern::kLoop;

  static SeqRun run_seq(const Params& p);
  static SpecRun run_spec(Runtime& rt, const Params& p, ForkModel model);
};

}  // namespace mutls::workloads
