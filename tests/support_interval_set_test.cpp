// Unit tests for the address-space registration structure (paper IV-G1).
#include "support/interval_set.h"

#include <gtest/gtest.h>

namespace mutls {
namespace {

TEST(IntervalSet, EmptyContainsNothing) {
  IntervalSet s;
  EXPECT_FALSE(s.contains(0x1000, 1));
  EXPECT_EQ(s.span_count(), 0u);
  EXPECT_EQ(s.total_bytes(), 0u);
}

TEST(IntervalSet, SingleSpanContainment) {
  IntervalSet s;
  s.insert(0x1000, 0x100);
  EXPECT_TRUE(s.contains(0x1000, 1));
  EXPECT_TRUE(s.contains(0x10ff, 1));
  EXPECT_TRUE(s.contains(0x1000, 0x100));
  EXPECT_FALSE(s.contains(0xfff, 1));
  EXPECT_FALSE(s.contains(0x1100, 1));
  EXPECT_FALSE(s.contains(0x10ff, 2));  // straddles the end
}

TEST(IntervalSet, ZeroSizeQueriesAndInserts) {
  IntervalSet s;
  s.insert(0x1000, 0);  // no-op
  EXPECT_EQ(s.span_count(), 0u);
  EXPECT_TRUE(s.contains(0x1234, 0));  // empty range is trivially covered
}

TEST(IntervalSet, AdjacentSpansMerge) {
  IntervalSet s;
  s.insert(0x1000, 0x100);
  s.insert(0x1100, 0x100);  // exactly adjacent
  EXPECT_EQ(s.span_count(), 1u);
  EXPECT_TRUE(s.contains(0x1000, 0x200));
}

TEST(IntervalSet, OverlappingSpansMerge) {
  IntervalSet s;
  s.insert(0x1000, 0x100);
  s.insert(0x1080, 0x100);
  EXPECT_EQ(s.span_count(), 1u);
  EXPECT_TRUE(s.contains(0x1000, 0x180));
  EXPECT_EQ(s.total_bytes(), 0x180u);
}

TEST(IntervalSet, InsertBridgingManySpans) {
  IntervalSet s;
  s.insert(0x1000, 0x10);
  s.insert(0x2000, 0x10);
  s.insert(0x3000, 0x10);
  EXPECT_EQ(s.span_count(), 3u);
  s.insert(0x1008, 0x2100);  // bridges all three
  EXPECT_EQ(s.span_count(), 1u);
  EXPECT_TRUE(s.contains(0x1000, 0x2010));
}

TEST(IntervalSet, DisjointSpansStayDisjoint) {
  IntervalSet s;
  s.insert(0x1000, 0x10);
  s.insert(0x3000, 0x10);
  EXPECT_EQ(s.span_count(), 2u);
  EXPECT_FALSE(s.contains(0x2000, 1));
  EXPECT_FALSE(s.contains(0x100f, 2));  // spans are not bridged
}

TEST(IntervalSet, EraseWholeSpan) {
  IntervalSet s;
  s.insert(0x1000, 0x100);
  s.erase(0x1000, 0x100);
  EXPECT_EQ(s.span_count(), 0u);
  EXPECT_FALSE(s.contains(0x1000, 1));
}

TEST(IntervalSet, EraseInteriorSplitsSpan) {
  IntervalSet s;
  s.insert(0x1000, 0x100);
  s.erase(0x1040, 0x10);
  EXPECT_EQ(s.span_count(), 2u);
  EXPECT_TRUE(s.contains(0x1000, 0x40));
  EXPECT_FALSE(s.contains(0x1040, 1));
  EXPECT_TRUE(s.contains(0x1050, 0xb0));
}

TEST(IntervalSet, ErasePrefixAndSuffix) {
  IntervalSet s;
  s.insert(0x1000, 0x100);
  s.erase(0x0f00, 0x140);  // clips the front
  EXPECT_FALSE(s.contains(0x1000, 1));
  EXPECT_TRUE(s.contains(0x1040, 1));
  s.erase(0x10c0, 0x1000);  // clips the back
  EXPECT_TRUE(s.contains(0x1040, 0x80));
  EXPECT_FALSE(s.contains(0x10c0, 1));
}

TEST(IntervalSet, LookupReportsSpanBounds) {
  IntervalSet s;
  s.insert(0x1000, 0x100);
  uintptr_t lo = 0, hi = 0;
  ASSERT_TRUE(s.lookup(0x1040, 8, &lo, &hi));
  EXPECT_EQ(lo, 0x1000u);
  EXPECT_EQ(hi, 0x1100u);
  EXPECT_FALSE(s.lookup(0x2000, 8, &lo, &hi));
}

TEST(IntervalSet, ClearEmptiesEverything) {
  IntervalSet s;
  s.insert(0x1000, 0x10);
  s.insert(0x2000, 0x10);
  s.clear();
  EXPECT_EQ(s.span_count(), 0u);
  EXPECT_FALSE(s.contains(0x1000, 1));
}

// Property sweep: random inserts into a model set must agree with the
// IntervalSet on byte-level membership.
class IntervalSetProperty : public ::testing::TestWithParam<int> {};

TEST_P(IntervalSetProperty, MatchesByteModel) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  uint64_t state = seed * 2654435761u + 12345;
  auto rnd = [&state](uint64_t n) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state % n;
  };

  constexpr uintptr_t kBase = 0x10000;
  constexpr size_t kBytes = 4096;
  std::vector<bool> model(kBytes, false);
  IntervalSet s;

  for (int op = 0; op < 200; ++op) {
    uintptr_t off = rnd(kBytes - 64);
    size_t len = 1 + rnd(64);
    if (rnd(3) == 0) {
      s.erase(kBase + off, len);
      for (size_t i = 0; i < len; ++i) model[off + i] = false;
    } else {
      s.insert(kBase + off, len);
      for (size_t i = 0; i < len; ++i) model[off + i] = true;
    }
  }

  for (size_t i = 0; i < kBytes; ++i) {
    EXPECT_EQ(s.contains(kBase + i, 1), model[i]) << "byte " << i;
  }
  // Span-level query: a random window is contained iff all bytes are set.
  for (int q = 0; q < 100; ++q) {
    uintptr_t off = rnd(kBytes - 32);
    size_t len = 1 + rnd(32);
    bool all = true;
    for (size_t i = 0; i < len; ++i) all = all && model[off + i];
    EXPECT_EQ(s.contains(kBase + off, len), all);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetProperty,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace mutls
