// Tests of the speculator transformation pass (paper IV-C): the four
// preparation steps, point blocks, tables, and SSA validity of the output.
#include "speculator/pass.h"

#include <gtest/gtest.h>

namespace mutls::speculator {
namespace {

using namespace ir;

const char* kAnnotated = R"(
global @data : i64[64]
func @helper(%x: i64) : i64 {
entry:
  %one = const i64 1
  %r = add %x, %one
  ret %r
}
func @work(%n: i64) : i64 {
entry:
  %zero = const i64 0
  %one = const i64 1
  %base = globaladdr @data
  mutls.fork 0, mixed
  br loop
loop:
  %i = phi i64 [%zero, entry], [%inc, loop]
  %s = phi i64 [%zero, entry], [%s2, loop]
  %h = call i64 @helper(%i)
  %s2 = add %s, %h
  %inc = add %i, %one
  %c = icmp slt %inc, %n
  condbr %c, loop, joinblk
joinblk:
  store %s2, %base
  mutls.join 0
  %p = gep %base, %one, 8
  %v = load i64, %p
  %w = add %v, %s2
  store %w, %p
  mutls.barrier 0
  call @print_i64(%w)
  ret %w
}
)";

class SpeculatorPass : public ::testing::Test {
 protected:
  void SetUp() override {
    Module m = parse_module(kAnnotated);
    ASSERT_TRUE(verify_module(m).empty());
    result_ = run_speculator_pass(m);
  }
  PassResult result_;
};

TEST_F(SpeculatorPass, GeneratesAllFourFunctions) {
  // Untouched helper + transformed work + clone + proxy + stub.
  EXPECT_NE(result_.module.find_function("helper"), nullptr);
  EXPECT_NE(result_.module.find_function("work"), nullptr);
  EXPECT_NE(result_.module.find_function("work.speculative"), nullptr);
  EXPECT_NE(result_.module.find_function("work.proxy"), nullptr);
  EXPECT_NE(result_.module.find_function("work.stub"), nullptr);
  ASSERT_EQ(result_.reports.size(), 1u);
  EXPECT_EQ(result_.reports[0].original, "work");
}

TEST_F(SpeculatorPass, OutputModuleIsWellFormed) {
  std::vector<std::string> errs = verify_module(result_.module);
  for (const std::string& e : errs) ADD_FAILURE() << e;
  EXPECT_TRUE(errs.empty());
}

TEST_F(SpeculatorPass, CloneHasCounterAndRankParams) {
  const Function* spec = result_.module.find_function("work.speculative");
  ASSERT_NE(spec, nullptr);
  ASSERT_EQ(spec->params.size(), 3u);  // %n + counter + rank
  EXPECT_EQ(spec->params[1].name, "counter");
  EXPECT_EQ(spec->params[2].name, "rank");
}

TEST_F(SpeculatorPass, CloneLoadsAndStoresAreRuntimeCalls) {
  const Function* spec = result_.module.find_function("work.speculative");
  ASSERT_NE(spec, nullptr);
  int loads = 0, stores = 0, raw = 0;
  for (const Block& b : spec->blocks) {
    for (const Instr& in : b.instrs) {
      if (in.op == Op::kLoad || in.op == Op::kStore) ++raw;
      if (in.op == Op::kCall && in.sym.rfind("MUTLS_load_", 0) == 0) ++loads;
      if (in.op == Op::kCall && in.sym.rfind("MUTLS_store_", 0) == 0) {
        ++stores;
      }
    }
  }
  EXPECT_EQ(raw, 0) << "every access must go through the runtime";
  EXPECT_GE(loads, 1);
  EXPECT_GE(stores, 2);
}

TEST_F(SpeculatorPass, CloneEntryIsSpeculationTable) {
  const Function* spec = result_.module.find_function("work.speculative");
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(spec->blocks[0].label, "spec.table");
}

TEST_F(SpeculatorPass, PointBlocksAreNumbered) {
  const FunctionReport& r = result_.reports[0];
  bool has_check = false, has_enter = false, has_terminate = false,
       has_return = false, has_join = false, has_spec = false;
  for (const PointBlockInfo& p : r.points) {
    switch (p.kind) {
      case PointBlockInfo::kCheck: has_check = true; break;
      case PointBlockInfo::kEnter: has_enter = true; break;
      case PointBlockInfo::kTerminate: has_terminate = true; break;
      case PointBlockInfo::kReturn: has_return = true; break;
      case PointBlockInfo::kJoin: has_join = true; break;
      case PointBlockInfo::kSpeculation: has_spec = true; break;
    }
  }
  EXPECT_TRUE(has_check) << "loop back edge must get a check point";
  EXPECT_TRUE(has_enter) << "internal call must get an enter point";
  EXPECT_TRUE(has_terminate) << "print_i64 must get a terminate point";
  EXPECT_TRUE(has_return) << "ret must get a return point";
  EXPECT_TRUE(has_join);
  EXPECT_TRUE(has_spec);
}

TEST_F(SpeculatorPass, NonSpecForkLoweredToGetCpuAndProxy) {
  const Function* work = result_.module.find_function("work");
  ASSERT_NE(work, nullptr);
  bool get_cpu = false, proxy_call = false, sync = false, marker = false;
  for (const Block& b : work->blocks) {
    for (const Instr& in : b.instrs) {
      if (in.op == Op::kMutlsFork || in.op == Op::kMutlsJoin) marker = true;
      if (in.op == Op::kCall && in.sym == "MUTLS_get_CPU") get_cpu = true;
      if (in.op == Op::kCall && in.sym == "work.proxy") proxy_call = true;
      if (in.op == Op::kCall && in.sym == "MUTLS_synchronize") sync = true;
    }
  }
  EXPECT_FALSE(marker) << "annotations must be fully lowered";
  EXPECT_TRUE(get_cpu);
  EXPECT_TRUE(proxy_call);
  EXPECT_TRUE(sync);
}

TEST_F(SpeculatorPass, ProxySavesArgsAndSpeculates) {
  const Function* proxy = result_.module.find_function("work.proxy");
  ASSERT_NE(proxy, nullptr);
  bool set_regvar = false, speculate = false;
  for (const Instr& in : proxy->blocks[0].instrs) {
    if (in.op == Op::kCall && in.sym.rfind("MUTLS_set_regvar_", 0) == 0) {
      set_regvar = true;
    }
    if (in.op == Op::kCall && in.sym == "MUTLS_speculate") speculate = true;
  }
  EXPECT_TRUE(set_regvar);
  EXPECT_TRUE(speculate);
}

TEST_F(SpeculatorPass, StubRestoresArgsAndEntersClone) {
  const Function* stub = result_.module.find_function("work.stub");
  ASSERT_NE(stub, nullptr);
  bool get_regvar = false, enters = false;
  for (const Instr& in : stub->blocks[0].instrs) {
    if (in.op == Op::kCall && in.sym.rfind("MUTLS_get_regvar_", 0) == 0) {
      get_regvar = true;
    }
    if (in.op == Op::kCall && in.sym == "work.speculative") enters = true;
  }
  EXPECT_TRUE(get_regvar);
  EXPECT_TRUE(enters);
}

TEST_F(SpeculatorPass, SaveRestoreCallsArePaired) {
  // Every synchronization path must save live locals and restore them in
  // restore blocks (preparation step 4).
  int saves = 0, restores = 0;
  for (const Function& f : result_.module.functions) {
    for (const Block& b : f.blocks) {
      for (const Instr& in : b.instrs) {
        if (in.op != Op::kCall) continue;
        if (in.sym.rfind("MUTLS_save_local_", 0) == 0) ++saves;
        if (in.sym.rfind("MUTLS_restore_local_", 0) == 0) ++restores;
      }
    }
  }
  EXPECT_GT(saves, 0);
  EXPECT_GT(restores, 0);
  EXPECT_GT(result_.reports[0].live_slots, 0);
}

TEST_F(SpeculatorPass, UnannotatedFunctionsPassThroughUnchanged) {
  Module m = parse_module(R"(
func @plain(%x: i64) : i64 {
entry:
  %two = const i64 2
  %r = mul %x, %two
  ret %r
}
)");
  PassResult r = run_speculator_pass(m);
  EXPECT_TRUE(r.reports.empty());
  ASSERT_EQ(r.module.functions.size(), 1u);
  EXPECT_EQ(print_function(r.module.functions[0]),
            print_function(m.functions[0]));
}

TEST_F(SpeculatorPass, TransformedModulePrintsAndReparses) {
  std::string text = print_module(result_.module);
  Module again = parse_module(text);
  EXPECT_TRUE(verify_module(again).empty());
}

}  // namespace
}  // namespace mutls::speculator
