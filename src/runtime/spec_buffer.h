// SpecBuffer — the runtime's pluggable speculative-buffer backend API.
//
// This is the contract between the speculation protocol (ThreadManager,
// Ctx, the IR interpreter) and speculative memory buffering: everything
// above the runtime talks to SpecBuffer, never to a concrete backend, so a
// new buffering strategy is a drop-in backend rather than a rewrite.
//
// Backends (see BufferBackend in "runtime/enums.h"):
//   kStaticHash  — the paper's static hash + bounded overflow map
//                  ("runtime/global_buffer.h"); capacity exhaustion dooms
//                  the speculation.
//   kGrowableLog — open-addressed growable index over an append-only log
//                  ("runtime/growable_log_buffer.h"); capacity pressure
//                  resizes instead of dooming.
//
// Dispatch is static: the backend enum is resolved once when the owning
// virtual CPU is configured, and every operation branches once to a fully
// inlined backend body — no virtual call on the load/store hot path. The
// byte-splitting load/store loops and the set algorithms (validation,
// commit, tree-form merge of paper IV-F) are written once here as
// templates over the backend primitives:
//
//   read_word_view / peek_word_view / write_word / adopt_read
//   for_each_read / for_each_write
//   reset / doom / pressure / entry counts / SpecBufferStats
//
// The double dispatch in validate_against/merge_into makes the join-time
// pairings generic, so buffers of *different* backends compose (exercised
// by the cross-backend tests even though a ThreadManager configures all
// its buffers uniformly).
#pragma once

#include <algorithm>
#include <cstdint>

#include "runtime/buffer_stats.h"
#include "runtime/enums.h"
#include "runtime/global_buffer.h"
#include "runtime/growable_log_buffer.h"
#include "runtime/memory.h"

namespace mutls {

class SpecBuffer {
  // The whole API funnels through these two: one predictable branch on the
  // enum fixed at init, then a fully inlined backend body. Defined before
  // first use — their deduced return types must be visible to the inline
  // methods below.
  template <typename Fn>
  decltype(auto) dispatch(Fn&& fn) {
    return backend_ == BufferBackend::kGrowableLog ? fn(growable_log_)
                                                   : fn(static_hash_);
  }
  template <typename Fn>
  decltype(auto) dispatch(Fn&& fn) const {
    return backend_ == BufferBackend::kGrowableLog ? fn(growable_log_)
                                                   : fn(static_hash_);
  }

  BufferBackend backend_ = BufferBackend::kStaticHash;
  GlobalBuffer static_hash_;
  GrowableLogBuffer growable_log_;

 public:
  SpecBuffer() = default;
  // The backends are self-referential after init (their maps point at the
  // owner's stats); copying/moving a buffer is never needed and is deleted
  // down the whole stack.
  SpecBuffer(const SpecBuffer&) = delete;
  SpecBuffer& operator=(const SpecBuffer&) = delete;

  // Configures the selected backend. `log2_entries` sizes the table (the
  // static size for kStaticHash, the initial size for kGrowableLog);
  // `overflow_cap` bounds kStaticHash's temporary buffer and is ignored by
  // kGrowableLog.
  void init(BufferBackend backend, int log2_entries, size_t overflow_cap) {
    backend_ = backend;
    dispatch([&](auto& b) { b.init(log2_entries, overflow_cap); });
  }

  BufferBackend backend() const { return backend_; }

  // --- speculative access path (runs on the owning speculative thread) ---

  // Reads `size` bytes of the thread's speculative view of `addr`.
  void load_bytes(uintptr_t addr, void* out, size_t size) {
    dispatch([&](auto& b) {
      char* dst = static_cast<char*>(out);
      uintptr_t a = addr;
      size_t left = size;
      while (left > 0) {
        uintptr_t word_addr = word_align_down(a);
        size_t off = a - word_addr;
        size_t n = std::min(kWordSize - off, left);
        uint64_t w = b.read_word_view(word_addr);
        copy_from_word(w, off, n, dst);
        a += n;
        dst += n;
        left -= n;
      }
    });
  }

  // Buffers a write of `size` bytes at `addr`.
  void store_bytes(uintptr_t addr, const void* src, size_t size) {
    dispatch([&](auto& b) {
      const char* s = static_cast<const char*>(src);
      uintptr_t a = addr;
      size_t left = size;
      while (left > 0) {
        uintptr_t word_addr = word_align_down(a);
        size_t off = a - word_addr;
        size_t n = std::min(kWordSize - off, left);
        uint64_t v = 0;
        copy_into_word(v, off, n, s);
        b.write_word(word_addr, v, byte_mask(off, n));
        if (b.doomed()) return;
        a += n;
        s += n;
        left -= n;
      }
    });
  }

  // --- join-time operations (both threads stopped at the flag barrier) ---

  // Validates the read-set against main memory (non-speculative joiner).
  bool validate_against_memory() {
    return dispatch([&](auto& b) {
      bool ok = true;
      uint64_t words = 0;
      b.for_each_read([&](uintptr_t word_addr, uint64_t data) {
        ++words;
        if (atomic_word_load(word_addr) != data) ok = false;
      });
      b.stats_mutable().validated_words += words;
      return ok;
    });
  }

  // Validates the read-set against a speculative joiner's buffered view.
  bool validate_against(SpecBuffer& joiner) {
    return dispatch([&](auto& b) {
      return joiner.dispatch([&](auto& j) {
        bool ok = true;
        uint64_t words = 0;
        b.for_each_read([&](uintptr_t word_addr, uint64_t data) {
          ++words;
          if (j.peek_word_view(word_addr) != data) ok = false;
        });
        b.stats_mutable().validated_words += words;
        return ok;
      });
    });
  }

  // Commits marked write-set bytes to main memory.
  void commit_to_memory() {
    dispatch([&](auto& b) {
      b.for_each_write([](uintptr_t word_addr, uint64_t data, uint64_t mark) {
        if (mark == kFullMark) {
          atomic_word_store(word_addr, data);
          return;
        }
        const char* bytes = reinterpret_cast<const char*>(&data);
        for (size_t i = 0; i < kWordSize; ++i) {
          if (mark & (0xffull << (8 * i))) {
            atomic_byte_store(word_addr + i, static_cast<uint8_t>(bytes[i]));
          }
        }
      });
    });
  }

  // Merges this buffer into a *speculative* joiner: writes overlay the
  // joiner's write-set (this thread is logically later, so its bytes win);
  // reads not fully covered by the joiner's writes join the joiner's
  // read-set so the eventual non-speculative validation still covers them.
  void merge_into(SpecBuffer& joiner) {
    dispatch([&](auto& b) {
      joiner.dispatch([&](auto& j) {
        b.for_each_write([&](uintptr_t word_addr, uint64_t data,
                             uint64_t mark) { j.adopt_write(word_addr, data, mark); });
        b.for_each_read([&](uintptr_t word_addr, uint64_t data) {
          j.adopt_read(word_addr, data);
        });
      });
    });
  }

  // --- lifecycle, doom and pressure signals, statistics ---

  // Discards all buffered state; clears doom.
  void reset() {
    dispatch([](auto& b) { b.reset(); });
  }

  bool doomed() const {
    return dispatch([](const auto& b) { return b.doomed(); });
  }
  const char* doom_reason() const {
    return dispatch([](const auto& b) { return b.doom_reason(); });
  }
  void doom(const char* reason) {
    dispatch([&](auto& b) { b.doom(reason); });
  }

  // Backend-defined capacity pressure: the static hash is spilling into its
  // bounded overflow map, or the growable log resized this speculation.
  bool pressure() const {
    return dispatch([](const auto& b) { return b.pressure(); });
  }

  size_t read_entries() const {
    return dispatch([](const auto& b) { return b.read_entries(); });
  }
  size_t write_entries() const {
    return dispatch([](const auto& b) { return b.write_entries(); });
  }

  // Cost-counter snapshot. Survives reset(); zeroed by clear_stats() when a
  // virtual-CPU slot is re-armed for a new speculation.
  const SpecBufferStats& stats() const {
    return dispatch(
        [](const auto& b) -> const SpecBufferStats& { return b.stats(); });
  }
  void clear_stats() {
    dispatch([](auto& b) { b.clear_stats(); });
  }
};

}  // namespace mutls
