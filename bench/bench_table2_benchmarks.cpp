// Table II — benchmark suite characterization.
//
// Prints the paper's Table II columns plus the measured memory access
// density rho = Nrw / T (the paper's definition of compute- vs
// memory-intensity: accesses per second of runtime, not total footprint).
#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace mutls;
  using namespace mutls::bench;
  HarnessArgs args = parse_args(argc, argv);

  std::printf("TABLE II. BENCHMARKS\n");
  std::printf("%-11s %-38s %-20s %-10s %-13s %s\n", "Benchmark", "Data",
              "Pattern", "Class", "rho (Macc/s)", "checksum-ok");

  for (BenchWorkload& w : make_workloads(args)) {
    workloads::SeqRun seq = w.seq();
    workloads::SpecRun spec = w.spec(2, ForkModel::kMixed, 0.0);
    double rho = spec.stats.access_density() / 1e6;
    std::printf("%-11s %-38s %-20s %-10s %-13.2f %s\n", w.name.c_str(),
                w.data_desc, w.pattern,
                w.compute_intensive ? "compute" : "memory", rho,
                spec.checksum == seq.checksum ? "yes" : "NO");
  }
  std::printf(
      "\nNote: the paper classifies by access density rho, not footprint;\n"
      "compute-intensive rows should show orders of magnitude lower rho.\n");
  return 0;
}
