// Non-owning callable reference: the std::function replacement for hook
// parameters that are only ever invoked synchronously inside the callee
// (speculate()'s live-in setup, synchronize()'s on_settled). A FunctionRef
// is two words — object pointer + invoker — and never allocates, where
// std::function may heap-allocate its capture even for a hook that dies
// before the call returns. The referee must outlive the call; binding a
// temporary lambda at a call site is fine (it lives to the end of the full
// expression), storing a FunctionRef is not.
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace mutls {

template <typename Sig>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  FunctionRef() = default;
  FunctionRef(std::nullptr_t) {}  // NOLINT: match std::function's = {} idiom

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cv_t<std::remove_reference_t<F>>,
                                FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f)  // NOLINT: implicit by design, like std::function
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        invoke_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  explicit operator bool() const { return invoke_ != nullptr; }

  R operator()(Args... args) const {
    return invoke_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_ = nullptr;
  R (*invoke_)(void*, Args...) = nullptr;
};

}  // namespace mutls
