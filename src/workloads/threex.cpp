#include "workloads/threex.h"

namespace mutls::workloads {

SeqRun ThreeX::run_seq(const Params& p) {
  Stopwatch sw;
  uint64_t total = 0;
  for (int64_t i = 1; i <= p.n; ++i) {
    total += trajectory(static_cast<uint64_t>(i));
  }
  return SeqRun{hash_mix(hash_begin(), total), sw.elapsed_sec()};
}

SpecRun ThreeX::run_spec(Runtime& rt, const Params& p, ForkModel model) {
  SharedArray<uint64_t> partial(rt, static_cast<size_t>(p.chunks), 0);
  Stopwatch sw;
  RunStats stats = rt.run([&](Ctx& ctx) {
    spec_for(rt, ctx, 1, p.n + 1, p.chunks, model,
             [&](Ctx& c, int chunk, int64_t lo, int64_t hi) {
               uint64_t sum = 0;
               for (int64_t i = lo; i < hi; ++i) {
                 sum += trajectory(static_cast<uint64_t>(i));
                 if ((i & 0xffff) == 0) c.check_point();
               }
               // One shared write per chunk: the partial-sum slot.
               c.store(&partial[static_cast<size_t>(chunk)], sum);
             });
  });
  double secs = sw.elapsed_sec();
  uint64_t total = 0;
  for (size_t i = 0; i < partial.size(); ++i) total += partial[i];
  return SpecRun{hash_mix(hash_begin(), total), secs, stats};
}

}  // namespace mutls::workloads
