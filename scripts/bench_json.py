#!/usr/bin/env python3
"""Run the figure-reproduction benches and emit BENCH_results.json.

Seeds and extends the repo's perf trajectory: each invocation runs the
fig3..fig11 benches (plus the table2 harness) from a build directory,
captures wall time, exit status and the printed MEASURED/SIMULATED rows,
and writes one structured JSON document. Numeric-looking table rows are
parsed into (label, values) pairs so later tooling can diff runs without
re-parsing free text; the raw stdout is preserved verbatim as well.

Usage:
  scripts/bench_json.py --bench-dir build/bench [--out BENCH_results.json]
                        [--mode quick|full|paper] [--no-sim|--no-measured]

The CMake target `bench_json` wraps this with the default build tree.
"""

import argparse
import datetime
import json
import platform
import re
import subprocess
import sys
import time
from pathlib import Path

FIG_BENCHES = [
    "bench_fig3_compute_speedup",
    "bench_fig4_memory_speedup",
    "bench_fig5_critical_efficiency",
    "bench_fig6_speculative_efficiency",
    "bench_fig7_power_efficiency",
    "bench_fig8_critical_breakdown",
    "bench_fig9_speculative_breakdown",
    "bench_fig10_forking_models",
    "bench_fig11_rollback_sensitivity",
    "bench_table2_benchmarks",
]

# Google-Benchmark binary whose buffered benches sweep the SpecBuffer
# backends; its per-run counters (resize_events, avg_probe_len,
# validated_words, overflow_events) are the cost breakdown behind any
# backend comparison, so they ride along in the JSON document.
MICRO_BENCH = "bench_micro_runtime"
MICRO_FILTER = "Buffered"

NUM_RE = re.compile(r"^-?\d+(\.\d+)?[x%]?$")


def parse_rows(stdout: str):
    """Extract (label, [numbers]) rows from a bench's table output."""
    rows = []
    for line in stdout.splitlines():
        tokens = line.split()
        if len(tokens) < 2:
            continue
        values = []
        for tok in tokens[1:]:
            if NUM_RE.match(tok):
                values.append(float(tok.rstrip("x%")))
        # A data row has a non-numeric label and mostly numeric columns.
        if values and not NUM_RE.match(tokens[0]) and \
                len(values) >= (len(tokens) - 1) / 2:
            rows.append({"label": " ".join(
                t for t in tokens if not NUM_RE.match(t)), "values": values})
    return rows


def run_micro(bench_dir: Path, timeout: int, quick: bool):
    """Run the backend-sweeping microbenches, returning counter rows."""
    exe = bench_dir / MICRO_BENCH
    entry = {"bench": MICRO_BENCH, "status": "missing"}
    if not exe.exists():
        return entry
    cmd = [str(exe), f"--benchmark_filter={MICRO_FILTER}",
           "--benchmark_format=json"]
    if quick:
        # Plain double, not "0.05s": old libbenchmark rejects the suffix
        # while 1.8+ merely warns about the missing one.
        cmd.append("--benchmark_min_time=0.05")
    start = time.monotonic()
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=timeout)
        entry["seconds"] = round(time.monotonic() - start, 3)
        entry["exit_code"] = proc.returncode
        if proc.returncode != 0:
            entry["status"] = "failed"
            entry["stderr"] = proc.stderr.splitlines()
            return entry
        doc = json.loads(proc.stdout)
        runs = []
        for b in doc.get("benchmarks", []):
            run = {"name": b.get("name"), "backend": b.get("label")}
            for key in ("items_per_second", "resize_events",
                        "overflow_events", "validated_words",
                        "avg_probe_len", "rollbacks", "commits"):
                if key in b:
                    run[key] = b[key]
            runs.append(run)
        entry["status"] = "ok"
        entry["runs"] = runs
    except subprocess.TimeoutExpired:
        entry["status"] = "timeout"
        entry["seconds"] = round(time.monotonic() - start, 3)
    except (json.JSONDecodeError, OSError) as e:
        entry["status"] = "failed"
        entry["error"] = str(e)
    return entry


def git_rev(repo: Path) -> str:
    try:
        rev = subprocess.run(
            ["git", "-C", str(repo), "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10).stdout.strip()
        return rev or "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--bench-dir", required=True,
                    help="directory containing the built bench binaries")
    ap.add_argument("--out", default="BENCH_results.json")
    ap.add_argument("--mode", choices=["quick", "full", "paper"],
                    default="quick",
                    help="workload sizes: quick (CI smoke), full, paper")
    ap.add_argument("--no-sim", action="store_true")
    ap.add_argument("--no-measured", action="store_true")
    ap.add_argument("--no-micro", action="store_true",
                    help="skip the backend-sweeping microbench counters")
    ap.add_argument("--timeout", type=int, default=1800,
                    help="per-bench timeout in seconds")
    args = ap.parse_args()

    bench_dir = Path(args.bench_dir)
    flags = []
    if args.mode == "quick":
        flags.append("--quick")
    elif args.mode == "paper":
        flags.append("--paper")
    if args.no_sim:
        flags.append("--no-sim")
    if args.no_measured:
        flags.append("--no-measured")

    repo = Path(__file__).resolve().parent.parent
    results = []
    for name in FIG_BENCHES:
        exe = bench_dir / name
        if not exe.exists():
            results.append({"bench": name, "status": "missing"})
            print(f"[bench_json] {name}: MISSING", file=sys.stderr)
            continue
        start = time.monotonic()
        try:
            proc = subprocess.run([str(exe), *flags], capture_output=True,
                                  text=True, timeout=args.timeout)
            status = "ok" if proc.returncode == 0 else "failed"
            entry = {
                "bench": name,
                "status": status,
                "exit_code": proc.returncode,
                "seconds": round(time.monotonic() - start, 3),
                "rows": parse_rows(proc.stdout),
                "stdout": proc.stdout.splitlines(),
            }
            if proc.stderr.strip():
                entry["stderr"] = proc.stderr.splitlines()
        except subprocess.TimeoutExpired:
            entry = {"bench": name, "status": "timeout",
                     "seconds": round(time.monotonic() - start, 3)}
        results.append(entry)
        print(f"[bench_json] {name}: {entry['status']} "
              f"({entry.get('seconds', 0)}s)", file=sys.stderr)

    if not args.no_micro:
        entry = run_micro(bench_dir, args.timeout, args.mode == "quick")
        results.append(entry)
        print(f"[bench_json] {MICRO_BENCH}: {entry['status']} "
              f"({entry.get('seconds', 0)}s)", file=sys.stderr)

    doc = {
        "schema": "mutls-bench-results/1",
        "generated_utc": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "git_rev": git_rev(repo),
        "mode": args.mode,
        "flags": flags,
        "host": {
            "machine": platform.machine(),
            "system": platform.system(),
            "release": platform.release(),
        },
        "benches": results,
    }
    Path(args.out).write_text(json.dumps(doc, indent=1) + "\n")
    print(f"[bench_json] wrote {args.out}", file=sys.stderr)
    failed = [r["bench"] for r in results if r.get("status") != "ok"]
    if failed:
        print(f"[bench_json] FAILED: {', '.join(failed)}", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
