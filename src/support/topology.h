// NUMA topology probe — sysfs-based, libnuma-free, with a portable
// single-node fallback.
//
// The runtime needs exactly two facts from the machine: how many NUMA
// nodes it has, and which CPUs belong to each, so the ThreadManager can
// keep per-node idle freelists, place children same-node-first, and pin
// the per-node spin-budget calibration probe. Linux exposes both through
// plain sysfs files (`/sys/devices/system/node/online` plus each node's
// `cpulist`), so no libnuma dependency is taken; on any other platform —
// or when sysfs is absent/unreadable — the probe degrades to one node
// holding every CPU, which reproduces the pre-NUMA behavior exactly.
//
// Tests (and the `numa_nodes` config override) build fake multi-node
// topologies through Topology::fake(): same shape, `probed == false`, so
// consumers know the CPU ids are synthetic and must not be used for
// affinity.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include <cstdio>
#include <thread>

namespace mutls {

// Parses a sysfs CPU-list string ("0-3,8,10-11") into the expanded id
// list. Malformed input yields the ids parsed up to the malformation —
// callers treat an empty result as a probe failure. Exposed standalone so
// the parser is unit-testable without a sysfs.
inline std::vector<int> parse_cpu_list(std::string_view s) {
  std::vector<int> out;
  size_t i = 0;
  auto digit = [&] { return i < s.size() && s[i] >= '0' && s[i] <= '9'; };
  auto number = [&] {
    int v = 0;
    while (digit()) v = v * 10 + (s[i++] - '0');
    return v;
  };
  while (i < s.size()) {
    if (!digit()) return out;
    int lo = number();
    int hi = lo;
    if (i < s.size() && s[i] == '-') {
      ++i;
      if (!digit()) return out;
      hi = number();
    }
    if (hi < lo) return out;
    for (int c = lo; c <= hi; ++c) out.push_back(c);
    if (i < s.size()) {
      if (s[i] != ',' && s[i] != '\n') return out;
      ++i;
    }
  }
  return out;
}

struct Topology {
  // Per-node CPU id lists; node_cpus.size() is the node count (>= 1).
  std::vector<std::vector<int>> node_cpus;
  // True when the CPU ids came from sysfs and are real (usable for thread
  // affinity); false for the fallback and for fake test topologies.
  bool probed = false;

  // Freelist heads and calibration caches are fixed-size arrays; a box
  // with more nodes than this is folded down to the cap.
  static constexpr int kMaxNodes = 16;

  int nodes() const { return static_cast<int>(node_cpus.size()); }

  // The portable fallback: one node holding every hardware thread.
  static Topology single_node() {
    Topology t;
    int n = static_cast<int>(std::thread::hardware_concurrency());
    if (n < 1) n = 1;
    std::vector<int> cpus;
    cpus.reserve(static_cast<size_t>(n));
    for (int c = 0; c < n; ++c) cpus.push_back(c);
    t.node_cpus.push_back(std::move(cpus));
    return t;
  }

  // Synthetic multi-node topology for tests and the `numa_nodes` config
  // override: `nodes` nodes of `cpus_per_node` sequential fake CPU ids.
  static Topology fake(int nodes, int cpus_per_node = 1) {
    Topology t;
    if (nodes < 1) nodes = 1;
    if (nodes > kMaxNodes) nodes = kMaxNodes;
    if (cpus_per_node < 1) cpus_per_node = 1;
    int id = 0;
    for (int n = 0; n < nodes; ++n) {
      std::vector<int> cpus;
      for (int c = 0; c < cpus_per_node; ++c) cpus.push_back(id++);
      t.node_cpus.push_back(std::move(cpus));
    }
    return t;
  }

  // Reads one small sysfs file; empty string on any failure.
  static std::string read_sysfs(const char* path) {
    std::FILE* f = std::fopen(path, "r");
    if (f == nullptr) return {};
    char buf[4096];
    size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    return std::string(buf, n);
  }

  // Probes /sys/devices/system/node; any missing or malformed file falls
  // back to the single-node topology (never fails, never throws).
  static Topology probe() {
    std::string online = read_sysfs("/sys/devices/system/node/online");
    if (online.empty()) return single_node();
    std::vector<int> node_ids = parse_cpu_list(online);
    if (node_ids.empty()) return single_node();
    if (node_ids.size() > static_cast<size_t>(kMaxNodes)) {
      node_ids.resize(static_cast<size_t>(kMaxNodes));
    }
    Topology t;
    for (int id : node_ids) {
      char path[128];
      std::snprintf(path, sizeof(path),
                    "/sys/devices/system/node/node%d/cpulist", id);
      std::vector<int> cpus = parse_cpu_list(read_sysfs(path));
      // A node that exists but holds no CPUs (memory-only node) gets no
      // freelist of its own; skip it rather than strand ranks on it.
      if (!cpus.empty()) t.node_cpus.push_back(std::move(cpus));
    }
    if (t.node_cpus.empty()) return single_node();
    t.probed = true;
    return t;
  }
};

}  // namespace mutls
