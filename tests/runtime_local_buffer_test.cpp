// Unit tests for register/stack variable transfer, pointer mapping and the
// stack-frame machinery (paper IV-G3, IV-H).
#include "runtime/local_buffer.h"

#include <gtest/gtest.h>

namespace mutls {
namespace {

TEST(RegisterBuffer, SetGetRoundTrip) {
  RegisterBuffer r;
  r.init(8);
  EXPECT_TRUE(r.set(0, 42));
  EXPECT_TRUE(r.set(7, 99));
  uint64_t v = 0;
  ASSERT_TRUE(r.get(0, v));
  EXPECT_EQ(v, 42u);
  ASSERT_TRUE(r.get(7, v));
  EXPECT_EQ(v, 99u);
}

TEST(RegisterBuffer, OutOfRangeOffsetFails) {
  // The paper: "If there are too many variables and the assigned offset
  // exceeds the array size, the speculator pass reports an error and
  // speculation fails."
  RegisterBuffer r;
  r.init(4);
  EXPECT_FALSE(r.set(4, 1));
  EXPECT_FALSE(r.set(-1, 1));
  uint64_t v;
  EXPECT_FALSE(r.get(4, v));
  EXPECT_EQ(r.capacity(), 4);
}

TEST(StackBuffer, SaveRestoreRoundTrip) {
  StackBuffer s;
  int src[4] = {1, 2, 3, 4};
  s.set(0, reinterpret_cast<uintptr_t>(src), src, sizeof(src));
  int dst[4] = {};
  ASSERT_TRUE(
      s.get(0, reinterpret_cast<uintptr_t>(dst), dst, sizeof(dst)));
  EXPECT_EQ(dst[0], 1);
  EXPECT_EQ(dst[3], 4);
}

TEST(StackBuffer, SizeMismatchFails) {
  StackBuffer s;
  int x = 5;
  s.set(0, reinterpret_cast<uintptr_t>(&x), &x, sizeof(x));
  long y;
  EXPECT_FALSE(s.get(0, reinterpret_cast<uintptr_t>(&y), &y, sizeof(y)));
}

TEST(StackBuffer, MissingOffsetFails) {
  StackBuffer s;
  int y;
  EXPECT_FALSE(s.get(3, reinterpret_cast<uintptr_t>(&y), &y, sizeof(y)));
  EXPECT_EQ(s.lookup(3), nullptr);
}

TEST(StackBuffer, PointerMappingTranslatesInteriorPointers) {
  // Writer (speculative thread) saved a 4-int array; reader (parent)
  // restored it at a different address. A pointer to element 2 of the
  // writer's copy must map to element 2 of the reader's copy.
  StackBuffer s;
  int writer_arr[4] = {1, 2, 3, 4};
  int reader_arr[4] = {};
  s.set(0, reinterpret_cast<uintptr_t>(writer_arr), writer_arr,
        sizeof(writer_arr));
  ASSERT_TRUE(s.get(0, reinterpret_cast<uintptr_t>(reader_arr), reader_arr,
                    sizeof(reader_arr)));
  uintptr_t interior = reinterpret_cast<uintptr_t>(&writer_arr[2]);
  uintptr_t mapped = s.map_pointer(interior);
  EXPECT_EQ(mapped, reinterpret_cast<uintptr_t>(&reader_arr[2]));
}

TEST(StackBuffer, PointerOutsideSavedVariablesIsNotMapped) {
  StackBuffer s;
  int a = 0, b = 0;
  s.set(0, reinterpret_cast<uintptr_t>(&a), &a, sizeof(a));
  int r;
  s.get(0, reinterpret_cast<uintptr_t>(&r), &r, sizeof(r));
  EXPECT_EQ(s.map_pointer(reinterpret_cast<uintptr_t>(&b)), 0u);
}

TEST(StackBuffer, UnrestoredEntryDoesNotMap) {
  StackBuffer s;
  int a = 0;
  s.set(0, reinterpret_cast<uintptr_t>(&a), &a, sizeof(a));
  // No get() happened: there is no reader-side address yet.
  EXPECT_EQ(s.map_pointer(reinterpret_cast<uintptr_t>(&a)), 0u);
}

TEST(LocalBuffer, StartsWithEntryFrame) {
  LocalBuffer l;
  l.init(16);
  EXPECT_EQ(l.frame_count(), 1u);
  EXPECT_FALSE(l.pop_frame()) << "cannot return from the entry function";
}

TEST(LocalBuffer, PushPopFramesTrackCallChain) {
  LocalBuffer l;
  l.init(16);
  l.push_frame(3, 7);
  l.push_frame(5, 9);
  EXPECT_EQ(l.frame_count(), 3u);
  EXPECT_EQ(l.top().entry_counter, 5);
  EXPECT_EQ(l.top().function_id, 9);
  EXPECT_TRUE(l.pop_frame());
  EXPECT_EQ(l.top().entry_counter, 3);
  EXPECT_TRUE(l.pop_frame());
  EXPECT_FALSE(l.pop_frame());
}

TEST(LocalBuffer, ResetRestoresSingleFrame) {
  LocalBuffer l;
  l.init(16);
  l.push_frame(1, 1);
  l.top().regs.set(0, 5);
  l.reset();
  EXPECT_EQ(l.frame_count(), 1u);
  uint64_t v = 1;
  ASSERT_TRUE(l.top().regs.get(0, v));
  EXPECT_EQ(v, 0u) << "reset must clear register slots";
}

TEST(LocalBuffer, MapPointerSearchesAllFrames) {
  LocalBuffer l;
  l.init(16);
  int w0 = 0, r0 = 0;
  l.top().stack.set(0, reinterpret_cast<uintptr_t>(&w0), &w0, sizeof(w0));
  l.top().stack.get(0, reinterpret_cast<uintptr_t>(&r0), &r0, sizeof(r0));
  l.push_frame(2, 4);
  int w1 = 0, r1 = 0;
  l.top().stack.set(0, reinterpret_cast<uintptr_t>(&w1), &w1, sizeof(w1));
  l.top().stack.get(0, reinterpret_cast<uintptr_t>(&r1), &r1, sizeof(r1));

  EXPECT_EQ(l.map_pointer(reinterpret_cast<uintptr_t>(&w0)),
            reinterpret_cast<uintptr_t>(&r0));
  EXPECT_EQ(l.map_pointer(reinterpret_cast<uintptr_t>(&w1)),
            reinterpret_cast<uintptr_t>(&r1));
  // Unknown pointers pass through unchanged (identity), as global-space
  // pointers must not be remapped.
  int g = 0;
  EXPECT_EQ(l.map_pointer(reinterpret_cast<uintptr_t>(&g)),
            reinterpret_cast<uintptr_t>(&g));
}

}  // namespace
}  // namespace mutls
