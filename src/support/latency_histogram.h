// Log-bucketed latency histogram (HDR-histogram style) for the
// sustained-load serving harness: fixed storage, no allocation per sample,
// ~3% relative value resolution across the full uint64 nanosecond range.
//
// Percentile benches record one sample per fork-to-settle round trip — at
// hundreds of thousands per second, so record() must be a handful of bit
// operations on in-object storage. Values bucket by (octave, 5-bit
// sub-bucket): every power-of-two range splits into 32 linear sub-buckets,
// bounding the relative error of any reported percentile at 1/32. The
// whole histogram is one flat array — memset-clearable, mergeable across
// sweep cells, trivially copyable.
//
// Not thread-safe by design (like TimeLedger): the joiner thread owns the
// histogram and records at each settle it observes; merge() combines
// per-thread or per-cell histograms afterwards.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>

#include "support/check.h"

namespace mutls {

class LatencyHistogram {
 public:
  // 32 linear sub-buckets per octave: ~3.1% worst-case relative error.
  static constexpr int kSubBits = 5;
  static constexpr int kSubBuckets = 1 << kSubBits;
  // Values below kSubBuckets map identity (exact); each of the remaining
  // 64 - kSubBits octaves contributes kSubBuckets buckets.
  static constexpr int kBuckets = (64 - kSubBits + 1) * kSubBuckets;

  void record(uint64_t value) {
    ++counts_[bucket_of(value)];
    ++total_;
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }

  uint64_t count() const { return total_; }
  uint64_t min() const { return total_ ? min_ : 0; }
  uint64_t max() const { return max_; }

  // Value at quantile q in [0, 1] (q = 0.5 → p50, 0.999 → p999): the upper
  // edge of the bucket holding the sample of rank ceil(q * count), i.e. at
  // most ~3.1% above the true sample. 0 when empty. q = 0 reports min().
  uint64_t percentile(double q) const {
    if (total_ == 0) return 0;
    if (q <= 0.0) return min();
    if (q > 1.0) q = 1.0;
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total_));
    if (rank == 0) rank = 1;
    if (rank > total_) rank = total_;
    uint64_t cum = 0;
    for (int b = 0; b < kBuckets; ++b) {
      cum += counts_[b];
      if (cum >= rank) {
        uint64_t edge = bucket_upper_edge(b);
        // The top bucket's edge can overshoot the largest recorded sample;
        // never report a percentile beyond the observed max.
        return edge < max_ ? edge : max_;
      }
    }
    return max_;
  }

  // Mean of bucket upper edges weighted by count — an upper estimate of
  // the true mean with the same ~3.1% bound.
  double mean() const {
    if (total_ == 0) return 0.0;
    double sum = 0.0;
    for (int b = 0; b < kBuckets; ++b) {
      if (counts_[b]) {
        sum += static_cast<double>(counts_[b]) *
               static_cast<double>(bucket_upper_edge(b));
      }
    }
    return sum / static_cast<double>(total_);
  }

  void merge(const LatencyHistogram& o) {
    for (int b = 0; b < kBuckets; ++b) counts_[b] += o.counts_[b];
    total_ += o.total_;
    if (o.total_) {
      if (o.min_ < min_) min_ = o.min_;
      if (o.max_ > max_) max_ = o.max_;
    }
  }

  void clear() {
    std::memset(counts_, 0, sizeof(counts_));
    total_ = 0;
    min_ = UINT64_MAX;
    max_ = 0;
  }

  // Exposed for the bucketing unit tests.
  static int bucket_of(uint64_t v) {
    if (v < kSubBuckets) return static_cast<int>(v);
    int exp = 63 - std::countl_zero(v);  // v >= 32, so exp >= kSubBits
    int sub = static_cast<int>((v >> (exp - kSubBits)) & (kSubBuckets - 1));
    return (exp - kSubBits + 1) * kSubBuckets + sub;
  }

  // Largest value mapping into bucket `b` (inclusive).
  static uint64_t bucket_upper_edge(int b) {
    MUTLS_DCHECK(b >= 0 && b < kBuckets, "histogram bucket out of range");
    if (b < kSubBuckets) return static_cast<uint64_t>(b);
    int exp = b / kSubBuckets - 1 + kSubBits;
    int sub = b % kSubBuckets;
    uint64_t base = (uint64_t{1} << exp) +
                    (static_cast<uint64_t>(sub) << (exp - kSubBits));
    uint64_t width = uint64_t{1} << (exp - kSubBits);
    return base + width - 1;
  }

 private:
  uint64_t counts_[kBuckets] = {};
  uint64_t total_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
};

}  // namespace mutls
