#include "support/latency_histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "support/prng.h"

namespace mutls {
namespace {

TEST(LatencyHistogram, EmptyReportsZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(LatencyHistogram, SmallValuesAreExact) {
  LatencyHistogram h;
  for (uint64_t v = 0; v < 32; ++v) h.record(v);
  EXPECT_EQ(h.count(), 32u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 31u);
  // Below kSubBuckets the mapping is identity, so percentiles are exact.
  EXPECT_EQ(h.percentile(1.0), 31u);
  EXPECT_EQ(h.percentile(0.5), 15u);
}

TEST(LatencyHistogram, BucketMappingIsMonotoneAndContiguous) {
  // Every bucket's upper edge maps back into that bucket, and the next
  // value starts the next bucket — no gaps, no overlaps, across the
  // identity/octave boundary and octave steps.
  for (int b = 0; b < LatencyHistogram::kBuckets - 1; ++b) {
    uint64_t edge = LatencyHistogram::bucket_upper_edge(b);
    ASSERT_EQ(LatencyHistogram::bucket_of(edge), b) << "edge of " << b;
    if (edge != UINT64_MAX) {
      ASSERT_EQ(LatencyHistogram::bucket_of(edge + 1), b + 1)
          << "successor of " << b;
    }
  }
  EXPECT_EQ(LatencyHistogram::bucket_of(UINT64_MAX),
            LatencyHistogram::kBuckets - 1);
}

TEST(LatencyHistogram, RelativeErrorBounded) {
  // The reported percentile is the bucket upper edge: at most 1/32 above
  // the recorded value (one sub-bucket width), never below it.
  Xorshift64 rng(5);
  for (int i = 0; i < 2000; ++i) {
    uint64_t v = rng.next() >> (rng.next_below(60));
    LatencyHistogram h;
    h.record(v);
    uint64_t p = h.percentile(1.0);
    EXPECT_GE(p, v);
    // Capped at the observed max, so a single sample reports exactly.
    EXPECT_EQ(p, v);
    // The raw bucket edge is within 1/32 above.
    uint64_t edge =
        LatencyHistogram::bucket_upper_edge(LatencyHistogram::bucket_of(v));
    EXPECT_LE(static_cast<double>(edge - v),
              static_cast<double>(v) / 32.0 + 1.0);
  }
}

TEST(LatencyHistogram, PercentilesTrackSortedSamples) {
  Xorshift64 rng(9);
  std::vector<uint64_t> samples;
  LatencyHistogram h;
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = 100 + rng.next_below(1'000'000);
    samples.push_back(v);
    h.record(v);
  }
  std::sort(samples.begin(), samples.end());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    uint64_t exact =
        samples[static_cast<size_t>(q * samples.size()) - 1];
    uint64_t approx = h.percentile(q);
    EXPECT_GE(static_cast<double>(approx), exact * 0.96) << "q=" << q;
    EXPECT_LE(static_cast<double>(approx), exact * 1.04) << "q=" << q;
  }
}

TEST(LatencyHistogram, MergeEqualsCombinedRecording) {
  Xorshift64 rng(13);
  LatencyHistogram a, b, both;
  for (int i = 0; i < 5000; ++i) {
    uint64_t v = rng.next() >> 40;
    if (i % 2) {
      a.record(v);
    } else {
      b.record(v);
    }
    both.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.min(), both.min());
  EXPECT_EQ(a.max(), both.max());
  for (double q : {0.1, 0.5, 0.99}) {
    EXPECT_EQ(a.percentile(q), both.percentile(q));
  }
}

TEST(LatencyHistogram, ClearResets) {
  LatencyHistogram h;
  h.record(12345);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0u);
  h.record(7);
  EXPECT_EQ(h.percentile(1.0), 7u);
}

}  // namespace
}  // namespace mutls
