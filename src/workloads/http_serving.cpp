#include "workloads/http_serving.h"

namespace mutls::workloads {

namespace {

serving::TrafficConfig traffic_of(const HttpServing::Params& p) {
  serving::TrafficConfig t;
  t.num_keys = p.num_keys;
  t.zipf_s = p.zipf_s;
  t.put_ratio = p.put_ratio;
  t.malformed_ratio = p.malformed_ratio;
  t.seed = p.seed;
  return t;
}

}  // namespace

uint64_t HttpServing::digest(const serving::CacheIndex& index,
                             const serving::BatchCounters& totals) {
  uint64_t h = hash_begin();
  h = hash_mix(h, index.checksum());
  h = hash_mix(h, totals.requests);
  h = hash_mix(h, totals.malformed);
  h = hash_mix(h, totals.route_misses);
  h = hash_mix(h, totals.health);
  h = hash_mix(h, totals.get_hits);
  h = hash_mix(h, totals.get_misses);
  h = hash_mix(h, totals.puts);
  h = hash_mix(h, totals.evictions);
  return h;
}

SeqRun HttpServing::run_seq(const Params& p) {
  Stopwatch sw;
  serving::CacheIndex index(p.capacity_log2);
  serving::RequestGen gen(traffic_of(p));
  serving::RequestBatch batch(p.batch);
  serving::BatchCounters totals;
  for (uint64_t b = 0; b < p.batches; ++b) {
    gen.fill(batch);
    totals += serving::Server::serve_batch_seq(index, batch, b);
  }
  return SeqRun{digest(index, totals), sw.elapsed_sec()};
}

SpecRun HttpServing::run_spec(Runtime& rt, const Params& p, ForkModel model) {
  Stopwatch sw;
  serving::CacheIndex index(rt, p.capacity_log2);
  serving::Server server(rt, index, p.batch);
  serving::RequestGen gen(traffic_of(p));
  serving::RequestBatch batch(p.batch);
  serving::BatchCounters totals;
  serving::ServeOpts opts;
  opts.chunks = p.chunks;
  opts.model = model;
  RunStats stats = rt.run([&](Ctx& ctx) {
    for (uint64_t b = 0; b < p.batches; ++b) {
      // Refill between batches: serve_batch joined every chunk, so no
      // speculative reader is live while the request bytes are rewritten.
      gen.fill(batch);
      totals += server.serve_batch(ctx, batch, b, opts);
    }
  });
  double secs = sw.elapsed_sec();
  return SpecRun{digest(index, totals), secs, stats};
}

}  // namespace mutls::workloads
