// 3x+1 (Collatz) benchmark — Table II row 1.
//
// Enumerates the 3x+1 trajectories of 1..n and sums their lengths. The
// inner computation touches no shared memory at all (the paper calls it an
// "idealized benchmark" for software TLS): each speculative chunk only
// writes one partial-sum slot at its end. Loop pattern,
// computation-intensive. Paper size: 40M integers, split into 64 chunks.
#pragma once

#include "workloads/workload.h"

namespace mutls::workloads {

struct ThreeX {
  struct Params {
    int64_t n = 4'000'000;
    int chunks = 64;
  };

  static constexpr const char* kName = "3x+1";
  static constexpr Pattern kPattern = Pattern::kLoop;

  // Trajectory length of a single value (pure compute).
  static uint64_t trajectory(uint64_t x) {
    uint64_t steps = 0;
    while (x != 1) {
      x = (x & 1) ? 3 * x + 1 : x / 2;
      ++steps;
    }
    return steps;
  }

  static SeqRun run_seq(const Params& p);
  static SpecRun run_spec(Runtime& rt, const Params& p, ForkModel model);
};

}  // namespace mutls::workloads
