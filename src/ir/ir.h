// A compact SSA intermediate representation standing in for LLVM IR
// (DESIGN.md §2): typed values, basic blocks, phis, loads/stores, calls and
// the MUTLS fork/join/barrier intrinsics. The speculator pass
// (src/speculator/) transforms this IR exactly as the paper's LLVM pass
// transforms LLVM IR, and the interpreter (src/interp/) executes it against
// host memory with the TLS runtime.
//
// Textual syntax (see parser.cpp):
//
//   global @acc : i64[64]
//   func @work(%n: i64) : i64 {
//   entry:
//     %zero = const i64 0
//     br loop
//   loop:
//     %i = phi i64 [%zero, entry], [%inc, loop]
//     %p = gep @acc, %i, 8
//     store %i, %p
//     %inc = add %i, %one
//     %c = icmp slt %inc, %n
//     condbr %c, loop, done
//   done:
//     ret %zero
//   }
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/check.h"

namespace mutls::ir {

enum class Type : uint8_t {
  kVoid,
  kI1,
  kI8,
  kI16,
  kI32,
  kI64,
  kF32,
  kF64,
  kPtr,
};

size_t type_size(Type t);
const char* type_name(Type t);
bool is_integer(Type t);
bool is_float(Type t);

enum class Op : uint8_t {
  kConst,    // imm
  kAdd, kSub, kMul, kSDiv, kSRem,
  kAnd, kOr, kXor, kShl, kLShr, kAShr,
  kFAdd, kFSub, kFMul, kFDiv,
  kICmp,     // pred in `pred`
  kFCmp,
  kSelect,   // a ? b : c
  kTrunc, kZExt, kSExt, kSIToFP, kFPToSI, kPtrToInt, kIntToPtr, kBitcast,
  kAlloca,   // imm = byte size; yields ptr into the frame
  kLoad,     // *a, result type = this->type
  kStore,    // *b = a (no result)
  kGep,      // a + b * imm  (byte scale), yields ptr
  kGlobal,   // address of global `sym`
  kCall,     // call @sym(args...)
  kBr,       // unconditional, target blocks[0]
  kCondBr,   // a ? blocks[0] : blocks[1]
  kRet,      // optional a
  kPhi,      // args[i] from blocks[i]
  // MUTLS intrinsics (front-end builtins, paper IV-A).
  kMutlsFork,     // imm = point id, pred = fork model
  kMutlsJoin,     // imm = point id
  kMutlsBarrier,  // imm = point id
};

const char* op_name(Op op);
bool is_terminator(Op op);

enum class Pred : uint8_t {
  kEq, kNe, kSlt, kSle, kSgt, kSge,  // icmp
  kOlt, kOle, kOgt, kOge, kOeq, kOne,  // fcmp
};

const char* pred_name(Pred p);

// One SSA value id. Value 0 is reserved/invalid. Function parameters take
// ids 1..nparams; instruction results follow.
using ValueId = uint32_t;
constexpr ValueId kNoValue = 0;

struct Instr {
  Op op = Op::kConst;
  Type type = Type::kVoid;  // result type (kVoid: no result)
  ValueId result = kNoValue;
  std::vector<ValueId> args;
  std::vector<uint32_t> blocks;  // successor block ids / phi predecessors
  Pred pred = Pred::kEq;
  int64_t imm = 0;       // constant payload / alloca size / gep scale / point id
  double fimm = 0.0;     // float constant payload
  std::string sym;       // callee or global symbol
};

struct Block {
  std::string label;
  std::vector<Instr> instrs;

  const Instr& terminator() const {
    MUTLS_CHECK(!instrs.empty(), "empty block");
    return instrs.back();
  }
};

struct Param {
  std::string name;
  Type type;
};

struct Function {
  std::string name;
  std::vector<Param> params;
  Type ret_type = Type::kVoid;
  std::vector<Block> blocks;
  // Number of SSA values (params + results); value ids < value_count.
  ValueId value_count = 1;
  // Result types indexed by ValueId (kVoid for unused slots).
  std::vector<Type> value_types;
  std::vector<std::string> value_names;

  ValueId new_value(Type t, std::string name) {
    ValueId id = value_count++;
    value_types.resize(value_count, Type::kVoid);
    value_names.resize(value_count);
    value_types[id] = t;
    value_names[id] = std::move(name);
    return id;
  }

  uint32_t block_index(const std::string& label) const {
    for (uint32_t i = 0; i < blocks.size(); ++i) {
      if (blocks[i].label == label) return i;
    }
    MUTLS_CHECK(false, "unknown block label");
    return 0;
  }
};

struct Global {
  std::string name;
  Type elem_type = Type::kI64;
  size_t count = 1;
  std::vector<int64_t> init;  // optional element initializers
};

struct Module {
  std::vector<Function> functions;
  std::vector<Global> globals;

  Function* find_function(const std::string& name) {
    for (Function& f : functions) {
      if (f.name == name) return &f;
    }
    return nullptr;
  }
  const Function* find_function(const std::string& name) const {
    return const_cast<Module*>(this)->find_function(name);
  }
  Global* find_global(const std::string& name) {
    for (Global& g : globals) {
      if (g.name == name) return &g;
    }
    return nullptr;
  }
};

// --- parser / printer / verifier (parser.cpp, printer.cpp, verifier.cpp) --

// Parses the textual form; throws ParseError on malformed input.
struct ParseError {
  std::string message;
  int line;
};
Module parse_module(const std::string& text);

std::string print_module(const Module& m);
std::string print_function(const Function& f);

// Structural verification: operand/result types, terminator placement,
// phi/predecessor consistency, SSA def-before-use over the dominator tree.
// Returns an empty vector when the module is well-formed.
std::vector<std::string> verify_module(const Module& m);

// --- analyses (analysis.cpp) ---

struct Cfg {
  std::vector<std::vector<uint32_t>> succ;
  std::vector<std::vector<uint32_t>> pred;
};
Cfg build_cfg(const Function& f);

// Immediate dominators by Cooper-Harvey-Kennedy iteration; idom[0] == 0.
std::vector<uint32_t> compute_idom(const Function& f, const Cfg& cfg);

// Per-block live-in value sets (bit per ValueId).
std::vector<std::vector<bool>> compute_live_in(const Function& f);

// Values live immediately before instruction (block, instr), derived from
// the per-block sets by a backward scan within the block. Used by the
// speculator pass and interpreter to form the validate_local set for a
// continuation entry position (paper IV-G4).
std::vector<bool> live_at(const Function& f,
                          const std::vector<std::vector<bool>>& live_in,
                          uint32_t block, uint32_t instr);

// Natural-loop headers under the repo's block-ordering discipline: targets
// of back edges, i.e. branch targets with target <= source. This is the
// same notion of "check point" the interpreter polls at (a jump to an
// earlier-or-same block) and names the regions of the execution engine's
// profiler and compilation seam (src/exec/). Sorted ascending, no
// duplicates.
std::vector<uint32_t> loop_headers(const Function& f);

}  // namespace mutls::ir
