#include "runtime/numa_sharded_buffer.h"

namespace mutls {

namespace {

// Smallest power of two >= n, clamped to [1, cap].
int round_up_shards(int n, int cap) {
  if (n < 1) n = 1;
  if (n > cap) n = cap;
  int p = 1;
  while (p < n) p *= 2;
  return p > cap ? cap : p;
}

int ilog2(int pow2) {
  int l = 0;
  while ((1 << l) < pow2) ++l;
  return l;
}

}  // namespace

void NumaShardedBuffer::init(int log2_entries, size_t overflow_cap,
                             SpecBufferStats* stats, int max_log2,
                             Arena* arena, SpecNumaPolicy policy) {
  (void)overflow_cap;  // shards resize like the growable log; no overflow
  stats_ = stats;
  shards_ = round_up_shards(policy.shards, kMaxShards);
  shard_mask_ = static_cast<uintptr_t>(shards_ - 1);
  region_log2_ = policy.region_log2 < 3 ? 3 : policy.region_log2;
  home_shard_ = policy.home_shard >= 0 ? policy.home_shard % shards_ : 0;
  // Each shard starts at its proportional share of the configured
  // capacity (GrowableSet floors at 2^4); the per-shard hard cap keeps
  // positions packable next to the shard bits.
  int per_log2 = log2_entries - ilog2(shards_);
  if (per_log2 < 4) per_log2 = 4;
  int per_max = max_log2 > kShardMaxLog2 ? kShardMaxLog2 : max_log2;
  if (per_max < per_log2) per_max = per_log2;
  for (int s = 0; s < shards_; ++s) {
    shard_[s].read.init(per_log2, stats, per_max, arena);
    shard_[s].write.init(per_log2, stats, per_max, arena);
  }
  doomed_ = false;
  doom_reason_ = "";
}

WordRef NumaShardedBuffer::find_read(uintptr_t word_addr) {
  ++stats_->shard_probe_steps;
  int s = shard_of(word_addr);
  GrowableSet::Entry* e = shard_[s].read.find(word_addr);
  return e ? WordRef{&e->data, nullptr,
                     pack(s, shard_[s].read.position_of(e))}
           : WordRef{};
}

WordRef NumaShardedBuffer::find_write(uintptr_t word_addr) {
  ++stats_->shard_probe_steps;
  int s = shard_of(word_addr);
  GrowableSet::Entry* e = shard_[s].write.find(word_addr);
  return e ? WordRef{&e->data, &e->mark,
                     pack(s, shard_[s].write.position_of(e))}
           : WordRef{};
}

WordRef NumaShardedBuffer::insert_read(uintptr_t word_addr, bool& inserted,
                                       bool merging) {
  ++stats_->shard_probe_steps;
  int s = shard_of(word_addr);
  if (shard_[s].read.at_hard_capacity()) {
    doom(merging ? "read-set shard exhausted its maximum index while "
                   "adopting a child commit"
                 : "read-set shard exhausted its maximum index");
    ++stats_->overflow_events;
    return WordRef{};
  }
  GrowableSet::Entry& e = shard_[s].read.find_or_insert(word_addr, inserted);
  return WordRef{&e.data, nullptr, pack(s, shard_[s].read.position_of(&e))};
}

WordRef NumaShardedBuffer::insert_write(uintptr_t word_addr, bool merging) {
  ++stats_->shard_probe_steps;
  int s = shard_of(word_addr);
  if (shard_[s].write.at_hard_capacity()) {
    doom(merging ? "write-set shard exhausted its maximum index while "
                   "adopting a child commit"
                 : "write-set shard exhausted its maximum index");
    ++stats_->overflow_events;
    return WordRef{};
  }
  bool inserted = false;
  GrowableSet::Entry& e = shard_[s].write.find_or_insert(word_addr, inserted);
  return WordRef{&e.data, &e.mark, pack(s, shard_[s].write.position_of(&e))};
}

void NumaShardedBuffer::reset() {
  for (int s = 0; s < shards_; ++s) {
    shard_[s].read.clear();
    shard_[s].write.clear();
  }
  doomed_ = false;
  doom_reason_ = "";
  // The stats block belongs to the owning SpecBuffer and intentionally
  // survives reset: the settle paths read the counters after resetting.
}

bool NumaShardedBuffer::pressure() const {
  for (int s = 0; s < shards_; ++s) {
    if (shard_[s].read.resized_this_epoch() ||
        shard_[s].write.resized_this_epoch()) {
      return true;
    }
  }
  return false;
}

size_t NumaShardedBuffer::read_entries() const {
  size_t n = 0;
  for (int s = 0; s < shards_; ++s) n += shard_[s].read.entry_count();
  return n;
}

size_t NumaShardedBuffer::write_entries() const {
  size_t n = 0;
  for (int s = 0; s < shards_; ++s) n += shard_[s].write.entry_count();
  return n;
}

}  // namespace mutls
