// Sustained-load serving bench: pushes generated HTTP request batches
// through the serving pipeline (parse -> route/lookup -> index update) for
// a fixed duration per cell, swept over {buffer backend x key skew x batch
// size}. Each cell reports request throughput, fork-to-settle latency
// percentiles (p50/p99/p999 from the HDR-style histogram), the doom/
// rollback rate, and the per-backend buffer counters. The measured window
// starts after a warm-up phase and must run allocation-free: alloc_events
// is reported per cell and a nonzero value fails the run.
//
// Machine-readable output: one "SUSTAINED key=value ..." line per cell and
// a final "SUSTAINED_TOTAL ..." line; scripts/bench_json.py parses these
// into the sustained_load section of BENCH_results.json.
//
// Flags:
//   --quick            CI smoke: ~0.1s cells, no fork/join floor
//   --duration-s X     measured seconds per cell (default 1.25)
//   --min-forks N      total fork/join floor across cells (default 1.05M);
//                      cells keep running past their duration until their
//                      share of the floor is met
//   --cpus N           virtual CPUs per runtime (default 4)
//   --predict          enable value prediction (default off); the hot-key
//                      zipf cells are where conflicts — and therefore
//                      saved_rollbacks — live
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "api/parallel.h"
#include "api/spec.h"
#include "serving/cache_index.h"
#include "serving/request_gen.h"
#include "serving/serve_batch.h"
#include "support/latency_histogram.h"
#include "support/timing.h"

namespace {

using namespace mutls;
using namespace mutls::serving;

struct Args {
  double duration_s = 1.25;
  uint64_t min_forks = 1'050'000;
  int cpus = 4;
  bool predict = false;
};

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--quick")) {
      a.duration_s = 0.1;
      a.min_forks = 0;
    } else if (!std::strcmp(argv[i], "--predict")) {
      a.predict = true;
    } else if (!std::strcmp(argv[i], "--duration-s") && i + 1 < argc) {
      a.duration_s = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--min-forks") && i + 1 < argc) {
      a.min_forks = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--cpus") && i + 1 < argc) {
      a.cpus = std::atoi(argv[++i]);
    }
  }
  return a;
}

struct Cell {
  BufferBackend backend;
  double zipf_s;  // 0 = uniform
  int batch;
};

struct CellResult {
  double duration_s = 0;
  uint64_t requests = 0;
  uint64_t forks = 0;
  RunStats stats;
  BatchCounters counters;
  LatencyHistogram latency;
};

constexpr int kChunks = 16;

CellResult run_cell(const Cell& cell, const Args& args,
                    uint64_t min_forks_per_cell) {
  Runtime::Options o;
  o.num_cpus = args.cpus;
  o.buffer_log2 = 14;
  o.buffer_backend = cell.backend;
  o.predict_enabled = args.predict;
  Runtime rt(o);

  CacheIndex index(rt, /*capacity_log2=*/10);
  Server server(rt, index, static_cast<size_t>(cell.batch));

  TrafficConfig cfg;
  cfg.num_keys = 4096;
  cfg.zipf_s = cell.zipf_s;
  cfg.put_ratio = 0.125;
  cfg.malformed_ratio = 0.02;
  cfg.seed = 1;
  RequestGen gen(cfg);
  RequestBatch batch(static_cast<size_t>(cell.batch));

  CellResult r;
  uint64_t fork_ns_scratch[kChunks];
  ServeOpts opts;
  opts.chunks = kChunks;
  opts.fork_latency = &r.latency;
  opts.fork_ns_scratch = fork_ns_scratch;

  // Warm-up, in two phases, so the measured window owns a clean and
  // *honest* zero-allocation ledger:
  //
  // 1. PUT storm: all-PUT traffic over a key range far larger than the
  //    index, so every request takes the insert/evict path — the maximal
  //    per-request footprint — with no conflicts to cut the adoption
  //    chains short. This drives each slot's buffer, merge scratch and
  //    arena to the workload's footprint ceiling deterministically,
  //    instead of hoping the measured traffic's tail finds it early.
  // 2. Quiescence loop: real traffic in short windows until one full
  //    window completes with zero arena heap fallbacks (capped; a cell
  //    that never settles would then fail the measured gate loudly).
  uint64_t epoch = 0;
  {
    TrafficConfig storm = cfg;
    storm.zipf_s = 0.0;
    storm.put_ratio = 1.0;
    storm.malformed_ratio = 0.0;
    storm.num_keys = 1u << 20;
    storm.seed = 2;
    RequestGen storm_gen(storm);
    rt.run([&](Ctx& ctx) {
      for (int b = 0; b < 12; ++b) {
        storm_gen.fill(batch);
        server.serve_batch(ctx, batch, epoch++, opts);
      }
    });
    rt.manager().reset_stats();
  }
  for (int window = 0; window < 16; ++window) {
    const uint64_t warm_deadline = now_ns() + 150'000'000ull;
    RunStats ws = rt.run([&](Ctx& ctx) {
      for (int b = 0; b < 8 || now_ns() < warm_deadline; ++b) {
        gen.fill(batch);
        server.serve_batch(ctx, batch, epoch++, opts);
        if (b >= 1'000'000) break;  // paranoia bound, never reached
      }
    });
    uint64_t warm_allocs = ws.speculative.buffer.alloc_events +
                           ws.critical.buffer.alloc_events;
    rt.manager().reset_stats();
    if (warm_allocs == 0) break;
  }
  r.latency.clear();

  // Measured window: duration-based, extended until this cell's share of
  // the fork/join floor is met (the floor is what makes the committed
  // BENCH_results.json a meaningful steady-state sample).
  const uint64_t start = now_ns();
  const uint64_t deadline =
      start + static_cast<uint64_t>(args.duration_s * 1e9);
  uint64_t batches = 0;
  r.stats = rt.run([&](Ctx& ctx) {
    for (;;) {
      bool past_deadline = now_ns() >= deadline;
      uint64_t settled = r.latency.count();
      if (past_deadline && settled >= min_forks_per_cell) break;
      gen.fill(batch);
      r.counters += server.serve_batch(ctx, batch, epoch++, opts);
      ++batches;
    }
  });
  r.duration_s = static_cast<double>(now_ns() - start) / 1e9;
  r.requests = batches * static_cast<uint64_t>(cell.batch);
  r.forks = r.stats.critical.forks + r.stats.speculative.forks;
  return r;
}

double doom_rate(const RunStats& s) {
  uint64_t settles = s.speculative.commits + s.speculative.rollbacks;
  return settles ? static_cast<double>(s.speculative.rollbacks) /
                       static_cast<double>(settles)
                 : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = parse(argc, argv);
  unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  if (args.cpus > static_cast<int>(hw)) args.cpus = static_cast<int>(hw);

  const BufferBackend backends[] = {BufferBackend::kStaticHash,
                                    BufferBackend::kGrowableLog,
                                    BufferBackend::kAdaptive,
                                    BufferBackend::kNumaSharded};
  const double skews[] = {0.0, 1.1};
  const int batch_sizes[] = {128, 512};
  const uint64_t cells =
      sizeof(backends) / sizeof(backends[0]) * 2 * 2;
  const uint64_t min_forks_per_cell =
      args.min_forks ? (args.min_forks + cells - 1) / cells : 0;

  std::printf(
      "Sustained load — serving pipeline, %d cpus, %.2fs/cell "
      "(floor %llu fork/joins per cell)\n",
      args.cpus, args.duration_s,
      static_cast<unsigned long long>(min_forks_per_cell));
  std::printf("%-13s %-9s %5s %9s %10s %8s %8s %8s %7s %6s\n", "backend",
              "skew", "batch", "req/s", "forks", "p50us", "p99us", "p999us",
              "doom%", "alloc");

  uint64_t total_forks = 0;
  double total_duration = 0.0;
  uint64_t total_allocs = 0;
  for (BufferBackend backend : backends) {
    for (double s : skews) {
      for (int batch : batch_sizes) {
        Cell cell{backend, s, batch};
        CellResult r = run_cell(cell, args, min_forks_per_cell);
        const char* skew_name = s > 0.0 ? "zipf-1.1" : "uniform";
        double req_per_s =
            r.duration_s > 0 ? static_cast<double>(r.requests) / r.duration_s
                             : 0.0;
        uint64_t allocs = r.stats.speculative.buffer.alloc_events +
                          r.stats.critical.buffer.alloc_events;
        std::printf(
            "%-13s %-9s %5d %9.0f %10llu %8.1f %8.1f %8.1f %6.2f%% %6llu\n",
            buffer_backend_name(backend), skew_name, batch, req_per_s,
            static_cast<unsigned long long>(r.forks),
            static_cast<double>(r.latency.percentile(0.5)) / 1e3,
            static_cast<double>(r.latency.percentile(0.99)) / 1e3,
            static_cast<double>(r.latency.percentile(0.999)) / 1e3,
            doom_rate(r.stats) * 100.0,
            static_cast<unsigned long long>(allocs));
        std::printf(
            "SUSTAINED backend=%s skew=%s batch=%d duration_s=%.3f "
            "requests=%llu req_per_s=%.0f fork_joins=%llu p50_ns=%llu "
            "p99_ns=%llu p999_ns=%llu commits=%llu rollbacks=%llu "
            "doom_rate=%.4f malformed=%llu get_hits=%llu get_misses=%llu "
            "puts=%llu evictions=%llu alloc_events=%llu overflow_events=%llu "
            "resize_events=%llu backend_flips=%llu predict=%s "
            "predicted_reads=%llu predictor_hits=%llu "
            "predictor_mispredicts=%llu saved_rollbacks=%llu\n",
            buffer_backend_name(backend), skew_name, batch, r.duration_s,
            static_cast<unsigned long long>(r.requests), req_per_s,
            static_cast<unsigned long long>(r.forks),
            static_cast<unsigned long long>(r.latency.percentile(0.5)),
            static_cast<unsigned long long>(r.latency.percentile(0.99)),
            static_cast<unsigned long long>(r.latency.percentile(0.999)),
            static_cast<unsigned long long>(r.stats.speculative.commits),
            static_cast<unsigned long long>(r.stats.speculative.rollbacks),
            doom_rate(r.stats),
            static_cast<unsigned long long>(r.counters.malformed),
            static_cast<unsigned long long>(r.counters.get_hits),
            static_cast<unsigned long long>(r.counters.get_misses),
            static_cast<unsigned long long>(r.counters.puts),
            static_cast<unsigned long long>(r.counters.evictions),
            static_cast<unsigned long long>(allocs),
            static_cast<unsigned long long>(
                r.stats.speculative.buffer.overflow_events),
            static_cast<unsigned long long>(
                r.stats.speculative.buffer.resize_events),
            static_cast<unsigned long long>(
                r.stats.speculative.buffer.backend_flips),
            args.predict ? "on" : "off",
            static_cast<unsigned long long>(
                r.stats.speculative.buffer.predicted_reads),
            static_cast<unsigned long long>(
                r.stats.speculative.buffer.predictor_hits),
            static_cast<unsigned long long>(
                r.stats.speculative.buffer.predictor_mispredicts),
            static_cast<unsigned long long>(
                r.stats.speculative.buffer.saved_rollbacks));
        total_forks += r.forks;
        total_duration += r.duration_s;
        total_allocs += allocs;
      }
    }
  }

  std::printf(
      "SUSTAINED_TOTAL fork_joins=%llu duration_s=%.3f alloc_events=%llu\n",
      static_cast<unsigned long long>(total_forks), total_duration,
      static_cast<unsigned long long>(total_allocs));
  if (args.min_forks && total_forks < args.min_forks) {
    std::fprintf(stderr,
                 "FAIL: sustained %llu fork/joins < floor %llu\n",
                 static_cast<unsigned long long>(total_forks),
                 static_cast<unsigned long long>(args.min_forks));
    return 1;
  }
  if (total_allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu heap allocations after warm-up (steady state "
                 "must be allocation-free)\n",
                 static_cast<unsigned long long>(total_allocs));
    return 1;
  }
  return 0;
}
