// Shared harness for the figure/table reproduction benches.
//
// Every bench binary prints the rows/series of one table or figure of the
// paper, in two sections: MEASURED (the native runtime on this machine's
// cores, scaled-down workload sizes) and SIMULATED (the discrete-event
// model at paper scale, up to 64 CPUs — the hardware substitution described
// in DESIGN.md §2). "N CPUs" follows the paper's convention and counts the
// non-speculative thread, so a measured point at N uses N-1 speculative
// virtual CPUs.
//
// Flags: --paper   run measured workloads at paper-scale sizes (slow)
//        --quick   shrink measured sizes further (CI smoke)
//        --no-sim  skip the simulated section
//        --no-measured  skip the measured section
#pragma once

#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "sim/models.h"
#include "sim/sim.h"
#include "workloads/bh.h"
#include "workloads/fft.h"
#include "workloads/http_serving.h"
#include "workloads/mandelbrot.h"
#include "workloads/matmult.h"
#include "workloads/md.h"
#include "workloads/nqueen.h"
#include "workloads/threex.h"
#include "workloads/tsp.h"

namespace mutls::bench {

struct HarnessArgs {
  bool paper = false;
  bool quick = false;
  bool sim = true;
  bool measured = true;
  std::vector<int> measured_cpus;  // total CPUs (incl. non-speculative)
  std::vector<int> sim_cpus = {1, 2, 4, 8, 16, 24, 32, 48, 63, 64};
};

inline HarnessArgs parse_args(int argc, char** argv) {
  HarnessArgs a;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--paper")) a.paper = true;
    if (!std::strcmp(argv[i], "--quick")) a.quick = true;
    if (!std::strcmp(argv[i], "--no-sim")) a.sim = false;
    if (!std::strcmp(argv[i], "--no-measured")) a.measured = false;
  }
  if (a.measured_cpus.empty()) {
    unsigned hw = std::max(2u, std::thread::hardware_concurrency());
    // Sweep up to 2x the hardware threads (oversubscription is useful to
    // see the trend), capped at 8 for harness runtime.
    for (int n = 1; n <= static_cast<int>(std::min(2 * hw, 8u)); ++n) {
      a.measured_cpus.push_back(n);
    }
  }
  return a;
}

// One Table II workload wired into the harness.
struct BenchWorkload {
  std::string name;
  bool compute_intensive = false;
  const char* pattern = "";
  const char* data_desc = "";
  std::function<workloads::SeqRun()> seq;
  // spec(total_cpus, model, rollback_probability)
  std::function<workloads::SpecRun(int, ForkModel, double)> spec;
  std::function<sim::SimModel()> sim_model;
};

inline Runtime::Options runtime_opts(int total_cpus, int buffer_log2,
                                     double rollback_p) {
  Runtime::Options o;
  o.num_cpus = std::max(1, total_cpus - 1);
  o.buffer_log2 = buffer_log2;
  o.overflow_cap = 8192;
  o.rollback_probability = rollback_p;
  return o;
}

inline std::vector<BenchWorkload> make_workloads(const HarnessArgs& a) {
  using namespace workloads;
  std::vector<BenchWorkload> ws;
  const bool paper = a.paper;
  const bool quick = a.quick;

  {
    ThreeX::Params p;
    p.n = paper ? 40'000'000 : (quick ? 200'000 : 2'000'000);
    p.chunks = 64;
    ws.push_back(BenchWorkload{
        "3x+1", true, "loop",
        paper ? "40M integers" : "2M integers (paper: 40M)",
        [p] { return ThreeX::run_seq(p); },
        [p](int cpus, ForkModel m, double rb) {
          Runtime rt(runtime_opts(cpus, 12, rb));
          return ThreeX::run_spec(rt, p, m);
        },
        [] { return sim::model_threex(); }});
  }
  {
    Mandelbrot::Params p;
    p.width = paper ? 512 : 256;
    p.height = paper ? 512 : 256;
    p.max_iter = paper ? 80'000 : (quick ? 200 : 1'500);
    p.chunks = 64;
    ws.push_back(BenchWorkload{
        "mandelbrot", true, "loop",
        paper ? "512x512, 80000 iter" : "256x256, 1500 iter (paper: 512x512, 80000)",
        [p] { return Mandelbrot::run_seq(p); },
        [p](int cpus, ForkModel m, double rb) {
          Runtime rt(runtime_opts(cpus, 18, rb));
          return Mandelbrot::run_spec(rt, p, m);
        },
        [] { return sim::model_mandelbrot(); }});
  }
  {
    MolecularDynamics::Params p;
    p.n = paper ? 256 : 96;
    p.steps = paper ? 400 : (quick ? 8 : 40);
    p.chunks = 16;
    ws.push_back(BenchWorkload{
        "md", true, "loop",
        paper ? "256 particles, 400 steps" : "96 particles, 40 steps (paper: 256/400)",
        [p] { return MolecularDynamics::run_seq(p); },
        [p](int cpus, ForkModel m, double rb) {
          Runtime rt(runtime_opts(cpus, 14, rb));
          return MolecularDynamics::run_spec(rt, p, m);
        },
        [] { return sim::model_md(); }});
  }
  {
    BarnesHut::Params p;
    p.n = paper ? 12'800 : (quick ? 256 : 1024);
    p.steps = paper ? 8 : 3;
    p.chunks = 16;
    ws.push_back(BenchWorkload{
        "bh", false, "loop",
        paper ? "12800 bodies" : "1024 bodies (paper: 12800)",
        [p] { return BarnesHut::run_seq(p); },
        [p](int cpus, ForkModel m, double rb) {
          Runtime rt(runtime_opts(cpus, 17, rb));
          return BarnesHut::run_spec(rt, p, m);
        },
        [] { return sim::model_bh(); }});
  }
  {
    Fft::Params p;
    p.log2_n = paper ? 20 : (quick ? 12 : 16);
    p.fork_levels = 5;
    ws.push_back(BenchWorkload{
        "fft", false, "divide and conquer",
        paper ? "2^20 doubles" : "2^16 doubles (paper: 2^20)",
        [p] { return Fft::run_seq(p); },
        [p, paper](int cpus, ForkModel m, double rb) {
          Runtime rt(runtime_opts(cpus, paper ? 21 : 18, rb));
          return Fft::run_spec(rt, p, m);
        },
        [] { return sim::model_fft(); }});
  }
  {
    MatMult::Params p;
    p.n = paper ? 1024 : (quick ? 64 : 128);
    p.leaf = 32;
    p.fork_levels = 2;
    ws.push_back(BenchWorkload{
        "matmult", false, "divide and conquer",
        paper ? "1024x1024 doubles" : "128x128 doubles (paper: 1024x1024)",
        [p] { return MatMult::run_seq(p); },
        [p, paper](int cpus, ForkModel m, double rb) {
          Runtime rt(runtime_opts(cpus, paper ? 21 : 17, rb));
          return MatMult::run_spec(rt, p, m);
        },
        [] { return sim::model_matmult(); }});
  }
  {
    NQueen::Params p;
    p.n = paper ? 14 : (quick ? 9 : 11);
    p.cutoff = 3;
    ws.push_back(BenchWorkload{
        "nqueen", false, "depth-first search",
        paper ? "14 queens" : "11 queens (paper: 14)",
        [p] { return NQueen::run_seq(p); },
        [p](int cpus, ForkModel m, double rb) {
          Runtime rt(runtime_opts(cpus, 12, rb));
          return NQueen::run_spec(rt, p, m);
        },
        [] { return sim::model_nqueen(); }});
  }
  {
    Tsp::Params p;
    p.n = paper ? 12 : (quick ? 8 : 10);
    p.cutoff = 3;
    ws.push_back(BenchWorkload{
        "tsp", false, "depth-first search",
        paper ? "12 cities" : "10 cities (paper: 12)",
        [p] { return Tsp::run_seq(p); },
        [p](int cpus, ForkModel m, double rb) {
          Runtime rt(runtime_opts(cpus, 12, rb));
          return Tsp::run_spec(rt, p, m);
        },
        [] { return sim::model_tsp(); }});
  }
  {
    // Not a Table II row: the server-shaped workload of src/serving/
    // (short tasks, shared cache index). Rides the same harness so the
    // equivalence and figure machinery cover it.
    HttpServing::Params p;
    p.batches = paper ? 256 : (quick ? 8 : 64);
    p.batch = 256;
    p.chunks = 8;
    p.zipf_s = 1.1;  // hot keys: real conflicts through the index
    ws.push_back(BenchWorkload{
        "http-serving", false, "loop",
        paper ? "64K requests, Zipf 1.1" : "16K requests, Zipf 1.1",
        [p] { return HttpServing::run_seq(p); },
        [p](int cpus, ForkModel m, double rb) {
          Runtime rt(runtime_opts(cpus, 14, rb));
          return HttpServing::run_spec(rt, p, m);
        },
        [p] {
          return sim::model_http_serving(static_cast<int>(p.batches),
                                         p.chunks);
        }});
  }
  return ws;
}

inline std::vector<BenchWorkload> filter(std::vector<BenchWorkload> ws,
                                         std::vector<std::string> names) {
  std::vector<BenchWorkload> out;
  for (auto& w : ws) {
    for (const auto& n : names) {
      if (w.name == n) out.push_back(std::move(w));
    }
  }
  return out;
}

inline sim::Simulator::Options sim_opts(int total_cpus, ForkModel model,
                                        double rollback_p = 0.0) {
  sim::Simulator::Options o;
  o.num_cpus = std::max(1, total_cpus - 1);
  o.model = model;
  o.rollback_probability = rollback_p;
  return o;
}

inline void check_checksum(const BenchWorkload& w, uint64_t got,
                           uint64_t want) {
  if (got != want) {
    std::fprintf(stderr,
                 "WARNING: %s speculative checksum mismatch "
                 "(%016llx vs %016llx)\n",
                 w.name.c_str(), static_cast<unsigned long long>(got),
                 static_cast<unsigned long long>(want));
  }
}

}  // namespace mutls::bench
