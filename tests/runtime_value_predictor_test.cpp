// Deterministic unit suite for the ValuePredictor table itself — the
// last-value/stride model, the confidence discipline, the stride window,
// and the direct-mapped collision aging. The SpecBuffer policy layer that
// *uses* the table (predicted-read adoption, settle, doom) is covered by
// runtime_spec_buffer_model_test.cpp; here the table is driven bare.
#include <gtest/gtest.h>

#include "runtime/value_predictor.h"

namespace mutls {
namespace {

// Word-aligned probe addresses that are guaranteed valid pointers (the
// predictor treats address 0 as the empty marker, so tests must not use
// it).
alignas(8) uint64_t g_words[8];

uintptr_t word(size_t i) { return reinterpret_cast<uintptr_t>(&g_words[i]); }

SpecPredictPolicy policy(uint32_t threshold = 2,
                         uint64_t stride_window = uint64_t{1} << 16,
                         int table_log2 = 8) {
  return SpecPredictPolicy{.enabled = true,
                           .confidence_threshold = threshold,
                           .stride_window = stride_window,
                           .table_log2 = table_log2};
}

TEST(ValuePredictorTest, StableValueConvergesToLastValuePrediction) {
  ValuePredictor p;
  p.init(policy(), /*arena=*/nullptr);
  uint64_t out = 0;
  EXPECT_FALSE(p.predict(word(0), &out)) << "empty table never predicts";

  p.train(word(0), 42);  // creates the entry (confidence 0)
  EXPECT_FALSE(p.predict(word(0), &out));
  EXPECT_EQ(p.confidence_of(word(0)), 0u);

  p.train(word(0), 42);  // delta 0 confirms the implicit zero stride
  p.train(word(0), 42);
  EXPECT_EQ(p.confidence_of(word(0)), 2u);
  ASSERT_TRUE(p.predict(word(0), &out));
  EXPECT_EQ(out, 42u) << "a stable word predicts itself (stride 0)";
  EXPECT_EQ(p.entries(), 1u);
}

TEST(ValuePredictorTest, StrideChainPredictsTheNextStep) {
  ValuePredictor p;
  p.init(policy(), nullptr);
  p.train(word(0), 100);  // create
  p.train(word(0), 107);  // stride candidate 7 (confidence 1)
  p.train(word(0), 114);  // confirmed (confidence 2)
  uint64_t out = 0;
  ASSERT_TRUE(p.predict(word(0), &out));
  EXPECT_EQ(out, 121u) << "predict serves last_value + stride";
  // Prediction is side-effect free: asking again changes nothing.
  ASSERT_TRUE(p.predict(word(0), &out));
  EXPECT_EQ(out, 121u);
  EXPECT_EQ(p.confidence_of(word(0)), 2u);
  // The chain keeps advancing as trainings arrive.
  p.train(word(0), 121);
  ASSERT_TRUE(p.predict(word(0), &out));
  EXPECT_EQ(out, 128u);
}

TEST(ValuePredictorTest, NegativeStrideRidesTwosComplementWraparound) {
  ValuePredictor p;
  p.init(policy(), nullptr);
  p.train(word(0), 100);
  p.train(word(0), 93);
  p.train(word(0), 86);
  uint64_t out = 0;
  ASSERT_TRUE(p.predict(word(0), &out));
  EXPECT_EQ(out, 79u) << "a descending word predicts the next decrement";
}

TEST(ValuePredictorTest, StrideBreakRestartsConfidence) {
  ValuePredictor p;
  p.init(policy(), nullptr);
  p.train(word(0), 100);
  p.train(word(0), 107);
  p.train(word(0), 114);
  ASSERT_EQ(p.confidence_of(word(0)), 2u);
  // A different (but in-window) delta retargets the stride; the old
  // confidence does not carry over to the new hypothesis.
  p.train(word(0), 117);
  EXPECT_EQ(p.confidence_of(word(0)), 1u);
  uint64_t out = 0;
  EXPECT_FALSE(p.predict(word(0), &out)) << "below the threshold again";
  p.train(word(0), 120);
  ASSERT_TRUE(p.predict(word(0), &out));
  EXPECT_EQ(out, 123u) << "the new stride 3 took over";
}

TEST(ValuePredictorTest, WildDeltaIsChaosNotAStride) {
  ValuePredictor p;
  p.init(policy(/*threshold=*/2, /*stride_window=*/uint64_t{1} << 16),
         nullptr);
  p.train(word(0), 100);
  p.train(word(0), 107);
  p.train(word(0), 114);
  ASSERT_EQ(p.confidence_of(word(0)), 2u);
  // A jump beyond the window drops the stride hypothesis entirely instead
  // of learning a giant stride.
  p.train(word(0), 114 + (uint64_t{1} << 20));
  EXPECT_EQ(p.confidence_of(word(0)), 0u);
  uint64_t out = 0;
  EXPECT_FALSE(p.predict(word(0), &out));
  // ...but last_value kept tracking: the word settling down re-converges
  // as a stable value from the new level.
  p.train(word(0), 114 + (uint64_t{1} << 20));
  p.train(word(0), 114 + (uint64_t{1} << 20));
  ASSERT_TRUE(p.predict(word(0), &out));
  EXPECT_EQ(out, 114 + (uint64_t{1} << 20));
}

TEST(ValuePredictorTest, ZeroWindowMeansPureLastValuePrediction) {
  ValuePredictor p;
  p.init(policy(/*threshold=*/2, /*stride_window=*/0), nullptr);
  // Any nonzero delta is out of a zero window: only an unchanged word can
  // gain confidence, so the predictor degenerates to last-value.
  p.train(word(0), 100);
  p.train(word(0), 107);
  EXPECT_EQ(p.confidence_of(word(0)), 0u);
  p.train(word(0), 107);
  p.train(word(0), 107);
  uint64_t out = 0;
  ASSERT_TRUE(p.predict(word(0), &out));
  EXPECT_EQ(out, 107u);
}

TEST(ValuePredictorTest, CollisionAgingProtectsTheConfidentIncumbent) {
  ValuePredictor p;
  // A single-bucket table: every address collides with every other.
  p.init(policy(/*threshold=*/2, uint64_t{1} << 16, /*table_log2=*/0),
         nullptr);
  EXPECT_EQ(p.capacity(), 1u);
  p.train(word(0), 42);
  p.train(word(0), 42);
  p.train(word(0), 42);
  ASSERT_EQ(p.confidence_of(word(0)), 2u);

  // One-off colliders age the incumbent instead of evicting it...
  p.train(word(1), 7);
  EXPECT_EQ(p.confidence_of(word(0)), 1u);
  EXPECT_EQ(p.confidence_of(word(1)), 0u) << "the collider owns nothing yet";
  uint64_t out = 0;
  EXPECT_FALSE(p.predict(word(1), &out));

  // ...and the incumbent re-earns its seat from live trainings...
  p.train(word(0), 42);
  EXPECT_EQ(p.confidence_of(word(0)), 2u);

  // ...but a persistently hot collider grinds it down and takes the slot.
  p.train(word(1), 7);
  p.train(word(1), 7);
  p.train(word(1), 7);  // incumbent hit zero; this training replaces it
  EXPECT_EQ(p.confidence_of(word(0)), 0u);
  EXPECT_EQ(p.confidence_of(word(1)), 0u) << "fresh entry starts cold";
  p.train(word(1), 7);
  p.train(word(1), 7);
  ASSERT_TRUE(p.predict(word(1), &out));
  EXPECT_EQ(out, 7u);
  EXPECT_EQ(p.entries(), 1u) << "one bucket, one entry";
}

TEST(ValuePredictorTest, DisabledPredictorIsInertAndFree) {
  ValuePredictor p;
  SpecPredictPolicy off;  // default: disabled
  p.init(off, nullptr);
  EXPECT_FALSE(p.enabled());
  EXPECT_EQ(p.capacity(), 0u);
  EXPECT_EQ(p.entries(), 0u);
  p.train(word(0), 42);  // must be a no-op, not a crash
  p.train(word(0), 42);
  p.train(word(0), 42);
  uint64_t out = 0;
  EXPECT_FALSE(p.predict(word(0), &out));
  EXPECT_EQ(p.confidence_of(word(0)), 0u);
}

TEST(ValuePredictorTest, ReinitDropsLearnedStateAndResizes) {
  ValuePredictor p;
  p.init(policy(), nullptr);
  p.train(word(0), 42);
  p.train(word(0), 42);
  p.train(word(0), 42);
  uint64_t out = 0;
  ASSERT_TRUE(p.predict(word(0), &out));
  // Re-init (new size) releases the old table and starts cold.
  p.init(policy(/*threshold=*/2, uint64_t{1} << 16, /*table_log2=*/4), nullptr);
  EXPECT_EQ(p.capacity(), 16u);
  EXPECT_EQ(p.entries(), 0u);
  EXPECT_FALSE(p.predict(word(0), &out));
  // And an init to disabled frees everything.
  p.init(SpecPredictPolicy{}, nullptr);
  EXPECT_FALSE(p.enabled());
}

}  // namespace
}  // namespace mutls
