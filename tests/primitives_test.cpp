// Coverage for the low-level primitives (memory helpers, relaxed scalar
// access, enums) and protocol edge cases (detached forks + adoption via
// join_next, user tags, merge-induced dooms).
#include <gtest/gtest.h>

#include "mutls/mutls.h"
#include "runtime/memory.h"

namespace mutls {
namespace {

// --- memory.h helpers ----------------------------------------------------

TEST(MemoryHelpers, WordAlignDown) {
  EXPECT_EQ(word_align_down(0x1000), 0x1000u);
  EXPECT_EQ(word_align_down(0x1007), 0x1000u);
  EXPECT_EQ(word_align_down(0x1008), 0x1008u);
}

TEST(MemoryHelpers, ByteMaskCoversRequestedBytes) {
  EXPECT_EQ(byte_mask(0, 8), kFullMark);
  EXPECT_EQ(byte_mask(0, 1), 0xffull);
  EXPECT_EQ(byte_mask(1, 1), 0xff00ull);
  EXPECT_EQ(byte_mask(4, 4), 0xffffffff00000000ull);
  EXPECT_EQ(byte_mask(7, 1), 0xff00000000000000ull);
  EXPECT_EQ(byte_mask(2, 3), 0x000000ffffff0000ull);
}

TEST(MemoryHelpers, WordCopyRoundTrip) {
  uint64_t w = 0;
  uint32_t v = 0xdeadbeef;
  copy_into_word(w, 4, 4, &v);
  uint32_t out = 0;
  copy_from_word(w, 4, 4, &out);
  EXPECT_EQ(out, v);
  uint32_t lo = 0;
  copy_from_word(w, 0, 4, &lo);
  EXPECT_EQ(lo, 0u);
}

TEST(MemoryHelpers, AtomicWordAndByteAccess) {
  alignas(8) uint64_t cell = 0;
  atomic_word_store(reinterpret_cast<uintptr_t>(&cell), 0x0102030405060708ull);
  EXPECT_EQ(atomic_word_load(reinterpret_cast<uintptr_t>(&cell)),
            0x0102030405060708ull);
  atomic_byte_store(reinterpret_cast<uintptr_t>(&cell) + 1, 0xee);
  EXPECT_EQ(atomic_byte_load(reinterpret_cast<uintptr_t>(&cell) + 1), 0xee);
}

// --- scalar_access.h -----------------------------------------------------

TEST(ScalarAccess, AllScalarWidths) {
  uint8_t a = 1;
  uint16_t b = 2;
  uint32_t c = 3;
  uint64_t d = 4;
  float e = 5.5f;
  double f = 6.5;
  EXPECT_EQ(relaxed_load_scalar(&a), 1);
  EXPECT_EQ(relaxed_load_scalar(&b), 2);
  EXPECT_EQ(relaxed_load_scalar(&c), 3u);
  EXPECT_EQ(relaxed_load_scalar(&d), 4u);
  EXPECT_FLOAT_EQ(relaxed_load_scalar(&e), 5.5f);
  EXPECT_DOUBLE_EQ(relaxed_load_scalar(&f), 6.5);
  relaxed_store_scalar(&c, 33u);
  EXPECT_EQ(c, 33u);
  relaxed_store_scalar(&f, -1.25);
  EXPECT_DOUBLE_EQ(f, -1.25);
}

TEST(ScalarAccess, OversizedTypeGoesByteWise) {
  struct Big {
    uint64_t a, b, c;
    bool operator==(const Big&) const = default;
  };
  Big src{1, 2, 3};
  Big dst = relaxed_load_scalar(&src);
  EXPECT_EQ(dst, src);
  Big w{7, 8, 9};
  relaxed_store_scalar(&src, w);
  EXPECT_EQ(src, w);
}

// --- enums ---------------------------------------------------------------

TEST(Enums, ForkModelNames) {
  EXPECT_STREQ(fork_model_name(ForkModel::kInOrder), "in-order");
  EXPECT_STREQ(fork_model_name(ForkModel::kOutOfOrder), "out-of-order");
  EXPECT_STREQ(fork_model_name(ForkModel::kMixed), "mixed");
}

// --- detached forks, adoption, user tags (join_next path) -----------------

TEST(AdoptionProtocol, JoinNextConsumesChainInOrder) {
  Runtime rt({.num_cpus = 3, .buffer_log2 = 10});
  SharedArray<uint64_t> out(rt, 3, 0);
  rt.run([&](Ctx& ctx) {
    // Build a 3-link chain by hand: each link forks the next detached.
    struct Link {
      Runtime& rt;
      SharedArray<uint64_t>& out;
      void run(Ctx& c, int i) const {
        if (i + 1 < 3) {
          rt.fork(c,
                  ForkOpts{.tag = static_cast<uint64_t>(i + 1),
                           .detached = true},
                  [this, i](Ctx& cc) { run(cc, i + 1); });
        }
        c.store(&out[static_cast<size_t>(i)], static_cast<uint64_t>(i + 10));
      }
    };
    Link link{rt, out};
    link.run(ctx, 0);  // the caller is link 0
    int joined = 0;
    uint64_t expected_tag = 1;
    while (!ctx.thread_data().children.empty()) {
      Runtime::AdoptedJoin j = rt.join_next(ctx);
      ASSERT_TRUE(j.joined);
      EXPECT_EQ(j.outcome, JoinOutcome::kCommitted);
      EXPECT_EQ(j.tag, expected_tag++) << "chain must join in logical order";
      ++joined;
    }
    EXPECT_GE(joined, 1);
  });
  EXPECT_EQ(out[0], 10u);
  EXPECT_EQ(out[1], 11u);
  EXPECT_EQ(out[2], 12u);
}

TEST(AdoptionProtocol, JoinNextOnEmptyStack) {
  Runtime rt({.num_cpus = 1, .buffer_log2 = 8});
  rt.run([&](Ctx& ctx) {
    Runtime::AdoptedJoin j = rt.join_next(ctx);
    EXPECT_FALSE(j.joined);
  });
}

TEST(AdoptionProtocol, RolledBackLinkReportsItsTag) {
  Runtime::Options o;
  o.num_cpus = 2;
  o.buffer_log2 = 10;
  o.rollback_probability = 1.0;  // every speculation fails
  Runtime rt(o);
  SharedArray<uint64_t> out(rt, 1, 0);
  rt.run([&](Ctx& ctx) {
    Spec s = rt.fork(ctx, ForkOpts{.tag = 77, .detached = true},
                     [&](Ctx& c) { c.store(&out[0], uint64_t{5}); });
    if (!s.speculated()) return;
    Runtime::AdoptedJoin j = rt.join_next(ctx);
    ASSERT_TRUE(j.joined);
    EXPECT_EQ(j.outcome, JoinOutcome::kRolledBack);
    EXPECT_EQ(j.tag, 77u);
    // Caller re-executes using the tag.
    ctx.store(&out[0], uint64_t{5});
  });
  EXPECT_EQ(out[0], 5u);
}

// --- spec_for rollback cascade across the chain ---------------------------

TEST(AdoptionProtocol, SpecForSurvivesMidChainRollback) {
  // Probability 0.4 with a fixed seed rolls back some links but not all;
  // the cascade plus re-execution must still produce exact results.
  for (uint64_t seed : {11u, 22u, 33u}) {
    Runtime::Options o;
    o.num_cpus = 2;
    o.buffer_log2 = 12;
    o.rollback_probability = 0.4;
    o.seed = seed;
    Runtime rt(o);
    SharedArray<uint64_t> slot(rt, 32, 0);
    rt.run([&](Ctx& ctx) {
      spec_for(rt, ctx, 0, 320, 32, ForkModel::kInOrder,
               [&](Ctx& c, int chunk, int64_t lo, int64_t hi) {
                 uint64_t s = 0;
                 for (int64_t i = lo; i < hi; ++i) {
                   s += static_cast<uint64_t>(i) * 7;
                 }
                 c.store(&slot[static_cast<size_t>(chunk)], s);
               });
    });
    uint64_t total = 0;
    for (size_t i = 0; i < slot.size(); ++i) total += slot[i];
    EXPECT_EQ(total, 7u * (319u * 320u / 2)) << "seed " << seed;
  }
}

// --- merge pressure: child commit can doom a speculative joiner -----------

TEST(MergePressure, ChildCommitOverflowingParentDoomsParentNotProgram) {
  // Parent has a tiny buffer; its child writes a large footprint. Merging
  // dooms the parent, which then rolls back and re-executes inline at the
  // root — results stay exact.
  Runtime::Options o;
  o.num_cpus = 2;
  o.buffer_log2 = 4;  // 16 slots
  o.overflow_cap = 4;
  Runtime rt(o);
  const size_t n = 64;
  SharedArray<uint64_t> data(rt, n, 0);
  rt.run([&](Ctx& ctx) {
    Spec outer = rt.fork(ctx, ForkModel::kMixed, [&](Ctx& c) {
      Spec inner = rt.fork(c, ForkModel::kMixed, [&](Ctx& cc) {
        for (size_t i = n / 2; i < n; ++i) {
          cc.store(&data[i], static_cast<uint64_t>(i));
          cc.check_point();
        }
      });
      for (size_t i = 0; i < n / 2; ++i) {
        c.store(&data[i], static_cast<uint64_t>(i));
        c.check_point();
      }
      rt.join(c, inner);
    });
    rt.join(ctx, outer);
  });
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(data[i], static_cast<uint64_t>(i)) << i;
  }
}

}  // namespace
}  // namespace mutls
