// Internal control-flow exception used to unwind a doomed speculative task.
//
// A speculative thread becomes doomed when it overflows its buffers, touches
// an unregistered address, reaches an unsafe operation the native embedding
// cannot defer (allocation, irreversible I/O), receives a NOSYNC/abort
// signal at a check point, or is selected by rollback injection. The access
// wrappers throw SpecAbort; the worker loop catches it, cascades NOSYNC to
// the thread's own subtree and parks the thread at its barrier to report
// ROLLBACK when joined.
#pragma once

namespace mutls {

struct SpecAbort {
  const char* reason;
};

}  // namespace mutls
