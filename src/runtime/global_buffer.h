// Speculative memory buffering (paper section IV-G2).
//
// Each speculative thread owns one GlobalBuffer holding a read-set and a
// write-set over main-memory words. Both sets use the paper's *static* map:
//
//   buffer    — N words of data
//   addresses — N word-aligned keys, 0 = empty slot
//   offsets   — stack of occupied slot indices, so validation / commit /
//               finalization of threads touching little data stay fast
//   mark      — N words of per-byte dirty masks (write-set only)
//
// The hash is the low bits of the word address, one slot per key, no
// probing: a slot collision diverts the access to a small bounded overflow
// map ("temporary buffer" in the paper). When the overflow map fills, the
// thread is doomed: it stops at its next check point / barrier and reports
// ROLLBACK at synchronization.
//
// Loads resolve in the order write-set (marked bytes) -> read-set -> main
// memory (first touch inserts the whole containing word into the read-set,
// as the paper does for sub-word accesses). Validation compares every
// read-set word against the joiner's view: main memory for the
// non-speculative joiner, the joiner's own buffer chain for a speculative
// joiner (tree-form nesting, section IV-F). Commit writes marked bytes back,
// whole words at once when a mark word is saturated.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/memory.h"
#include "support/check.h"

namespace mutls {

// One static hash map (either the read-set or the write-set).
class BufferMap {
 public:
  struct Slot {
    uint64_t* data = nullptr;
    uint64_t* mark = nullptr;  // null when the map carries no marks
  };

  enum class Find { kFound, kInserted, kFull };

  BufferMap() = default;

  // `log2_entries` fixes the static size N = 2^log2_entries;
  // `overflow_cap` bounds the temporary buffer; `with_marks` is true for
  // the write-set.
  void init(int log2_entries, size_t overflow_cap, bool with_marks);

  bool initialized() const { return mask_ != 0 || !addresses_; }

  // Finds the slot for `word_addr`, inserting (zeroed) if absent.
  Find find_or_insert(uintptr_t word_addr, Slot& out);

  // Finds without inserting; returns false if absent.
  bool find(uintptr_t word_addr, Slot& out);

  // Visits every occupied entry as fn(word_addr, data&, mark&).
  // `mark` references a dummy full mark when the map carries no marks.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (uint32_t idx : offsets_) {
      fn(addresses_[idx], buffer_[idx], marks_ ? marks_[idx] : dummy_mark_);
    }
    for (OverflowEntry& e : overflow_) {
      fn(e.word_addr, e.data, e.mark);
    }
  }

  size_t entry_count() const { return offsets_.size() + overflow_.size(); }
  size_t overflow_count() const { return overflow_.size(); }
  bool overflow_pressure() const { return !overflow_.empty(); }

  // Empties the map in O(entries), not O(N).
  void clear();

 private:
  struct OverflowEntry {
    uintptr_t word_addr;
    uint64_t data;
    uint64_t mark;
  };

  size_t slot_index(uintptr_t word_addr) const {
    return (word_addr >> 3) & mask_;
  }

  std::unique_ptr<uint64_t[]> buffer_;
  std::unique_ptr<uintptr_t[]> addresses_;
  std::unique_ptr<uint64_t[]> marks_;
  std::vector<uint32_t> offsets_;
  std::vector<OverflowEntry> overflow_;
  size_t mask_ = 0;
  size_t overflow_cap_ = 0;
  uint64_t dummy_mark_ = kFullMark;
};

class GlobalBuffer {
 public:
  void init(int log2_entries, size_t overflow_cap);

  // --- speculative access path (runs on the owning speculative thread) ---

  // Reads `size` bytes of the thread's speculative view of `addr`.
  void load_bytes(uintptr_t addr, void* out, size_t size);

  // Buffers a write of `size` bytes at `addr`.
  void store_bytes(uintptr_t addr, const void* src, size_t size);

  // --- join-time operations (both threads stopped at the flag barrier) ---

  // Validates the read-set against main memory (non-speculative joiner).
  bool validate_against_memory();

  // Validates the read-set against a speculative joiner's buffered view.
  bool validate_against(GlobalBuffer& joiner);

  // Commits marked write-set bytes to main memory.
  void commit_to_memory();

  // Merges this buffer into a *speculative* joiner: writes overlay the
  // joiner's write-set; reads not fully covered by the joiner's writes
  // join the joiner's read-set so the eventual non-speculative validation
  // still covers them.
  void merge_into(GlobalBuffer& joiner);

  // Discards all buffered state; clears doom.
  void reset();

  bool doomed() const { return doomed_; }
  const char* doom_reason() const { return doom_reason_; }
  void doom(const char* reason) {
    doomed_ = true;
    doom_reason_ = reason;
  }

  bool overflow_pressure() const {
    return read_set_.overflow_pressure() || write_set_.overflow_pressure();
  }

  size_t read_entries() const { return read_set_.entry_count(); }
  size_t write_entries() const { return write_set_.entry_count(); }

  uint64_t overflow_events = 0;

 private:
  // The thread's current view of one whole word.
  uint64_t read_word_view(uintptr_t word_addr);

  // Like read_word_view but never inserts into the read-set (used when a
  // speculative joiner evaluates a child's validation).
  uint64_t peek_word_view(uintptr_t word_addr);

  BufferMap read_set_;
  BufferMap write_set_;
  bool doomed_ = false;
  const char* doom_reason_ = "";

  friend class BufferMergeTestPeer;
};

}  // namespace mutls
