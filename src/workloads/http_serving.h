// HTTP request-serving workload over the serving subsystem (ROADMAP item:
// the paper's benchmarks are all compute-shaped; this is the server-shaped
// complement — short tasks, shared index, skew-controlled conflicts).
//
// Batches of synthetic wire-format requests flow through the serve_batch
// pipeline (parse → route/lookup → index update) against a shared
// CacheIndex. The checksum digests the final index contents plus the
// request-outcome counters, so speculative serving must preserve the
// sequential cache state bit-for-bit to pass the equivalence suite.
#pragma once

#include "serving/cache_index.h"
#include "serving/request_gen.h"
#include "serving/serve_batch.h"
#include "workloads/workload.h"

namespace mutls::workloads {

struct HttpServing {
  struct Params {
    uint64_t batches = 64;
    size_t batch = 256;       // requests per batch
    int chunks = 8;           // pipeline chunks per batch
    uint64_t num_keys = 2048;
    double zipf_s = 0.0;      // 0 = uniform keys
    double put_ratio = 0.125;
    double malformed_ratio = 0.02;
    size_t capacity_log2 = 10;  // index slots (< num_keys: evictions happen)
    uint64_t seed = 42;
  };

  static constexpr const char* kName = "http-serving";
  static constexpr Pattern kPattern = Pattern::kLoop;

  static uint64_t digest(const serving::CacheIndex& index,
                         const serving::BatchCounters& totals);

  static SeqRun run_seq(const Params& p);
  static SpecRun run_spec(Runtime& rt, const Params& p, ForkModel model);
};

}  // namespace mutls::workloads
