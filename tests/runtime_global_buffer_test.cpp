// Unit tests for speculative memory buffering, validation, commit and the
// tree-form merge (paper IV-G2 and IV-F), run against the SpecBuffer API
// and value-parameterized over every backend: the buffered-view semantics
// are a backend-independent contract. Backend-specific capacity behavior
// (overflow doom vs resize) and cross-backend merges are covered at the
// bottom.
#include "runtime/spec_buffer.h"

#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "runtime/thread_data.h"
#include "support/prng.h"
#include "tests/backend_param.h"

namespace mutls {
namespace {

std::string backend_test_name(
    const ::testing::TestParamInfo<BufferBackend>& info) {
  return backend_camel_name(info.param);
}

class SpecBufferTest : public ::testing::TestWithParam<BufferBackend> {
 protected:
  void SetUp() override { buf_.init(GetParam(), 8, 64); }

  template <typename T>
  T spec_load(SpecBuffer& b, const T& var) {
    T out;
    b.load_bytes(reinterpret_cast<uintptr_t>(&var), &out, sizeof(T));
    return out;
  }

  template <typename T>
  void spec_store(SpecBuffer& b, T& var, T v) {
    b.store_bytes(reinterpret_cast<uintptr_t>(&var), &v, sizeof(T));
  }

  SpecBuffer buf_;
};

TEST_P(SpecBufferTest, LoadReadsMainMemoryFirstTouch) {
  alignas(8) uint64_t x = 1234;
  EXPECT_EQ(spec_load(buf_, x), 1234u);
  EXPECT_EQ(buf_.read_entries(), 1u);
}

TEST_P(SpecBufferTest, LoadReturnsBufferedWrite) {
  alignas(8) uint64_t x = 1;
  spec_store(buf_, x, uint64_t{77});
  EXPECT_EQ(spec_load(buf_, x), 77u);
  EXPECT_EQ(x, 1u) << "store must not touch main memory before commit";
}

TEST_P(SpecBufferTest, ReadSetKeepsFirstObservation) {
  alignas(8) uint64_t x = 10;
  EXPECT_EQ(spec_load(buf_, x), 10u);
  x = 20;  // main memory changes behind the speculation
  EXPECT_EQ(spec_load(buf_, x), 10u)
      << "subsequent loads come from the read-set";
}

TEST_P(SpecBufferTest, WriteThenReadDoesNotTouchReadSet) {
  alignas(8) uint64_t x = 5;
  spec_store(buf_, x, uint64_t{6});
  EXPECT_EQ(spec_load(buf_, x), 6u);
  EXPECT_EQ(buf_.read_entries(), 0u)
      << "a fully written word carries no memory dependency";
}

TEST_P(SpecBufferTest, ValidationSucceedsWhenMemoryUnchanged) {
  alignas(8) uint64_t x = 42;
  spec_load(buf_, x);
  EXPECT_TRUE(buf_.validate_against_memory());
  EXPECT_EQ(buf_.stats().validated_words, 1u);
}

TEST_P(SpecBufferTest, ValidationFailsWhenMemoryChanged) {
  alignas(8) uint64_t x = 42;
  spec_load(buf_, x);
  x = 43;
  EXPECT_FALSE(buf_.validate_against_memory());
}

TEST_P(SpecBufferTest, CommitWritesWholeWords) {
  alignas(8) uint64_t x = 0;
  spec_store(buf_, x, uint64_t{0x1122334455667788ull});
  buf_.commit_to_memory();
  EXPECT_EQ(x, 0x1122334455667788ull);
}

TEST_P(SpecBufferTest, SubWordStoreCommitsOnlyMarkedBytes) {
  alignas(8) uint64_t x = 0xffffffffffffffffull;
  auto* bytes = reinterpret_cast<uint8_t*>(&x);
  uint8_t v = 0xab;
  buf_.store_bytes(reinterpret_cast<uintptr_t>(bytes + 2), &v, 1);
  buf_.commit_to_memory();
  EXPECT_EQ(bytes[2], 0xab);
  EXPECT_EQ(bytes[0], 0xff);
  EXPECT_EQ(bytes[3], 0xff);
}

TEST_P(SpecBufferTest, SubWordLoadBuffersWholeWord) {
  alignas(8) uint32_t pair[2] = {111, 222};
  uint32_t out;
  buf_.load_bytes(reinterpret_cast<uintptr_t>(&pair[0]), &out, 4);
  EXPECT_EQ(out, 111u);
  pair[1] = 999;  // same word, other half changes
  EXPECT_FALSE(buf_.validate_against_memory())
      << "whole-word validation is conservative, as in the paper";
}

TEST_P(SpecBufferTest, SubWordReadAfterSubWordWriteCombines) {
  alignas(8) uint32_t pair[2] = {1, 2};
  uint32_t nv = 10;
  buf_.store_bytes(reinterpret_cast<uintptr_t>(&pair[0]), &nv, 4);
  // Reading the other (unwritten) half must come from memory.
  uint32_t out;
  buf_.load_bytes(reinterpret_cast<uintptr_t>(&pair[1]), &out, 4);
  EXPECT_EQ(out, 2u);
  // Reading the written half must come from the write-set.
  buf_.load_bytes(reinterpret_cast<uintptr_t>(&pair[0]), &out, 4);
  EXPECT_EQ(out, 10u);
}

TEST_P(SpecBufferTest, MultiWordAccessSplitsAcrossWords) {
  alignas(8) std::array<uint64_t, 4> arr = {1, 2, 3, 4};
  std::array<uint64_t, 3> nv = {11, 12, 13};
  buf_.store_bytes(reinterpret_cast<uintptr_t>(&arr[0]), nv.data(),
                   sizeof(nv));
  std::array<uint64_t, 3> out{};
  buf_.load_bytes(reinterpret_cast<uintptr_t>(&arr[0]), out.data(),
                  sizeof(out));
  EXPECT_EQ(out, nv);
  buf_.commit_to_memory();
  EXPECT_EQ(arr[0], 11u);
  EXPECT_EQ(arr[1], 12u);
  EXPECT_EQ(arr[2], 13u);
  EXPECT_EQ(arr[3], 4u);
}

TEST_P(SpecBufferTest, UnalignedAccessStraddlingWordsRoundTrips) {
  alignas(8) std::array<uint8_t, 24> arr{};
  for (size_t i = 0; i < arr.size(); ++i) arr[i] = static_cast<uint8_t>(i);
  // 8-byte access at offset 5 crosses a word boundary.
  uint64_t out = 0;
  buf_.load_bytes(reinterpret_cast<uintptr_t>(arr.data() + 5), &out, 8);
  uint64_t expect = 0;
  std::memcpy(&expect, arr.data() + 5, 8);
  EXPECT_EQ(out, expect);

  uint64_t nv = 0xa0a1a2a3a4a5a6a7ull;
  buf_.store_bytes(reinterpret_cast<uintptr_t>(arr.data() + 5), &nv, 8);
  buf_.commit_to_memory();
  uint64_t readback = 0;
  std::memcpy(&readback, arr.data() + 5, 8);
  EXPECT_EQ(readback, nv);
  EXPECT_EQ(arr[4], 4u);
  EXPECT_EQ(arr[13], 13u);
}

TEST_P(SpecBufferTest, ResetDiscardsBufferedState) {
  alignas(8) uint64_t x = 3;
  spec_store(buf_, x, uint64_t{9});
  spec_load(buf_, x);
  buf_.reset();
  EXPECT_EQ(buf_.read_entries(), 0u);
  EXPECT_EQ(buf_.write_entries(), 0u);
  buf_.commit_to_memory();
  EXPECT_EQ(x, 3u) << "reset state must not commit anything";
}

// --- tree-form merge (speculative joiner) ---

TEST_P(SpecBufferTest, ValidateAgainstJoinerSeesJoinerWrites) {
  alignas(8) uint64_t x = 100;
  SpecBuffer parent;
  parent.init(GetParam(), 8, 64);
  // Parent speculatively wrote x = 200 before forking the child; the child
  // read main memory (100) -- a conflict the tree validation must catch.
  spec_store(parent, x, uint64_t{200});
  SpecBuffer child;
  child.init(GetParam(), 8, 64);
  spec_load(child, x);
  EXPECT_FALSE(child.validate_against(parent));
  // If the parent's buffered value matches what the child read, it passes.
  SpecBuffer child2;
  child2.init(GetParam(), 8, 64);
  spec_store(parent, x, uint64_t{100});
  spec_load(child2, x);
  EXPECT_TRUE(child2.validate_against(parent));
}

TEST_P(SpecBufferTest, MergeOverlaysChildWritesOntoJoiner) {
  alignas(8) uint64_t x = 0, y = 0;
  SpecBuffer parent, child;
  parent.init(GetParam(), 8, 64);
  child.init(GetParam(), 8, 64);
  spec_store(parent, x, uint64_t{1});
  spec_store(child, y, uint64_t{2});
  child.merge_into(parent);
  // Parent now holds both writes; committing publishes both.
  parent.commit_to_memory();
  EXPECT_EQ(x, 1u);
  EXPECT_EQ(y, 2u);
}

TEST_P(SpecBufferTest, MergeChildWriteWinsOverJoinerWrite) {
  // The child is logically *later*, so its write supersedes the joiner's.
  alignas(8) uint64_t x = 0;
  SpecBuffer parent, child;
  parent.init(GetParam(), 8, 64);
  child.init(GetParam(), 8, 64);
  spec_store(parent, x, uint64_t{1});
  spec_store(child, x, uint64_t{2});
  child.merge_into(parent);
  parent.commit_to_memory();
  EXPECT_EQ(x, 2u);
}

TEST_P(SpecBufferTest, MergePropagatesChildReadsForFinalValidation) {
  alignas(8) uint64_t x = 7;
  SpecBuffer parent, child;
  parent.init(GetParam(), 8, 64);
  child.init(GetParam(), 8, 64);
  spec_load(child, x);
  child.merge_into(parent);
  EXPECT_TRUE(parent.validate_against_memory());
  x = 8;  // memory changes after the merge: the adopted read must fail
  EXPECT_FALSE(parent.validate_against_memory());
}

TEST_P(SpecBufferTest, MergeSkipsReadsFullyCoveredByJoinerWrites) {
  alignas(8) uint64_t x = 7;
  SpecBuffer parent, child;
  parent.init(GetParam(), 8, 64);
  child.init(GetParam(), 8, 64);
  spec_store(parent, x, uint64_t{7});  // full-word write, same value
  spec_load(child, x);
  child.merge_into(parent);
  x = 99;  // adopted read carried no memory dependency -> still valid
  EXPECT_TRUE(parent.validate_against_memory());
}

TEST_P(SpecBufferTest, SubWordMergeCombinesMarks) {
  alignas(8) uint64_t x = 0;
  auto* b = reinterpret_cast<uint8_t*>(&x);
  SpecBuffer parent, child;
  parent.init(GetParam(), 8, 64);
  child.init(GetParam(), 8, 64);
  uint8_t v1 = 0x11, v2 = 0x22;
  parent.store_bytes(reinterpret_cast<uintptr_t>(b + 0), &v1, 1);
  child.store_bytes(reinterpret_cast<uintptr_t>(b + 1), &v2, 1);
  child.merge_into(parent);
  parent.commit_to_memory();
  EXPECT_EQ(b[0], 0x11);
  EXPECT_EQ(b[1], 0x22);
  EXPECT_EQ(b[2], 0x00);
}

INSTANTIATE_TEST_SUITE_P(Backends, SpecBufferTest,
                         ::testing::Values(BufferBackend::kStaticHash,
                                           BufferBackend::kGrowableLog,
                                           BufferBackend::kAdaptive,
                                           BufferBackend::kNumaSharded),
                         backend_test_name);

// --- backend-specific capacity behavior ---

TEST(SpecBufferStaticHash, DoomOnOverflowExhaustion) {
  SpecBuffer tiny;
  tiny.init(BufferBackend::kStaticHash, 4, 2);  // 16 slots, 2 overflow
  alignas(8) static uint64_t arena[256];
  // Store to 4 colliding words: slot + 2 overflow + 1 too many.
  for (int i = 0; i < 4; ++i) {
    uint64_t v = static_cast<uint64_t>(i);
    tiny.store_bytes(reinterpret_cast<uintptr_t>(&arena[i * 16]), &v, 8);
  }
  EXPECT_TRUE(tiny.doomed());
  EXPECT_TRUE(tiny.pressure());
  EXPECT_GT(tiny.stats().overflow_events, 0u);
}

TEST(SpecBufferGrowableLog, ResizesInsteadOfDooming) {
  SpecBuffer tiny;
  tiny.init(BufferBackend::kGrowableLog, 4, 2);  // 16 initial slots
  alignas(8) static uint64_t arena[256];
  // Far more writes (and reads) than the initial capacity: the same access
  // pattern that dooms the static hash must force resizes and carry on.
  for (int i = 0; i < 200; ++i) {
    uint64_t v = static_cast<uint64_t>(i) + 1;
    tiny.store_bytes(reinterpret_cast<uintptr_t>(&arena[i]), &v, 8);
  }
  ASSERT_FALSE(tiny.doomed());
  EXPECT_TRUE(tiny.pressure()) << "a resize this speculation is pressure";
  EXPECT_GT(tiny.stats().resize_events, 0u);
  EXPECT_EQ(tiny.write_entries(), 200u);
  // Every buffered value survives the rehashes.
  for (int i = 0; i < 200; ++i) {
    uint64_t out = 0;
    tiny.load_bytes(reinterpret_cast<uintptr_t>(&arena[i]), &out, 8);
    ASSERT_EQ(out, static_cast<uint64_t>(i) + 1) << "word " << i;
  }
  EXPECT_TRUE(tiny.validate_against_memory());
  tiny.commit_to_memory();
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(arena[i], static_cast<uint64_t>(i) + 1);
  }
}

TEST(SpecBufferNumaSharded, ShardExhaustionDoomsLikeStaticOverflow) {
  SpecBuffer tiny;
  // Two shards alternating every 8-byte word (region_log2 = 3), each
  // capped at a 2^5 index: a footprint far past both caps must doom, the
  // same contract the static hash honors at overflow exhaustion.
  tiny.init(BufferBackend::kNumaSharded, 5, 0, {}, /*growable_max_log2=*/5,
            nullptr, {}, nullptr,
            SpecBuffer::NumaPolicy{/*shards=*/2, /*region_log2=*/3,
                                   /*home_shard=*/0});
  alignas(8) static uint64_t arena[256];
  for (int i = 0; i < 256 && !tiny.doomed(); ++i) {
    uint64_t v = 1;
    tiny.store_bytes(reinterpret_cast<uintptr_t>(&arena[i]), &v, 8);
  }
  EXPECT_TRUE(tiny.doomed()) << "a shard at its maximum index must doom";
  EXPECT_TRUE(tiny.pressure());
  EXPECT_GT(tiny.stats().overflow_events, 0u);
}

TEST(SpecBufferNumaSharded, ContiguousFootprintStaysHomeLocal) {
  SpecBuffer buf;
  // Default 4 KiB regions: a small contiguous footprint lands entirely in
  // the forker's home shard, so every committed word counts as node-local.
  alignas(4096) static uint64_t arena[64];
  int home = static_cast<int>(
      (reinterpret_cast<uintptr_t>(&arena[0]) >> 12) & 1u);
  buf.init(BufferBackend::kNumaSharded, 8, 64, {}, GrowableSet::kMaxLog2,
           nullptr, {}, nullptr,
           SpecBuffer::NumaPolicy{/*shards=*/2, /*region_log2=*/12, home});
  for (int i = 0; i < 64; ++i) {
    uint64_t v = static_cast<uint64_t>(i);
    buf.store_bytes(reinterpret_cast<uintptr_t>(&arena[i]), &v, 8);
  }
  buf.commit_to_memory();
  EXPECT_EQ(buf.stats().local_commit_words, 64u);
  EXPECT_GT(buf.stats().shard_probe_steps, 0u);
}

TEST(SpecBufferGrowableLog, PressureClearsOnReset) {
  SpecBuffer buf;
  buf.init(BufferBackend::kGrowableLog, 4, 0);
  alignas(8) static uint64_t arena[64];
  for (int i = 0; i < 64; ++i) {
    uint64_t v = 1;
    buf.store_bytes(reinterpret_cast<uintptr_t>(&arena[i]), &v, 8);
  }
  ASSERT_TRUE(buf.pressure());
  buf.reset();
  EXPECT_FALSE(buf.pressure()) << "the grown table is no longer pressured";
  // The grown capacity is retained: re-buffering the same footprint does
  // not resize again.
  uint64_t resizes = buf.stats().resize_events;
  for (int i = 0; i < 64; ++i) {
    uint64_t v = 2;
    buf.store_bytes(reinterpret_cast<uintptr_t>(&arena[i]), &v, 8);
  }
  EXPECT_EQ(buf.stats().resize_events, resizes);
}

// --- cross-backend join-time pairings ---
//
// A ThreadManager configures all its buffers with the same BufferBackend,
// but the SpecBuffer join-time operations are generic over the (child,
// joiner) backend pair — and under kAdaptive, sibling slots genuinely run
// mixed backends (a flipped parent joining an unflipped child and vice
// versa). Pin every pairing down so backends stay interchangeable at the
// contract level, including the merge-time read-adoption policy that now
// lives once in SpecBuffer::merge_into.

struct BackendPair {
  BufferBackend child;
  BufferBackend joiner;
};

class SpecBufferCrossBackend : public ::testing::TestWithParam<BackendPair> {};

TEST_P(SpecBufferCrossBackend, MergeAndValidateCompose) {
  alignas(8) uint64_t x = 0, y = 7;
  SpecBuffer joiner, child;
  joiner.init(GetParam().joiner, 8, 64);
  child.init(GetParam().child, 8, 64);

  uint64_t out;
  child.load_bytes(reinterpret_cast<uintptr_t>(&y), &out, 8);  // read dep
  uint64_t v = 5;
  child.store_bytes(reinterpret_cast<uintptr_t>(&x), &v, 8);
  EXPECT_TRUE(child.validate_against(joiner));

  child.merge_into(joiner);
  EXPECT_FALSE(joiner.doomed());
  // The adopted read keeps guarding the final validation...
  y = 8;
  EXPECT_FALSE(joiner.validate_against_memory());
  y = 7;
  EXPECT_TRUE(joiner.validate_against_memory());
  // ...and the adopted write commits.
  joiner.commit_to_memory();
  EXPECT_EQ(x, 5u);
}

// Read adoption is policy, not backend code: a child read fully covered by
// one of the joiner's *full-mark* writes carries no main-memory dependency
// and must be skipped; a partial-mark cover must NOT suppress it. Every
// (child, joiner) pairing runs the same hoisted SpecBuffer::merge_into.
TEST_P(SpecBufferCrossBackend, FullMarkWriteSuppressesReadAdoption) {
  alignas(8) uint64_t full = 7, partial = 7;
  SpecBuffer joiner, child;
  joiner.init(GetParam().joiner, 8, 64);
  child.init(GetParam().child, 8, 64);

  uint64_t v = 7;
  joiner.store_bytes(reinterpret_cast<uintptr_t>(&full), &v, 8);  // full mark
  uint8_t b = 7;
  joiner.store_bytes(reinterpret_cast<uintptr_t>(&partial), &b, 1);  // partial
  uint64_t out;
  child.load_bytes(reinterpret_cast<uintptr_t>(&full), &out, 8);
  child.load_bytes(reinterpret_cast<uintptr_t>(&partial), &out, 8);
  child.merge_into(joiner);
  ASSERT_FALSE(joiner.doomed());
  EXPECT_EQ(joiner.read_entries(), 1u)
      << "only the partially covered read may be adopted";

  // The fully covered word can change behind the joiner with no effect...
  full = 99;
  EXPECT_TRUE(joiner.validate_against_memory())
      << "a read covered by a full-mark write carries no memory dependency";
  // ...while the partially covered one still guards validation.
  partial = 99;
  EXPECT_FALSE(joiner.validate_against_memory())
      << "a partial-mark cover must not suppress read adoption";
}

TEST_P(SpecBufferCrossBackend, AdoptedReadKeepsJoinersFirstObservation) {
  alignas(8) uint64_t x = 10;
  SpecBuffer joiner, child;
  joiner.init(GetParam().joiner, 8, 64);
  child.init(GetParam().child, 8, 64);

  uint64_t out;
  joiner.load_bytes(reinterpret_cast<uintptr_t>(&x), &out, 8);  // observes 10
  x = 20;  // memory moves between the two observations
  child.load_bytes(reinterpret_cast<uintptr_t>(&x), &out, 8);  // observes 20
  ASSERT_EQ(out, 20u);
  child.merge_into(joiner);

  // First value wins: the joiner's earlier observation (10) must survive
  // the merge, so validation fails against the current 20 and passes once
  // memory returns to 10. (Were the child's 20 adopted over it, the two
  // outcomes would be inverted.)
  EXPECT_FALSE(joiner.validate_against_memory());
  x = 10;
  EXPECT_TRUE(joiner.validate_against_memory());
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, SpecBufferCrossBackend,
    ::testing::Values(
        BackendPair{BufferBackend::kStaticHash, BufferBackend::kStaticHash},
        BackendPair{BufferBackend::kStaticHash, BufferBackend::kGrowableLog},
        BackendPair{BufferBackend::kGrowableLog, BufferBackend::kStaticHash},
        BackendPair{BufferBackend::kGrowableLog, BufferBackend::kGrowableLog},
        BackendPair{BufferBackend::kAdaptive, BufferBackend::kGrowableLog},
        BackendPair{BufferBackend::kGrowableLog, BufferBackend::kAdaptive},
        BackendPair{BufferBackend::kStaticHash, BufferBackend::kAdaptive},
        BackendPair{BufferBackend::kAdaptive, BufferBackend::kStaticHash},
        BackendPair{BufferBackend::kNumaSharded, BufferBackend::kNumaSharded},
        BackendPair{BufferBackend::kNumaSharded, BufferBackend::kStaticHash},
        BackendPair{BufferBackend::kStaticHash, BufferBackend::kNumaSharded},
        BackendPair{BufferBackend::kNumaSharded, BufferBackend::kGrowableLog},
        BackendPair{BufferBackend::kGrowableLog, BufferBackend::kNumaSharded}),
    [](const ::testing::TestParamInfo<BackendPair>& info) {
      return backend_camel_name(info.param.child) + "ChildInto" +
             backend_camel_name(info.param.joiner) + "Joiner";
    });

// --- fast-path / slow-path equivalence ---
//
// The aligned-word fast path (load_aligned/store_aligned), the bulk span
// transfers and the backends' MRU word-view caches are pure shortcuts: a
// random mix of aligned, unaligned and word-straddling accesses routed
// through them must leave byte-identical buffer state — and identical
// validation outcomes and committed bytes — as the same mix through the
// fully generic byte loop. The generic reference below issues every access
// one byte at a time, which bypasses the aligned shortcut entirely (and
// gives the MRU nothing reusable beyond a single word).

class SpecBufferEquivalence : public ::testing::TestWithParam<BufferBackend> {
 protected:
  static constexpr size_t kArenaWords = 48;

  void SetUp() override {
    fast_.init(GetParam(), 8, 64);
    slow_.init(GetParam(), 8, 64);
    for (size_t i = 0; i < kArenaWords; ++i) {
      arena_[i] = 0x0101010101010101ull * (i + 1);
    }
  }

  uintptr_t base() const { return reinterpret_cast<uintptr_t>(&arena_[0]); }

  // Generic reference: the access split into single bytes (worst-case
  // generic path; sub-word loads still insert whole words, so the sets end
  // up the same).
  void ref_store(uintptr_t a, const uint8_t* src, size_t n) {
    for (size_t i = 0; i < n; ++i) slow_.store_bytes(a + i, src + i, 1);
  }
  void ref_load(uintptr_t a, uint8_t* out, size_t n) {
    for (size_t i = 0; i < n; ++i) slow_.load_bytes(a + i, out + i, 1);
  }

  // Fast path where eligible (the production routing rule), span transfer
  // otherwise.
  void fast_store(uintptr_t a, const uint8_t* src, size_t n) {
    if (word_sized_aligned(a, n)) {
      uint64_t raw = 0;
      std::memcpy(&raw, src, n);
      fast_.store_aligned(a, raw, n);
    } else {
      fast_.store_span(a, src, n);
    }
  }
  void fast_load(uintptr_t a, uint8_t* out, size_t n) {
    if (word_sized_aligned(a, n)) {
      uint64_t raw = fast_.load_aligned(a, n);
      std::memcpy(out, &raw, n);
    } else {
      fast_.load_span(a, out, n);
    }
  }

  alignas(8) uint64_t arena_[kArenaWords];
  SpecBuffer fast_;
  SpecBuffer slow_;
};

TEST_P(SpecBufferEquivalence, RandomAccessMixMatchesGenericByteLoop) {
  Xorshift64 rng(0xfeedbeef);
  const size_t arena_bytes = kArenaWords * sizeof(uint64_t);
  for (int op = 0; op < 2000; ++op) {
    // Sizes 1..16 cover aligned scalars, odd widths and word straddles.
    size_t n = 1 + rng.next() % 16;
    uintptr_t a = base() + rng.next() % (arena_bytes - n);
    if (rng.next() % 2 == 0) {
      uint8_t data[16];
      for (size_t i = 0; i < n; ++i) {
        data[i] = static_cast<uint8_t>(rng.next());
      }
      fast_store(a, data, n);
      ref_store(a, data, n);
    } else {
      uint8_t got_fast[16] = {0};
      uint8_t got_slow[16] = {0};
      fast_load(a, got_fast, n);
      ref_load(a, got_slow, n);
      ASSERT_EQ(std::memcmp(got_fast, got_slow, n), 0)
          << "op " << op << ": fast and generic loads disagree";
    }
  }
  ASSERT_FALSE(fast_.doomed());
  ASSERT_FALSE(slow_.doomed());
  EXPECT_EQ(fast_.read_entries(), slow_.read_entries());
  EXPECT_EQ(fast_.write_entries(), slow_.write_entries());

  // Identical validation outcomes: valid now, and both spot the same
  // main-memory change behind a word that at least one load observed.
  EXPECT_TRUE(fast_.validate_against_memory());
  EXPECT_TRUE(slow_.validate_against_memory());
  for (size_t i = 0; i < kArenaWords; ++i) {
    uint64_t saved = arena_[i];
    arena_[i] ^= 0xff00ull;
    EXPECT_EQ(fast_.validate_against_memory(),
              slow_.validate_against_memory())
        << "validation outcomes diverge when word " << i << " changes";
    arena_[i] = saved;
  }

  // Byte-identical committed state: commit each buffer onto a pristine
  // copy of the arena and compare the results.
  alignas(8) uint64_t snapshot[kArenaWords];
  std::memcpy(snapshot, arena_, sizeof(arena_));
  fast_.commit_to_memory();
  alignas(8) uint64_t after_fast[kArenaWords];
  std::memcpy(after_fast, arena_, sizeof(arena_));
  std::memcpy(arena_, snapshot, sizeof(arena_));
  slow_.commit_to_memory();
  EXPECT_EQ(std::memcmp(after_fast, arena_, sizeof(arena_)), 0)
      << "fast and generic commits leave different memory";
}

TEST_P(SpecBufferEquivalence, MruInvalidatedAcrossReset) {
  alignas(8) uint64_t& x = arena_[0];
  // Prime the MRU line: a store then a load of the same word is the
  // load+store locality the cache exists for.
  uint8_t v = 0xAB;
  fast_store(reinterpret_cast<uintptr_t>(&x), &v, 1);
  uint8_t out = 0;
  fast_load(reinterpret_cast<uintptr_t>(&x), &out, 1);
  ASSERT_EQ(out, 0xAB);

  fast_.reset();
  // The line must not survive the reset: the slot it named is gone. A
  // post-reset load must re-observe main memory (fresh first touch), not
  // serve the dead slot.
  uint64_t hits_before = fast_.stats().mru_hits;
  x = 0x1122334455667788ull;
  uint64_t word = 0;
  fast_load(reinterpret_cast<uintptr_t>(&x), reinterpret_cast<uint8_t*>(&word),
            8);
  EXPECT_EQ(word, 0x1122334455667788ull)
      << "stale MRU line served a discarded slot after reset";
  EXPECT_EQ(fast_.stats().mru_hits, hits_before)
      << "the first post-reset touch cannot be an MRU hit";
  EXPECT_EQ(fast_.read_entries(), 1u);
}

TEST_P(SpecBufferEquivalence, MruInvalidatedAcrossResetForSpeculation) {
  // Same guarantee one layer up: re-arming a virtual-CPU slot
  // (ThreadData::reset_for_speculation) resets the buffer and with it the
  // MRU line, so a reused slot cannot leak a previous speculation's view.
  ThreadData td;
  td.sbuf.init(GetParam(), 8, 64);
  td.lbuf.init(4);
  alignas(8) uint64_t& x = arena_[1];
  uint64_t v = 99;
  td.sbuf.store_bytes(reinterpret_cast<uintptr_t>(&x), &v, 8);
  uint64_t out = 0;
  td.sbuf.load_bytes(reinterpret_cast<uintptr_t>(&x), &out, 8);
  ASSERT_EQ(out, 99u);

  td.reset_for_speculation(0, 0, 1, 0x5eed, 0.0);
  x = 424242;
  out = 0;
  td.sbuf.load_bytes(reinterpret_cast<uintptr_t>(&x), &out, 8);
  EXPECT_EQ(out, 424242u)
      << "reused slot leaked the previous speculation's buffered view";
  EXPECT_EQ(td.sbuf.stats().mru_hits, 0u)
      << "clear_stats + reset must leave no pre-armed MRU hit";
}

// The MRU word-view cache is now ONE state machine in SpecBuffer,
// parameterized on the backends' slot handles; walk it through every line
// state deterministically and pin the exact hit/miss/skip accounting —
// identical for every backend, since the machine no longer lives in them.
TEST_P(SpecBufferEquivalence, MruStateMachineCoversEveryLineState) {
  alignas(8) uint64_t x = 0x0807060504030201ull;
  alignas(8) uint64_t y = 0xbbbbbbbbbbbbbbbbull;
  auto addr = [](uint64_t& v) { return reinterpret_cast<uintptr_t>(&v); };
  const SpecBufferStats& s = fast_.stats();

  // 1. Partial-mark store: write-set miss, line learns the write handle.
  uint8_t b = 0xAA;
  fast_.store_span(addr(x), &b, 1);
  EXPECT_EQ(s.mru_misses, 1u);
  EXPECT_EQ(s.mru_hits, 0u);

  // 2. Load of the same word: the line knows a *partial* write but no read
  // slot yet -> miss path resolves the read slot, keeping the write half.
  uint64_t out = fast_.load_aligned(addr(x), 8);
  EXPECT_EQ(out, 0x08070605040302AAull) << "written byte over memory base";
  EXPECT_EQ(s.mru_misses, 2u);

  // 3. Load again: partial write + read slot both cached -> overlay hit.
  out = fast_.load_aligned(addr(x), 8);
  EXPECT_EQ(out, 0x08070605040302AAull);
  EXPECT_EQ(s.mru_hits, 1u);
  EXPECT_EQ(s.probe_skips, 2u);

  // 4. Store through the cached write handle -> hit, one probe skipped.
  fast_.store_aligned(addr(x), 0x1111111111111111ull, 8);
  EXPECT_EQ(s.mru_hits, 2u);
  EXPECT_EQ(s.probe_skips, 3u);

  // 5. Load of a now fully-marked word -> served from the write slot.
  out = fast_.load_aligned(addr(x), 8);
  EXPECT_EQ(out, 0x1111111111111111ull);
  EXPECT_EQ(s.mru_hits, 3u);
  EXPECT_EQ(s.probe_skips, 4u);

  // 6. Different, read-only word: miss, line proves the write absent...
  out = fast_.load_aligned(addr(y), 8);
  EXPECT_EQ(out, 0xbbbbbbbbbbbbbbbbull);
  EXPECT_EQ(s.mru_misses, 3u);

  // 7. ...so the repeat load is a read-only hit skipping both probes.
  out = fast_.load_aligned(addr(y), 8);
  EXPECT_EQ(out, 0xbbbbbbbbbbbbbbbbull);
  EXPECT_EQ(s.mru_hits, 4u);
  EXPECT_EQ(s.probe_skips, 6u);

  // The shortcuts above must not have perturbed the sets themselves.
  EXPECT_EQ(fast_.read_entries(), 2u);
  EXPECT_EQ(fast_.write_entries(), 1u);
  EXPECT_TRUE(fast_.validate_against_memory());
}

INSTANTIATE_TEST_SUITE_P(Backends, SpecBufferEquivalence,
                         ::testing::Values(BufferBackend::kStaticHash,
                                           BufferBackend::kGrowableLog,
                                           BufferBackend::kAdaptive,
                                           BufferBackend::kNumaSharded),
                         backend_test_name);

}  // namespace
}  // namespace mutls
