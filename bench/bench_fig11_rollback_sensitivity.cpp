// Figure 11 — rollback sensitivity, rebuilt around *genuine* memory
// conflicts (machine-parseable; parsed into the `fig11` section of
// BENCH_results.json by scripts/bench_json.py).
//
// The original prose bench injected rollbacks via the flag-probability
// knob, which short-circuits validation entirely — a fine way to tax the
// protocol, but useless for value prediction, whose whole point is to
// survive validation. This kernel instead manufactures real read-set
// conflicts with a deterministic schedule:
//
//   - One hot word. On "conflict epochs" — spread evenly so an injected
//     ratio p yields exactly floor(epochs*p) of them — the speculative
//     child reads the hot word into its read-set, then the root bumps it
//     by a constant stride *after* the child has provably read it (the
//     child publishes a raw atomic flag once its reads are done; this
//     side channel is bench scaffolding, not a runtime facility). At join
//     the child's observation mismatches memory: a guaranteed rollback.
//   - Every epoch the child also streams a small cold working set and
//     writes a digest word, so a rollback forfeits real work.
//
// With prediction off, the rollback ratio equals p by construction. With
// prediction on, consecutive conflicts move the hot word by the same
// stride, so the slot's predictor converges after three conflicts
// (create entry → candidate stride → confidence 2) and every later
// conflict epoch *commits*: the child adopted the predicted post-bump
// value. The cell counters are therefore deterministic, and this binary
// hard-fails (exit 1) if the acceptance property does not hold: at a
// ratio >= 20%, prediction-on must report saved_rollbacks > 0. It also
// hard-fails on any divergence from the sequential oracle (final hot and
// digest values), and on prediction counters leaking into predict=off
// cells. Throughput is reported, never asserted — timing is the one
// nondeterministic output.
//
// Output: one `FIG11 key=value ...` line per {backend x ratio x predict}
// cell and a FIG11_TOTAL trailer. Flags: --quick shrinks the epoch count
// (CI smoke); other harness flags are accepted and ignored.
#include <atomic>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <thread>

#include "mutls/mutls.h"
#include "support/timing.h"

namespace {

using namespace mutls;

constexpr int kRatioPcts[] = {1, 5, 10, 20, 50, 100};
constexpr BufferBackend kBackends[] = {BufferBackend::kStaticHash,
                                       BufferBackend::kGrowableLog,
                                       BufferBackend::kAdaptive,
                                       BufferBackend::kNumaSharded};
constexpr const char* kBackendNames[] = {"static-hash", "growable-log",
                                         "adaptive", "numa-sharded"};
static_assert(sizeof(kBackendNames) / sizeof(kBackendNames[0]) ==
              sizeof(kBackends) / sizeof(kBackends[0]));

constexpr size_t kColdWords = 64;
constexpr uint64_t kHotInit = 1000;
constexpr uint64_t kHotStride = 7;

// Epoch e is a conflict epoch iff the integer ramp floor((e+1)*pct/100)
// advances — exactly floor(epochs*pct/100) conflicts, spread evenly.
bool conflict_epoch(uint64_t e, int pct) {
  return (e + 1) * static_cast<uint64_t>(pct) / 100 >
         e * static_cast<uint64_t>(pct) / 100;
}

// The child's digest, replayed sequentially: the serialized semantics put
// the child after the root's bump, so on conflict epochs the oracle folds
// in the *post-bump* hot value.
uint64_t oracle_digest(bool conflict, uint64_t hot_after,
                       const uint64_t* cold) {
  uint64_t sum = conflict ? hot_after : 0;
  for (size_t i = 0; i < kColdWords; ++i) {
    sum = sum * 0x9e3779b97f4a7c15ull + cold[i] + (sum >> 7);
  }
  return sum;
}

struct CellResult {
  uint64_t epochs = 0;
  uint64_t conflicts = 0;
  uint64_t commits = 0;
  uint64_t rollbacks = 0;
  SpecBufferStats buffer;
  uint64_t wall_ns = 0;
};

bool run_cell(BufferBackend backend, int pct, bool predict, uint64_t epochs,
              CellResult* out) {
  Runtime::Options o;
  o.num_cpus = 1;
  o.buffer_log2 = 10;
  o.buffer_backend = backend;
  o.predict_enabled = predict;
  o.predict_confidence_threshold = 2;
  Runtime rt(o);
  SharedArray<uint64_t> hot(rt, 1, kHotInit);
  SharedArray<uint64_t> cold(rt, kColdWords, 0);
  SharedArray<uint64_t> digest(rt, 1, 0);
  for (size_t i = 0; i < kColdWords; ++i) cold[i] = i + 1;

  uint64_t conflicts = 0;
  uint64_t expected_digest = 0;
  std::atomic<bool> reads_done{false};
  Stopwatch sw;
  RunStats rs = rt.run([&](Ctx& ctx) {
    SharedSpan<uint64_t> h = hot.span(ctx);  // root: direct access
    for (uint64_t e = 0; e < epochs; ++e) {
      const bool conflict = conflict_epoch(e, pct);
      reads_done.store(false, std::memory_order_relaxed);
      Spec s = rt.fork(ctx, ForkModel::kMixed, [&](Ctx& c) {
        SharedSpan<uint64_t> hh = hot.span(c);
        SharedSpan<uint64_t> cc = cold.span(c);
        SharedSpan<uint64_t> dd = digest.span(c);
        uint64_t sum = conflict ? hh[0] : 0;
        for (size_t i = 0; i < kColdWords; ++i) {
          sum = sum * 0x9e3779b97f4a7c15ull + cc[i] + (sum >> 7);
        }
        dd[0] = sum;
        // Bench scaffolding: tell the root the read-set is final. (Set on
        // inline re-execution too — the root is already past its wait.)
        reads_done.store(true, std::memory_order_release);
      });
      if (conflict) {
        if (s.speculated()) {
          // Bump only after the child's speculative read: the conflict
          // must be real, not a race the child might win.
          while (!reads_done.load(std::memory_order_acquire)) {
            std::this_thread::yield();
          }
        }
        h[0] += kHotStride;
        ++conflicts;
      }
      rt.join(ctx, s);
      expected_digest = oracle_digest(conflict, hot[0], cold.data());
    }
  });
  out->epochs = epochs;
  out->conflicts = conflicts;
  out->commits = rs.speculative.commits;
  out->rollbacks = rs.speculative.rollbacks;
  out->buffer = rs.speculative.buffer;
  out->wall_ns = sw.elapsed_ns();

  bool ok = true;
  if (hot[0] != kHotInit + conflicts * kHotStride) {
    std::fprintf(stderr,
                 "FIG11 FAIL: hot word diverged from the sequential oracle "
                 "(%" PRIu64 " vs %" PRIu64 ")\n",
                 hot[0], kHotInit + conflicts * kHotStride);
    ok = false;
  }
  if (epochs > 0 && digest[0] != expected_digest) {
    std::fprintf(stderr,
                 "FIG11 FAIL: digest diverged from the sequential oracle "
                 "(%016" PRIx64 " vs %016" PRIx64 ")\n",
                 digest[0], expected_digest);
    ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--quick")) quick = true;
  }
  const uint64_t epochs = quick ? 800 : 6000;

  bool ok = true;
  int cells = 0;
  Stopwatch total;
  for (size_t bi = 0; bi < sizeof(kBackends) / sizeof(kBackends[0]); ++bi) {
    for (int pct : kRatioPcts) {
      for (int predict = 0; predict <= 1; ++predict) {
        CellResult r;
        ok &= run_cell(kBackends[bi], pct, predict != 0, epochs, &r);
        double secs = static_cast<double>(r.wall_ns) * 1e-9;
        std::printf(
            "FIG11 backend=%s ratio_pct=%d predict=%s epochs=%" PRIu64
            " conflicts=%" PRIu64 " commits=%" PRIu64 " rollbacks=%" PRIu64
            " predicted_reads=%" PRIu64 " predictor_hits=%" PRIu64
            " predictor_mispredicts=%" PRIu64 " saved_rollbacks=%" PRIu64
            " wall_ns=%" PRIu64 " epochs_per_s=%.0f\n",
            kBackendNames[bi], pct, predict ? "on" : "off", r.epochs,
            r.conflicts, r.commits, r.rollbacks, r.buffer.predicted_reads,
            r.buffer.predictor_hits, r.buffer.predictor_mispredicts,
            r.buffer.saved_rollbacks, r.wall_ns,
            secs > 0 ? static_cast<double>(r.epochs) / secs : 0.0);
        ++cells;
        if (!predict && (r.buffer.predicted_reads != 0 ||
                         r.buffer.saved_rollbacks != 0)) {
          std::fprintf(stderr,
                       "FIG11 FAIL: prediction counters leaked into a "
                       "predict=off cell (backend=%s ratio_pct=%d)\n",
                       kBackendNames[bi], pct);
          ok = false;
        }
        if (predict && pct >= 20 && r.buffer.saved_rollbacks == 0) {
          std::fprintf(stderr,
                       "FIG11 FAIL: predict=on saved no rollbacks at "
                       "ratio_pct=%d on backend=%s — the predictor never "
                       "converted a conflict into a commit\n",
                       pct, kBackendNames[bi]);
          ok = false;
        }
      }
    }
  }
  std::printf("FIG11_TOTAL cells=%d wall_ns=%" PRIu64 "\n", cells,
              total.elapsed_ns());
  return ok ? 0 : 1;
}
