#include "speculator/pass.h"

#include <algorithm>
#include <unordered_set>

namespace mutls::speculator {

using namespace ir;

namespace {

const char* suffix_for(Type t) {
  switch (t) {
    case Type::kI1:
    case Type::kI8: return "i8";
    case Type::kI16: return "i16";
    case Type::kI32: return "i32";
    case Type::kI64: return "i64";
    case Type::kF32: return "f32";
    case Type::kF64: return "f64";
    case Type::kPtr: return "ptr";
    default: return "i64";
  }
}

bool is_unsafe_external(const Module& m, const Instr& in) {
  if (in.op != Op::kCall) return false;
  if (m.find_function(in.sym)) return false;
  // Known-safe externals (paper IV-C): abs, log, etc.
  static const std::unordered_set<std::string> kSafe = {"abs_i64", "log_f64",
                                                        "sqrt_f64"};
  return !kSafe.count(in.sym) && in.sym.rfind("MUTLS_", 0) != 0 &&
         in.sym.rfind("mutls.", 0) != 0;
}

struct Transformer {
  const Module& src;
  Module& out;
  FunctionReport report;

  // --- helpers on the function being built ---

  static Instr call_instr(const std::string& sym, Type ret,
                          std::vector<ValueId> args) {
    Instr in;
    in.op = Op::kCall;
    in.sym = sym;
    in.type = ret;
    in.args = std::move(args);
    return in;
  }

  static Instr const_instr(Function& f, Type t, int64_t v, ValueId& id) {
    Instr in;
    in.op = Op::kConst;
    in.type = t;
    in.imm = v;
    id = f.new_value(t, "");
    in.result = id;
    return in;
  }

  // Replaces loads/stores with runtime calls (preparation step 1).
  static void bufferize_accesses(Function& f) {
    for (Block& b : f.blocks) {
      for (Instr& in : b.instrs) {
        if (in.op == Op::kLoad) {
          Instr c = call_instr(
              std::string("MUTLS_load_") + suffix_for(in.type), in.type,
              {in.args[0]});
          c.result = in.result;
          in = std::move(c);
        } else if (in.op == Op::kStore) {
          Type vt = f.value_types[in.args[0]];
          Instr c = call_instr(
              std::string("MUTLS_store_") + suffix_for(vt), Type::kVoid,
              {in.args[0], in.args[1]});
          in = std::move(c);
        }
      }
    }
  }

  // Assigns a LocalBuffer offset per SSA value (preparation step 4): the
  // paper assigns offsets to locals live at synchronization blocks; using
  // the value id as the offset is the degenerate total assignment.
  // Emits save calls for the values live at (block, instr).
  void emit_saves(Function& f, std::vector<Instr>& seq,
                  const std::vector<bool>& live, ValueId skip = kNoValue) {
    for (ValueId v = 1; v < live.size(); ++v) {
      if (!live[v] || v == skip) continue;
      Type t = f.value_types[v];
      if (t == Type::kVoid) continue;
      ValueId off;
      seq.push_back(const_instr(f, Type::kI32, static_cast<int64_t>(v), off));
      seq.push_back(call_instr(
          std::string("MUTLS_save_local_") + suffix_for(t), Type::kVoid,
          {off, v}));
      report.live_slots = std::max(report.live_slots, static_cast<int>(v) + 1);
    }
  }

  // Builds a restore block for the values live at target block `tb` and
  // returns its index. Restored values need phis in `tb`; the caller
  // collects (value, restored) pairs.
  uint32_t build_restore_block(Function& f, uint32_t tb,
                               const std::vector<bool>& live,
                               std::vector<std::pair<ValueId, ValueId>>&
                                   restored,
                               const std::string& label) {
    Block rb;
    rb.label = label;
    for (ValueId v = 1; v < live.size(); ++v) {
      if (!live[v]) continue;
      Type t = f.value_types[v];
      if (t == Type::kVoid) continue;
      ValueId off;
      rb.instrs.push_back(
          const_instr(f, Type::kI32, static_cast<int64_t>(v), off));
      Instr c = call_instr(
          std::string("MUTLS_restore_local_") + suffix_for(t), t, {off});
      ValueId rv = f.new_value(t, f.value_names[v] + ".restored");
      c.result = rv;
      rb.instrs.push_back(std::move(c));
      restored.emplace_back(v, rv);
    }
    Instr br;
    br.op = Op::kBr;
    br.blocks = {tb};
    rb.instrs.push_back(std::move(br));
    f.blocks.push_back(std::move(rb));
    return static_cast<uint32_t>(f.blocks.size() - 1);
  }

  // Inserts phis at the head of `tb` merging the original values with the
  // restored versions arriving from `rb`, and rewrites dominated uses
  // ("Phi nodes are inserted at the beginning of the latter block to
  // distinguish the different versions", paper IV-D).
  void insert_restore_phis(Function& f, uint32_t tb, uint32_t rb,
                           const std::vector<std::pair<ValueId, ValueId>>&
                               restored) {
    Cfg cfg = build_cfg(f);
    std::vector<uint32_t> idom = compute_idom(f, cfg);
    auto dominates = [&](uint32_t a, uint32_t b) {
      while (true) {
        if (a == b) return true;
        if (b == 0 || idom[b] == b) return a == b || a == 0;
        b = idom[b];
      }
    };
    for (auto [orig, rest] : restored) {
      Instr phi;
      phi.op = Op::kPhi;
      phi.type = f.value_types[orig];
      ValueId pv = f.new_value(phi.type, f.value_names[orig] + ".merge");
      phi.result = pv;
      for (uint32_t p : cfg.pred[tb]) {
        phi.args.push_back(p == rb ? rest : orig);
        phi.blocks.push_back(p);
      }
      // Rewrite uses of `orig` strictly dominated by tb (and in tb below
      // the phi head) to the merged value.
      for (uint32_t b = 0; b < f.blocks.size(); ++b) {
        if (b == rb) continue;
        bool dom = b == tb || (dominates(tb, b) && b != tb);
        for (size_t i = 0; i < f.blocks[b].instrs.size(); ++i) {
          Instr& in = f.blocks[b].instrs[i];
          if (in.op == Op::kPhi && b == tb) continue;  // phi heads keep orig
          if (!dom && in.op != Op::kPhi) continue;
          for (size_t ai = 0; ai < in.args.size(); ++ai) {
            if (in.args[ai] != orig) continue;
            if (in.op == Op::kPhi) {
              // Phi operands follow their edge's source block.
              uint32_t from = in.blocks[ai];
              if (from == tb || (from != rb && dominates(tb, from))) {
                in.args[ai] = pv;
              }
            } else if (dom) {
              in.args[ai] = pv;
            }
          }
        }
      }
      f.blocks[tb].instrs.insert(f.blocks[tb].instrs.begin(), std::move(phi));
    }
  }

  // Splits block `b` before instruction `at`; the tail becomes a new block
  // named `label`. Phi edges and terminators are fixed up.
  uint32_t split_block(Function& f, uint32_t b, size_t at,
                       const std::string& label) {
    Block tail;
    tail.label = label;
    tail.instrs.assign(f.blocks[b].instrs.begin() + static_cast<long>(at),
                       f.blocks[b].instrs.end());
    f.blocks[b].instrs.erase(
        f.blocks[b].instrs.begin() + static_cast<long>(at),
        f.blocks[b].instrs.end());
    Instr br;
    br.op = Op::kBr;
    f.blocks.push_back(std::move(tail));
    uint32_t nb = static_cast<uint32_t>(f.blocks.size() - 1);
    br.blocks = {nb};
    f.blocks[b].instrs.push_back(std::move(br));
    // Phi predecessors referring to b for edges now leaving the tail.
    const Instr& t = f.blocks[nb].terminator();
    if (t.op == Op::kBr || t.op == Op::kCondBr) {
      for (uint32_t s : t.blocks) {
        for (Instr& in : f.blocks[s].instrs) {
          if (in.op != Op::kPhi) break;
          for (uint32_t& pb : in.blocks) {
            if (pb == b) pb = nb;
          }
        }
      }
    }
    return nb;
  }

  void transform(const Function& orig);
  Function make_clone(const Function& orig);
  void make_proxy_stub(const Function& orig);
  void lower_nonspec(Function& f);
};

Function Transformer::make_clone(const Function& orig) {
  Function f = orig;  // deep copy
  f.name = orig.name + ".speculative";
  f.params.push_back(Param{"counter", Type::kI32});
  ValueId counter = f.new_value(Type::kI32, "counter");
  f.params.push_back(Param{"rank", Type::kI32});
  f.new_value(Type::kI32, "rank");

  bufferize_accesses(f);

  std::vector<std::vector<bool>> live = compute_live_in(f);

  // (3) point blocks with synchronization counters.
  int counter_id = 1;
  // Check points at loop back edges; terminate points before unsafe
  // external calls; enter points before internal calls; return point
  // before ret.
  for (uint32_t b = 0; b < f.blocks.size(); ++b) {
    for (size_t i = 0; i < f.blocks[b].instrs.size(); ++i) {
      Instr& in = f.blocks[b].instrs[i];
      std::vector<Instr> seq;
      const char* fnname = nullptr;
      PointBlockInfo::Kind kind = PointBlockInfo::kCheck;
      if (is_unsafe_external(src, in)) {
        fnname = "MUTLS_terminate_point";
        kind = PointBlockInfo::kTerminate;
      } else if (in.op == Op::kCall && src.find_function(in.sym)) {
        fnname = "MUTLS_enter_point";
        kind = PointBlockInfo::kEnter;
      } else if (in.op == Op::kRet) {
        fnname = "MUTLS_return_point";
        kind = PointBlockInfo::kReturn;
      } else if ((in.op == Op::kBr || in.op == Op::kCondBr) &&
                 !in.blocks.empty() &&
                 *std::min_element(in.blocks.begin(), in.blocks.end()) <= b) {
        fnname = "MUTLS_check_point";
        kind = PointBlockInfo::kCheck;
      }
      if (!fnname) continue;
      emit_saves(f, seq, live[b]);
      ValueId cid;
      seq.push_back(const_instr(f, Type::kI32, counter_id, cid));
      seq.push_back(call_instr(fnname, Type::kVoid, {cid, counter + 1}));
      report.points.push_back(
          PointBlockInfo{kind, counter_id, f.blocks[b].label});
      ++counter_id;
      f.blocks[b].instrs.insert(f.blocks[b].instrs.begin() +
                                    static_cast<long>(i),
                                seq.begin(), seq.end());
      i += seq.size();
    }
  }

  // Speculation table: dispatch on `counter` to the join point blocks
  // through restore blocks (the clone's entry for counter == 0 falls
  // through to the original entry).
  struct JoinTarget {
    int64_t point;
    uint32_t block;
  };
  std::vector<JoinTarget> joins;
  for (uint32_t b = 0; b < f.blocks.size(); ++b) {
    for (size_t i = 0; i < f.blocks[b].instrs.size(); ++i) {
      if (f.blocks[b].instrs[i].op == Op::kMutlsJoin) {
        // Split so the continuation starts its own numbered block.
        uint32_t nb = split_block(
            f, b, i + 1,
            "join" + std::to_string(f.blocks[b].instrs[i].imm) + ".cont");
        joins.push_back(JoinTarget{f.blocks[b].instrs[i].imm, nb});
        report.points.push_back(PointBlockInfo{
            PointBlockInfo::kJoin, static_cast<int>(f.blocks[b].instrs[i].imm),
            f.blocks[nb].label});
      }
    }
  }

  live = compute_live_in(f);
  // New dispatch entry.
  Block dispatch;
  dispatch.label = "spec.table";
  std::vector<Instr> entry_instrs;
  uint32_t old_entry = 0;
  // Build restore blocks first (appending blocks invalidates nothing).
  std::vector<std::pair<int64_t, uint32_t>> dispatch_targets;
  for (const JoinTarget& j : joins) {
    std::vector<std::pair<ValueId, ValueId>> restored;
    uint32_t rb = build_restore_block(
        f, j.block, live[j.block], restored,
        "restore.join" + std::to_string(j.point));
    insert_restore_phis(f, j.block, rb, restored);
    dispatch_targets.emplace_back(j.point, rb);
  }
  // Dispatch chain: counter == point ? restore : next.
  // Blocks: spec.table (+ cmp chain blocks).
  {
    Block cur;
    cur.label = "spec.table";
    uint32_t insert_at = static_cast<uint32_t>(f.blocks.size());
    for (size_t k = 0; k < dispatch_targets.size(); ++k) {
      ValueId cid;
      cur.instrs.push_back(const_instr(
          f, Type::kI32, dispatch_targets[k].first, cid));
      Instr cmp;
      cmp.op = Op::kICmp;
      cmp.pred = Pred::kEq;
      cmp.type = Type::kI1;
      cmp.args = {counter, cid};
      cmp.result = f.new_value(Type::kI1, "");
      ValueId cv = cmp.result;
      cur.instrs.push_back(std::move(cmp));
      Instr cb;
      cb.op = Op::kCondBr;
      cb.args = {cv};
      bool last = k + 1 == dispatch_targets.size();
      uint32_t next_blk = last ? old_entry
                               : insert_at + static_cast<uint32_t>(k) + 1;
      cb.blocks = {dispatch_targets[k].second, next_blk};
      cur.instrs.push_back(std::move(cb));
      f.blocks.push_back(std::move(cur));
      cur = Block{};
      cur.label = "spec.table." + std::to_string(k + 1);
    }
    if (dispatch_targets.empty()) {
      cur.label = "spec.table";
      Instr br;
      br.op = Op::kBr;
      br.blocks = {old_entry};
      cur.instrs.push_back(std::move(br));
      f.blocks.push_back(std::move(cur));
    }
  }
  // Rotate so the dispatch block is the entry: swap block order by moving
  // the dispatch chain to the front would invalidate indices; instead,
  // create the final function with reordered blocks and remapped indices.
  {
    uint32_t first_dispatch = 0;
    for (uint32_t b = 0; b < f.blocks.size(); ++b) {
      if (f.blocks[b].label == "spec.table") first_dispatch = b;
    }
    std::vector<uint32_t> order;
    order.push_back(first_dispatch);
    for (uint32_t b = first_dispatch + 1; b < f.blocks.size(); ++b) {
      order.push_back(b);
    }
    for (uint32_t b = 0; b < first_dispatch; ++b) order.push_back(b);
    std::vector<uint32_t> remap(f.blocks.size());
    for (uint32_t i = 0; i < order.size(); ++i) remap[order[i]] = i;
    std::vector<Block> nb;
    nb.reserve(f.blocks.size());
    for (uint32_t b : order) nb.push_back(std::move(f.blocks[b]));
    for (Block& blk : nb) {
      for (Instr& in : blk.instrs) {
        for (uint32_t& t : in.blocks) t = remap[t];
      }
    }
    f.blocks = std::move(nb);
  }
  return f;
}

void Transformer::make_proxy_stub(const Function& orig) {
  // Proxy: same signature + (counter, rank); stores arguments via
  // MUTLS_set_regvar_* and calls MUTLS_speculate.
  Function proxy;
  proxy.name = orig.name + ".proxy";
  proxy.ret_type = Type::kVoid;
  for (const Param& p : orig.params) {
    proxy.params.push_back(p);
    proxy.new_value(p.type, p.name);
  }
  proxy.params.push_back(Param{"counter", Type::kI32});
  ValueId counter = proxy.new_value(Type::kI32, "counter");
  proxy.params.push_back(Param{"rank", Type::kI32});
  ValueId rank = proxy.new_value(Type::kI32, "rank");
  Block pb;
  pb.label = "entry";
  for (size_t i = 0; i < orig.params.size(); ++i) {
    ValueId off;
    pb.instrs.push_back(
        const_instr(proxy, Type::kI32, static_cast<int64_t>(i), off));
    pb.instrs.push_back(call_instr(
        std::string("MUTLS_set_regvar_") + suffix_for(orig.params[i].type),
        Type::kVoid, {off, static_cast<ValueId>(i + 1)}));
  }
  pb.instrs.push_back(
      call_instr("MUTLS_speculate", Type::kVoid, {counter, rank}));
  Instr ret;
  ret.op = Op::kRet;
  pb.instrs.push_back(std::move(ret));
  proxy.blocks.push_back(std::move(pb));
  report.proxy = proxy.name;
  out.functions.push_back(std::move(proxy));

  // Stub: fetches the arguments and enters the speculative clone.
  Function stub;
  stub.name = orig.name + ".stub";
  stub.ret_type = Type::kVoid;
  stub.params.push_back(Param{"counter", Type::kI32});
  ValueId scounter = stub.new_value(Type::kI32, "counter");
  stub.params.push_back(Param{"rank", Type::kI32});
  ValueId srank = stub.new_value(Type::kI32, "rank");
  Block sb;
  sb.label = "entry";
  std::vector<ValueId> args;
  for (size_t i = 0; i < orig.params.size(); ++i) {
    ValueId off;
    sb.instrs.push_back(
        const_instr(stub, Type::kI32, static_cast<int64_t>(i), off));
    Instr get = call_instr(
        std::string("MUTLS_get_regvar_") + suffix_for(orig.params[i].type),
        orig.params[i].type, {off});
    ValueId v = stub.new_value(orig.params[i].type, orig.params[i].name);
    get.result = v;
    sb.instrs.push_back(std::move(get));
    args.push_back(v);
  }
  args.push_back(scounter);
  args.push_back(srank);
  Instr call = call_instr(orig.name + ".speculative", orig.ret_type, args);
  if (orig.ret_type != Type::kVoid) {
    call.result = stub.new_value(orig.ret_type, "specret");
  }
  sb.instrs.push_back(std::move(call));
  Instr sret;
  sret.op = Op::kRet;
  sb.instrs.push_back(std::move(sret));
  stub.blocks.push_back(std::move(sb));
  report.stub = stub.name;
  out.functions.push_back(std::move(stub));
}

void Transformer::lower_nonspec(Function& f) {
  // Fork points: MUTLS_get_CPU + speculation block calling the proxy.
  // Join points: MUTLS_synchronize + synchronization-table dispatch.
  std::vector<std::vector<bool>> live = compute_live_in(f);
  for (uint32_t b = 0; b < f.blocks.size(); ++b) {
    for (size_t i = 0; i < f.blocks[b].instrs.size(); ++i) {
      Instr in = f.blocks[b].instrs[i];
      if (in.op == Op::kMutlsFork) {
        // Split the continuation off, then rewrite this position.
        uint32_t cont = split_block(f, b, i + 1,
                                    f.blocks[b].label + ".postfork");
        Block& blk = f.blocks[b];
        blk.instrs.pop_back();  // the br added by split
        blk.instrs.pop_back();  // the fork marker itself
        std::vector<Instr> seq;
        ValueId pid, model;
        seq.push_back(const_instr(f, Type::kI32, in.imm, pid));
        seq.push_back(const_instr(f, Type::kI32,
                                  static_cast<int64_t>(in.pred), model));
        Instr get = call_instr("MUTLS_get_CPU", Type::kI32, {pid, model});
        ValueId rank = f.new_value(Type::kI32, "rank");
        get.result = rank;
        seq.push_back(std::move(get));
        ValueId zero;
        seq.push_back(const_instr(f, Type::kI32, 0, zero));
        Instr cmp;
        cmp.op = Op::kICmp;
        cmp.pred = Pred::kNe;
        cmp.type = Type::kI1;
        cmp.args = {rank, zero};
        ValueId cond = f.new_value(Type::kI1, "speculated");
        cmp.result = cond;
        seq.push_back(std::move(cmp));
        // Speculation block: save live locals, call the proxy.
        Block spec;
        spec.label = "spec.point" + std::to_string(in.imm) + "." +
                     std::to_string(b);
        std::vector<Instr> saves;
        emit_saves(f, saves, live[b]);
        for (Instr& s : saves) spec.instrs.push_back(std::move(s));
        std::vector<ValueId> pargs;
        for (size_t pi = 0; pi < f.params.size(); ++pi) {
          pargs.push_back(static_cast<ValueId>(pi + 1));
        }
        ValueId cid;
        spec.instrs.push_back(const_instr(f, Type::kI32, in.imm, cid));
        pargs.push_back(cid);
        pargs.push_back(rank);
        spec.instrs.push_back(
            call_instr(report.proxy, Type::kVoid, pargs));
        Instr sbr;
        sbr.op = Op::kBr;
        sbr.blocks = {cont};
        spec.instrs.push_back(std::move(sbr));
        f.blocks.push_back(std::move(spec));
        uint32_t spec_blk = static_cast<uint32_t>(f.blocks.size() - 1);
        report.points.push_back(PointBlockInfo{
            PointBlockInfo::kSpeculation, 0, f.blocks[spec_blk].label});
        Instr cbr;
        cbr.op = Op::kCondBr;
        cbr.args = {cond};
        cbr.blocks = {spec_blk, cont};
        seq.push_back(std::move(cbr));
        for (Instr& s : seq) f.blocks[b].instrs.push_back(std::move(s));
        live = compute_live_in(f);
        break;  // block indices shifted; restart the block scan
      }
      if (in.op == Op::kMutlsJoin) {
        uint32_t cont = split_block(f, b, i + 1,
                                    "join" + std::to_string(in.imm) +
                                        ".nonspec.cont");
        Block& blk = f.blocks[b];
        blk.instrs.pop_back();  // br
        blk.instrs.pop_back();  // join marker
        std::vector<Instr> seq;
        ValueId pid;
        seq.push_back(const_instr(f, Type::kI32, in.imm, pid));
        Instr sync = call_instr("MUTLS_synchronize", Type::kI1, {pid});
        ValueId ok = f.new_value(Type::kI1, "committed");
        sync.result = ok;
        seq.push_back(std::move(sync));
        // Synchronization table: on commit, restore the committed child's
        // locals and continue at the continuation block.
        std::vector<std::pair<ValueId, ValueId>> restored;
        live = compute_live_in(f);
        uint32_t rb = build_restore_block(
            f, cont, live[cont], restored,
            "restore.sync" + std::to_string(in.imm) + "." +
                std::to_string(b));
        insert_restore_phis(f, cont, rb, restored);
        Instr cbr;
        cbr.op = Op::kCondBr;
        cbr.args = {ok};
        cbr.blocks = {rb, cont};
        seq.push_back(std::move(cbr));
        for (Instr& s : seq) f.blocks[b].instrs.push_back(std::move(s));
        report.points.push_back(PointBlockInfo{
            PointBlockInfo::kJoin, static_cast<int>(in.imm),
            f.blocks[cont].label});
        live = compute_live_in(f);
        break;
      }
      if (in.op == Op::kMutlsBarrier) {
        // Barriers are markers for the speculative side only.
        f.blocks[b].instrs.erase(f.blocks[b].instrs.begin() +
                                 static_cast<long>(i));
        --i;
      }
    }
  }
}

void Transformer::transform(const Function& orig) {
  report = FunctionReport{};
  report.original = orig.name;

  Function clone = make_clone(orig);
  report.speculative = clone.name;
  make_proxy_stub(orig);

  Function nonspec = orig;  // copy, then lower the annotations
  lower_nonspec(nonspec);

  out.functions.push_back(std::move(nonspec));
  out.functions.push_back(std::move(clone));
}

}  // namespace

PassResult run_speculator_pass(const Module& m) {
  PassResult res;
  res.module.globals = m.globals;
  Transformer tr{m, res.module, {}};
  for (const Function& f : m.functions) {
    bool has_fork = false;
    for (const Block& b : f.blocks) {
      for (const Instr& in : b.instrs) {
        if (in.op == Op::kMutlsFork) has_fork = true;
      }
    }
    if (has_fork) {
      tr.transform(f);
      res.reports.push_back(tr.report);
    } else {
      res.module.functions.push_back(f);
    }
  }
  return res;
}

}  // namespace mutls::speculator
