// Unit tests for the NUMA topology probe (support/topology.h): the sysfs
// cpulist parser, the fake-topology test seam, and the portable
// single-node fallback path that every non-Linux (or sysfs-less) box takes.
#include "support/topology.h"

#include <gtest/gtest.h>

namespace mutls {
namespace {

TEST(ParseCpuList, SingleIdsAndRanges) {
  EXPECT_EQ(parse_cpu_list("0"), (std::vector<int>{0}));
  EXPECT_EQ(parse_cpu_list("0-3"), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(parse_cpu_list("0-3,8,10-11"),
            (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));
  EXPECT_EQ(parse_cpu_list("17"), (std::vector<int>{17}));
}

TEST(ParseCpuList, TrailingNewlineIsSysfsIdiom) {
  // sysfs files end in '\n'; the parser must not treat it as malformed.
  EXPECT_EQ(parse_cpu_list("0-1\n"), (std::vector<int>{0, 1}));
}

TEST(ParseCpuList, MalformedInputYieldsPrefixParsedSoFar) {
  EXPECT_TRUE(parse_cpu_list("").empty());
  EXPECT_TRUE(parse_cpu_list("abc").empty());
  EXPECT_TRUE(parse_cpu_list("-3").empty());
  EXPECT_EQ(parse_cpu_list("0-2,x"), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(parse_cpu_list("5,3-1"), (std::vector<int>{5}))
      << "an inverted range ends the parse";
}

TEST(Topology, SingleNodeFallbackCoversEveryHardwareThread) {
  Topology t = Topology::single_node();
  ASSERT_EQ(t.nodes(), 1);
  EXPECT_FALSE(t.probed);
  EXPECT_GE(t.node_cpus[0].size(), 1u);
  EXPECT_EQ(t.node_cpus[0][0], 0);
}

TEST(Topology, FakeShapesNodesAndSequentialCpuIds) {
  Topology t = Topology::fake(2, 3);
  ASSERT_EQ(t.nodes(), 2);
  EXPECT_FALSE(t.probed) << "fake CPU ids must never be used for affinity";
  EXPECT_EQ(t.node_cpus[0], (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(t.node_cpus[1], (std::vector<int>{3, 4, 5}));
  // Degenerate shapes clamp instead of failing.
  EXPECT_EQ(Topology::fake(0).nodes(), 1);
  EXPECT_EQ(Topology::fake(Topology::kMaxNodes + 5).nodes(),
            Topology::kMaxNodes);
}

TEST(Topology, ProbeNeverFailsAndShapesAreSane) {
  // On a Linux box with sysfs this exercises the real parse; anywhere
  // else it takes the single-node fallback. Either way the invariants
  // consumers rely on must hold: at least one node, no empty node, and
  // probed implies real sysfs-sourced CPU ids.
  Topology t = Topology::probe();
  ASSERT_GE(t.nodes(), 1);
  ASSERT_LE(t.nodes(), Topology::kMaxNodes);
  for (const auto& cpus : t.node_cpus) {
    EXPECT_FALSE(cpus.empty()) << "memory-only nodes must be skipped";
  }
  if (!t.probed) {
    EXPECT_EQ(t.nodes(), 1) << "the fallback is exactly single_node()";
  }
}

}  // namespace
}  // namespace mutls
