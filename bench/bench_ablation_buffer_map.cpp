// Ablation — the SpecBuffer backends side by side, plus std::unordered_map
// as the dynamic-allocation strawman (design claim of paper section IV-G2:
// "Normal hash maps frequently increase in size as data is inserted,
// causing dynamic memory allocation and deallocation. Our design is
// instead to use static memory.").
//
// Every buffered benchmark runs once per backend (arg 0: 0 = static-hash,
// 1 = growable-log, 2 = adaptive, 3 = numa-sharded), so the overflow-doom
// vs resize vs learn-and-flip trade shows up as a side-by-side comparison in one
// report. Each iteration ends with SpecBuffer::rearm() — the per-
// speculation re-arm a virtual-CPU slot performs — so the adaptive
// backend genuinely flips mid-sweep once its overflow threshold is
// crossed; the SpecBufferStats counters are accumulated across iterations
// and attached to each run (resizes, average probe length, validated
// words, overflow exhaustions, backend flips) so a throughput difference
// carries its cost breakdown.
//
// Measures buffered store+load streams and the validate/commit/finalize
// cycle for thread footprints of various sizes.
#include <benchmark/benchmark.h>

#include <unordered_map>
#include <vector>

#include "runtime/spec_buffer.h"

namespace {

using namespace mutls;

BufferBackend backend_of(const benchmark::State& state) {
  return static_cast<BufferBackend>(state.range(0));
}

// Labels runs with the configured backend and attaches the cost counters
// accumulated across iterations (rearm() zeroes them per iteration, so
// each bench sums them into a SpecBufferStats of its own). Event counters
// are reported per iteration — comparable across runs whose auto-chosen
// iteration counts differ; avg_probe_len is already a ratio.
void attach_counters(benchmark::State& state, const SpecBuffer& buf,
                     const SpecBufferStats& s) {
  state.SetLabel(buffer_backend_name(buf.backend()));
  using benchmark::Counter;
  state.counters["resizes"] =
      Counter(static_cast<double>(s.resize_events), Counter::kAvgIterations);
  state.counters["overflow_dooms"] =
      Counter(static_cast<double>(s.overflow_events), Counter::kAvgIterations);
  state.counters["validated_words"] =
      Counter(static_cast<double>(s.validated_words), Counter::kAvgIterations);
  state.counters["avg_probe_len"] = s.avg_probe_length();
  state.counters["backend_flips"] =
      Counter(static_cast<double>(s.backend_flips), Counter::kAvgIterations);
}

std::vector<uint64_t>& arena() {
  static std::vector<uint64_t> a(1 << 20, 1);
  return a;
}

// Word addresses with a stride pattern similar to block-based workloads.
std::vector<uintptr_t> make_addresses(size_t n) {
  std::vector<uintptr_t> addrs;
  addrs.reserve(n);
  uint64_t x = 88172645463325252ull;
  for (size_t i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    addrs.push_back(
        reinterpret_cast<uintptr_t>(&arena()[x % arena().size()]));
  }
  return addrs;
}

void BM_SpecBufferStoreLoad(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(1));
  auto addrs = make_addresses(n);
  SpecBuffer buf;
  buf.init(backend_of(state), 18, 65536);
  SpecBufferStats total;
  for (auto _ : state) {
    for (uintptr_t a : addrs) {
      uint64_t v = a;
      buf.store_bytes(a, &v, 8);
    }
    uint64_t out = 0;
    for (uintptr_t a : addrs) {
      buf.load_bytes(a, &out, 8);
      benchmark::DoNotOptimize(out);
    }
    total += buf.stats();
    buf.rearm();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(2 * n));
  attach_counters(state, buf, total);
}
BENCHMARK(BM_SpecBufferStoreLoad)
    ->ArgNames({"backend", "n"})
    ->ArgsProduct({{0, 1, 2, 3}, {64, 1024, 16384}});

void BM_UnorderedMapStoreLoad(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto addrs = make_addresses(n);
  for (auto _ : state) {
    std::unordered_map<uintptr_t, uint64_t> map;
    for (uintptr_t a : addrs) map[a] = a;
    uint64_t out = 0;
    for (uintptr_t a : addrs) {
      auto it = map.find(a);
      if (it != map.end()) out = it->second;
      benchmark::DoNotOptimize(out);
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(2 * n));
}
BENCHMARK(BM_UnorderedMapStoreLoad)->Arg(64)->Arg(1024)->Arg(16384);

void BM_ValidateCommitCycle(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(1));
  auto addrs = make_addresses(n);
  SpecBuffer buf;
  buf.init(backend_of(state), 18, 65536);
  SpecBufferStats total;
  for (auto _ : state) {
    uint64_t v = 7;
    for (uintptr_t a : addrs) {
      buf.load_bytes(a, &v, 8);
      buf.store_bytes(a, &v, 8);
    }
    bool ok = buf.validate_against_memory();
    benchmark::DoNotOptimize(ok);
    buf.commit_to_memory();
    total += buf.stats();
    buf.rearm();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  attach_counters(state, buf, total);
}
BENCHMARK(BM_ValidateCommitCycle)
    ->ArgNames({"backend", "n"})
    ->ArgsProduct({{0, 1, 2, 3}, {64, 1024, 16384}});

// The offsets stack (static hash) / dense log (growable log) is what keeps
// small-footprint threads fast even with a large table: reset cost must
// scale with entries used, not capacity.
void BM_ResetSmallFootprintLargeMap(benchmark::State& state) {
  SpecBuffer buf;
  buf.init(backend_of(state), 20, 65536);  // 1M-slot map
  auto addrs = make_addresses(16);
  SpecBufferStats total;
  for (auto _ : state) {
    uint64_t v = 1;
    for (uintptr_t a : addrs) buf.store_bytes(a, &v, 8);
    total += buf.stats();
    buf.rearm();
  }
  attach_counters(state, buf, total);
}
BENCHMARK(BM_ResetSmallFootprintLargeMap)
    ->ArgNames({"backend"})
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3);

// Where the backends genuinely diverge: a footprint far beyond the
// configured capacity. The static hash dooms every iteration (the whole
// stream after the exhaustion is wasted work destined for rollback); the
// growable log resizes and completes; the adaptive backend dooms for its
// first few iterations, crosses the overflow threshold, flips at the next
// rearm and completes from then on — its doom_rate lands between the two
// fixed backends and backend_flips records the switch. Runs all three
// from the same tiny 2^8 table.
void BM_OverCapacityStream(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(1));
  auto addrs = make_addresses(n);
  SpecBuffer buf;
  buf.init(backend_of(state), 8, 256);
  uint64_t dooms = 0;
  int64_t issued = 0;  // only stores actually executed count as items:
                       // the static hash dooms early and skips the rest
  SpecBufferStats total;
  for (auto _ : state) {
    for (uintptr_t a : addrs) {
      uint64_t v = a;
      buf.store_bytes(a, &v, 8);
      ++issued;
      if (buf.doomed()) break;  // a real runtime stops at its check point
    }
    dooms += buf.doomed() ? 1 : 0;
    total += buf.stats();
    buf.rearm();
  }
  state.SetItemsProcessed(issued);
  attach_counters(state, buf, total);
  // Fraction of iterations that ended doomed (0 or 1 per iteration).
  state.counters["doom_rate"] = benchmark::Counter(
      static_cast<double>(dooms), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_OverCapacityStream)
    ->ArgNames({"backend", "n"})
    ->ArgsProduct({{0, 1, 2, 3}, {4096, 65536}});

}  // namespace

BENCHMARK_MAIN();
