// Deterministic synthetic HTTP traffic for the serving benches and tests.
//
// RequestGen writes wire-format request heads (the same bytes a socket
// would deliver) into caller-owned fixed storage: a RequestBatch is
// allocated once and refilled in place, so sustained generation allocates
// nothing. The stream is fully determined by TrafficConfig::seed — the
// sequential reference run and the speculative run replay the identical
// byte stream, which is what makes their cache-index checksums comparable.
//
// Knobs: key skew (uniform or Zipf — hot keys concentrate cache-index
// conflicts), GET/PUT mix (PUTs insert/evict, widening the write
// footprint), and a malformed-injection ratio (corrupted heads the parse
// stage must reject without ever reading past the buffer).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "serving/http_parse.h"
#include "support/prng.h"

namespace mutls::serving {

// Upper bound on one generated request head; RequestBatch reserves this
// much per slot. Generated heads are well under it — the bound exists so
// batch storage is a flat fixed-size array.
inline constexpr size_t kMaxRequestBytes = 192;

struct TrafficConfig {
  uint64_t num_keys = 4096;
  // Zipf exponent of the key distribution; 0 disables the sampler and
  // draws keys uniformly.
  double zipf_s = 0.0;
  double put_ratio = 0.125;
  double malformed_ratio = 0.0;
  uint64_t seed = 1;
};

// Fixed-storage batch of request buffers, refilled in place by
// RequestGen::fill. Construction allocates; fills never do.
class RequestBatch {
 public:
  explicit RequestBatch(size_t count)
      : count_(count), len_(count, 0), bytes_(count * kMaxRequestBytes, 0) {}

  size_t count() const { return count_; }
  std::string_view request(size_t i) const {
    MUTLS_DCHECK(i < count_, "RequestBatch index out of range");
    return std::string_view(bytes_.data() + i * kMaxRequestBytes, len_[i]);
  }

 private:
  friend class RequestGen;
  char* slot(size_t i) { return bytes_.data() + i * kMaxRequestBytes; }

  size_t count_;
  std::vector<uint32_t> len_;
  std::vector<char> bytes_;
};

class RequestGen {
 public:
  explicit RequestGen(const TrafficConfig& cfg);

  // Writes the next request head into buf (capacity >= kMaxRequestBytes)
  // and returns its length. Advances the deterministic stream by exactly
  // the consumed rng draws.
  size_t generate(char* buf, size_t cap);

  // Refills every slot of `batch` with the next batch.count() requests.
  void fill(RequestBatch& batch);

  // Shape of the most recently generated request, for test oracles.
  // `corrupted` requests were damaged after generation and must NOT parse
  // to kOk; the other fields describe the pre-corruption request.
  struct Shape {
    bool corrupted = false;
    bool is_put = false;
    uint64_t key = 0;
    uint64_t content_length = 0;  // PUTs only
  };
  const Shape& last() const { return last_; }

  const TrafficConfig& config() const { return cfg_; }

 private:
  TrafficConfig cfg_;
  Xorshift64 rng_;
  Zipf zipf_;  // consulted only when cfg_.zipf_s > 0
  Shape last_;
};

}  // namespace mutls::serving
